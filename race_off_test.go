//go:build !race

package ap1000plus

// raceDetectorEnabled: see race_on_test.go.
const raceDetectorEnabled = false
