// Package ap1000plus is a library reproduction of the Fujitsu AP1000+
// ("AP1000+: Architectural Support of PUT/GET Interface for
// Parallelizing Compiler", ASPLOS VI, 1994): a functional simulator
// of the machine's communication architecture — hardware PUT/GET
// with flag updates combined with data transfer, one-dimensional
// stride DMA, communication registers with present bits, ring-buffer
// SEND/RECEIVE, distributed shared memory — plus the trace-driven
// message level simulator (MLSim) used for the paper's evaluation.
//
// # Quick start
//
//	m, _ := ap1000plus.New(ap1000plus.WithGrid(2, 2))
//	segs := make([]*ap1000plus.Segment, m.Cells())
//	for id := 0; id < m.Cells(); id++ {
//		segs[id], _, _ = m.Cell(ap1000plus.CellID(id)).AllocFloat64("buf", 128)
//	}
//	m.Run(func(c *ap1000plus.Cell) error {
//		comm := ap1000plus.NewComm(c)
//		if c.ID() == 0 {
//			// put(node_id, raddr, laddr, size, ack)
//			return comm.Put(ap1000plus.Transfer{
//				To: 1, Remote: segs[1].Base(), Local: segs[0].Base(),
//				Size: 64, Ack: true,
//			})
//		}
//		return nil
//	})
//
// A burst of transfers can be batched into one doorbell — and
// optionally coalesced into fewer stride commands — with
// comm.Batch().Coalesce(), appending transfers and calling Commit.
//
// Remote atomics update 8-byte words at their owning cell exactly
// once: comm.FetchAdd / CompareAndSwap / Swap block for the previous
// value, while comm.AtomicAdd / AtomicMin / AtomicMax are
// fire-and-forget, fenced by comm.FenceAtomics. WithCombining merges
// same-address combinable atomics inside the T-net, so a hot counter
// costs O(log n) messages instead of O(n) — with bit-for-bit
// identical results.
//
// The architecture lives in internal packages, re-exported here:
//
//   - machine: cells, MSC+ queues, MC flags/MMU/registers, networks
//   - core: the paper's put/get/put_stride/get_stride interface
//   - vpp: the VPP-Fortran-style run-time system (global arrays,
//     SPREAD MOVE, OVERLAP FIX)
//   - sendrecv, barrier, dsm: SEND/RECEIVE, collectives, shared memory
//   - trace, params, mlsim: the evaluation toolchain
package ap1000plus

import (
	"ap1000plus/internal/barrier"
	"ap1000plus/internal/core"
	"ap1000plus/internal/dsm"
	"ap1000plus/internal/fault"
	"ap1000plus/internal/machine"
	"ap1000plus/internal/mc"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/mlsim"
	"ap1000plus/internal/obs"
	"ap1000plus/internal/params"
	"ap1000plus/internal/pgas"
	"ap1000plus/internal/sendrecv"
	"ap1000plus/internal/tenancy"
	"ap1000plus/internal/topology"
	"ap1000plus/internal/trace"
	"ap1000plus/internal/vpp"
)

// Machine construction and cells. Machines are built with New and a
// list of Options (options.go); the parameter struct stays internal.
type (
	// Machine is a functional AP1000+ system instance.
	Machine = machine.Machine
	// Cell is one processing element.
	Cell = machine.Cell
	// CellID identifies a cell.
	CellID = topology.CellID
	// Segment is an allocated region of cell memory.
	Segment = mem.Segment
	// Addr is a logical memory address.
	Addr = mem.Addr
	// Stride describes a one-dimensional stride pattern (Figure 3).
	Stride = mem.Stride
	// FlagID names a synchronization flag.
	FlagID = mc.FlagID
	// Group is a set of cells for group collectives.
	Group = topology.Group
	// Torus is the machine geometry.
	Torus = topology.Torus
)

// Table1 returns the published AP1000+ specifications.
func Table1() machine.Spec { return machine.Table1() }

// The PUT/GET interface (the paper's contribution).
type (
	// Comm is a cell's PUT/GET endpoint.
	Comm = core.Comm
	// Transfer describes one PUT or GET (destination, addresses, size,
	// flags, acknowledgement).
	Transfer = core.Transfer
	// CommandList is a batch of transfers issued with a single Commit
	// (one MSC+ doorbell), optionally coalescing adjacent transfers.
	CommandList = core.CommandList
)

// NewComm builds the PUT/GET interface for a cell.
func NewComm(c *Cell) *Comm { return core.New(c) }

// Typed issue errors, for errors.Is against validation and delivery
// failures.
var (
	// ErrBadAddress reports a transfer to an invalid cell or address.
	ErrBadAddress = core.ErrBadAddress
	// ErrBadStride reports an invalid or oversized stride pattern.
	ErrBadStride = core.ErrBadStride
	// ErrQueueFull reports an overfull command queue or CommandList.
	ErrQueueFull = core.ErrQueueFull
	// ErrRetryBudget reports a transfer abandoned by reliable delivery;
	// CellFault wraps it.
	ErrRetryBudget = core.ErrRetryBudget
)

// Flag constants.
const (
	// NoFlag requests no flag update (the paper's address-0 idiom).
	NoFlag = mc.NoFlag
	// AckFlagID is the implicit acknowledge flag of the Ack & Barrier
	// model.
	AckFlagID = mc.AckFlagID
	// AtomicAckFlagID is the implicit flag counting non-fetching
	// remote-atomic acknowledgements; Comm.FenceAtomics waits on it.
	AtomicAckFlagID = mc.AtomicAckFlagID
)

// Contiguous returns the stride pattern of a plain transfer.
func Contiguous(size int64) Stride { return mem.Contiguous(size) }

// SEND/RECEIVE, collectives, and shared memory.
type (
	// Endpoint is a SEND/RECEIVE port over a ring buffer.
	Endpoint = sendrecv.Endpoint
	// Sync provides barriers and global reductions.
	Sync = barrier.Sync
	// DSM is the distributed-shared-memory interface of a cell.
	DSM = dsm.DSM
)

// NewEndpoint installs a SEND/RECEIVE endpoint on a cell.
func NewEndpoint(c *Cell, ringBytes int64) *Endpoint { return sendrecv.New(c, ringBytes) }

// NewSync builds the synchronization library for a cell.
func NewSync(c *Cell, ep *Endpoint) (*Sync, error) { return barrier.New(c, ep) }

// NewDSM builds the shared-memory interface for a cell.
func NewDSM(c *Cell) (*DSM, error) { return dsm.New(c) }

// The VPP-Fortran-style run-time system.
type (
	// Runtime is the per-cell run-time system.
	Runtime = vpp.Runtime
	// Array1D is a block-distributed global vector with overlap.
	Array1D = vpp.Array1D
	// Array2D is a column-block-distributed global matrix with
	// overlap columns (Figure 2).
	Array2D = vpp.Array2D
	// CyclicArray1D is a cyclically-distributed global vector.
	CyclicArray1D = vpp.CyclicArray1D
	// Block2D is a global matrix partitioned in both dimensions over
	// the process grid, with group-collective overlap exchange.
	Block2D = vpp.Block2D
)

// NewRuntime builds the run-time system for a cell.
func NewRuntime(c *Cell) (*Runtime, error) { return vpp.NewRuntime(c) }

// NewArray1D allocates a global 1-D array across the machine.
func NewArray1D(m *Machine, name string, n, overlap int) (*Array1D, error) {
	return vpp.NewArray1D(m, name, n, overlap)
}

// NewArray2D allocates a global 2-D array across the machine.
func NewArray2D(m *Machine, name string, rows, cols, overlap int) (*Array2D, error) {
	return vpp.NewArray2D(m, name, rows, cols, overlap)
}

// NewCyclicArray1D allocates a cyclically-distributed global array.
func NewCyclicArray1D(m *Machine, name string, n int) (*CyclicArray1D, error) {
	return vpp.NewCyclicArray1D(m, name, n)
}

// NewBlock2D allocates a two-dimensionally partitioned global array.
func NewBlock2D(m *Machine, name string, rows, cols, overlap int) (*Block2D, error) {
	return vpp.NewBlock2D(m, name, rows, cols, overlap)
}

// PGAS symmetric heap: round-robin-distributed int64 shared arrays
// with UPC-style global indexing (element i lives on cell i mod P),
// fine-grained Get/Put/atomic operations, barriers and reductions —
// and an exstack-style aggregation mode that buffers fine-grained
// operations per destination and exchanges them in bulk rounds.
type (
	// SymmetricHeap is a heap of round-robin shared arrays; allocate
	// arrays and per-cell PEs before Machine.Run.
	SymmetricHeap = pgas.Heap
	// SharedArray is one distributed array on the symmetric heap.
	SharedArray = pgas.Shared
	// PGASLayout is the round-robin global-index mapping.
	PGASLayout = pgas.Layout
	// PE is one cell's PGAS handle: naive fine-grained operations.
	PE = pgas.PE
	// Aggregator owns the machine-wide exchange buffers for
	// aggregated mode.
	Aggregator = pgas.Aggregator
	// AggPE is one cell's aggregation context: buffered operations
	// with explicit Advance/Flush exchange rounds.
	AggPE = pgas.AggPE
)

// NewSymmetricHeap builds a symmetric heap on the machine.
func NewSymmetricHeap(m *Machine) (*SymmetricHeap, error) { return pgas.NewHeap(m) }

// NewPE builds one cell's PGAS processing element; construct one per
// cell, in rank order.
func NewPE(h *SymmetricHeap, c *Cell) (*PE, error) { return pgas.NewPE(h, c) }

// NewAggregator builds the aggregated-mode exchange buffers; Bind a
// PE on every cell. packets <= 0 selects the default region capacity.
func NewAggregator(h *SymmetricHeap, packets int) (*Aggregator, error) {
	return pgas.NewAggregator(h, packets)
}

// Multi-tenant partitions and gang scheduling (WithPartitions).
type (
	// Partition is one disjoint cell range of a partitioned machine,
	// with its own barrier domain and job slot; see Machine.Partition,
	// Machine.RunJob.
	Partition = machine.Partition
	// Scheduler gang-schedules queued tenant jobs onto free
	// partitions, FIFO with best-fit placement.
	Scheduler = tenancy.Scheduler
	// TenantJob is one gang-scheduled unit of work.
	TenantJob = tenancy.Job
	// TenantResult is a job's completion record with queue/run/sojourn
	// latencies.
	TenantResult = tenancy.Result
	// Ticket is the async handle Scheduler.Submit returns.
	Ticket = tenancy.Ticket
	// LoadGen replays an open-loop Poisson stream of job arrivals
	// against a scheduler.
	LoadGen = tenancy.LoadGen
)

// NewScheduler wraps a partitioned machine in a gang scheduler and
// opens it; Close drains and closes the machine.
func NewScheduler(m *Machine) (*Scheduler, error) { return tenancy.New(m) }

// Observability (WithObserve / WithTimeline).
type (
	// Metrics is a machine-wide counter snapshot; see Machine.Metrics.
	Metrics = machine.Metrics
	// Timeline collects Chrome trace-event / Perfetto JSON; attach one
	// via WithTimeline and write it with Timeline.WriteJSON.
	Timeline = obs.Timeline
)

// NewTimeline returns an empty Perfetto timeline collector.
func NewTimeline() *Timeline { return obs.NewTimeline() }

// Fault injection (WithFault).
type (
	// FaultPlan is a deterministic, seedable wire-fault plan; attach
	// one via WithFault to run over a lossy network with the MSC+'s
	// reliable-delivery path armed. Check Machine.FaultErr after Run.
	FaultPlan = fault.Plan
	// CellFault reports a transfer abandoned after the retry budget.
	CellFault = machine.CellFault
)

// ParseFaultPlan parses a fault plan spec like
// "drop=0.05,dup=0.02,seed=42"; see fault.Parse for the grammar.
func ParseFaultPlan(spec string) (*FaultPlan, error) { return fault.Parse(spec) }

// Evaluation toolchain.
type (
	// TraceSet is a per-PE event capture.
	TraceSet = trace.TraceSet
	// Params is an MLSim machine model.
	Params = params.Params
	// SimResult is an MLSim replay outcome.
	SimResult = mlsim.Result
)

// AP1000 returns the Figure 6 software-messaging model.
func AP1000() *Params { return params.AP1000() }

// AP1000Plus returns the Figure 6 hardware PUT/GET model.
func AP1000Plus() *Params { return params.AP1000Plus() }

// AP1000x8 returns Table 2's comparison model (8x CPU, software
// messaging).
func AP1000x8() *Params { return params.AP1000x8() }

// Simulate replays a trace under a machine model.
func Simulate(ts *TraceSet, p *Params) (*SimResult, error) { return mlsim.Run(ts, p) }
