package ap1000plus_test

import (
	"os/exec"
	"testing"
)

// Every machine-running example must execute cleanly under -sanitize:
// the examples are the documentation of correct flag/ack/barrier
// discipline, so a race report in one of them is a release blocker.
func TestExamplesSanitizerClean(t *testing.T) {
	if testing.Short() {
		t.Skip("go run per example is slow; skipped with -short")
	}
	examples := []string{
		"quickstart", "matmul", "stencil", "redistribute", "dsmcounter", "tomcatv",
		"latency",
	}
	for _, ex := range examples {
		t.Run(ex, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./examples/"+ex, "-sanitize").CombinedOutput()
			if err != nil {
				t.Fatalf("example %s under -sanitize failed: %v\n%s", ex, err, out)
			}
		})
	}
}

// The same examples must survive a lossy wire: drop and duplicate
// faults with the reliable-delivery path armed, still under the race
// detector. Reordering is left to the chaos suite — the examples'
// flag discipline assumes in-order per-stream delivery of distinct
// transfers, which retransmit-after-reorder preserves only per
// (src,dst,op) stream.
func TestExamplesSanitizerCleanUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("go run per example is slow; skipped with -short")
	}
	examples := []string{
		"quickstart", "matmul", "stencil", "redistribute", "dsmcounter", "tomcatv",
		"latency",
	}
	for _, ex := range examples {
		t.Run(ex, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./examples/"+ex,
				"-sanitize", "-fault", "drop=0.03,dup=0.02,seed=11").CombinedOutput()
			if err != nil {
				t.Fatalf("example %s under -sanitize -fault failed: %v\n%s", ex, err, out)
			}
		})
	}
}
