package ap1000plus_test

import (
	"os/exec"
	"testing"
)

// Every machine-running example must execute cleanly under -sanitize:
// the examples are the documentation of correct flag/ack/barrier
// discipline, so a race report in one of them is a release blocker.
func TestExamplesSanitizerClean(t *testing.T) {
	if testing.Short() {
		t.Skip("go run per example is slow; skipped with -short")
	}
	examples := []string{
		"quickstart", "matmul", "stencil", "redistribute", "dsmcounter", "tomcatv",
		"latency",
	}
	for _, ex := range examples {
		t.Run(ex, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./examples/"+ex, "-sanitize").CombinedOutput()
			if err != nil {
				t.Fatalf("example %s under -sanitize failed: %v\n%s", ex, err, out)
			}
		})
	}
}
