// Chaos suite for the PGAS kernels: histogram and toposort — in both
// naive and aggregated modes — run under seeded fault plans and must
// reproduce the fault-free snapshot bit for bit, with per-cell flag
// increments and controller atomic executions exactly equal
// (exactly-once delivery under drops, duplicates and reorders), and
// the fault counters showing the plan actually fired.
package ap1000plus

import (
	"testing"

	"ap1000plus/internal/apps"
	"ap1000plus/internal/fault"
)

// runPGASChaosKernel builds and runs one kernel instance under an
// optional plan, returning the verified snapshot and metrics.
func runPGASChaosKernel(t *testing.T, build func(mode apps.PGASMode, snap *[]int64) (*apps.Instance, error), mode apps.PGASMode, plan *fault.Plan) ([]int64, Metrics) {
	t.Helper()
	obsWas, faultWas := apps.Observe, apps.Fault
	apps.Observe, apps.Fault = true, plan
	defer func() { apps.Observe, apps.Fault = obsWas, faultWas }()

	var snap []int64
	in, err := build(mode, &snap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Run(); err != nil {
		t.Fatal(err)
	}
	if len(snap) == 0 {
		t.Fatal("kernel produced an empty snapshot")
	}
	return snap, in.Machine.Metrics()
}

// TestChaosPGASKernels drives histogram and toposort, naive and
// aggregated, under every plan.
func TestChaosPGASKernels(t *testing.T) {
	kernels := []struct {
		name  string
		build func(mode apps.PGASMode, snap *[]int64) (*apps.Instance, error)
	}{
		{"histogram", func(mode apps.PGASMode, snap *[]int64) (*apps.Instance, error) {
			return apps.NewPGASHisto(apps.PGASHistoConfig{
				Cells: 4, Table: 53, OpsPerCell: 200,
				Mode: mode, Packets: 16, Seed: 42, Snapshot: snap,
			})
		}},
		{"toposort", func(mode apps.PGASMode, snap *[]int64) (*apps.Instance, error) {
			return apps.NewPGASToposort(apps.PGASToposortConfig{
				Cells: 4, N: 40, Extra: 3,
				Mode: mode, Packets: 16, Seed: 3, Snapshot: snap,
			})
		}},
	}
	plans := []struct {
		name, spec  string
		drops, dups bool
	}{
		{"drop", "drop=0.08,seed=42", true, false},
		{"dup", "dup=0.1,seed=7", false, true},
		{"drop+dup", "drop=0.05,dup=0.05,seed=42", true, true},
		{"reorder", "reorder=0.08,seed=13", false, false},
		{"storm", "drop=0.05,dup=0.05,reorder=0.04,corrupt=0.03,seed=99", true, true},
	}
	for _, k := range kernels {
		for _, mode := range []apps.PGASMode{apps.PGASNaive, apps.PGASAggregated} {
			t.Run(k.name+"/"+mode.String(), func(t *testing.T) {
				base, baseM := runPGASChaosKernel(t, k.build, mode, nil)
				if baseM.Fault != nil {
					t.Fatal("fault metrics reported on a fault-free machine")
				}
				for _, p := range plans {
					t.Run(p.name, func(t *testing.T) {
						plan, err := ParseFaultPlan(p.spec)
						if err != nil {
							t.Fatal(err)
						}
						got, mt := runPGASChaosKernel(t, k.build, mode, plan)
						if len(got) != len(base) {
							t.Fatalf("snapshot length %d, fault-free %d", len(got), len(base))
						}
						for i := range got {
							if got[i] != base[i] {
								t.Fatalf("snapshot[%d] = %d, fault-free run produced %d", i, got[i], base[i])
							}
						}
						for i := range mt.Cells {
							if g, w := mt.Cells[i].FlagIncrements, baseM.Cells[i].FlagIncrements; g != w {
								t.Errorf("cell %d flag increments = %d, fault-free %d (exactly-once violated)", i, g, w)
							}
							if g, w := mt.Cells[i].AtomicsExecuted, baseM.Cells[i].AtomicsExecuted; g != w {
								t.Errorf("cell %d atomics executed = %d, fault-free %d (exactly-once violated)", i, g, w)
							}
						}
						f := mt.Fault
						if f == nil {
							t.Fatal("Metrics().Fault nil on a machine with a fault plan")
						}
						if f.CellFaults != 0 {
							t.Fatalf("retry budget exhausted %d times under a recoverable plan", f.CellFaults)
						}
						if p.drops && (f.Drops == 0 || f.Retransmits == 0) {
							t.Errorf("drop plan: drops=%d retransmits=%d, want both > 0", f.Drops, f.Retransmits)
						}
						if p.dups && (f.Dups == 0 || f.Dedups == 0) {
							t.Errorf("dup plan: dups=%d dedups=%d, want both > 0", f.Dups, f.Dedups)
						}
					})
				}
			})
		}
	}
}
