package ap1000plus

import (
	"math"
	"testing"

	"ap1000plus/internal/trace"
)

// TestCountersMatchTraceStats runs the same program under tracing and
// observation at once and cross-checks the two accountings: the obs
// counters must agree with trace.Stats on every operation class, with
// acknowledge GETs visible only on the counter side (the trace
// excludes them, like the paper's Table 3).
func TestCountersMatchTraceStats(t *testing.T) {
	m, err := New(
		WithGrid(2, 2), WithMemoryPerCell(1<<20),
		WithTrace("obs-consistency"), WithObserve(),
	)
	if err != nil {
		t.Fatal(err)
	}
	segs := make([]*Segment, 4)
	for id := 0; id < 4; id++ {
		segs[id], _, err = m.Cell(CellID(id)).AllocFloat64("buf", 64)
		if err != nil {
			t.Fatal(err)
		}
	}
	rf := m.Cell(0).Flags.Alloc()
	err = m.Run(func(c *Cell) error {
		comm := NewComm(c)
		me := int(c.ID())
		next := (me + 1) % 4
		// One acknowledged 64 B PUT per cell: the trace records one
		// PUT; the counters additionally see the ack GET behind it.
		if err := comm.Put(Transfer{To: CellID(next), Remote: segs[next].Base(), Local: segs[me].Base(), Size: 64, Ack: true}); err != nil {
			return err
		}
		comm.AckWait()
		if me == 0 {
			// One stride GET, recorded as GETS on both sides.
			err := comm.GetStride(2, segs[2].Base(), segs[0].Base()+256, NoFlag, rf,
				Stride{ItemSize: 8, Count: 4, Skip: 24}, Contiguous(32))
			if err != nil {
				return err
			}
			comm.WaitFlag(rf, 1)
		}
		comm.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	ts := m.Trace()
	if ts == nil {
		t.Fatal("trace missing")
	}
	row := trace.Stats(ts)
	mt := m.Metrics()
	tot := mt.Totals()
	n := float64(m.Cells())

	// Operation classes: trace averages per PE, counters are totals.
	if got, want := tot.Put, int64(math.Round(row.Put*n)); got != want || got != 4 {
		t.Errorf("PUT: counters %d, trace %d", got, want)
	}
	if got, want := tot.GetS, int64(math.Round(row.GetS*n)); got != want || got != 1 {
		t.Errorf("GETS: counters %d, trace %d", got, want)
	}
	if tot.PutS != 0 || row.PutS != 0 || tot.Get != 0 || row.Get != 0 {
		t.Errorf("unexpected PUTS/GET: counters %+v, trace %+v", tot, row)
	}
	if got, want := tot.Barriers, int64(math.Round(row.Sync*n)); got != want || got != 4 {
		t.Errorf("barriers: counters %d, trace %d", got, want)
	}
	// Ack GETs appear only in the counters.
	if tot.AckGet != 4 {
		t.Errorf("ack GETs = %d, want 4", tot.AckGet)
	}
	// Payload accounting: the trace's mean message size covers the
	// same bytes the counters attribute to PUT and GET issues.
	ops := math.Round((row.Put + row.PutS + row.Get + row.GetS) * n)
	traceBytes := int64(math.Round(row.MsgSize * ops))
	if counterBytes := tot.PutBytes + tot.GetBytes; counterBytes != traceBytes || counterBytes != 288 {
		t.Errorf("bytes: counters %d, trace %d", counterBytes, traceBytes)
	}
}

// TestPutIssueZeroAllocUnobserved is the regression guard for the
// zero-cost-when-disabled contract: with Observe off, an acknowledged
// PUT round trip allocates nothing on the issue path once the payload
// pool is warm.
func TestPutIssueZeroAllocUnobserved(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("sync.Pool drops items under -race; zero-alloc not measurable")
	}
	m, err := New(WithGrid(2, 2), WithMemoryPerCell(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	segs := make([]*Segment, 4)
	for id := 0; id < 4; id++ {
		segs[id], _, _ = m.Cell(CellID(id)).AllocFloat64("b", 64)
	}
	var allocs float64
	err = m.Run(func(c *Cell) error {
		if c.ID() != 0 {
			return nil
		}
		comm := NewComm(c)
		op := func() {
			if err := comm.Put(Transfer{To: 1, Remote: segs[1].Base(), Local: segs[0].Base(), Size: 8, Ack: true}); err != nil {
				t.Error(err)
			}
			comm.AckWait()
		}
		for i := 0; i < 100; i++ {
			op() // warm the payload pool, queues, and scheduler
		}
		allocs = testing.AllocsPerRun(200, op)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("PUT issue path allocates %.2f objects/op with Observe:false, want 0", allocs)
	}
}

// TestBatchIssueZeroAllocUnobserved extends the zero-cost contract to
// the batched path: once the Comm's reusable CommandList and the
// payload pool are warm, staging and committing a whole acknowledged
// batch allocates nothing.
func TestBatchIssueZeroAllocUnobserved(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("sync.Pool drops items under -race; zero-alloc not measurable")
	}
	m, err := New(WithGrid(2, 2), WithMemoryPerCell(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	segs := make([]*Segment, 4)
	for id := 0; id < 4; id++ {
		segs[id], _, _ = m.Cell(CellID(id)).AllocFloat64("b", 64)
	}
	var allocs float64
	err = m.Run(func(c *Cell) error {
		if c.ID() != 0 {
			return nil
		}
		comm := NewComm(c)
		op := func() {
			b := comm.Batch().Coalesce()
			for k := 0; k < 8; k++ {
				b.Put(Transfer{To: 1, Remote: segs[1].Base() + Addr(k*8), Local: segs[0].Base() + Addr(k*8), Size: 8, Ack: true})
			}
			if err := b.Commit(); err != nil {
				t.Error(err)
			}
			comm.AckWait()
		}
		for i := 0; i < 100; i++ {
			op() // warm the CommandList, payload pool, queues, scheduler
		}
		allocs = testing.AllocsPerRun(200, op)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("batched issue path allocates %.2f objects/op with Observe:false, want 0", allocs)
	}
}
