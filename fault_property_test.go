// Property tests for the fault layer: random fault plans crossed with
// random PUT/GET workloads. Three properties must hold for every
// seed as long as the loss rates stay under the retry budget:
//
//  1. eventual delivery — every transfer lands and the data is exact;
//  2. exactly-once — flag fetch-and-increment counts equal the number
//     of logical transfers, no matter how the wire mangled them;
//  3. determinism — running the identical seeded plan twice yields the
//     identical fault/communication counter projection.
package ap1000plus

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"ap1000plus/internal/fault"
)

// propOp is one randomly generated communication operation.
type propOp struct {
	get  bool
	dst  int
	slot int // index into dst's out buffer
}

const (
	propOutN    = 16 // floats in each cell's out buffer
	propPerCell = 40 // ops issued by each cell
)

// propWorkload pre-generates every cell's op list from one seed, so
// each cell also knows how much traffic to expect (the flag targets).
func propWorkload(rng *rand.Rand, cells int) (ops [][]propOp, putsInto, getsBy []int) {
	ops = make([][]propOp, cells)
	putsInto = make([]int, cells)
	getsBy = make([]int, cells)
	for id := 0; id < cells; id++ {
		for k := 0; k < propPerCell; k++ {
			dst := rng.Intn(cells - 1)
			if dst >= id {
				dst++
			}
			op := propOp{get: rng.Intn(3) == 0, dst: dst, slot: rng.Intn(propOutN)}
			ops[id] = append(ops[id], op)
			if op.get {
				getsBy[id]++
			} else {
				putsInto[dst]++
			}
		}
	}
	return ops, putsInto, getsBy
}

// propRun executes one random workload under one plan and returns the
// machine for inspection. Every PUT writes out[slot] of the source
// into a per-(src,dst,k) slot of the destination's in buffer; every
// GET reads out[slot] of the destination into a per-(dst,k) slot of
// the source's gin buffer — so the expected memory image is exact.
func propRun(t *testing.T, plan *FaultPlan, ops [][]propOp, putsInto, getsBy []int) *Machine {
	t.Helper()
	m, err := New(WithGrid(2, 2), WithObserve(), WithFault(plan))
	if err != nil {
		t.Fatal(err)
	}
	cells := m.Cells()
	outS := make([]*Segment, cells)
	outD := make([][]float64, cells)
	inS := make([]*Segment, cells)
	inD := make([][]float64, cells)
	ginS := make([]*Segment, cells)
	ginD := make([][]float64, cells)
	recvFlags := make([]FlagID, cells)
	getFlags := make([]FlagID, cells)
	for id := 0; id < cells; id++ {
		c := m.Cell(CellID(id))
		if outS[id], outD[id], err = c.AllocFloat64("out", propOutN); err != nil {
			t.Fatal(err)
		}
		if inS[id], inD[id], err = c.AllocFloat64("in", cells*propPerCell); err != nil {
			t.Fatal(err)
		}
		if ginS[id], ginD[id], err = c.AllocFloat64("gin", cells*propPerCell); err != nil {
			t.Fatal(err)
		}
		recvFlags[id] = c.Flags.Alloc()
		getFlags[id] = c.Flags.Alloc()
	}

	err = m.Run(func(c *Cell) error {
		id := int(c.ID())
		comm := NewComm(c)
		for i := range outD[id] {
			outD[id][i] = float64(id*1000 + i)
		}
		c.HWBarrier() // every out buffer initialized before any GET reads it
		for k, op := range ops[id] {
			if op.get {
				if err := comm.Get(Transfer{
					To:     CellID(op.dst),
					Remote: outS[op.dst].Base() + Addr(op.slot*8),
					Local:  ginS[id].Base() + Addr((op.dst*propPerCell+k)*8),
					Size:   8, RecvFlag: getFlags[id],
				}); err != nil {
					return err
				}
			} else {
				if err := comm.Put(Transfer{
					To:     CellID(op.dst),
					Remote: inS[op.dst].Base() + Addr((id*propPerCell+k)*8),
					Local:  outS[id].Base() + Addr(op.slot*8),
					Size:   8, RecvFlag: recvFlags[op.dst],
				}); err != nil {
					return err
				}
			}
		}
		comm.WaitFlag(getFlags[id], int64(getsBy[id]))
		comm.WaitFlag(recvFlags[id], int64(putsInto[id]))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.FaultErr(); err != nil {
		t.Fatalf("eventual delivery violated: %v", err)
	}

	// Exact memory image: every op's value landed where it should.
	for id := 0; id < cells; id++ {
		for k, op := range ops[id] {
			want := float64(op.dst*1000 + op.slot)
			if op.get {
				if got := ginD[id][op.dst*propPerCell+k]; got != want {
					t.Fatalf("cell %d op %d: GET from %d slot %d = %v, want %v", id, k, op.dst, op.slot, got, want)
				}
			} else {
				want = float64(id*1000 + op.slot)
				if got := inD[op.dst][id*propPerCell+k]; got != want {
					t.Fatalf("cell %d op %d: PUT to %d = %v, want %v", id, k, op.dst, got, want)
				}
			}
		}
	}
	// Exactly-once: the MC flag fetch-and-increment totals equal the
	// logical transfer counts, dup/retransmit traffic notwithstanding.
	mt := m.Metrics()
	for id := 0; id < cells; id++ {
		want := int64(putsInto[id] + getsBy[id])
		if got := mt.Cells[id].FlagIncrements; got != want {
			t.Fatalf("cell %d flag increments = %d, want %d (exactly-once violated)", id, got, want)
		}
	}
	return m
}

// faultProjection is the deterministic slice of a machine's counters:
// everything driven by the seeded fate streams and program order, and
// nothing derived from wall-clock scheduling (stall times, queue
// high-water marks, spill interrupts).
type faultProjection struct {
	Inject                                       fault.Stats
	Retransmits, Dedups, CorruptDetected, Faults int64
	Put, Get, PutBytes, GetBytes, DeliveredBytes int64
	RecvDMAs                                     int64
	FlagIncs                                     []int64
}

func projectFault(mt Metrics) faultProjection {
	t := mt.Totals()
	p := faultProjection{
		Retransmits: t.Retransmits, Dedups: t.Dedups,
		CorruptDetected: t.CorruptDetected, Faults: t.CellFaults,
		Put: t.Put, Get: t.Get, PutBytes: t.PutBytes, GetBytes: t.GetBytes,
		DeliveredBytes: t.DeliveredBytes, RecvDMAs: t.RecvDMAs,
		FlagIncs: flagCounts(mt),
	}
	if mt.Fault != nil {
		p.Inject = mt.Fault.Stats
	}
	return p
}

// TestFaultPropertyRandomWorkloads sweeps random (plan, workload)
// pairs; each is run twice to assert the determinism property on top
// of delivery and exactly-once (checked inside propRun).
func TestFaultPropertyRandomWorkloads(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			spec := fmt.Sprintf("drop=%.2f,dup=%.2f,reorder=%.2f,corrupt=%.2f,seed=%d",
				rng.Float64()*0.12, rng.Float64()*0.10, rng.Float64()*0.06, rng.Float64()*0.05,
				rng.Int63n(1<<30)+1)
			plan, err := ParseFaultPlan(spec)
			if err != nil {
				t.Fatal(err)
			}
			ops, putsInto, getsBy := propWorkload(rng, 4)

			m1 := propRun(t, plan, ops, putsInto, getsBy)
			m2 := propRun(t, plan, ops, putsInto, getsBy)
			p1, p2 := projectFault(m1.Metrics()), projectFault(m2.Metrics())
			if !reflect.DeepEqual(p1, p2) {
				t.Fatalf("identical plan %q gave different projections:\n%+v\n%+v", spec, p1, p2)
			}
		})
	}
}

// TestFaultPropertyPlanRoundTrip: a plan survives String -> Parse ->
// String canonically, and both builds decide identical fates — the
// spec grammar cannot lose information that changes behavior.
func TestFaultPropertyPlanRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		plan := &FaultPlan{Seed: rng.Int63n(1 << 30)}
		plan.Rates.Drop = float64(rng.Intn(20)) / 100
		plan.Rates.Dup = float64(rng.Intn(20)) / 100
		plan.Rates.Reorder = float64(rng.Intn(10)) / 100
		plan.Rates.Corrupt = float64(rng.Intn(10)) / 100
		reparsed, err := ParseFaultPlan(plan.String())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got, want := reparsed.String(), plan.String(); got != want {
			t.Fatalf("seed %d: round trip %q != %q", seed, got, want)
		}
		a, err := plan.Build(16, []string{"put", "get"})
		if err != nil {
			t.Fatal(err)
		}
		b, err := reparsed.Build(16, []string{"put", "get"})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			src, dst, class := rng.Intn(16), rng.Intn(16), rng.Intn(2)
			fa, fb := a.Decide(src, dst, class), b.Decide(src, dst, class)
			if fa != fb {
				t.Fatalf("seed %d: fate diverged after round trip: %+v != %+v", seed, fa, fb)
			}
		}
	}
}
