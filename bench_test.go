// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of the design choices DESIGN.md calls
// out. Speedups and breakdowns are reported as custom benchmark
// metrics so `go test -bench=.` reproduces the published numbers:
//
//	BenchmarkTable2/<app>    — Table 2 speedups (paper problem sizes)
//	BenchmarkTable3/<app>    — Table 3 per-PE statistics
//	BenchmarkFig8/<app>      — Figure 8 breakdown percentages
//	BenchmarkFig7PutModel    — Figure 7 PUT latency vs message size
//	BenchmarkFig6Params      — Figure 6 parameter file round trip
//	BenchmarkTable1Specs     — Table 1 accessor
//	BenchmarkStrideAblation  — S5.4 TOMCATV stride vs no-stride
//	BenchmarkAblation*       — flag combining, direct ack, queue depth
package ap1000plus

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"ap1000plus/internal/apps"
	"ap1000plus/internal/machine"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/mlsim"
	"ap1000plus/internal/msc"
	"ap1000plus/internal/params"
	"ap1000plus/internal/stats"
	"ap1000plus/internal/topology"
	"ap1000plus/internal/trace"
)

// experimentCache runs each paper-scale application once per process
// and shares the result across the Table 2 / Table 3 / Figure 8
// benchmarks (FT alone takes ~15s to execute functionally).
var experimentCache = struct {
	mu   sync.Mutex
	exps map[string]*stats.Experiment
	errs map[string]error
}{exps: map[string]*stats.Experiment{}, errs: map[string]error{}}

func paperExperiment(b *testing.B, name string) *stats.Experiment {
	b.Helper()
	experimentCache.mu.Lock()
	defer experimentCache.mu.Unlock()
	if err := experimentCache.errs[name]; err != nil {
		b.Fatal(err)
	}
	if e := experimentCache.exps[name]; e != nil {
		return e
	}
	var build apps.Builder
	for _, row := range apps.Catalog() {
		if row.Name == name {
			build = row.Build
		}
	}
	if build == nil {
		b.Fatalf("unknown app %q", name)
	}
	e, err := stats.RunExperiment(name, build)
	if err != nil {
		experimentCache.errs[name] = err
		b.Fatal(err)
	}
	experimentCache.exps[name] = e
	return e
}

var paperApps = []string{"EP", "CG", "FT", "SP", "TC st", "TC no st", "MatMul", "SCG"}

// BenchmarkTable2 regenerates Table 2: each sub-benchmark runs one
// application at the paper's size and reports the two speedup
// columns as metrics.
func BenchmarkTable2(b *testing.B) {
	for _, name := range paperApps {
		b.Run(name, func(b *testing.B) {
			var e *stats.Experiment
			for i := 0; i < b.N; i++ {
				e = paperExperiment(b, name)
			}
			b.ReportMetric(e.SpeedupPlus(), "speedup-ap1000+")
			b.ReportMetric(e.SpeedupX8(), "speedup-ap1000x8")
			paper := stats.PaperTable2[name]
			b.ReportMetric(paper[0], "paper-ap1000+")
			b.ReportMetric(paper[1], "paper-ap1000x8")
		})
	}
}

// BenchmarkTable3 regenerates Table 3's per-PE statistics.
func BenchmarkTable3(b *testing.B) {
	for _, name := range paperApps {
		b.Run(name, func(b *testing.B) {
			e := paperExperiment(b, name)
			var row trace.Table3Row
			for i := 0; i < b.N; i++ {
				row = trace.Stats(e.Trace)
			}
			b.ReportMetric(row.Put, "put/pe")
			b.ReportMetric(row.PutS, "puts/pe")
			b.ReportMetric(row.Get, "get/pe")
			b.ReportMetric(row.GetS, "gets/pe")
			b.ReportMetric(row.Send, "send/pe")
			b.ReportMetric(row.Gop, "gop/pe")
			b.ReportMetric(row.VGop, "vgop/pe")
			b.ReportMetric(row.Sync, "sync/pe")
			b.ReportMetric(row.MsgSize, "msg-bytes")
		})
	}
}

// BenchmarkFig8 regenerates Figure 8's normalized execution-time
// breakdown (percent of the AP1000+ total).
func BenchmarkFig8(b *testing.B) {
	for _, name := range paperApps {
		b.Run(name, func(b *testing.B) {
			e := paperExperiment(b, name)
			var row stats.Fig8Row
			for i := 0; i < b.N; i++ {
				row = stats.Fig8(e)
			}
			b.ReportMetric(row.Plus.Exec, "+exec%")
			b.ReportMetric(row.Plus.RTS, "+rts%")
			b.ReportMetric(row.Plus.Overhead, "+ovhd%")
			b.ReportMetric(row.Plus.Idle, "+idle%")
			b.ReportMetric(row.X8.Total, "x8total%")
		})
	}
}

// BenchmarkFig7PutModel reconstructs Figure 7's PUT model across
// message sizes, reporting end-to-end latency and sender CPU time.
func BenchmarkFig7PutModel(b *testing.B) {
	for _, size := range []int64{4, 256, 4096, 65536} {
		for _, mk := range []func() *params.Params{params.AP1000, params.AP1000Plus} {
			p := mk()
			b.Run(fmt.Sprintf("%s/%dB", p.Name, size), func(b *testing.B) {
				var lat, cpu int64
				for i := 0; i < b.N; i++ {
					l, c := mlsim.PutLatency(p, size, 3)
					lat, cpu = int64(l), int64(c)
				}
				b.ReportMetric(float64(lat)/1000, "latency-us")
				b.ReportMetric(float64(cpu)/1000, "sender-cpu-us")
			})
		}
	}
}

// BenchmarkFig6Params regenerates the Figure 6 parameter files
// (format + parse round trip).
func BenchmarkFig6Params(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		p := params.AP1000Plus()
		if err := p.Format(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := params.Parse(&buf, params.AP1000()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Specs covers the Table 1 accessor.
func BenchmarkTable1Specs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if machine.Table1().ClockMHz != 50 {
			b.Fatal("bad spec")
		}
	}
}

// BenchmarkStrideAblation is the S5.4 experiment: TOMCATV elapsed
// time on the AP1000+ with and without stride transfers.
func BenchmarkStrideAblation(b *testing.B) {
	st := paperExperiment(b, "TC st")
	nost := paperExperiment(b, "TC no st")
	var gain float64
	for i := 0; i < b.N; i++ {
		gain = float64(nost.Plus.Elapsed)/float64(st.Plus.Elapsed) - 1
	}
	b.ReportMetric(100*gain, "stride-gain-%")
	b.ReportMetric(50, "paper-gain-%")
}

// BenchmarkAblationFlagCombine quantifies S1.2's motivation for
// combining the flag update with the data transfer: a trace where
// every PUT's flag travels as a separate message doubles the message
// count and delays flag visibility.
func BenchmarkAblationFlagCombine(b *testing.B) {
	combined := paperExperiment(b, "SCG").Trace
	// Transform: each flag-updating PUT becomes a data PUT without a
	// flag plus a 4-byte flag-carrier PUT.
	separate := trace.New(combined.Meta.App+"-sepflag", combined.Meta.Width, combined.Meta.Height)
	for pe, evs := range combined.PE {
		out := make([]trace.Event, 0, len(evs))
		for _, e := range evs {
			if e.Kind == trace.KindPut && e.RecvFlag != trace.NoFlag {
				data := e
				data.RecvFlag = trace.NoFlag
				flag := e
				flag.Size = 4
				flag.Items = 1
				flag.Ack = false
				out = append(out, data, flag)
				continue
			}
			out = append(out, e)
		}
		separate.PE[pe] = out
	}
	var comb, sep *mlsim.Result
	var err error
	for i := 0; i < b.N; i++ {
		if comb, err = mlsim.Run(combined, params.AP1000Plus()); err != nil {
			b.Fatal(err)
		}
		if sep, err = mlsim.Run(separate, params.AP1000Plus()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(comb.Elapsed.Us(), "combined-us")
	b.ReportMetric(sep.Elapsed.Us(), "separate-us")
	b.ReportMetric(float64(sep.Messages)/float64(comb.Messages), "message-ratio")
}

// BenchmarkAblationDirectAck compares the AP1000+'s GET-based
// acknowledgement with the rejected direct-acknowledge hardware
// (S4.1's cost/benefit discussion).
func BenchmarkAblationDirectAck(b *testing.B) {
	ts := paperExperiment(b, "TC no st").Trace // ack-heavy workload
	getAck := params.AP1000Plus()
	direct := params.AP1000Plus()
	direct.Name = "AP1000+directack"
	direct.Features.DirectAck = true
	var g, d *mlsim.Result
	var err error
	for i := 0; i < b.N; i++ {
		if g, err = mlsim.Run(ts, getAck); err != nil {
			b.Fatal(err)
		}
		if d, err = mlsim.Run(ts, direct); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(g.Elapsed.Us(), "get-ack-us")
	b.ReportMetric(d.Elapsed.Us(), "direct-ack-us")
	b.ReportMetric(float64(g.Messages)/float64(d.Messages), "message-ratio")
}

// BenchmarkAblationQueueDepth sweeps the MSC+ queue capacity and
// measures how much of a put storm spills to DRAM (S4.1's overflow
// mechanism).
func BenchmarkAblationQueueDepth(b *testing.B) {
	for _, words := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("%dwords", words), func(b *testing.B) {
			var spills, interrupts int64
			for i := 0; i < b.N; i++ {
				m, err := machine.New(machine.Config{
					Width: 2, Height: 2, MemoryPerCell: 1 << 20, QueueWords: words,
				})
				if err != nil {
					b.Fatal(err)
				}
				segs := make([]*mem.Segment, 4)
				for id := 0; id < 4; id++ {
					segs[id], _, _ = m.Cell(topology.CellID(id)).AllocFloat64("b", 64)
				}
				rf := m.Cell(1).Flags.Alloc()
				const puts = 512
				err = m.Run(func(c *machine.Cell) error {
					switch c.ID() {
					case 0:
						for k := 0; k < puts; k++ {
							c.PushUser(msc.Command{
								Op: msc.OpPut, Dst: 1,
								RAddr: segs[1].Base(), LAddr: segs[0].Base(),
								RStride: mem.Contiguous(8), LStride: mem.Contiguous(8),
								RecvFlag: rf,
							})
						}
					case 1:
						c.Flags.Wait(rf, puts)
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				s := m.Cell(0).MSC.Stats().UserSend
				spills = s.Spills
				interrupts = s.Interrupts
			}
			b.ReportMetric(float64(spills), "spills")
			b.ReportMetric(float64(interrupts), "os-interrupts")
		})
	}
}

// BenchmarkPutIssueOverhead measures the user-level issue path of a
// PUT through the facade — the operation S4.1 prices at 8 stores —
// per doorbell (single) and staged on a reused CommandList with one
// doorbell per 8 commands — the hardware queue's depth, so the batch
// lands in the ring without forcing a DRAM spill (batched).
func BenchmarkPutIssueOverhead(b *testing.B) {
	bench := func(b *testing.B, body func(comm *Comm, segs []*Segment) error) {
		b.Helper()
		m, err := New(WithGrid(2, 2), WithMemoryPerCell(1<<20))
		if err != nil {
			b.Fatal(err)
		}
		segs := make([]*Segment, 4)
		for id := 0; id < 4; id++ {
			segs[id], _, _ = m.Cell(CellID(id)).AllocFloat64("b", 64)
		}
		b.ReportAllocs()
		err = m.Run(func(c *Cell) error {
			if c.ID() != 0 {
				return nil
			}
			comm := NewComm(c)
			b.ResetTimer()
			return body(comm, segs)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Run("single", func(b *testing.B) {
		bench(b, func(comm *Comm, segs []*Segment) error {
			for i := 0; i < b.N; i++ {
				if err := comm.Put(Transfer{To: 1, Remote: segs[1].Base(), Local: segs[0].Base(), Size: 8}); err != nil {
					return err
				}
			}
			return nil
		})
	})
	b.Run("batched", func(b *testing.B) {
		bench(b, func(comm *Comm, segs []*Segment) error {
			for i := 0; i < b.N; {
				cl := comm.Batch()
				for k := 0; k < 8 && i < b.N; k++ {
					cl.Put(Transfer{To: 1, Remote: segs[1].Base(), Local: segs[0].Base(), Size: 8})
					i++
				}
				if err := cl.Commit(); err != nil {
					return err
				}
			}
			return nil
		})
	})
}

// BenchmarkReductionScalar and BenchmarkReductionVector cover S4.5's
// two reduction mechanisms through the facade.
func BenchmarkReductionScalar(b *testing.B) {
	benchReduce(b, func(s *Sync, n int) error {
		for i := 0; i < n; i++ {
			s.Reduce(trace.AllGroup, trace.ReduceSum, 1)
		}
		return nil
	})
}

func BenchmarkReductionVector(b *testing.B) {
	vecs := map[*Sync][]float64{}
	var mu sync.Mutex
	benchReduce(b, func(s *Sync, n int) error {
		mu.Lock()
		v := vecs[s]
		if v == nil {
			v = make([]float64, 1400) // the CG vector size
			vecs[s] = v
		}
		mu.Unlock()
		for i := 0; i < n; i++ {
			if err := s.ReduceVec(trace.AllGroup, trace.ReduceSum, v); err != nil {
				return err
			}
		}
		return nil
	})
}

func benchReduce(b *testing.B, body func(s *Sync, n int) error) {
	b.Helper()
	m, err := New(WithGrid(4, 4), WithMemoryPerCell(1<<20))
	if err != nil {
		b.Fatal(err)
	}
	syncs := make([]*Sync, m.Cells())
	for id := 0; id < m.Cells(); id++ {
		cell := m.Cell(CellID(id))
		ep := NewEndpoint(cell, 0)
		if syncs[id], err = NewSync(cell, ep); err != nil {
			b.Fatal(err)
		}
	}
	if err := m.Run(func(c *Cell) error {
		if c.ID() == 0 {
			b.ResetTimer()
		}
		return body(syncs[c.ID()], b.N)
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMLSimReplay measures the timing simulator itself on the
// largest trace (FT: ~300k events).
func BenchmarkMLSimReplay(b *testing.B) {
	ts := paperExperiment(b, "CG").Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mlsim.Run(ts, params.AP1000Plus()); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFacadeQuickstart keeps the package-level doc example honest.
func TestFacadeQuickstart(t *testing.T) {
	m, err := New(WithGrid(2, 2), WithMemoryPerCell(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	segs := make([]*Segment, m.Cells())
	for id := 0; id < m.Cells(); id++ {
		segs[id], _, _ = m.Cell(CellID(id)).AllocFloat64("buf", 128)
	}
	err = m.Run(func(c *Cell) error {
		comm := NewComm(c)
		if c.ID() == 0 {
			if err := comm.Put(Transfer{To: 1, Remote: segs[1].Base(), Local: segs[0].Base(), Size: 64, Ack: true}); err != nil {
				return err
			}
			comm.AckWait()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.TNetStats().Messages != 3 { // put + ack get + ack reply
		t.Errorf("messages = %d", m.TNetStats().Messages)
	}
}

// BenchmarkContentionAnalysis runs the link-level contention
// re-simulation (an extension beyond the paper's contention-free
// MLSim) on the CG trace and reports the slowdown it would cause.
func BenchmarkContentionAnalysis(b *testing.B) {
	e := paperExperiment(b, "CG")
	_, log, err := mlsim.RunWithLog(e.Trace, params.AP1000Plus())
	if err != nil {
		b.Fatal(err)
	}
	var rep *mlsim.ContentionReport
	for i := 0; i < b.N; i++ {
		rep, err = mlsim.AnalyzeContention(e.Trace, params.AP1000Plus(), log)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Slowdown(), "slowdown-x")
	b.ReportMetric(rep.MeanDelay.Us(), "mean-queue-us")
}

// BenchmarkQueueOverflowModel exercises the MLSim queue-occupancy
// extension (the model S5.4 says the paper's MLSim lacked) on the
// ack-heavy TC-no-st trace and reports its findings.
func BenchmarkQueueOverflowModel(b *testing.B) {
	ts := paperExperiment(b, "TC no st").Trace
	p := params.AP1000Plus()
	p.Features.ModelQueueOverflow = true
	var res *mlsim.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = mlsim.Run(ts, p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Queue.Spills), "spills")
	b.ReportMetric(float64(res.Queue.Interrupts), "os-interrupts")
	b.ReportMetric(float64(res.Queue.MaxDepth), "max-depth")
}
