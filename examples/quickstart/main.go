// Quickstart: the PUT/GET interface with flag synchronization.
//
// Cell 0 PUTs a block into cell 1's memory; cell 1 waits on its
// receive flag, doubles the data, and cell 0 GETs it back — the
// split-phase one-sided communication of S3.1, with the flags doing
// all the synchronization.
package main

import (
	"flag"
	"fmt"
	"log"

	"ap1000plus"
)

func main() {
	sanitize := flag.Bool("sanitize", false, "run with the apsan communication race detector")
	faultSpec := flag.String("fault", "", "fault plan spec (e.g. drop=0.05,dup=0.02,seed=42): run over a lossy wire with reliable delivery")
	flag.Parse()
	var plan *ap1000plus.FaultPlan
	if *faultSpec != "" {
		p, err := ap1000plus.ParseFaultPlan(*faultSpec)
		if err != nil {
			log.Fatal(err)
		}
		plan = p
	}
	opts := []ap1000plus.Option{ap1000plus.WithGrid(2, 2)}
	if *sanitize {
		opts = append(opts, ap1000plus.WithSanitize())
	}
	if plan != nil {
		opts = append(opts, ap1000plus.WithFault(plan))
	}
	m, err := ap1000plus.New(opts...)
	if err != nil {
		log.Fatal(err)
	}

	// SPMD setup: identical allocation on every cell gives every cell
	// the same addresses, so remote addresses are known statically —
	// exactly what lets a parallelizing compiler emit PUT/GET without
	// rendezvous.
	const n = 8
	segs := make([]*ap1000plus.Segment, m.Cells())
	datas := make([][]float64, m.Cells())
	for id := 0; id < m.Cells(); id++ {
		seg, data, err := m.Cell(ap1000plus.CellID(id)).AllocFloat64("buf", n)
		if err != nil {
			log.Fatal(err)
		}
		segs[id], datas[id] = seg, data
	}
	// Flags must exist before Run so both sides agree on IDs.
	readyFlag := m.Cell(1).Flags.Alloc()  // rises on cell 1 when data lands
	resultFlag := m.Cell(0).Flags.Alloc() // rises on cell 0 when reply lands
	doneFlag := m.Cell(1).Flags.Alloc()   // cell 1's cue that cell 0 read back

	err = m.Run(func(c *ap1000plus.Cell) error {
		comm := ap1000plus.NewComm(c)
		switch c.ID() {
		case 0:
			for i := range datas[0] {
				datas[0][i] = float64(i + 1)
			}
			// PUT is non-blocking; cell 1's readyFlag rises when its
			// receive DMA completes.
			if err := comm.Put(ap1000plus.Transfer{
				To: 1, Remote: segs[1].Base(), Local: segs[0].Base(),
				Size: n * 8, RecvFlag: readyFlag,
			}); err != nil {
				return err
			}
			// Cell 1 doubles the values and raises our resultFlag
			// with a data-less PUT; then we GET the result back.
			comm.WaitFlag(resultFlag, 1)
			if err := comm.Get(ap1000plus.Transfer{
				To: 1, Remote: segs[1].Base(), Local: segs[0].Base(),
				Size: n * 8, RecvFlag: resultFlag,
			}); err != nil {
				return err
			}
			comm.WaitFlag(resultFlag, 2)
			fmt.Println("cell 0 received:", datas[0])
			// Tell cell 1 we are done (pure flag message: address 0).
			return comm.Put(ap1000plus.Transfer{
				To: 1, Local: segs[0].Base(), Size: 8, RecvFlag: doneFlag,
			})
		case 1:
			comm.WaitFlag(readyFlag, 1)
			for i := range datas[1] {
				datas[1][i] *= 2
			}
			// Raise cell 0's resultFlag with a zero-copy notification.
			if err := comm.Put(ap1000plus.Transfer{
				To: 0, Local: segs[1].Base(), Size: 8, RecvFlag: resultFlag,
			}); err != nil {
				return err
			}
			comm.WaitFlag(doneFlag, 1)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := m.SanitizeErr(); err != nil {
		log.Fatal(err)
	}
	if err := m.FaultErr(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %+v\n", m.TNetStats())
}
