// DSM counter: distributed shared memory (S4.2) and communication
// registers (S4.4) working together. Every cell remote-stores samples
// into a table in cell 0's shared block, fences, and then the cells
// compute the global sum with the communication-register reduction
// tree — no SEND/RECEIVE anywhere.
package main

import (
	"flag"
	"fmt"
	"log"

	"ap1000plus"
	"ap1000plus/internal/trace"
)

func main() {
	sanitize := flag.Bool("sanitize", false, "run with the apsan communication race detector")
	faultSpec := flag.String("fault", "", "fault plan spec (e.g. drop=0.05,dup=0.02,seed=42): run over a lossy wire with reliable delivery")
	flag.Parse()
	var plan *ap1000plus.FaultPlan
	if *faultSpec != "" {
		p, err := ap1000plus.ParseFaultPlan(*faultSpec)
		if err != nil {
			log.Fatal(err)
		}
		plan = p
	}
	opts := []ap1000plus.Option{ap1000plus.WithGrid(2, 2)}
	if *sanitize {
		opts = append(opts, ap1000plus.WithSanitize())
	}
	if plan != nil {
		opts = append(opts, ap1000plus.WithFault(plan))
	}
	m, err := ap1000plus.New(opts...)
	if err != nil {
		log.Fatal(err)
	}
	np := m.Cells()

	// A per-cell slot table in every cell's memory; cell 0's copy is
	// the shared rendezvous.
	segs := make([]*ap1000plus.Segment, np)
	tables := make([][]float64, np)
	dsms := make([]*ap1000plus.DSM, np)
	syncs := make([]*ap1000plus.Sync, np)
	for id := 0; id < np; id++ {
		cell := m.Cell(ap1000plus.CellID(id))
		if segs[id], tables[id], err = cell.AllocFloat64("table", np); err != nil {
			log.Fatal(err)
		}
		if dsms[id], err = ap1000plus.NewDSM(cell); err != nil {
			log.Fatal(err)
		}
		if syncs[id], err = ap1000plus.NewSync(cell, nil); err != nil {
			log.Fatal(err)
		}
	}

	err = m.Run(func(c *ap1000plus.Cell) error {
		id := int(c.ID())
		d := dsms[id]
		// Shared-space address of slot `id` in cell 0's table: normal
		// stores reach any cell's memory through the upper half of
		// the physical address space.
		ga, err := d.Space().Global(0, segs[0].Base()+ap1000plus.Addr(id*8))
		if err != nil {
			return err
		}
		sample := float64((id + 1) * 11)
		if err := d.StoreF64(ga, sample); err != nil {
			return err
		}
		d.Fence() // remote stores acknowledged
		c.HWBarrier()

		// Reduce the same samples over the communication registers.
		total := syncs[id].Reduce(trace.AllGroup, trace.ReduceSum, sample)
		if id == 0 {
			fmt.Println("cell 0's shared table:", tables[0])
			fmt.Println("register-tree sum:    ", total)
			var direct float64
			for _, v := range tables[0] {
				direct += v
			}
			if direct != total {
				return fmt.Errorf("mismatch: table sum %v vs reduction %v", direct, total)
			}
			fmt.Println("shared-memory and register reductions agree")
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := m.SanitizeErr(); err != nil {
		log.Fatal(err)
	}
	if err := m.FaultErr(); err != nil {
		log.Fatal(err)
	}
}
