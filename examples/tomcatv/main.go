// Tomcatv: the S5.4 stride ablation as a runnable demo. It runs the
// TOMCATV boundary-exchange pattern twice — once with hardware stride
// PUT (one 2056-byte message per column on the paper's grid), once
// with per-element 8-byte PUTs — and replays both traces through
// MLSim to show the difference hardware stride support makes.
package main

import (
	"flag"
	"fmt"
	"log"

	"ap1000plus"
	"ap1000plus/internal/apps"
)

func main() {
	sanitize := flag.Bool("sanitize", false, "run with the apsan communication race detector")
	faultSpec := flag.String("fault", "", "fault plan spec (e.g. drop=0.05,dup=0.02,seed=42): run over a lossy wire with reliable delivery")
	flag.Parse()
	apps.Sanitize = *sanitize
	if *faultSpec != "" {
		plan, err := ap1000plus.ParseFaultPlan(*faultSpec)
		if err != nil {
			log.Fatal(err)
		}
		apps.Fault = plan
	}

	run := func(stride bool) (*ap1000plus.TraceSet, error) {
		cfg := apps.TestTomcatv(stride)
		cfg.N = 129 // a bit larger than the test size, still quick
		in, err := apps.NewTomcatv(cfg)
		if err != nil {
			return nil, err
		}
		return in.Run()
	}

	st, err := run(true)
	if err != nil {
		log.Fatal(err)
	}
	nost, err := run(false)
	if err != nil {
		log.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		ts   *ap1000plus.TraceSet
	}{{"with stride", st}, {"without stride", nost}} {
		res, err := ap1000plus.Simulate(tc.ts, ap1000plus.AP1000Plus())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s %8d messages, avg %6.1f bytes, elapsed %12s on the AP1000+\n",
			tc.name, res.Messages, float64(res.Bytes)/float64(res.Messages), res.Elapsed)
	}

	stRes, _ := ap1000plus.Simulate(st, ap1000plus.AP1000Plus())
	nostRes, _ := ap1000plus.Simulate(nost, ap1000plus.AP1000Plus())
	fmt.Printf("stride data transfer is %.0f%% faster (the paper reports ~50%% at 257x257 on 16 cells)\n",
		100*(float64(nostRes.Elapsed)/float64(stRes.Elapsed)-1))
}
