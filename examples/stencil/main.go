// Stencil: a 2-D Jacobi heat solve on a global array with OVERLAP
// FIX — Figure 2's pattern. The grid is column-block distributed with
// one overlap column per side; every iteration refreshes the shadows
// with stride PUTs (the boundary columns are non-contiguous in the
// row-major local layout) and smooths the interior.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"ap1000plus"
)

const (
	n     = 64
	iters = 200
)

func main() {
	sanitize := flag.Bool("sanitize", false, "run with the apsan communication race detector")
	faultSpec := flag.String("fault", "", "fault plan spec (e.g. drop=0.05,dup=0.02,seed=42): run over a lossy wire with reliable delivery")
	flag.Parse()
	var plan *ap1000plus.FaultPlan
	if *faultSpec != "" {
		p, err := ap1000plus.ParseFaultPlan(*faultSpec)
		if err != nil {
			log.Fatal(err)
		}
		plan = p
	}
	opts := []ap1000plus.Option{ap1000plus.WithGrid(2, 2)}
	if *sanitize {
		opts = append(opts, ap1000plus.WithSanitize())
	}
	if plan != nil {
		opts = append(opts, ap1000plus.WithFault(plan))
	}
	m, err := ap1000plus.New(opts...)
	if err != nil {
		log.Fatal(err)
	}
	grid, err := ap1000plus.NewArray2D(m, "heat", n, n, 1)
	if err != nil {
		log.Fatal(err)
	}
	next, err := ap1000plus.NewArray2D(m, "heat2", n, n, 1)
	if err != nil {
		log.Fatal(err)
	}
	rts := make([]*ap1000plus.Runtime, m.Cells())
	for id := 0; id < m.Cells(); id++ {
		if rts[id], err = ap1000plus.NewRuntime(m.Cell(ap1000plus.CellID(id))); err != nil {
			log.Fatal(err)
		}
	}

	err = m.Run(func(c *ap1000plus.Cell) error {
		rt := rts[c.ID()]
		r := rt.Rank()
		lo, hi := grid.OwnedCols(r)
		w := grid.LocalWidth()
		// Hot left wall, cold elsewhere.
		for row := 0; row < n; row++ {
			for j := lo; j < hi; j++ {
				v := 0.0
				if j == 0 {
					v = 100.0
				}
				grid.Set(r, row, grid.LocalCol(r, j), v)
				next.Set(r, row, next.LocalCol(r, j), v)
			}
		}
		rt.Barrier()

		cur, nxt := grid, next
		for it := 0; it < iters; it++ {
			// OVERLAP FIX: stride PUTs refresh the shadow columns.
			if err := rt.OverlapFix2D(cur, true); err != nil {
				return err
			}
			g := cur.Local(r)
			for row := 1; row < n-1; row++ {
				for j := lo; j < hi; j++ {
					if j == 0 || j == n-1 {
						continue
					}
					cc := cur.LocalCol(r, j)
					v := 0.25 * (g[row*w+cc-1] + g[row*w+cc+1] + g[(row-1)*w+cc] + g[(row+1)*w+cc])
					nxt.Set(r, row, cc, v)
				}
			}
			cur, nxt = nxt, cur
			rt.Barrier()
		}

		// Global diagnostics through the reduction library.
		var local float64
		for row := 0; row < n; row++ {
			for j := lo; j < hi; j++ {
				local += cur.At(r, row, cur.LocalCol(r, j))
			}
		}
		total := rt.GlobalSum(local)
		hottestInterior := rt.GlobalMax(func() float64 {
			best := math.Inf(-1)
			for row := 1; row < n-1; row++ {
				for j := lo; j < hi; j++ {
					if j == 0 {
						continue
					}
					if v := cur.At(r, row, cur.LocalCol(r, j)); v > best {
						best = v
					}
				}
			}
			return best
		}())
		if r == 0 {
			fmt.Printf("after %d iterations: mean %.3f, hottest interior %.3f\n",
				iters, total/float64(n*n), hottestInterior)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := m.SanitizeErr(); err != nil {
		log.Fatal(err)
	}
	if err := m.FaultErr(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d messages, %d bytes\n", m.TNetStats().Messages, m.TNetStats().Bytes)
}
