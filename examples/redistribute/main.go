// Redistribute: block <-> cyclic redistribution of a global array —
// the "redistributing large matrices" task §1.1 gives as a motivation
// for hardware stride transfer. Every cell's block is sliced into P
// interleaved combs, each comb moving as ONE stride PUT; the reverse
// direction scatters with strided destinations.
package main

import (
	"flag"
	"fmt"
	"log"

	"ap1000plus"
)

const n = 1000

func main() {
	sanitize := flag.Bool("sanitize", false, "run with the apsan communication race detector")
	faultSpec := flag.String("fault", "", "fault plan spec (e.g. drop=0.05,dup=0.02,seed=42): run over a lossy wire with reliable delivery")
	flag.Parse()
	var plan *ap1000plus.FaultPlan
	if *faultSpec != "" {
		p, err := ap1000plus.ParseFaultPlan(*faultSpec)
		if err != nil {
			log.Fatal(err)
		}
		plan = p
	}
	opts := []ap1000plus.Option{ap1000plus.WithGrid(2, 2)}
	if *sanitize {
		opts = append(opts, ap1000plus.WithSanitize())
	}
	if plan != nil {
		opts = append(opts, ap1000plus.WithFault(plan))
	}
	m, err := ap1000plus.New(opts...)
	if err != nil {
		log.Fatal(err)
	}
	blk, err := ap1000plus.NewArray1D(m, "blk", n, 0)
	if err != nil {
		log.Fatal(err)
	}
	cyc, err := ap1000plus.NewCyclicArray1D(m, "cyc", n)
	if err != nil {
		log.Fatal(err)
	}
	back, err := ap1000plus.NewArray1D(m, "back", n, 0)
	if err != nil {
		log.Fatal(err)
	}
	rts := make([]*ap1000plus.Runtime, m.Cells())
	for id := 0; id < m.Cells(); id++ {
		if rts[id], err = ap1000plus.NewRuntime(m.Cell(ap1000plus.CellID(id))); err != nil {
			log.Fatal(err)
		}
	}

	err = m.Run(func(c *ap1000plus.Cell) error {
		rt := rts[c.ID()]
		r := rt.Rank()
		lo, _ := blk.OwnedRange(r)
		own := blk.Owned(r)
		for i := range own {
			own[i] = float64(lo + i)
		}
		rt.Barrier()

		mv, err := rt.RedistributeBlockToCyclic(cyc, blk)
		if err != nil {
			return err
		}
		mv.Wait()
		// In the cyclic layout, cell r's local element k is global
		// element k*P + r.
		for k := 0; k < cyc.OwnedCount(r); k++ {
			if cyc.Local(r)[k] != float64(k*m.Cells()+r) {
				return fmt.Errorf("cell %d: cyclic[%d] = %v", r, k, cyc.Local(r)[k])
			}
		}

		mv, err = rt.RedistributeCyclicToBlock(back, cyc)
		if err != nil {
			return err
		}
		mv.Wait()
		blo, bhi := back.OwnedRange(r)
		for i := blo; i < bhi; i++ {
			if back.Owned(r)[i-blo] != float64(i) {
				return fmt.Errorf("cell %d: back[%d] = %v", r, i, back.Owned(r)[i-blo])
			}
		}
		if r == 0 {
			fmt.Println("block -> cyclic -> block round trip verified")
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := m.SanitizeErr(); err != nil {
		log.Fatal(err)
	}
	if err := m.FaultErr(); err != nil {
		log.Fatal(err)
	}
	st := m.TNetStats()
	fmt.Printf("network: %d messages, %d payload bytes, mean distance %.2f hops\n",
		st.Messages, st.Bytes, st.MeanDistance())
}
