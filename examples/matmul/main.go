// MatMul: distributed dense matrix multiplication with bulk PUT —
// the ring algorithm of the paper's C-language MatMul (S5.2). The B
// blocks rotate around the cells; each step's block transfer is one
// bulk PUT that overlaps with the local multiply, protected by send
// and receive flags.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"ap1000plus"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/msc"
)

const n = 128

func main() {
	sanitize := flag.Bool("sanitize", false, "run with the apsan communication race detector")
	faultSpec := flag.String("fault", "", "fault plan spec (e.g. drop=0.05,dup=0.02,seed=42): run over a lossy wire with reliable delivery")
	flag.Parse()
	var plan *ap1000plus.FaultPlan
	if *faultSpec != "" {
		p, err := ap1000plus.ParseFaultPlan(*faultSpec)
		if err != nil {
			log.Fatal(err)
		}
		plan = p
	}
	opts := []ap1000plus.Option{ap1000plus.WithGrid(2, 2)}
	if *sanitize {
		opts = append(opts, ap1000plus.WithSanitize())
	}
	if plan != nil {
		opts = append(opts, ap1000plus.WithFault(plan))
	}
	m, err := ap1000plus.New(opts...)
	if err != nil {
		log.Fatal(err)
	}
	np := m.Cells()
	block := (n + np - 1) / np

	alloc := func(name string) ([]*ap1000plus.Segment, [][]float64) {
		segs := make([]*ap1000plus.Segment, np)
		data := make([][]float64, np)
		for id := 0; id < np; id++ {
			var err error
			segs[id], data[id], err = m.Cell(ap1000plus.CellID(id)).AllocFloat64(name, block*n)
			if err != nil {
				log.Fatal(err)
			}
		}
		return segs, data
	}
	_, aD := alloc("A")
	b0S, b0D := alloc("B0")
	b1S, b1D := alloc("B1")
	_, cD := alloc("C")

	aElem := func(i, j int) float64 { return math.Sin(float64(i+j) * 0.1) }
	bElem := func(i, j int) float64 { return math.Cos(float64(i*2+j) * 0.05) }

	err = m.Run(func(c *ap1000plus.Cell) error {
		r := int(c.ID())
		lo, hi := r*n/np, (r+1)*n/np
		mine := hi - lo
		for i := 0; i < mine; i++ {
			for j := 0; j < n; j++ {
				aD[r][i*n+j] = aElem(lo+i, j)
				b0D[r][i*n+j] = bElem(lo+i, j)
			}
		}
		recvFlag := c.Flags.Alloc()
		sendFlag := c.Flags.Alloc()
		c.HWBarrier()

		segs := [2][]*ap1000plus.Segment{b0S, b1S}
		data := [2][][]float64{b0D, b1D}
		next := (r + 1) % np
		for step := 0; step < np; step++ {
			cur, nxt := step%2, (step+1)%2
			owner := (r - step + np*np) % np
			olo, ohi := owner*n/np, (owner+1)*n/np
			if step < np-1 {
				// Bulk PUT of the whole block: non-blocking, so it
				// overlaps the multiply below.
				c.PushUser(msc.Command{
					Op: msc.OpPut, Dst: ap1000plus.CellID(next),
					RAddr: segs[nxt][next].Base(), LAddr: segs[cur][r].Base(),
					RStride:  mem.Contiguous(int64((ohi - olo) * n * 8)),
					LStride:  mem.Contiguous(int64((ohi - olo) * n * 8)),
					SendFlag: sendFlag, RecvFlag: recvFlag,
				})
			}
			bs := data[cur][r]
			for i := 0; i < mine; i++ {
				for k := olo; k < ohi; k++ {
					aik := aD[r][i*n+k]
					for j := 0; j < n; j++ {
						cD[r][i*n+j] += aik * bs[(k-olo)*n+j]
					}
				}
			}
			if step < np-1 {
				c.Flags.Wait(sendFlag, int64(step+1))
				c.Flags.Wait(recvFlag, int64(step+1))
			}
			c.HWBarrier()
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := m.SanitizeErr(); err != nil {
		log.Fatal(err)
	}
	if err := m.FaultErr(); err != nil {
		log.Fatal(err)
	}

	// Spot-check against the direct product.
	worst := 0.0
	for _, probe := range [][2]int{{0, 0}, {n / 2, n / 3}, {n - 1, n - 1}} {
		i, j := probe[0], probe[1]
		want := 0.0
		for k := 0; k < n; k++ {
			want += aElem(i, k) * bElem(k, j)
		}
		owner := i * np / n
		lo := owner * n / np
		got := cD[owner][(i-lo)*n+j]
		if d := math.Abs(got - want); d > worst {
			worst = d
		}
	}
	fmt.Printf("C = A x B on %d cells: max probe error %.2e\n", np, worst)
	fmt.Printf("network: %d messages, %d bytes (avg %d bytes/message)\n",
		m.TNetStats().Messages, m.TNetStats().Bytes,
		m.TNetStats().Bytes/m.TNetStats().Messages)
}
