// Latency: sweep the Figure 7 PUT model across message sizes and
// print the latency/sender-CPU curves for both machine generations —
// the quantitative story behind the paper's "the overhead of PUT/GET
// is the time for 8 store instructions".
package main

import (
	"fmt"

	"ap1000plus"
	"ap1000plus/internal/mlsim"
)

func main() {
	models := []*ap1000plus.Params{ap1000plus.AP1000(), ap1000plus.AP1000Plus()}
	fmt.Printf("%10s | %22s | %22s\n", "", "latency (us)", "sender CPU (us)")
	fmt.Printf("%10s | %10s %11s | %10s %11s\n", "size", models[0].Name, models[1].Name, models[0].Name, models[1].Name)
	for _, size := range []int64{4, 64, 256, 1024, 4096, 16384, 65536, 262144} {
		var lat, cpu [2]float64
		for i, p := range models {
			l, c := mlsim.PutLatency(p, size, 3)
			lat[i], cpu[i] = l.Us(), c.Us()
		}
		fmt.Printf("%9dB | %10.2f %11.2f | %10.2f %11.2f\n",
			size, lat[0], lat[1], cpu[0], cpu[1])
	}
	fmt.Println()
	fmt.Println("The AP1000+ sender cost never grows: the MSC+ takes over after the")
	fmt.Println("8 command-word stores, so communication overlaps computation (S3.1).")
}
