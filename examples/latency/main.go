// Latency: sweep the Figure 7 PUT model across message sizes and
// print the latency/sender-CPU curves for both machine generations —
// the quantitative story behind the paper's "the overhead of PUT/GET
// is the time for 8 store instructions". A small functional-machine
// ping-pong runs afterwards (under the race detector with -sanitize)
// so the modeled numbers sit next to an executed exchange.
package main

import (
	"flag"
	"fmt"
	"log"

	"ap1000plus"
	"ap1000plus/internal/mlsim"
)

func main() {
	sanitize := flag.Bool("sanitize", false, "run the functional ping-pong under the apsan communication race detector")
	faultSpec := flag.String("fault", "", "fault plan spec (e.g. drop=0.05,dup=0.02,seed=42): run the ping-pong over a lossy wire with reliable delivery")
	flag.Parse()
	var plan *ap1000plus.FaultPlan
	if *faultSpec != "" {
		p, err := ap1000plus.ParseFaultPlan(*faultSpec)
		if err != nil {
			log.Fatal(err)
		}
		plan = p
	}
	models := []*ap1000plus.Params{ap1000plus.AP1000(), ap1000plus.AP1000Plus()}
	fmt.Printf("%10s | %22s | %22s\n", "", "latency (us)", "sender CPU (us)")
	fmt.Printf("%10s | %10s %11s | %10s %11s\n", "size", models[0].Name, models[1].Name, models[0].Name, models[1].Name)
	for _, size := range []int64{4, 64, 256, 1024, 4096, 16384, 65536, 262144} {
		var lat, cpu [2]float64
		for i, p := range models {
			l, c := mlsim.PutLatency(p, size, 3)
			lat[i], cpu[i] = l.Us(), c.Us()
		}
		fmt.Printf("%9dB | %10.2f %11.2f | %10.2f %11.2f\n",
			size, lat[0], lat[1], cpu[0], cpu[1])
	}
	fmt.Println()
	fmt.Println("The AP1000+ sender cost never grows: the MSC+ takes over after the")
	fmt.Println("8 command-word stores, so communication overlaps computation (S3.1).")
	fmt.Println()
	if err := pingPong(*sanitize, plan); err != nil {
		log.Fatal(err)
	}
}

// pingPong executes one acknowledged PUT round trip between two cells
// of the functional machine — the exchange the model above prices.
func pingPong(sanitize bool, plan *ap1000plus.FaultPlan) error {
	opts := []ap1000plus.Option{ap1000plus.WithGrid(2, 2)}
	if sanitize {
		opts = append(opts, ap1000plus.WithSanitize())
	}
	if plan != nil {
		opts = append(opts, ap1000plus.WithFault(plan))
	}
	m, err := ap1000plus.New(opts...)
	if err != nil {
		return err
	}
	const n = 128
	segs := make([]*ap1000plus.Segment, m.Cells())
	datas := make([][]float64, m.Cells())
	for id := 0; id < m.Cells(); id++ {
		seg, data, err := m.Cell(ap1000plus.CellID(id)).AllocFloat64("buf", n)
		if err != nil {
			return err
		}
		segs[id], datas[id] = seg, data
	}
	there := m.Cell(1).Flags.Alloc() // rises on cell 1 when the ping lands
	back := m.Cell(0).Flags.Alloc()  // rises on cell 0 when the pong lands
	err = m.Run(func(c *ap1000plus.Cell) error {
		comm := ap1000plus.NewComm(c)
		switch c.ID() {
		case 0:
			for i := range datas[0] {
				datas[0][i] = float64(i)
			}
			if err := comm.Put(ap1000plus.Transfer{
				To: 1, Remote: segs[1].Base(), Local: segs[0].Base(),
				Size: n * 8, RecvFlag: there,
			}); err != nil {
				return err
			}
			comm.WaitFlag(back, 1)
		case 1:
			comm.WaitFlag(there, 1)
			if err := comm.Put(ap1000plus.Transfer{
				To: 0, Remote: segs[0].Base(), Local: segs[1].Base(),
				Size: n * 8, RecvFlag: back,
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := m.SanitizeErr(); err != nil {
		return err
	}
	if err := m.FaultErr(); err != nil {
		return err
	}
	fmt.Printf("functional ping-pong (%d bytes each way): %+v\n", n*8, m.TNetStats())
	return nil
}
