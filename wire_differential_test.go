package ap1000plus

import (
	"bytes"
	"fmt"
	"testing"
)

// wireDiffResult is everything the differential gate compares: the
// final bytes of every cell's receive buffer and every cell's flag
// increment count.
type wireDiffResult struct {
	mem   [][]byte
	flags []int64
}

// wireDiffRun executes the seeded chaos workload — alternating rounds
// of permutation PUTs and GETs with per-round flag waits and hardware
// barriers — on a machine built from opts, and snapshots memory and
// flag counts.
func wireDiffRun(t *testing.T, opts ...Option) wireDiffResult {
	t.Helper()
	const (
		chunk  = 64
		rounds = 12
	)
	opts = append([]Option{WithGrid(4, 4), WithObserve(), WithMemoryPerCell(1 << 20)}, opts...)
	m, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	np := m.Cells()
	srcs := make([][]byte, np)
	srcAddr := make([]Addr, np)
	dsts := make([][]byte, np)
	dstAddr := make([]Addr, np)
	for id := 0; id < np; id++ {
		seg, data, err := m.Cell(CellID(id)).AllocBytes("src", chunk)
		if err != nil {
			t.Fatal(err)
		}
		srcs[id], srcAddr[id] = data, seg.Base()
		seg, data, err = m.Cell(CellID(id)).AllocBytes("dst", int64(np*chunk))
		if err != nil {
			t.Fatal(err)
		}
		dsts[id], dstAddr[id] = data, seg.Base()
	}
	flag := FlagID(3)
	err = m.Run(func(c *Cell) error {
		comm := NewComm(c)
		id := int(c.ID())
		for r := 0; r < rounds; r++ {
			// Deterministic fill of this cell's outgoing chunk.
			for i := range srcs[id] {
				srcs[id][i] = byte(id*31 + r*17 + i)
			}
			c.HWBarrier() // all chunks for round r in place
			stride := 1 + (r*5+3)%(np-1)
			peer := (id + stride) % np
			var err error
			if r%2 == 0 {
				// PUT my chunk into the peer's slot for me.
				err = comm.Put(Transfer{
					To: CellID(peer), Remote: dstAddr[peer] + Addr(id*chunk),
					Local: srcAddr[id], Size: chunk, RecvFlag: flag,
				})
			} else {
				// GET the peer's chunk into its slot here.
				err = comm.Get(Transfer{
					To: CellID(peer), Remote: srcAddr[peer],
					Local: dstAddr[id] + Addr(peer*chunk), Size: chunk, RecvFlag: flag,
				})
			}
			if err != nil {
				return err
			}
			// Every round delivers exactly one flagged DMA per cell: the
			// incoming PUT on even rounds, my GET reply on odd ones.
			c.Flags.Wait(flag, int64(r+1))
			c.HWBarrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.FaultErr(); err != nil {
		t.Fatal(err)
	}
	res := wireDiffResult{mem: make([][]byte, np), flags: make([]int64, np)}
	for id := 0; id < np; id++ {
		res.mem[id] = append([]byte(nil), dsts[id]...)
		res.flags[id] = m.Cell(CellID(id)).Flags.Increments()
	}
	return res
}

// requireSameResult asserts bit-identical memory and flag counts.
func requireSameResult(t *testing.T, name string, want, got wireDiffResult) {
	t.Helper()
	for id := range want.mem {
		if !bytes.Equal(want.mem[id], got.mem[id]) {
			t.Fatalf("%s: cell %d memory differs from reference", name, id)
		}
		if want.flags[id] != got.flags[id] {
			t.Fatalf("%s: cell %d flag increments = %d, reference %d",
				name, id, got.flags[id], want.flags[id])
		}
	}
}

// TestWireDifferential is the wire-equivalence gate: the same seeded
// workload must produce bit-identical memory and flag counts on the
// lock-free ring wire (both link implementations, multiple forced
// delivery shards), the legacy mutex wire, and — under seeded fault
// plans, where the ring build falls back to synchronous transport but
// keeps its MSC rings and delivery workers — on both builds again.
// Run under -race in make verify.
func TestWireDifferential(t *testing.T) {
	ref := wireDiffRun(t) // ring wire, ring links, default workers

	variants := []struct {
		name string
		opts []Option
	}{
		{"ring wire, 4 workers", []Option{WithDeliveryWorkers(4)}},
		{"ring wire, mutex links, 4 workers", []Option{WithMutexLinks(), WithDeliveryWorkers(4)}},
		{"ring wire, one worker per cell", []Option{WithDeliveryWorkers(16)}},
		{"mutex wire", []Option{WithMutexWire()}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			requireSameResult(t, v.name, ref, wireDiffRun(t, v.opts...))
		})
	}

	for _, spec := range []string{
		"drop=0.06,dup=0.04,seed=17",
		"drop=0.05,reorder=0.05,seed=23",
	} {
		t.Run("fault "+spec, func(t *testing.T) {
			plan, err := ParseFaultPlan(spec)
			if err != nil {
				t.Fatal(err)
			}
			ringRes := wireDiffRun(t, WithFault(plan), WithDeliveryWorkers(4))
			plan2, err := ParseFaultPlan(spec)
			if err != nil {
				t.Fatal(err)
			}
			mtxRes := wireDiffRun(t, WithFault(plan2), WithMutexWire())
			name := fmt.Sprintf("fault %s ring-vs-reference", spec)
			requireSameResult(t, name, ref, ringRes)
			requireSameResult(t, "fault "+spec+" mutex-vs-ring", ringRes, mtxRes)
		})
	}
}
