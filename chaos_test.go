// Chaos suite: the three communication-kernel examples run under
// seeded fault plans — drops, duplicates, reorders, corruption — and
// must produce results bit-identical to the fault-free run, with the
// MC flag counts exactly equal (the fetch-and-increment fires exactly
// once per logical transfer no matter how often the wire re-delivers
// it). The reliable-delivery counters must show the recovery actually
// happened, and an exhausted retry budget must surface as a CellFault
// instead of a hang.
package ap1000plus

import (
	"errors"
	"math"
	"testing"
)

// chaosKernel runs one communication kernel on a 2x2 machine under an
// optional fault plan, returning the numeric output (for bit-exact
// comparison) and the machine counter snapshot.
type chaosKernel struct {
	name string
	run  func(t *testing.T, plan *FaultPlan) ([]float64, Metrics)
}

func chaosMachine(t *testing.T, plan *FaultPlan) *Machine {
	t.Helper()
	opts := []Option{WithGrid(2, 2), WithObserve()}
	if plan != nil {
		opts = append(opts, WithFault(plan))
	}
	m, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// chaosMatMul is the ring matmul of examples/matmul at a test size,
// rotating the blocks with one PUT per row (rather than one bulk PUT)
// so the wire sees enough packets for every plan's faults to fire.
func chaosMatMul(t *testing.T, plan *FaultPlan) ([]float64, Metrics) {
	t.Helper()
	m := chaosMachine(t, plan)
	const n = 32
	np := m.Cells()
	block := n / np

	alloc := func(name string) ([]*Segment, [][]float64) {
		segs := make([]*Segment, np)
		data := make([][]float64, np)
		for id := 0; id < np; id++ {
			var err error
			segs[id], data[id], err = m.Cell(CellID(id)).AllocFloat64(name, block*n)
			if err != nil {
				t.Fatal(err)
			}
		}
		return segs, data
	}
	_, aD := alloc("A")
	b0S, b0D := alloc("B0")
	b1S, b1D := alloc("B1")
	_, cD := alloc("C")

	aElem := func(i, j int) float64 { return math.Sin(float64(i+j) * 0.1) }
	bElem := func(i, j int) float64 { return math.Cos(float64(i*2+j) * 0.05) }

	err := m.Run(func(c *Cell) error {
		comm := NewComm(c)
		r := int(c.ID())
		lo, hi := r*n/np, (r+1)*n/np
		mine := hi - lo
		for i := 0; i < mine; i++ {
			for j := 0; j < n; j++ {
				aD[r][i*n+j] = aElem(lo+i, j)
				b0D[r][i*n+j] = bElem(lo+i, j)
			}
		}
		recvFlag := c.Flags.Alloc()
		sendFlag := c.Flags.Alloc()
		c.HWBarrier()

		segs := [2][]*Segment{b0S, b1S}
		data := [2][][]float64{b0D, b1D}
		next := (r + 1) % np
		for step := 0; step < np; step++ {
			cur, nxt := step%2, (step+1)%2
			owner := (r - step + np*np) % np
			olo, ohi := owner*n/np, (owner+1)*n/np
			if step < np-1 {
				for i := 0; i < ohi-olo; i++ {
					if err := comm.Put(Transfer{
						To:     CellID(next),
						Remote: segs[nxt][next].Base() + Addr(i*n*8),
						Local:  segs[cur][r].Base() + Addr(i*n*8),
						Size:   int64(n * 8), SendFlag: sendFlag, RecvFlag: recvFlag,
					}); err != nil {
						return err
					}
				}
			}
			bs := data[cur][r]
			for i := 0; i < mine; i++ {
				for k := olo; k < ohi; k++ {
					aik := aD[r][i*n+k]
					for j := 0; j < n; j++ {
						cD[r][i*n+j] += aik * bs[(k-olo)*n+j]
					}
				}
			}
			if step < np-1 {
				comm.WaitFlag(sendFlag, int64((step+1)*block))
				comm.WaitFlag(recvFlag, int64((step+1)*block))
			}
			c.HWBarrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var out []float64
	for r := 0; r < np; r++ {
		out = append(out, cD[r]...)
	}
	return out, m.Metrics()
}

// chaosStencil is the OVERLAP FIX Jacobi solve of examples/stencil at
// a test size: stride PUTs refresh shadow columns every iteration.
func chaosStencil(t *testing.T, plan *FaultPlan) ([]float64, Metrics) {
	t.Helper()
	m := chaosMachine(t, plan)
	const (
		n     = 16
		iters = 6
	)
	grid, err := NewArray2D(m, "heat", n, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	next, err := NewArray2D(m, "heat2", n, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	rts := make([]*Runtime, m.Cells())
	for id := 0; id < m.Cells(); id++ {
		if rts[id], err = NewRuntime(m.Cell(CellID(id))); err != nil {
			t.Fatal(err)
		}
	}
	sums := make([]float64, m.Cells())

	err = m.Run(func(c *Cell) error {
		rt := rts[c.ID()]
		r := rt.Rank()
		lo, hi := grid.OwnedCols(r)
		w := grid.LocalWidth()
		for row := 0; row < n; row++ {
			for j := lo; j < hi; j++ {
				v := 0.0
				if j == 0 {
					v = 100.0
				}
				grid.Set(r, row, grid.LocalCol(r, j), v)
				next.Set(r, row, next.LocalCol(r, j), v)
			}
		}
		rt.Barrier()

		cur, nxt := grid, next
		for it := 0; it < iters; it++ {
			if err := rt.OverlapFix2D(cur, true); err != nil {
				return err
			}
			g := cur.Local(r)
			for row := 1; row < n-1; row++ {
				for j := lo; j < hi; j++ {
					if j == 0 || j == n-1 {
						continue
					}
					cc := cur.LocalCol(r, j)
					v := 0.25 * (g[row*w+cc-1] + g[row*w+cc+1] + g[(row-1)*w+cc] + g[(row+1)*w+cc])
					nxt.Set(r, row, cc, v)
				}
			}
			cur, nxt = nxt, cur
			rt.Barrier()
		}
		var local float64
		for row := 0; row < n; row++ {
			for j := lo; j < hi; j++ {
				local += cur.At(r, row, cur.LocalCol(r, j))
			}
		}
		sums[r] = rt.GlobalSum(local)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var out []float64
	for id := 0; id < m.Cells(); id++ {
		out = append(out, grid.Local(id)...)
		out = append(out, next.Local(id)...)
	}
	out = append(out, sums...)
	return out, m.Metrics()
}

// chaosRedistribute is the block <-> cyclic round trip of
// examples/redistribute at a test size: comb-stride PUTs both ways.
func chaosRedistribute(t *testing.T, plan *FaultPlan) ([]float64, Metrics) {
	t.Helper()
	m := chaosMachine(t, plan)
	const n = 64
	blk, err := NewArray1D(m, "blk", n, 0)
	if err != nil {
		t.Fatal(err)
	}
	cyc, err := NewCyclicArray1D(m, "cyc", n)
	if err != nil {
		t.Fatal(err)
	}
	back, err := NewArray1D(m, "back", n, 0)
	if err != nil {
		t.Fatal(err)
	}
	rts := make([]*Runtime, m.Cells())
	for id := 0; id < m.Cells(); id++ {
		if rts[id], err = NewRuntime(m.Cell(CellID(id))); err != nil {
			t.Fatal(err)
		}
	}

	err = m.Run(func(c *Cell) error {
		rt := rts[c.ID()]
		r := rt.Rank()
		lo, _ := blk.OwnedRange(r)
		own := blk.Owned(r)
		for i := range own {
			own[i] = float64(lo + i)
		}
		rt.Barrier()

		mv, err := rt.RedistributeBlockToCyclic(cyc, blk)
		if err != nil {
			return err
		}
		mv.Wait()
		mv, err = rt.RedistributeCyclicToBlock(back, cyc)
		if err != nil {
			return err
		}
		mv.Wait()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var out []float64
	for id := 0; id < m.Cells(); id++ {
		out = append(out, cyc.Local(id)...)
		out = append(out, back.Owned(id)...)
	}
	return out, m.Metrics()
}

func flagCounts(mt Metrics) []int64 {
	out := make([]int64, len(mt.Cells))
	for i := range mt.Cells {
		out[i] = mt.Cells[i].FlagIncrements
	}
	return out
}

// TestChaosKernels drives every kernel under every fault plan: the
// numerics must match the fault-free run bit-for-bit, flag counts must
// match exactly, and the fault counters must show the plan actually
// fired and was recovered from.
func TestChaosKernels(t *testing.T) {
	plans := []struct {
		name, spec string
		// which injector decisions the seeded plan must have produced
		drops, dups, reorders, corrupts bool
	}{
		{"drop", "drop=0.08,seed=42", true, false, false, false},
		{"dup", "dup=0.1,seed=7", false, true, false, false},
		{"drop+dup", "drop=0.05,dup=0.05,seed=42", true, true, false, false},
		{"reorder", "reorder=0.08,seed=13", false, false, true, false},
		{"corrupt", "corrupt=0.06,seed=5", false, false, false, true},
		{"storm", "drop=0.05,dup=0.05,reorder=0.04,corrupt=0.03,seed=99", true, true, true, true},
	}
	kernels := []chaosKernel{
		{"matmul", chaosMatMul},
		{"stencil", chaosStencil},
		{"redistribute", chaosRedistribute},
	}
	for _, k := range kernels {
		t.Run(k.name, func(t *testing.T) {
			base, baseM := k.run(t, nil)
			if baseM.Fault != nil {
				t.Fatal("fault metrics reported on a fault-free machine")
			}
			baseFlags := flagCounts(baseM)
			for _, p := range plans {
				t.Run(p.name, func(t *testing.T) {
					plan, err := ParseFaultPlan(p.spec)
					if err != nil {
						t.Fatal(err)
					}
					got, mt := k.run(t, plan)
					if len(got) != len(base) {
						t.Fatalf("result length %d, want %d", len(got), len(base))
					}
					for i := range got {
						if math.Float64bits(got[i]) != math.Float64bits(base[i]) {
							t.Fatalf("result[%d] = %v, fault-free run produced %v", i, got[i], base[i])
						}
					}
					gotFlags := flagCounts(mt)
					for i := range gotFlags {
						if gotFlags[i] != baseFlags[i] {
							t.Fatalf("cell %d flag increments = %d, fault-free run produced %d (exactly-once violated)",
								i, gotFlags[i], baseFlags[i])
						}
					}
					f := mt.Fault
					if f == nil {
						t.Fatal("Metrics().Fault nil on a machine with a fault plan")
					}
					if f.CellFaults != 0 {
						t.Fatalf("retry budget exhausted %d times under a recoverable plan", f.CellFaults)
					}
					if p.drops && (f.Drops == 0 || f.Retransmits == 0) {
						t.Errorf("drop plan: drops=%d retransmits=%d, want both > 0", f.Drops, f.Retransmits)
					}
					if p.dups && (f.Dups == 0 || f.Dedups == 0) {
						t.Errorf("dup plan: dups=%d dedups=%d, want both > 0", f.Dups, f.Dedups)
					}
					if p.reorders && (f.Reorders == 0 || f.Retransmits == 0 || f.Dedups == 0) {
						t.Errorf("reorder plan: reorders=%d retransmits=%d dedups=%d, want all > 0",
							f.Reorders, f.Retransmits, f.Dedups)
					}
					if p.corrupts && (f.Corrupts == 0 || f.CorruptDetected == 0 || f.Retransmits == 0) {
						t.Errorf("corrupt plan: corrupts=%d detected=%d retransmits=%d, want all > 0",
							f.Corrupts, f.CorruptDetected, f.Retransmits)
					}
				})
			}
		})
	}
}

// TestChaosBudgetExhaustion kills one link outright with a tiny retry
// budget: the machine must come back (no hang), surface a CellFault
// through FaultErr/CellFaultErrs and the counters, and log the
// cell-fault interrupt — graceful degradation, not deadlock. The
// program must not wait on the flag of the doomed transfer.
func TestChaosBudgetExhaustion(t *testing.T) {
	plan, err := ParseFaultPlan("link:0:1:drop=1,budget=4,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(WithGrid(2, 2), WithFault(plan))
	if err != nil {
		t.Fatal(err)
	}
	segs := make([]*Segment, m.Cells())
	for id := 0; id < m.Cells(); id++ {
		if segs[id], _, err = m.Cell(CellID(id)).AllocFloat64("buf", 8); err != nil {
			t.Fatal(err)
		}
	}
	err = m.Run(func(c *Cell) error {
		if c.ID() != 0 {
			return nil
		}
		comm := NewComm(c)
		return comm.Put(Transfer{To: 1, Remote: segs[1].Base(), Local: segs[0].Base(), Size: 64})
	})
	if err != nil {
		t.Fatal(err)
	}
	ferr := m.FaultErr()
	if ferr == nil {
		t.Fatal("FaultErr nil after a dead link exhausted the retry budget")
	}
	var cf *CellFault
	if !errors.As(ferr, &cf) {
		t.Fatalf("FaultErr = %v, want a *CellFault", ferr)
	}
	if cf.Cell != 0 || cf.Dst != 1 || cf.Attempts != 4 {
		t.Fatalf("CellFault = %+v, want cell 0 -> 1 after 4 attempts", cf)
	}
	if n := len(m.CellFaultErrs()); n != 1 {
		t.Fatalf("CellFaultErrs reports %d faults, want 1", n)
	}
	mt := m.Metrics()
	if mt.Fault == nil || mt.Fault.CellFaults != 1 {
		t.Fatalf("Fault metrics = %+v, want CellFaults=1", mt.Fault)
	}
	if mt.Fault.Retransmits != 3 {
		t.Fatalf("Retransmits = %d, want 3 (budget 4 = 1 try + 3 retries)", mt.Fault.Retransmits)
	}
	if got := mt.Cells[0].OSInterrupts["cell-fault"]; got != 1 {
		t.Fatalf("cell 0 cell-fault interrupts = %d, want 1", got)
	}
}
