package ap1000plus

import (
	"fmt"

	"ap1000plus/internal/machine"
	"ap1000plus/internal/topology"
)

// Option configures a machine under construction; pass options to New.
// The machine's parameter struct itself is internal — options are the
// only construction surface, and every combination is validated before
// any cell is built, so a misconfigured machine is an error from New,
// never a half-working instance.
type Option func(*builder) error

// builder accumulates options into the internal machine config.
type builder struct {
	cfg      machine.Config
	haveGrid bool // WithGrid or WithCells seen
}

// New builds a machine from options. Geometry is mandatory: pass
// WithGrid for an explicit torus or WithCells for the most square
// torus of a given size. Everything else defaults to the paper's
// hardware — 16 MB per cell, 64-word MSC+ queues, the lock-free ring
// wire, no tracing or checking layers.
//
//	m, err := ap1000plus.New(
//		ap1000plus.WithGrid(8, 8),
//		ap1000plus.WithObserve(),
//	)
func New(opts ...Option) (*Machine, error) {
	var b builder
	for _, opt := range opts {
		if err := opt(&b); err != nil {
			return nil, err
		}
	}
	if !b.haveGrid {
		return nil, fmt.Errorf("ap1000plus: no geometry: pass WithGrid or WithCells")
	}
	return machine.New(b.cfg)
}

// WithGrid shapes the machine as a width x height torus (the product
// is the cell count, 4..4096).
func WithGrid(width, height int) Option {
	return func(b *builder) error {
		if b.haveGrid {
			return fmt.Errorf("ap1000plus: geometry set twice (one WithGrid/WithCells only)")
		}
		if _, err := topology.NewTorus(width, height); err != nil {
			return err
		}
		b.cfg.Width, b.cfg.Height = width, height
		b.haveGrid = true
		return nil
	}
}

// WithCells shapes the machine as the most square torus with exactly
// n cells, mirroring how AP1000 cabinets were configured (64 cells =
// 8x8).
func WithCells(n int) Option {
	return func(b *builder) error {
		if b.haveGrid {
			return fmt.Errorf("ap1000plus: geometry set twice (one WithGrid/WithCells only)")
		}
		t, err := topology.SquarishTorus(n)
		if err != nil {
			return err
		}
		b.cfg.Width, b.cfg.Height = t.Width(), t.Height()
		b.haveGrid = true
		return nil
	}
}

// WithMemoryPerCell sets each cell's DRAM in bytes (default 16 MB).
// Memory is committed lazily, so large machines with small working
// sets stay cheap.
func WithMemoryPerCell(bytes int64) Option {
	return func(b *builder) error {
		if bytes <= 0 {
			return fmt.Errorf("ap1000plus: memory per cell must be positive, got %d", bytes)
		}
		b.cfg.MemoryPerCell = bytes
		return nil
	}
}

// WithQueueWords sizes the MSC+ command queues in 32-bit words
// (default 64, the hardware's FIFO depth; overflow spills to DRAM).
func WithQueueWords(words int) Option {
	return func(b *builder) error {
		if words <= 0 {
			return fmt.Errorf("ap1000plus: queue words must be positive, got %d", words)
		}
		b.cfg.QueueWords = words
		return nil
	}
}

// WithPartitions splits the machine into k disjoint partitions of
// near-equal contiguous cell ranges. Each partition gets its own
// barrier domain, its jobs run independently (Machine.RunJob, or the
// gang Scheduler), and the T-net refuses cross-partition traffic —
// the isolation boundary multi-tenant runs rely on. Default 1 (the
// whole machine is one partition). Conflicts with WithSanitize and
// WithCombining, whose models span all cells.
func WithPartitions(k int) Option {
	return func(b *builder) error {
		if k <= 0 {
			return fmt.Errorf("ap1000plus: partition count must be positive, got %d", k)
		}
		b.cfg.Partitions = k
		return nil
	}
}

// WithTrace enables trace recording under the given application name;
// retrieve the capture with Machine.Traces and replay it with
// Simulate.
func WithTrace(app string) Option {
	return func(b *builder) error {
		if app == "" {
			return fmt.Errorf("ap1000plus: trace application name must be non-empty")
		}
		b.cfg.TraceApp = app
		return nil
	}
}

// WithSanitize arms the apsan communication race detector: every DMA
// access is checked against a happens-before model of flags, barriers,
// acknowledgements and message receipt. Implies synchronous packet
// delivery (the detector's clocks assume it).
func WithSanitize() Option {
	return func(b *builder) error {
		b.cfg.Sanitize = true
		return nil
	}
}

// WithObserve enables the per-cell counter layer, snapshot via
// Machine.Metrics. Zero-cost (one nil check per hook) when absent.
func WithObserve() Option {
	return func(b *builder) error {
		b.cfg.Observe = true
		return nil
	}
}

// WithTimeline additionally collects Chrome trace-event/Perfetto
// slices and instants into tl (see NewTimeline). Implies WithObserve.
func WithTimeline(tl *Timeline) Option {
	return func(b *builder) error {
		if tl == nil {
			return fmt.Errorf("ap1000plus: WithTimeline(nil)")
		}
		b.cfg.Timeline = tl
		return nil
	}
}

// WithFault injects a deterministic seeded wire-fault plan (see
// ParseFaultPlan) and arms the MSC+'s reliable-delivery path. Implies
// WithObserve and synchronous packet delivery (retransmission reads
// each send's verdict).
func WithFault(plan *FaultPlan) Option {
	return func(b *builder) error {
		if plan == nil {
			return fmt.Errorf("ap1000plus: WithFault(nil); omit the option for a trusted wire")
		}
		b.cfg.Fault = plan
		return nil
	}
}

// WithCombining arms the T-net's in-network combining of same-address
// combinable remote atomics — a hot counter costs O(log n) messages
// instead of O(n), with bit-for-bit identical results.
func WithCombining() Option {
	return func(b *builder) error {
		b.cfg.Combining = true
		return nil
	}
}

// WithMutexWire selects the legacy mutex+cond message path: one
// controller goroutine per cell, synchronous delivery on the sender's
// goroutine. The default is the lock-free ring wire; the mutex build
// is kept as the differential-testing reference and for workloads
// that push commands into one cell's MSC from several goroutines at
// once (the ring wire's SPSC discipline forbids that). Conflicts with
// WithDeliveryWorkers and WithMutexLinks.
func WithMutexWire() Option {
	return func(b *builder) error {
		b.cfg.Wire = machine.WireMutex
		return nil
	}
}

// WithDeliveryWorkers sets the ring wire's delivery-shard count
// (default min(GOMAXPROCS, cells)). Each cell is pinned to the worker
// numbered id mod n. Conflicts with WithMutexWire.
func WithDeliveryWorkers(n int) Option {
	return func(b *builder) error {
		if n <= 0 {
			return fmt.Errorf("ap1000plus: delivery workers must be positive, got %d", n)
		}
		b.cfg.Workers = n
		return nil
	}
}

// WithMutexLinks swaps the ring wire's lock-free inter-shard links
// for the mutex-guarded reference implementation — the knob the
// differential gate turns to compare the two under identical
// workloads. Delivery semantics are identical. Conflicts with
// WithMutexWire.
func WithMutexLinks() Option {
	return func(b *builder) error {
		b.cfg.MutexLinks = true
		return nil
	}
}
