// Property suite for the PGAS layer: a randomized irregular workload
// — puts, commutative atomics, gathers and fetch-and-adds over shared
// arrays — must produce bit-identical results whether it is issued
// naively (one MSC+ command per operation) or through the exstack
// aggregator, on a plain machine, under the apsan race detector,
// over a lossy wire with reliable delivery, and with T-net atomic
// combining on. Fetch-and-add previous values must form the exact set
// {0..total-1} per counter in every configuration.
package ap1000plus

import (
	"fmt"
	"sort"
	"testing"
)

// pgasPropCfg is one machine configuration of the property matrix.
type pgasPropCfg struct {
	name       string
	aggregated bool
	sanitize   bool
	combining  bool
	fault      string // fault plan spec, "" = reliable wire
}

// pgasPropOp is one pre-generated operation of the random workload.
// Streams are generated host-side from the seed so every machine
// configuration replays exactly the same program.
type pgasPropOp struct {
	kind byte // 'p' put, 'a' add, 'x' max, 'n' min, 'g' get, 'f' fetch-add
	i    int64
	v    int64
}

// pgasPropStreams builds each rank's operation stream. Op classes are
// disjoint per region — puts have an exclusive writer per index and
// everything else commutes — so reordering between the naive and
// aggregated issue paths cannot change the final image.
func pgasPropStreams(seed uint64, np int, n, ctrs int64, ops int) [][]pgasPropOp {
	streams := make([][]pgasPropOp, np)
	for rank := 0; rank < np; rank++ {
		state := seed + uint64(rank)*0x9E3779B97F4A7C15
		next := func() uint64 {
			state = state*6364136223846793005 + 1442695040888963407
			return state >> 11
		}
		for k := 0; k < ops; k++ {
			i := int64(next() % uint64(n))
			v := int64(next()%1000) - 500
			var op pgasPropOp
			switch next() % 6 {
			case 0: // exclusive-writer put: deterministic final value
				if int(i*7+3)%np != rank {
					continue
				}
				op = pgasPropOp{'p', i, i*11 + int64(rank)}
			case 1:
				op = pgasPropOp{'a', i, v}
			case 2:
				op = pgasPropOp{'x', i, v}
			case 3:
				op = pgasPropOp{'n', i, v}
			case 4:
				op = pgasPropOp{'g', i, 0}
			default:
				op = pgasPropOp{'f', int64(next() % uint64(ctrs)), 0}
			}
			streams[rank] = append(streams[rank], op)
		}
	}
	return streams
}

// runPGASProperty executes the workload under one configuration and
// returns its full observable image: every array, the per-rank gather
// logs, and the per-counter sorted fetch-and-add previous values
// (which must be exactly {0..total-1}).
func runPGASProperty(t *testing.T, cfg pgasPropCfg, seed uint64) []int64 {
	t.Helper()
	var plan *FaultPlan
	if cfg.fault != "" {
		p, err := ParseFaultPlan(cfg.fault)
		if err != nil {
			t.Fatal(err)
		}
		plan = p
	}
	opts := []Option{WithGrid(3, 2), WithObserve()}
	if cfg.sanitize {
		opts = append(opts, WithSanitize())
	}
	if cfg.combining {
		opts = append(opts, WithCombining())
	}
	if plan != nil {
		opts = append(opts, WithFault(plan))
	}
	m, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	np := m.Cells()
	const (
		n    = 71 // prime: every cell owns a different slot count
		ctrs = 4
		ops  = 160
	)
	h, err := NewSymmetricHeap(m)
	if err != nil {
		t.Fatal(err)
	}
	alloc := func(name string, ln int64) *SharedArray {
		s, err := h.Alloc(name, ln)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	puts := alloc("prop.put", n)
	adds := alloc("prop.add", n)
	maxs := alloc("prop.max", n)
	mins := alloc("prop.min", n)
	tab := alloc("prop.tab", n)
	ctr := alloc("prop.ctr", ctrs)
	for i := int64(0); i < n; i++ {
		maxs.SetWord(i, -1<<40)
		mins.SetWord(i, 1<<40)
		tab.SetWord(i, i*13+5)
	}
	pes := make([]*PE, np)
	for id := 0; id < np; id++ {
		if pes[id], err = NewPE(h, m.Cell(CellID(id))); err != nil {
			t.Fatal(err)
		}
	}
	var aggs []*AggPE
	if cfg.aggregated {
		ag, err := NewAggregator(h, 16) // small regions force multiple rounds
		if err != nil {
			t.Fatal(err)
		}
		aggs = make([]*AggPE, np)
		for id := 0; id < np; id++ {
			if aggs[id], err = ag.Bind(pes[id]); err != nil {
				t.Fatal(err)
			}
		}
	}

	streams := pgasPropStreams(seed, np, n, ctrs, ops)
	gets := make([][]int64, np)
	fetched := make([][]int64, np)
	err = m.Run(func(c *Cell) error {
		me := int(c.ID())
		pe := pes[me]
		// Pre-sized logs: aggregated Get/FetchAdd hold pointers into
		// them until Flush, so they must never reallocate.
		var ng, nf int
		for _, op := range streams[me] {
			switch op.kind {
			case 'g':
				ng++
			case 'f':
				nf++
			}
		}
		gl, fl := make([]int64, 0, ng), make([]int64, 0, nf)
		for _, op := range streams[me] {
			var err error
			if aggs != nil {
				a := aggs[me]
				switch op.kind {
				case 'p':
					err = a.Put(puts, op.i, op.v)
				case 'a':
					err = a.Add(adds, op.i, op.v)
				case 'x':
					err = a.Max(maxs, op.i, op.v)
				case 'n':
					err = a.Min(mins, op.i, op.v)
				case 'g':
					gl = append(gl, 0)
					err = a.Get(tab, op.i, &gl[len(gl)-1])
				case 'f':
					fl = append(fl, 0)
					dst := &fl[len(fl)-1]
					err = a.FetchAdd(ctr, op.i, 1, func(old int64) { *dst = old })
				}
			} else {
				switch op.kind {
				case 'p':
					err = pe.PutInt64(puts, op.i, op.v)
				case 'a':
					err = pe.AtomicAdd(adds, op.i, op.v)
				case 'x':
					err = pe.AtomicMax(maxs, op.i, op.v)
				case 'n':
					err = pe.AtomicMin(mins, op.i, op.v)
				case 'g':
					var v int64
					if v, err = pe.GetInt64(tab, op.i); err == nil {
						gl = append(gl, v)
					}
				case 'f':
					var v int64
					if v, err = pe.FetchAdd(ctr, op.i, 1); err == nil {
						fl = append(fl, v)
					}
				}
			}
			if err != nil {
				return err
			}
		}
		if aggs != nil {
			if err := aggs[me].Flush(); err != nil {
				return err
			}
			if err := aggs[me].Quiesced(); err != nil {
				return fmt.Errorf("cell %d after Flush: %w", me, err)
			}
		}
		pe.Barrier()
		gets[me], fetched[me] = gl, fl
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SanitizeErr(); err != nil {
		t.Fatal(err)
	}
	if err := m.FaultErr(); err != nil {
		t.Fatal(err)
	}

	// Fetch-and-add exactness: each counter's previous values, pooled
	// over all ranks, must be exactly {0..total-1}. The sorted pool is
	// therefore deterministic and belongs in the image.
	perCtr := make([][]int64, ctrs)
	for rank := 0; rank < np; rank++ {
		k := 0
		for _, op := range streams[rank] {
			if op.kind == 'f' {
				perCtr[op.i] = append(perCtr[op.i], fetched[rank][k])
				k++
			}
		}
		if k != len(fetched[rank]) {
			t.Fatalf("rank %d logged %d fetches, stream has %d", rank, len(fetched[rank]), k)
		}
	}
	var image []int64
	for c := int64(0); c < ctrs; c++ {
		vals := perCtr[c]
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for want, got := range vals {
			if got != int64(want) {
				t.Fatalf("%s: counter %d previous values %v, want exactly 0..%d",
					cfg.name, c, vals, len(vals)-1)
			}
		}
		if total := ctr.Word(c); total != int64(len(vals)) {
			t.Fatalf("%s: counter %d = %d after %d fetch-adds", cfg.name, c, total, len(vals))
		}
		image = append(image, int64(len(vals)))
		image = append(image, vals...)
	}
	for _, s := range []*SharedArray{puts, adds, maxs, mins} {
		image = append(image, s.Words()...)
	}
	for rank := 0; rank < np; rank++ {
		image = append(image, gets[rank]...)
	}
	return image
}

// TestPGASProperty runs the workload matrix: the naive plain machine
// is the reference image, and every other configuration — aggregated,
// sanitized, faulted, combining — must reproduce it bit for bit.
func TestPGASProperty(t *testing.T) {
	cfgs := []pgasPropCfg{
		{name: "agg-plain", aggregated: true},
		{name: "naive-sanitize", sanitize: true},
		{name: "agg-sanitize", aggregated: true, sanitize: true},
		{name: "naive-fault", fault: "drop=0.05,dup=0.05,seed=42"},
		{name: "agg-fault", aggregated: true, fault: "drop=0.05,dup=0.05,seed=42"},
		{name: "naive-combining", combining: true},
		{name: "agg-combining", aggregated: true, combining: true},
	}
	for _, seed := range []uint64{1, 99} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			base := runPGASProperty(t, pgasPropCfg{name: "naive-plain"}, seed)
			if len(base) == 0 {
				t.Fatal("empty reference image")
			}
			for _, cfg := range cfgs {
				t.Run(cfg.name, func(t *testing.T) {
					got := runPGASProperty(t, cfg, seed)
					if len(got) != len(base) {
						t.Fatalf("image length %d, reference %d", len(got), len(base))
					}
					for i := range got {
						if got[i] != base[i] {
							t.Fatalf("image[%d] = %d, reference %d", i, got[i], base[i])
						}
					}
				})
			}
		})
	}
}
