package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"ap1000plus/internal/apps"
)

// dsmCacheRow is one line of the BENCH_dsmcache.json report: the DSM
// gather workload run with the write-through page cache on or off.
type dsmCacheRow struct {
	Mode        string // cached | uncached
	Cells       int
	Passes      int
	Loads       int64   // DSM loads issued by the program (hits + remote)
	Hits        int64   // page-cache hits
	Misses      int64   // page-cache misses (each becomes a remote load)
	HitRate     float64 // Hits / (Hits + Misses); 0 for uncached
	RemoteLoads int64   // blocking remote loads that reached the MSC+
	Messages    int64   // T-net messages carried
	WallNS      int64   // wall-clock nanoseconds for the whole run
	Speedup     float64 // uncached wall / this wall
}

// runDSMCache measures the coherent DSM page cache: the gather kernel
// (every cell repeatedly reads pseudo-random entries of every other
// cell's table) runs once through plain blocking remote loads and once
// through the page cache, on identical inputs — the numerics are
// verified both times.
func runDSMCache(w io.Writer, quick bool, jsonPath string) error {
	cfg := apps.DSMGatherConfig{Cells: 16, Entries: 256, Passes: 25, Reads: 128, CachePages: 64}
	if quick {
		cfg.Passes = 12
	}
	obsWas := apps.Observe
	apps.Observe = true
	defer func() { apps.Observe = obsWas }()

	var rows []dsmCacheRow
	for _, mode := range []string{"uncached", "cached"} {
		c := cfg
		c.Cache = mode == "cached"
		in, err := apps.NewDSMGather(c)
		if err != nil {
			return fmt.Errorf("dsmcache/%s: %w", mode, err)
		}
		fmt.Fprintf(os.Stderr, "running DSMGather %s...\n", mode)
		if _, err := in.Run(); err != nil {
			return fmt.Errorf("dsmcache/%s: %w", mode, err)
		}
		mt := in.Machine.Metrics()
		tot := mt.Totals()
		r := dsmCacheRow{
			Mode: mode, Cells: c.Cells, Passes: c.Passes,
			Loads:       tot.DSMHits + tot.RemoteLoad,
			Hits:        tot.DSMHits,
			Misses:      tot.DSMMisses,
			RemoteLoads: tot.RemoteLoad,
			Messages:    mt.TNet.Messages,
			WallNS:      mt.WallNanos,
			Speedup:     1,
		}
		if hm := r.Hits + r.Misses; hm > 0 {
			r.HitRate = float64(r.Hits) / float64(hm)
		}
		if len(rows) > 0 && r.WallNS > 0 {
			r.Speedup = float64(rows[0].WallNS) / float64(r.WallNS)
		}
		rows = append(rows, r)
	}

	fmt.Fprintln(w, "Coherent DSM page cache vs blocking remote loads (gather kernel):")
	fmt.Fprintf(w, "  %-10s %10s %10s %8s %12s %10s %12s %8s\n",
		"mode", "hits", "misses", "hitrate", "remote-loads", "messages", "wall-ns", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10s %10d %10d %7.1f%% %12d %10d %12d %7.2fx\n",
			r.Mode, r.Hits, r.Misses, 100*r.HitRate, r.RemoteLoads, r.Messages, r.WallNS, r.Speedup)
	}
	fmt.Fprintln(w)

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote dsm cache report %s (%d rows)\n", jsonPath, len(rows))
	}
	return nil
}
