package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"ap1000plus/internal/apps"
)

// pgasRow is one line of the BENCH_pgas.json report: a bale kernel on
// the PGAS layer, naive one-command-per-operation issue vs exstack
// aggregation.
type pgasRow struct {
	Kernel    string // histogram | indexgather
	Mode      string // naive | agg
	Cells     int
	Ops       int64   // fine-grained PGAS operations the program issued
	Messages  int64   // total T-net messages
	MsgsPerOp float64 // Messages / Ops: ~2+ naive, amortized away by aggregation
	WallNS    int64   // wall-clock nanoseconds for the whole run
}

// runPGAS measures what aggregation buys on the bale fine-grained
// kernels: the same histogram and index-gather programs run naive
// (every update or gather is its own MSC+ command exchange) and
// aggregated (updates packed into per-destination regions, one bulk
// PUT per destination per round). Verify holds both times, so the
// message-count ratio is for bit-identical results.
func runPGAS(w io.Writer, quick bool, jsonPath string) error {
	obsWas := apps.Observe
	apps.Observe = true
	defer func() { apps.Observe = obsWas }()

	shapes := []int{16, 64}
	ops := 512
	if quick {
		shapes = []int{16}
		ops = 128
	}
	var rows []pgasRow
	for _, cells := range shapes {
		builders := []struct {
			kernel string
			build  func(mode apps.PGASMode) (*apps.Instance, error)
		}{
			{"histogram", func(mode apps.PGASMode) (*apps.Instance, error) {
				return apps.NewPGASHisto(apps.PGASHistoConfig{
					Cells: cells, Table: int64(cells) * 61, OpsPerCell: ops,
					Mode: mode, Seed: 42,
				})
			}},
			{"indexgather", func(mode apps.PGASMode) (*apps.Instance, error) {
				return apps.NewPGASIG(apps.PGASIGConfig{
					Cells: cells, Table: int64(cells) * 61, OpsPerCell: ops,
					Mode: mode, Seed: 7,
				})
			}},
		}
		for _, b := range builders {
			for _, mode := range []apps.PGASMode{apps.PGASNaive, apps.PGASAggregated} {
				in, err := b.build(mode)
				if err != nil {
					return fmt.Errorf("pgas/%s/%s: %w", b.kernel, mode, err)
				}
				fmt.Fprintf(os.Stderr, "running pgas %s %s on %d cells...\n", b.kernel, mode, cells)
				if _, err := in.Run(); err != nil {
					return fmt.Errorf("pgas/%s/%s: %w", b.kernel, mode, err)
				}
				mt := in.Machine.Metrics()
				r := pgasRow{
					Kernel: b.kernel, Mode: mode.String(), Cells: cells,
					Ops:      int64(cells) * int64(ops),
					Messages: mt.TNet.Messages,
					WallNS:   mt.WallNanos,
				}
				if r.Ops > 0 {
					r.MsgsPerOp = float64(r.Messages) / float64(r.Ops)
				}
				rows = append(rows, r)
			}
		}
	}

	fmt.Fprintln(w, "PGAS bale kernels: naive per-operation issue vs exstack aggregation:")
	fmt.Fprintf(w, "  %-12s %-6s %6s %9s %10s %9s %12s\n",
		"kernel", "mode", "cells", "ops", "messages", "msgs/op", "wall-ns")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-12s %-6s %6d %9d %10d %9.3f %12d\n",
			r.Kernel, r.Mode, r.Cells, r.Ops, r.Messages, r.MsgsPerOp, r.WallNS)
	}
	fmt.Fprintln(w)

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote pgas report %s (%d rows)\n", jsonPath, len(rows))
	}
	return nil
}
