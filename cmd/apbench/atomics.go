package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"ap1000plus/internal/machine"
	"ap1000plus/internal/msc"
	"ap1000plus/internal/topology"
)

// atomicsRow is one line of the BENCH_atomics.json report: the hot
// fetch-and-add counter hammered from every cell, with T-net combining
// off or on.
type atomicsRow struct {
	Mode       string // uncombined | combined
	Cells      int
	Ops        int64   // fetch-and-adds the program issued
	AtomicMsgs int64   // atomic requests + replies the T-net carried
	Combined   int64   // requests absorbed into combining stations
	Messages   int64   // total T-net messages
	MsgsPerOp  float64 // AtomicMsgs / Ops: ~2 uncombined, falling as the tree combines
	WallNS     int64   // wall-clock nanoseconds for the whole run
}

// runAtomics measures the remote-atomic hot spot of the paper's
// fetch-and-increment generalization: every cell fetch-adds one shared
// counter. Uncombined, the owner sees O(n) requests per round; with
// in-network combining the same program drives O(log n) wire messages
// while producing bit-identical results — verified here by checking
// the exact final count both times.
func runAtomics(w io.Writer, quick bool, jsonPath string) error {
	shapes := []struct{ w, h int }{{4, 4}, {8, 8}}
	iters := 400
	if quick {
		iters = 100
	}
	var rows []atomicsRow
	for _, shape := range shapes {
		for _, mode := range []string{"uncombined", "combined"} {
			m, err := machine.New(machine.Config{
				Width: shape.w, Height: shape.h, MemoryPerCell: 1 << 20,
				Observe: true, Combining: mode == "combined",
			})
			if err != nil {
				return fmt.Errorf("atomics/%s: %w", mode, err)
			}
			np := m.Cells()
			seg, _, err := m.Cell(0).AllocFloat64("counter", 1)
			if err != nil {
				return fmt.Errorf("atomics/%s: %w", mode, err)
			}
			fmt.Fprintf(os.Stderr, "running atomics %s on %d cells...\n", mode, np)
			err = m.Run(func(c *machine.Cell) error {
				for i := 0; i < iters; i++ {
					if _, err := c.FetchAdd(topology.CellID(0), seg.Base(), 1); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return fmt.Errorf("atomics/%s: %w", mode, err)
			}
			total, err := m.Cell(0).Mem.LoadWord8(seg.Base())
			if err != nil {
				return fmt.Errorf("atomics/%s: %w", mode, err)
			}
			if total != uint64(np*iters) {
				return fmt.Errorf("atomics/%s: counter = %d, want %d", mode, total, np*iters)
			}
			mt := m.Metrics()
			tot := mt.Totals()
			r := atomicsRow{
				Mode: mode, Cells: np,
				Ops:        int64(np * iters),
				AtomicMsgs: mt.TNet.PerOp[msc.OpAtomic] + mt.TNet.PerOp[msc.OpAtomicReply],
				Combined:   tot.AtomicsCombined,
				Messages:   mt.TNet.Messages,
				WallNS:     mt.WallNanos,
			}
			if r.Ops > 0 {
				r.MsgsPerOp = float64(r.AtomicMsgs) / float64(r.Ops)
			}
			rows = append(rows, r)
		}
	}

	fmt.Fprintln(w, "Remote atomics: hot fetch-and-add counter, T-net combining off vs on:")
	fmt.Fprintf(w, "  %-12s %6s %9s %12s %10s %10s %9s %12s\n",
		"mode", "cells", "ops", "atomic-msgs", "combined", "messages", "msgs/op", "wall-ns")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-12s %6d %9d %12d %10d %10d %9.3f %12d\n",
			r.Mode, r.Cells, r.Ops, r.AtomicMsgs, r.Combined, r.Messages, r.MsgsPerOp, r.WallNS)
	}
	fmt.Fprintln(w)

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote atomics report %s (%d rows)\n", jsonPath, len(rows))
	}
	return nil
}
