// Command apbench regenerates every table and figure of the paper's
// evaluation (S5): Table 1 (specifications), Figure 6 (parameter
// files), Figure 7 (the PUT communication model), Table 2 (speedups
// vs the AP1000), Table 3 (application statistics) and Figure 8 (the
// execution-time breakdown), plus the S5.4 stride ablation.
//
// Usage:
//
//	apbench -experiment all            # everything at paper scale
//	apbench -experiment table2 -quick  # reduced problem sizes
//	apbench -experiment fig7 -size 1024 -distance 3
//	apbench -experiment table2 -quick -metrics -timeline t.json
//
// -metrics prints each application's machine counter report; -metrics-json
// writes them as JSON (for make bench / BENCH_obs.json). -timeline
// writes a merged Chrome trace-event file loadable at ui.perfetto.dev.
// -experiment batch compares single vs batched command issue on the
// stencil, redistribute and matmul workloads; -batch-json writes that
// report (for make bench / BENCH_batch.json). -experiment dsmcache
// compares the coherent DSM page cache against plain blocking remote
// loads on the gather kernel; -dsmcache-json writes that report (for
// make bench / BENCH_dsmcache.json). -experiment atomics hammers a
// hot remote fetch-and-add counter with T-net combining off and on;
// -atomics-json writes that report (for make bench /
// BENCH_atomics.json). -experiment pgas runs the bale histogram and
// index-gather kernels on the PGAS layer, naive vs aggregated issue;
// -pgas-json writes that report (for make bench / BENCH_pgas.json).
// -experiment scale weak-scales the neighbor-PUT ring across the two
// wire builds — the legacy mutex wire up to 256 cells, the lock-free
// ring wire up to 4096 — reporting aggregate messages/sec and ns/hop;
// -scale-json writes that report (for make bench / BENCH_scale.json).
// -experiment tenancy splits one machine into partitions, gangs an
// open-loop Poisson stream of tenant jobs onto them through the gang
// scheduler, and reports per-tenant p50/p99 sojourn latency and
// aggregate jobs/sec per partition count; -tenancy-json writes that
// report (for make bench / BENCH_tenancy.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ap1000plus/internal/apps"
	"ap1000plus/internal/fault"
	"ap1000plus/internal/machine"
	"ap1000plus/internal/mlsim"
	"ap1000plus/internal/obs"
	"ap1000plus/internal/params"
	"ap1000plus/internal/stats"
)

func main() {
	experiment := flag.String("experiment", "all",
		"specs|params|fig7|table2|table3|fig8|stride|contention|batch|dsmcache|atomics|pgas|scale|tenancy|all")
	quick := flag.Bool("quick", false, "use reduced problem sizes")
	size := flag.Int64("size", 1024, "message size for fig7")
	distance := flag.Int("distance", 3, "routing distance for fig7")
	only := flag.String("app", "", "restrict table2/table3/fig8 to one application (e.g. CG)")
	sanitize := flag.Bool("sanitize", false, "run every application under the apsan race detector")
	faultSpec := flag.String("fault", "", "fault plan spec (e.g. drop=0.05,dup=0.02,seed=42): run every application over a lossy wire with reliable delivery")
	faultSeed := flag.Int64("fault-seed", 0, "override the fault plan's seed")
	metrics := flag.Bool("metrics", false, "print each application's machine counter report")
	metricsJSON := flag.String("metrics-json", "", "write per-application metrics as JSON to this file")
	timeline := flag.String("timeline", "", "write a merged Perfetto timeline of the functional runs to this file")
	batchJSON := flag.String("batch-json", "", "write the batched-issue report as JSON to this file (experiment batch)")
	dsmCacheJSON := flag.String("dsmcache-json", "", "write the DSM page-cache report as JSON to this file (experiment dsmcache)")
	atomicsJSON := flag.String("atomics-json", "", "write the remote-atomic combining report as JSON to this file (experiment atomics)")
	pgasJSON := flag.String("pgas-json", "", "write the PGAS aggregation report as JSON to this file (experiment pgas)")
	scaleJSON := flag.String("scale-json", "", "write the wire weak-scaling report as JSON to this file (experiment scale)")
	tenancyJSON := flag.String("tenancy-json", "", "write the multi-tenant gang-scheduling report as JSON to this file (experiment tenancy)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	apps.Sanitize = *sanitize
	apps.Observe = *metrics || *metricsJSON != ""
	seedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "fault-seed" {
			seedSet = true
		}
	})
	plan, err := faultPlanFromFlags(*faultSpec, *faultSeed, seedSet)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apbench:", err)
		os.Exit(1)
	}
	apps.Fault = plan

	stopProf, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apbench:", err)
		os.Exit(1)
	}

	var parts []obs.Part
	if *timeline != "" {
		apps.TimelineFor = func(name string) *obs.Timeline {
			tl := obs.NewTimeline()
			parts = append(parts, obs.Part{Label: name, TL: tl})
			return tl
		}
	}

	err = run(*experiment, *quick, *size, *distance, *only, *metrics, *metricsJSON, *batchJSON, *dsmCacheJSON, *atomicsJSON, *pgasJSON, *scaleJSON, *tenancyJSON)
	if err == nil && *timeline != "" {
		err = writeTimeline(*timeline, parts)
	}
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "apbench:", err)
		os.Exit(1)
	}
}

// faultPlanFromFlags resolves -fault and -fault-seed into a plan.
// seedSet reports whether -fault-seed appeared on the command line at
// all (flag.Visit), so an explicit seed of 0 is honored and a seed
// without a plan is an error instead of being silently ignored.
func faultPlanFromFlags(spec string, seed int64, seedSet bool) (*fault.Plan, error) {
	if spec == "" {
		if seedSet {
			return nil, fmt.Errorf("-fault-seed requires -fault")
		}
		return nil, nil
	}
	plan, err := fault.Parse(spec)
	if err != nil {
		return nil, err
	}
	if seedSet {
		plan.Seed = seed
	}
	return plan, nil
}

// writeTimeline writes all collected per-app timelines as one merged
// Perfetto file.
func writeTimeline(path string, parts []obs.Part) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteMergedJSON(f, parts); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote timeline %s (%d parts); load at ui.perfetto.dev\n", path, len(parts))
	return nil
}

func hottestCount(r *mlsim.ContentionReport) int64 {
	if len(r.Hottest) == 0 {
		return 0
	}
	return r.Hottest[0].Messages
}

// appMetrics is one entry of the -metrics-json output.
type appMetrics struct {
	App     string
	Metrics *machine.Metrics
}

func run(experiment string, quick bool, size int64, distance int, only string, metrics bool, metricsJSON, batchJSON, dsmCacheJSON, atomicsJSON, pgasJSON, scaleJSON, tenancyJSON string) error {
	if experiment == "batch" {
		return runBatch(os.Stdout, quick, batchJSON)
	}
	if experiment == "tenancy" {
		return runTenancy(os.Stdout, quick, tenancyJSON)
	}
	if experiment == "scale" {
		return runScale(os.Stdout, quick, scaleJSON)
	}
	if experiment == "dsmcache" {
		return runDSMCache(os.Stdout, quick, dsmCacheJSON)
	}
	if experiment == "atomics" {
		return runAtomics(os.Stdout, quick, atomicsJSON)
	}
	if experiment == "pgas" {
		return runPGAS(os.Stdout, quick, pgasJSON)
	}
	needApps := false
	switch experiment {
	case "table2", "table3", "fig8", "stride", "contention", "all":
		needApps = true
	}

	var exps []*stats.Experiment
	if needApps {
		catalog := stats.TestCatalog()
		if !quick {
			catalog = catalog[:0]
			for _, row := range apps.Catalog() {
				catalog = append(catalog, struct {
					Name  string
					Build apps.Builder
				}{row.Name, row.Build})
			}
		}
		for _, row := range catalog {
			if only != "" && !strings.EqualFold(row.Name, only) {
				continue
			}
			fmt.Fprintf(os.Stderr, "running %s...\n", row.Name)
			e, err := stats.RunExperiment(row.Name, row.Build)
			if err != nil {
				return err
			}
			exps = append(exps, e)
		}
	}

	w := os.Stdout
	show := func(name string) bool { return experiment == name || experiment == "all" }

	if show("specs") {
		s := machine.Table1()
		fmt.Fprintln(w, "Table 1: AP1000+ specifications")
		fmt.Fprintf(w, "  Processor              %s (%d MHz)\n", s.Processor, s.ClockMHz)
		fmt.Fprintf(w, "  Processor performance  %d MFLOPS\n", s.MFLOPSPerCell)
		fmt.Fprintf(w, "  Memory per cell        %v megabytes\n", s.MemoryPerCellMB)
		fmt.Fprintf(w, "  Cache per cell         %d kilobytes, %s\n", s.CacheKB, s.CachePolicy)
		fmt.Fprintf(w, "  System configuration   %d - %d cells\n", s.MinCells, s.MaxCells)
		fmt.Fprintf(w, "  System performance     %.1f - %.1f GFLOPS\n", s.PeakGFLOPSAtMin, s.PeakGFLOPSAtMax)
		fmt.Fprintln(w)
	}
	if show("params") {
		fmt.Fprintln(w, "Figure 6: MLSim parameter files")
		for _, p := range []*params.Params{params.AP1000(), params.AP1000Plus()} {
			if err := p.Format(w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w, "differences (AP1000 -> AP1000+):")
		for _, d := range params.Diff(params.AP1000(), params.AP1000Plus()) {
			fmt.Fprintln(w, " ", d)
		}
		fmt.Fprintln(w)
	}
	if show("fig7") {
		fmt.Fprintln(w, "Figure 7: PUT communication model")
		for _, p := range []*params.Params{params.AP1000(), params.AP1000Plus()} {
			if err := mlsim.WriteTimeline(w, p, size, distance); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
	}
	if show("table2") {
		if err := stats.WriteTable2(w, exps); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if show("table3") {
		if err := stats.WriteTable3(w, exps); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if show("fig8") {
		if err := stats.WriteFig8(w, exps); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if show("stride") {
		var st, nost *stats.Experiment
		for _, e := range exps {
			switch e.App {
			case "TC st":
				st = e
			case "TC no st":
				nost = e
			}
		}
		if st != nil && nost != nil {
			fmt.Fprintln(w, "S5.4 stride ablation (TOMCATV on the AP1000+):")
			fmt.Fprintf(w, "  with stride    %12s\n", st.Plus.Elapsed)
			fmt.Fprintf(w, "  without stride %12s\n", nost.Plus.Elapsed)
			fmt.Fprintf(w, "  stride is %.0f%% faster (paper: ~50%%)\n",
				100*(float64(nost.Plus.Elapsed)/float64(st.Plus.Elapsed)-1))
			fmt.Fprintln(w)
		}
	}
	if show("contention") {
		fmt.Fprintln(w, "T-net link contention (extension beyond the paper's contention-free MLSim):")
		for _, e := range exps {
			_, log, err := mlsim.RunWithLog(e.Trace, params.AP1000Plus())
			if err != nil {
				return err
			}
			rep, err := mlsim.AnalyzeContention(e.Trace, params.AP1000Plus(), log)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-10s slowdown %.2fx, mean queueing delay %s, hottest link %v msgs\n",
				e.App, rep.Slowdown(), rep.MeanDelay, hottestCount(rep))
		}
		fmt.Fprintln(w)
	}
	if metrics && len(exps) > 0 {
		fmt.Fprintln(w, "Machine counter reports (functional runs):")
		if err := stats.WriteMetrics(w, exps); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if metricsJSON != "" {
		var out []appMetrics
		for _, e := range exps {
			if e.Metrics != nil {
				out = append(out, appMetrics{App: e.App, Metrics: e.Metrics})
			}
		}
		f, err := os.Create(metricsJSON)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote metrics %s (%d apps)\n", metricsJSON, len(out))
	}
	switch experiment {
	case "specs", "params", "fig7", "table2", "table3", "fig8", "stride", "contention", "all":
		return nil
	}
	return fmt.Errorf("unknown experiment %q", experiment)
}
