package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"ap1000plus/internal/core"
	"ap1000plus/internal/machine"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/topology"
	"ap1000plus/internal/vpp"
)

// batchRow is one line of the BENCH_batch.json report: a workload run
// in one issue mode, with the command stream the MSC+ actually saw.
type batchRow struct {
	Workload string  // stencil | redistribute | matmul
	Mode     string  // single | batched
	Steps    int     // collective steps executed
	Commands int64   // PUT+PUTS+GET+GETS+ackGET issued machine-wide
	Messages int64   // T-net messages carried
	WallNS   int64   // wall-clock nanoseconds for the whole run
	NSPerOp  float64 // WallNS / Steps
}

// runBatch measures the batched-issue path: each workload runs once
// with every transfer issued under its own doorbell and once with the
// runtime's coalescing CommandLists, on identical inputs.
func runBatch(w io.Writer, quick bool, jsonPath string) error {
	steps, edge := 8, 96
	if quick {
		steps, edge = 3, 48
	}
	var rows []batchRow
	for _, wl := range []struct {
		name string
		run  func(batched bool) (*machine.Machine, error)
	}{
		{"stencil", func(b bool) (*machine.Machine, error) { return batchStencil(b, steps, edge) }},
		{"redistribute", func(b bool) (*machine.Machine, error) { return batchRedistribute(b, steps, edge) }},
		{"matmul", func(b bool) (*machine.Machine, error) { return batchMatMulRing(b, steps, edge) }},
	} {
		for _, mode := range []string{"single", "batched"} {
			m, err := wl.run(mode == "batched")
			if err != nil {
				return fmt.Errorf("%s/%s: %w", wl.name, mode, err)
			}
			mt := m.Metrics()
			tot := mt.Totals()
			rows = append(rows, batchRow{
				Workload: wl.name, Mode: mode, Steps: steps,
				Commands: tot.Put + tot.PutS + tot.Get + tot.GetS + tot.AckGet,
				Messages: mt.TNet.Messages,
				WallNS:   mt.WallNanos,
				NSPerOp:  float64(mt.WallNanos) / float64(steps),
			})
		}
	}

	fmt.Fprintln(w, "Batched issue (CommandList + coalescing) vs one doorbell per command:")
	fmt.Fprintf(w, "  %-12s %-8s %10s %10s %14s\n", "workload", "mode", "commands", "messages", "ns/step")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-12s %-8s %10d %10d %14.0f\n", r.Workload, r.Mode, r.Commands, r.Messages, r.NSPerOp)
	}
	for i := 0; i+1 < len(rows); i += 2 {
		s, b := rows[i], rows[i+1]
		fmt.Fprintf(w, "  %-12s commands x%.2f fewer, ns/step x%.2f\n",
			s.Workload, float64(s.Commands)/float64(b.Commands), s.NSPerOp/b.NSPerOp)
	}
	fmt.Fprintln(w)

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote batch report %s (%d rows)\n", jsonPath, len(rows))
	}
	return nil
}

// batchMachine builds the common 4x4 observed machine.
func batchMachine() (*machine.Machine, error) {
	return machine.New(machine.Config{Width: 4, Height: 4, MemoryPerCell: 1 << 22, Observe: true})
}

// batchVPP runs a vpp program on every cell with batching on or off.
func batchVPP(m *machine.Machine, batched bool, body func(rt *vpp.Runtime) error) error {
	rts := make([]*vpp.Runtime, m.Cells())
	for id := range rts {
		rt, err := vpp.NewRuntime(m.Cell(topology.CellID(id)))
		if err != nil {
			return err
		}
		rt.SetBatching(batched)
		rts[id] = rt
	}
	return m.Run(func(c *machine.Cell) error { return body(rts[c.ID()]) })
}

// batchStencil is the overlap-area exchange of a square Block2D grid:
// per step each cell swaps halo rows and columns with its four
// neighbours — the workload where per-row PUTs coalesce into one
// stride PUT per neighbour.
func batchStencil(batched bool, steps, edge int) (*machine.Machine, error) {
	m, err := batchMachine()
	if err != nil {
		return nil, err
	}
	a, err := vpp.NewBlock2D(m, "st.u", edge, edge, 2)
	if err != nil {
		return nil, err
	}
	err = batchVPP(m, batched, func(rt *vpp.Runtime) error {
		for s := 0; s < steps; s++ {
			if err := rt.OverlapFixBlock2D(a); err != nil {
				return err
			}
		}
		return nil
	})
	return m, err
}

// batchRedistribute is the S1.1 matrix redistribution: an edge x edge
// matrix moves from row-block to column-block layout, so every cell
// sends each destination one segment per owned row. Coalescing folds
// a destination's row segments into a single stride PUT and its
// acknowledgements into one ack GET.
func batchRedistribute(batched bool, steps, edge int) (*machine.Machine, error) {
	m, err := batchMachine()
	if err != nil {
		return nil, err
	}
	np := m.Cells()
	rows := (edge + np - 1) / np // owned rows (row-block side)
	cols := rows                 // owned columns (column-block side)
	rowSegs := make([]*mem.Segment, np)
	colSegs := make([]*mem.Segment, np)
	for id := 0; id < np; id++ {
		c := m.Cell(topology.CellID(id))
		seg, data, err := c.AllocFloat64("rd.rows", rows*edge)
		if err != nil {
			return nil, err
		}
		for i := range data {
			data[i] = float64(id*len(data) + i)
		}
		rowSegs[id] = seg
		if colSegs[id], _, err = c.AllocFloat64("rd.cols", edge*cols); err != nil {
			return nil, err
		}
	}
	err = batchVPP(m, batched, func(rt *vpp.Runtime) error {
		r := rt.Rank()
		comm := rt.Comm
		for s := 0; s < steps; s++ {
			var b *core.CommandList
			if batched {
				b = comm.Batch().Coalesce()
			}
			for d := 0; d < np; d++ {
				if d == r {
					continue
				}
				// Row i's segment [d*cols, (d+1)*cols) lands at row
				// r*rows+i of d's edge x cols column slab.
				for i := 0; i < rows; i++ {
					t := core.Transfer{
						To:     topology.CellID(d),
						Remote: colSegs[d].Base() + mem.Addr(((r*rows+i)*cols)*8),
						Local:  rowSegs[r].Base() + mem.Addr((i*edge+d*cols)*8),
						Size:   int64(cols) * 8,
						Ack:    true,
					}
					if b != nil {
						b.Put(t)
					} else if err := comm.Put(t); err != nil {
						return err
					}
				}
			}
			if b != nil {
				if err := b.Commit(); err != nil {
					return err
				}
			}
			comm.AckWait()
			rt.Barrier()
		}
		return nil
	})
	return m, err
}

// batchMatMulRing is the communication skeleton of the S5.2 ring
// matmul with a row-sliced forward: per step each cell sends its
// travelling block to the ring successor row by row. Batched, the
// whole step stages on one coalescing CommandList and reaches the
// MSC+ as a single doorbell.
func batchMatMulRing(batched bool, steps, edge int) (*machine.Machine, error) {
	m, err := batchMachine()
	if err != nil {
		return nil, err
	}
	np := m.Cells()
	rows := (edge + np - 1) / np
	segs := make([]*mem.Segment, np)
	for id := 0; id < np; id++ {
		seg, data, err := m.Cell(topology.CellID(id)).AllocFloat64("mm.blk", 2*rows*edge)
		if err != nil {
			return nil, err
		}
		for i := range data {
			data[i] = float64(id*len(data) + i)
		}
		segs[id] = seg
	}
	err = batchVPP(m, batched, func(rt *vpp.Runtime) error {
		r := rt.Rank()
		next := (r + 1) % np
		comm := rt.Comm
		rowBytes := int64(edge) * 8
		for s := 0; s < steps; s++ {
			// Double-buffer halves swap roles each step.
			src := mem.Addr((s % 2) * rows * edge * 8)
			dst := mem.Addr(((s + 1) % 2) * rows * edge * 8)
			var b *core.CommandList
			if batched {
				b = comm.Batch().Coalesce()
			}
			for i := 0; i < rows; i++ {
				t := core.Transfer{
					To:     topology.CellID(next),
					Remote: segs[next].Base() + dst + mem.Addr(i)*mem.Addr(rowBytes),
					Local:  segs[r].Base() + src + mem.Addr(i)*mem.Addr(rowBytes),
					Size:   rowBytes,
					Ack:    true,
				}
				if b != nil {
					b.Put(t)
				} else if err := comm.Put(t); err != nil {
					return err
				}
			}
			if b != nil {
				if err := b.Commit(); err != nil {
					return err
				}
			}
			comm.AckWait()
			rt.Barrier()
		}
		return nil
	})
	return m, err
}
