package main

import (
	"testing"
)

// The cheap experiments run directly; app-running experiments are
// covered at -quick scale.
func TestRunCheapExperiments(t *testing.T) {
	for _, exp := range []string{"specs", "params", "fig7"} {
		if err := run(exp, true, 256, 2, "", false, ""); err != nil {
			t.Errorf("run(%s): %v", exp, err)
		}
	}
}

func TestRunQuickTable2SingleApp(t *testing.T) {
	if err := run("table2", true, 0, 0, "EP", false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunQuickStride(t *testing.T) {
	if err := run("stride", true, 0, 0, "", false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("bogus", true, 0, 0, "", false, ""); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
