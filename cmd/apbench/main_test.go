package main

import (
	"encoding/json"
	"os"
	"testing"
)

// The cheap experiments run directly; app-running experiments are
// covered at -quick scale.
func TestRunCheapExperiments(t *testing.T) {
	for _, exp := range []string{"specs", "params", "fig7"} {
		if err := run(exp, true, 256, 2, "", false, "", ""); err != nil {
			t.Errorf("run(%s): %v", exp, err)
		}
	}
}

func TestRunQuickTable2SingleApp(t *testing.T) {
	if err := run("table2", true, 0, 0, "EP", false, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunQuickStride(t *testing.T) {
	if err := run("stride", true, 0, 0, "", false, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("bogus", true, 0, 0, "", false, "", ""); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestRunQuickBatch covers the batched-issue experiment end to end,
// including the JSON report.
func TestRunQuickBatch(t *testing.T) {
	path := t.TempDir() + "/batch.json"
	if err := run("batch", true, 0, 0, "", false, "", path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rows []batchRow
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for i := 0; i+1 < len(rows); i += 2 {
		s, b := rows[i], rows[i+1]
		if s.Workload != b.Workload || s.Mode != "single" || b.Mode != "batched" {
			t.Fatalf("row pairing broken: %+v / %+v", s, b)
		}
		if b.Commands >= s.Commands {
			t.Errorf("%s: batched issued %d commands, single %d — no drop", s.Workload, b.Commands, s.Commands)
		}
	}
}
