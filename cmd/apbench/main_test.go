package main

import (
	"encoding/json"
	"os"
	"testing"
)

// The cheap experiments run directly; app-running experiments are
// covered at -quick scale.
func TestRunCheapExperiments(t *testing.T) {
	for _, exp := range []string{"specs", "params", "fig7"} {
		if err := run(exp, true, 256, 2, "", false, "", "", "", "", "", "", ""); err != nil {
			t.Errorf("run(%s): %v", exp, err)
		}
	}
}

func TestRunQuickTable2SingleApp(t *testing.T) {
	if err := run("table2", true, 0, 0, "EP", false, "", "", "", "", "", "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunQuickStride(t *testing.T) {
	if err := run("stride", true, 0, 0, "", false, "", "", "", "", "", "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("bogus", true, 0, 0, "", false, "", "", "", "", "", "", ""); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestRunQuickDSMCache covers the page-cache experiment end to end:
// the cached row must clear a 90% hit rate and carry fewer T-net
// messages than the uncached baseline.
func TestRunQuickDSMCache(t *testing.T) {
	path := t.TempDir() + "/dsmcache.json"
	if err := run("dsmcache", true, 0, 0, "", false, "", "", path, "", "", "", ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rows []dsmCacheRow
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Mode != "uncached" || rows[1].Mode != "cached" {
		t.Fatalf("rows = %+v, want [uncached cached]", rows)
	}
	u, c := rows[0], rows[1]
	if c.HitRate < 0.9 {
		t.Errorf("cached hit rate = %.3f, want >= 0.9", c.HitRate)
	}
	if c.Messages >= u.Messages {
		t.Errorf("cached carried %d messages, uncached %d — cache saved nothing", c.Messages, u.Messages)
	}
	if c.Loads != u.Loads {
		t.Errorf("cached served %d loads, uncached %d — same program must issue the same loads", c.Loads, u.Loads)
	}
}

// TestRunQuickAtomics covers the remote-atomic combining experiment
// end to end: at every machine size the combined row must carry fewer
// atomic messages than the uncombined one — and at 64 cells the hot
// counter must cost well under one wire message per op, the O(n) ->
// O(log n) reduction the combining tree exists for.
func TestRunQuickAtomics(t *testing.T) {
	path := t.TempDir() + "/atomics.json"
	if err := run("atomics", true, 0, 0, "", false, "", "", "", path, "", "", ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rows []atomicsRow
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for i := 0; i+1 < len(rows); i += 2 {
		u, c := rows[i], rows[i+1]
		if u.Mode != "uncombined" || c.Mode != "combined" || u.Cells != c.Cells {
			t.Fatalf("row pairing broken: %+v / %+v", u, c)
		}
		if c.AtomicMsgs >= u.AtomicMsgs {
			t.Errorf("%d cells: combined carried %d atomic messages, uncombined %d — combining saved nothing",
				c.Cells, c.AtomicMsgs, u.AtomicMsgs)
		}
		if c.Combined == 0 {
			t.Errorf("%d cells: no requests absorbed into stations", c.Cells)
		}
		if c.Cells >= 64 && c.MsgsPerOp >= 1 {
			t.Errorf("64 cells: combined msgs/op = %.3f, want < 1", c.MsgsPerOp)
		}
	}
}

// TestRunQuickPGAS covers the PGAS aggregation experiment end to end:
// for each kernel the aggregated row must carry at least 5x fewer
// T-net messages per operation than the naive row — the ratio the
// exstack exchange exists for.
func TestRunQuickPGAS(t *testing.T) {
	path := t.TempDir() + "/pgas.json"
	if err := run("pgas", true, 0, 0, "", false, "", "", "", "", path, "", ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rows []pgasRow
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for i := 0; i+1 < len(rows); i += 2 {
		n, a := rows[i], rows[i+1]
		if n.Kernel != a.Kernel || n.Mode != "naive" || a.Mode != "agg" || n.Cells != a.Cells {
			t.Fatalf("row pairing broken: %+v / %+v", n, a)
		}
		if a.MsgsPerOp*5 > n.MsgsPerOp {
			t.Errorf("%s at %d cells: naive %.3f msgs/op vs aggregated %.3f — less than the 5x aggregation win",
				n.Kernel, n.Cells, n.MsgsPerOp, a.MsgsPerOp)
		}
	}
}

// TestRunQuickScale covers the wire weak-scaling experiment end to
// end: every row's message count is deterministic (cells × rounds),
// and the ring wire must reach a cell count the mutex wire is never
// asked to run. The throughput acceptance bar (ring@1024 vs
// mutex@256) is checked on the full-size `make bench` run, not at
// -quick scale.
func TestRunQuickScale(t *testing.T) {
	path := t.TempDir() + "/scale.json"
	if err := run("scale", true, 0, 0, "", false, "", "", "", "", "", path, ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rows []scaleRow
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 (-quick skips 4096)", len(rows))
	}
	maxRing, maxMutex := 0, 0
	for _, r := range rows {
		if want := int64(r.Cells) * int64(r.Rounds); r.Messages != want {
			t.Errorf("%s/%d: %d messages, want %d", r.Wire, r.Cells, r.Messages, want)
		}
		if r.Wire == "ring" && r.Cells > maxRing {
			maxRing = r.Cells
		}
		if r.Wire == "mutex" && r.Cells > maxMutex {
			maxMutex = r.Cells
		}
	}
	if maxRing <= maxMutex {
		t.Errorf("ring wire topped out at %d cells, mutex at %d — the scaling story is missing", maxRing, maxMutex)
	}
}

// TestRunQuickBatch covers the batched-issue experiment end to end,
// including the JSON report.
func TestRunQuickBatch(t *testing.T) {
	path := t.TempDir() + "/batch.json"
	if err := run("batch", true, 0, 0, "", false, "", path, "", "", "", "", ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rows []batchRow
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for i := 0; i+1 < len(rows); i += 2 {
		s, b := rows[i], rows[i+1]
		if s.Workload != b.Workload || s.Mode != "single" || b.Mode != "batched" {
			t.Fatalf("row pairing broken: %+v / %+v", s, b)
		}
		if b.Commands >= s.Commands {
			t.Errorf("%s: batched issued %d commands, single %d — no drop", s.Workload, b.Commands, s.Commands)
		}
	}
}

// TestFaultPlanFromFlags pins the -fault/-fault-seed contract: a seed
// without a plan is an error (not silently ignored), and an explicit
// seed — including 0, which the old sentinel check could never apply —
// overrides the plan's.
func TestFaultPlanFromFlags(t *testing.T) {
	if _, err := faultPlanFromFlags("", 7, true); err == nil {
		t.Error("-fault-seed without -fault must be an error")
	}
	if plan, err := faultPlanFromFlags("", 0, false); err != nil || plan != nil {
		t.Errorf("no flags: plan=%v err=%v, want nil/nil", plan, err)
	}
	plan, err := faultPlanFromFlags("drop=0.01,seed=5", 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 0 {
		t.Errorf("explicit -fault-seed 0: plan seed = %d, want 0", plan.Seed)
	}
	if plan, err = faultPlanFromFlags("drop=0.01,seed=5", 0, false); err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 5 {
		t.Errorf("no -fault-seed: plan seed = %d, want the spec's 5", plan.Seed)
	}
	if plan, err = faultPlanFromFlags("drop=0.01,seed=5", 42, true); err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 42 {
		t.Errorf("-fault-seed 42: plan seed = %d, want 42", plan.Seed)
	}
	if _, err := faultPlanFromFlags("not-a-spec", 0, false); err == nil {
		t.Error("bad spec must be an error")
	}
}

// TestRunQuickTenancy covers the multi-tenant experiment end to end:
// both -quick partition counts appear, each configuration has one row
// per tenant, the jobs add up, and the latency numbers are sane
// (p99 >= p50 > 0, positive throughput).
func TestRunQuickTenancy(t *testing.T) {
	path := t.TempDir() + "/tenancy.json"
	if err := run("tenancy", true, 0, 0, "", false, "", "", "", "", "", "", path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rows []tenancyRow
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatal(err)
	}
	perK := map[int][]tenancyRow{}
	for _, r := range rows {
		perK[r.Partitions] = append(perK[r.Partitions], r)
	}
	if len(perK[2]) != 2 || len(perK[4]) != 4 {
		t.Fatalf("rows per partition count = {2:%d, 4:%d}, want one row per tenant", len(perK[2]), len(perK[4]))
	}
	for _, r := range rows {
		if r.Jobs <= 0 {
			t.Errorf("partitions=%d tenant %d: %d jobs", r.Partitions, r.Tenant, r.Jobs)
		}
		if r.P50Ms <= 0 || r.P99Ms < r.P50Ms {
			t.Errorf("partitions=%d tenant %d: p50=%.3f p99=%.3f, want p99 >= p50 > 0",
				r.Partitions, r.Tenant, r.P50Ms, r.P99Ms)
		}
		if r.JobsPerSec <= 0 {
			t.Errorf("partitions=%d tenant %d: jobs/sec = %.1f", r.Partitions, r.Tenant, r.JobsPerSec)
		}
	}
	for k, rs := range perK {
		total := 0
		for _, r := range rs {
			total += r.Jobs
		}
		if total != 160 {
			t.Errorf("partitions=%d: jobs sum to %d, want 160", k, total)
		}
	}
}
