package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"ap1000plus/internal/core"
	"ap1000plus/internal/machine"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/tenancy"
	"ap1000plus/internal/topology"
)

// tenancyRow is one line of the BENCH_tenancy.json report: one
// tenant's latency distribution at one partition count, plus the
// configuration's aggregate throughput (repeated on every row of the
// configuration).
type tenancyRow struct {
	Partitions int
	Tenant     int
	Jobs       int
	P50Ms      float64 // median submit-to-done sojourn
	P99Ms      float64
	JobsPerSec float64 // aggregate over all tenants at this partition count
}

// runTenancy is the sustained-traffic harness: one machine is split
// into k partitions, k tenants share its gang scheduler, and an
// open-loop Poisson stream of small ring-PUT jobs (job i belongs to
// tenant i mod k) replays against it. Per-tenant p50/p99 sojourn
// latency and aggregate jobs/sec are reported per partition count —
// the queueing curve a one-shot benchmark cannot show.
func runTenancy(w io.Writer, quick bool, jsonPath string) error {
	cells, totalJobs, rate := 64, 1600, 8000.0
	counts := []int{2, 4, 8}
	if quick {
		cells, totalJobs, rate = 16, 160, 4000.0
		counts = []int{2, 4}
	}
	var rows []tenancyRow
	for _, k := range counts {
		fmt.Fprintf(os.Stderr, "running tenancy: %d tenants on %d cells, %d jobs...\n", k, cells, totalJobs)
		r, err := tenancyConfig(cells, k, totalJobs, rate)
		if err != nil {
			return fmt.Errorf("tenancy/%d: %w", k, err)
		}
		rows = append(rows, r...)
	}

	fmt.Fprintln(w, "Multi-tenant gang scheduling: open-loop job stream, per-tenant sojourn latency:")
	fmt.Fprintf(w, "  %10s %7s %6s %10s %10s %12s\n",
		"partitions", "tenant", "jobs", "p50-ms", "p99-ms", "jobs/sec")
	for _, r := range rows {
		fmt.Fprintf(w, "  %10d %7d %6d %10.3f %10.3f %12.0f\n",
			r.Partitions, r.Tenant, r.Jobs, r.P50Ms, r.P99Ms, r.JobsPerSec)
	}
	fmt.Fprintln(w)

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote tenancy report %s (%d rows)\n", jsonPath, len(rows))
	}
	return nil
}

// tenancyConfig runs one partition count: k tenants, totalJobs jobs,
// exponential inter-arrival gaps at the given aggregate rate.
func tenancyConfig(cells, k, totalJobs int, rate float64) ([]tenancyRow, error) {
	tor, err := topology.SquarishTorus(cells)
	if err != nil {
		return nil, err
	}
	m, err := machine.New(machine.Config{
		Width: tor.Width(), Height: tor.Height(),
		MemoryPerCell: 1 << 16,
		Partitions:    k,
	})
	if err != nil {
		return nil, err
	}
	// One src/dst buffer per cell, allocated once: thousands of jobs
	// reuse them, so the per-cell allocator never grows.
	const payload = 256
	bufs := make([]struct{ src, dst mem.Addr }, cells)
	for id := 0; id < cells; id++ {
		s, _, err := m.Cell(topology.CellID(id)).AllocBytes("job-src", payload)
		if err != nil {
			return nil, err
		}
		d, _, err := m.Cell(topology.CellID(id)).AllocBytes("job-dst", payload)
		if err != nil {
			return nil, err
		}
		bufs[id] = struct{ src, dst mem.Addr }{s.Base(), d.Base()}
	}
	s, err := tenancy.New(m)
	if err != nil {
		return nil, err
	}

	// The job: one ring-PUT round inside whatever partition the
	// scheduler granted, flag-fenced so the job's communication is
	// complete before it releases the partition.
	program := func(rank, size int, c *machine.Cell) error {
		comm := core.New(c)
		g := m.Partition(m.PartitionOf(c.ID())).Group()
		right := g.RingNext(c.ID())
		recvFlag := c.Flags.Alloc() // deterministic ID after job reset
		const putsPerCell = 4
		for i := 0; i < putsPerCell; i++ {
			if err := comm.Put(core.Transfer{
				To:     right,
				Remote: bufs[right].dst, Local: bufs[c.ID()].src,
				Size: payload, RecvFlag: recvFlag,
			}); err != nil {
				return err
			}
		}
		c.Flags.Wait(recvFlag, putsPerCell)
		return nil
	}

	start := time.Now()
	results := tenancy.LoadGen{Jobs: totalJobs, Rate: rate, Seed: 1994}.Run(s,
		func(i int) tenancy.Job { return tenancy.Job{Program: program} })
	if err := s.Close(); err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	perTenant := make([][]time.Duration, k)
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("job %d: %w", i, r.Err)
		}
		tenant := i % k
		perTenant[tenant] = append(perTenant[tenant], r.Latency())
	}
	rows := make([]tenancyRow, 0, k)
	jobsPerSec := float64(totalJobs) / elapsed.Seconds()
	for tenant, lats := range perTenant {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		rows = append(rows, tenancyRow{
			Partitions: k,
			Tenant:     tenant,
			Jobs:       len(lats),
			P50Ms:      percentileMs(lats, 50),
			P99Ms:      percentileMs(lats, 99),
			JobsPerSec: jobsPerSec,
		})
	}
	return rows, nil
}

// percentileMs reads the p-th percentile of a sorted latency slice in
// milliseconds (nearest-rank).
func percentileMs(sorted []time.Duration, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := p * len(sorted) / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / 1e6
}
