package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"ap1000plus/internal/core"
	"ap1000plus/internal/machine"
	"ap1000plus/internal/mc"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/topology"
)

// scaleRow is one line of the BENCH_scale.json report: the
// neighbor-PUT ring workload at one cell count on one wire build.
type scaleRow struct {
	Wire       string  // ring | mutex
	Cells      int
	Rounds     int     // PUTs issued per cell
	Messages   int64   // T-net messages carried
	Bytes      int64   // payload bytes delivered
	Hops       int64   // torus hops traversed
	WallNS     int64   // wall-clock nanoseconds for the whole run
	MsgsPerSec float64 // aggregate Messages / wall seconds
	NsPerHop   float64 // WallNS / Hops
}

// runScale is the weak-scaling gate of the lock-free wire: every cell
// PUTs a fixed payload to its right neighbor for a fixed number of
// rounds (work per cell constant), on the legacy mutex wire up to its
// practical limit and on the ring wire up to 4096 cells. The headline
// number is aggregate messages/sec: the redesign is earning its keep
// when the 1024-cell ring run beats the 256-cell mutex run outright.
func runScale(w io.Writer, quick bool, jsonPath string) error {
	const payload = 512 // bytes per PUT
	rounds := 128
	if quick {
		rounds = 32
	}
	configs := []struct {
		wire  string
		cells int
	}{
		{"mutex", 64},
		{"mutex", 256},
		{"ring", 64},
		{"ring", 256},
		{"ring", 1024},
		{"ring", 4096},
	}
	if quick {
		configs = configs[:len(configs)-1] // skip 4096 in -quick
	}
	var rows []scaleRow
	for _, cf := range configs {
		fmt.Fprintf(os.Stderr, "running scale %s wire on %d cells...\n", cf.wire, cf.cells)
		cfg := machine.Config{
			MemoryPerCell: 1 << 16, // lazy commit: tiny working set per cell
			Observe:       true,
		}
		t, err := topology.SquarishTorus(cf.cells)
		if err != nil {
			return fmt.Errorf("scale/%s/%d: %w", cf.wire, cf.cells, err)
		}
		cfg.Width, cfg.Height = t.Width(), t.Height()
		if cf.wire == "mutex" {
			cfg.Wire = machine.WireMutex
		}
		m, err := machine.New(cfg)
		if err != nil {
			return fmt.Errorf("scale/%s/%d: %w", cf.wire, cf.cells, err)
		}
		np := m.Cells()
		segs := make([]struct{ src, dst mem.Addr }, np)
		for id := 0; id < np; id++ {
			s, _, err := m.Cell(topology.CellID(id)).AllocBytes("src", payload)
			if err != nil {
				return fmt.Errorf("scale/%s/%d: %w", cf.wire, cf.cells, err)
			}
			d, _, err := m.Cell(topology.CellID(id)).AllocBytes("dst", payload)
			if err != nil {
				return fmt.Errorf("scale/%s/%d: %w", cf.wire, cf.cells, err)
			}
			segs[id] = struct{ src, dst mem.Addr }{s.Base(), d.Base()}
		}
		err = m.Run(func(c *machine.Cell) error {
			comm := core.New(c)
			right := topology.CellID((int(c.ID()) + 1) % np)
			recvFlag := mc.FlagID(3)
			for i := 0; i < rounds; i++ {
				if err := comm.Put(core.Transfer{
					To:     right,
					Remote: segs[right].dst, Local: segs[c.ID()].src,
					Size: payload, RecvFlag: recvFlag,
				}); err != nil {
					return err
				}
			}
			// Weak-scaling barrier by flag count: every cell waits for
			// its left neighbor's full stream before exiting.
			c.Flags.Wait(recvFlag, int64(rounds))
			return nil
		})
		if err != nil {
			return fmt.Errorf("scale/%s/%d: %w", cf.wire, cf.cells, err)
		}
		mt := m.Metrics()
		r := scaleRow{
			Wire: cf.wire, Cells: np, Rounds: rounds,
			Messages: mt.TNet.Messages,
			Bytes:    mt.TNet.Bytes,
			Hops:     mt.TNet.HopsTotal,
			WallNS:   mt.WallNanos,
		}
		if r.WallNS > 0 {
			r.MsgsPerSec = float64(r.Messages) / (float64(r.WallNS) / 1e9)
		}
		if r.Hops > 0 {
			r.NsPerHop = float64(r.WallNS) / float64(r.Hops)
		}
		rows = append(rows, r)
	}

	fmt.Fprintln(w, "Weak scaling: neighbor-PUT ring, mutex wire vs lock-free ring wire:")
	fmt.Fprintf(w, "  %-7s %6s %7s %10s %12s %14s %10s\n",
		"wire", "cells", "rounds", "messages", "wall-ns", "msgs/sec", "ns/hop")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-7s %6d %7d %10d %12d %14.0f %10.1f\n",
			r.Wire, r.Cells, r.Rounds, r.Messages, r.WallNS, r.MsgsPerSec, r.NsPerHop)
	}
	fmt.Fprintln(w)

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote scale report %s (%d rows)\n", jsonPath, len(rows))
	}
	return nil
}
