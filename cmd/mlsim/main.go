// Command mlsim replays an execution trace (written by cmd/tracegen)
// under a machine parameter model, exactly like the paper's message
// level simulator (S5): it prints the per-PE time breakdown
// (execution / run-time system / overhead / idle), the elapsed time,
// and the traffic statistics.
//
// Usage:
//
//	mlsim -trace cg.trace                       # AP1000+ model
//	mlsim -trace cg.trace -model ap1000
//	mlsim -trace cg.trace -params my-model.conf # Figure 6 file
//	mlsim -trace cg.trace -compare              # all three models
//	mlsim -trace cg.trace -timeline cg.json     # Perfetto timeline
package main

import (
	"flag"
	"fmt"
	"os"

	"ap1000plus/internal/fault"
	"ap1000plus/internal/mlsim"
	"ap1000plus/internal/obs"
	"ap1000plus/internal/params"
	"ap1000plus/internal/trace"
)

func main() {
	traceFile := flag.String("trace", "", "trace file from tracegen")
	model := flag.String("model", "ap1000+", "built-in model: ap1000|ap1000+|ap1000x8")
	paramFile := flag.String("params", "", "parameter file overriding the model (Figure 6 format)")
	compare := flag.Bool("compare", false, "replay under all three built-in models")
	perPE := flag.Bool("per-pe", false, "print the per-PE breakdown")
	faultSpec := flag.String("fault", "", "fault plan spec (e.g. drop=0.05,dup=0.02,seed=42): model reliable-delivery recovery time on every wire leg")
	faultSeed := flag.Int64("fault-seed", 0, "override the fault plan's seed")
	timeline := flag.String("timeline", "", "write a simulated-time Perfetto timeline to this file (one part per model)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProf, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlsim:", err)
		os.Exit(1)
	}
	plan, err := parseFault(*faultSpec, *faultSeed)
	if err == nil {
		err = run(*traceFile, *model, *paramFile, *compare, *perPE, *timeline, plan)
	}
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlsim:", err)
		os.Exit(1)
	}
}

// parseFault builds the fault plan from the -fault / -fault-seed flags.
func parseFault(spec string, seed int64) (*fault.Plan, error) {
	if spec == "" {
		return nil, nil
	}
	plan, err := fault.Parse(spec)
	if err != nil {
		return nil, err
	}
	if seed != 0 {
		plan.Seed = seed
	}
	return plan, nil
}

func run(traceFile, model, paramFile string, compare, perPE bool, timeline string, plan *fault.Plan) error {
	if traceFile == "" {
		return fmt.Errorf("missing -trace")
	}
	f, err := os.Open(traceFile)
	if err != nil {
		return err
	}
	ts, err := trace.Read(f)
	f.Close()
	if err != nil {
		return err
	}
	fmt.Printf("trace: app=%s pes=%d torus=%dx%d events=%d\n",
		ts.Meta.App, ts.Meta.PEs, ts.Meta.Width, ts.Meta.Height, ts.Events())

	var models []*params.Params
	if compare {
		models = []*params.Params{params.AP1000(), params.AP1000Plus(), params.AP1000x8()}
	} else {
		p, err := params.ByName(model)
		if err != nil {
			return err
		}
		if paramFile != "" {
			pf, err := os.Open(paramFile)
			if err != nil {
				return err
			}
			p, err = params.Parse(pf, p)
			pf.Close()
			if err != nil {
				return err
			}
		}
		models = []*params.Params{p}
	}

	var results []*mlsim.Result
	var parts []obs.Part
	for _, p := range models {
		s, err := mlsim.New(ts, p)
		if err != nil {
			return err
		}
		if err := s.SetFault(plan); err != nil {
			return err
		}
		if timeline != "" {
			tl := obs.NewTimeline()
			parts = append(parts, obs.Part{Label: p.Name, TL: tl})
			s.AttachTimeline(tl)
		}
		res, err := s.Run()
		if err != nil {
			return err
		}
		results = append(results, res)
		b := res.Breakdown()
		fmt.Printf("\nmodel %s:\n", p.Name)
		fmt.Printf("  elapsed        %14s\n", res.Elapsed)
		fmt.Printf("  execution      %14.1fus (%.1f%%)\n", b.Exec, pct(b.Exec, b.Total))
		fmt.Printf("  run-time sys   %14.1fus (%.1f%%)\n", b.RTS, pct(b.RTS, b.Total))
		fmt.Printf("  comm overhead  %14.1fus (%.1f%%)\n", b.Overhead, pct(b.Overhead, b.Total))
		fmt.Printf("  idle           %14.1fus (%.1f%%)\n", b.Idle, pct(b.Idle, b.Total))
		fmt.Printf("  messages       %14d (%d bytes, mean distance %.2f hops)\n",
			res.Messages, res.Bytes, res.MeanDistance)
		fmt.Printf("  load imbalance %14.3f (max end / mean end)\n", res.LoadImbalance())
		if fr := res.Fault; fr != nil {
			fmt.Printf("  fault          retransmits=%d dedups=%d corrupt-drops=%d cell-faults=%d recovery=%.1fus\n",
				fr.Retransmits, fr.Dedups, fr.CorruptDetected, fr.CellFaults, float64(fr.ExtraNanos)/1e3)
		}
		if perPE {
			for i, pe := range res.PE {
				fmt.Printf("  pe%-4d exec=%s rts=%s ovhd=%s idle=%s end=%s\n",
					i, pe.Exec, pe.RTS, pe.Overhead, pe.Idle, pe.End)
			}
		}
	}
	if compare && len(results) == 3 {
		fmt.Printf("\nspeedup vs AP1000: AP1000+ %.2fx, AP1000x8 %.2fx\n",
			results[1].SpeedupVs(results[0]), results[2].SpeedupVs(results[0]))
	}
	if timeline != "" {
		f, err := os.Create(timeline)
		if err != nil {
			return err
		}
		if err := obs.WriteMergedJSON(f, parts); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote timeline %s (%d models); load at ui.perfetto.dev\n",
			timeline, len(parts))
	}
	return nil
}

func pct(part, total float64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * part / total
}
