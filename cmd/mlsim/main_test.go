package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"ap1000plus/internal/topology"
	"ap1000plus/internal/trace"
)

func writeTempTrace(t *testing.T) string {
	t.Helper()
	ts := trace.New("cmdtest", 2, 2)
	for pe := 0; pe < 4; pe++ {
		r := trace.NewRecorder()
		r.Compute(100)
		r.Put(topology.CellID((pe+1)%4), 256, 1, 0, 5, false, false)
		r.Barrier(trace.AllGroup)
		ts.PE[pe] = r.Events()
	}
	path := filepath.Join(t.TempDir(), "t.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.Write(f, ts); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSingleModel(t *testing.T) {
	path := writeTempTrace(t)
	if err := run(path, "ap1000+", "", false, true, "", nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunCompareWritesTimeline(t *testing.T) {
	path := writeTempTrace(t)
	out := filepath.Join(t.TempDir(), "tl.json")
	if err := run(path, "", "", true, false, out, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("timeline not valid trace JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("timeline empty")
	}
}

func TestRunCompare(t *testing.T) {
	path := writeTempTrace(t)
	if err := run(path, "", "", true, false, "", nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithParamFile(t *testing.T) {
	path := writeTempTrace(t)
	pf := filepath.Join(t.TempDir(), "m.conf")
	if err := os.WriteFile(pf, []byte("put_prolog_time 2.5\nname custom\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "ap1000", pf, false, false, "", nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithFaultPlan(t *testing.T) {
	path := writeTempTrace(t)
	plan, err := parseFault("drop=0.2,dup=0.1", 7)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 7 {
		t.Fatalf("seed override: got %d", plan.Seed)
	}
	if err := run(path, "ap1000+", "", false, false, "", plan); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := parseFault("drop=nope", 0); err == nil {
		t.Error("bad fault spec accepted")
	}
	if err := run("", "ap1000+", "", false, false, "", nil); err == nil {
		t.Error("missing trace accepted")
	}
	if err := run("/nonexistent.trace", "ap1000+", "", false, false, "", nil); err == nil {
		t.Error("nonexistent trace accepted")
	}
	path := writeTempTrace(t)
	if err := run(path, "cm5", "", false, false, "", nil); err == nil {
		t.Error("unknown model accepted")
	}
	if err := run(path, "ap1000+", "/nonexistent.conf", false, false, "", nil); err == nil {
		t.Error("nonexistent param file accepted")
	}
}
