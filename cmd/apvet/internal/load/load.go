// Package load is apvet's typed loader: it expands package patterns,
// parses every package in the scan set (optionally including _test.go
// files), and typechecks them with go/types — stdlib-only, using the
// source importer for standard-library dependencies and loading
// module-internal imports straight from the repository tree, so the
// checker resolves callees by object identity instead of bare names.
package load

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one typechecked unit: a package in the scan set
// (Analyzed) or a module-internal dependency pulled in by an import.
// Analyzed units include in-package _test.go files when requested;
// external test packages (package foo_test) become their own unit.
type Package struct {
	// Dir is the package directory as given on the command line
	// (slash-separated), or the module-relative directory for
	// dependency units.
	Dir string
	// Path is the import path ("ap1000plus/internal/core"); external
	// test packages carry the "_test" suffix Go gives them.
	Path string
	// Pkg and Info hold the type-checked package and its resolution
	// maps (Uses, Defs, Selections, Types).
	Pkg  *types.Package
	Info *types.Info
	// Files are the parsed source files of the unit.
	Files []*ast.File
	// Analyzed marks packages named by the command-line patterns;
	// findings are only reported for these. Dependency units exist so
	// the call graph has bodies for helper functions.
	Analyzed bool
	// Test marks an external _test package.
	Test bool
}

// Result is a loaded program slice.
type Result struct {
	Fset       *token.FileSet
	Pkgs       []*Package
	ModulePath string
	ModuleRoot string
}

// Load expands the patterns (relative to the current directory),
// locates the enclosing module, and typechecks every matched package.
// With tests set, _test.go files are included: in-package test files
// join their package's unit and external test packages get a unit of
// their own.
func Load(patterns []string, tests bool) (*Result, error) {
	modRoot, modPath, err := findModule(".")
	if err != nil {
		return nil, err
	}
	var dirs []string
	for _, pat := range patterns {
		expanded, err := Expand(pat)
		if err != nil {
			return nil, err
		}
		dirs = append(dirs, expanded...)
	}
	fset := token.NewFileSet()
	im := &moduleImporter{
		fset:    fset,
		modPath: modPath,
		modRoot: modRoot,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   map[string]*Package{},
		loading: map[string]bool{},
	}
	res := &Result{Fset: fset, ModulePath: modPath, ModuleRoot: modRoot}
	for _, dir := range dirs {
		units, err := loadDir(fset, im, dir, tests)
		if err != nil {
			return nil, err
		}
		res.Pkgs = append(res.Pkgs, units...)
	}
	// Module-internal dependencies that were typechecked along the
	// way ride along un-analyzed, so callers can summarize helper
	// bodies outside the scan set.
	seen := map[string]bool{}
	for _, p := range res.Pkgs {
		seen[p.Path] = true
	}
	var deps []string
	for path := range im.cache {
		if !seen[path] {
			deps = append(deps, path)
		}
	}
	sort.Strings(deps)
	for _, path := range deps {
		res.Pkgs = append(res.Pkgs, im.cache[path])
	}
	return res, nil
}

// Expand resolves a package pattern to directories: "dir/..." walks,
// anything else is taken literally. testdata and hidden directories
// are skipped, as the go tool does.
func Expand(pattern string) ([]string, error) {
	root, recursive := pattern, false
	if strings.HasSuffix(pattern, "/...") {
		root, recursive = strings.TrimSuffix(pattern, "/..."), true
	}
	if root == "" {
		root = "."
	}
	if !recursive {
		return []string{root}, nil
	}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// findModule walks up from dir to the enclosing go.mod and returns
// the module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return abs, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("load: no module line in %s/go.mod", abs)
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", "", fmt.Errorf("load: no go.mod above %s", dir)
		}
		abs = parent
	}
}

// newInfo returns a fully populated types.Info.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// parseDir parses the .go files of one directory into three groups:
// the primary package files, its in-package test files, and external
// (package foo_test) test files.
func parseDir(fset *token.FileSet, dir string) (prim, primTest, extTest []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	// The primary package name is the majority name among non-test
	// files (directories hold at most one non-test package).
	primName := ""
	var files []*ast.File
	var kept []string
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		if !buildOK(f) {
			continue
		}
		files = append(files, f)
		kept = append(kept, name)
		if !strings.HasSuffix(name, "_test.go") && primName == "" {
			primName = f.Name.Name
		}
	}
	for i, name := range kept {
		f := files[i]
		switch {
		case !strings.HasSuffix(name, "_test.go"):
			prim = append(prim, f)
		case primName != "" && f.Name.Name == primName:
			primTest = append(primTest, f)
		default:
			extTest = append(extTest, f)
		}
	}
	return prim, primTest, extTest, nil
}

// buildOK evaluates a file's //go:build (or legacy +build) constraint
// against the default tag set: the current GOOS/GOARCH and go1.*
// release tags are true, custom tags like "race" are false.
func buildOK(f *ast.File) bool {
	sat := func(tag string) bool {
		return tag == runtime.GOOS || tag == runtime.GOARCH || strings.HasPrefix(tag, "go1")
	}
	for _, cg := range f.Comments {
		if cg.Pos() > f.Package {
			break
		}
		for _, c := range cg.List {
			if constraint.IsGoBuild(c.Text) || constraint.IsPlusBuild(c.Text) {
				expr, err := constraint.Parse(c.Text)
				if err != nil {
					continue
				}
				if !expr.Eval(sat) {
					return false
				}
			}
		}
	}
	return true
}

// loadDir typechecks one scan-set directory into its analyzed units.
func loadDir(fset *token.FileSet, im *moduleImporter, dir string, tests bool) ([]*Package, error) {
	prim, primTest, extTest, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	path := im.pathFor(dir)
	var units []*Package
	if len(prim) > 0 || (tests && len(primTest) > 0) {
		files := prim
		if tests {
			files = append(append([]*ast.File{}, prim...), primTest...)
		}
		u, err := im.check(path, dir, files)
		if err != nil {
			return nil, err
		}
		u.Analyzed = true
		units = append(units, u)
	}
	if tests && len(extTest) > 0 {
		u, err := im.check(path+"_test", dir, extTest)
		if err != nil {
			return nil, err
		}
		u.Analyzed = true
		u.Test = true
		units = append(units, u)
	}
	return units, nil
}

// moduleImporter resolves module-internal imports from the source
// tree and everything else through the stdlib source importer. It
// caches module packages so shared dependencies typecheck once.
type moduleImporter struct {
	fset             *token.FileSet
	modPath, modRoot string
	std              types.Importer
	cache            map[string]*Package
	loading          map[string]bool
}

// pathFor maps a scan directory to its import path. Directories
// outside the module (testdata fixtures run by tests) synthesize a
// path from the directory name.
func (im *moduleImporter) pathFor(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return dir
	}
	rel, err := filepath.Rel(im.modRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return dir
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		return im.modPath
	}
	return im.modPath + "/" + rel
}

// check typechecks one set of files as a package.
func (im *moduleImporter) check(path, dir string, files []*ast.File) (*Package, error) {
	info := newInfo()
	var errs []error
	cfg := types.Config{
		Importer: im,
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, _ := cfg.Check(path, im.fset, files, info)
	if len(errs) > 0 {
		if len(errs) > 5 {
			errs = errs[:5]
		}
		msgs := make([]string, len(errs))
		for i, e := range errs {
			msgs[i] = e.Error()
		}
		return nil, fmt.Errorf("load: typecheck %s:\n\t%s", path, strings.Join(msgs, "\n\t"))
	}
	return &Package{Dir: filepath.ToSlash(filepath.Clean(dir)), Path: path, Pkg: pkg, Info: info, Files: files}, nil
}

// Import implements types.Importer.
func (im *moduleImporter) Import(path string) (*types.Package, error) {
	if path == im.modPath || strings.HasPrefix(path, im.modPath+"/") {
		u, err := im.importModule(path)
		if err != nil {
			return nil, err
		}
		return u.Pkg, nil
	}
	return im.std.Import(path)
}

// importModule typechecks a module-internal package (non-test files
// only) from its source directory.
func (im *moduleImporter) importModule(path string) (*Package, error) {
	if u, ok := im.cache[path]; ok {
		return u, nil
	}
	if im.loading[path] {
		return nil, fmt.Errorf("load: import cycle through %s", path)
	}
	im.loading[path] = true
	defer delete(im.loading, path)
	rel := strings.TrimPrefix(strings.TrimPrefix(path, im.modPath), "/")
	dir := filepath.Join(im.modRoot, filepath.FromSlash(rel))
	prim, _, _, err := parseDir(im.fset, dir)
	if err != nil {
		return nil, err
	}
	if len(prim) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", dir)
	}
	u, err := im.check(path, dir, prim)
	if err != nil {
		return nil, err
	}
	im.cache[path] = u
	return u, nil
}
