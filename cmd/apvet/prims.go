package main

// The primitive tables: the module functions whose *meaning* the
// analyzers know, keyed by go/types full names so a local function
// that happens to share a name (Put, WaitFlag, Copy, ...) never
// matches. Functions listed here are modeled, not scanned — their
// bodies implement the protocol the checks enforce on everyone else.

const (
	corePkg     = "ap1000plus/internal/core"
	mcPkg       = "ap1000plus/internal/mc"
	memPkg      = "ap1000plus/internal/mem"
	machinePkg  = "ap1000plus/internal/machine"
	vppPkg      = "ap1000plus/internal/vpp"
	dsmPkg      = "ap1000plus/internal/dsm"
	eventPkg    = "ap1000plus/internal/event"
	topoPkg     = "ap1000plus/internal/topology"
	sendrecvPkg = "ap1000plus/internal/sendrecv"
	barrierPkg  = "ap1000plus/internal/barrier"
	pgasPkg     = "ap1000plus/internal/pgas"
	tenancyPkg  = "ap1000plus/internal/tenancy"
)

// transferPrims issue one transfer described by a core.Transfer first
// argument; the value is the verb used in findings.
var transferPrims = map[string]string{
	"(*" + corePkg + ".Comm).Put":              "Put",
	"(*" + corePkg + ".Comm).Get":              "Get",
	"(*" + corePkg + ".CommandList).Put":       "Put",
	"(*" + corePkg + ".CommandList).Get":       "Get",
	"(*" + corePkg + ".CommandList).PutStride": "PutStride",
	"(*" + corePkg + ".CommandList).GetStride": "GetStride",
}

// positionalPrims issue one transfer with positional flag/ack
// arguments (index into the argument list, receiver excluded).
var positionalPrims = map[string]struct {
	verb  string
	flags []int
	ack   int // -1 if no ack argument
}{
	"(*" + corePkg + ".Comm).PutStride": {"PutStride", []int{3, 4}, 5},
	"(*" + corePkg + ".Comm).GetStride": {"GetStride", []int{3, 4}, -1},
}

// waitPrims block until a flag (arg 0) reaches a target (arg 1).
var waitPrims = map[string]bool{
	"(*" + corePkg + ".Comm).WaitFlag": true,
	"(*" + mcPkg + ".Flags).Wait":      true,
}

// ackRaisePrims request the S4.1 acknowledgement round trip
// unconditionally (the Transfer{Ack: true} case is read out of the
// literal instead).
var ackRaisePrims = map[string]bool{
	"(*" + corePkg + ".Comm).WriteRemote": true,
}

// ackWaitPrims consume all outstanding acknowledgements.
var ackWaitPrims = map[string]bool{
	"(*" + corePkg + ".Comm).AckWait": true,
}

// selfSyncPrims issue and wait internally; they produce no flag
// events but must not be scanned as ordinary bodies either.
var selfSyncPrims = map[string]bool{
	"(*" + corePkg + ".Comm).ReadRemote": true,
	"(*" + corePkg + ".Comm).Barrier":    true,
}

// blockingPrims can sleep waiting for another goroutine's progress —
// the set handlerblock forbids on delivery paths. The value is the
// short name used in findings.
var blockingPrims = map[string]string{
	"(*" + mcPkg + ".Flags).Wait":                  "Flags.Wait",
	"(*" + mcPkg + ".CommRegs).Load32":             "CommRegs.Load32",
	"(*" + mcPkg + ".CommRegs).Load64":             "CommRegs.Load64",
	"(*" + corePkg + ".Comm).WaitFlag":             "Comm.WaitFlag",
	"(*" + corePkg + ".Comm).AckWait":              "Comm.AckWait",
	"(*" + corePkg + ".Comm).ReadRemote":           "Comm.ReadRemote",
	"(*" + corePkg + ".Comm).Barrier":              "Comm.Barrier",
	"(*" + machinePkg + ".Cell).LoadCreg32":        "Cell.LoadCreg32",
	"(*" + machinePkg + ".Cell).LoadCreg64":        "Cell.LoadCreg64",
	"(*" + machinePkg + ".Cell).HWBarrier":         "Cell.HWBarrier",
	"(*" + machinePkg + ".Cell).RemoteLoad":        "Cell.RemoteLoad",
	"(*" + machinePkg + ".Cell).RemoteLoadCaching": "Cell.RemoteLoadCaching",
	"(*" + machinePkg + ".Cell).RecvBroadcast":     "Cell.RecvBroadcast",
	"(*" + machinePkg + ".Cell).FenceRemoteStores": "Cell.FenceRemoteStores",
	"(*" + sendrecvPkg + ".Endpoint).Recv":         "Endpoint.Recv",
	"(*" + sendrecvPkg + ".Endpoint).RecvAny":      "Endpoint.RecvAny",
	"(*" + sendrecvPkg + ".Endpoint).Consume":      "Endpoint.Consume",
	"(*" + barrierPkg + ".Sync).Barrier":           "Sync.Barrier",
	"(*" + barrierPkg + ".Sync).Reduce":            "Sync.Reduce",
	"(*" + barrierPkg + ".Sync).ReduceVec":         "Sync.ReduceVec",
	"(*" + dsmPkg + ".DSM).Load":                   "DSM.Load",
	"(*" + dsmPkg + ".DSM).LoadF64":                "DSM.LoadF64",
	"(*" + dsmPkg + ".DSM).Fence":                  "DSM.Fence",
	// Fetching remote atomics block for the previous value, and the
	// atomic fence blocks for outstanding acknowledgements; the
	// non-fetching updates (AtomicAdd/Min/Max) are fire-and-forget and
	// deliberately absent.
	"(*" + machinePkg + ".Cell).FetchAdd":       "Cell.FetchAdd",
	"(*" + machinePkg + ".Cell).CompareAndSwap": "Cell.CompareAndSwap",
	"(*" + machinePkg + ".Cell).Swap":           "Cell.Swap",
	"(*" + machinePkg + ".Cell).FenceAtomics":   "Cell.FenceAtomics",
	"(*" + corePkg + ".Comm).FetchAdd":          "Comm.FetchAdd",
	"(*" + corePkg + ".Comm).CompareAndSwap":    "Comm.CompareAndSwap",
	"(*" + corePkg + ".Comm).Swap":              "Comm.Swap",
	"(*" + corePkg + ".Comm).FenceAtomics":      "Comm.FenceAtomics",
	// PGAS layer: puts can stall on the staging ring, gets and the
	// fetching atomics wait for the remote word, the bulk movers wait
	// per chunk, and the collectives are barriers. The aggregated
	// Put/Add/Min/Max/Get/FetchAdd only queue (split-phase) and are
	// deliberately absent — Advance and Flush are where they block.
	"(*" + pgasPkg + ".PE).PutInt64":       "PE.PutInt64",
	"(*" + pgasPkg + ".PE).GetInt64":       "PE.GetInt64",
	"(*" + pgasPkg + ".PE).PutMem":         "PE.PutMem",
	"(*" + pgasPkg + ".PE).GetMem":         "PE.GetMem",
	"(*" + pgasPkg + ".PE).ReadAll":        "PE.ReadAll",
	"(*" + pgasPkg + ".PE).FetchAdd":       "PE.FetchAdd",
	"(*" + pgasPkg + ".PE).CompareAndSwap": "PE.CompareAndSwap",
	"(*" + pgasPkg + ".PE).Swap":           "PE.Swap",
	"(*" + pgasPkg + ".PE).Fence":          "PE.Fence",
	"(*" + pgasPkg + ".PE).Barrier":        "PE.Barrier",
	"(*" + pgasPkg + ".PE).ReduceAdd":      "PE.ReduceAdd",
	"(*" + pgasPkg + ".PE).ReduceMax":      "PE.ReduceMax",
	"(*" + pgasPkg + ".PE).ReduceMin":      "PE.ReduceMin",
	"(*" + pgasPkg + ".PE).ReduceAddInt64": "PE.ReduceAddInt64",
	"(*" + pgasPkg + ".PE).ReduceMinInt64": "PE.ReduceMinInt64",
	"(*" + pgasPkg + ".PE).ReduceMaxInt64": "PE.ReduceMaxInt64",
	"(*" + pgasPkg + ".PE).ScanAddInt64":   "PE.ScanAddInt64",
	"(*" + pgasPkg + ".PE).Broadcast":      "PE.Broadcast",
	"(*" + pgasPkg + ".AggPE).Advance":     "AggPE.Advance",
	"(*" + pgasPkg + ".AggPE).Flush":       "AggPE.Flush",
	// Multi-tenant layer: the machine lifecycle and the gang
	// scheduler's synchronization surface all park the caller until
	// other goroutines make progress — a job's cells (RunJob/Run), the
	// drain doorbell (Close), a granted partition (Ticket.Wait), or
	// the whole queue (Drain/Close/LoadGen.Run; LoadGen.Run has a
	// value receiver, hence no pointer in its full name).
	"(*" + machinePkg + ".Machine).Run":     "Machine.Run",
	"(*" + machinePkg + ".Machine).RunJob":  "Machine.RunJob",
	"(*" + machinePkg + ".Machine).Close":   "Machine.Close",
	"(*" + tenancyPkg + ".Ticket).Wait":     "Ticket.Wait",
	"(*" + tenancyPkg + ".Scheduler).Drain": "Scheduler.Drain",
	"(*" + tenancyPkg + ".Scheduler).Close": "Scheduler.Close",
	"(" + tenancyPkg + ".LoadGen).Run":      "LoadGen.Run",
}

// cellCountPrims return the machine's cell count — the P of the
// flag-balance polynomials.
var cellCountPrims = map[string]bool{
	"(*" + machinePkg + ".Machine).Cells": true,
	"(*" + machinePkg + ".Cell).N":        true,
	"(*" + vppPkg + ".Runtime).NP":        true,
	"(*" + topoPkg + ".Torus).Cells":      true,
	"(*" + pgasPkg + ".PE).NP":            true,
	"(*" + pgasPkg + ".Heap).NP":          true,
}

// rawMemPrims bypass the MSC+ command queues.
var rawMemPrims = map[string]string{
	memPkg + ".Copy":                    "mem.Copy",
	memPkg + ".CopyStride":              "mem.CopyStride",
	memPkg + ".CapturePayload":          "mem.CapturePayload",
	"(*" + memPkg + ".Payload).Deliver": "Payload.Deliver",
}

// bannedIssueNames are the retired positional-wrapper names. The
// wrappers themselves were deleted from core; batchissue bans the
// NAMES outright — declaring or calling a PutArgs/GetArgs on any type
// is flagged, so the positional idiom cannot creep back in through a
// lookalike shim.
var bannedIssueNames = map[string]bool{
	"PutArgs": true,
	"GetArgs": true,
}

// batchOpen/batchCommit bracket a CommandList's lifetime.
const (
	batchOpenPrim   = "(*" + corePkg + ".Comm).Batch"
	batchCommitPrim = "(*" + corePkg + ".CommandList).Commit"
)

// dsm store/load/fence methods for the fence-discipline check.
var dsmStorePrims = map[string]bool{
	"(*" + dsmPkg + ".DSM).Store":    true,
	"(*" + dsmPkg + ".DSM).StoreF64": true,
}
var dsmLoadPrims = map[string]bool{
	"(*" + dsmPkg + ".DSM).Load":    true,
	"(*" + dsmPkg + ".DSM).LoadF64": true,
}

const dsmFencePrim = "(*" + dsmPkg + ".DSM).Fence"

// flagResetPrim restarts a flag's count between communication phases;
// flag-balance cannot total across it.
const flagResetPrim = "(*" + mcPkg + ".Flags).Reset"

// isModeledPrim reports whether a function's body is modeled by the
// tables above and must not be scanned or summarized from source.
func isModeledPrim(full string) bool {
	if _, ok := transferPrims[full]; ok {
		return true
	}
	if _, ok := positionalPrims[full]; ok {
		return true
	}
	return waitPrims[full] || ackRaisePrims[full] || ackWaitPrims[full] || selfSyncPrims[full]
}
