package main

// handlerblock / blockprop: T-net delivery is synchronous — tnet.Send
// runs the destination cell's receive handler on the *sender's*
// controller goroutine. A handler that blocks (flag wait, p-bit creg
// load, barrier, channel receive) stalls a foreign controller and can
// deadlock the whole machine. handlerblock reports blocking
// primitives called directly in a handler body; blockprop propagates
// a may-block bit through the call graph and reports handlers that
// block through helper functions, with the witness chain.

import (
	"fmt"
)

var handlerDirs = []string{
	"internal/machine", "internal/sendrecv", "internal/tnet", "internal/bnet",
}

// handlerNames are the functions that execute on a controller
// goroutine during delivery.
var handlerNames = map[string]bool{
	"receive": true, "receiveBroadcast": true, "sink": true,
	"deliver": true, "deliverCreg": true, "completeLoad": true,
	"process": true, "sendData": true, "reply": true, "loadReply": true,
}

func (pr *program) checkHandlerBlock() []Finding {
	var out []Finding
	for _, name := range pr.names {
		fn := pr.funcs[name]
		if !fn.unit.Analyzed || !handlerNames[fn.obj.Name()] {
			continue
		}
		inScope := false
		for _, dir := range handlerDirs {
			if hasDirSuffix(fn.unit, dir) {
				inScope = true
				break
			}
		}
		if !inScope {
			continue
		}
		for _, b := range fn.directBlocks {
			msg := fmt.Sprintf("blocking call %s inside handler %s (runs on a foreign controller goroutine; post work instead)",
				b.what, fn.obj.Name())
			if b.what == "channel receive" {
				msg = fmt.Sprintf("channel receive inside handler %s (runs on a foreign controller goroutine; must not block)",
					fn.obj.Name())
			}
			out = append(out, pr.finding(b.pos, "handlerblock", msg))
		}
		// Helper-mediated blocking: every synchronous call into a
		// may-block function. Calls to other handlers are skipped —
		// the callee gets its own findings.
		for _, e := range fn.edges {
			if e.inGo {
				continue
			}
			callee, ok := pr.funcs[e.callee]
			if !ok || callee.blocks == nil || handlerNames[callee.obj.Name()] {
				continue
			}
			out = append(out, pr.finding(e.pos, "blockprop",
				fmt.Sprintf("handler %s may block via %s → %s; handlers must not block",
					fn.obj.Name(), shortFuncName(fn.full), pr.blockChain(e.callee))))
		}
	}
	return out
}
