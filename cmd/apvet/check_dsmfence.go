package main

// dsmfence: a DSM remote store is non-blocking — it is acknowledged
// (and its cache invalidations applied) only once Fence returns. A
// Store to a shared address followed by a Load of the same address
// with no Fence in between reads whatever happened to arrive first.
// Receivers resolve through go/types: only *dsm.DSM methods match, so
// a sync.Map's Store or an atomic's Load can never be confused with
// the DSM API. Same-address comparison stays textual — exact aliasing
// is undecidable and the textual match catches the idiomatic
// store-then-reload bug.

import (
	"fmt"
	"go/ast"
	"go/token"
)

func (pr *program) checkDSMFence() []Finding {
	var out []Finding
	for _, u := range pr.pkgs {
		if !u.Analyzed || hasDirSuffix(u, "internal/dsm") {
			continue
		}
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				// pending[receiver][address-expression] = position of
				// the unfenced store.
				pending := map[string]map[string]token.Pos{}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := calleeOf(u.Info, call)
					if callee == nil {
						return true
					}
					sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
					if !ok {
						return true
					}
					recv := pr.exprText(sel.X)
					switch full := callee.FullName(); {
					case dsmStorePrims[full] && len(call.Args) >= 1:
						addr := pr.exprText(call.Args[0])
						if pending[recv] == nil {
							pending[recv] = map[string]token.Pos{}
						}
						pending[recv][addr] = call.Pos()
					case full == dsmFencePrim:
						delete(pending, recv)
					case dsmLoadPrims[full] && len(call.Args) >= 1:
						addr := pr.exprText(call.Args[0])
						if _, unfenced := pending[recv][addr]; unfenced {
							out = append(out, pr.finding(call.Pos(), "dsmfence",
								fmt.Sprintf("%s.%s(%s, ...) after an unfenced %s.Store to the same address; call %s.Fence() between them",
									recv, callee.Name(), addr, recv, recv)))
						}
					}
					return true
				})
			}
		}
	}
	return out
}
