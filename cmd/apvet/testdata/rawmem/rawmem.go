// Package app is apvet testdata: application code writing simulated
// DRAM directly instead of issuing MSC+ commands. Both calls below
// must be flagged by the rawmem check.
package app

import (
	"ap1000plus/internal/mem"
)

func smuggle(dst, src *mem.Memory, payload *mem.Payload) {
	mem.Copy(dst, 0x1000, src, 0x2000, 64) // want rawmem
	payload.Deliver(dst, 0x3000)           // want rawmem
}
