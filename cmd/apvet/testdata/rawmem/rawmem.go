// Package app is apvet testdata: application code writing simulated
// DRAM directly instead of issuing MSC+ commands. All three calls
// below must be flagged by the rawmem check.
package app

import (
	"ap1000plus/internal/mem"
)

func smuggle(dst, src *mem.Space, payload *mem.Payload) error {
	if err := mem.Copy(dst, 0x1000, src, 0x2000, 64); err != nil { // want rawmem
		return err
	}
	if _, err := mem.CapturePayload(src, 0x2000, mem.Contiguous(64)); err != nil { // want rawmem
		return err
	}
	return payload.Deliver(dst, 0x3000, mem.Contiguous(64)) // want rawmem
}
