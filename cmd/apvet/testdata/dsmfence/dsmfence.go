// Package app is apvet testdata: DSM store/load fence discipline.
// Two unfenced store-then-load pairs below must be flagged by the
// dsmfence check; the fenced pair and the disjoint-address pair are
// clean.
package app

import (
	"ap1000plus/internal/dsm"
	"ap1000plus/internal/mem"
)

func unfencedF64(d *dsm.DSM, ga dsm.GAddr) (float64, error) {
	if err := d.StoreF64(ga, 1.5); err != nil {
		return 0, err
	}
	return d.LoadF64(ga) // want dsmfence
}

func unfencedRaw(d *dsm.DSM, ga dsm.GAddr, laddr mem.Addr) (*mem.Payload, error) {
	if err := d.Store(ga, laddr, 8); err != nil {
		return nil, err
	}
	return d.Load(ga, 8) // want dsmfence
}

func fenced(d *dsm.DSM, ga dsm.GAddr) (float64, error) {
	if err := d.StoreF64(ga, 1.5); err != nil {
		return 0, err
	}
	d.Fence()
	return d.LoadF64(ga) // clean: the fence ordered the store
}

func disjoint(d *dsm.DSM, ga, other dsm.GAddr) (float64, error) {
	if err := d.StoreF64(ga, 1.5); err != nil {
		return 0, err
	}
	return d.LoadF64(other) // clean: different address expression
}
