// Package machine is apvet testdata for the handlerblock and
// blockprop checks over the PGAS primitives: the fetching atomics,
// the collectives, and the aggregation exchange all sleep waiting for
// other cells' progress, so a delivery handler must not call them —
// while the split-phase aggregated pushes and the fire-and-forget
// atomics only queue and are fine.
package machine

import (
	"ap1000plus/internal/pgas"
)

type endpoint struct {
	pe  *pgas.PE
	agg *pgas.AggPE
	s   *pgas.Shared
}

// drain is an ordinary helper; the collective Flush inside it blocks
// until every cell has advanced, which is fine on a cell goroutine
// but fatal synchronously inside a handler.
func (e *endpoint) drain() error {
	return e.agg.Flush()
}

// deliver blocks only through the helper — the blockprop check must
// walk the call graph to see it.
func (e *endpoint) deliver() error {
	return e.drain() // want blockprop
}

// receive blocks directly: a fetching atomic, a collective reduction
// and the fencing barrier.
func (e *endpoint) receive() error {
	if _, err := e.pe.FetchAdd(e.s, 0, 1); err != nil { // want handlerblock
		return err
	}
	e.pe.ReduceAdd(1) // want handlerblock
	e.pe.Barrier()    // want handlerblock
	if err := e.pe.AtomicAdd(e.s, 0, 1); err != nil { // fine: fire-and-forget update
		return err
	}
	return e.agg.Add(e.s, 0, 1) // fine: split-phase queue push
}

// sink hands the blocking work to a fresh goroutine — clean.
func (e *endpoint) sink() {
	go func() { _ = e.drain() }()
}
