// Package app is apvet testdata for flags forwarded through helper
// parameters: the call graph substitutes arguments for parameters, so
// a wait in the caller satisfies a raise inside the helper — and an
// orphan flag is reported even though its raise is buried in the
// helper, at the primitive call site.
package app

import (
	"ap1000plus/internal/core"
	"ap1000plus/internal/mc"
)

var done = mc.FlagID(5)
var orphan = mc.FlagID(6)

func doPut(c *core.Comm, flag mc.FlagID) error {
	return c.Put(core.Transfer{To: 1, Remote: 0x100, Local: 0x200, Size: 8, SendFlag: flag}) // want flagwait
}

func viaHelper(c *core.Comm) error {
	if err := doPut(c, done); err != nil {
		return err
	}
	c.WaitFlag(done, 1) // clean: the raise inside doPut resolves to done
	return nil
}

func orphanHelper(c *core.Comm) error {
	return doPut(c, orphan) // nothing anywhere waits on orphan
}
