// Package machine is apvet testdata for the handlerblock check: a
// delivery handler that waits on a flag, performs a p-bit creg load
// and receives from a channel — three ways to stall the foreign
// controller goroutine that delivery runs on.
package machine

type flags interface {
	Wait(id int32, target int64)
	Inc(id int32)
}

type cregs interface {
	Load32(idx int) uint32
	Store32(idx int, v uint32)
}

type cell struct {
	flags flags
	cregs cregs
	ch    chan int
}

func (c *cell) receive(flag int32) {
	c.flags.Wait(flag, 1)  // want handlerblock
	_ = c.cregs.Load32(0)  // want handlerblock
	<-c.ch                 // want handlerblock
	c.flags.Inc(flag)      // fine: non-blocking post
	c.cregs.Store32(0, 1)  // fine: store never blocks
	c.ch <- 1              // fine: channel send is allowed
	go func() { <-c.ch }() // fine: fresh goroutine may block
}
