// Package app is apvet testdata for the batchissue check: the
// PutArgs/GetArgs calls are deprecated positional issue, and the
// Batch() here is never Commit()ed anywhere in the package.
package app

type Transfer struct {
	To            int
	Remote, Local uint64
	Size          int64
	Ack           bool
}

type list interface {
	Put(t Transfer) list
}

type comm interface {
	Put(t Transfer) error
	PutArgs(dst int, raddr, laddr uint64, size int64, sendFlag, recvFlag int32, ack bool) error
	GetArgs(dst int, raddr, laddr uint64, size int64, sendFlag, recvFlag int32) error
	Batch() list
	WaitFlag(flag int32, target int64)
	AckWait()
}

func legacy(c comm, f int32) error {
	if err := c.PutArgs(1, 0x1000, 0x1000, 64, 0, f, false); err != nil { // want batchissue
		return err
	}
	c.WaitFlag(f, 1)
	return c.GetArgs(1, 0x2000, 0x2000, 64, 0, 0) // want batchissue
}

func modern(c comm) error {
	return c.Put(Transfer{To: 1, Remote: 0x1000, Local: 0x1000, Size: 64, Ack: true})
}

func leaky(c comm) {
	b := c.Batch() // want batchissue (no Commit in this package)
	b.Put(Transfer{To: 1, Remote: 0x3000, Local: 0x3000, Size: 8, Ack: true})
	c.AckWait()
}
