// Package app is apvet testdata for the batchissue check: the
// positional PutArgs/GetArgs wrappers were deleted from core, and the
// check bans the names outright — a local shim that redeclares them is
// flagged at the declaration AND at every call, even though go/types
// no longer resolves them to core methods. The Batch() here is never
// Commit()ed anywhere in the package.
package app

import (
	"ap1000plus/internal/core"
	"ap1000plus/internal/mc"
)

var bflag = mc.FlagID(7)

// shim tries to resurrect the retired positional idiom on its own
// receiver type.
type shim struct{ c *core.Comm }

func (s *shim) PutArgs(dst int, raddr, laddr uint64, size int64) error { // want batchissue
	return s.c.Put(core.Transfer{To: 1, Remote: 0x1000, Local: 0x1000, Size: size})
}

func (s *shim) GetArgs(dst int, raddr, laddr uint64, size int64) error { // want batchissue
	return s.c.Get(core.Transfer{To: 1, Remote: 0x2000, Local: 0x2000, Size: size})
}

func legacy(s *shim) error {
	if err := s.PutArgs(1, 0x1000, 0x1000, 64); err != nil { // want batchissue
		return err
	}
	s.c.WaitFlag(bflag, 1)
	return s.GetArgs(1, 0x2000, 0x2000, 64) // want batchissue
}

func modern(c *core.Comm) error {
	if err := c.Put(core.Transfer{To: 1, Remote: 0x1000, Local: 0x1000, Size: 64, Ack: true}); err != nil {
		return err
	}
	c.AckWait()
	return nil
}

func leaky(c *core.Comm) {
	b := c.Batch() // want batchissue
	b.Put(core.Transfer{To: 1, Remote: 0x3000, Local: 0x3000, Size: 8})
}
