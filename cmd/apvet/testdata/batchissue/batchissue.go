// Package app is apvet testdata for the batchissue check: the
// PutArgs/GetArgs calls are deprecated positional issue, and the
// Batch() here is never Commit()ed anywhere in the package. Both
// resolve through go/types against core's real methods.
package app

import (
	"ap1000plus/internal/core"
	"ap1000plus/internal/mc"
)

var bflag = mc.FlagID(7)

func legacy(c *core.Comm) error {
	if err := c.PutArgs(1, 0x1000, 0x1000, 64, mc.NoFlag, bflag, false); err != nil { // want batchissue
		return err
	}
	c.WaitFlag(bflag, 1)
	return c.GetArgs(1, 0x2000, 0x2000, 64, mc.NoFlag, mc.NoFlag) // want batchissue
}

func modern(c *core.Comm) error {
	if err := c.Put(core.Transfer{To: 1, Remote: 0x1000, Local: 0x1000, Size: 64, Ack: true}); err != nil {
		return err
	}
	c.AckWait()
	return nil
}

func leaky(c *core.Comm) {
	b := c.Batch() // want batchissue
	b.Put(core.Transfer{To: 1, Remote: 0x3000, Local: 0x3000, Size: 8})
}
