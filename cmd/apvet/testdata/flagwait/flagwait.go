// Package app is apvet testdata for the flagwait check: goodFlag is
// waited on and must pass; lostFlag is raised by a PUT but never
// waited on; the ack=true PUT has no AckWait anywhere in the package.
// Both the Transfer-struct style and the positional stride/deprecated
// styles are covered.
package app

// Transfer mirrors core.Transfer for the composite-literal shape.
type Transfer struct {
	To            int
	Remote, Local uint64
	Size          int64
	SendFlag      int32
	RecvFlag      int32
	Ack           bool
}

type comm interface {
	Put(t Transfer) error
	Get(t Transfer) error
	PutArgs(dst int, raddr, laddr uint64, size int64, sendFlag, recvFlag int32, ack bool) error
	WaitFlag(flag int32, target int64)
}

const NoFlag = 0

func exchange(c comm, goodFlag, lostFlag int32) error {
	if err := c.Put(Transfer{To: 1, Remote: 0x1000, Local: 0x1000, Size: 64, RecvFlag: goodFlag}); err != nil {
		return err
	}
	c.WaitFlag(goodFlag, 1)
	if err := c.Put(Transfer{To: 1, Remote: 0x2000, Local: 0x2000, Size: 64, RecvFlag: lostFlag}); err != nil { // want flagwait
		return err
	}
	return c.Put(Transfer{To: 1, Remote: 0x3000, Local: 0x3000, Size: 64, Ack: true}) // want flagwait (no AckWait)
}

// legacy raises lostFlag through the deprecated positional wrapper;
// the flag is still tracked (and batchissue flags the call itself).
func legacy(c comm, lostFlag int32) error {
	return c.PutArgs(1, 0x4000, 0x4000, 64, NoFlag, lostFlag, false) // want flagwait
}
