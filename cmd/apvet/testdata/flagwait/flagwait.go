// Package app is apvet testdata for the flagwait check: every raised
// flag needs a wait somewhere in the program, and every ack=true PUT
// an AckWait in its package. Three findings are expected: two raises
// of the never-waited flag and one unconsumed acknowledgement.
package app

import (
	"ap1000plus/internal/core"
	"ap1000plus/internal/mc"
	"ap1000plus/internal/mem"
)

var lost = mc.FlagID(3)
var synced = mc.FlagID(4)

func lostPut(c *core.Comm) error {
	if err := c.Put(core.Transfer{To: 1, Remote: 0x100, Local: 0x200, Size: 8, SendFlag: lost}); err != nil { // want flagwait
		return err
	}
	return c.PutStride(1, 0x100, 0x200, lost, mc.NoFlag, false, mem.Contiguous(8), mem.Contiguous(8)) // want flagwait
}

func ackNoWait(c *core.Comm) error {
	return c.Put(core.Transfer{To: 2, Remote: 0x100, Local: 0x200, Size: 8, Ack: true}) // want flagwait
}

func syncedPut(c *core.Comm) error {
	if err := c.Put(core.Transfer{To: 1, Remote: 0x100, Local: 0x200, Size: 8, SendFlag: synced}); err != nil {
		return err
	}
	c.WaitFlag(synced, 1) // clean: the raise above is matched
	return nil
}
