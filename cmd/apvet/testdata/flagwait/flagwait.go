// Package app is apvet testdata for the flagwait check: goodFlag is
// waited on and must pass; lostFlag is raised by a PUT but never
// waited on; the ack=true PUT has no AckWait anywhere in the package.
package app

type comm interface {
	Put(dst int, raddr, laddr uint64, size int64, sendFlag, recvFlag int32, ack bool) error
	Get(dst int, raddr, laddr uint64, size int64, sendFlag, recvFlag int32) error
	WaitFlag(flag int32, target int64)
}

const NoFlag = 0

func exchange(c comm, goodFlag, lostFlag int32) error {
	if err := c.Put(1, 0x1000, 0x1000, 64, NoFlag, goodFlag, false); err != nil {
		return err
	}
	c.WaitFlag(goodFlag, 1)
	if err := c.Put(1, 0x2000, 0x2000, 64, NoFlag, lostFlag, false); err != nil { // want flagwait
		return err
	}
	return c.Put(1, 0x3000, 0x3000, 64, NoFlag, NoFlag, true) // want flagwait (no AckWait)
}
