// Package app is apvet testdata for the units check: Params fields
// are float64 microseconds; converting them to event.Time (integer
// nanoseconds) directly drops the thousandfold scale.
package app

import (
	"ap1000plus/internal/core"
	"ap1000plus/internal/event"
	"ap1000plus/internal/pgas"
)

// Params mirrors the shape of internal/params.Params: float64
// microsecond quantities.
type Params struct {
	PutSetupTime float64
	LineTime     float64
}

func schedule(p *Params, msgs []int) []event.Time {
	return []event.Time{
		event.Time(p.PutSetupTime),                 // want units
		event.Time(p.LineTime * 1.5),               // want units
		event.Time(p.PutSetupTime + p.LineTime*64), // want units
		event.Time(0),                              // fine: integer literal
		event.Time(len(msgs)),                      // fine: integral expression
		event.Microseconds(p.PutSetupTime),         // fine: sanctioned conversion
	}
}

// scheduleAtomics models timestamping remote-atomic completions: the
// fetched previous value is an integer count and converts cleanly, but
// scaling it by a microsecond parameter reintroduces the float hazard.
func scheduleAtomics(c *core.Comm, p *Params) ([]event.Time, error) {
	old, err := c.FetchAdd(1, 0x300, 1)
	if err != nil {
		return nil, err
	}
	return []event.Time{
		event.Time(old),                               // fine: integral fetch result
		event.Time(float64(old) * p.LineTime),         // want units
		event.Microseconds(float64(old) * p.LineTime), // fine: sanctioned conversion
	}, nil
}

// schedulePGAS models timestamping PGAS fetch-and-add tickets: same
// rules one layer up — the ticket is integral, scaling it by a
// microsecond parameter is the hazard.
func schedulePGAS(pe *pgas.PE, s *pgas.Shared, p *Params) ([]event.Time, error) {
	ticket, err := pe.FetchAdd(s, 0, 1)
	if err != nil {
		return nil, err
	}
	return []event.Time{
		event.Time(ticket),                               // fine: integral fetch result
		event.Time(float64(ticket) * p.LineTime),         // want units
		event.Microseconds(float64(ticket) * p.LineTime), // fine: sanctioned conversion
	}, nil
}
