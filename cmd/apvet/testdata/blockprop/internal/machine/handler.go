// Package machine is apvet testdata for the handlerblock and
// blockprop checks: delivery handlers run on a foreign controller
// goroutine and must not block — neither directly (flag wait, channel
// receive) nor through a helper function, which only the call-graph
// propagation can see.
package machine

import (
	"ap1000plus/internal/mc"
)

type endpoint struct {
	flags *mc.Flags
	ch    chan int
}

// drain is an ordinary helper; blocking here is fine on a goroutine
// of its own, but any handler calling it synchronously inherits the
// block.
func (e *endpoint) drain() {
	e.flags.Wait(1, 1)
}

// deliver blocks only through the helper — the blockprop check must
// walk the call graph to see it.
func (e *endpoint) deliver() {
	e.drain() // want blockprop
}

// receive blocks directly: a flag wait and a channel receive.
func (e *endpoint) receive() {
	e.flags.Wait(2, 1) // want handlerblock
	<-e.ch             // want handlerblock
	e.flags.Inc(2)     // fine: non-blocking post
	e.ch <- 1          // fine: channel send
}

// sink hands the blocking work to a fresh goroutine — clean.
func (e *endpoint) sink() {
	go e.drain()
}
