// Package app is apvet testdata proving type-awareness: the local
// types below share method names with the machine's primitives (Put,
// WaitFlag, Batch, Copy) and none of them may trip a checker. The one
// real finding is the real PUT whose flag is only "waited" on by the
// fake WaitFlag — a name-based scanner would be fooled both ways.
package app

import (
	"ap1000plus/internal/core"
	"ap1000plus/internal/mc"
)

type fakeComm struct{ log []string }

func (f *fakeComm) Put(s string) error                     { f.log = append(f.log, s); return nil }
func (f *fakeComm) WaitFlag(flag mc.FlagID, target int64)  {}
func (f *fakeComm) Batch() *fakeComm                       { return f }

// Copy shadows mem.Copy by name only.
func Copy(dst, src []byte) int { return copy(dst, src) }

var fake = mc.FlagID(9)

func cleanFakes(f *fakeComm) error {
	Copy(nil, nil)
	f.Batch()
	f.WaitFlag(fake, 1)
	return f.Put("hello")
}

func masked(c *core.Comm, f *fakeComm) error {
	f.WaitFlag(fake, 1) // the fake wait synchronizes nothing
	return c.Put(core.Transfer{To: 1, Remote: 0x10, Local: 0x20, Size: 8, SendFlag: fake}) // want flagwait
}
