// Package app is apvet testdata for the flagbalance check: the total
// raises issued for a flag must match the WaitFlag threshold. The
// balanced pair and the NumCells-bounded loop are clean; waiting
// above the total deadlocks, waiting below it races; a loop whose
// bound the analysis cannot read downgrades to a skip, never a
// verdict.
package app

import (
	"ap1000plus/internal/core"
	"ap1000plus/internal/machine"
	"ap1000plus/internal/mc"
	"ap1000plus/internal/topology"
)

var balanced = mc.FlagID(10)
var overwait = mc.FlagID(11)
var underwait = mc.FlagID(12)
var loopmult = mc.FlagID(13)
var loopover = mc.FlagID(14)
var unknown = mc.FlagID(15)
var atomicmix = mc.FlagID(16)
var atomicover = mc.FlagID(17)

func balancedPair(c *core.Comm) error {
	if err := c.Put(core.Transfer{To: 1, Remote: 0x100, Local: 0x200, Size: 8, SendFlag: balanced}); err != nil {
		return err
	}
	if err := c.Put(core.Transfer{To: 2, Remote: 0x100, Local: 0x200, Size: 8, SendFlag: balanced}); err != nil {
		return err
	}
	c.WaitFlag(balanced, 2) // clean: 2 raises, wait for 2
	return nil
}

func overWait(c *core.Comm) error {
	if err := c.Put(core.Transfer{To: 1, Remote: 0x100, Local: 0x200, Size: 8, SendFlag: overwait}); err != nil {
		return err
	}
	c.WaitFlag(overwait, 2) // want flagbalance
	return nil
}

func underWait(c *core.Comm) error {
	if err := c.Put(core.Transfer{To: 1, Remote: 0x100, Local: 0x200, Size: 8, SendFlag: underwait}); err != nil {
		return err
	}
	if err := c.Put(core.Transfer{To: 2, Remote: 0x100, Local: 0x200, Size: 8, SendFlag: underwait}); err != nil {
		return err
	}
	c.WaitFlag(underwait, 1) // want flagbalance
	return nil
}

// loopKernel is the SPMD all-to-all shape: one PUT per cell, wait for
// the cell count. The trip count and the wait target both resolve to
// P, so the protocol balances at every machine size.
func loopKernel(c *core.Comm, cell *machine.Cell) error {
	np := cell.N()
	for i := 0; i < np; i++ {
		if err := c.Put(core.Transfer{To: topology.CellID(i), Remote: 0x100, Local: 0x200, Size: 8, SendFlag: loopmult}); err != nil {
			return err
		}
	}
	c.WaitFlag(loopmult, int64(np)) // clean: P raises, wait for P
	return nil
}

func loopOver(c *core.Comm, cell *machine.Cell) error {
	np := cell.N()
	for i := 0; i < np; i++ {
		if err := c.Put(core.Transfer{To: topology.CellID(i), Remote: 0x100, Local: 0x200, Size: 8, SendFlag: loopover}); err != nil {
			return err
		}
	}
	c.WaitFlag(loopover, int64(np)+1) // want flagbalance
	return nil
}

// atomicMix interleaves the remote-atomic suite with a flag protocol:
// atomics raise no program flags (fetching ones block internally, the
// non-fetching adds are fenced by FenceAtomics on the implicit ack
// flag), so the count must still balance around them.
func atomicMix(c *core.Comm) error {
	if _, err := c.FetchAdd(1, 0x300, 1); err != nil {
		return err
	}
	if err := c.Put(core.Transfer{To: 1, Remote: 0x100, Local: 0x200, Size: 8, SendFlag: atomicmix}); err != nil {
		return err
	}
	if err := c.AtomicAdd(2, 0x300, 5); err != nil {
		return err
	}
	if _, err := c.CompareAndSwap(2, 0x300, 0, 1); err != nil {
		return err
	}
	if err := c.Put(core.Transfer{To: 2, Remote: 0x100, Local: 0x200, Size: 8, SendFlag: atomicmix}); err != nil {
		return err
	}
	c.FenceAtomics()
	c.WaitFlag(atomicmix, 2) // clean: atomics contribute no raises
	return nil
}

// atomicOverWait still deadlocks with atomics in between — they must
// not be mistaken for raises that could satisfy the wait.
func atomicOverWait(c *core.Comm) error {
	if err := c.Put(core.Transfer{To: 1, Remote: 0x100, Local: 0x200, Size: 8, SendFlag: atomicover}); err != nil {
		return err
	}
	if _, err := c.Swap(1, 0x300, 7); err != nil {
		return err
	}
	c.WaitFlag(atomicover, 2) // want flagbalance
	return nil
}

// unknownKernel's loop bound is an opaque parameter: the analysis
// must record "unknown ×1" raises and skip, not guess a verdict.
func unknownKernel(c *core.Comm, n int) error {
	for i := 0; i < n; i++ {
		if err := c.Put(core.Transfer{To: 1, Remote: 0x100, Local: 0x200, Size: 8, SendFlag: unknown}); err != nil {
			return err
		}
	}
	c.WaitFlag(unknown, int64(n)) // clean: no verdict without a bound
	return nil
}
