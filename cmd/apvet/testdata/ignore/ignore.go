// Package app is apvet testdata for the suppression grammar: a
// reasoned //apvet:ignore suppresses its finding (which stays in the
// output marked suppressed), a reasonless one suppresses nothing and
// is itself a finding, and a pragma matching no finding is stale.
package app

import (
	"ap1000plus/internal/mem"
)

func suppressed(dst, src *mem.Space) error {
	//apvet:ignore rawmem fixture exercising the suppression path
	return mem.Copy(dst, 0x1000, src, 0x2000, 64)
}

func reasonless(dst, src *mem.Space) error {
	//apvet:ignore rawmem
	return mem.Copy(dst, 0x1000, src, 0x2000, 64)
}

//apvet:ignore rawmem nothing on the next line can fire
func stale() {}
