// Package app is apvet testdata for the Transfer pass-through rule:
// reading SendFlag off a core.Transfer parameter is the forwarding
// layer's pass-through — the flag belongs to whoever built the
// Transfer — and must not count as a raise here. But a same-named
// field on any other struct type is an ordinary flag source and an
// unsynchronized raise through it must still be reported.
package app

import (
	"ap1000plus/internal/core"
	"ap1000plus/internal/mc"
	"ap1000plus/internal/mem"
)

// forward re-issues a transfer as a stride PUT: every field read is a
// genuine pass-through, clean even though nothing here waits.
func forward(c *core.Comm, t core.Transfer) error {
	return c.PutStride(t.To, t.Remote, t.Local, t.SendFlag, t.RecvFlag, t.Ack,
		mem.Contiguous(t.Size), mem.Contiguous(t.Size))
}

// request is NOT core.Transfer; its SendFlag field carries a real
// flag identity and the unsynchronized raise must fire.
type request struct {
	SendFlag mc.FlagID
}

func issue(c *core.Comm, r request) error {
	return c.PutStride(1, 0x100, 0x200, r.SendFlag, mc.NoFlag, false, // want flagwait
		mem.Contiguous(8), mem.Contiguous(8))
}
