package main

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"ap1000plus/cmd/apvet/internal/load"
)

// knownChecks gates the "// want <check>" expectation comments in the
// fixture sources.
var knownChecks = map[string]bool{
	"rawmem": true, "flagwait": true, "flagbalance": true,
	"handlerblock": true, "blockprop": true, "units": true,
	"batchissue": true, "dsmfence": true, "pragma": true,
}

// parseWants scans every .go file under root for "// want <check>"
// comments and returns the expected findings as "file:line:check"
// occurrence counts.
func parseWants(t *testing.T, root string) map[string]int {
	t.Helper()
	wants := map[string]int{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			_, after, ok := strings.Cut(sc.Text(), "// want ")
			if !ok {
				continue
			}
			for _, check := range strings.Fields(after) {
				if !knownChecks[check] {
					t.Fatalf("%s:%d: unknown check %q in want comment", path, line, check)
				}
				wants[key(filepath.ToSlash(path), line, check)]++
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

func key(file string, line int, check string) string {
	return file + ":" + strconv.Itoa(line) + ":" + check
}

// checkGolden runs apvet over a fixture tree and requires the
// unsuppressed findings to match the want comments exactly.
func checkGolden(t *testing.T, pattern string) []Finding {
	t.Helper()
	findings, err := run([]string{pattern}, true)
	if err != nil {
		t.Fatal(err)
	}
	root := strings.TrimSuffix(pattern, "/...")
	wants := parseWants(t, root)
	got := map[string]int{}
	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		got[key(filepath.ToSlash(f.File), f.Line, f.Check)]++
	}
	for k, n := range wants {
		if got[k] != n {
			t.Errorf("want %d finding(s) at %s, got %d", n, k, got[k])
		}
	}
	for k, n := range got {
		if wants[k] != n {
			t.Errorf("unexpected finding(s) at %s (%d)", k, n)
		}
	}
	if t.Failed() {
		for _, f := range findings {
			t.Logf("finding: %s", f)
		}
	}
	return findings
}

func TestRawMemGolden(t *testing.T)      { checkGolden(t, "testdata/rawmem") }
func TestUnitsGolden(t *testing.T)       { checkGolden(t, "testdata/units") }
func TestDSMFenceGolden(t *testing.T)    { checkGolden(t, "testdata/dsmfence") }
func TestBatchIssueGolden(t *testing.T)  { checkGolden(t, "testdata/batchissue") }
func TestFlagWaitGolden(t *testing.T)    { checkGolden(t, "testdata/flagwait") }
func TestSameNameGolden(t *testing.T)    { checkGolden(t, "testdata/samename") }
func TestTransferFwdGolden(t *testing.T) { checkGolden(t, "testdata/transferfwd") }
func TestFlagFwdGolden(t *testing.T)     { checkGolden(t, "testdata/flagfwd") }
func TestFlagBalanceGolden(t *testing.T) { checkGolden(t, "testdata/flagbalance") }

func TestPGASBlockGolden(t *testing.T) { checkGolden(t, "testdata/pgasblock/...") }

func TestBlockPropGolden(t *testing.T) {
	findings := checkGolden(t, "testdata/blockprop/...")
	for _, f := range findings {
		if f.Check == "blockprop" {
			if !strings.Contains(f.Msg, "deliver") || !strings.Contains(f.Msg, "drain") {
				t.Errorf("blockprop message lacks the witness chain: %s", f.Msg)
			}
			return
		}
	}
	t.Error("no blockprop finding")
}

// TestFlagBalanceTable checks the analysis rows behind the verdicts:
// loop multipliers resolve to P, unknown bounds downgrade to a skip.
func TestFlagBalanceTable(t *testing.T) {
	res, err := load.Load([]string{"testdata/flagbalance"}, true)
	if err != nil {
		t.Fatal(err)
	}
	_, infos := newProgram(res).checkFlagBalance()
	rows := map[string]balanceInfo{}
	for _, in := range infos {
		rows[in.flag] = in
	}
	assert := func(flag, verdict, raises string) {
		t.Helper()
		in, ok := rows[flag]
		if !ok {
			t.Errorf("no balance row for flag %q (rows: %v)", flag, rows)
			return
		}
		if in.verdict != verdict {
			t.Errorf("flag %q: verdict %q, want %q", flag, in.verdict, verdict)
		}
		if raises != "" && in.raises != raises {
			t.Errorf("flag %q: raises %q, want %q", flag, in.raises, raises)
		}
	}
	assert("balanced", "balanced", "2")
	assert("overwait", "deadlock", "1")
	assert("underwait", "race", "2")
	assert("loopmult", "balanced", "P")
	assert("loopover", "deadlock", "P")
	assert("unknown", "skip: unrecognized loop bound", "unknown ×1")
	assert("atomicmix", "balanced", "2")
	assert("atomicover", "deadlock", "1")
}

// TestPragmas exercises the suppression grammar end to end: reasoned
// pragmas suppress but stay visible, reasonless and stale pragmas are
// findings of their own.
func TestPragmas(t *testing.T) {
	findings, err := run([]string{"testdata/ignore"}, true)
	if err != nil {
		t.Fatal(err)
	}
	var suppressed, live, noReason, stale int
	for _, f := range findings {
		switch {
		case f.Check == "rawmem" && f.Suppressed:
			suppressed++
			if f.Reason != "fixture exercising the suppression path" {
				t.Errorf("suppression reason = %q", f.Reason)
			}
		case f.Check == "rawmem":
			live++
		case f.Check == "pragma" && strings.Contains(f.Msg, "no reason"):
			noReason++
		case f.Check == "pragma" && strings.Contains(f.Msg, "stale"):
			stale++
		default:
			t.Errorf("unexpected finding: %s", f)
		}
	}
	if suppressed != 1 || live != 1 || noReason != 1 || stale != 1 {
		t.Errorf("suppressed=%d live=%d noReason=%d stale=%d, want 1 each (findings: %v)",
			suppressed, live, noReason, stale, findings)
	}
}

// TestTreeClean is the self-check: apvet over the whole repository
// must report nothing unsuppressed, and every suppression must carry
// a reason.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree typecheck is slow")
	}
	findings, err := run([]string{"../../..."}, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if !f.Suppressed {
			t.Errorf("unsuppressed finding in the tree: %s", f)
		} else if f.Reason == "" {
			t.Errorf("suppressed without reason: %s", f)
		}
	}
}

// TestJSONDeterministic runs the same scan twice through fresh loads
// and requires byte-identical -json output.
func TestJSONDeterministic(t *testing.T) {
	emit := func() []byte {
		findings, err := run([]string{"testdata/rawmem", "testdata/units", "testdata/ignore"}, true)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := writeJSON(&buf, findings); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := emit(), emit()
	if !bytes.Equal(a, b) {
		t.Errorf("JSON output not deterministic:\n%s\n-- vs --\n%s", a, b)
	}
}

// TestExpandSkipsTestdata keeps the fixture packages out of pattern
// walks, so the self-check never scans them.
func TestExpandSkipsTestdata(t *testing.T) {
	dirs, err := load.Expand("./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(filepath.ToSlash(d), "testdata") {
			t.Errorf("Expand walked into %s", d)
		}
	}
}

// TestTestFilesScanned proves _test.go files are part of the scan set
// by default and excluded with tests=false.
func TestTestFilesScanned(t *testing.T) {
	res, err := load.Load([]string{"../../internal/bnet"}, true)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, u := range res.Pkgs {
		if !u.Analyzed {
			continue
		}
		for _, f := range u.Files {
			if strings.HasSuffix(res.Fset.Position(f.Package).Filename, "_test.go") {
				found = true
			}
		}
	}
	if !found {
		t.Error("no _test.go files in the analyzed units")
	}
	res, err = load.Load([]string{"../../internal/bnet"}, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range res.Pkgs {
		if !u.Analyzed {
			continue
		}
		for _, f := range u.Files {
			if strings.HasSuffix(res.Fset.Position(f.Package).Filename, "_test.go") {
				t.Error("tests=false still loaded a _test.go file")
			}
		}
	}
}
