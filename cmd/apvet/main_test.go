package main

import (
	"strings"
	"testing"
)

// checkDir parses one testdata directory and returns the findings.
func checkDir(t *testing.T, dir string) []Finding {
	t.Helper()
	pkgs, err := parseDirs([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	return Check(pkgs)
}

func countCheck(fs []Finding, check string) int {
	n := 0
	for _, f := range fs {
		if f.Check == check {
			n++
		}
	}
	return n
}

// The repository itself must be clean: apvet's rules describe
// invariants the tree actually upholds.
func TestTreeIsClean(t *testing.T) {
	dirs, err := expand("../../...")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := parseDirs(dirs)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Check(pkgs) {
		t.Errorf("unexpected finding on the tree: %s", f)
	}
}

func TestRawMem(t *testing.T) {
	fs := checkDir(t, "testdata/rawmem")
	if got := countCheck(fs, "rawmem"); got != 2 {
		t.Fatalf("rawmem findings = %d, want 2 (mem.Copy and Deliver): %v", got, fs)
	}
	if len(fs) != 2 {
		t.Fatalf("unexpected extra findings: %v", fs)
	}
}

// The same primitives are legal inside the machine's own engines.
func TestRawMemAllowlist(t *testing.T) {
	for _, dir := range []string{
		"../../internal/mem", "../../internal/machine",
		"../../internal/dsm", "../../internal/sendrecv",
	} {
		if fs := checkDir(t, dir); countCheck(fs, "rawmem") != 0 {
			t.Errorf("%s: rawmem fired inside the allowlist: %v", dir, fs)
		}
	}
}

func TestFlagWait(t *testing.T) {
	fs := checkDir(t, "testdata/flagwait")
	if got := countCheck(fs, "flagwait"); got != 3 {
		t.Fatalf("flagwait findings = %d, want 3 (lostFlag via Transfer and PutArgs, plus the ack): %v", got, fs)
	}
	var lost, acks int
	for _, f := range fs {
		if f.Check != "flagwait" {
			continue
		}
		if strings.Contains(f.Msg, "lostFlag") {
			lost++
		}
		if strings.Contains(f.Msg, "AckWait") {
			acks++
		}
		if strings.Contains(f.Msg, "goodFlag") {
			t.Errorf("goodFlag is waited on and must not be reported: %s", f)
		}
	}
	if lost != 2 || acks != 1 {
		t.Fatalf("missing expected findings (lostFlag=%d ack=%d): %v", lost, acks, fs)
	}
}

func TestBatchIssue(t *testing.T) {
	fs := checkDir(t, "testdata/batchissue")
	if got := countCheck(fs, "batchissue"); got != 3 {
		t.Fatalf("batchissue findings = %d, want 3 (PutArgs, GetArgs, uncommitted Batch): %v", got, fs)
	}
	var deprecated, uncommitted int
	for _, f := range fs {
		if f.Check != "batchissue" {
			continue
		}
		if strings.Contains(f.Msg, "deprecated positional") {
			deprecated++
		}
		if strings.Contains(f.Msg, "without a Commit") {
			uncommitted++
		}
	}
	if deprecated != 2 || uncommitted != 1 {
		t.Fatalf("deprecated=%d uncommitted=%d: %v", deprecated, uncommitted, fs)
	}
	if got := countCheck(fs, "flagwait"); got != 0 {
		t.Fatalf("flagwait must stay quiet on the batchissue fixture: %v", fs)
	}
}

func TestHandlerBlock(t *testing.T) {
	fs := checkDir(t, "testdata/handlerblock/internal/machine")
	if got := countCheck(fs, "handlerblock"); got != 3 {
		t.Fatalf("handlerblock findings = %d, want 3 (Wait, Load32, <-ch): %v", got, fs)
	}
	for _, want := range []string{"Wait", "Load32", "channel receive"} {
		found := false
		for _, f := range fs {
			if strings.Contains(f.Msg, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no finding mentioning %q: %v", want, fs)
		}
	}
}

func TestUnits(t *testing.T) {
	fs := checkDir(t, "testdata/units")
	if got := countCheck(fs, "units"); got != 3 {
		t.Fatalf("units findings = %d, want 3: %v", got, fs)
	}
	for _, f := range fs {
		if !strings.Contains(f.Msg, "event.Microseconds") {
			t.Errorf("units finding should point at event.Microseconds: %s", f)
		}
	}
}

func TestDSMFence(t *testing.T) {
	fs := checkDir(t, "testdata/dsmfence")
	if got := countCheck(fs, "dsmfence"); got != 2 {
		t.Fatalf("dsmfence findings = %d, want 2 (unfenced LoadF64 and Load): %v", got, fs)
	}
	if len(fs) != 2 {
		t.Fatalf("unexpected extra findings: %v", fs)
	}
	for _, f := range fs {
		if !strings.Contains(f.Msg, "Fence()") {
			t.Errorf("dsmfence finding should point at Fence(): %s", f)
		}
	}
}

// expand must skip testdata (so the tree run stays clean) but keep
// ordinary nested packages.
func TestExpandSkipsTestdata(t *testing.T) {
	dirs, err := expand("./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Fatalf("expand returned a testdata dir: %s", d)
		}
	}
	if len(dirs) != 1 {
		t.Fatalf("expand('./...') = %v, want just the package dir", dirs)
	}
}
