// Command apvet is a static checker for AP1000+ simulator code: it
// enforces the communication discipline the machine cannot check at
// compile time. Stdlib-only (go/parser + go/ast); no type
// information is needed because the rules are about the shape of the
// code, not its types.
//
// Checks:
//
//   - rawmem: application code must not touch simulated DRAM behind
//     the MSC+'s back (mem.Copy / mem.CopyStride / mem.CapturePayload
//     / payload.Deliver) — only the machine's own engines may.
//   - flagwait: every Put/Get flag argument must have a matching
//     flag wait somewhere in the package, and every ack=true PUT an
//     AckWait; a flag nobody waits on is a silent race.
//   - handlerblock: receive/delivery handlers run on another cell's
//     controller goroutine and must never block (no flag waits,
//     p-bit loads, barriers, or channel receives).
//   - units: event.Time is integer nanoseconds while machine
//     parameters are float64 microseconds; a direct event.Time(x)
//     conversion of a parameter-like value must go through
//     event.Microseconds instead.
//   - batchissue: no new uses of the deprecated positional
//     PutArgs/GetArgs wrappers (state the transfer as a Transfer
//     struct, or batch it on a CommandList), and no Batch() whose
//     package never calls Commit (staged commands are silently
//     dropped).
//   - dsmfence: DSM remote stores are non-blocking; a Store to a
//     shared address followed by a Load of the same address without
//     an intervening Fence on that DSM races the store's delivery.
//
// Usage:
//
//	go run ./cmd/apvet ./...
//
// Exits 0 when the tree is clean, 1 when any check fires.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one rule violation.
type Finding struct {
	Pos   token.Position
	Check string
	Msg   string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Check, f.Msg)
}

// pkg is one parsed directory of non-test Go files.
type pkg struct {
	dir   string // slash-separated, relative to the scan root
	fset  *token.FileSet
	files []*ast.File
}

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var dirs []string
	for _, a := range args {
		expanded, err := expand(a)
		if err != nil {
			fmt.Fprintln(os.Stderr, "apvet:", err)
			os.Exit(2)
		}
		dirs = append(dirs, expanded...)
	}
	pkgs, err := parseDirs(dirs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apvet:", err)
		os.Exit(2)
	}
	findings := Check(pkgs)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "apvet: %d problem(s)\n", len(findings))
		os.Exit(1)
	}
}

// expand resolves a package pattern to directories: "dir/..." walks,
// anything else is taken literally. testdata and hidden directories
// are skipped, as the go tool does.
func expand(pattern string) ([]string, error) {
	root, recursive := pattern, false
	if strings.HasSuffix(pattern, "/...") {
		root, recursive = strings.TrimSuffix(pattern, "/..."), true
	}
	if root == "" {
		root = "."
	}
	if !recursive {
		return []string{root}, nil
	}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// parseDirs parses every non-test .go file of each directory.
// Directories without Go files are dropped.
func parseDirs(dirs []string) ([]*pkg, error) {
	var pkgs []*pkg
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		p := &pkg{dir: filepath.ToSlash(filepath.Clean(dir)), fset: token.NewFileSet()}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(p.fset, filepath.Join(dir, name), nil, 0)
			if err != nil {
				return nil, err
			}
			p.files = append(p.files, f)
		}
		if len(p.files) > 0 {
			pkgs = append(pkgs, p)
		}
	}
	return pkgs, nil
}

// Check runs every rule over the parsed packages and returns findings
// sorted by position.
func Check(pkgs []*pkg) []Finding {
	floats := paramFloatFields(pkgs)
	var out []Finding
	for _, p := range pkgs {
		out = append(out, checkRawMem(p)...)
		out = append(out, checkFlagWait(p)...)
		out = append(out, checkHandlerBlock(p)...)
		out = append(out, checkUnits(p, floats)...)
		out = append(out, checkBatchIssue(p)...)
		out = append(out, checkDSMFence(p)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return out
}
