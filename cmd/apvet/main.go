// Command apvet is a static checker for AP1000+ simulator code: it
// enforces the communication discipline the machine cannot check at
// compile time. Stdlib-only, but type-aware: packages are typechecked
// with go/types (standard-library imports resolve through the source
// importer, module-internal imports straight from the tree), callees
// resolve by object identity rather than bare name, and an
// intra-module call graph carries flag identities and a may-block bit
// across function boundaries. _test.go files are scanned by default —
// chaos and property tests issue real PUTs too.
//
// Checks:
//
//   - rawmem: application code must not touch simulated DRAM behind
//     the MSC+'s back (mem.Copy / mem.CopyStride / mem.CapturePayload
//     / Payload.Deliver) — only the machine's own engines may.
//   - flagwait: every PUT/GET flag must have a matching flag wait
//     somewhere in the program — through helper parameters and
//     wrapper functions included — and every ack=true PUT an AckWait
//     in its package; a flag nobody waits on is a silent race.
//   - flagbalance: interprocedural flag counting — the total
//     SendFlag/RecvFlag increments issued for a flag (with constant
//     and cell-count loop multipliers) must match the WaitFlag
//     threshold; wait > raises deadlocks, wait < raises races.
//   - handlerblock: receive/delivery handlers run on another cell's
//     controller goroutine and must never block (no flag waits,
//     p-bit loads, barriers, or channel receives).
//   - blockprop: the may-block bit propagated through the call graph;
//     catches handlers that block via helper functions, with the
//     witness chain in the message.
//   - units: event.Time is integer nanoseconds while machine
//     parameters are float64 microseconds; converting a float-typed
//     expression with event.Time(x) must go through
//     event.Microseconds instead.
//   - batchissue: the retired positional PutArgs/GetArgs names may
//     not be declared or called on any type (pass a Transfer or stage
//     a CommandList instead), and no Batch() whose package never
//     calls Commit (staged commands are silently dropped).
//   - dsmfence: DSM remote stores are non-blocking; a Store to a
//     shared address followed by a Load of the same address without
//     an intervening Fence on that DSM races the store's delivery.
//
// A finding can be suppressed with a pragma on the same line or the
// line above:
//
//	//apvet:ignore <check> <reason>
//
// The reason is mandatory — a reasonless pragma is itself a finding —
// and suppressed findings still appear in the output (and in -json)
// marked suppressed, so the suppression stays auditable.
//
// Usage:
//
//	go run ./cmd/apvet [-json] [-tests=false] ./...
//
// Exits 0 when the tree is clean (suppressed findings allowed), 1
// when any unsuppressed finding fires, 2 on load errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"ap1000plus/cmd/apvet/internal/load"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (deterministic order)")
	tests := flag.Bool("tests", true, "scan _test.go files too")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := run(patterns, *tests)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apvet:", err)
		os.Exit(2)
	}
	if *jsonOut {
		if err := writeJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "apvet:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	live := 0
	for _, f := range findings {
		if !f.Suppressed {
			live++
		}
	}
	if live > 0 {
		fmt.Fprintf(os.Stderr, "apvet: %d problem(s)\n", live)
		os.Exit(1)
	}
}

// run loads the patterns, builds the typed program, and applies every
// analyzer. The returned findings are sorted and pragma-annotated.
func run(patterns []string, tests bool) ([]Finding, error) {
	res, err := load.Load(patterns, tests)
	if err != nil {
		return nil, err
	}
	pr := newProgram(res)
	var findings []Finding
	findings = append(findings, pr.checkRawMem()...)
	findings = append(findings, pr.checkFlagWait()...)
	balance, _ := pr.checkFlagBalance()
	findings = append(findings, balance...)
	findings = append(findings, pr.checkHandlerBlock()...)
	findings = append(findings, pr.checkUnits()...)
	findings = append(findings, pr.checkBatchIssue()...)
	findings = append(findings, pr.checkDSMFence()...)
	return applyPragmas(findings, collectPragmas(res.Fset, res.Pkgs)), nil
}
