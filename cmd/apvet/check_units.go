package main

// units: event.Time is integer nanoseconds; the machine parameter
// files (internal/params) are float64 microseconds, as in the paper's
// tables. A direct event.Time(x) conversion of a float-valued
// expression loses the thousandfold scale silently; the sanctioned
// conversion is event.Microseconds. Under go/types the evidence is
// exact: any float-typed subexpression inside the conversion argument
// fires. The event package itself — which defines the sanctioned
// conversion — is exempt.

import (
	"fmt"
	"go/ast"
	"go/types"

	"ap1000plus/cmd/apvet/internal/load"
)

func (pr *program) checkUnits() []Finding {
	var out []Finding
	for _, u := range pr.pkgs {
		if !u.Analyzed || u.Path == eventPkg || u.Path == eventPkg+"_test" {
			continue
		}
		for _, f := range u.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				tv, ok := u.Info.Types[call.Fun]
				if !ok || !tv.IsType() {
					return true
				}
				named, ok := tv.Type.(*types.Named)
				if !ok {
					return true
				}
				obj := named.Obj()
				if obj.Name() != "Time" || obj.Pkg() == nil || obj.Pkg().Path() != eventPkg {
					return true
				}
				if why := pr.floatEvidence(u, call.Args[0]); why != "" {
					out = append(out, pr.finding(call.Pos(), "units",
						fmt.Sprintf("event.Time(...) of %s mixes microsecond parameters into nanosecond time; use event.Microseconds", why)))
				}
				return true
			})
		}
	}
	return out
}

// floatEvidence returns a description of the outermost float-typed
// subexpression of e, or "" if everything is integral.
func (pr *program) floatEvidence(u *load.Package, e ast.Expr) string {
	why := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		tv, ok := u.Info.Types[expr]
		if !ok || tv.Type == nil {
			return true
		}
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
			why = fmt.Sprintf("float expression %s", pr.exprText(expr))
			return false
		}
		return true
	})
	return why
}
