package main

// flagbalance: flow-insensitive interprocedural flag counting. For
// every flag object the analysis totals the SendFlag/RecvFlag
// increments the program issues (loop-multiplied where the trip count
// is a recognizable constant or cell-count expression) and compares
// them against the WaitFlag thresholds. A wait above the total can
// never be satisfied (deadlock); a wait below it unblocks while
// transfers are still landing (race on the buffer's reuse).
//
// The verdict is only issued when the whole protocol for a flag is
// visible from a single "top" function — one that no other function
// with events on the same flag calls. Conditional raises, unknown
// loop bounds, Flags.Reset phases and lossy summaries all downgrade
// the flag to a skip, recorded in the balance table for inspection.

import (
	"fmt"
	"go/token"
	"sort"
)

// balanceInfo is one row of the balance table: what the analysis
// concluded about one flag object, verdict or skip reason.
type balanceInfo struct {
	flag    string // display name
	key     string
	top     string // full name of the top function ("" if skipped earlier)
	raises  string
	waitMax string
	verdict string // "balanced", "deadlock", "race", or "skip: <reason>"
}

func (pr *program) checkFlagBalance() ([]Finding, []balanceInfo) {
	// Which functions have events on which flag objects.
	involved := map[string]map[string]bool{} // key -> set of func full names
	names := map[string]string{}             // key -> display name
	note := func(key, name, fn string) {
		if involved[key] == nil {
			involved[key] = map[string]bool{}
		}
		involved[key][fn] = true
		if names[key] == "" {
			names[key] = name
		}
	}
	for _, name := range pr.names {
		fn := pr.funcs[name]
		rs := pr.resolve(fn)
		for _, r := range rs.raises {
			if r.ref.kind == refObj {
				note(r.ref.key, r.ref.name, name)
			}
		}
		for _, w := range rs.waits {
			if w.ref.kind == refObj {
				note(w.ref.key, w.ref.name, name)
			}
		}
		for _, r := range rs.resets {
			if r.ref.kind == refObj {
				note(r.ref.key, r.ref.name, name)
			}
		}
	}

	// Transitive reachability over call edges, memoized.
	reach := map[string]map[string]bool{}
	var reachable func(string) map[string]bool
	reachable = func(name string) map[string]bool {
		if r, ok := reach[name]; ok {
			return r
		}
		r := map[string]bool{}
		reach[name] = r // break cycles: partial set during DFS
		fn := pr.funcs[name]
		if fn == nil {
			return r
		}
		for _, e := range fn.edges {
			if r[e.callee] {
				continue
			}
			r[e.callee] = true
			for sub := range reachable(e.callee) {
				r[sub] = true
			}
		}
		return r
	}

	var out []Finding
	var infos []balanceInfo
	var keys []string
	for key := range involved {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		info := balanceInfo{flag: names[key], key: key}
		var funcs []string
		for f := range involved[key] {
			funcs = append(funcs, f)
		}
		sort.Strings(funcs)
		var tops []string
		for _, f := range funcs {
			isTop := true
			for _, g := range funcs {
				if g != f && reachable(g)[f] {
					isTop = false
					break
				}
			}
			if isTop {
				tops = append(tops, f)
			}
		}
		if len(tops) != 1 {
			info.verdict = fmt.Sprintf("skip: %d top functions share the flag", len(tops))
			infos = append(infos, info)
			continue
		}
		top := tops[0]
		info.top = top
		rs := pr.resolve(pr.funcs[top])
		if rs.lossy {
			info.verdict = "skip: lossy summary (an untracked raise reaches this scope)"
			infos = append(infos, info)
			continue
		}
		reset := false
		for _, r := range rs.resets {
			if r.ref.kind == refObj && r.ref.key == key {
				reset = true
				break
			}
		}
		if reset {
			info.verdict = "skip: Flags.Reset splits the count into phases"
			infos = append(infos, info)
			continue
		}

		// Total the raises.
		total := poly{}
		nRaises, unknownCount, condRaise := 0, 0, false
		for _, r := range rs.raises {
			if r.ref.kind != refObj || r.ref.key != key {
				continue
			}
			nRaises++
			if r.cond {
				condRaise = true
			}
			if r.n.unk {
				unknownCount++
			} else {
				total = total.add(r.n)
			}
		}
		if nRaises == 0 {
			info.verdict = "skip: no raises in scope (flagwait territory)"
			infos = append(infos, info)
			continue
		}
		if unknownCount > 0 {
			info.raises = fmt.Sprintf("unknown ×%d", unknownCount)
			if !total.isZero() {
				info.raises = fmt.Sprintf("%s + unknown ×%d", total, unknownCount)
			}
			info.verdict = "skip: unrecognized loop bound"
			infos = append(infos, info)
			continue
		}
		info.raises = total.String()
		if condRaise {
			info.verdict = "skip: conditional raise"
			infos = append(infos, info)
			continue
		}

		// Find the strongest wait.
		var wmax poly
		var wpos token.Pos
		haveWait, condWait, unkWait := false, false, false
		for _, w := range rs.waits {
			if w.ref.kind != refObj || w.ref.key != key {
				continue
			}
			if w.cond {
				condWait = true
			}
			if w.target.unk {
				unkWait = true
				continue
			}
			if !haveWait || w.target.eval(4096) > wmax.eval(4096) {
				wmax, wpos = w.target, w.prim
				if !pr.analyzedPos(wpos) {
					wpos = w.site
				}
			}
			haveWait = true
		}
		switch {
		case unkWait:
			info.verdict = "skip: unrecognized wait target"
		case condWait:
			info.verdict = "skip: conditional wait"
		case !haveWait:
			info.verdict = "skip: no wait in scope (flagwait territory)"
		}
		if info.verdict != "" {
			infos = append(infos, info)
			continue
		}
		info.waitMax = wmax.String()

		// Compare at two cell counts so P-linear terms are ordered
		// consistently; a crossover means the sign depends on the
		// machine size and no static verdict holds.
		d2 := wmax.eval(2) - total.eval(2)
		d4096 := wmax.eval(4096) - total.eval(4096)
		switch {
		case d2 == 0 && d4096 == 0:
			info.verdict = "balanced"
		case d2 > 0 && d4096 > 0:
			info.verdict = "deadlock"
			if pr.analyzedPos(wpos) {
				out = append(out, pr.finding(wpos, "flagbalance",
					fmt.Sprintf("wait on flag %q for %s but only %s raises are issued (deadlock: the wait can never be satisfied)",
						info.flag, info.waitMax, info.raises)))
			}
		case d2 < 0 && d4096 < 0:
			info.verdict = "race"
			if pr.analyzedPos(wpos) {
				out = append(out, pr.finding(wpos, "flagbalance",
					fmt.Sprintf("wait on flag %q for %s but %s raises are issued (race: transfers still land after the wait unblocks)",
						info.flag, info.waitMax, info.raises)))
			}
		default:
			info.verdict = "skip: balance depends on the cell count"
		}
		infos = append(infos, info)
	}
	return out, infos
}

func (a poly) isZero() bool { return !a.unk && a.c == 0 && a.p == 0 }
