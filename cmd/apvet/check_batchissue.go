package main

// batchissue: the positional PutArgs/GetArgs wrappers are gone —
// new code states its transfer as a Transfer struct (or stages it on
// a CommandList) — and the check keeps them gone: the NAMES are
// banned, so declaring or calling a PutArgs/GetArgs on any receiver
// is flagged even though core no longer has methods to resolve
// against. And a CommandList opened with Batch() but never
// Commit()ed issues nothing: the staged commands silently evaporate.
// The Commit search stays package-scoped, so helpers that open in one
// function and commit in another are clean. Batch/Commit callees
// resolve through go/types: only core's real methods count, never a
// local function that shares the name.

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

func (pr *program) checkBatchIssue() []Finding {
	var out []Finding
	for _, u := range pr.pkgs {
		if !u.Analyzed || u.Path == corePkg || u.Path == corePkg+"_test" {
			continue
		}
		var batchPos []token.Pos
		committed := false
		for _, f := range u.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					// The names are banned at the declaration too: a local
					// shim reintroducing the positional spelling is flagged
					// before anything even calls it.
					if bannedIssueNames[n.Name.Name] {
						out = append(out, pr.finding(n.Name.Pos(), "batchissue",
							fmt.Sprintf("declaration of retired positional %s; pass a Transfer to %s or stage it on a CommandList",
								n.Name.Name, strings.TrimSuffix(n.Name.Name, "Args"))))
					}
				case *ast.CallExpr:
					callee := calleeOf(u.Info, n)
					if callee == nil {
						return true
					}
					switch full := callee.FullName(); {
					case bannedIssueNames[callee.Name()]:
						name := callee.Name()
						out = append(out, pr.finding(n.Pos(), "batchissue",
							fmt.Sprintf("retired positional %s; pass a Transfer to %s or stage it on a CommandList",
								name, strings.TrimSuffix(name, "Args"))))
					case full == batchOpenPrim:
						batchPos = append(batchPos, n.Pos())
					case full == batchCommitPrim:
						committed = true
					}
				}
				return true
			})
		}
		if !committed {
			for _, pos := range batchPos {
				out = append(out, pr.finding(pos, "batchissue",
					"Batch() without a Commit in this package (staged commands are never issued)"))
			}
		}
	}
	return out
}
