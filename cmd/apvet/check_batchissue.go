package main

// batchissue: the positional PutArgs/GetArgs wrappers exist only to
// ease migration — new code states its transfer as a Transfer struct
// (or stages it on a CommandList). And a CommandList opened with
// Batch() but never Commit()ed issues nothing: the staged commands
// silently evaporate. The Commit search stays package-scoped, so
// helpers that open in one function and commit in another are clean.
// Callees resolve through go/types: only core's real Batch/Commit
// methods count, never a local function that shares the name.

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

func (pr *program) checkBatchIssue() []Finding {
	var out []Finding
	for _, u := range pr.pkgs {
		if !u.Analyzed || u.Path == corePkg || u.Path == corePkg+"_test" {
			continue
		}
		var batchPos []token.Pos
		committed := false
		for _, f := range u.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeOf(u.Info, call)
				if callee == nil {
					return true
				}
				switch full := callee.FullName(); {
				case deprecatedPrims[full]:
					name := callee.Name()
					out = append(out, pr.finding(call.Pos(), "batchissue",
						fmt.Sprintf("deprecated positional %s; pass a Transfer to %s or stage it on a CommandList",
							name, strings.TrimSuffix(name, "Args"))))
				case full == batchOpenPrim:
					batchPos = append(batchPos, call.Pos())
				case full == batchCommitPrim:
					committed = true
				}
				return true
			})
		}
		if !committed {
			for _, pos := range batchPos {
				out = append(out, pr.finding(pos, "batchissue",
					"Batch() without a Commit in this package (staged commands are never issued)"))
			}
		}
	}
	return out
}
