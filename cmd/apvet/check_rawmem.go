package main

// rawmem: simulated DRAM may only be touched by the machine's own
// DMA/delivery engines. Application code going through mem.Copy,
// mem.CopyStride, mem.CapturePayload or Payload.Deliver bypasses the
// MSC+ command queues — and with them the sanitizer, the timing model
// and the trace — so the write is invisible to every tool downstream.
// Callees resolve through go/types, so a local function named Copy or
// Deliver never matches.

import (
	"fmt"
	"go/ast"
)

var rawMemAllow = []string{
	"internal/mem",      // defines the primitives
	"internal/machine",  // the MSC+/MC engines themselves
	"internal/dsm",      // page-transfer engine
	"internal/sendrecv", // message-buffer delivery engine
}

func (pr *program) checkRawMem() []Finding {
	var out []Finding
	for _, u := range pr.pkgs {
		if !u.Analyzed {
			continue
		}
		allowed := false
		for _, dir := range rawMemAllow {
			if hasDirSuffix(u, dir) {
				allowed = true
				break
			}
		}
		if allowed {
			continue
		}
		for _, f := range u.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := calleeOf(u.Info, call); callee != nil {
					if name, hit := rawMemPrims[callee.FullName()]; hit {
						out = append(out, pr.finding(call.Pos(), "rawmem",
							fmt.Sprintf("%s bypasses the MSC+ command queues; issue a PUT/GET/SEND instead", name)))
					}
				}
				return true
			})
		}
	}
	return out
}
