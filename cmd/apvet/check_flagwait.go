package main

// flagwait: a PUT/GET flag that nobody ever waits on is a silent
// race — the paper's synchronization story is "flag rises when the
// DMA completes, reader waits on the flag". With the call graph the
// check is object-global: a raise on flag object O is clean if any
// function in the loaded program waits on O, including waits reached
// through helper-function parameters. Flags forwarded out of a
// core.Transfer value are the forwarding layer's pass-through, not a
// new raise, and never fire here — but same-named fields of other
// struct types do.

import (
	"fmt"
	"go/token"
	"sort"
)

func (pr *program) checkFlagWait() []Finding {
	// Every flag object somebody waits on, program-wide.
	waited := map[string]bool{}
	for _, name := range pr.names {
		for _, w := range pr.resolve(pr.funcs[name]).waits {
			if w.ref.kind == refObj {
				waited[w.ref.key] = true
			}
		}
	}

	// Raises appear in the resolved summary of every (transitive)
	// caller; dedupe by the primitive call position and keep the best
	// reporting site: the primitive itself if it is in an analyzed
	// file, else the outermost analyzed call site.
	type raiseSite struct {
		pos  token.Pos
		verb string
		name string
	}
	best := map[string]map[token.Pos]raiseSite{} // key -> prim -> site
	for _, name := range pr.names {
		for _, r := range pr.resolve(pr.funcs[name]).raises {
			if r.ref.kind != refObj || waited[r.ref.key] {
				continue
			}
			rep := token.NoPos
			switch {
			case pr.analyzedPos(r.prim):
				rep = r.prim
			case pr.analyzedPos(r.site):
				rep = r.site
			default:
				continue
			}
			m := best[r.ref.key]
			if m == nil {
				m = map[token.Pos]raiseSite{}
				best[r.ref.key] = m
			}
			if cur, ok := m[r.prim]; !ok || rep < cur.pos {
				m[r.prim] = raiseSite{pos: rep, verb: r.verb, name: r.ref.name}
			}
		}
	}

	var out []Finding
	var keys []string
	for key := range best {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		var prims []token.Pos
		for prim := range best[key] {
			prims = append(prims, prim)
		}
		sort.Slice(prims, func(i, j int) bool { return prims[i] < prims[j] })
		for _, prim := range prims {
			s := best[key][prim]
			out = append(out, pr.finding(s.pos, "flagwait",
				fmt.Sprintf("%s raises flag %q but no WaitFlag/Wait on %q exists anywhere in the program (unsynchronized transfer)",
					s.verb, s.name, s.name)))
		}
	}

	// The acknowledgement side stays package-scoped and uses direct
	// events only: an ack=true PUT needs an AckWait in its package.
	ackRaises := map[string][]token.Pos{} // unit path -> sites
	ackWaited := map[string]bool{}
	for _, name := range pr.names {
		fn := pr.funcs[name]
		if !fn.unit.Analyzed {
			continue
		}
		for _, a := range fn.sum.ackRaise {
			if a.ref.kind == refNone {
				ackRaises[fn.unit.Path] = append(ackRaises[fn.unit.Path], a.site)
			}
		}
		if len(fn.sum.ackWait) > 0 {
			ackWaited[fn.unit.Path] = true
		}
	}
	var paths []string
	for path := range ackRaises {
		if !ackWaited[path] {
			paths = append(paths, path)
		}
	}
	sort.Strings(paths)
	for _, path := range paths {
		sites := ackRaises[path]
		sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
		for _, pos := range sites {
			out = append(out, pr.finding(pos, "flagwait",
				"PUT with ack=true but no AckWait in this package (acknowledgements accumulate unconsumed)"))
		}
	}
	return out
}
