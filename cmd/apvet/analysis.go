package main

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"ap1000plus/cmd/apvet/internal/load"
)

// ---------------------------------------------------------------------------
// Polynomials over the cell count. Flag-balance arithmetic is linear
// in P = the machine's cell count: a raise executed once per
// iteration of a NumCells()-bounded loop contributes P increments,
// constant-bounded loops contribute constants, anything else is
// unknown.
// ---------------------------------------------------------------------------

// poly is c + p·P, or unknown.
type poly struct {
	c, p int64
	unk  bool
}

var unknownPoly = poly{unk: true}
var onePoly = poly{c: 1}

func constPoly(c int64) poly { return poly{c: c} }

func (a poly) known() bool { return !a.unk }
func (a poly) isOne() bool { return !a.unk && a.c == 1 && a.p == 0 }

func (a poly) add(b poly) poly {
	if a.unk || b.unk {
		return unknownPoly
	}
	return poly{c: a.c + b.c, p: a.p + b.p}
}

func (a poly) sub(b poly) poly {
	if a.unk || b.unk {
		return unknownPoly
	}
	return poly{c: a.c - b.c, p: a.p - b.p}
}

func (a poly) mul(b poly) poly {
	if a.unk || b.unk {
		return unknownPoly
	}
	// P² has no representation; one side must be constant.
	if a.p != 0 && b.p != 0 {
		return unknownPoly
	}
	if a.p != 0 {
		a, b = b, a
	}
	return poly{c: a.c * b.c, p: a.c * b.p}
}

func (a poly) neg() poly {
	if a.unk {
		return a
	}
	return poly{c: -a.c, p: -a.p}
}

// eval computes the value at a concrete cell count.
func (a poly) eval(cells int64) int64 { return a.c + a.p*cells }

func (a poly) String() string {
	if a.unk {
		return "unknown"
	}
	switch {
	case a.p == 0:
		return fmt.Sprintf("%d", a.c)
	case a.c == 0 && a.p == 1:
		return "P"
	case a.c == 0:
		return fmt.Sprintf("%d*P", a.p)
	case a.p == 1 && a.c < 0:
		return fmt.Sprintf("P-%d", -a.c)
	case a.p == 1:
		return fmt.Sprintf("P+%d", a.c)
	default:
		return fmt.Sprintf("%d*P%+d", a.p, a.c)
	}
}

// ---------------------------------------------------------------------------
// Flag references. Every flag argument resolves to one of: a concrete
// program object (local variable, package variable, struct field), a
// parameter of the enclosing function (substituted at call sites), a
// field of a core.Transfer-typed parameter, the implicit ack flag,
// the NoFlag sentinel, or unknown.
// ---------------------------------------------------------------------------

type refKind int

const (
	refNone          refKind = iota // NoFlag / absent: no event
	refObj                          // a concrete variable or field
	refParam                        // parameter #param of the enclosing function
	refTransferField                // field of a core.Transfer-typed parameter
	refAck                          // the implicit acknowledge flag
	refUnknown                      // unresolvable: poisons counting
)

type flagRef struct {
	kind  refKind
	key   string // canonical object key for refObj
	param int
	field string // SendFlag / RecvFlag / Ack for refTransferField
	name  string // display name for findings
}

// objKey canonicalizes an object across independently typechecked
// instances of the same package (a unit loaded with its test files
// and the same package imported as a dependency are distinct
// types.Package values): declaration position plus name.
func (pr *program) objKey(obj types.Object) string {
	pos := pr.fset.Position(obj.Pos())
	file := pos.Filename
	if abs, err := filepath.Abs(file); err == nil {
		file = abs
	}
	return fmt.Sprintf("%s:%d:%d/%s", file, pos.Line, pos.Column, obj.Name())
}

// ---------------------------------------------------------------------------
// Events and summaries.
// ---------------------------------------------------------------------------

// raiseEvent is one PUT/GET flag-increment site, multiplied by its
// enclosing loops.
type raiseEvent struct {
	ref  flagRef
	n    poly
	cond bool // under a conditional: count uncertain
	site token.Pos
	prim token.Pos
	verb string
}

// waitEvent is one WaitFlag/Flags.Wait site.
type waitEvent struct {
	ref    flagRef
	target poly
	cond   bool
	site   token.Pos
	prim   token.Pos
}

// ackEvent is one acknowledged PUT (raise) or AckWait. A raise with a
// refTransferField ref is conditional on the caller's Ack field.
type ackEvent struct {
	ref  flagRef
	site token.Pos
	prim token.Pos
}

// blockSite is one potentially blocking operation.
type blockSite struct {
	what string
	pos  token.Pos
}

// edge is a static call to another module function.
type edge struct {
	callee string // full name
	args   []ast.Expr
	pos    token.Pos
	mul    poly
	cond   bool
	inGo   bool
}

type summary struct {
	raises   []raiseEvent
	waits    []waitEvent
	ackRaise []ackEvent
	ackWait  []ackEvent
	// resets records Flags.Reset calls: a reset flag restarts its
	// count mid-phase, so flag-balance must not total across it.
	resets []raiseEvent
	// lossy marks a summary that dropped a raise it could not
	// attribute to an object; flag-balance must not trust counts
	// under a lossy root.
	lossy bool
}

// fnode is one function with a body in the loaded program.
type fnode struct {
	full string
	obj  *types.Func
	decl *ast.FuncDecl
	unit *load.Package

	paramIdx map[*types.Var]int

	// direct results of scanning the body.
	sum          *summary
	edges        []edge
	directBlocks []blockSite
	scanned      bool

	// defs maps single-assignment locals to their defining
	// expression; reassigned locals are excluded from chasing.
	defs       map[*types.Var]ast.Expr
	reassigned map[*types.Var]bool

	// resolved summary (callee summaries substituted in).
	resolved  *summary
	resolving bool

	// blockprop fixpoint state.
	blocks   *blockSite
	blockVia string // callee full name the block flows through ("" = direct)
}

// program is the analysis universe: every loaded unit plus the call
// graph over their function bodies.
type program struct {
	fset  *token.FileSet
	pkgs  []*load.Package
	funcs map[string]*fnode
	names []string // sorted fnode keys, for deterministic iteration

	// analyzedFiles maps position filenames of analyzed units to
	// their unit; findings outside are dropped.
	analyzedFiles map[string]*load.Package
}

func newProgram(res *load.Result) *program {
	pr := &program{
		fset:          res.Fset,
		pkgs:          res.Pkgs,
		funcs:         map[string]*fnode{},
		analyzedFiles: map[string]*load.Package{},
	}
	for _, u := range res.Pkgs {
		for _, f := range u.Files {
			if u.Analyzed {
				pr.analyzedFiles[pr.fset.Position(f.Package).Filename] = u
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := u.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				full := obj.FullName()
				if isModeledPrim(full) {
					continue
				}
				if old, ok := pr.funcs[full]; ok && old.unit.Analyzed && !u.Analyzed {
					continue // prefer the analyzed instance
				}
				pr.funcs[full] = &fnode{full: full, obj: obj, decl: fd, unit: u}
			}
		}
	}
	for name := range pr.funcs {
		pr.names = append(pr.names, name)
	}
	sort.Strings(pr.names)
	for _, name := range pr.names {
		pr.scan(pr.funcs[name])
	}
	pr.propagateBlocking()
	return pr
}

// analyzedPos reports whether a position lies in an analyzed unit.
func (pr *program) analyzedPos(pos token.Pos) bool {
	_, ok := pr.analyzedFiles[pr.fset.Position(pos).Filename]
	return ok
}

func (pr *program) unitOf(pos token.Pos) *load.Package {
	return pr.analyzedFiles[pr.fset.Position(pos).Filename]
}

// calleeOf resolves a call's static callee, or nil for indirect
// calls, builtins and conversions.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// exprText renders an expression as source text for display.
func (pr *program) exprText(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, pr.fset, e); err != nil {
		return "?"
	}
	return buf.String()
}

// ---------------------------------------------------------------------------
// Body scanning: one pass per function, collecting events, call
// edges and blocking sites with loop-multiplier/conditional context.
// Function literals are counted where they are written — the SPMD
// convention: a kernel literal handed to Machine.Run executes once
// per cell, which is exactly the per-cell frame the flag protocol is
// stated in.
// ---------------------------------------------------------------------------

type sctx struct {
	mul  poly
	cond bool
	inGo bool
}

func (pr *program) scan(fn *fnode) {
	if fn.scanned {
		return
	}
	fn.scanned = true
	fn.sum = &summary{}
	fn.paramIdx = map[*types.Var]int{}
	sig := fn.obj.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		fn.paramIdx[sig.Params().At(i)] = i
	}
	pr.collectLocals(fn)
	pr.walk(fn, fn.decl.Body, sctx{mul: onePoly})
}

// collectLocals records single-assignment local definitions for the
// light value chasing that evalPoly and flagRefOf perform.
func (pr *program) collectLocals(fn *fnode) {
	info := fn.unit.Info
	fn.defs = map[*types.Var]ast.Expr{}
	fn.reassigned = map[*types.Var]bool{}
	mark := func(lhs ast.Expr) {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if v, ok := info.ObjectOf(id).(*types.Var); ok {
				fn.reassigned[v] = true
			}
		}
	}
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if v.Tok == token.DEFINE && len(v.Lhs) == len(v.Rhs) {
				for i, lhs := range v.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if vr, ok := info.Defs[id].(*types.Var); ok {
							if _, dup := fn.defs[vr]; dup {
								fn.reassigned[vr] = true
							} else {
								fn.defs[vr] = v.Rhs[i]
							}
							continue
						}
					}
					mark(lhs)
				}
			} else {
				for _, lhs := range v.Lhs {
					mark(lhs)
				}
			}
		case *ast.IncDecStmt:
			mark(v.X)
		case *ast.RangeStmt:
			if v.Key != nil {
				mark(v.Key)
			}
			if v.Value != nil {
				mark(v.Value)
			}
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				mark(v.X)
			}
		}
		return true
	})
}

// walk traverses a subtree, dispatching control-flow constructs to
// context-adjusting handlers. Handlers never pass their own node back
// into walk, so each node is processed exactly once.
func (pr *program) walk(fn *fnode, root ast.Node, ctx sctx) {
	if root == nil {
		return
	}
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch v := n.(type) {
		case *ast.ForStmt:
			pr.walk(fn, v.Init, ctx)
			pr.walk(fn, v.Cond, ctx)
			pr.walk(fn, v.Post, ctx)
			trip := pr.tripCount(fn, v)
			pr.walk(fn, v.Body, sctx{mul: ctx.mul.mul(trip), cond: ctx.cond, inGo: ctx.inGo})
			return false
		case *ast.RangeStmt:
			pr.walk(fn, v.X, ctx)
			trip := unknownPoly
			if tv, ok := fn.unit.Info.Types[v.X]; ok && tv.Type != nil {
				if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
					trip = pr.evalPoly(fn, v.X, 0)
				}
			}
			pr.walk(fn, v.Body, sctx{mul: ctx.mul.mul(trip), cond: ctx.cond, inGo: ctx.inGo})
			return false
		case *ast.IfStmt:
			pr.walk(fn, v.Init, ctx)
			pr.walk(fn, v.Cond, ctx)
			inner := sctx{mul: ctx.mul, cond: true, inGo: ctx.inGo}
			pr.walk(fn, v.Body, inner)
			pr.walk(fn, v.Else, inner)
			return false
		case *ast.SwitchStmt:
			pr.walk(fn, v.Init, ctx)
			pr.walk(fn, v.Tag, ctx)
			pr.walk(fn, v.Body, sctx{mul: ctx.mul, cond: true, inGo: ctx.inGo})
			return false
		case *ast.TypeSwitchStmt:
			pr.walk(fn, v.Init, ctx)
			pr.walk(fn, v.Assign, ctx)
			pr.walk(fn, v.Body, sctx{mul: ctx.mul, cond: true, inGo: ctx.inGo})
			return false
		case *ast.SelectStmt:
			pr.walk(fn, v.Body, sctx{mul: ctx.mul, cond: true, inGo: ctx.inGo})
			return false
		case *ast.GoStmt:
			pr.walkCall(fn, v.Call, sctx{mul: ctx.mul, cond: ctx.cond, inGo: true})
			return false
		case *ast.CallExpr:
			pr.walkCall(fn, v, ctx)
			return false
		case *ast.UnaryExpr:
			if v.Op == token.ARROW && !ctx.inGo {
				fn.directBlocks = append(fn.directBlocks, blockSite{what: "channel receive", pos: v.Pos()})
			}
			return true
		}
		return true
	})
}

// walkCall classifies one call — primitive events, a call-graph edge,
// a blocking site, or nothing — then descends into the callee
// expression and the arguments (which may hold calls and literals of
// their own).
func (pr *program) walkCall(fn *fnode, call *ast.CallExpr, ctx sctx) {
	info := fn.unit.Info
	if callee := calleeOf(info, call); callee != nil {
		full := callee.FullName()
		pr.primEvents(fn, call, full, ctx)
		what, blocking := blockingPrims[full]
		if blocking && !ctx.inGo {
			fn.directBlocks = append(fn.directBlocks, blockSite{what: what, pos: call.Pos()})
		}
		if !isModeledPrim(full) && !blocking {
			if _, isNode := pr.funcs[full]; isNode {
				fn.edges = append(fn.edges, edge{
					callee: full, args: call.Args, pos: call.Pos(),
					mul: ctx.mul, cond: ctx.cond, inGo: ctx.inGo,
				})
			}
		}
	}
	pr.walk(fn, call.Fun, ctx)
	for _, arg := range call.Args {
		pr.walk(fn, arg, ctx)
	}
}

// primEvents emits the flag events of a modeled primitive call.
func (pr *program) primEvents(fn *fnode, call *ast.CallExpr, full string, ctx sctx) {
	sum := fn.sum
	switch {
	case transferPrims[full] != "":
		if len(call.Args) == 0 {
			return
		}
		pr.transferEvents(fn, call.Args[0], call.Pos(), transferPrims[full], ctx)
	case waitPrims[full]:
		if len(call.Args) < 2 {
			return
		}
		ref := pr.flagRefOf(fn, call.Args[0])
		target := pr.evalPoly(fn, call.Args[1], 0)
		if !ctx.mul.isOne() {
			// A wait inside a loop re-tests a moving threshold; the
			// static balance cannot capture that.
			target = unknownPoly
		}
		switch ref.kind {
		case refNone:
		case refAck:
			sum.ackWait = append(sum.ackWait, ackEvent{site: call.Pos(), prim: call.Pos()})
		default:
			sum.waits = append(sum.waits, waitEvent{ref: ref, target: target, cond: ctx.cond, site: call.Pos(), prim: call.Pos()})
		}
	case ackWaitPrims[full]:
		sum.ackWait = append(sum.ackWait, ackEvent{site: call.Pos(), prim: call.Pos()})
	case ackRaisePrims[full]:
		sum.ackRaise = append(sum.ackRaise, ackEvent{site: call.Pos(), prim: call.Pos()})
	case full == flagResetPrim:
		if len(call.Args) < 1 {
			return
		}
		ref := pr.flagRefOf(fn, call.Args[0])
		switch ref.kind {
		case refNone, refAck:
		case refUnknown:
			sum.lossy = true
		default:
			sum.resets = append(sum.resets, raiseEvent{ref: ref, n: ctx.mul, cond: ctx.cond, site: call.Pos(), prim: call.Pos(), verb: "Reset"})
		}
	default:
		if shape, ok := positionalPrims[full]; ok {
			for _, i := range shape.flags {
				if i >= len(call.Args) {
					continue
				}
				pr.raise(fn, pr.flagRefOf(fn, call.Args[i]), call.Pos(), call.Pos(), shape.verb, ctx)
			}
			if shape.ack >= 0 && shape.ack < len(call.Args) {
				if pr.constBool(fn, call.Args[shape.ack]) == trueConst {
					sum.ackRaise = append(sum.ackRaise, ackEvent{site: call.Pos(), prim: call.Pos()})
				}
			}
		}
	}
}

// raise appends one raise event, tracking lossiness for unknowns.
func (pr *program) raise(fn *fnode, ref flagRef, site, prim token.Pos, verb string, ctx sctx) {
	switch ref.kind {
	case refNone, refAck:
		return
	case refUnknown:
		fn.sum.lossy = true
		return
	}
	fn.sum.raises = append(fn.sum.raises, raiseEvent{ref: ref, n: ctx.mul, cond: ctx.cond, site: site, prim: prim, verb: verb})
}

// transferEvents emits the events of a Transfer-struct primitive.
func (pr *program) transferEvents(fn *fnode, arg ast.Expr, pos token.Pos, verb string, ctx sctx) {
	sum := fn.sum
	lit, param := pr.transferValOf(fn, arg)
	switch {
	case lit != nil:
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			switch key.Name {
			case "SendFlag", "RecvFlag":
				pr.raise(fn, pr.flagRefOf(fn, kv.Value), pos, pos, verb, ctx)
			case "Ack":
				if pr.constBool(fn, kv.Value) == trueConst {
					sum.ackRaise = append(sum.ackRaise, ackEvent{site: pos, prim: pos})
				}
			}
		}
	case param >= 0:
		for _, f := range []string{"SendFlag", "RecvFlag"} {
			sum.raises = append(sum.raises, raiseEvent{
				ref: flagRef{kind: refTransferField, param: param, field: f, name: "t." + f},
				n:   ctx.mul, cond: ctx.cond, site: pos, prim: pos, verb: verb,
			})
		}
		sum.ackRaise = append(sum.ackRaise, ackEvent{
			ref: flagRef{kind: refTransferField, param: param, field: "Ack"}, site: pos, prim: pos,
		})
	default:
		// A transfer we cannot see into may raise anything.
		sum.lossy = true
	}
}

// transferValOf resolves an expression of type core.Transfer to a
// composite literal or a parameter index (-1 if neither).
func (pr *program) transferValOf(fn *fnode, e ast.Expr) (*ast.CompositeLit, int) {
	e = ast.Unparen(e)
	switch v := e.(type) {
	case *ast.CompositeLit:
		return v, -1
	case *ast.Ident:
		if vr, ok := fn.unit.Info.ObjectOf(v).(*types.Var); ok {
			if i, ok := fn.paramIdx[vr]; ok {
				return nil, i
			}
			if def, ok := fn.defs[vr]; ok && !fn.reassigned[vr] {
				if lit, ok := ast.Unparen(def).(*ast.CompositeLit); ok {
					return lit, -1
				}
			}
		}
	}
	return nil, -1
}

type triBool int

const (
	unknownConst triBool = iota
	trueConst
	falseConst
)

// constBool evaluates a boolean expression, chasing single-assignment
// locals.
func (pr *program) constBool(fn *fnode, e ast.Expr) triBool {
	e = ast.Unparen(e)
	if tv, ok := fn.unit.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.Bool {
		if constant.BoolVal(tv.Value) {
			return trueConst
		}
		return falseConst
	}
	if id, ok := e.(*ast.Ident); ok {
		if vr, ok := fn.unit.Info.ObjectOf(id).(*types.Var); ok {
			if def, ok := fn.defs[vr]; ok && !fn.reassigned[vr] {
				return pr.constBool(fn, def)
			}
		}
	}
	return unknownConst
}

// isTransferType reports whether t (possibly behind a pointer) is
// core.Transfer.
func isTransferType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Transfer" && obj.Pkg() != nil && obj.Pkg().Path() == corePkg
}

// flagRefOf resolves a flag argument to its identity.
func (pr *program) flagRefOf(fn *fnode, e ast.Expr) flagRef {
	e = ast.Unparen(e)
	info := fn.unit.Info
	// Constants first: NoFlag (0), AckFlagID (-1); anything else
	// hard-coded is untrackable.
	if tv, ok := info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		if v, ok := constant.Int64Val(tv.Value); ok {
			switch v {
			case 0:
				return flagRef{kind: refNone}
			case -1:
				return flagRef{kind: refAck}
			}
		}
		return flagRef{kind: refUnknown}
	}
	switch v := e.(type) {
	case *ast.CallExpr:
		// A conversion like mc.FlagID(x) passes through; a true call
		// (Flags.Alloc() used inline) is untrackable.
		if tv, ok := info.Types[v.Fun]; ok && tv.IsType() && len(v.Args) == 1 {
			return pr.flagRefOf(fn, v.Args[0])
		}
		return flagRef{kind: refUnknown}
	case *ast.Ident:
		if vr, ok := info.ObjectOf(v).(*types.Var); ok {
			if i, ok := fn.paramIdx[vr]; ok {
				return flagRef{kind: refParam, param: i, name: v.Name}
			}
			if def, ok := fn.defs[vr]; ok && !fn.reassigned[vr] {
				switch r := pr.flagRefOf(fn, def); r.kind {
				case refObj, refParam, refTransferField, refNone, refAck:
					return r
				}
			}
			return flagRef{kind: refObj, key: pr.objKey(vr), name: v.Name}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[v]; ok && sel.Kind() == types.FieldVal {
			if isTransferType(sel.Recv()) {
				// A core.Transfer field read forwards someone else's
				// flag rather than raising a new one — unless the
				// transfer value is resolvable right here.
				lit, param := pr.transferValOf(fn, v.X)
				switch {
				case lit != nil:
					for _, el := range lit.Elts {
						if kv, ok := el.(*ast.KeyValueExpr); ok {
							if key, ok := kv.Key.(*ast.Ident); ok && key.Name == v.Sel.Name {
								return pr.flagRefOf(fn, kv.Value)
							}
						}
					}
					return flagRef{kind: refNone} // absent field: zero value
				case param >= 0:
					return flagRef{kind: refTransferField, param: param, field: v.Sel.Name, name: pr.exprText(v)}
				default:
					return flagRef{kind: refNone} // genuine forward
				}
			}
			return flagRef{kind: refObj, key: pr.objKey(sel.Obj()), name: pr.exprText(v)}
		}
		// Package-qualified variable (pkg.SomeFlag).
		if vr, ok := info.Uses[v.Sel].(*types.Var); ok {
			return flagRef{kind: refObj, key: pr.objKey(vr), name: pr.exprText(v)}
		}
	}
	return flagRef{kind: refUnknown}
}

// ---------------------------------------------------------------------------
// evalPoly: linear arithmetic over constants and the cell count.
// ---------------------------------------------------------------------------

func (pr *program) evalPoly(fn *fnode, e ast.Expr, depth int) poly {
	if depth > 10 || e == nil {
		return unknownPoly
	}
	e = ast.Unparen(e)
	info := fn.unit.Info
	if tv, ok := info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		if v, ok := constant.Int64Val(tv.Value); ok {
			return constPoly(v)
		}
		return unknownPoly
	}
	switch v := e.(type) {
	case *ast.CallExpr:
		if tv, ok := info.Types[v.Fun]; ok && tv.IsType() && len(v.Args) == 1 {
			// Integer conversion: int64(x).
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
				return pr.evalPoly(fn, v.Args[0], depth+1)
			}
			return unknownPoly
		}
		if callee := calleeOf(info, v); callee != nil && cellCountPrims[callee.FullName()] {
			return poly{p: 1}
		}
		return unknownPoly
	case *ast.Ident:
		if vr, ok := info.ObjectOf(v).(*types.Var); ok {
			if def, ok := fn.defs[vr]; ok && !fn.reassigned[vr] {
				return pr.evalPoly(fn, def, depth+1)
			}
		}
		return unknownPoly
	case *ast.BinaryExpr:
		a := pr.evalPoly(fn, v.X, depth+1)
		b := pr.evalPoly(fn, v.Y, depth+1)
		switch v.Op {
		case token.ADD:
			return a.add(b)
		case token.SUB:
			return a.sub(b)
		case token.MUL:
			return a.mul(b)
		}
		return unknownPoly
	case *ast.UnaryExpr:
		if v.Op == token.SUB {
			return pr.evalPoly(fn, v.X, depth+1).neg()
		}
	}
	return unknownPoly
}

// tripCount recognizes `for i := a; i < b; i++` (and <=) with linear
// bounds.
func (pr *program) tripCount(fn *fnode, v *ast.ForStmt) poly {
	init, ok := v.Init.(*ast.AssignStmt)
	if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
		return unknownPoly
	}
	iv, ok := init.Lhs[0].(*ast.Ident)
	if !ok {
		return unknownPoly
	}
	cond, ok := v.Cond.(*ast.BinaryExpr)
	if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) {
		return unknownPoly
	}
	cv, ok := ast.Unparen(cond.X).(*ast.Ident)
	if !ok || cv.Name != iv.Name {
		return unknownPoly
	}
	post, ok := v.Post.(*ast.IncDecStmt)
	if !ok || post.Tok != token.INC {
		return unknownPoly
	}
	pv, ok := ast.Unparen(post.X).(*ast.Ident)
	if !ok || pv.Name != iv.Name {
		return unknownPoly
	}
	a := pr.evalPoly(fn, init.Rhs[0], 0)
	b := pr.evalPoly(fn, cond.Y, 0)
	trip := b.sub(a)
	if cond.Op == token.LEQ {
		trip = trip.add(onePoly)
	}
	if trip.known() && trip.p == 0 && trip.c <= 0 {
		return unknownPoly
	}
	return trip
}

// ---------------------------------------------------------------------------
// Resolution: substitute callee summaries into callers.
// ---------------------------------------------------------------------------

func (pr *program) resolve(fn *fnode) *summary {
	if fn.resolved != nil {
		return fn.resolved
	}
	if fn.resolving {
		return fn.sum // recursion: direct events only
	}
	fn.resolving = true
	out := &summary{lossy: fn.sum.lossy}
	out.raises = append(out.raises, fn.sum.raises...)
	out.waits = append(out.waits, fn.sum.waits...)
	out.ackRaise = append(out.ackRaise, fn.sum.ackRaise...)
	out.ackWait = append(out.ackWait, fn.sum.ackWait...)
	out.resets = append(out.resets, fn.sum.resets...)
	for _, e := range fn.edges {
		callee, ok := pr.funcs[e.callee]
		if !ok {
			continue
		}
		cs := pr.resolve(callee)
		if cs.lossy {
			out.lossy = true
		}
		for _, r := range cs.raises {
			ref := pr.substRef(fn, e, r.ref)
			switch ref.kind {
			case refNone, refAck:
				continue
			case refUnknown:
				out.lossy = true
				continue
			}
			out.raises = append(out.raises, raiseEvent{
				ref: ref, n: r.n.mul(e.mul), cond: r.cond || e.cond,
				site: e.pos, prim: r.prim, verb: r.verb,
			})
		}
		for _, w := range cs.waits {
			ref := pr.substRef(fn, e, w.ref)
			switch ref.kind {
			case refNone, refUnknown:
				continue
			case refAck:
				out.ackWait = append(out.ackWait, ackEvent{site: e.pos, prim: w.prim})
				continue
			}
			target := w.target
			if !e.mul.isOne() {
				target = unknownPoly
			}
			out.waits = append(out.waits, waitEvent{ref: ref, target: target, cond: w.cond || e.cond, site: e.pos, prim: w.prim})
		}
		for _, a := range cs.ackRaise {
			switch a.ref.kind {
			case refNone:
				out.ackRaise = append(out.ackRaise, ackEvent{site: e.pos, prim: a.prim})
			case refTransferField:
				if a.ref.param < len(e.args) {
					if pr.transferFieldBool(fn, e.args[a.ref.param], "Ack") == trueConst {
						out.ackRaise = append(out.ackRaise, ackEvent{site: e.pos, prim: a.prim})
					}
				}
			}
		}
		for _, a := range cs.ackWait {
			out.ackWait = append(out.ackWait, ackEvent{site: e.pos, prim: a.prim})
		}
		for _, r := range cs.resets {
			ref := pr.substRef(fn, e, r.ref)
			switch ref.kind {
			case refNone, refAck:
				continue
			case refUnknown:
				out.lossy = true
				continue
			}
			out.resets = append(out.resets, raiseEvent{ref: ref, n: r.n.mul(e.mul), cond: r.cond || e.cond, site: e.pos, prim: r.prim, verb: "Reset"})
		}
	}
	fn.resolving = false
	fn.resolved = out
	return out
}

// substRef maps a callee-level flag reference to the caller's frame.
func (pr *program) substRef(fn *fnode, e edge, ref flagRef) flagRef {
	switch ref.kind {
	case refObj, refAck, refNone, refUnknown:
		return ref
	case refParam:
		if ref.param >= len(e.args) {
			return flagRef{kind: refUnknown}
		}
		return pr.flagRefOf(fn, e.args[ref.param])
	case refTransferField:
		if ref.param >= len(e.args) {
			return flagRef{kind: refUnknown}
		}
		lit, param := pr.transferValOf(fn, e.args[ref.param])
		switch {
		case lit != nil:
			for _, el := range lit.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if key, ok := kv.Key.(*ast.Ident); ok && key.Name == ref.field {
						return pr.flagRefOf(fn, kv.Value)
					}
				}
			}
			return flagRef{kind: refNone} // absent field: zero value
		case param >= 0:
			return flagRef{kind: refTransferField, param: param, field: ref.field, name: ref.name}
		default:
			return flagRef{kind: refUnknown}
		}
	}
	return flagRef{kind: refUnknown}
}

// transferFieldBool reads a boolean field out of a Transfer argument.
func (pr *program) transferFieldBool(fn *fnode, arg ast.Expr, field string) triBool {
	lit, _ := pr.transferValOf(fn, arg)
	if lit == nil {
		return unknownConst
	}
	for _, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == field {
				return pr.constBool(fn, kv.Value)
			}
		}
	}
	return falseConst
}

// ---------------------------------------------------------------------------
// May-block propagation (blockprop): a function blocks if it performs
// a blocking primitive or synchronously calls one that does.
// ---------------------------------------------------------------------------

func (pr *program) propagateBlocking() {
	for _, name := range pr.names {
		fn := pr.funcs[name]
		if len(fn.directBlocks) > 0 {
			first := fn.directBlocks[0]
			for _, b := range fn.directBlocks[1:] {
				if b.pos < first.pos {
					first = b
				}
			}
			fn.blocks = &first
		}
	}
	for changed := true; changed; {
		changed = false
		for _, name := range pr.names {
			fn := pr.funcs[name]
			if fn.blocks != nil {
				continue
			}
			for _, e := range fn.edges {
				if e.inGo {
					continue
				}
				callee, ok := pr.funcs[e.callee]
				if !ok || callee.blocks == nil {
					continue
				}
				fn.blocks = &blockSite{what: callee.blocks.what, pos: e.pos}
				fn.blockVia = e.callee
				changed = true
				break
			}
		}
	}
}

// blockChain renders the call chain from a function down to the
// blocking primitive, e.g. "drainAll → helperWait → Flags.Wait".
func (pr *program) blockChain(name string) string {
	var parts []string
	seen := map[string]bool{}
	for name != "" && !seen[name] {
		seen[name] = true
		fn, ok := pr.funcs[name]
		if !ok || fn.blocks == nil {
			break
		}
		parts = append(parts, shortFuncName(name))
		if fn.blockVia == "" {
			parts = append(parts, fn.blocks.what)
			break
		}
		name = fn.blockVia
	}
	return strings.Join(parts, " → ")
}

// shortFuncName strips package paths from a full function name:
// "(*ap1000plus/internal/mc.Flags).Wait" → "Flags.Wait",
// "ap1000plus/internal/vpp.helper" → "helper".
func shortFuncName(full string) string {
	if strings.HasPrefix(full, "(") {
		inner := strings.TrimPrefix(strings.TrimPrefix(full, "("), "*")
		if closeIdx := strings.Index(inner, ")"); closeIdx >= 0 {
			recv, method := inner[:closeIdx], inner[closeIdx+1:]
			if i := strings.LastIndex(recv, "."); i >= 0 {
				recv = recv[i+1:]
			}
			return recv + method
		}
	}
	if i := strings.LastIndex(full, "/"); i >= 0 {
		full = full[i+1:]
	}
	if i := strings.Index(full, "."); i >= 0 {
		return full[i+1:]
	}
	return full
}

// hasDirSuffix reports whether a unit's directory ends with the given
// slash-separated path.
func hasDirSuffix(u *load.Package, suffix string) bool {
	return u.Dir == suffix || strings.HasSuffix(u.Dir, "/"+suffix)
}
