package main

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"sort"
	"strings"
)

// hasDirSuffix reports whether the package directory ends with the
// given slash-separated path (e.g. "internal/mem").
func hasDirSuffix(p *pkg, suffix string) bool {
	return p.dir == suffix || strings.HasSuffix(p.dir, "/"+suffix)
}

// calleeName returns the bare name of a call's callee: "Copy" for
// mem.Copy(...), "Wait" for c.Flags.Wait(...), "f" for f(...).
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// calleeReceiver returns the textual receiver of a selector call:
// "mem" for mem.Copy(...), "" for plain calls. Only the innermost
// identifier matters for our package-qualified patterns.
func calleeReceiver(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// argName returns the identifier behind a flag/ack argument:
// "readyFlag" for both readyFlag and k.readyFlag, "" for anything
// that is not a plain name.
func argName(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return v.Sel.Name
	}
	return ""
}

// isNoFlag reports whether a flag argument is the "no flag" sentinel:
// the literal 0, or any identifier/selector named NoFlag.
func isNoFlag(e ast.Expr) bool {
	if lit, ok := e.(*ast.BasicLit); ok {
		return lit.Kind == token.INT && lit.Value == "0"
	}
	return argName(e) == "NoFlag"
}

// ---------------------------------------------------------------------------
// rawmem: simulated DRAM may only be touched by the machine's own
// DMA/delivery engines. Application code going through mem.Copy,
// mem.CopyStride, mem.CapturePayload or Payload.Deliver bypasses the
// MSC+ command queues — and with them the sanitizer, the timing model
// and the trace — so the write is invisible to every tool downstream.
// ---------------------------------------------------------------------------

var rawMemAllow = []string{
	"internal/mem",      // defines the primitives
	"internal/machine",  // the MSC+/MC engines themselves
	"internal/dsm",      // page-transfer engine
	"internal/sendrecv", // message-buffer delivery engine
}

func checkRawMem(p *pkg) []Finding {
	for _, dir := range rawMemAllow {
		if hasDirSuffix(p, dir) {
			return nil
		}
	}
	var out []Finding
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			switch {
			case calleeReceiver(call) == "mem" &&
				(name == "Copy" || name == "CopyStride" || name == "CapturePayload"):
			case name == "Deliver":
			default:
				return true
			}
			out = append(out, Finding{
				Pos:   p.fset.Position(call.Pos()),
				Check: "rawmem",
				Msg: fmt.Sprintf("mem.%s bypasses the MSC+ command queues; issue a PUT/GET/SEND instead",
					name),
			})
			return true
		})
	}
	return out
}

// ---------------------------------------------------------------------------
// flagwait: a PUT/GET flag that nobody ever waits on is a silent
// race — the paper's whole synchronization story is "flag rises when
// the DMA completes, reader waits on the flag". The check is
// package-scoped and name-based: every non-NoFlag flag identifier
// passed to Put/PutStride/Get/GetStride must appear in some
// WaitFlag/Wait call in the same package, and any ack=true PUT needs
// an AckWait somewhere in the package.
// ---------------------------------------------------------------------------

// putGetShape describes where the flag and ack arguments sit for the
// positional Comm methods (PutStride/GetStride, and the deprecated
// PutArgs/GetArgs wrappers of the old positional Put/Get). The modern
// Put/Get — and the CommandList appenders — take a Transfer struct
// instead; their flags are read out of the composite literal.
var putGetShape = map[string]struct {
	nargs int
	flags []int
	ack   int // -1 if the method takes no ack argument
}{
	"PutArgs":   {7, []int{4, 5}, 6},
	"PutStride": {8, []int{3, 4}, 5},
	"GetArgs":   {6, []int{4, 5}, -1},
	"GetStride": {7, []int{3, 4}, -1},
}

// transferMethods take a Transfer struct as their first argument:
// Comm.Put/Get and the CommandList appenders (whose stride variants
// carry the patterns positionally after the Transfer).
var transferMethods = map[string]bool{
	"Put": true, "Get": true, "PutStride": true, "GetStride": true,
}

// transferArg returns the Transfer composite literal passed as a
// call's first argument, or nil.
func transferArg(call *ast.CallExpr) *ast.CompositeLit {
	if len(call.Args) == 0 {
		return nil
	}
	lit, ok := call.Args[0].(*ast.CompositeLit)
	if !ok {
		return nil
	}
	switch t := lit.Type.(type) {
	case *ast.Ident:
		if t.Name == "Transfer" {
			return lit
		}
	case *ast.SelectorExpr:
		if t.Sel.Name == "Transfer" {
			return lit
		}
	}
	return nil
}

func checkFlagWait(p *pkg) []Finding {
	// internal/core implements the interface; its flag arguments are
	// forwarded, not consumed.
	if hasDirSuffix(p, "internal/core") {
		return nil
	}
	type use struct {
		pos  token.Pos
		verb string
	}
	flagUses := map[string][]use{} // flag identifier -> where it's set by a Put/Get
	waited := map[string]bool{}    // flag identifiers that appear in a wait
	var ackUses []token.Pos
	ackWaited := false

	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			if transferMethods[name] {
				if lit := transferArg(call); lit != nil {
					for _, el := range lit.Elts {
						kv, ok := el.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						key, ok := kv.Key.(*ast.Ident)
						if !ok {
							continue
						}
						switch key.Name {
						case "SendFlag", "RecvFlag":
							if isNoFlag(kv.Value) {
								continue
							}
							if id := argName(kv.Value); id != "" {
								flagUses[id] = append(flagUses[id], use{call.Pos(), name})
							}
						case "Ack":
							if id, ok := kv.Value.(*ast.Ident); ok && id.Name == "true" {
								ackUses = append(ackUses, call.Pos())
							}
						}
					}
					return true
				}
			}
			if shape, ok := putGetShape[name]; ok && len(call.Args) == shape.nargs {
				for _, i := range shape.flags {
					if isNoFlag(call.Args[i]) {
						continue
					}
					// t.SendFlag / t.RecvFlag is a Transfer field being
					// forwarded to a positional method, not a flag this
					// package raises.
					if sel, ok := call.Args[i].(*ast.SelectorExpr); ok &&
						(sel.Sel.Name == "SendFlag" || sel.Sel.Name == "RecvFlag") {
						continue
					}
					if id := argName(call.Args[i]); id != "" {
						flagUses[id] = append(flagUses[id], use{call.Pos(), name})
					}
				}
				if shape.ack >= 0 {
					if id, ok := call.Args[shape.ack].(*ast.Ident); ok && id.Name == "true" {
						ackUses = append(ackUses, call.Pos())
					}
				}
				return true
			}
			switch name {
			case "WaitFlag", "Wait":
				if len(call.Args) >= 1 {
					if id := argName(call.Args[0]); id != "" {
						waited[id] = true
					}
				}
			case "AckWait":
				ackWaited = true
			}
			return true
		})
	}

	var out []Finding
	var names []string
	for id := range flagUses {
		if !waited[id] {
			names = append(names, id)
		}
	}
	sort.Strings(names)
	for _, id := range names {
		for _, u := range flagUses[id] {
			out = append(out, Finding{
				Pos:   p.fset.Position(u.pos),
				Check: "flagwait",
				Msg: fmt.Sprintf("%s raises flag %q but no WaitFlag/Wait on %q exists in this package (unsynchronized transfer)",
					u.verb, id, id),
			})
		}
	}
	if !ackWaited {
		for _, pos := range ackUses {
			out = append(out, Finding{
				Pos:   p.fset.Position(pos),
				Check: "flagwait",
				Msg:   "PUT with ack=true but no AckWait in this package (acknowledgements accumulate unconsumed)",
			})
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// handlerblock: T-net delivery is synchronous — tnet.Send runs the
// destination cell's receive handler on the *sender's* controller
// goroutine. A handler that blocks (flag wait, p-bit creg load,
// barrier, channel receive) therefore stalls a foreign controller and
// can deadlock the whole machine. Handlers must only post work:
// stores, flag increments, queue pushes and channel sends are fine.
// ---------------------------------------------------------------------------

var handlerDirs = []string{
	"internal/machine", "internal/sendrecv", "internal/tnet", "internal/bnet",
}

// handlerNames are the functions that execute on a controller
// goroutine during delivery.
var handlerNames = map[string]bool{
	"receive": true, "receiveBroadcast": true, "sink": true,
	"deliver": true, "deliverCreg": true, "completeLoad": true,
	"process": true, "sendData": true, "reply": true, "loadReply": true,
}

// blockingCalls can sleep waiting for another goroutine's progress.
// Load32/Load64 are the p-bit blocking creg reads (TryLoad32 and the
// stores are fine); Consume is the blocking message-buffer read.
var blockingCalls = map[string]bool{
	"Wait": true, "WaitFlag": true,
	"Load32": true, "Load64": true, "LoadCreg32": true, "LoadCreg64": true,
	"Recv": true, "RecvAny": true, "RecvBroadcast": true, "Consume": true,
	"RemoteLoad": true, "AckWait": true,
	"Arrive": true, "HWBarrier": true, "Barrier": true,
}

func checkHandlerBlock(p *pkg) []Finding {
	inScope := false
	for _, dir := range handlerDirs {
		if hasDirSuffix(p, dir) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	var out []Finding
	for _, f := range p.files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !handlerNames[fn.Name.Name] {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.GoStmt:
					// Work handed to a fresh goroutine may block.
					return false
				case *ast.UnaryExpr:
					if v.Op == token.ARROW {
						out = append(out, Finding{
							Pos:   p.fset.Position(v.Pos()),
							Check: "handlerblock",
							Msg: fmt.Sprintf("channel receive inside handler %s (runs on a foreign controller goroutine; must not block)",
								fn.Name.Name),
						})
					}
				case *ast.CallExpr:
					if name := calleeName(v); blockingCalls[name] {
						out = append(out, Finding{
							Pos:   p.fset.Position(v.Pos()),
							Check: "handlerblock",
							Msg: fmt.Sprintf("blocking call %s inside handler %s (runs on a foreign controller goroutine; post work instead)",
								name, fn.Name.Name),
						})
					}
				}
				return true
			})
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// units: event.Time is integer nanoseconds; the machine parameter
// files (internal/params) are float64 microseconds, as in the paper's
// tables. A direct event.Time(x) conversion of a float loses the
// thousandfold scale silently. The sanctioned conversion is
// event.Microseconds. The check is syntactic: a conversion whose
// argument mentions a float literal or a known float64 Params/Features
// field is flagged; integer expressions (literals, len, int counters)
// pass.
// ---------------------------------------------------------------------------

// paramFloatFields collects the float64 field names of every struct
// type named Params or Features in the parsed set, so the units check
// needs no type information.
func paramFloatFields(pkgs []*pkg) map[string]bool {
	fields := map[string]bool{}
	for _, p := range pkgs {
		for _, f := range p.files {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok || (ts.Name.Name != "Params" && ts.Name.Name != "Features") {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				for _, fld := range st.Fields.List {
					if id, ok := fld.Type.(*ast.Ident); !ok || id.Name != "float64" {
						continue
					}
					for _, name := range fld.Names {
						fields[name.Name] = true
					}
				}
				return true
			})
		}
	}
	return fields
}

func checkUnits(p *pkg, floats map[string]bool) []Finding {
	var out []Finding
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Time" {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "event" {
				return true
			}
			if why := floatEvidence(call.Args[0], floats); why != "" {
				out = append(out, Finding{
					Pos:   p.fset.Position(call.Pos()),
					Check: "units",
					Msg: fmt.Sprintf("event.Time(...) of %s mixes microsecond parameters into nanosecond time; use event.Microseconds",
						why),
				})
			}
			return true
		})
	}
	return out
}

// ---------------------------------------------------------------------------
// batchissue: the positional PutArgs/GetArgs wrappers exist only to
// ease migration — new code states its transfer as a Transfer struct
// (or stages it on a CommandList). And a CommandList that is opened
// with Batch() but never Commit()ed issues nothing: the staged
// commands silently evaporate. Like flagwait, the Commit search is
// package-scoped, so helpers that open in one function and commit in
// another stay clean.
// ---------------------------------------------------------------------------

func checkBatchIssue(p *pkg) []Finding {
	// internal/core defines the API, including the deprecated wrappers.
	if hasDirSuffix(p, "internal/core") {
		return nil
	}
	var out []Finding
	var batchPos []token.Pos
	committed := false
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch name := calleeName(call); name {
			case "PutArgs", "GetArgs":
				out = append(out, Finding{
					Pos:   p.fset.Position(call.Pos()),
					Check: "batchissue",
					Msg: fmt.Sprintf("deprecated positional %s; pass a Transfer to %s or stage it on a CommandList",
						name, strings.TrimSuffix(name, "Args")),
				})
			case "Batch":
				batchPos = append(batchPos, call.Pos())
			case "Commit":
				committed = true
			}
			return true
		})
	}
	if !committed {
		for _, pos := range batchPos {
			out = append(out, Finding{
				Pos:   p.fset.Position(pos),
				Check: "batchissue",
				Msg:   "Batch() without a Commit in this package (staged commands are never issued)",
			})
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// dsmfence: a DSM remote store is non-blocking — it is acknowledged
// (and its cache invalidations applied) only once Fence returns. A
// Store to a shared address followed by a Load of the same address
// with no Fence in between reads whatever happened to arrive first.
// The check is file-scoped and shape-based: only files importing the
// dsm package (or the facade) are examined, and the store/load pair
// must match the DSM API arity — Store(ga, laddr, size)/StoreF64(ga,
// v) against Load(ga, size)/LoadF64(ga) on the same receiver with the
// same first-argument expression, statement order, reset by Fence.
// ---------------------------------------------------------------------------

// importsDSM reports whether a file imports the dsm package or the
// module facade that re-exports it.
func importsDSM(f *ast.File) bool {
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if path == "ap1000plus" || path == "dsm" || strings.HasSuffix(path, "/dsm") {
			return true
		}
	}
	return false
}

// dsmStoreShape / dsmLoadShape map DSM method names to their argument
// counts, so a sync.Map's Store(k, v) or an atomic's Load() never
// matches.
var dsmStoreShape = map[string]int{"Store": 3, "StoreF64": 2}
var dsmLoadShape = map[string]int{"Load": 2, "LoadF64": 1}

// exprText renders an expression as source text for the textual
// same-address comparison.
func exprText(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}

func checkDSMFence(p *pkg) []Finding {
	// internal/dsm defines the API (and its own Store/Load bodies).
	if hasDirSuffix(p, "internal/dsm") {
		return nil
	}
	var out []Finding
	for _, f := range p.files {
		if !importsDSM(f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			// pending[receiver][address-expression] = position of the
			// unfenced store.
			pending := map[string]map[string]token.Pos{}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				name := sel.Sel.Name
				recv := exprText(p.fset, sel.X)
				storeArity, isStore := dsmStoreShape[name]
				loadArity, isLoad := dsmLoadShape[name]
				switch {
				case isStore && storeArity == len(call.Args):
					addr := exprText(p.fset, call.Args[0])
					if pending[recv] == nil {
						pending[recv] = map[string]token.Pos{}
					}
					pending[recv][addr] = call.Pos()
				case name == "Fence" && len(call.Args) == 0:
					delete(pending, recv)
				case isLoad && loadArity == len(call.Args):
					addr := exprText(p.fset, call.Args[0])
					if _, unfenced := pending[recv][addr]; unfenced {
						out = append(out, Finding{
							Pos:   p.fset.Position(call.Pos()),
							Check: "dsmfence",
							Msg: fmt.Sprintf("%s.%s(%s, ...) after an unfenced %s.Store to the same address; call %s.Fence() between them",
								recv, name, addr, recv, recv),
						})
					}
				}
				return true
			})
		}
	}
	return out
}

// floatEvidence reports why an expression looks like a float64
// microsecond quantity, or "" if it looks integral.
func floatEvidence(e ast.Expr, floats map[string]bool) string {
	why := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch v := n.(type) {
		case *ast.BasicLit:
			if v.Kind == token.FLOAT {
				why = fmt.Sprintf("float literal %s", v.Value)
			}
		case *ast.Ident:
			if floats[v.Name] {
				why = fmt.Sprintf("parameter field %s", v.Name)
			}
		case *ast.SelectorExpr:
			if floats[v.Sel.Name] {
				why = fmt.Sprintf("parameter field %s", v.Sel.Name)
				return false
			}
		}
		return true
	})
	return why
}
