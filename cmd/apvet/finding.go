package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"sort"
	"strings"

	"ap1000plus/cmd/apvet/internal/load"
)

// Finding is one diagnostic. Suppressed findings stay in the list
// (and in -json output) so pragma use remains auditable; they just
// don't fail the run.
type Finding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Check      string `json:"check"`
	Msg        string `json:"msg"`
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Check, f.Msg)
	if f.Suppressed {
		s += fmt.Sprintf(" (suppressed: %s)", f.Reason)
	}
	return s
}

// pragma is one //apvet:ignore directive.
type pragma struct {
	check  string
	reason string
	line   int
	file   string
	used   bool
}

const pragmaPrefix = "//apvet:ignore"

// collectPragmas walks the comments of every analyzed file and
// indexes //apvet:ignore directives by file and line. A directive
// suppresses matching findings on its own line and on the line
// directly below (the comment-above-the-statement style).
func collectPragmas(fset *token.FileSet, pkgs []*load.Package) map[string][]*pragma {
	out := map[string][]*pragma{}
	for _, u := range pkgs {
		if !u.Analyzed {
			continue
		}
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(c.Text)
					if !strings.HasPrefix(text, pragmaPrefix) {
						continue
					}
					rest := strings.TrimSpace(strings.TrimPrefix(text, pragmaPrefix))
					check, reason, _ := strings.Cut(rest, " ")
					pos := fset.Position(c.Pos())
					out[pos.Filename] = append(out[pos.Filename], &pragma{
						check:  check,
						reason: strings.TrimSpace(reason),
						line:   pos.Line,
						file:   pos.Filename,
					})
				}
			}
		}
	}
	return out
}

// applyPragmas marks findings covered by an ignore directive as
// suppressed and reports directives that are malformed (no reason) or
// unused. It returns the final finding list, sorted.
func applyPragmas(findings []Finding, pragmas map[string][]*pragma) []Finding {
	for i := range findings {
		f := &findings[i]
		for _, p := range pragmas[f.File] {
			if p.check != f.Check {
				continue
			}
			if p.line != f.Line && p.line != f.Line-1 {
				continue
			}
			p.used = true
			if p.reason == "" {
				continue // a reasonless pragma never suppresses
			}
			f.Suppressed = true
			f.Reason = p.reason
		}
	}
	var files []string
	for file := range pragmas {
		files = append(files, file)
	}
	sort.Strings(files)
	for _, file := range files {
		for _, p := range pragmas[file] {
			if p.reason == "" {
				findings = append(findings, Finding{
					File: p.file, Line: p.line, Col: 1, Check: "pragma",
					Msg: fmt.Sprintf("apvet:ignore %s has no reason; suppressions must be justified", p.check),
				})
			} else if !p.used {
				findings = append(findings, Finding{
					File: p.file, Line: p.line, Col: 1, Check: "pragma",
					Msg: fmt.Sprintf("apvet:ignore %s matches no finding; remove the stale pragma", p.check),
				})
			}
		}
	}
	sortFindings(findings)
	return findings
}

// sortFindings orders findings deterministically: file, line, column,
// check, message.
func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Msg < b.Msg
	})
}

// writeJSON emits the deterministic machine-readable report.
func writeJSON(w io.Writer, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

// finding builds a Finding at a token position.
func (pr *program) finding(pos token.Pos, check, msg string) Finding {
	p := pr.fset.Position(pos)
	return Finding{File: p.Filename, Line: p.Line, Col: p.Column, Check: check, Msg: msg}
}

// fileOf returns the *ast.File of an analyzed unit containing pos.
func fileOf(fset *token.FileSet, u *load.Package, pos token.Pos) *ast.File {
	for _, f := range u.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}
