// Command tracegen runs one of the paper's applications on the
// functional AP1000+ machine and writes its execution trace — the
// same artifact the paper collected with probes on the real AP1000
// (S5) — for later replay with cmd/mlsim.
//
// Usage:
//
//	tracegen -app CG -o cg.trace
//	tracegen -app "TC no st" -quick -o tc.trace
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ap1000plus/internal/apps"
	"ap1000plus/internal/obs"
	"ap1000plus/internal/stats"
	"ap1000plus/internal/trace"
)

func main() {
	app := flag.String("app", "", "application name (see -list)")
	out := flag.String("o", "", "output trace file (default <app>.trace)")
	quick := flag.Bool("quick", false, "use the reduced problem size")
	list := flag.Bool("list", false, "list available applications")
	dump := flag.Int("dump", 0, "also print the first N events per PE")
	metrics := flag.Bool("metrics", false, "print the machine counter report after the run")
	timeline := flag.String("timeline", "", "write a Perfetto timeline of the functional run to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *list {
		for _, row := range apps.Catalog() {
			fmt.Println(row.Name)
		}
		return
	}
	stopProf, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	err = run(*app, *out, *quick, *dump, *metrics, *timeline)
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(app, out string, quick bool, dumpN int, metrics bool, timeline string) error {
	if app == "" {
		return fmt.Errorf("missing -app (use -list to see choices)")
	}
	var build apps.Builder
	if quick {
		for _, row := range stats.TestCatalog() {
			if strings.EqualFold(row.Name, app) {
				build = row.Build
			}
		}
	} else {
		for _, row := range apps.Catalog() {
			if strings.EqualFold(row.Name, app) {
				build = row.Build
			}
		}
	}
	if build == nil {
		return fmt.Errorf("unknown application %q", app)
	}
	apps.Observe = metrics || timeline != ""
	var tl *obs.Timeline
	apps.TimelineFor = nil
	if timeline != "" {
		tl = obs.NewTimeline()
		apps.TimelineFor = func(string) *obs.Timeline { return tl }
	}
	in, err := build()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "running %s on %d cells...\n", in.Name, in.Machine.Cells())
	ts, err := in.Run()
	if err != nil {
		return err
	}
	if out == "" {
		out = strings.ReplaceAll(strings.ToLower(app), " ", "-") + ".trace"
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Write(f, ts); err != nil {
		return err
	}
	row := trace.Stats(ts)
	fmt.Fprintln(os.Stderr, trace.Table3Header)
	fmt.Fprintln(os.Stderr, row.Format())
	fmt.Fprintf(os.Stderr, "wrote %s (%d events)\n", out, ts.Events())
	if metrics {
		mt := in.Machine.Metrics()
		if err := mt.Format(os.Stdout); err != nil {
			return err
		}
	}
	if timeline != "" {
		tf, err := os.Create(timeline)
		if err != nil {
			return err
		}
		if err := tl.WriteJSON(tf); err != nil {
			tf.Close()
			return err
		}
		if err := tf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote timeline %s; load at ui.perfetto.dev\n", timeline)
	}
	if dumpN > 0 {
		return trace.Dump(os.Stdout, ts, dumpN)
	}
	return nil
}
