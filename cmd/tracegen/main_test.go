package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"ap1000plus/internal/trace"
)

func TestRunWritesReadableTrace(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "ep.trace")
	if err := run("EP", out, true, 0, false, ""); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ts, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Meta.App != "EP" {
		t.Errorf("app = %q", ts.Meta.App)
	}
}

func TestRunWithMetricsAndTimeline(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "ep.trace")
	tlPath := filepath.Join(dir, "tl.json")
	if err := run("EP", out, true, 0, true, tlPath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tlPath)
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("timeline not valid trace JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("timeline empty")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "x.trace", true, 0, false, ""); err == nil {
		t.Error("missing app accepted")
	}
	if err := run("NOPE", "x.trace", true, 0, false, ""); err == nil {
		t.Error("unknown app accepted")
	}
	if err := run("EP", "/nonexistent-dir/x.trace", true, 0, false, ""); err == nil {
		t.Error("unwritable path accepted")
	}
}
