package main

import (
	"os"
	"path/filepath"
	"testing"

	"ap1000plus/internal/trace"
)

func TestRunWritesReadableTrace(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "ep.trace")
	if err := run("EP", out, true, 0); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ts, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Meta.App != "EP" {
		t.Errorf("app = %q", ts.Meta.App)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "x.trace", true, 0); err == nil {
		t.Error("missing app accepted")
	}
	if err := run("NOPE", "x.trace", true, 0); err == nil {
		t.Error("unknown app accepted")
	}
	if err := run("EP", "/nonexistent-dir/x.trace", true, 0); err == nil {
		t.Error("unwritable path accepted")
	}
}
