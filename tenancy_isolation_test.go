// Multi-tenant isolation property: a tenant's job on one partition
// must produce results bit-identical to a solo run of the same job on
// an otherwise idle machine, even while a chaos tenant hammers the
// neighbor partition under an aggressive fault plan. Partitions are
// the isolation boundary — disjoint cells, private barrier domains, a
// T-net that refuses cross-partition traffic — and fault fates are a
// deterministic function of (seed, stream, index), so tenant A's wire
// experience cannot depend on tenant B's traffic.
package ap1000plus

import (
	"math"
	"sync"
	"testing"
)

// tenantBufs is one tenant's communication buffers, allocated once
// per machine before Open so repeated comparisons see identical
// addresses.
type tenantBufs struct {
	cells      []CellID
	src, dst   []*Segment
	srcD, dstD [][]float64
}

func allocTenantBufs(t *testing.T, m *Machine, part int, words int) *tenantBufs {
	t.Helper()
	g := m.Partition(part).Group()
	tb := &tenantBufs{cells: g.SortedCopy()}
	for _, id := range tb.cells {
		c := m.Cell(id)
		seg, data, err := c.AllocFloat64("tenant-src", words)
		if err != nil {
			t.Fatal(err)
		}
		tb.src, tb.srcD = append(tb.src, seg), append(tb.srcD, data)
		if seg, data, err = c.AllocFloat64("tenant-dst", words); err != nil {
			t.Fatal(err)
		}
		tb.dst, tb.dstD = append(tb.dst, seg), append(tb.dstD, data)
	}
	return tb
}

// tenantProgram is a multi-round ring accumulation inside one
// partition: each round every cell PUTs its buffer row-by-row to the
// right neighbor (many small packets, so every fault class fires),
// waits on both flags, folds the received values into the next round,
// and barriers on the partition's own domain.
func tenantProgram(tb *tenantBufs, fill float64, rounds, words int) func(c *Cell) error {
	return func(c *Cell) error {
		comm := NewComm(c)
		np := len(tb.cells)
		rank := 0
		for i, id := range tb.cells {
			if id == c.ID() {
				rank = i
			}
		}
		recvFlag := c.Flags.Alloc() // same ID on every cell after reset
		sendFlag := c.Flags.Alloc()
		for i := 0; i < words; i++ {
			tb.srcD[rank][i] = fill + float64(rank) + math.Sin(float64(i)*0.3)
		}
		right := tb.cells[(rank+1)%np]
		const row = 4 // words per PUT: small packets, many of them
		for round := 0; round < rounds; round++ {
			for off := 0; off < words; off += row {
				if err := comm.Put(Transfer{
					To:     right,
					Remote: tb.dst[(rank+1)%np].Base() + Addr(off*8),
					Local:  tb.src[rank].Base() + Addr(off*8),
					Size:   row * 8, SendFlag: sendFlag, RecvFlag: recvFlag,
				}); err != nil {
					return err
				}
			}
			puts := int64((round + 1) * words / row)
			comm.WaitFlag(sendFlag, puts)
			comm.WaitFlag(recvFlag, puts)
			c.HWBarrier()
			for i := 0; i < words; i++ {
				tb.srcD[rank][i] = tb.dstD[rank][i] + float64(round)*0.25
			}
			c.HWBarrier()
		}
		return nil
	}
}

// tenantSnapshot captures everything the isolation property compares:
// the output data, the MC flag-increment counts (exactly-once), and
// the deterministic per-partition counters. Timing-dependent counters
// (wait/stall/backoff nanos, spills, interrupts) are excluded — they
// are not part of the result.
type tenantSnapshot struct {
	data                                     []float64
	flags                                    []int64
	puts, putBytes, delivered, recvDMAs      int64
	retransmits, dedups, corrupt, cellFaults int64
	barriers                                 int64
}

func snapshotTenant(tb *tenantBufs, m *Machine, part int) tenantSnapshot {
	var s tenantSnapshot
	for rank := range tb.cells {
		s.data = append(s.data, tb.srcD[rank]...)
	}
	mt := m.PartitionMetrics(part)
	for i := range mt.Cells {
		s.flags = append(s.flags, mt.Cells[i].FlagIncrements)
	}
	tot := mt.Totals()
	s.puts, s.putBytes = tot.Put, tot.PutBytes
	s.delivered, s.recvDMAs = tot.DeliveredBytes, tot.RecvDMAs
	s.retransmits, s.dedups = tot.Retransmits, tot.Dedups
	s.corrupt, s.cellFaults = tot.CorruptDetected, tot.CellFaults
	s.barriers = mt.HWBarriers
	return s
}

func tenancyChaosMachine(t *testing.T) *Machine {
	t.Helper()
	plan, err := ParseFaultPlan("drop=0.05,dup=0.05,reorder=0.04,corrupt=0.03,seed=99")
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(WithCells(8), WithPartitions(2), WithObserve(), WithFault(plan))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestChaosTenantIsolation(t *testing.T) {
	const (
		rounds = 4
		words  = 32
	)

	// Solo: tenant A alone on partition 0 of an idle machine.
	solo := tenancyChaosMachine(t)
	soloBufs := allocTenantBufs(t, solo, 0, words)
	if err := solo.Open(); err != nil {
		t.Fatal(err)
	}
	if err := solo.RunJob(0, tenantProgram(soloBufs, 1, rounds, words)); err != nil {
		t.Fatal(err)
	}
	want := snapshotTenant(soloBufs, solo, 0)
	if err := solo.Close(); err != nil {
		t.Fatal(err)
	}
	if want.retransmits == 0 || want.dedups == 0 {
		t.Fatalf("fault plan too tame: retransmits=%d dedups=%d, the chaos run would prove nothing",
			want.retransmits, want.dedups)
	}

	// Combined: same job on partition 0 while a chaos tenant hammers
	// partition 1 with triple the traffic, concurrently.
	m := tenancyChaosMachine(t)
	aBufs := allocTenantBufs(t, m, 0, words)
	bBufs := allocTenantBufs(t, m, 1, words)
	if err := m.Open(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		errs[0] = m.RunJob(0, tenantProgram(aBufs, 1, rounds, words))
	}()
	go func() {
		defer wg.Done()
		errs[1] = m.RunJob(1, tenantProgram(bBufs, 9000, 3*rounds, words))
	}()
	wg.Wait()
	got := snapshotTenant(aBufs, m, 0)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("tenant %d: %v", i, err)
		}
	}

	// Tenant A's world must be bit-identical to the solo run.
	for i := range want.data {
		if math.Float64bits(got.data[i]) != math.Float64bits(want.data[i]) {
			t.Fatalf("data[%d] = %v with a chaos neighbor, solo run produced %v", i, got.data[i], want.data[i])
		}
	}
	for i := range want.flags {
		if got.flags[i] != want.flags[i] {
			t.Fatalf("cell %d flag increments = %d with a chaos neighbor, solo %d (exactly-once violated)",
				i, got.flags[i], want.flags[i])
		}
	}
	type pair struct {
		name      string
		got, want int64
	}
	for _, p := range []pair{
		{"puts", got.puts, want.puts},
		{"put-bytes", got.putBytes, want.putBytes},
		{"delivered-bytes", got.delivered, want.delivered},
		{"recv-DMAs", got.recvDMAs, want.recvDMAs},
		{"retransmits", got.retransmits, want.retransmits},
		{"dedups", got.dedups, want.dedups},
		{"corrupt-detected", got.corrupt, want.corrupt},
		{"cell-faults", got.cellFaults, want.cellFaults},
		{"hw-barriers", got.barriers, want.barriers},
	} {
		if p.got != p.want {
			t.Errorf("partition-0 %s = %d with a chaos neighbor, solo run produced %d", p.name, p.got, p.want)
		}
	}
}
