package ap1000plus

import (
	"strings"
	"testing"
)

// TestNewValidation is the construction-validation table: every bad
// geometry, size, or option conflict must fail in New with a
// diagnosable message — never build a half-working machine.
func TestNewValidation(t *testing.T) {
	plan, err := ParseFaultPlan("drop=0.01,seed=1")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		opts    []Option
		wantErr string // substring of the error; "" means success
	}{
		{"grid 2x2", []Option{WithGrid(2, 2)}, ""},
		{"cells 64", []Option{WithCells(64)}, ""},
		{"cells max", []Option{WithCells(4096)}, ""},
		{"no geometry", nil, "no geometry"},
		{"observe without geometry", []Option{WithObserve()}, "no geometry"},
		{"grid too small", []Option{WithGrid(1, 2)}, "outside the simulator range"},
		{"grid too large", []Option{WithGrid(128, 64)}, "outside the simulator range"},
		{"grid zero dim", []Option{WithGrid(0, 8)}, "non-positive dimensions"},
		{"cells too many", []Option{WithCells(8192)}, "outside [4,4096]"},
		{"cells too few", []Option{WithCells(2)}, "outside [4,4096]"},
		{"geometry twice", []Option{WithGrid(2, 2), WithCells(16)}, "geometry set twice"},
		{"geometry twice grid", []Option{WithGrid(2, 2), WithGrid(4, 4)}, "geometry set twice"},
		{"negative memory", []Option{WithGrid(2, 2), WithMemoryPerCell(-1)}, "memory per cell"},
		{"zero memory", []Option{WithGrid(2, 2), WithMemoryPerCell(0)}, "memory per cell"},
		{"zero queue", []Option{WithGrid(2, 2), WithQueueWords(0)}, "queue words"},
		{"queue below a command", []Option{WithGrid(2, 2), WithQueueWords(2)}, "below one"},
		{"empty trace name", []Option{WithGrid(2, 2), WithTrace("")}, "trace application name"},
		{"nil timeline", []Option{WithGrid(2, 2), WithTimeline(nil)}, "WithTimeline(nil)"},
		{"nil fault plan", []Option{WithGrid(2, 2), WithFault(nil)}, "WithFault(nil)"},
		{"zero workers", []Option{WithGrid(2, 2), WithDeliveryWorkers(0)}, "delivery workers"},
		{"workers on mutex wire", []Option{WithGrid(2, 2), WithMutexWire(), WithDeliveryWorkers(2)}, "conflicts with the mutex wire"},
		{"mutex links on mutex wire", []Option{WithGrid(2, 2), WithMutexWire(), WithMutexLinks()}, "conflicts with the mutex wire"},
		{"ring knobs ok", []Option{WithGrid(2, 2), WithDeliveryWorkers(2), WithMutexLinks()}, ""},
		{"mutex wire ok", []Option{WithGrid(4, 4), WithMutexWire()}, ""},
		{"fault + sanitize + combining ok", []Option{WithGrid(2, 2), WithFault(plan), WithSanitize(), WithCombining()}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := New(tc.opts...)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				if m == nil {
					t.Fatal("New returned nil machine without error")
				}
				return
			}
			if err == nil {
				t.Fatalf("New accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestNewDefaults checks the documented defaults: paper-grid memory
// and queues, ring wire, no checking layers — by building the minimal
// machine and running a trivial SPMD program on it.
func TestNewDefaults(t *testing.T) {
	m, err := New(WithCells(4))
	if err != nil {
		t.Fatal(err)
	}
	if m.Cells() != 4 {
		t.Fatalf("Cells = %d, want 4", m.Cells())
	}
	if w, h := m.Torus().Width(), m.Torus().Height(); w*h != 4 {
		t.Fatalf("torus %dx%d, want 4 cells", w, h)
	}
	if err := m.Run(func(c *Cell) error { return nil }); err != nil {
		t.Fatal(err)
	}
}
