package apps

import (
	"fmt"
	"math"

	"ap1000plus/internal/core"
	"ap1000plus/internal/mc"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/topology"
	"ap1000plus/internal/vpp"
)

// FTConfig configures the NPB FT kernel: repeated 3-D FFTs of an
// Nx x Ny x Nz complex array, slab-decomposed along Z. Per iteration
// the kernel runs a forward 3-D FFT (X and Y lines are local; the Z
// dimension is reached by an all-to-all TRANSPOSE realized with one
// stride PUT per destination cell per local plane) and the inverse
// FFT (transposing back with contiguous GETs into a staging line),
// then a checksum via scalar global sums — the PUT/PUTS/GET-heavy
// mix of Table 3's FT row.
type FTConfig struct {
	Cells      int
	Nx, Ny, Nz int
	Iters      int
	// ChunkRows splits each transpose block into messages of this
	// many Y rows (0 = whole block in one message). The paper's FT
	// moves ~1.6 KB messages; 32-row chunks reproduce that scale.
	ChunkRows int
}

// PaperFT is the paper's configuration: 256 x 256 x 128 for 6
// iterations on 128 cells.
func PaperFT() FTConfig {
	return FTConfig{Cells: 128, Nx: 256, Ny: 256, Nz: 128, Iters: 6, ChunkRows: 32}
}

// TestFT is a laptop-scale configuration.
func TestFT() FTConfig { return FTConfig{Cells: 4, Nx: 16, Ny: 8, Nz: 8, Iters: 2} }

// NewFT builds an FT instance.
func NewFT(cfg FTConfig) (*Instance, error) {
	for _, d := range []int{cfg.Nx, cfg.Ny, cfg.Nz} {
		if d <= 0 || d&(d-1) != 0 {
			return nil, fmt.Errorf("apps: FT: dimensions must be powers of two, got %dx%dx%d", cfg.Nx, cfg.Ny, cfg.Nz)
		}
	}
	in, err := newInstance("FT", cfg.Cells, 64<<20)
	if err != nil {
		return nil, err
	}
	np := in.Machine.Cells()
	if cfg.Nz%np != 0 || cfg.Nx%np != 0 {
		return nil, fmt.Errorf("apps: FT: %d cells must divide Nz=%d and Nx=%d", np, cfg.Nz, cfg.Nx)
	}
	nzL := cfg.Nz / np // local z planes
	nxL := cfg.Nx / np // local x columns in the transposed layout
	chunk := cfg.ChunkRows
	if chunk <= 0 || chunk > cfg.Ny {
		chunk = cfg.Ny
	}
	if cfg.Ny%chunk != 0 {
		return nil, fmt.Errorf("apps: FT: chunk rows %d must divide Ny=%d", chunk, cfg.Ny)
	}

	// zslab: [zl][y][x] interleaved complex.
	zslab, err := newPerCellBuf(in.Machine, "ft.zslab", nzL*cfg.Ny*cfg.Nx*2)
	if err != nil {
		return nil, err
	}
	// xslab: [z][y][xl] interleaved complex.
	xslab, err := newPerCellBuf(in.Machine, "ft.xslab", cfg.Nz*cfg.Ny*nxL*2)
	if err != nil {
		return nil, err
	}
	// line: staging for the inverse-transpose GETs (one plane block).
	line, err := newPerCellBuf(in.Machine, "ft.line", cfg.Ny*nxL*2)
	if err != nil {
		return nil, err
	}

	// Deterministic pseudo-random initial data, reproducible per
	// global index for verification.
	initVal := func(zg, y, x int) (float64, float64) {
		h := uint64(zg)*0x9E3779B97F4A7C15 ^ uint64(y)*0xC2B2AE3D27D4EB4F ^ uint64(x)*0x165667B19E3779F9
		h ^= h >> 33
		h *= 0xFF51AFD7ED558CCD
		h ^= h >> 33
		re := float64(h&0xFFFFF)/float64(1<<20) - 0.5
		im := float64((h>>20)&0xFFFFF)/float64(1<<20) - 0.5
		return re, im
	}

	checksums := make([]float64, cfg.Iters*2) // re/im per iteration (global)

	in.Program = func(rt *vpp.Runtime) error {
		r := rt.Rank()
		zs := zslab.slice(r)
		xs := xslab.slice(r)
		scratch := make([]float64, 2*maxInt(cfg.Nx, maxInt(cfg.Ny, cfg.Nz)))

		for zl := 0; zl < nzL; zl++ {
			zg := r*nzL + zl
			for y := 0; y < cfg.Ny; y++ {
				for x := 0; x < cfg.Nx; x++ {
					re, im := initVal(zg, y, x)
					idx := 2 * ((zl*cfg.Ny+y)*cfg.Nx + x)
					zs[idx], zs[idx+1] = re, im
				}
			}
		}
		rt.Barrier()

		recvFlag := rt.Cell().Flags.Alloc()
		gets := int64(0)

		for iter := 0; iter < cfg.Iters; iter++ {
			// --- Forward 3-D FFT ---
			// X lines (contiguous) and Y lines (strided) are local.
			flops := 0.0
			for zl := 0; zl < nzL; zl++ {
				base := zl * cfg.Ny * cfg.Nx
				for y := 0; y < cfg.Ny; y++ {
					fftInPlace(zs[2*(base+y*cfg.Nx):], cfg.Nx, false)
					flops += fftFlops(cfg.Nx)
				}
				for x := 0; x < cfg.Nx; x++ {
					fftStrided(zs, base+x, cfg.Nx, cfg.Ny, false, scratch)
					flops += fftFlops(cfg.Ny)
				}
			}
			rt.Compute(flopUS(flops))
			rt.Barrier()

			// Transpose z-slab -> x-slab: one stride PUT per
			// (destination, local plane); the destination region
			// [zg][*][*] is contiguous there.
			for s := 0; s < np; s++ {
				for zl := 0; zl < nzL; zl++ {
					zg := r*nzL + zl
					srcPat := mem.Stride{ItemSize: int64(nxL * 16), Count: int64(cfg.Ny), Skip: int64((cfg.Nx - nxL) * 16)}
					dstOff := zg * cfg.Ny * nxL * 2
					srcOff := (zl*cfg.Ny*cfg.Nx + s*nxL) * 2
					if s == r {
						// Local block: plain copy.
						for y := 0; y < cfg.Ny; y++ {
							copy(xs[dstOff+y*nxL*2:dstOff+(y+1)*nxL*2],
								zs[srcOff+y*cfg.Nx*2:srcOff+y*cfg.Nx*2+nxL*2])
						}
						continue
					}
					for y0 := 0; y0 < cfg.Ny; y0 += chunk {
						pat := srcPat
						pat.Count = int64(chunk)
						if err := rt.Comm.PutStride(topology.CellID(s),
							xslab.addr(s, dstOff+y0*nxL*2), zslab.addr(r, srcOff+y0*cfg.Nx*2),
							mc.NoFlag, mc.NoFlag, true,
							pat, mem.Contiguous(pat.Total())); err != nil {
							return err
						}
					}
				}
			}
			rt.Comm.AckWait()
			rt.Barrier()

			// Z lines: in the x-slab layout, the z-line at (y, xl) has
			// stride Ny*nxL complex elements.
			flops = 0
			for y := 0; y < cfg.Ny; y++ {
				for xl := 0; xl < nxL; xl++ {
					fftStrided(xs, y*nxL+xl, cfg.Ny*nxL, cfg.Nz, false, scratch)
					flops += fftFlops(cfg.Nz)
				}
			}
			rt.Compute(flopUS(flops))

			// Checksum in frequency space plus spectrum diagnostics:
			// the paper's four per-iteration global operations.
			var csRe, csIm, energy, peak float64
			for k := 0; k < 16; k++ {
				idx := (k * 37) % (cfg.Nz * cfg.Ny * nxL)
				csRe += xs[2*idx]
				csIm += xs[2*idx+1]
			}
			for i := 0; i < cfg.Nz*cfg.Ny*nxL; i++ {
				m2 := xs[2*i]*xs[2*i] + xs[2*i+1]*xs[2*i+1]
				energy += m2
				if m2 > peak {
					peak = m2
				}
			}
			rt.Compute(flopUS(float64(3 * cfg.Nz * cfg.Ny * nxL)))
			csRe = rt.GlobalSum(csRe)
			csIm = rt.GlobalSum(csIm)
			energy = rt.GlobalSum(energy)
			peak = rt.GlobalMax(peak)
			_ = energy
			_ = peak
			if r == 0 {
				checksums[2*iter] = csRe
				checksums[2*iter+1] = csIm
			}
			rt.Barrier()

			// --- Inverse 3-D FFT ---
			// Z lines first (still local in the x-slab).
			flops = 0
			for y := 0; y < cfg.Ny; y++ {
				for xl := 0; xl < nxL; xl++ {
					fftStrided(xs, y*nxL+xl, cfg.Ny*nxL, cfg.Nz, true, scratch)
					flops += fftFlops(cfg.Nz)
				}
			}
			rt.Compute(flopUS(flops))
			rt.Barrier()

			// Transpose back: contiguous GET of each remote plane
			// block into the staging line, then local scatter — the
			// run-time system's software gather, which keeps the GET
			// contiguous as in Table 3.
			for s := 0; s < np; s++ {
				for zl := 0; zl < nzL; zl++ {
					zg := r*nzL + zl
					srcOff := zg * cfg.Ny * nxL * 2
					dstBase := (zl*cfg.Ny*cfg.Nx + s*nxL) * 2
					if s == r {
						for y := 0; y < cfg.Ny; y++ {
							copy(zs[dstBase+y*cfg.Nx*2:dstBase+y*cfg.Nx*2+nxL*2],
								xs[srcOff+y*nxL*2:srcOff+(y+1)*nxL*2])
						}
						continue
					}
					for y0 := 0; y0 < cfg.Ny; y0 += chunk {
						if err := rt.Comm.Get(core.Transfer{
							To:     topology.CellID(s),
							Remote: xslab.addr(s, srcOff+y0*nxL*2), Local: line.addr(r, 0),
							Size: int64(chunk * nxL * 16), RecvFlag: recvFlag,
						}); err != nil {
							return err
						}
						gets++
						rt.Comm.WaitFlag(recvFlag, gets)
						ln := line.slice(r)
						for y := 0; y < chunk; y++ {
							copy(zs[dstBase+(y0+y)*cfg.Nx*2:dstBase+(y0+y)*cfg.Nx*2+nxL*2],
								ln[y*nxL*2:(y+1)*nxL*2])
						}
					}
				}
			}
			rt.Barrier()

			// X and Y inverse lines, and 1/N scaling.
			flops = 0
			scale := 1 / (float64(cfg.Nx) * float64(cfg.Ny) * float64(cfg.Nz))
			for zl := 0; zl < nzL; zl++ {
				base := zl * cfg.Ny * cfg.Nx
				for x := 0; x < cfg.Nx; x++ {
					fftStrided(zs, base+x, cfg.Nx, cfg.Ny, true, scratch)
					flops += fftFlops(cfg.Ny)
				}
				for y := 0; y < cfg.Ny; y++ {
					fftInPlace(zs[2*(base+y*cfg.Nx):], cfg.Nx, true)
					flops += fftFlops(cfg.Nx)
					for x := 0; x < cfg.Nx; x++ {
						idx := 2 * (base + y*cfg.Nx + x)
						zs[idx] *= scale
						zs[idx+1] *= scale
					}
				}
			}
			rt.Compute(flopUS(flops))
			rt.Barrier()
			rt.Barrier() // iteration boundary (compiler loop barrier)
		}
		return nil
	}
	in.Verify = func() error {
		// Forward+inverse per iteration: the data must equal the
		// initial field (to rounding) on every cell.
		for r := 0; r < np; r++ {
			zs := zslab.slice(r)
			for zl := 0; zl < nzL; zl++ {
				zg := r*nzL + zl
				for y := 0; y < cfg.Ny; y++ {
					for x := 0; x < cfg.Nx; x++ {
						re, im := initVal(zg, y, x)
						idx := 2 * ((zl*cfg.Ny+y)*cfg.Nx + x)
						if math.Abs(zs[idx]-re) > 1e-9 || math.Abs(zs[idx+1]-im) > 1e-9 {
							return fmt.Errorf("FT roundtrip mismatch at cell %d (%d,%d,%d): got (%g,%g) want (%g,%g)",
								r, zg, y, x, zs[idx], zs[idx+1], re, im)
						}
					}
				}
			}
		}
		// Checksums must be identical across iterations (the spectrum
		// is recomputed from the same data each time).
		for it := 1; it < cfg.Iters; it++ {
			if math.Abs(checksums[2*it]-checksums[0]) > 1e-6 ||
				math.Abs(checksums[2*it+1]-checksums[1]) > 1e-6 {
				return fmt.Errorf("FT checksum drift: iter %d (%g,%g) vs iter 0 (%g,%g)",
					it, checksums[2*it], checksums[2*it+1], checksums[0], checksums[1])
			}
		}
		return nil
	}
	return in, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
