// Package apps implements the paper's seven evaluation workloads
// (S5.2) against the functional AP1000+ and the VPP-Fortran-style
// run-time system:
//
//	EP, CG, FT, SP (NAS parallel benchmarks), TOMCATV (SPEC, in
//	stride and no-stride variants), and the C-language MatMul and
//	SCG.
//
// Every application computes real numerics (verified by its tests)
// and, when run on a tracing machine, emits the per-PE event stream
// MLSim replays. Problem sizes are parameters; PaperConfig returns
// the sizes of Table 2/Table 3.
package apps

import (
	"fmt"

	"ap1000plus/internal/fault"
	"ap1000plus/internal/machine"
	"ap1000plus/internal/obs"
	"ap1000plus/internal/topology"
	"ap1000plus/internal/trace"
	"ap1000plus/internal/vpp"
)

// Instance is one configured application run.
type Instance struct {
	// Name labels the run ("CG", "TC st", ...).
	Name string
	// Machine is the functional machine the app runs on.
	Machine *machine.Machine
	// RTs holds the per-cell run-time systems.
	RTs []*vpp.Runtime
	// Program is the SPMD body.
	Program func(rt *vpp.Runtime) error
	// Verify checks the numeric result after the run.
	Verify func() error
}

// Sanitize, when set before building an instance, runs every
// application machine with the apsan race detector enabled. Run
// fails if the detector reports anything.
var Sanitize bool

// Observe, when set before building an instance, enables the obs
// counter layer on every application machine, so Machine.Metrics()
// reports PUT/GET issue counts, bytes moved and stall times.
var Observe bool

// TimelineFor, when non-nil, is called with the app name before each
// machine is built; a non-nil return attaches that Perfetto timeline
// collector to the machine (implies Observe for that machine).
var TimelineFor func(name string) *obs.Timeline

// Fault, when non-nil before building an instance, runs every
// application machine under this seeded fault plan with the MSC+'s
// reliable-delivery path armed. Run fails if a retry budget was
// exhausted (the numerics could be short a transfer).
var Fault *fault.Plan

// newInstance builds a machine with cells cells (squarish torus),
// tracing under name, and a runtime per cell.
func newInstance(name string, cells int, memPerCell int64) (*Instance, error) {
	tor, err := topology.SquarishTorus(cells)
	if err != nil {
		return nil, fmt.Errorf("apps: %s: %w", name, err)
	}
	var tl *obs.Timeline
	if TimelineFor != nil {
		tl = TimelineFor(name)
	}
	m, err := machine.New(machine.Config{
		Width: tor.Width(), Height: tor.Height(),
		MemoryPerCell: memPerCell, TraceApp: name,
		Sanitize: Sanitize,
		Observe:  Observe, Timeline: tl,
		Fault: Fault,
	})
	if err != nil {
		return nil, fmt.Errorf("apps: %s: %w", name, err)
	}
	in := &Instance{Name: name, Machine: m}
	for id := 0; id < m.Cells(); id++ {
		rt, err := vpp.NewRuntime(m.Cell(topology.CellID(id)))
		if err != nil {
			return nil, fmt.Errorf("apps: %s: %w", name, err)
		}
		in.RTs = append(in.RTs, rt)
	}
	return in, nil
}

// Run executes the application SPMD, verifies the numerics, and
// returns the trace.
func (in *Instance) Run() (*trace.TraceSet, error) {
	if err := in.Machine.Run(func(c *machine.Cell) error {
		return in.Program(in.RTs[c.ID()])
	}); err != nil {
		return nil, fmt.Errorf("apps: %s: %w", in.Name, err)
	}
	if err := in.Machine.SanitizeErr(); err != nil {
		return nil, fmt.Errorf("apps: %s: %w", in.Name, err)
	}
	if err := in.Machine.FaultErr(); err != nil {
		return nil, fmt.Errorf("apps: %s: %w", in.Name, err)
	}
	if in.Verify != nil {
		if err := in.Verify(); err != nil {
			return nil, fmt.Errorf("apps: %s: verification: %w", in.Name, err)
		}
	}
	ts := in.Machine.Trace()
	if err := ts.Validate(); err != nil {
		return nil, fmt.Errorf("apps: %s: %w", in.Name, err)
	}
	return ts, nil
}

// Builder constructs a configured application instance.
type Builder func() (*Instance, error)

// Catalog returns the paper-configuration builder for every
// application row of Table 2/3, in the paper's order.
func Catalog() []struct {
	Name  string
	Build Builder
} {
	return []struct {
		Name  string
		Build Builder
	}{
		{"EP", func() (*Instance, error) { return NewEP(PaperEP()) }},
		{"CG", func() (*Instance, error) { return NewCG(PaperCG()) }},
		{"FT", func() (*Instance, error) { return NewFT(PaperFT()) }},
		{"SP", func() (*Instance, error) { return NewSP(PaperSP()) }},
		{"TC st", func() (*Instance, error) { return NewTomcatv(PaperTomcatv(true)) }},
		{"TC no st", func() (*Instance, error) { return NewTomcatv(PaperTomcatv(false)) }},
		{"MatMul", func() (*Instance, error) { return NewMatMul(PaperMatMul()) }},
		{"SCG", func() (*Instance, error) { return NewSCG(PaperSCG()) }},
	}
}
