package apps

import (
	"fmt"

	"ap1000plus/internal/vpp"
)

// PGASIGConfig sizes the bale index-gather kernel: every cell reads
// OpsPerCell random elements of a static shared table — the
// fine-grained random-read pattern (the dual of histogram).
type PGASIGConfig struct {
	// Cells is the machine size.
	Cells int
	// Table is the shared table length.
	Table int64
	// OpsPerCell is the number of gathers each cell performs.
	OpsPerCell int
	// Mode selects naive or aggregated issue.
	Mode PGASMode
	// Packets is the aggregated-mode region capacity (0 = default).
	Packets int
	// Seed parameterizes the index streams.
	Seed uint64
	// Snapshot, when non-nil, receives every cell's gathered values in
	// rank order after Verify.
	Snapshot *[]int64
}

// igTableValue is the analytic table content.
func igTableValue(i int64) int64 { return i*31 + 7 }

// NewPGASIG builds an index-gather instance.
func NewPGASIG(cfg PGASIGConfig) (*Instance, error) {
	if cfg.Table <= 0 || cfg.OpsPerCell <= 0 {
		return nil, fmt.Errorf("apps: PGAS-IG: bad config %+v", cfg)
	}
	in, err := newInstance("PGAS-IG "+cfg.Mode.String(), cfg.Cells, 0)
	if err != nil {
		return nil, err
	}
	rig, err := newPGASRig(in, cfg.Mode, cfg.Packets)
	if err != nil {
		return nil, err
	}
	table, err := rig.heap.Alloc("igtable", cfg.Table)
	if err != nil {
		return nil, err
	}
	for i := int64(0); i < cfg.Table; i++ {
		table.SetWord(i, igTableValue(i))
	}
	results := make([][]int64, cfg.Cells)
	stream := func(rank int) func() uint64 {
		return pgasSeq(cfg.Seed ^ 0xa5a5a5a5 + uint64(rank)*0x9E3779B97F4A7C15)
	}
	in.Program = func(rt *vpp.Runtime) error {
		me := rt.Rank()
		pe := rig.pes[me]
		seq := stream(me)
		dst := make([]int64, cfg.OpsPerCell)
		for k := 0; k < cfg.OpsPerCell; k++ {
			i := int64(seq() % uint64(cfg.Table))
			if rig.aggs != nil {
				if err := rig.aggs[me].Get(table, i, &dst[k]); err != nil {
					return err
				}
			} else {
				v, err := pe.GetInt64(table, i)
				if err != nil {
					return err
				}
				dst[k] = v
			}
		}
		if err := rig.finish(me); err != nil {
			return err
		}
		results[me] = dst
		return nil
	}
	in.Verify = func() error {
		var all []int64
		for rank := 0; rank < cfg.Cells; rank++ {
			seq := stream(rank)
			for k := 0; k < cfg.OpsPerCell; k++ {
				i := int64(seq() % uint64(cfg.Table))
				if got := results[rank][k]; got != igTableValue(i) {
					return fmt.Errorf("cell %d gather %d: table[%d] = %d, want %d",
						rank, k, i, got, igTableValue(i))
				}
			}
			all = append(all, results[rank]...)
		}
		if cfg.Snapshot != nil {
			*cfg.Snapshot = all
		}
		return nil
	}
	return in, nil
}
