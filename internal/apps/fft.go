package apps

import (
	"fmt"
	"math"
	"math/bits"
)

// Complex data in this package is stored as interleaved float64
// pairs (re, im) inside machine memory segments, so DMA moves it
// byte-identically while kernels work on it in place.

// fftInPlace computes the in-place radix-2 decimation-in-time FFT of
// n complex values stored interleaved in buf[0:2n]. inverse selects
// the inverse transform (unscaled; callers divide by n).
func fftInPlace(buf []float64, n int, inverse bool) {
	if n&(n-1) != 0 || n == 0 {
		panic(fmt.Sprintf("apps: FFT length %d not a power of two", n))
	}
	if len(buf) < 2*n {
		panic("apps: FFT buffer too short")
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			buf[2*i], buf[2*j] = buf[2*j], buf[2*i]
			buf[2*i+1], buf[2*j+1] = buf[2*j+1], buf[2*i+1]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		ang := sign * 2 * math.Pi / float64(size)
		wr, wi := math.Cos(ang), math.Sin(ang)
		for start := 0; start < n; start += size {
			cr, ci := 1.0, 0.0
			for k := 0; k < half; k++ {
				i0 := 2 * (start + k)
				i1 := 2 * (start + k + half)
				tr := buf[i1]*cr - buf[i1+1]*ci
				ti := buf[i1]*ci + buf[i1+1]*cr
				buf[i1] = buf[i0] - tr
				buf[i1+1] = buf[i0+1] - ti
				buf[i0] += tr
				buf[i0+1] += ti
				cr, ci = cr*wr-ci*wi, cr*wi+ci*wr
			}
		}
	}
}

// fftStrided transforms a line of n complex values at the given
// element stride within buf (stride in complex elements), via a
// contiguous scratch of at least 2n floats.
func fftStrided(buf []float64, offset, stride, n int, inverse bool, scratch []float64) {
	for i := 0; i < n; i++ {
		scratch[2*i] = buf[2*(offset+i*stride)]
		scratch[2*i+1] = buf[2*(offset+i*stride)+1]
	}
	fftInPlace(scratch, n, inverse)
	for i := 0; i < n; i++ {
		buf[2*(offset+i*stride)] = scratch[2*i]
		buf[2*(offset+i*stride)+1] = scratch[2*i+1]
	}
}

// fftFlops estimates floating-point operations of one length-n FFT
// (5 n log2 n, the standard count).
func fftFlops(n int) float64 {
	return 5 * float64(n) * math.Log2(float64(n))
}
