package apps

import (
	"fmt"

	"ap1000plus/internal/vpp"
)

// PGASHistoConfig sizes the bale histogram kernel: every cell fires
// OpsPerCell atomic increments at random slots of a shared table —
// the canonical all-to-all fine-grained update pattern.
type PGASHistoConfig struct {
	// Cells is the machine size.
	Cells int
	// Table is the shared histogram length.
	Table int64
	// OpsPerCell is the number of increments each cell issues.
	OpsPerCell int
	// Mode selects naive or aggregated issue.
	Mode PGASMode
	// Packets is the aggregated-mode region capacity (0 = default).
	Packets int
	// Seed parameterizes the index streams.
	Seed uint64
	// Snapshot, when non-nil, receives the final table after Verify —
	// the chaos suite's bit-identical comparison hook.
	Snapshot *[]int64
}

// NewPGASHisto builds a histogram instance.
func NewPGASHisto(cfg PGASHistoConfig) (*Instance, error) {
	if cfg.Table <= 0 || cfg.OpsPerCell <= 0 {
		return nil, fmt.Errorf("apps: PGAS-HG: bad config %+v", cfg)
	}
	in, err := newInstance("PGAS-HG "+cfg.Mode.String(), cfg.Cells, 0)
	if err != nil {
		return nil, err
	}
	rig, err := newPGASRig(in, cfg.Mode, cfg.Packets)
	if err != nil {
		return nil, err
	}
	counts, err := rig.heap.Alloc("histo", cfg.Table)
	if err != nil {
		return nil, err
	}
	stream := func(rank int) func() uint64 {
		return pgasSeq(cfg.Seed + uint64(rank)*0x9E3779B97F4A7C15)
	}
	in.Program = func(rt *vpp.Runtime) error {
		me := rt.Rank()
		pe := rig.pes[me]
		seq := stream(me)
		for k := 0; k < cfg.OpsPerCell; k++ {
			i := int64(seq() % uint64(cfg.Table))
			if rig.aggs != nil {
				if err := rig.aggs[me].Add(counts, i, 1); err != nil {
					return err
				}
			} else if err := pe.AtomicAdd(counts, i, 1); err != nil {
				return err
			}
		}
		return rig.finish(me)
	}
	in.Verify = func() error {
		want := make([]int64, cfg.Table)
		for rank := 0; rank < cfg.Cells; rank++ {
			seq := stream(rank)
			for k := 0; k < cfg.OpsPerCell; k++ {
				want[seq()%uint64(cfg.Table)]++
			}
		}
		got := counts.Words()
		for i, w := range want {
			if got[i] != w {
				return fmt.Errorf("histo[%d] = %d, want %d", i, got[i], w)
			}
		}
		if cfg.Snapshot != nil {
			*cfg.Snapshot = got
		}
		return nil
	}
	return in, nil
}
