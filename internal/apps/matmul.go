package apps

import (
	"fmt"
	"math"

	"ap1000plus/internal/core"
	"ap1000plus/internal/topology"
	"ap1000plus/internal/vpp"
)

// MatMulConfig configures the C-language dense matrix multiplication
// C = A x B of S5.2. A, B and C are row-block distributed; the
// classic ring algorithm rotates the B blocks: in each of P steps a
// cell multiplies its A columns against the currently held B block
// and PUTs the block to its ring successor — one bulk PUT of
// (N/P)*N*8 bytes per step with a barrier per step, Table 3's
// MatMul row (64 PUTs of ~76800 bytes, 64 barriers, nothing else).
// The program overlaps communication and computation: the PUT of the
// current block is issued before the multiply that uses it.
type MatMulConfig struct {
	Cells int
	N     int // matrix edge (800 in the paper)
}

// PaperMatMul is the paper's configuration: dense 800 x 800 on 64
// cells.
func PaperMatMul() MatMulConfig { return MatMulConfig{Cells: 64, N: 800} }

// TestMatMul is a laptop-scale configuration.
func TestMatMul() MatMulConfig { return MatMulConfig{Cells: 4, N: 32} }

// NewMatMul builds a MatMul instance.
func NewMatMul(cfg MatMulConfig) (*Instance, error) {
	if cfg.N < cfg.Cells {
		return nil, fmt.Errorf("apps: MatMul: N=%d smaller than cell count %d", cfg.N, cfg.Cells)
	}
	in, err := newInstance("MatMul", cfg.Cells, 64<<20)
	if err != nil {
		return nil, err
	}
	m := in.Machine
	np := m.Cells()
	n := cfg.N
	block := vpp.BlockSize(n, np) // per-cell buffer capacity

	aBuf, err := newPerCellBuf(m, "mm.a", block*n)
	if err != nil {
		return nil, err
	}
	cBuf, err := newPerCellBuf(m, "mm.c", block*n)
	if err != nil {
		return nil, err
	}
	// Double-buffered ring slots for the travelling B block: the
	// block's owner tag travels with the step number parity.
	bBuf0, err := newPerCellBuf(m, "mm.b0", block*n)
	if err != nil {
		return nil, err
	}
	bBuf1, err := newPerCellBuf(m, "mm.b1", block*n)
	if err != nil {
		return nil, err
	}

	aElem := func(i, j int) float64 { return math.Sin(float64(i*7+j)*0.01) + 0.5 }
	bElem := func(i, j int) float64 { return math.Cos(float64(i*3+j)*0.02) - 0.25 }

	in.Program = func(rt *vpp.Runtime) error {
		r := rt.Rank()
		lo, hi := balancedRange(n, np, r)
		mine := hi - lo
		a := aBuf.slice(r)
		c := cBuf.slice(r)
		bufs := [2]*perCellBuf{bBuf0, bBuf1}
		for i := 0; i < mine; i++ {
			for j := 0; j < n; j++ {
				a[i*n+j] = aElem(lo+i, j)
				bufs[0].slice(r)[i*n+j] = bElem(lo+i, j)
			}
		}
		for i := range c {
			c[i] = 0
		}
		flag := rt.Cell().Flags.Alloc()
		sflag := rt.Cell().Flags.Alloc()
		rt.Barrier()

		next := (r + 1) % np
		for step := 0; step < np; step++ {
			cur := bufs[step%2]
			nxt := bufs[(step+1)%2]
			// Whose B block do we hold? It started at our rank and
			// walked backward each step.
			owner := (r - step + np*np) % np
			olo, ohi := balancedRange(n, np, owner)
			// Forward the block before computing with it, so the
			// transfer overlaps the multiply (the paper's C apps
			// "overlap communication and computation").
			if step < np-1 {
				if err := rt.Comm.Put(core.Transfer{
					To:     topology.CellID(next),
					Remote: nxt.addr(next, 0), Local: cur.addr(r, 0),
					Size: int64((ohi-olo)*n) * 8, SendFlag: sflag, RecvFlag: flag,
				}); err != nil {
					return err
				}
			}
			// Multiply: C[mine, :] += A[mine, olo:ohi] * Bblock.
			bs := cur.slice(r)
			for i := 0; i < mine; i++ {
				for k := olo; k < ohi; k++ {
					aik := a[i*n+k]
					brow := bs[(k-olo)*n:]
					crow := c[i*n:]
					for j := 0; j < n; j++ {
						crow[j] += aik * brow[j]
					}
				}
			}
			rt.Compute(flopUS(float64(2 * mine * (ohi - olo) * n)))
			if step < np-1 {
				// Our send DMA must have captured the outgoing block
				// (send flag: "programs can access the sending area
				// during sending; send_flag is used to protect these
				// areas", S3.1), and the incoming block for the next
				// step must have landed.
				rt.Comm.WaitFlag(sflag, int64(step+1))
				rt.Comm.WaitFlag(flag, int64(step+1))
			}
			// Step barrier (Table 3: one sync per step).
			rt.Barrier()
		}
		return nil
	}
	in.Verify = func() error {
		// Verify a scattering of entries against the direct product.
		for _, probe := range [][2]int{{0, 0}, {1, n / 2}, {n / 3, n - 1}, {n - 1, n - 1}, {n / 2, 1}} {
			i, j := probe[0], probe[1]
			want := 0.0
			for k := 0; k < n; k++ {
				want += aElem(i, k) * bElem(k, j)
			}
			owner := balancedOwner(n, np, i)
			olo, _ := balancedRange(n, np, owner)
			got := cBuf.slice(owner)[(i-olo)*n+j]
			if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
				return fmt.Errorf("C[%d,%d] = %g, want %g", i, j, got, want)
			}
		}
		return nil
	}
	return in, nil
}
