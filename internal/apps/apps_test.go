package apps

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ap1000plus/internal/trace"
)

func runApp(t *testing.T, build func() (*Instance, error)) *trace.TraceSet {
	t.Helper()
	in, err := build()
	if err != nil {
		t.Fatal(err)
	}
	ts, err := in.Run()
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestEPRunsAndHasNoCommunication(t *testing.T) {
	ts := runApp(t, func() (*Instance, error) { return NewEP(TestEP()) })
	row := trace.Stats(ts)
	if row.Put != 0 || row.Get != 0 || row.Send != 0 || row.Sync != 0 || row.Gop != 0 || row.VGop != 0 {
		t.Errorf("EP must be communication-free: %+v", row)
	}
	if row.ComputeUs <= 0 {
		t.Error("EP recorded no compute")
	}
}

func TestLCGSkipMatchesSequential(t *testing.T) {
	x := uint64(epSeed)
	for i := 0; i < 1000; i++ {
		x = lcg46(x)
	}
	if got := lcgSkip(epSeed, 1000); got != x {
		t.Fatalf("lcgSkip = %d, want %d", got, x)
	}
}

func TestCGConvergesAndMatchesTable3Shape(t *testing.T) {
	cfg := TestCG()
	ts := runApp(t, func() (*Instance, error) { return NewCG(cfg) })
	row := trace.Stats(ts)
	iters := float64(cfg.Outer * cfg.Inner)
	if row.VGop != iters {
		t.Errorf("VGop = %v, want %v (one vector sum per step)", row.VGop, iters)
	}
	if row.Put != iters {
		t.Errorf("PUT = %v, want %v (one per step)", row.Put, iters)
	}
	// Two scalar sums per step, two per outer round, plus the
	// initial one.
	wantGop := 2*iters + float64(2*cfg.Outer) + 1
	if row.Gop != wantGop {
		t.Errorf("Gop = %v, want %v", row.Gop, wantGop)
	}
	// The per-step PUT payload averages (n/P)*8 bytes.
	wantMsg := float64(cfg.N) * 8 / float64(cfg.Cells)
	if math.Abs(row.MsgSize-wantMsg) > 1e-9 {
		t.Errorf("msg size = %v, want %v", row.MsgSize, wantMsg)
	}
	// The SEND:VGop ratio is (P-1)/P — the Table 3 CG signature.
	wantSend := iters * float64(cfg.Cells-1) / float64(cfg.Cells)
	if math.Abs(row.Send-wantSend) > 1e-9 {
		t.Errorf("Send = %v, want %v", row.Send, wantSend)
	}
}

func TestCGPaperRatios(t *testing.T) {
	// The paper configuration's derived counts, without running it:
	// 15*26 = 390 steps -> VGop 390, PUT 390 of 700 bytes.
	cfg := PaperCG()
	if cfg.Outer*cfg.Inner != 390 {
		t.Errorf("paper CG steps = %d, want 390", cfg.Outer*cfg.Inner)
	}
	if avg := float64(cfg.N) * 8 / float64(cfg.Cells); avg != 700 {
		t.Errorf("paper CG average put size = %v, want 700", avg)
	}
	a := cgMatrix{n: cfg.N, band: cfg.Band}
	if nz := a.nnz(); nz < 70000 || nz > 80000 {
		t.Errorf("paper CG nnz = %d, want ~78184", nz)
	}
}

func TestFFTRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 4, 16, 64, 256} {
		buf := make([]float64, 2*n)
		orig := make([]float64, 2*n)
		rng := rand.New(rand.NewSource(int64(n)))
		for i := range buf {
			buf[i] = rng.NormFloat64()
			orig[i] = buf[i]
		}
		fftInPlace(buf, n, false)
		fftInPlace(buf, n, true)
		for i := range buf {
			if math.Abs(buf[i]/float64(n)-orig[i]) > 1e-10 {
				t.Fatalf("n=%d roundtrip mismatch at %d", n, i)
			}
		}
	}
}

func TestFFTKnownTransform(t *testing.T) {
	// FFT of a unit impulse is all-ones.
	n := 8
	buf := make([]float64, 2*n)
	buf[0] = 1
	fftInPlace(buf, n, false)
	for i := 0; i < n; i++ {
		if math.Abs(buf[2*i]-1) > 1e-12 || math.Abs(buf[2*i+1]) > 1e-12 {
			t.Fatalf("impulse FFT[%d] = (%g,%g)", i, buf[2*i], buf[2*i+1])
		}
	}
	// FFT of a pure tone has one spike.
	for i := 0; i < n; i++ {
		buf[2*i] = math.Cos(2 * math.Pi * 2 * float64(i) / float64(n))
		buf[2*i+1] = math.Sin(2 * math.Pi * 2 * float64(i) / float64(n))
	}
	fftInPlace(buf, n, false)
	for i := 0; i < n; i++ {
		want := 0.0
		if i == 2 {
			want = float64(n)
		}
		if math.Abs(buf[2*i]-want) > 1e-10 || math.Abs(buf[2*i+1]) > 1e-10 {
			t.Fatalf("tone FFT[%d] = (%g,%g), want (%g,0)", i, buf[2*i], buf[2*i+1], want)
		}
	}
}

// Property: Parseval's theorem holds for the FFT.
func TestFFTParseval(t *testing.T) {
	prop := func(seed int64) bool {
		const n = 32
		rng := rand.New(rand.NewSource(seed))
		buf := make([]float64, 2*n)
		var eTime float64
		for i := range buf {
			buf[i] = rng.NormFloat64()
			eTime += buf[i] * buf[i]
		}
		fftInPlace(buf, n, false)
		var eFreq float64
		for i := range buf {
			eFreq += buf[i] * buf[i]
		}
		return math.Abs(eFreq/float64(n)-eTime) < 1e-8*eTime
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fftInPlace(make([]float64, 12), 6, false)
}

func TestFTRoundTripOnMachine(t *testing.T) {
	ts := runApp(t, func() (*Instance, error) { return NewFT(TestFT()) })
	row := trace.Stats(ts)
	if row.PutS == 0 {
		t.Error("FT must use stride PUTs for the forward transpose")
	}
	if row.Get == 0 {
		t.Error("FT must use contiguous GETs for the inverse transpose")
	}
	if row.Gop == 0 {
		t.Error("FT must reduce checksums")
	}
}

func TestPentaSolve(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 17, 64} {
		rng := rand.New(rand.NewSource(int64(n)))
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		rhs := pentaApply(x, n)
		scratch := make([]float64, 3*n)
		pentaSolve(rhs, n, scratch)
		for i := range x {
			if math.Abs(rhs[i]-x[i]) > 1e-9 {
				t.Fatalf("n=%d: solve[%d] = %g, want %g", n, i, rhs[i], x[i])
			}
		}
	}
}

// Property: pentaSolve(pentaApply(x)) == x for random x.
func TestPentaSolveProperty(t *testing.T) {
	prop := func(seed int64) bool {
		const n = 40
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 10
		}
		rhs := pentaApply(x, n)
		pentaSolve(rhs, n, make([]float64, 3*n))
		for i := range x {
			if math.Abs(rhs[i]-x[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSPMatchesSerialReference(t *testing.T) {
	ts := runApp(t, func() (*Instance, error) { return NewSP(TestSP()) })
	row := trace.Stats(ts)
	if row.Put == 0 || row.PutS == 0 || row.Get == 0 {
		t.Errorf("SP communication shape: %+v", row)
	}
	// PUT and GET counts are of the same order (Table 3: 10880 vs
	// 10710).
	total := row.Put + row.PutS
	if total < row.Get/2 || row.Get < total/4 {
		t.Errorf("PUT/GET imbalance: put=%v puts=%v get=%v", row.Put, row.PutS, row.Get)
	}
}

func TestTomcatvStrideShape(t *testing.T) {
	cfg := TestTomcatv(true)
	ts := runApp(t, func() (*Instance, error) { return NewTomcatv(cfg) })
	row := trace.Stats(ts)
	if row.Put != 0 {
		t.Errorf("stride mode must not use plain PUTs for columns: %+v", row)
	}
	if row.PutS == 0 || row.Get == 0 {
		t.Errorf("stride mode shape: %+v", row)
	}
	// Two Gops per iteration.
	if row.Gop != float64(2*cfg.Iters) {
		t.Errorf("Gop = %v, want %v", row.Gop, 2*cfg.Iters)
	}
	// PUTS == GET: two column pushes and two edge fetches per
	// interior pair, for both X/Y and RX/RY.
	if row.PutS != row.Get {
		t.Errorf("PUTS %v != GET %v", row.PutS, row.Get)
	}
}

func TestTomcatvNoStrideMultiplies(t *testing.T) {
	cfg := TestTomcatv(false)
	ts := runApp(t, func() (*Instance, error) { return NewTomcatv(cfg) })
	row := trace.Stats(ts)
	if row.PutS != 0 {
		t.Errorf("no-stride mode must not use stride PUTs: %+v", row)
	}
	st := runApp(t, func() (*Instance, error) { return NewTomcatv(TestTomcatv(true)) })
	strow := trace.Stats(st)
	if row.Put != strow.PutS*float64(cfg.N) {
		t.Errorf("no-stride PUT = %v, want %v x %d", row.Put, strow.PutS, cfg.N)
	}
}

func TestMatMulCorrectAndShape(t *testing.T) {
	cfg := TestMatMul()
	ts := runApp(t, func() (*Instance, error) { return NewMatMul(cfg) })
	row := trace.Stats(ts)
	// One PUT per step except the last; one barrier per step plus the
	// initial one.
	wantPut := float64(cfg.Cells - 1)
	if row.Put != wantPut {
		t.Errorf("PUT = %v, want %v", row.Put, wantPut)
	}
	if row.Sync != float64(cfg.Cells)+1 {
		t.Errorf("Sync = %v, want %v", row.Sync, cfg.Cells+1)
	}
	if row.Gop != 0 || row.VGop != 0 || row.Send != 0 {
		t.Errorf("MatMul extraneous collectives: %+v", row)
	}
}

func TestSCGConvergesAndShape(t *testing.T) {
	cfg := TestSCG()
	ts := runApp(t, func() (*Instance, error) { return NewSCG(cfg) })
	row := trace.Stats(ts)
	if row.Sync != 1 {
		t.Errorf("Sync = %v, want 1 (Table 3)", row.Sync)
	}
	// PUT ~= SEND ~= iterations * (P-1)/P; Gop ~= 2/iteration.
	if row.Put == 0 || row.Send == 0 {
		t.Errorf("SCG shape: %+v", row)
	}
	if math.Abs(row.Put-row.Send) > 1e-9 {
		t.Errorf("PUT %v != SEND %v", row.Put, row.Send)
	}
	// Two halo'd arrays per iteration: PUT/PE = 2*(P-1)/P per step.
	iters := row.Put * float64(cfg.Cells) / (2 * float64(cfg.Cells-1))
	if row.Gop < 2*iters-2 || row.Gop > 2*iters+4 {
		t.Errorf("Gop = %v for ~%v iterations", row.Gop, iters)
	}
	// Message size = one grid row.
	if row.MsgSize != float64(cfg.G*8) {
		t.Errorf("msg size = %v, want %v", row.MsgSize, cfg.G*8)
	}
}

func TestBalancedRange(t *testing.T) {
	for _, c := range []struct{ n, np int }{{800, 64}, {10, 4}, {64, 64}, {200, 64}} {
		covered := 0
		for r := 0; r < c.np; r++ {
			lo, hi := balancedRange(c.n, c.np, r)
			covered += hi - lo
			if c.n >= c.np && hi <= lo {
				t.Errorf("n=%d np=%d r=%d empty block", c.n, c.np, r)
			}
			for i := lo; i < hi; i++ {
				if balancedOwner(c.n, c.np, i) != r {
					t.Errorf("owner(%d) != %d", i, r)
				}
			}
		}
		if covered != c.n {
			t.Errorf("n=%d np=%d covered %d", c.n, c.np, covered)
		}
	}
}

func TestCatalogBuildsTestConfigs(t *testing.T) {
	// The catalog itself uses paper sizes (exercised in benches);
	// here we confirm every app constructor validates configs.
	if len(Catalog()) != 8 {
		t.Fatalf("catalog rows = %d", len(Catalog()))
	}
	if _, err := NewEP(EPConfig{Cells: 4, LogPairs: 0}); err == nil {
		t.Error("bad EP config accepted")
	}
	if _, err := NewCG(CGConfig{Cells: 4, N: 2, Band: 1, Outer: 1, Inner: 1}); err == nil {
		t.Error("bad CG config accepted")
	}
	if _, err := NewFT(FTConfig{Cells: 4, Nx: 12, Ny: 8, Nz: 8, Iters: 1}); err == nil {
		t.Error("non-power-of-two FT accepted")
	}
	if _, err := NewSP(SPConfig{Cells: 4, N: 2, Iters: 1}); err == nil {
		t.Error("bad SP config accepted")
	}
	if _, err := NewTomcatv(TomcatvConfig{Cells: 4, N: 2, Iters: 1}); err == nil {
		t.Error("bad TOMCATV config accepted")
	}
	if _, err := NewMatMul(MatMulConfig{Cells: 4, N: 2}); err == nil {
		t.Error("bad MatMul config accepted")
	}
	if _, err := NewSCG(SCGConfig{Cells: 4, G: 2, MaxIter: 1}); err == nil {
		t.Error("bad SCG config accepted")
	}
}
