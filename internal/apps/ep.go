package apps

import (
	"fmt"
	"math"
	"sync"

	"ap1000plus/internal/vpp"
)

// EPConfig configures the NPB EP (embarrassingly parallel) kernel:
// generate 2^LogPairs pairs of uniform deviates with the NPB linear
// congruential generator, transform acceptable pairs to Gaussian
// deviates with the Marsaglia polar method, and tally them into
// annular bins. EP has no communication at all (Table 3's all-zero
// row): verification aggregates the per-cell tallies outside the
// machine.
type EPConfig struct {
	Cells    int
	LogPairs int
}

// PaperEP is the paper's configuration: 2^28 random numbers on 64
// cells.
func PaperEP() EPConfig { return EPConfig{Cells: 64, LogPairs: 28} }

// TestEP is a laptop-scale configuration.
func TestEP() EPConfig { return EPConfig{Cells: 4, LogPairs: 14} }

// epState carries the per-cell results out of the run.
type epState struct {
	mu     sync.Mutex
	sx, sy float64
	counts [10]int64
	pairs  int64
}

// NPB EP linear congruential generator constants: x_{k+1} = a*x_k
// mod 2^46, a = 5^13.
const (
	epA    = 1220703125 // 5^13
	epMod  = 1 << 46
	epSeed = 271828183
)

// lcg46 advances the 46-bit LCG.
func lcg46(x uint64) uint64 {
	return (x * epA) % epMod
}

// lcgSkip jumps the generator ahead by n steps (a^n mod 2^46) so each
// cell owns an independent stream slice, as NPB specifies.
func lcgSkip(x uint64, n uint64) uint64 {
	a := uint64(epA)
	for ; n > 0; n >>= 1 {
		if n&1 == 1 {
			x = (x * a) % epMod
		}
		a = (a * a) % epMod
	}
	return x
}

// NewEP builds an EP instance.
func NewEP(cfg EPConfig) (*Instance, error) {
	if cfg.LogPairs < 1 || cfg.LogPairs > 40 {
		return nil, fmt.Errorf("apps: EP: bad log pairs %d", cfg.LogPairs)
	}
	in, err := newInstance("EP", cfg.Cells, 4<<20)
	if err != nil {
		return nil, err
	}
	total := int64(1) << cfg.LogPairs
	np := int64(in.Machine.Cells())
	st := &epState{}
	in.Program = func(rt *vpp.Runtime) error {
		r := int64(rt.Rank())
		lo := r * total / np
		hi := (r + 1) * total / np
		// Jump to this cell's slice: 2 deviates per pair.
		x := lcgSkip(epSeed, uint64(2*lo))
		var sx, sy float64
		var counts [10]int64
		accepted := int64(0)
		for k := lo; k < hi; k++ {
			x = lcg46(x)
			u1 := 2*float64(x)/float64(epMod) - 1
			x = lcg46(x)
			u2 := 2*float64(x)/float64(epMod) - 1
			t := u1*u1 + u2*u2
			if t <= 1 && t > 0 {
				f := math.Sqrt(-2 * math.Log(t) / t)
				gx, gy := u1*f, u2*f
				sx += gx
				sy += gy
				m := math.Max(math.Abs(gx), math.Abs(gy))
				bin := int(m)
				if bin > 9 {
					bin = 9
				}
				counts[bin]++
				accepted++
			}
		}
		// ~30 ops per pair (2 LCG steps, squares, compare) plus the
		// transform on accepted pairs.
		rt.Compute(opUS(float64(hi-lo)*30) + flopUS(float64(accepted)*20))
		st.mu.Lock()
		st.sx += sx
		st.sy += sy
		for i, c := range counts {
			st.counts[i] += c
		}
		st.pairs += accepted
		st.mu.Unlock()
		return nil
	}
	in.Verify = func() error {
		// The acceptance rate of the polar method is pi/4.
		rate := float64(st.pairs) / float64(total)
		if math.Abs(rate-math.Pi/4) > 0.01 {
			return fmt.Errorf("acceptance rate %v, want ~%v", rate, math.Pi/4)
		}
		// Gaussian sums concentrate near 0 relative to the count.
		if math.Abs(st.sx) > 4*math.Sqrt(float64(st.pairs)) || math.Abs(st.sy) > 4*math.Sqrt(float64(st.pairs)) {
			return fmt.Errorf("gaussian sums off: sx=%v sy=%v n=%d", st.sx, st.sy, st.pairs)
		}
		// Nearly all samples fall in the first few annuli.
		if st.counts[0] == 0 || st.counts[9] > st.counts[0] {
			return fmt.Errorf("annulus counts implausible: %v", st.counts)
		}
		return nil
	}
	return in, nil
}
