package apps

import (
	"ap1000plus/internal/machine"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/topology"
)

// perCellBuf is a buffer of elems float64 allocated identically on
// every cell, with cross-cell addressing — the raw material of the
// C-language applications' PUT/GET usage and of staging areas.
type perCellBuf struct {
	segs []*mem.Segment
	data [][]float64
}

func newPerCellBuf(m *machine.Machine, name string, elems int) (*perCellBuf, error) {
	b := &perCellBuf{}
	for r := 0; r < m.Cells(); r++ {
		seg, data, err := m.Cell(topology.CellID(r)).AllocFloat64(name, elems)
		if err != nil {
			return nil, err
		}
		b.segs = append(b.segs, seg)
		b.data = append(b.data, data)
	}
	return b, nil
}

// addr returns the address of element idx on rank r.
func (b *perCellBuf) addr(r, idx int) mem.Addr {
	return b.segs[r].Base() + mem.Addr(idx*8)
}

// slice returns rank r's backing data.
func (b *perCellBuf) slice(r int) []float64 { return b.data[r] }

// balancedRange splits n items over np ranks with sizes differing by
// at most one (never empty while n >= np): rank r owns [lo, hi).
func balancedRange(n, np, r int) (lo, hi int) {
	return r * n / np, (r + 1) * n / np
}

// balancedOwner finds the rank owning item i under balancedRange.
func balancedOwner(n, np, i int) int {
	r := i * np / n
	for i >= (r+1)*n/np {
		r++
	}
	for i < r*n/np {
		r--
	}
	return r
}
