package apps

import "fmt"

// pentaCoeffs are the constant pentadiagonal coefficients of the
// model operator: (cm2, cm1, c0, cp1, cp2) with strong diagonal
// dominance so the factorization is stable without pivoting.
var pentaCoeffs = [5]float64{-0.5, -1, 6, -1, -0.5}

// pentaSolve solves the constant-coefficient pentadiagonal system
// in place on rhs (length n), using scratch of at least 3n floats.
// It is the line solver of the SP kernel (one solve per grid line per
// direction).
func pentaSolve(rhs []float64, n int, scratch []float64) {
	if n < 1 {
		return
	}
	if len(scratch) < 3*n {
		panic(fmt.Sprintf("apps: pentaSolve scratch %d < %d", len(scratch), 3*n))
	}
	cm2, cm1, c0, cp1, cp2 := pentaCoeffs[0], pentaCoeffs[1], pentaCoeffs[2], pentaCoeffs[3], pentaCoeffs[4]
	// Gaussian elimination on the band, keeping the two
	// super-diagonals (u1, u2) and the pivot (d) per row.
	d := scratch[0:n]
	u1 := scratch[n : 2*n]
	u2 := scratch[2*n : 3*n]
	for i := 0; i < n; i++ {
		di := c0
		e1 := cp1
		e2 := cp2
		b := rhs[i]
		// Eliminate the contribution of rows i-1 and i-2.
		if i >= 1 {
			m1 := cm1
			if i >= 2 {
				// Row i's cm2 term was partially folded below.
				m2 := cm2 / d[i-2]
				m1 -= m2 * u1[i-2]
				di -= m2 * u2[i-2]
				b -= m2 * rhs[i-2]
			}
			f := m1 / d[i-1]
			di -= f * u1[i-1]
			e1 -= f * u2[i-1]
			b -= f * rhs[i-1]
		}
		d[i] = di
		u1[i] = e1
		u2[i] = e2
		rhs[i] = b
	}
	// Back substitution.
	if n >= 1 {
		rhs[n-1] /= d[n-1]
	}
	if n >= 2 {
		rhs[n-2] = (rhs[n-2] - u1[n-2]*rhs[n-1]) / d[n-2]
	}
	for i := n - 3; i >= 0; i-- {
		rhs[i] = (rhs[i] - u1[i]*rhs[i+1] - u2[i]*rhs[i+2]) / d[i]
	}
}

// pentaApply computes y = A x for the model pentadiagonal operator,
// for testing the solver.
func pentaApply(x []float64, n int) []float64 {
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := pentaCoeffs[2] * x[i]
		if i >= 1 {
			s += pentaCoeffs[1] * x[i-1]
		}
		if i >= 2 {
			s += pentaCoeffs[0] * x[i-2]
		}
		if i+1 < n {
			s += pentaCoeffs[3] * x[i+1]
		}
		if i+2 < n {
			s += pentaCoeffs[4] * x[i+2]
		}
		y[i] = s
	}
	return y
}
