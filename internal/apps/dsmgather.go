package apps

import (
	"fmt"
	"math"

	"ap1000plus/internal/dsm"
	"ap1000plus/internal/topology"
	"ap1000plus/internal/vpp"
)

// DSMGatherConfig configures the DSM gather kernel: every cell owns a
// table of Entries float64 values in its shared-space block, and every
// cell repeatedly gathers pseudo-random entries from every other
// cell's table through the DSM LOAD path — the access pattern the
// write-through page cache exists for (S4.2). With Cache set the
// loads fill the coherent page cache (bounded to CachePages pages);
// without it every load is a blocking remote load. With Updates set,
// one owner per pass rewrites one of its own entries between gather
// rounds, exercising the directory invalidation path: cached and
// uncached runs must still agree bit-for-bit.
type DSMGatherConfig struct {
	Cells   int
	Entries int // table entries per cell
	Passes  int // gather rounds; repeated rounds re-read the same indices
	Reads   int // loads per remote peer per pass
	Updates bool
	Cache   bool
	// CachePages bounds the page cache; 0 keeps the DSM default.
	CachePages int
}

// TestDSMGather is a laptop-scale configuration exercising hits,
// misses and invalidations.
func TestDSMGather() DSMGatherConfig {
	return DSMGatherConfig{Cells: 4, Entries: 96, Passes: 6, Reads: 24,
		Updates: true, Cache: true, CachePages: 8}
}

// gatherSeq is a 64-bit LCG (Knuth's MMIX constants); each pass
// re-seeds it identically so later passes re-read the indices earlier
// passes fetched — the temporal locality the page cache converts into
// hits.
type gatherSeq uint64

func (s *gatherSeq) next() uint64 {
	*s = *s*6364136223846793005 + 1442695040888963407
	return uint64(*s >> 16)
}

// gatherElem is the initial value of entry i on owner o.
func gatherElem(o, i int) float64 {
	return math.Sin(float64(o*131+i)*0.01) + 0.25
}

// NewDSMGather builds a DSM gather instance. It is not part of the
// paper's Table 2/3 catalog; it exists to drive the DSM page cache
// (apbench -experiment dsmcache runs it cached and uncached).
func NewDSMGather(cfg DSMGatherConfig) (*Instance, error) {
	if cfg.Cells < 2 {
		return nil, fmt.Errorf("apps: DSMGather: need at least 2 cells, have %d", cfg.Cells)
	}
	if cfg.Entries < 1 || cfg.Passes < 1 || cfg.Reads < 1 {
		return nil, fmt.Errorf("apps: DSMGather: Entries, Passes and Reads must be positive")
	}
	in, err := newInstance("DSMGather", cfg.Cells, 8<<20)
	if err != nil {
		return nil, err
	}
	m := in.Machine
	np := m.Cells()

	tab, err := newPerCellBuf(m, "gather.table", cfg.Entries)
	if err != nil {
		return nil, err
	}
	ds := make([]*dsm.DSM, np)
	for r := 0; r < np; r++ {
		d, err := dsm.New(m.Cell(topology.CellID(r)))
		if err != nil {
			return nil, err
		}
		if cfg.Cache {
			d.EnableWriteThroughPages()
			if cfg.CachePages > 0 {
				d.SetCacheCapacity(cfg.CachePages)
			}
		}
		ds[r] = d
	}

	// seed derives the per-peer index stream; identical in Program and
	// Verify.
	seed := func(o int) gatherSeq { return gatherSeq(uint64(o)*2654435761 + 12345) }
	// value models what entry idx of owner o holds during pass p: with
	// updates on, owner o rewrote its entry q at the end of pass q for
	// every q < p with q%np == o.
	value := func(o, idx, p int) float64 {
		v := gatherElem(o, idx)
		if cfg.Updates && idx < p && idx%np == o {
			v += float64(idx + 1)
		}
		return v
	}

	sums := make([]float64, np)
	in.Program = func(rt *vpp.Runtime) error {
		r := rt.Rank()
		d := ds[r]
		mine := tab.slice(r)
		for i := range mine {
			mine[i] = gatherElem(r, i)
		}
		rt.Barrier()
		acc := 0.0
		for p := 0; p < cfg.Passes; p++ {
			for o := 0; o < np; o++ {
				if o == r {
					continue
				}
				seq := seed(o)
				for k := 0; k < cfg.Reads; k++ {
					idx := int(seq.next() % uint64(cfg.Entries))
					ga, err := d.Space().Global(topology.CellID(o), tab.addr(o, idx))
					if err != nil {
						return err
					}
					v, err := d.LoadF64(ga)
					if err != nil {
						return err
					}
					acc += v * float64(p+1)
				}
			}
			if cfg.Updates {
				// Separate every cell's gathers from this pass's update:
				// without this barrier a slow reader could observe the
				// update mid-pass.
				rt.Barrier()
			}
			if cfg.Updates && p%np == r && p < cfg.Entries {
				gaw, err := d.Space().Global(topology.CellID(r), tab.addr(r, p))
				if err != nil {
					return err
				}
				// A local store to our own block still fans out
				// invalidations to every sharer before it returns.
				if err := d.StoreF64(gaw, gatherElem(r, p)+float64(p+1)); err != nil {
					return err
				}
				d.Fence()
			}
			// The pass barrier orders this pass's update before the next
			// pass's gathers on every cell.
			rt.Barrier()
		}
		sums[r] = acc
		return nil
	}
	in.Verify = func() error {
		for r := 0; r < np; r++ {
			want := 0.0
			for p := 0; p < cfg.Passes; p++ {
				for o := 0; o < np; o++ {
					if o == r {
						continue
					}
					seq := seed(o)
					for k := 0; k < cfg.Reads; k++ {
						idx := int(seq.next() % uint64(cfg.Entries))
						want += value(o, idx, p) * float64(p+1)
					}
				}
			}
			if math.Abs(sums[r]-want) > 1e-9*math.Max(1, math.Abs(want)) {
				return fmt.Errorf("rank %d gathered %g, want %g", r, sums[r], want)
			}
		}
		return nil
	}
	return in, nil
}
