package apps

import (
	"fmt"

	"ap1000plus/internal/vpp"
)

// PGASToposortConfig sizes the bale toposort kernel: a unit upper
// triangular matrix is hidden behind random row/column permutations,
// and the cells recover a triangular ordering level by level — each
// round, rows with exactly one un-eliminated nonzero claim a pivot,
// publish it at a position assigned by an exclusive scan, and
// broadcast decrements through the pivot column. The remaining-column
// identity is tracked with the classic counter/sum pair: when a row's
// count hits one, the remaining column id IS the remaining sum.
type PGASToposortConfig struct {
	// Cells is the machine size.
	Cells int
	// N is the matrix dimension.
	N int64
	// Extra is the number of extra nonzeros per row above the
	// diagonal (row i gets min(Extra, N-1-i)).
	Extra int
	// Mode selects naive or aggregated issue.
	Mode PGASMode
	// Packets is the aggregated-mode region capacity (0 = default).
	Packets int
	// Seed parameterizes the matrix and the permutations.
	Seed uint64
	// Snapshot, when non-nil, receives rperm ++ cperm after Verify —
	// bit-identical across modes and fault plans by construction.
	Snapshot *[]int64
}

// toposortMatrix builds the permuted triangular instance: the
// permuted nonzero structure as row lists, plus the replicated column
// lists every pivot claimer needs.
func toposortMatrix(cfg PGASToposortConfig) (rowCols, colRows [][]int64) {
	seq := pgasSeq(cfg.Seed ^ 0x70b0)
	perm := func() []int64 {
		p := make([]int64, cfg.N)
		for i := range p {
			p[i] = int64(i)
		}
		for i := cfg.N - 1; i > 0; i-- {
			j := int64(seq() % uint64(i+1))
			p[i], p[j] = p[j], p[i]
		}
		return p
	}
	rp, cp := perm(), perm()
	rowCols = make([][]int64, cfg.N)
	colRows = make([][]int64, cfg.N)
	for i := int64(0); i < cfg.N; i++ {
		cols := map[int64]bool{i: true}
		for extra := 0; extra < cfg.Extra && int64(len(cols)) < cfg.N-i; {
			c := i + 1 + int64(seq()%uint64(cfg.N-i))
			if c < cfg.N && !cols[c] {
				cols[c] = true
				extra++
			}
		}
		r := rp[i]
		for c := range cols {
			pc := cp[c]
			rowCols[r] = append(rowCols[r], pc)
			colRows[pc] = append(colRows[pc], r)
		}
	}
	return rowCols, colRows
}

// toposortReference runs the level-synchronous claim order
// sequentially: per level, candidate rows are claimed grouped by
// owning cell (rank order), ascending row within a cell — exactly the
// machine's deterministic order.
func toposortReference(cfg PGASToposortConfig, rowCols [][]int64, colRows [][]int64) (rperm, cperm []int64, err error) {
	cnt := make([]int64, cfg.N)
	sum := make([]int64, cfg.N)
	done := make([]bool, cfg.N)
	for r := int64(0); r < cfg.N; r++ {
		cnt[r] = int64(len(rowCols[r]))
		for _, c := range rowCols[r] {
			sum[r] += c
		}
	}
	np := int64(cfg.Cells)
	for int64(len(rperm)) < cfg.N {
		var rows, cols []int64
		for rank := int64(0); rank < np; rank++ {
			for r := rank; r < cfg.N; r += np {
				if !done[r] && cnt[r] == 1 {
					rows, cols = append(rows, r), append(cols, sum[r])
					done[r] = true
				}
			}
		}
		if len(rows) == 0 {
			return nil, nil, fmt.Errorf("toposort reference stuck at %d of %d pivots", len(rperm), cfg.N)
		}
		for k, c := range cols {
			for _, r2 := range colRows[c] {
				cnt[r2]--
				sum[r2] -= c
			}
			rperm, cperm = append(rperm, rows[k]), append(cperm, c)
		}
	}
	return rperm, cperm, nil
}

// NewPGASToposort builds a toposort instance.
func NewPGASToposort(cfg PGASToposortConfig) (*Instance, error) {
	if cfg.N <= 0 || cfg.Extra < 0 {
		return nil, fmt.Errorf("apps: PGAS-TS: bad config %+v", cfg)
	}
	in, err := newInstance("PGAS-TS "+cfg.Mode.String(), cfg.Cells, 0)
	if err != nil {
		return nil, err
	}
	rig, err := newPGASRig(in, cfg.Mode, cfg.Packets)
	if err != nil {
		return nil, err
	}
	rowCols, colRows := toposortMatrix(cfg)
	rowcnt, err := rig.heap.Alloc("ts.rowcnt", cfg.N)
	if err != nil {
		return nil, err
	}
	rowsum, err := rig.heap.Alloc("ts.rowsum", cfg.N)
	if err != nil {
		return nil, err
	}
	rperm, err := rig.heap.Alloc("ts.rperm", cfg.N)
	if err != nil {
		return nil, err
	}
	cperm, err := rig.heap.Alloc("ts.cperm", cfg.N)
	if err != nil {
		return nil, err
	}
	for r := int64(0); r < cfg.N; r++ {
		rowcnt.SetWord(r, int64(len(rowCols[r])))
		var s int64
		for _, c := range rowCols[r] {
			s += c
		}
		rowsum.SetWord(r, s)
	}
	np := int64(cfg.Cells)
	in.Program = func(rt *vpp.Runtime) error {
		me := int64(rt.Rank())
		pe := rig.pes[me]
		agg := rig.aggs
		done := make(map[int64]bool)
		pos := int64(0)
		claimed := int64(0)
		for claimed < cfg.N {
			// My new pivots, ascending row order: a count of one means
			// the remaining sum is the remaining column.
			var rows, cols []int64
			for r := me; r < cfg.N; r += np {
				if done[r] {
					continue
				}
				c, err := pe.GetInt64(rowcnt, r) // owner-local read
				if err != nil {
					return err
				}
				if c == 1 {
					s, err := pe.GetInt64(rowsum, r)
					if err != nil {
						return err
					}
					rows, cols = append(rows, r), append(cols, s)
					done[r] = true
				}
			}
			prefix, total, err := pe.ScanAddInt64(int64(len(rows)))
			if err != nil {
				return err
			}
			if total == 0 {
				return fmt.Errorf("toposort stuck on cell %d: %d of %d pivots", me, claimed, cfg.N)
			}
			for k := range rows {
				p := pos + prefix + int64(k)
				r, c := rows[k], cols[k]
				if agg != nil {
					a := agg[me]
					if err := a.Put(rperm, p, r); err != nil {
						return err
					}
					if err := a.Put(cperm, p, c); err != nil {
						return err
					}
					for _, r2 := range colRows[c] {
						if err := a.Add(rowcnt, r2, -1); err != nil {
							return err
						}
						if err := a.Add(rowsum, r2, -c); err != nil {
							return err
						}
					}
					continue
				}
				if err := pe.PutInt64(rperm, p, r); err != nil {
					return err
				}
				if err := pe.PutInt64(cperm, p, c); err != nil {
					return err
				}
				for _, r2 := range colRows[c] {
					if err := pe.AtomicAdd(rowcnt, r2, -1); err != nil {
						return err
					}
					if err := pe.AtomicAdd(rowsum, r2, -c); err != nil {
						return err
					}
				}
			}
			if err := rig.finish(int(me)); err != nil {
				return err
			}
			pos += total
			claimed += total
		}
		return nil
	}
	in.Verify = func() error {
		wantR, wantC, err := toposortReference(cfg, rowCols, colRows)
		if err != nil {
			return err
		}
		var snap []int64
		for k := int64(0); k < cfg.N; k++ {
			if got := rperm.Word(k); got != wantR[k] {
				return fmt.Errorf("rperm[%d] = %d, want %d", k, got, wantR[k])
			}
			if got := cperm.Word(k); got != wantC[k] {
				return fmt.Errorf("cperm[%d] = %d, want %d", k, got, wantC[k])
			}
		}
		// Validity: both sequences are permutations and every pivot is
		// a nonzero of the matrix.
		seenR := make([]bool, cfg.N)
		seenC := make([]bool, cfg.N)
		for k := int64(0); k < cfg.N; k++ {
			r, c := rperm.Word(k), cperm.Word(k)
			if r < 0 || r >= cfg.N || c < 0 || c >= cfg.N || seenR[r] || seenC[c] {
				return fmt.Errorf("pivot %d (%d,%d) breaks the permutation", k, r, c)
			}
			seenR[r], seenC[c] = true, true
			hit := false
			for _, cc := range rowCols[r] {
				hit = hit || cc == c
			}
			if !hit {
				return fmt.Errorf("pivot %d (%d,%d) is not a nonzero", k, r, c)
			}
			snap = append(snap, r)
		}
		for k := int64(0); k < cfg.N; k++ {
			snap = append(snap, cperm.Word(k))
		}
		if cfg.Snapshot != nil {
			*cfg.Snapshot = snap
		}
		return nil
	}
	return in, nil
}
