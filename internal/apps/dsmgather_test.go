package apps

import "testing"

// TestDSMGatherCachedMatchesUncached runs the gather kernel with and
// without the page cache. Verify() holds both times (the numerics are
// modelled analytically), the cached run must actually hit the cache,
// and every invalidation the owners sent must have been applied.
func TestDSMGatherCachedMatchesUncached(t *testing.T) {
	obsWas := Observe
	Observe = true
	defer func() { Observe = obsWas }()

	cfg := TestDSMGather()
	cached, err := NewDSMGather(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cached.Run(); err != nil {
		t.Fatal(err)
	}
	tot := cached.Machine.Metrics()
	ct := tot.Totals()
	if ct.DSMHits == 0 {
		t.Error("cached gather never hit the page cache")
	}
	if ct.DSMInvalsSent == 0 {
		t.Error("updates sent no invalidations")
	}
	if ct.DSMInvalsSent != ct.DSMInvalsRecv {
		t.Errorf("invalidations sent=%d received=%d, want equal", ct.DSMInvalsSent, ct.DSMInvalsRecv)
	}

	cfg.Cache = false
	uncached, err := NewDSMGather(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := uncached.Run(); err != nil {
		t.Fatal(err)
	}
	umt := uncached.Machine.Metrics()
	ut := umt.Totals()
	if ut.DSMHits != 0 || ut.DSMInvalsSent != 0 {
		t.Errorf("uncached gather touched the cache: hits=%d invals=%d", ut.DSMHits, ut.DSMInvalsSent)
	}
	// The cached run replaces most remote loads with local hits.
	if ct.RemoteLoad >= ut.RemoteLoad {
		t.Errorf("cached run issued %d remote loads, uncached %d; cache saved nothing",
			ct.RemoteLoad, ut.RemoteLoad)
	}
}
