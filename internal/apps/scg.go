package apps

import (
	"fmt"
	"math"
	"sync"

	"ap1000plus/internal/core"
	"ap1000plus/internal/topology"
	"ap1000plus/internal/vpp"
)

// SCGConfig configures the C-language SCG application: Poisson's
// equation solved with the scaled (diagonally preconditioned)
// conjugate gradient method on a G x G five-point grid — a sparse
// G^2 x G^2 system (40000 unknowns for G=200 in the paper). The grid
// is row-block distributed. Each iteration halos TWO arrays — the
// search vector p for the A*p product and the solution x for the
// explicit residual recomputation r = b - A*x (residual replacement,
// which keeps long CG runs numerically honest) — sending the upward
// halos with direct PUTs and the downward halos through SEND/RECEIVE,
// plus two scalar global sums. Run to convergence (~446 iterations on
// the paper grid) this lands on Table 3's SCG row: ~878 PUTs and
// SENDs of G*8 = 1600 bytes and ~893 Gops with a single barrier.
type SCGConfig struct {
	Cells   int
	G       int // grid edge; unknowns = G*G (200 -> 40000 in the paper)
	MaxIter int
	Tol     float64
}

// PaperSCG is the paper's configuration: a 40000 x 40000 sparse
// system on 64 cells.
func PaperSCG() SCGConfig { return SCGConfig{Cells: 64, G: 200, MaxIter: 1500, Tol: 2e-11} }

// TestSCG is a laptop-scale configuration.
func TestSCG() SCGConfig { return SCGConfig{Cells: 4, G: 24, MaxIter: 200, Tol: 1e-10} }

// NewSCG builds an SCG instance.
func NewSCG(cfg SCGConfig) (*Instance, error) {
	if cfg.G < cfg.Cells || cfg.MaxIter < 1 {
		return nil, fmt.Errorf("apps: SCG: bad config %+v", cfg)
	}
	in, err := newInstance("SCG", cfg.Cells, 32<<20)
	if err != nil {
		return nil, err
	}
	m := in.Machine
	np := m.Cells()
	g := cfg.G

	// Row-block decomposition of the G x G grid. Every cell stores
	// its rows of p and x plus one halo row above and below each.
	rowsMax := vpp.BlockSize(g, np)
	p, err := newPerCellBuf(m, "scg.p", (rowsMax+2)*g)
	if err != nil {
		return nil, err
	}
	xsol, err := newPerCellBuf(m, "scg.x", (rowsMax+2)*g)
	if err != nil {
		return nil, err
	}
	var finalRes sync.Map

	in.Program = func(rt *vpp.Runtime) error {
		r := rt.Rank()
		lo, hi := balancedRange(g, np, r)
		rows := hi - lo
		ps := p.slice(r)    // [halo-above | rows | halo-below], each row g wide
		xs := xsol.slice(r) // same layout
		rres := make([]float64, rows*g)
		q := make([]float64, rows*g)
		diag := 4.0

		// b = A * ones (interior-truncated 5-point operator), so the
		// solution is all-ones; scaled CG preconditions by 1/diag.
		bAt := func(gr, gc int) float64 {
			b := diag
			if gr > 0 {
				b -= 1
			}
			if gr < g-1 {
				b -= 1
			}
			if gc > 0 {
				b -= 1
			}
			if gc < g-1 {
				b -= 1
			}
			return b
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < g; j++ {
				rres[i*g+j] = bAt(lo+i, j)
				ps[(1+i)*g+j] = rres[i*g+j] / diag // p = z = M^-1 r
			}
		}
		rhoLocal := 0.0
		for i := 0; i < rows; i++ {
			for j := 0; j < g; j++ {
				rhoLocal += rres[i*g+j] * rres[i*g+j] / diag
			}
		}
		rt.Compute(flopUS(float64(3 * rows * g)))
		rho := rt.GlobalSum(rhoLocal)

		// The single barrier of Table 3's SCG row: after it the loop
		// synchronizes purely through flags and reductions.
		rt.Barrier()

		haloFlag := rt.Cell().Flags.Alloc()
		haloRecv := int64(0)
		// exchange halos a buffer laid out [halo | rows | halo]:
		// upward via PUT, downward via SEND/RECEIVE (the C code's
		// mixed usage that gives SCG equal PUT and SEND counts).
		exchange := func(buf *perCellBuf) error {
			if r < np-1 {
				if err := rt.Comm.Put(core.Transfer{
					To:     topology.CellID(r + 1),
					Remote: buf.addr(r+1, 0), Local: buf.addr(r, rows*g),
					Size: int64(g) * 8, RecvFlag: haloFlag, Ack: true,
				}); err != nil {
					return err
				}
			}
			if r > 0 {
				if err := rt.EP.Send(topology.CellID(r-1), buf.addr(r, g), int64(g)*8, false); err != nil {
					return err
				}
			}
			if r > 0 {
				haloRecv++
				rt.Comm.WaitFlag(haloFlag, haloRecv)
			}
			if r < np-1 {
				if _, err := rt.EP.Recv(topology.CellID(r+1), buf.addr(r, (rows+1)*g), int64(g)*8); err != nil {
					return err
				}
			}
			rt.Comm.AckWait()
			return nil
		}
		iters := 0
		for iter := 0; iter < cfg.MaxIter; iter++ {
			iters = iter + 1
			if err := exchange(p); err != nil {
				return err
			}

			// q = A p over owned rows (5-point stencil; halo rows
			// supply the off-block terms).
			pAt := func(i, j int) float64 {
				// i in halo coordinates: -1..rows; global row lo+i.
				gr := lo + i
				if gr < 0 || gr >= g || j < 0 || j >= g {
					return 0
				}
				return ps[(1+i)*g+j]
			}
			pq := 0.0
			for i := 0; i < rows; i++ {
				for j := 0; j < g; j++ {
					v := diag*pAt(i, j) - pAt(i-1, j) - pAt(i+1, j) - pAt(i, j-1) - pAt(i, j+1)
					q[i*g+j] = v
					pq += pAt(i, j) * v
				}
			}
			rt.Compute(flopUS(float64(11 * rows * g)))
			pq = rt.GlobalSum(pq)
			alpha := rho / pq

			for i := 0; i < rows; i++ {
				for j := 0; j < g; j++ {
					xs[(1+i)*g+j] += alpha * ps[(1+i)*g+j]
				}
			}
			rt.Compute(flopUS(float64(2 * rows * g)))
			// Residual replacement: recompute r = b - A*x explicitly,
			// which needs x's halo — the second PUT/SEND pair of each
			// iteration.
			if err := exchange(xsol); err != nil {
				return err
			}
			xAt := func(i, j int) float64 {
				gr := lo + i
				if gr < 0 || gr >= g || j < 0 || j >= g {
					return 0
				}
				return xs[(1+i)*g+j]
			}
			rzLocal := 0.0
			for i := 0; i < rows; i++ {
				for j := 0; j < g; j++ {
					ax := diag*xAt(i, j) - xAt(i-1, j) - xAt(i+1, j) - xAt(i, j-1) - xAt(i, j+1)
					rres[i*g+j] = bAt(lo+i, j) - ax
					rzLocal += rres[i*g+j] * rres[i*g+j] / diag
				}
			}
			rt.Compute(flopUS(float64(12 * rows * g)))
			rhoNew := rt.GlobalSum(rzLocal)
			if math.Sqrt(rhoNew) < cfg.Tol {
				rho = rhoNew
				break
			}
			beta := rhoNew / rho
			rho = rhoNew
			for i := 0; i < rows; i++ {
				for j := 0; j < g; j++ {
					ps[(1+i)*g+j] = rres[i*g+j]/diag + beta*ps[(1+i)*g+j]
				}
			}
			rt.Compute(flopUS(float64(3 * rows * g)))
		}
		finalRes.Store(r, [2]float64{math.Sqrt(rho), float64(iters)})
		return nil
	}
	in.Verify = func() error {
		var res float64
		count := 0
		finalRes.Range(func(_, v any) bool {
			res = v.([2]float64)[0]
			count++
			return true
		})
		if count != np {
			return fmt.Errorf("missing results: %d of %d", count, np)
		}
		if res > 1e-6 {
			return fmt.Errorf("SCG residual %g did not converge", res)
		}
		// Solution must be ~all-ones.
		for r := 0; r < np; r++ {
			lo, hi := balancedRange(g, np, r)
			xs := xsol.slice(r)
			for i := 0; i < (hi-lo)*g; i++ {
				if math.Abs(xs[g+i]-1) > 1e-3 {
					return fmt.Errorf("SCG x[%d] on cell %d = %g, want 1", i, r, xs[g+i])
				}
			}
		}
		return nil
	}
	return in, nil
}
