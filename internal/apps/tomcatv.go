package apps

import (
	"fmt"
	"math"
	"sync"

	"ap1000plus/internal/core"
	"ap1000plus/internal/topology"
	"ap1000plus/internal/vpp"
)

// TomcatvConfig configures the SPEC TOMCATV mesh-generation kernel:
// an iterative smoother over two N x N coordinate arrays X and Y,
// column-block distributed over the cells (Figure 2's layout).
//
// Per iteration:
//   - the X and Y boundary columns are pushed to the neighbours'
//     overlap areas — one stride PUT per column with Stride on (the
//     2056-byte PUTS of Table 3's "TC st" row for N=257), or N
//     8-byte PUTs with Stride off ("TC no st": x257 messages of
//     size/257);
//   - the residual edge columns RX and RY are packed contiguously and
//     fetched by the neighbours with plain GETs (the contiguous GET
//     column of Table 3);
//   - the maximum residuals are reduced with two scalar global
//     operations (Gop 2/iteration);
//   - a tridiagonal-style relaxation updates the interior.
type TomcatvConfig struct {
	Cells  int
	N      int // grid edge (257 in the paper)
	Iters  int // 10 simulated iterations in the paper
	Stride bool
}

// PaperTomcatv is the paper's configuration: 257 x 257, 10
// iterations, 16 cells.
func PaperTomcatv(stride bool) TomcatvConfig {
	return TomcatvConfig{Cells: 16, N: 257, Iters: 10, Stride: stride}
}

// TestTomcatv is a laptop-scale configuration.
func TestTomcatv(stride bool) TomcatvConfig {
	return TomcatvConfig{Cells: 4, N: 33, Iters: 3, Stride: stride}
}

// NewTomcatv builds a TOMCATV instance.
func NewTomcatv(cfg TomcatvConfig) (*Instance, error) {
	if cfg.N < 5 || cfg.Iters < 1 {
		return nil, fmt.Errorf("apps: TOMCATV: bad config %+v", cfg)
	}
	name := "TC st"
	if !cfg.Stride {
		name = "TC no st"
	}
	in, err := newInstance(name, cfg.Cells, 32<<20)
	if err != nil {
		return nil, err
	}
	m := in.Machine
	np := m.Cells()
	n := cfg.N

	x, err := vpp.NewArray2D(m, "tc.x", n, n, 1)
	if err != nil {
		return nil, err
	}
	y, err := vpp.NewArray2D(m, "tc.y", n, n, 1)
	if err != nil {
		return nil, err
	}
	// Packed edge buffers for RX/RY: [left RX | right RX | left RY |
	// right RY], each n elements, published for neighbours to GET.
	edges, err := newPerCellBuf(m, "tc.edges", 4*n)
	if err != nil {
		return nil, err
	}
	// Landing area for fetched edges: [RX from left | RX from right |
	// RY from left | RY from right].
	inbox, err := newPerCellBuf(m, "tc.inbox", 4*n)
	if err != nil {
		return nil, err
	}

	var resHistory sync.Map // iter -> max residual (stored by rank 0)

	in.Program = func(rt *vpp.Runtime) error {
		r := rt.Rank()
		lo, hi := x.OwnedCols(r)
		own := hi - lo
		w := x.LocalWidth()
		xl := x.Local(r)
		yl := y.Local(r)
		rx := make([]float64, n*w)
		ry := make([]float64, n*w)

		// Initial mesh: a stretched grid with a high-frequency wrinkle
		// (the wrinkle is what a few smoother iterations remove; the
		// smooth mode decays only over O(n^2) iterations).
		for row := 0; row < n; row++ {
			for j := lo; j < hi; j++ {
				c := x.LocalCol(r, j)
				u := float64(row) / float64(n-1)
				v := float64(j) / float64(n-1)
				chk := float64(((row+j)&1)*2 - 1) // checkerboard
				if row == 0 || row == n-1 || j == 0 || j == n-1 {
					chk = 0 // keep the boundary exact
				}
				base := 0.1 * math.Sin(math.Pi*u) * math.Sin(math.Pi*v)
				xl[row*w+c] = v + base + 0.01*chk
				yl[row*w+c] = u + base + 0.01*chk
			}
		}

		getFlag := rt.Cell().Flags.Alloc()
		gets := int64(0)

		for iter := 0; iter < cfg.Iters; iter++ {
			// Phase 1: refresh X and Y overlap columns.
			if err := rt.OverlapFix2D(x, cfg.Stride); err != nil {
				return err
			}
			if err := rt.OverlapFix2D(y, cfg.Stride); err != nil {
				return err
			}

			// Phase 2: residuals over owned interior columns, using
			// the freshly exchanged shadow columns.
			rxm, rym := 0.0, 0.0
			for row := 1; row < n-1; row++ {
				for j := lo; j < hi; j++ {
					if j == 0 || j == n-1 {
						continue
					}
					c := x.LocalCol(r, j)
					lapX := xl[row*w+c-1] + xl[row*w+c+1] + xl[(row-1)*w+c] + xl[(row+1)*w+c] - 4*xl[row*w+c]
					lapY := yl[row*w+c-1] + yl[row*w+c+1] + yl[(row-1)*w+c] + yl[(row+1)*w+c] - 4*yl[row*w+c]
					rx[row*w+c] = lapX
					ry[row*w+c] = lapY
					if a := math.Abs(lapX); a > rxm {
						rxm = a
					}
					if a := math.Abs(lapY); a > rym {
						rym = a
					}
				}
			}
			rt.Compute(flopUS(float64(14 * (n - 2) * own)))
			rt.Barrier() // residuals complete

			// Phase 3: the two scalar global reductions (max
			// residuals) of each TOMCATV iteration.
			rxm = rt.GlobalMax(rxm)
			rym = rt.GlobalMax(rym)
			if r == 0 {
				resHistory.Store(iter, math.Max(rxm, rym))
			}
			rt.Barrier() // reductions consumed

			// Phase 4: publish packed residual edge columns; the
			// neighbours GET them (contiguous both sides).
			ed := edges.slice(r)
			cl := x.LocalCol(r, lo)
			cr := x.LocalCol(r, hi-1)
			for row := 0; row < n; row++ {
				ed[row] = rx[row*w+cl]
				ed[n+row] = rx[row*w+cr]
				ed[2*n+row] = ry[row*w+cl]
				ed[3*n+row] = ry[row*w+cr]
			}
			rt.Barrier() // edges published everywhere
			// Fetch neighbour residual edges. With stride hardware the
			// packed edge moves as one contiguous GET; without it the
			// run-time system falls back to one 8-byte GET per row,
			// multiplying the GET count by N exactly as the PUTs
			// (Table 3's TC no st row).
			fetch := func(peer topology.CellID, srcOff, dstOff int) error {
				if cfg.Stride {
					gets++
					return rt.Comm.Get(core.Transfer{
						To: peer, Remote: edges.addr(int(peer), srcOff), Local: inbox.addr(r, dstOff),
						Size: int64(n) * 8, RecvFlag: getFlag,
					})
				}
				for row := 0; row < n; row++ {
					gets++
					if err := rt.Comm.Get(core.Transfer{
						To: peer, Remote: edges.addr(int(peer), srcOff+row), Local: inbox.addr(r, dstOff+row),
						Size: 8, RecvFlag: getFlag,
					}); err != nil {
						return err
					}
				}
				return nil
			}
			if r > 0 {
				// The left neighbour's RIGHT edges.
				if err := fetch(topology.CellID(r-1), n, 0); err != nil {
					return err
				}
				if err := fetch(topology.CellID(r-1), 3*n, 2*n); err != nil {
					return err
				}
			}
			if r < np-1 {
				if err := fetch(topology.CellID(r+1), 0, n); err != nil {
					return err
				}
				if err := fetch(topology.CellID(r+1), 2*n, 3*n); err != nil {
					return err
				}
			}
			rt.Comm.WaitFlag(getFlag, gets)
			rt.Barrier() // all fetches complete before edges reused

			// Phase 5: relaxation update using residuals, with the
			// fetched neighbour residual edges smoothing the block
			// boundaries.
			ib := inbox.slice(r)
			// omega=1/8 makes the damped-Jacobi update contractive for
			// the 5-point Laplacian (spectral radius 8) and kills the
			// checkerboard mode in a single sweep.
			const omega = 0.125
			for row := 1; row < n-1; row++ {
				for j := lo; j < hi; j++ {
					if j == 0 || j == n-1 {
						continue
					}
					c := x.LocalCol(r, j)
					dx := rx[row*w+c]
					dy := ry[row*w+c]
					if j == lo && r > 0 {
						dx = 0.5 * (dx + ib[row])
						dy = 0.5 * (dy + ib[2*n+row])
					}
					if j == hi-1 && r < np-1 {
						dx = 0.5 * (dx + ib[n+row])
						dy = 0.5 * (dy + ib[3*n+row])
					}
					xl[row*w+c] += omega * dx
					yl[row*w+c] += omega * dy
				}
			}
			rt.Compute(flopUS(float64(8 * (n - 2) * own)))
			rt.Barrier() // update visible
			rt.Barrier() // iteration boundary (the compiler's loop barrier)
		}
		return nil
	}
	in.Verify = func() error {
		// The smoother must reduce the mesh residual: damped Jacobi
		// on a Laplacian converges, allowing small local wiggles in
		// the max norm.
		var first, last, prev float64
		prev = math.Inf(1)
		for iter := 0; iter < cfg.Iters; iter++ {
			v, ok := resHistory.Load(iter)
			if !ok {
				return fmt.Errorf("missing residual for iteration %d", iter)
			}
			res := v.(float64)
			if math.IsNaN(res) || res > prev*1.1 {
				return fmt.Errorf("residual diverging: iter %d: %g (prev %g)", iter, res, prev)
			}
			prev = res
			if iter == 0 {
				first = res
			}
			last = res
		}
		if cfg.Iters >= 3 && last >= first {
			return fmt.Errorf("residual did not decrease: first %g, last %g", first, last)
		}
		return nil
	}
	return in, nil
}
