package apps

import (
	"fmt"
	"sort"

	"ap1000plus/internal/vpp"
)

// PGASTransposeConfig sizes the bale sparse-transpose kernel: rows of
// a random CSR matrix are distributed round-robin; transposing it
// takes a histogram of column counts, an exclusive scan for the
// transposed offsets, and a scatter through per-column cursors
// claimed with fetch-and-add — all irregular fine-grained traffic.
type PGASTransposeConfig struct {
	// Cells is the machine size.
	Cells int
	// Rows and Cols shape the matrix.
	Rows, Cols int64
	// NnzPerRow is the number of distinct nonzeros per row.
	NnzPerRow int
	// Mode selects naive or aggregated issue.
	Mode PGASMode
	// Packets is the aggregated-mode region capacity (0 = default).
	Packets int
	// Seed parameterizes the matrix.
	Seed uint64
	// Snapshot, when non-nil, receives the canonical transposed image
	// (per-column sorted (row,val) pairs) after Verify.
	Snapshot *[]int64
}

// transposeMatrix builds the deterministic test matrix: per row,
// NnzPerRow distinct columns. Values encode their coordinate so the
// verifier can audit the scatter.
func transposeMatrix(cfg PGASTransposeConfig) [][]int64 {
	rows := make([][]int64, cfg.Rows)
	seq := pgasSeq(cfg.Seed ^ 0x7a5a5)
	for r := int64(0); r < cfg.Rows; r++ {
		seen := make(map[int64]bool, cfg.NnzPerRow)
		for len(seen) < cfg.NnzPerRow {
			seen[int64(seq()%uint64(cfg.Cols))] = true
		}
		cols := make([]int64, 0, cfg.NnzPerRow)
		for c := range seen {
			cols = append(cols, c)
		}
		sort.Slice(cols, func(i, j int) bool { return cols[i] < cols[j] })
		rows[r] = cols
	}
	return rows
}

// NewPGASTranspose builds a sparse-transpose instance.
func NewPGASTranspose(cfg PGASTransposeConfig) (*Instance, error) {
	if cfg.Rows <= 0 || cfg.Cols <= 0 || cfg.NnzPerRow <= 0 || int64(cfg.NnzPerRow) > cfg.Cols {
		return nil, fmt.Errorf("apps: PGAS-TR: bad config %+v", cfg)
	}
	in, err := newInstance("PGAS-TR "+cfg.Mode.String(), cfg.Cells, 0)
	if err != nil {
		return nil, err
	}
	rig, err := newPGASRig(in, cfg.Mode, cfg.Packets)
	if err != nil {
		return nil, err
	}
	matrix := transposeMatrix(cfg)
	nnz := cfg.Rows * int64(cfg.NnzPerRow)
	colcnt, err := rig.heap.Alloc("tr.colcnt", cfg.Cols)
	if err != nil {
		return nil, err
	}
	cursor, err := rig.heap.Alloc("tr.cursor", cfg.Cols)
	if err != nil {
		return nil, err
	}
	trow, err := rig.heap.Alloc("tr.row", nnz)
	if err != nil {
		return nil, err
	}
	tval, err := rig.heap.Alloc("tr.val", nnz)
	if err != nil {
		return nil, err
	}
	val := func(r, c int64) int64 { return r*cfg.Cols + c }
	np := int64(cfg.Cells)
	in.Program = func(rt *vpp.Runtime) error {
		me := int64(rt.Rank())
		pe := rig.pes[me]
		var agg = rig.aggs // nil in naive mode
		// Phase 1: histogram the column counts of my rows.
		for r := me; r < cfg.Rows; r += np {
			for _, c := range matrix[r] {
				if agg != nil {
					if err := agg[me].Add(colcnt, c, 1); err != nil {
						return err
					}
				} else if err := pe.AtomicAdd(colcnt, c, 1); err != nil {
					return err
				}
			}
		}
		if err := rig.finish(int(me)); err != nil {
			return err
		}
		// Phase 2: every cell reads the counts and computes the
		// transposed offsets; each cell seeds the cursors it owns.
		counts := make([]int64, cfg.Cols)
		if err := pe.ReadAll(colcnt, counts); err != nil {
			return err
		}
		off := int64(0)
		for c := int64(0); c < cfg.Cols; c++ {
			if c%np == me {
				if err := pe.PutInt64(cursor, c, off); err != nil {
					return err
				}
			}
			off += counts[c]
		}
		pe.Barrier()
		// Phase 3: scatter every nonzero to its transposed position,
		// claimed by fetch-and-add on the column cursor.
		for r := me; r < cfg.Rows; r += np {
			for _, c := range matrix[r] {
				rr, cc := r, c
				if agg != nil {
					err := agg[me].FetchAdd(cursor, cc, 1, func(pos int64) {
						_ = agg[me].Put(trow, pos, rr)
						_ = agg[me].Put(tval, pos, val(rr, cc))
					})
					if err != nil {
						return err
					}
					continue
				}
				pos, err := pe.FetchAdd(cursor, cc, 1)
				if err != nil {
					return err
				}
				if err := pe.PutInt64(trow, pos, rr); err != nil {
					return err
				}
				if err := pe.PutInt64(tval, pos, val(rr, cc)); err != nil {
					return err
				}
			}
		}
		return rig.finish(int(me))
	}
	in.Verify = func() error {
		// Analytic column structure.
		wantCols := make([][]int64, cfg.Cols)
		for r := int64(0); r < cfg.Rows; r++ {
			for _, c := range matrix[r] {
				wantCols[c] = append(wantCols[c], r)
			}
		}
		off := int64(0)
		var canon []int64
		for c := int64(0); c < cfg.Cols; c++ {
			cnt := colcnt.Word(c)
			if cnt != int64(len(wantCols[c])) {
				return fmt.Errorf("colcnt[%d] = %d, want %d", c, cnt, len(wantCols[c]))
			}
			if cur := cursor.Word(c); cur != off+cnt {
				return fmt.Errorf("cursor[%d] = %d, want %d", c, cur, off+cnt)
			}
			// Positions within a column depend on fetch-add arrival
			// order; sort to canonicalize.
			got := make([]int64, cnt)
			for k := int64(0); k < cnt; k++ {
				r := trow.Word(off + k)
				if v := tval.Word(off + k); v != val(r, c) {
					return fmt.Errorf("tval[%d] = %d, want val(%d,%d) = %d", off+k, v, r, c, val(r, c))
				}
				got[k] = r
			}
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			for k := range got {
				if got[k] != wantCols[c][k] {
					return fmt.Errorf("column %d rows = %v, want %v", c, got, wantCols[c])
				}
				canon = append(canon, got[k], val(got[k], c))
			}
			off += cnt
		}
		if cfg.Snapshot != nil {
			*cfg.Snapshot = canon
		}
		return nil
	}
	return in, nil
}
