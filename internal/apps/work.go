package apps

// The work model: traces carry compute durations in microseconds of
// AP1000 (25 MHz SPARC) time, since the paper's traces were captured
// on the AP1000 and MLSim scales them by each model's
// computation_factor. We charge floating-point work at a sustained
// SPARC rate and memory-traffic-bound work at a separate rate.
//
// Because Table 2 reports ratios between two models replaying the
// SAME trace, results depend on the compute:communication balance —
// set by the real algorithms — rather than on the absolute constants
// here.
const (
	// MFLOPSSPARC is the sustained MFLOPS of the AP1000's 25 MHz
	// SPARC on numeric inner loops.
	MFLOPSSPARC = 5.0
	// MopsSPARC is the sustained Mops for integer/RNG work.
	MopsSPARC = 12.5
)

// flopUS converts floating-point operations to microseconds of SPARC
// time.
func flopUS(flops float64) float64 { return flops / MFLOPSSPARC }

// opUS converts integer operations to microseconds of SPARC time.
func opUS(ops float64) float64 { return ops / MopsSPARC }
