package apps

import "testing"

// Every kernel must run clean under the apsan race detector: the
// paper's flag/ack/barrier discipline, as implemented by the vpp
// runtime and the collective library, is exactly what apsan models,
// so a report here is either a kernel bug or a sanitizer bug.
func TestKernelsSanitizerClean(t *testing.T) {
	Sanitize = true
	defer func() { Sanitize = false }()

	builds := []struct {
		name  string
		build func() (*Instance, error)
	}{
		{"EP", func() (*Instance, error) { return NewEP(TestEP()) }},
		{"CG", func() (*Instance, error) { return NewCG(TestCG()) }},
		{"FT", func() (*Instance, error) { return NewFT(TestFT()) }},
		{"SP", func() (*Instance, error) { return NewSP(TestSP()) }},
		{"TC st", func() (*Instance, error) { return NewTomcatv(TestTomcatv(true)) }},
		{"TC no st", func() (*Instance, error) { return NewTomcatv(TestTomcatv(false)) }},
		{"MatMul", func() (*Instance, error) { return NewMatMul(TestMatMul()) }},
		{"SCG", func() (*Instance, error) { return NewSCG(TestSCG()) }},
	}
	for _, b := range builds {
		t.Run(b.name, func(t *testing.T) {
			in, err := b.build()
			if err != nil {
				t.Fatal(err)
			}
			if in.Machine.Sanitizer() == nil {
				t.Fatal("Sanitize option did not reach the machine")
			}
			if _, err := in.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
