package apps

import (
	"fmt"
	"math"

	"ap1000plus/internal/core"
	"ap1000plus/internal/mc"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/topology"
	"ap1000plus/internal/vpp"
)

// SPConfig configures the (simplified) NPB SP kernel: an ADI-style
// iteration on an N^3 grid — per iteration a stencil right-hand side
// followed by pentadiagonal line solves in the X, Y and Z directions.
// The grid is slab-decomposed along Z: X and Y solves are local, the
// stencil needs a boundary-plane exchange (PUT per neighbour), and
// the Z solve transposes the slab to Z-pencils with stride PUTs and
// transposes back with contiguous GETs — yielding Table 3 SP's
// signature of many PUTs matched by nearly as many GETs with
// kilobyte-scale messages and few barriers.
type SPConfig struct {
	Cells int
	N     int // grid edge (64 in the paper)
	Iters int // ADI iterations (the paper simulates 10)
	// Components is the number of independent scalar systems solved
	// per iteration — SP diagonalizes the 5-equation Navier-Stokes
	// system into 5 scalar pentadiagonal solves.
	Components int
}

// PaperSP is the paper's configuration: 64^3 for 10 iterations on 64
// cells.
func PaperSP() SPConfig { return SPConfig{Cells: 64, N: 64, Iters: 10, Components: 5} }

// TestSP is a laptop-scale configuration.
func TestSP() SPConfig { return SPConfig{Cells: 4, N: 8, Iters: 2, Components: 2} }

// spForward runs the serial reference of one SP iteration on a full
// N^3 grid (z-major layout [z][y][x]), used for verification.
func spForward(u []float64, n int) {
	rhs := make([]float64, len(u))
	// Stencil RHS: 7-point weighted sum.
	at := func(z, y, x int) float64 {
		if z < 0 || z >= n || y < 0 || y >= n || x < 0 || x >= n {
			return 0
		}
		return u[(z*n+y)*n+x]
	}
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				rhs[(z*n+y)*n+x] = 6*at(z, y, x) + at(z-1, y, x) + at(z+1, y, x) +
					at(z, y-1, x) + at(z, y+1, x) + at(z, y, x-1) + at(z, y, x+1)
			}
		}
	}
	scratch := make([]float64, 3*n)
	line := make([]float64, n)
	// X solves.
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			pentaSolve(rhs[(z*n+y)*n:(z*n+y)*n+n], n, scratch)
		}
	}
	// Y solves.
	for z := 0; z < n; z++ {
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				line[y] = rhs[(z*n+y)*n+x]
			}
			pentaSolve(line, n, scratch)
			for y := 0; y < n; y++ {
				rhs[(z*n+y)*n+x] = line[y]
			}
		}
	}
	// Z solves.
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			for z := 0; z < n; z++ {
				line[z] = rhs[(z*n+y)*n+x]
			}
			pentaSolve(line, n, scratch)
			for z := 0; z < n; z++ {
				rhs[(z*n+y)*n+x] = line[z]
			}
		}
	}
	copy(u, rhs)
}

// NewSP builds an SP instance.
func NewSP(cfg SPConfig) (*Instance, error) {
	if cfg.N < 4 || cfg.Iters < 1 {
		return nil, fmt.Errorf("apps: SP: bad config %+v", cfg)
	}
	if cfg.Components < 1 {
		cfg.Components = 1
	}
	in, err := newInstance("SP", cfg.Cells, 64<<20)
	if err != nil {
		return nil, err
	}
	np := in.Machine.Cells()
	n := cfg.N
	if n%np != 0 {
		return nil, fmt.Errorf("apps: SP: %d cells must divide N=%d", np, n)
	}
	nzL := n / np
	plane := n * n

	// u and rhs slabs: [zl][y][x].
	u, err := newPerCellBuf(in.Machine, "sp.u", nzL*plane)
	if err != nil {
		return nil, err
	}
	rhs, err := newPerCellBuf(in.Machine, "sp.rhs", nzL*plane)
	if err != nil {
		return nil, err
	}
	// halo planes from the z-neighbours.
	haloLo, err := newPerCellBuf(in.Machine, "sp.halo.lo", plane)
	if err != nil {
		return nil, err
	}
	haloHi, err := newPerCellBuf(in.Machine, "sp.halo.hi", plane)
	if err != nil {
		return nil, err
	}
	// Z-pencil buffer: [x-block pencils]: layout [z][y][xl].
	nxL := n / np
	pencil, err := newPerCellBuf(in.Machine, "sp.pencil", n*n*nxL)
	if err != nil {
		return nil, err
	}
	stageLine, err := newPerCellBuf(in.Machine, "sp.line", n*nxL)
	if err != nil {
		return nil, err
	}

	initVal := func(zg, y, x int) float64 {
		return math.Sin(float64(zg+1)*0.3) * math.Cos(float64(y+1)*0.7) * math.Sin(float64(x+1)*0.5)
	}

	in.Program = func(rt *vpp.Runtime) error {
		r := rt.Rank()
		us := u.slice(r)
		rs := rhs.slice(r)
		scratch := make([]float64, 3*n)
		line := make([]float64, n)
		for zl := 0; zl < nzL; zl++ {
			for y := 0; y < n; y++ {
				for x := 0; x < n; x++ {
					us[(zl*n+y)*n+x] = initVal(r*nzL+zl, y, x)
				}
			}
		}
		rt.Barrier()

		recvFlag := rt.Cell().Flags.Alloc()
		haloFlag := rt.Cell().Flags.Alloc()
		pencilFlag := rt.Cell().Flags.Alloc()
		gets := int64(0)
		halos := int64(0)
		pencils := int64(0)

		for iter := 0; iter < cfg.Iters*cfg.Components; iter++ {
			// Boundary-plane exchange for the stencil: top plane to
			// the upper neighbour's haloLo, bottom plane to the lower
			// neighbour's haloHi.
			if r < np-1 {
				if err := rt.Comm.Put(core.Transfer{
					To:     topology.CellID(r + 1),
					Remote: haloLo.addr(r+1, 0), Local: u.addr(r, (nzL-1)*plane),
					Size: int64(plane) * 8, RecvFlag: haloFlag, Ack: true,
				}); err != nil {
					return err
				}
			}
			if r > 0 {
				if err := rt.Comm.Put(core.Transfer{
					To:     topology.CellID(r - 1),
					Remote: haloHi.addr(r-1, 0), Local: u.addr(r, 0),
					Size: int64(plane) * 8, RecvFlag: haloFlag, Ack: true,
				}); err != nil {
					return err
				}
			}
			rt.Comm.AckWait()
			expect := int64(2)
			if r == 0 || r == np-1 {
				expect = 1
			}
			if np == 1 {
				expect = 0
			}
			halos += expect
			rt.Comm.WaitFlag(haloFlag, halos)

			// Stencil RHS with halo planes.
			at := func(zl, y, x int) float64 {
				if y < 0 || y >= n || x < 0 || x >= n {
					return 0
				}
				switch {
				case zl < 0:
					if r == 0 {
						return 0
					}
					return haloLo.slice(r)[y*n+x]
				case zl >= nzL:
					if r == np-1 {
						return 0
					}
					return haloHi.slice(r)[y*n+x]
				}
				return us[(zl*n+y)*n+x]
			}
			for zl := 0; zl < nzL; zl++ {
				for y := 0; y < n; y++ {
					for x := 0; x < n; x++ {
						rs[(zl*n+y)*n+x] = 6*at(zl, y, x) + at(zl-1, y, x) + at(zl+1, y, x) +
							at(zl, y-1, x) + at(zl, y+1, x) + at(zl, y, x-1) + at(zl, y, x+1)
					}
				}
			}
			rt.Compute(flopUS(float64(13 * nzL * plane)))

			// X solves (contiguous lines) and Y solves (strided).
			for zl := 0; zl < nzL; zl++ {
				for y := 0; y < n; y++ {
					pentaSolve(rs[(zl*n+y)*n:(zl*n+y)*n+n], n, scratch)
				}
				for x := 0; x < n; x++ {
					for y := 0; y < n; y++ {
						line[y] = rs[(zl*n+y)*n+x]
					}
					pentaSolve(line, n, scratch)
					for y := 0; y < n; y++ {
						rs[(zl*n+y)*n+x] = line[y]
					}
				}
			}
			rt.Compute(flopUS(float64(2 * 11 * nzL * plane)))

			// Z solves: transpose to pencils (stride PUT per dest per
			// plane), solve, transpose back (contiguous GET + local
			// scatter), exactly as in FT. Transpose completion is
			// detected with receive flags rather than barriers — the
			// flag-based synchronization the paper's data-parallel
			// model favours.
			for s := 0; s < np; s++ {
				for zl := 0; zl < nzL; zl++ {
					zg := r*nzL + zl
					srcPat := mem.Stride{ItemSize: int64(nxL * 8), Count: int64(n), Skip: int64((n - nxL) * 8)}
					dstOff := zg * n * nxL
					srcOff := zl*plane + s*nxL
					if s == r {
						for y := 0; y < n; y++ {
							copy(pencil.slice(r)[dstOff+y*nxL:dstOff+(y+1)*nxL],
								rs[srcOff+y*n:srcOff+y*n+nxL])
						}
						continue
					}
					if err := rt.Comm.PutStride(topology.CellID(s),
						pencil.addr(s, dstOff), rhs.addr(r, srcOff),
						mc.NoFlag, pencilFlag, true,
						srcPat, mem.Contiguous(srcPat.Total())); err != nil {
						return err
					}
				}
			}
			rt.Comm.AckWait()
			pencils += int64((np - 1) * nzL)
			rt.Comm.WaitFlag(pencilFlag, pencils)

			ps := pencil.slice(r)
			for y := 0; y < n; y++ {
				for xl := 0; xl < nxL; xl++ {
					for z := 0; z < n; z++ {
						line[z] = ps[(z*n+y)*nxL+xl]
					}
					pentaSolve(line, n, scratch)
					for z := 0; z < n; z++ {
						ps[(z*n+y)*nxL+xl] = line[z]
					}
				}
			}
			rt.Compute(flopUS(float64(11 * n * n * nxL)))
			rt.Barrier()

			for s := 0; s < np; s++ {
				for zl := 0; zl < nzL; zl++ {
					zg := r*nzL + zl
					srcOff := zg * n * nxL
					dstBase := zl*plane + s*nxL
					if s == r {
						for y := 0; y < n; y++ {
							copy(us[dstBase+y*n:dstBase+y*n+nxL],
								ps[srcOff+y*nxL:srcOff+(y+1)*nxL])
						}
						continue
					}
					if err := rt.Comm.Get(core.Transfer{
						To:     topology.CellID(s),
						Remote: pencil.addr(s, srcOff), Local: stageLine.addr(r, 0),
						Size: int64(n*nxL) * 8, RecvFlag: recvFlag,
					}); err != nil {
						return err
					}
					gets++
					rt.Comm.WaitFlag(recvFlag, gets)
					ln := stageLine.slice(r)
					for y := 0; y < n; y++ {
						copy(us[dstBase+y*n:dstBase+y*n+nxL], ln[y*nxL:(y+1)*nxL])
					}
				}
			}
			rt.Barrier()
		}
		// One final vector residual check mirrors Table 3's single
		// SEND/VGop row entries.
		norm := []float64{0}
		for _, v := range us {
			norm[0] += v * v
		}
		rt.Compute(flopUS(float64(2 * len(us))))
		if err := rt.GlobalSumVec(norm); err != nil {
			return err
		}
		return nil
	}
	in.Verify = func() error {
		if n*n*n > 64*64*64 {
			return nil // serial reference too expensive; same code path as tested sizes
		}
		ref := make([]float64, n*n*n)
		for z := 0; z < n; z++ {
			for y := 0; y < n; y++ {
				for x := 0; x < n; x++ {
					ref[(z*n+y)*n+x] = initVal(z, y, x)
				}
			}
		}
		for it := 0; it < cfg.Iters*cfg.Components; it++ {
			spForward(ref, n)
		}
		for r := 0; r < np; r++ {
			us := u.slice(r)
			for zl := 0; zl < nzL; zl++ {
				for y := 0; y < n; y++ {
					for x := 0; x < n; x++ {
						got := us[(zl*n+y)*n+x]
						want := ref[((r*nzL+zl)*n+y)*n+x]
						if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
							return fmt.Errorf("SP mismatch at (%d,%d,%d): got %g want %g",
								r*nzL+zl, y, x, got, want)
						}
					}
				}
			}
		}
		return nil
	}
	return in, nil
}
