package apps

import (
	"reflect"
	"testing"
)

// pgasKernelBuilders enumerates the four bale kernels at test sizes.
// Each builder captures its snapshot slice so the two modes can be
// compared bit for bit.
func pgasKernelBuilders(mode PGASMode, snap *[]int64) map[string]Builder {
	return map[string]Builder{
		"histogram": func() (*Instance, error) {
			return NewPGASHisto(PGASHistoConfig{
				Cells: 6, Table: 97, OpsPerCell: 300,
				Mode: mode, Packets: 16, Seed: 42, Snapshot: snap,
			})
		},
		"indexgather": func() (*Instance, error) {
			return NewPGASIG(PGASIGConfig{
				Cells: 6, Table: 83, OpsPerCell: 250,
				Mode: mode, Packets: 16, Seed: 7, Snapshot: snap,
			})
		},
		"transpose": func() (*Instance, error) {
			return NewPGASTranspose(PGASTransposeConfig{
				Cells: 6, Rows: 40, Cols: 31, NnzPerRow: 5,
				Mode: mode, Packets: 16, Seed: 11, Snapshot: snap,
			})
		},
		"toposort": func() (*Instance, error) {
			return NewPGASToposort(PGASToposortConfig{
				Cells: 6, N: 48, Extra: 3,
				Mode: mode, Packets: 16, Seed: 3, Snapshot: snap,
			})
		},
	}
}

// TestPGASKernels runs every bale kernel in both modes under the race
// sanitizer; each Verify is analytic, and the aggregated snapshot must
// be bit-identical to the naive one.
func TestPGASKernels(t *testing.T) {
	sanWas := Sanitize
	Sanitize = true
	defer func() { Sanitize = sanWas }()

	var naive, agg []int64
	for name := range pgasKernelBuilders(PGASNaive, nil) {
		t.Run(name, func(t *testing.T) {
			for _, m := range []struct {
				mode PGASMode
				out  *[]int64
			}{{PGASNaive, &naive}, {PGASAggregated, &agg}} {
				in, err := pgasKernelBuilders(m.mode, m.out)[name]()
				if err != nil {
					t.Fatal(err)
				}
				if _, err := in.Run(); err != nil {
					t.Fatal(err)
				}
			}
			if len(naive) == 0 {
				t.Fatal("empty snapshot")
			}
			if !reflect.DeepEqual(naive, agg) {
				t.Errorf("aggregated snapshot differs from naive (%d words)", len(naive))
			}
		})
	}
}
