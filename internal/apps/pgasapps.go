package apps

import (
	"fmt"

	"ap1000plus/internal/pgas"
	"ap1000plus/internal/topology"
)

// The PGAS kernels port bale's irregular-application suite —
// histogram, index-gather, sparse transpose, toposort — onto the
// internal/pgas symmetric heap. Each kernel runs in two modes behind
// one switch: naive (every fine-grained operation is its own MSC+
// command) and aggregated (operations buffered per destination and
// exchanged in bulk rounds). Like DSMGather, they are benchmark
// drivers with analytic Verify functions, not part of Catalog().

// PGASMode selects how a PGAS kernel issues its fine-grained traffic.
type PGASMode int

const (
	// PGASNaive issues one MSC+ command per operation.
	PGASNaive PGASMode = iota
	// PGASAggregated buffers operations per destination cell and
	// exchanges them in bulk rounds (exstack-style).
	PGASAggregated
)

func (m PGASMode) String() string {
	if m == PGASAggregated {
		return "agg"
	}
	return "naive"
}

// pgasRig is the per-instance heap state: one PE per cell, plus the
// aggregation contexts in aggregated mode.
type pgasRig struct {
	heap *pgas.Heap
	pes  []*pgas.PE
	aggs []*pgas.AggPE // nil in naive mode
}

// newPGASRig builds heap, PEs and (in aggregated mode) the exchange
// buffers on an instance's machine.
func newPGASRig(in *Instance, mode PGASMode, packets int) (*pgasRig, error) {
	h, err := pgas.NewHeap(in.Machine)
	if err != nil {
		return nil, fmt.Errorf("apps: %s: %w", in.Name, err)
	}
	r := &pgasRig{heap: h, pes: make([]*pgas.PE, in.Machine.Cells())}
	for id := 0; id < in.Machine.Cells(); id++ {
		pe, err := pgas.NewPE(h, in.Machine.Cell(topology.CellID(id)))
		if err != nil {
			return nil, fmt.Errorf("apps: %s: %w", in.Name, err)
		}
		r.pes[id] = pe
	}
	if mode == PGASAggregated {
		ag, err := pgas.NewAggregator(h, packets)
		if err != nil {
			return nil, fmt.Errorf("apps: %s: %w", in.Name, err)
		}
		r.aggs = make([]*pgas.AggPE, in.Machine.Cells())
		for id := 0; id < in.Machine.Cells(); id++ {
			a, err := ag.Bind(r.pes[id])
			if err != nil {
				return nil, fmt.Errorf("apps: %s: %w", in.Name, err)
			}
			r.aggs[id] = a
		}
	}
	return r, nil
}

// finish drains one cell's outstanding traffic for its mode: Flush in
// aggregated mode (collective), then the fencing barrier.
func (r *pgasRig) finish(rank int) error {
	if r.aggs != nil {
		if err := r.aggs[rank].Flush(); err != nil {
			return err
		}
	}
	r.pes[rank].Barrier()
	return nil
}

// pgasSeq returns a deterministic 64-bit stream (Knuth MMIX LCG, top
// bits), the same generator the DSM gather kernel uses.
func pgasSeq(seed uint64) func() uint64 {
	state := seed*6364136223846793005 + 1442695040888963407
	return func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 11
	}
}
