// Package sendrecv implements the AP1000+'s SEND/RECEIVE
// communication model (S4.3): SEND reuses the PUT hardware, targeting
// the destination cell's ring buffer instead of a user address;
// RECEIVE searches the ring buffer and copies the message into the
// user's memory area. When a ring buffer fills, the MSC+ interrupts
// the operating system, which allocates a new (larger) buffer.
//
// For global vector reductions the receiving cell may consume ring
// data in place (Consume), eliminating the copy — "the received data
// is used only once, so the receiving cell does not need to copy this
// data from the ring buffer" (S4.5).
package sendrecv

import (
	"fmt"
	"sync"

	"ap1000plus/internal/machine"
	"ap1000plus/internal/mc"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/msc"
	"ap1000plus/internal/topology"
)

// DefaultRingBytes is the initial ring-buffer capacity.
const DefaultRingBytes = 64 << 10

// message is one entry parked in the ring buffer.
type message struct {
	src     topology.CellID
	port    int32
	payload *mem.Payload
}

// Stats reports ring activity.
type Stats struct {
	Received   int64
	Delivered  int64
	BytesIn    int64
	Grows      int64 // OS interrupts taken to enlarge the ring
	InPlace    int64 // messages consumed without copying
	MaxBacklog int   // high-water mark of parked messages
}

// Endpoint is a cell's SEND/RECEIVE port: the ring buffer plus the
// send side built on the PUT mechanism.
type Endpoint struct {
	cell *machine.Cell

	mu       sync.Mutex
	cond     *sync.Cond
	msgs     []message
	bytes    int64
	capacity int64
	stats    Stats

	sendFlag  mc.FlagID
	sendCount int64
}

// New installs an endpoint on the cell. Only one endpoint per cell
// may exist (the hardware has one ring-buffer manager).
func New(cell *machine.Cell, ringBytes int64) *Endpoint {
	if ringBytes <= 0 {
		ringBytes = DefaultRingBytes
	}
	e := &Endpoint{cell: cell, capacity: ringBytes, sendFlag: cell.Flags.Alloc()}
	e.cond = sync.NewCond(&e.mu)
	cell.SetMessageSink(e.sink)
	return e
}

// sink is the machine's delivery hook: a SEND packet arrived.
func (e *Endpoint) sink(port int32, src topology.CellID, payload *mem.Payload) {
	e.mu.Lock()
	size := payload.Size()
	if e.bytes+size > e.capacity {
		// "If the ring buffer becomes full, the MSC+ interrupts the
		// operating system, which then allocates a new buffer."
		e.cell.OS.Interrupt(machine.IntrRingBufferFull)
		e.stats.Grows++
		for e.bytes+size > e.capacity {
			e.capacity *= 2
		}
	}
	e.msgs = append(e.msgs, message{src: src, port: port, payload: payload})
	e.bytes += size
	e.stats.Received++
	e.stats.BytesIn += size
	if len(e.msgs) > e.stats.MaxBacklog {
		e.stats.MaxBacklog = len(e.msgs)
	}
	e.mu.Unlock()
	e.cond.Broadcast()
}

// Send transmits [laddr, laddr+size) to dst's ring buffer. SEND is
// blocking in the library sense: it returns when the send DMA has
// finished reading the source area (the paper's SEND "waits to
// complete data transfer in the SEND library").
func (e *Endpoint) Send(dst topology.CellID, laddr mem.Addr, size int64, rts bool) error {
	if size <= 0 {
		return fmt.Errorf("sendrecv: send of %d bytes", size)
	}
	if !e.cell.Machine().Torus().Valid(dst) {
		return fmt.Errorf("sendrecv: invalid destination %d", dst)
	}
	if rec := e.cell.Recorder(); rec != nil {
		rec.Send(dst, size, rts)
	}
	e.cell.PushUser(msc.Command{
		Op: msc.OpSend, Dst: dst,
		LAddr: laddr, LStride: mem.Contiguous(size),
		SendFlag: e.sendFlag,
	})
	e.sendCount++
	e.cell.Flags.Wait(e.sendFlag, e.sendCount)
	return nil
}

// take removes the first parked message matching src (or any source
// when src < 0), blocking until one arrives.
func (e *Endpoint) take(src topology.CellID) message {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		for i, m := range e.msgs {
			if src < 0 || m.src == src {
				e.msgs = append(e.msgs[:i], e.msgs[i+1:]...)
				e.bytes -= m.payload.Size()
				e.stats.Delivered++
				return m
			}
		}
		e.cond.Wait()
	}
}

// Recv blocks for a message from src and copies it to [laddr,
// laddr+max). It returns the message length. Messages longer than max
// are an error (the message is consumed).
func (e *Endpoint) Recv(src topology.CellID, laddr mem.Addr, max int64) (int64, error) {
	m := e.take(src)
	n := m.payload.Size()
	if rec := e.cell.Recorder(); rec != nil {
		rec.Recv(m.src, n, false)
	}
	if n > max {
		return 0, fmt.Errorf("sendrecv: %d-byte message exceeds %d-byte receive area", n, max)
	}
	// Receipt orders the sender's capture before this CPU's use of the
	// data; the copy into the user area is a CPU-context write.
	e.cell.SanAcquirePayload(m.payload)
	e.cell.SanWrite(laddr, mem.Contiguous(n), "RECEIVE copy")
	if err := m.payload.Deliver(e.cell.Mem, laddr, mem.Contiguous(n)); err != nil {
		return 0, err
	}
	return n, nil
}

// RecvAny is Recv matching any source; it reports the sender.
func (e *Endpoint) RecvAny(laddr mem.Addr, max int64) (topology.CellID, int64, error) {
	m := e.take(-1)
	n := m.payload.Size()
	if rec := e.cell.Recorder(); rec != nil {
		rec.Recv(m.src, n, false)
	}
	if n > max {
		return m.src, 0, fmt.Errorf("sendrecv: %d-byte message exceeds %d-byte receive area", n, max)
	}
	e.cell.SanAcquirePayload(m.payload)
	e.cell.SanWrite(laddr, mem.Contiguous(n), "RECEIVE copy")
	if err := m.payload.Deliver(e.cell.Mem, laddr, mem.Contiguous(n)); err != nil {
		return m.src, 0, err
	}
	return m.src, n, nil
}

// Consume blocks for a message from src and returns its payload for
// in-place use — the zero-copy path of the vector global reduction.
// No trace Recv is recorded: collectives record their own event at
// the library boundary.
func (e *Endpoint) Consume(src topology.CellID) *mem.Payload {
	m := e.take(src)
	e.cell.SanAcquirePayload(m.payload)
	e.mu.Lock()
	e.stats.InPlace++
	e.mu.Unlock()
	return m.payload
}

// Pending reports parked messages.
func (e *Endpoint) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.msgs)
}

// Stats snapshots ring statistics.
func (e *Endpoint) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}
