package sendrecv

import (
	"runtime"
	"strings"
	"testing"

	"ap1000plus/internal/machine"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/topology"
	"ap1000plus/internal/trace"
)

type fixture struct {
	m    *machine.Machine
	segs []*mem.Segment
	data [][]float64
	eps  []*Endpoint
}

func newFixture(t testing.TB, traceApp string, elems int, ringBytes int64) *fixture {
	t.Helper()
	m, err := machine.New(machine.Config{Width: 2, Height: 2, MemoryPerCell: 1 << 22, TraceApp: traceApp})
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{m: m}
	for id := 0; id < 4; id++ {
		cell := m.Cell(topology.CellID(id))
		seg, data, err := cell.AllocFloat64("buf", elems)
		if err != nil {
			t.Fatal(err)
		}
		f.segs = append(f.segs, seg)
		f.data = append(f.data, data)
		f.eps = append(f.eps, New(cell, ringBytes))
	}
	return f
}

func TestSendRecvBasic(t *testing.T) {
	f := newFixture(t, "", 8, 0)
	err := f.m.Run(func(c *machine.Cell) error {
		ep := f.eps[c.ID()]
		switch c.ID() {
		case 0:
			for i := range f.data[0] {
				f.data[0][i] = float64(i) * 2
			}
			return ep.Send(1, f.segs[0].Base(), 64, false)
		case 1:
			n, err := ep.Recv(0, f.segs[1].Base(), 64)
			if err != nil {
				return err
			}
			if n != 64 {
				t.Errorf("n = %d", n)
			}
			for i, v := range f.data[1] {
				if v != float64(i)*2 {
					t.Errorf("data[%d] = %v", i, v)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvBlocksUntilSend(t *testing.T) {
	f := newFixture(t, "", 4, 0)
	order := make(chan string, 4)
	err := f.m.Run(func(c *machine.Cell) error {
		ep := f.eps[c.ID()]
		switch c.ID() {
		case 1:
			if _, err := ep.Recv(0, f.segs[1].Base(), 32); err != nil {
				return err
			}
			order <- "recv"
		case 0:
			order <- "send"
			return ep.Send(1, f.segs[0].Base(), 32, false)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if first := <-order; first != "send" {
		t.Fatalf("recv completed before send")
	}
}

func TestRecvAnyAndFIFO(t *testing.T) {
	f := newFixture(t, "", 8, 0)
	err := f.m.Run(func(c *machine.Cell) error {
		ep := f.eps[c.ID()]
		if c.ID() == 0 {
			// Two messages to cell 3; FIFO per pair must hold.
			f.data[0][0] = 1
			if err := ep.Send(3, f.segs[0].Base(), 8, false); err != nil {
				return err
			}
			f.data[0][1] = 2
			if err := ep.Send(3, f.segs[0].Base()+8, 8, false); err != nil {
				return err
			}
		}
		if c.ID() == 3 {
			src, n, err := ep.RecvAny(f.segs[3].Base(), 8)
			if err != nil {
				return err
			}
			if src != 0 || n != 8 || f.data[3][0] != 1 {
				t.Errorf("first: src=%d n=%d v=%v", src, n, f.data[3][0])
			}
			if _, err := ep.Recv(0, f.segs[3].Base()+8, 8); err != nil {
				return err
			}
			if f.data[3][1] != 2 {
				t.Errorf("second = %v", f.data[3][1])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConsumeInPlace(t *testing.T) {
	f := newFixture(t, "", 4, 0)
	err := f.m.Run(func(c *machine.Cell) error {
		ep := f.eps[c.ID()]
		if c.ID() == 0 {
			f.data[0][0] = 3.25
			return ep.Send(2, f.segs[0].Base(), 32, false)
		}
		if c.ID() == 2 {
			p := ep.Consume(0)
			vals, ok := p.Float64s()
			if !ok || vals[0] != 3.25 {
				t.Errorf("consume = %v %v", vals, ok)
			}
			if s := ep.Stats(); s.InPlace != 1 {
				t.Errorf("in-place = %d", s.InPlace)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRingOverflowGrows(t *testing.T) {
	// Tiny ring; many sends before any receive.
	f := newFixture(t, "", 8, 64)
	const n = 20
	err := f.m.Run(func(c *machine.Cell) error {
		ep := f.eps[c.ID()]
		if c.ID() == 0 {
			for i := 0; i < n; i++ {
				if err := ep.Send(1, f.segs[0].Base(), 64, false); err != nil {
					return err
				}
			}
		}
		if c.ID() == 1 {
			// Let the backlog build before draining so the ring
			// demonstrably overflows.
			for ep.Pending() < n {
				runtime.Gosched()
			}
			for i := 0; i < n; i++ {
				if _, err := ep.Recv(0, f.segs[1].Base(), 64); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := f.eps[1].Stats()
	if s.Received != n || s.Delivered != n {
		t.Errorf("stats = %+v", s)
	}
	if s.Grows == 0 {
		t.Error("tiny ring never grew")
	}
	if f.m.Cell(1).OS.Interrupts(machine.IntrRingBufferFull) == 0 {
		t.Error("no OS interrupt for ring growth")
	}
}

func TestRecvTooSmall(t *testing.T) {
	f := newFixture(t, "", 8, 0)
	err := f.m.Run(func(c *machine.Cell) error {
		ep := f.eps[c.ID()]
		if c.ID() == 0 {
			return ep.Send(1, f.segs[0].Base(), 64, false)
		}
		if c.ID() == 1 {
			_, err := ep.Recv(0, f.segs[1].Base(), 8)
			if err == nil || !strings.Contains(err.Error(), "exceeds") {
				t.Errorf("err = %v", err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendValidation(t *testing.T) {
	f := newFixture(t, "", 8, 0)
	err := f.m.Run(func(c *machine.Cell) error {
		if c.ID() != 0 {
			return nil
		}
		ep := f.eps[0]
		if err := ep.Send(99, f.segs[0].Base(), 8, false); err == nil {
			t.Error("bad destination accepted")
		}
		if err := ep.Send(1, f.segs[0].Base(), 0, false); err == nil {
			t.Error("zero size accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTraceEvents(t *testing.T) {
	f := newFixture(t, "sr", 8, 0)
	err := f.m.Run(func(c *machine.Cell) error {
		ep := f.eps[c.ID()]
		if c.ID() == 0 {
			return ep.Send(1, f.segs[0].Base(), 16, true)
		}
		if c.ID() == 1 {
			_, err := ep.Recv(0, f.segs[1].Base(), 16)
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := f.m.Trace()
	var sends, recvs int
	for _, e := range ts.PE[0] {
		if e.Kind == trace.KindSend {
			sends++
			if !e.RTS || e.Size != 16 || e.Peer != 1 {
				t.Errorf("send event = %+v", e)
			}
		}
	}
	for _, e := range ts.PE[1] {
		if e.Kind == trace.KindRecv {
			recvs++
			if e.Peer != 0 {
				t.Errorf("recv event = %+v", e)
			}
		}
	}
	if sends != 1 || recvs != 1 {
		t.Errorf("sends=%d recvs=%d", sends, recvs)
	}
}

func TestDoubleEndpointPanics(t *testing.T) {
	m, _ := machine.New(machine.Config{Width: 2, Height: 2, MemoryPerCell: 1 << 20})
	New(m.Cell(0), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(m.Cell(0), 0)
}
