package topology

import (
	"testing"
	"testing/quick"
)

func TestNewTorusBounds(t *testing.T) {
	if _, err := NewTorus(1, 2); err == nil {
		t.Error("2 cells should be rejected (<4)")
	}
	if _, err := NewTorus(128, 64); err == nil {
		t.Error("8192 cells should be rejected (>MaxCells)")
	}
	if tor, err := NewTorus(64, 64); err != nil || tor.Cells() != 4096 {
		t.Errorf("4096 cells should be admitted: %v", err)
	}
	if _, err := NewTorus(0, 4); err == nil {
		t.Error("zero dimension should be rejected")
	}
	if _, err := NewTorus(-2, -2); err == nil {
		t.Error("negative dimensions should be rejected")
	}
	tor, err := NewTorus(32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if tor.Cells() != 1024 {
		t.Errorf("Cells() = %d", tor.Cells())
	}
}

func TestSquarishTorus(t *testing.T) {
	cases := []struct{ n, w, h int }{
		{64, 8, 8},
		{16, 4, 4},
		{128, 16, 8},
		{4, 2, 2},
		{1024, 32, 32},
		{6, 3, 2},
	}
	for _, c := range cases {
		tor, err := SquarishTorus(c.n)
		if err != nil {
			t.Fatalf("SquarishTorus(%d): %v", c.n, err)
		}
		if tor.Width() != c.w || tor.Height() != c.h {
			t.Errorf("SquarishTorus(%d) = %dx%d, want %dx%d", c.n, tor.Width(), tor.Height(), c.w, c.h)
		}
	}
	if _, err := SquarishTorus(2); err == nil {
		t.Error("SquarishTorus(2) should fail")
	}
}

func TestCoordIDRoundTrip(t *testing.T) {
	tor := MustTorus(8, 4)
	for id := CellID(0); int(id) < tor.Cells(); id++ {
		x, y := tor.Coord(id)
		if got := tor.ID(x, y); got != id {
			t.Fatalf("round trip %d -> (%d,%d) -> %d", id, x, y, got)
		}
	}
}

func TestIDWraps(t *testing.T) {
	tor := MustTorus(8, 4)
	if got := tor.ID(-1, 0); got != 7 {
		t.Errorf("ID(-1,0) = %d, want 7", got)
	}
	if got := tor.ID(8, 0); got != 0 {
		t.Errorf("ID(8,0) = %d, want 0", got)
	}
	if got := tor.ID(0, -1); got != CellID(3*8) {
		t.Errorf("ID(0,-1) = %d, want 24", got)
	}
}

func TestDistance(t *testing.T) {
	tor := MustTorus(8, 8)
	cases := []struct {
		a, b CellID
		want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 7, 1},  // wrap in X
		{0, 56, 1}, // wrap in Y
		{0, CellID(4 + 4*8), 8},
		{0, 9, 2},
	}
	for _, c := range cases {
		if got := tor.Distance(c.a, c.b); got != c.want {
			t.Errorf("Distance(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDistanceSymmetric(t *testing.T) {
	tor := MustTorus(5, 7)
	prop := func(a, b uint8) bool {
		ca := CellID(int(a) % tor.Cells())
		cb := CellID(int(b) % tor.Cells())
		return tor.Distance(ca, cb) == tor.Distance(cb, ca)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRouteEndsAtDestAndMatchesDistance(t *testing.T) {
	tor := MustTorus(6, 6)
	for a := CellID(0); int(a) < tor.Cells(); a++ {
		for b := CellID(0); int(b) < tor.Cells(); b++ {
			path := tor.Route(a, b)
			if a == b {
				if len(path) != 0 {
					t.Fatalf("Route(%d,%d) = %v, want empty", a, b, path)
				}
				continue
			}
			if path[len(path)-1] != b {
				t.Fatalf("Route(%d,%d) ends at %d", a, b, path[len(path)-1])
			}
			if len(path) != tor.Distance(a, b) {
				t.Fatalf("Route(%d,%d) len %d != distance %d", a, b, len(path), tor.Distance(a, b))
			}
			// Each hop moves exactly one step.
			prev := a
			for _, hop := range path {
				if tor.Distance(prev, hop) != 1 {
					t.Fatalf("Route(%d,%d): hop %d->%d is not a neighbour", a, b, prev, hop)
				}
				prev = hop
			}
		}
	}
}

func TestRouteDimensionOrder(t *testing.T) {
	tor := MustTorus(8, 8)
	// From (0,0) to (3,2): all X moves first, then Y moves.
	path := tor.Route(tor.ID(0, 0), tor.ID(3, 2))
	want := []CellID{tor.ID(1, 0), tor.ID(2, 0), tor.ID(3, 0), tor.ID(3, 1), tor.ID(3, 2)}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestGroupBasics(t *testing.T) {
	g, err := NewGroup("g", []CellID{5, 2, 9})
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 3 || g.Root() != 5 {
		t.Fatalf("size=%d root=%d", g.Size(), g.Root())
	}
	if r, ok := g.Rank(9); !ok || r != 2 {
		t.Fatalf("Rank(9) = %d,%v", r, ok)
	}
	if g.Contains(7) {
		t.Fatal("Contains(7) should be false")
	}
	if _, err := NewGroup("dup", []CellID{1, 1}); err == nil {
		t.Fatal("duplicate members should be rejected")
	}
	if _, err := NewGroup("empty", nil); err == nil {
		t.Fatal("empty group should be rejected")
	}
}

func TestAllCellsRowColumn(t *testing.T) {
	tor := MustTorus(4, 3)
	all := AllCells(tor)
	if all.Size() != 12 {
		t.Fatalf("all size = %d", all.Size())
	}
	r1 := Row(tor, 1)
	if r1.Size() != 4 || r1.Members()[0] != 4 || r1.Members()[3] != 7 {
		t.Fatalf("row1 = %v", r1.Members())
	}
	c2 := Column(tor, 2)
	if c2.Size() != 3 || c2.Members()[0] != 2 || c2.Members()[2] != 10 {
		t.Fatalf("col2 = %v", c2.Members())
	}
}

func TestBinaryTree(t *testing.T) {
	g, _ := NewGroup("g", []CellID{0, 1, 2, 3, 4, 5, 6})
	if p := g.BinaryTreeParent(0); p != 0 {
		t.Fatalf("root parent = %d", p)
	}
	if p := g.BinaryTreeParent(5); p != 2 {
		t.Fatalf("parent(rank5) = %d, want 2", p)
	}
	kids := g.BinaryTreeChildren(1)
	if len(kids) != 2 || kids[0] != 3 || kids[1] != 4 {
		t.Fatalf("children(1) = %v", kids)
	}
	if kids := g.BinaryTreeChildren(3); len(kids) != 0 {
		t.Fatalf("leaf children = %v", kids)
	}
}

// Property: every non-root member's parent has a lower rank, and
// walking parents reaches the root in <= log2(n)+1 steps.
func TestBinaryTreeReachesRoot(t *testing.T) {
	tor := MustTorus(16, 16)
	g := AllCells(tor)
	for _, m := range g.Members() {
		steps := 0
		cur := m
		for cur != g.Root() {
			next := g.BinaryTreeParent(cur)
			rc, _ := g.Rank(cur)
			rn, _ := g.Rank(next)
			if rn >= rc {
				t.Fatalf("parent rank %d >= child rank %d", rn, rc)
			}
			cur = next
			steps++
			if steps > 10 {
				t.Fatalf("member %d: too many steps to root", m)
			}
		}
	}
}

func TestRingNext(t *testing.T) {
	g, _ := NewGroup("g", []CellID{3, 1, 4})
	if n := g.RingNext(3); n != 1 {
		t.Fatalf("RingNext(3) = %d", n)
	}
	if n := g.RingNext(4); n != 3 {
		t.Fatalf("RingNext(4) = %d, want wrap to 3", n)
	}
}

func TestPartition(t *testing.T) {
	tor := MustTorus(4, 4)
	groups, err := Partition(tor, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	seen := map[CellID]bool{}
	for _, g := range groups {
		total += g.Size()
		for _, m := range g.Members() {
			if seen[m] {
				t.Fatalf("cell %d in two partitions", m)
			}
			seen[m] = true
		}
	}
	if total != 16 {
		t.Fatalf("partition covers %d cells", total)
	}
	if _, err := Partition(tor, 0); err == nil {
		t.Fatal("k=0 should fail")
	}
	if _, err := Partition(tor, 17); err == nil {
		t.Fatal("k>n should fail")
	}
}

func TestSortedCopy(t *testing.T) {
	g, _ := NewGroup("g", []CellID{9, 2, 5})
	s := g.SortedCopy()
	if s[0] != 2 || s[1] != 5 || s[2] != 9 {
		t.Fatalf("sorted = %v", s)
	}
	// original order untouched
	if g.Members()[0] != 9 {
		t.Fatal("Members mutated")
	}
}

func BenchmarkRoute(b *testing.B) {
	tor := MustTorus(32, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tor.Route(0, CellID(i%1024))
	}
}
