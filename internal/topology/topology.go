// Package topology models the AP1000+ cell arrangement: a
// two-dimensional torus (the T-net wiring) of 4 to 4096 cells, with
// the static dimension-order routing the T-net uses, plus the cell
// groups over which VPP Fortran performs group barriers and group
// reductions.
package topology

import (
	"fmt"
	"sort"
)

// CellID identifies a processing element. Cells are numbered in
// row-major order: id = y*W + x.
type CellID int

// HostID is the pseudo-cell identifier used for the host workstation
// on the B-net; it is never a valid T-net destination.
const HostID CellID = -1

// Torus describes a W x H two-dimensional torus of cells.
type Torus struct {
	w, h int
}

// MaxCells is the largest simulated configuration. The shipped
// AP1000+ topped out at 1024 cells; the simulator admits 4x that so
// weak-scaling runs can explore where in-network combining and
// aggregation pay off (see apbench -experiment scale).
const MaxCells = 4096

// NewTorus builds a torus with the given dimensions. Configurations
// of 4 to MaxCells cells are supported; dimensions outside that range
// (or non-positive) are rejected.
func NewTorus(w, h int) (*Torus, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("topology: non-positive dimensions %dx%d", w, h)
	}
	n := w * h
	if n < 4 || n > MaxCells {
		return nil, fmt.Errorf("topology: %d cells outside the simulator range [4,%d]", n, MaxCells)
	}
	return &Torus{w: w, h: h}, nil
}

// MustTorus is NewTorus for static configurations; it panics on error.
func MustTorus(w, h int) *Torus {
	t, err := NewTorus(w, h)
	if err != nil {
		panic(err)
	}
	return t
}

// SquarishTorus builds the most square torus with exactly n cells,
// mirroring how AP1000 cabinets were configured (e.g. 64 cells = 8x8).
func SquarishTorus(n int) (*Torus, error) {
	if n < 4 || n > MaxCells {
		return nil, fmt.Errorf("topology: %d cells outside [4,%d]", n, MaxCells)
	}
	best := 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			best = d
		}
	}
	return NewTorus(n/best, best)
}

// Width reports the X dimension.
func (t *Torus) Width() int { return t.w }

// Height reports the Y dimension.
func (t *Torus) Height() int { return t.h }

// Cells reports the number of cells.
func (t *Torus) Cells() int { return t.w * t.h }

// Valid reports whether id names a cell of this torus.
func (t *Torus) Valid(id CellID) bool { return id >= 0 && int(id) < t.Cells() }

// Coord maps a cell ID to torus coordinates.
func (t *Torus) Coord(id CellID) (x, y int) {
	return int(id) % t.w, int(id) / t.w
}

// ID maps coordinates to the cell ID, wrapping around the torus so
// that negative and overflowing coordinates are legal.
func (t *Torus) ID(x, y int) CellID {
	x = mod(x, t.w)
	y = mod(y, t.h)
	return CellID(y*t.w + x)
}

func mod(a, m int) int {
	a %= m
	if a < 0 {
		a += m
	}
	return a
}

// hopDist is the signed shortest displacement from a to b on a ring of
// size m (ties broken toward positive direction, matching the T-net's
// static routing tables).
func hopDist(a, b, m int) int {
	d := mod(b-a, m)
	if d > m/2 || (d == m-d && d != 0 && m%2 == 0 && d > m/2) {
		return d - m
	}
	if d*2 > m {
		return d - m
	}
	return d
}

// Distance reports the routing distance in hops between two cells
// using shortest paths in each torus dimension. This is the
// "communication distance" statistic MLSim reports.
func (t *Torus) Distance(a, b CellID) int {
	ax, ay := t.Coord(a)
	bx, by := t.Coord(b)
	dx := hopDist(ax, bx, t.w)
	dy := hopDist(ay, by, t.h)
	return abs(dx) + abs(dy)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Route returns the sequence of cells a message visits travelling from
// src to dst under dimension-order (X then Y) static routing,
// excluding src and including dst. The T-net routes statically, which
// is why messages between a given pair of cells arrive in order — the
// property §4.1 exploits for the GET-as-acknowledge trick.
func (t *Torus) Route(src, dst CellID) []CellID {
	if !t.Valid(src) || !t.Valid(dst) {
		panic(fmt.Sprintf("topology: route %d->%d outside %dx%d torus", src, dst, t.w, t.h))
	}
	var path []CellID
	x, y := t.Coord(src)
	dx, dy := t.Coord(dst)
	stepX := sign(hopDist(x, dx, t.w))
	for x != dx {
		x = mod(x+stepX, t.w)
		path = append(path, t.ID(x, y))
	}
	stepY := sign(hopDist(y, dy, t.h))
	for y != dy {
		y = mod(y+stepY, t.h)
		path = append(path, t.ID(x, y))
	}
	return path
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}

// Group is an ordered set of cells over which a group barrier or a
// group reduction runs (§2.3 of the paper: index partitions decompose
// arrays and DO loops over groups of nodes).
type Group struct {
	name    string
	members []CellID
	rank    map[CellID]int
}

// NewGroup builds a group from the given members. Duplicates are
// rejected; members are kept in the given order (rank order).
func NewGroup(name string, members []CellID) (*Group, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("topology: group %q has no members", name)
	}
	g := &Group{name: name, members: append([]CellID(nil), members...), rank: make(map[CellID]int, len(members))}
	for i, m := range g.members {
		if _, dup := g.rank[m]; dup {
			return nil, fmt.Errorf("topology: group %q has duplicate member %d", name, m)
		}
		g.rank[m] = i
	}
	return g, nil
}

// AllCells returns the group containing every cell of the torus, the
// group the S-net hardware barrier serves.
func AllCells(t *Torus) *Group {
	members := make([]CellID, t.Cells())
	for i := range members {
		members[i] = CellID(i)
	}
	g, _ := NewGroup("all", members)
	return g
}

// Row returns the group of cells in torus row y, a typical index
// partition for one-dimensionally decomposed arrays.
func Row(t *Torus, y int) *Group {
	members := make([]CellID, t.w)
	for x := 0; x < t.w; x++ {
		members[x] = t.ID(x, y)
	}
	g, _ := NewGroup(fmt.Sprintf("row%d", y), members)
	return g
}

// Column returns the group of cells in torus column x.
func Column(t *Torus, x int) *Group {
	members := make([]CellID, t.h)
	for y := 0; y < t.h; y++ {
		members[y] = t.ID(x, y)
	}
	g, _ := NewGroup(fmt.Sprintf("col%d", x), members)
	return g
}

// Name reports the group's name.
func (g *Group) Name() string { return g.name }

// Size reports the number of members.
func (g *Group) Size() int { return len(g.members) }

// Members returns the members in rank order. The caller must not
// mutate the returned slice.
func (g *Group) Members() []CellID { return g.members }

// Rank reports the position of id within the group and whether id is
// a member.
func (g *Group) Rank(id CellID) (int, bool) {
	r, ok := g.rank[id]
	return r, ok
}

// Contains reports whether id is a member.
func (g *Group) Contains(id CellID) bool {
	_, ok := g.rank[id]
	return ok
}

// Root returns the rank-0 member, the root of reduction trees.
func (g *Group) Root() CellID { return g.members[0] }

// BinaryTreeParent reports the parent of id in the binary reduction
// tree over the group (rank arithmetic: parent(r) = (r-1)/2). The
// root's parent is itself. §4.5: "if sending addresses are previously
// calculated using algorithms such as binary tree ... global reduction
// can be achieved only by repeating store, execute, and load".
func (g *Group) BinaryTreeParent(id CellID) CellID {
	r, ok := g.rank[id]
	if !ok {
		panic(fmt.Sprintf("topology: %d not in group %q", id, g.name))
	}
	if r == 0 {
		return id
	}
	return g.members[(r-1)/2]
}

// BinaryTreeChildren reports the children of id in the binary
// reduction tree over the group.
func (g *Group) BinaryTreeChildren(id CellID) []CellID {
	r, ok := g.rank[id]
	if !ok {
		panic(fmt.Sprintf("topology: %d not in group %q", id, g.name))
	}
	var kids []CellID
	for _, c := range []int{2*r + 1, 2*r + 2} {
		if c < len(g.members) {
			kids = append(kids, g.members[c])
		}
	}
	return kids
}

// RingNext reports the successor of id on the group ring, used by the
// vector global reductions that circulate partial vectors through
// ring buffers (§4.5).
func (g *Group) RingNext(id CellID) CellID {
	r, ok := g.rank[id]
	if !ok {
		panic(fmt.Sprintf("topology: %d not in group %q", id, g.name))
	}
	return g.members[(r+1)%len(g.members)]
}

// Partition splits the torus's cells into k contiguous groups of
// near-equal size in ID order, modelling a one-dimensional index
// partition across cell groups.
func Partition(t *Torus, k int) ([]*Group, error) {
	n := t.Cells()
	if k <= 0 || k > n {
		return nil, fmt.Errorf("topology: cannot partition %d cells into %d groups", n, k)
	}
	groups := make([]*Group, 0, k)
	for i := 0; i < k; i++ {
		lo := i * n / k
		hi := (i + 1) * n / k
		members := make([]CellID, 0, hi-lo)
		for c := lo; c < hi; c++ {
			members = append(members, CellID(c))
		}
		g, err := NewGroup(fmt.Sprintf("part%d/%d", i, k), members)
		if err != nil {
			return nil, err
		}
		groups = append(groups, g)
	}
	return groups, nil
}

// SortedCopy returns the group members in ascending ID order; handy
// for deterministic iteration in tests and statistics.
func (g *Group) SortedCopy() []CellID {
	s := append([]CellID(nil), g.members...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}
