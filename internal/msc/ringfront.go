package msc

import (
	"sync"
	"sync/atomic"

	"ap1000plus/internal/ring"
)

// ringQueue is the lock-free build of one MSC+ send queue: the
// hardware FIFO is an SPSC ring (producer: the cell's CPU goroutine;
// consumer: the delivery worker that owns the cell), and overflow
// spills to a mutex-guarded DRAM buffer exactly like the hardware's
// "write into the buffer in DRAM" path (S4.1). FIFO order across the
// spill is kept by a monotonic rule: once anything is in the spill,
// the producer keeps spilling (even if the ring has space again)
// until the consumer has staged every spilled command, so ring
// entries are always older than spill entries.
//
// The consumer never pushes into the SPSC ring (that would make it a
// second producer); instead an "OS refill interrupt" moves a batch of
// spilled commands into a consumer-local staging buffer, which is
// served before the ring — staged commands are always older than
// anything pushed after the spill drained.
type ringQueue struct {
	name string
	hw   *ring.SPSC[Command]

	// Producer-side high-water mark of the hardware ring; only the
	// producer writes it, readers get a snapshot.
	maxDepth atomic.Int64

	// spill is the DRAM overflow buffer. spillPending mirrors its
	// length so the producer's fast path (and Len) can check it
	// without the lock.
	mu           sync.Mutex
	spill        []Command
	spillHead    int
	spillPending atomic.Int64

	// staged is the consumer-local refill buffer; stagedPending
	// mirrors its length for Len.
	staged        []Command
	stagedHead    int
	stagedPending atomic.Int64
	serving       bool // consumer is mid-spill-service (one interrupt per episode)

	pushes     atomic.Int64
	pops       atomic.Int64
	spills     atomic.Int64
	refills    atomic.Int64
	interrupts atomic.Int64

	// Spill/refill observers (observability layer): onSpill runs in
	// producer context under mu, onRefill in consumer context under
	// mu. Neither may call back into the queue.
	onSpill  func(queue string, n int)
	onRefill func(queue string, n int)
}

func newRingQueue(name string, capacityWords int) ringQueue {
	return ringQueue{name: name, hw: ring.New[Command](capacityWords / CommandWords)}
}

// push appends a command; single producer. It never rejects: overflow
// goes to the DRAM spill buffer.
func (q *ringQueue) push(c Command) {
	q.pushes.Add(1)
	if q.spillPending.Load() == 0 && q.hw.Push(c) {
		if d := int64(q.hw.Len()); d > q.maxDepth.Load() {
			q.maxDepth.Store(d)
		}
		return
	}
	q.mu.Lock()
	q.spill = append(q.spill, c)
	q.spillPending.Add(1)
	q.spills.Add(1)
	if q.onSpill != nil {
		q.onSpill(q.name, 1)
	}
	q.mu.Unlock()
}

// pop removes the oldest command; single consumer. Service order is
// staged refills, then the hardware ring, then a fresh refill from
// the spill buffer — which is exactly age order (see type comment).
func (q *ringQueue) pop() (Command, bool) {
	if q.stagedHead < len(q.staged) {
		c := q.staged[q.stagedHead]
		q.staged[q.stagedHead] = Command{}
		q.stagedHead++
		q.stagedPending.Add(-1)
		if q.stagedHead == len(q.staged) {
			q.staged = q.staged[:0]
			q.stagedHead = 0
		}
		q.pops.Add(1)
		return c, true
	}
	if c, ok := q.hw.Pop(); ok {
		q.serving = false
		q.pops.Add(1)
		return c, true
	}
	if q.spillPending.Load() == 0 {
		q.serving = false
		return Command{}, false
	}
	q.refill()
	return q.pop()
}

// refill models the OS interrupt that moves spilled commands back
// toward the queue: up to one ring's worth of commands per interrupt,
// staged consumer-side. A contiguous spill-service episode counts one
// interrupt, however many refill batches it takes.
func (q *ringQueue) refill() {
	q.mu.Lock()
	n := len(q.spill) - q.spillHead
	if max := q.hw.Cap(); n > max {
		n = max
	}
	q.staged = append(q.staged[:0], q.spill[q.spillHead:q.spillHead+n]...)
	q.stagedHead = 0
	q.spillHead += n
	if q.spillHead == len(q.spill) {
		q.spill = q.spill[:0]
		q.spillHead = 0
	}
	q.spillPending.Add(int64(-n))
	q.stagedPending.Add(int64(n))
	q.refills.Add(int64(n))
	if !q.serving {
		q.serving = true
		q.interrupts.Add(1)
	}
	if q.onRefill != nil {
		q.onRefill(q.name, n)
	}
	q.mu.Unlock()
}

// length reports queued commands (ring + spill + staged); exact for
// the consumer, a point-in-time approximation for anyone else.
func (q *ringQueue) length() int {
	return q.hw.Len() + int(q.spillPending.Load()) + int(q.stagedPending.Load())
}

func (q *ringQueue) snapshot() QueueStats {
	return QueueStats{
		Pushes:     q.pushes.Load(),
		Pops:       q.pops.Load(),
		Spills:     q.spills.Load(),
		Refills:    q.refills.Load(),
		Interrupts: q.interrupts.Load(),
		MaxDepth:   int(q.maxDepth.Load()),
	}
}

// ringFront is the lock-free MSC+ front end. The three send queues
// are SPSC rings — their single producer is the cell's CPU program
// goroutine (the SPMD discipline: one program goroutine per cell
// issues all user, system and remote-access commands). The two reply
// queues stay mutex-guarded: replies are pushed from delivery
// context, which under the sync-delivery fallback can be any worker.
type ringFront struct {
	user   ringQueue
	sys    ringQueue
	remote ringQueue

	replyMu      sync.Mutex
	getReply     *Queue
	rloadReply   *Queue
	replyPending atomic.Int64

	// notify is the doorbell to the delivery worker that owns this
	// cell; rung after every push.
	notify func()
	closed atomic.Bool
}

// NewRing builds an MSC+ whose queue storage is the lock-free ring
// front: send queues on SPSC rings with DRAM spill, reply queues
// mutex-guarded, pops non-blocking (TryNextBatch). notify is the
// doorbell rung after every push — the machine points it at the
// delivery worker that owns the cell. Blocking Next/NextBatch are
// still available (they poll); the ring-wire machine never calls
// them.
func NewRing(words int, notify func()) *MSC {
	if notify == nil {
		notify = func() {}
	}
	m := NewWithQueueWords(words)
	m.ring = &ringFront{
		user:       newRingQueue("user-send", words),
		sys:        newRingQueue("sys-send", words),
		remote:     newRingQueue("remote-access", words),
		getReply:   m.getReply,
		rloadReply: m.rloadReply,
		notify:     notify,
	}
	return m
}

func (f *ringFront) checkOpen() {
	if f.closed.Load() {
		panic("msc: push after Close")
	}
}

// pushReply serializes delivery-context pushes onto a reply queue.
func (f *ringFront) pushReply(q *Queue, c Command) {
	f.checkOpen()
	f.replyMu.Lock()
	q.Push(c)
	f.replyMu.Unlock()
	f.replyPending.Add(1)
	f.notify()
}

// tryNextBatch fills buf with up to len(buf) pending commands without
// blocking, in the hardware's priority order (replies first),
// evaluated once per activation like NextBatch.
func (f *ringFront) tryNextBatch(buf []Command) int {
	n := 0
	if f.replyPending.Load() > 0 {
		f.replyMu.Lock()
		for _, q := range []*Queue{f.rloadReply, f.getReply} {
			for n < len(buf) {
				c, ok := q.Pop()
				if !ok {
					break
				}
				buf[n] = c
				n++
			}
		}
		f.replyMu.Unlock()
		if n > 0 {
			f.replyPending.Add(int64(-n))
		}
	}
	for _, q := range []*ringQueue{&f.remote, &f.sys, &f.user} {
		for n < len(buf) {
			c, ok := q.pop()
			if !ok {
				break
			}
			buf[n] = c
			n++
		}
	}
	return n
}

func (f *ringFront) pending() int {
	f.replyMu.Lock()
	replies := f.getReply.Len() + f.rloadReply.Len()
	f.replyMu.Unlock()
	return replies + f.user.length() + f.sys.length() + f.remote.length()
}
