package msc

import (
	"sync"
	"testing"
	"testing/quick"
)

func cmd(i int) Command {
	return Command{Op: OpPut, Src: 0, Dst: 1, Tag: int64(i)}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue("q", QueueWords)
	for i := 0; i < 5; i++ {
		q.Push(cmd(i))
	}
	for i := 0; i < 5; i++ {
		c, ok := q.Pop()
		if !ok || c.Tag != int64(i) {
			t.Fatalf("pop %d = %+v, %v", i, c, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty should fail")
	}
}

func TestQueueCapacityIs8Commands(t *testing.T) {
	q := NewQueue("q", QueueWords)
	for i := 0; i < 8; i++ {
		q.Push(cmd(i))
	}
	if s := q.Stats(); s.Spills != 0 || s.MaxDepth != 8 {
		t.Fatalf("stats after 8 pushes: %+v", s)
	}
	q.Push(cmd(8))
	if s := q.Stats(); s.Spills != 1 {
		t.Fatalf("9th push should spill: %+v", s)
	}
}

func TestQueueOverflowSpillAndRefill(t *testing.T) {
	q := NewQueue("q", QueueWords)
	const n = 100
	for i := 0; i < n; i++ {
		q.Push(cmd(i))
	}
	if q.Len() != n {
		t.Fatalf("Len = %d", q.Len())
	}
	// FIFO preserved across spills.
	for i := 0; i < n; i++ {
		c, ok := q.Pop()
		if !ok || c.Tag != int64(i) {
			t.Fatalf("pop %d = %+v, %v", i, c, ok)
		}
	}
	s := q.Stats()
	if s.Spills != n-8 {
		t.Fatalf("spills = %d, want %d", s.Spills, n-8)
	}
	if s.Refills != n-8 {
		t.Fatalf("refills = %d, want %d", s.Refills, n-8)
	}
	if s.Interrupts == 0 {
		t.Fatal("refill must take OS interrupts")
	}
	if s.MaxDepth > 8 {
		t.Fatalf("hardware depth exceeded capacity: %d", s.MaxDepth)
	}
}

// Once spilling starts, later pushes must keep spilling (not jump the
// queue) even if the hardware FIFO has space, or ordering breaks.
func TestQueueNoReorderAfterSpill(t *testing.T) {
	q := NewQueue("q", QueueWords)
	for i := 0; i < 9; i++ { // 8 hw + 1 spill
		q.Push(cmd(i))
	}
	q.Pop() // hw has space now
	q.Push(cmd(9))
	var got []int64
	for {
		c, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, c.Tag)
	}
	want := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order broken: got %v", got)
		}
	}
}

// Property: any push/pop interleaving preserves FIFO order.
func TestQueueFIFOProperty(t *testing.T) {
	prop := func(ops []bool) bool {
		q := NewQueue("q", QueueWords)
		next := 0
		expect := 0
		for _, push := range ops {
			if push {
				q.Push(cmd(next))
				next++
			} else if c, ok := q.Pop(); ok {
				if c.Tag != int64(expect) {
					return false
				}
				expect++
			}
		}
		for {
			c, ok := q.Pop()
			if !ok {
				break
			}
			if c.Tag != int64(expect) {
				return false
			}
			expect++
		}
		return expect == next
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQueueTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewQueue("q", 4)
}

func TestMSCPriorityOrder(t *testing.T) {
	m := New()
	m.PushUser(Command{Op: OpPut, Tag: 1})
	m.PushSystem(Command{Op: OpPut, Tag: 2})
	m.PushRemoteAccess(Command{Op: OpRemoteLoad, Tag: 3})
	m.PushGetReply(Command{Op: OpGetReply, Tag: 4})
	m.PushRemoteLoadReply(Command{Op: OpRemoteLoadReply, Tag: 5})
	want := []int64{5, 4, 3, 2, 1}
	for _, w := range want {
		c, ok := m.Next()
		if !ok || c.Tag != w {
			t.Fatalf("Next = %+v, %v; want tag %d", c, ok, w)
		}
	}
}

func TestMSCNextBlocksUntilPush(t *testing.T) {
	m := New()
	got := make(chan Command, 1)
	go func() {
		c, ok := m.Next()
		if ok {
			got <- c
		}
	}()
	select {
	case c := <-got:
		t.Fatalf("Next returned %+v before push", c)
	default:
	}
	m.PushUser(Command{Tag: 7})
	if c := <-got; c.Tag != 7 {
		t.Fatalf("got %+v", c)
	}
}

func TestMSCCloseDrains(t *testing.T) {
	m := New()
	m.PushUser(Command{Tag: 1})
	m.Close()
	if c, ok := m.Next(); !ok || c.Tag != 1 {
		t.Fatalf("queued command lost at close: %+v %v", c, ok)
	}
	if _, ok := m.Next(); ok {
		t.Fatal("Next after drain+close should report done")
	}
}

func TestMSCPushAfterClosePanics(t *testing.T) {
	m := New()
	m.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.PushUser(Command{})
}

func TestMSCTryNext(t *testing.T) {
	m := New()
	if _, ok := m.TryNext(); ok {
		t.Fatal("TryNext on empty should fail")
	}
	m.PushUser(Command{Tag: 1})
	if c, ok := m.TryNext(); !ok || c.Tag != 1 {
		t.Fatalf("TryNext = %+v %v", c, ok)
	}
}

func TestMSCConcurrentProducersConsumer(t *testing.T) {
	m := New()
	const producers, each = 4, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				m.PushUser(Command{Tag: int64(p*each + i)})
			}
		}(p)
	}
	seen := make(map[int64]bool)
	for i := 0; i < producers*each; i++ {
		c, ok := m.Next()
		if !ok {
			t.Fatal("Next failed early")
		}
		if seen[c.Tag] {
			t.Fatalf("duplicate tag %d", c.Tag)
		}
		seen[c.Tag] = true
	}
	wg.Wait()
	if m.Pending() != 0 {
		t.Fatalf("pending = %d", m.Pending())
	}
}

func TestMSCStats(t *testing.T) {
	m := New()
	for i := 0; i < 20; i++ {
		m.PushUser(Command{Tag: int64(i)})
	}
	for i := 0; i < 20; i++ {
		m.Next()
	}
	s := m.Stats()
	if s.UserSend.Pushes != 20 || s.UserSend.Pops != 20 {
		t.Fatalf("user send stats: %+v", s.UserSend)
	}
	if s.UserSend.Spills != 12 {
		t.Fatalf("spills = %d, want 12", s.UserSend.Spills)
	}
}

func TestOpString(t *testing.T) {
	if OpPut.String() != "put" || OpRemoteLoadReply.String() != "rload-reply" {
		t.Error("op names wrong")
	}
}

func BenchmarkMSCPushPop(b *testing.B) {
	m := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.PushUser(Command{Tag: int64(i)})
		m.Next()
	}
}

// TestQueuePushBatchOrderAndSpill reserves ring space for a whole
// batch at once: commands beyond the hardware capacity spill to DRAM
// in one accounting step, and FIFO order survives the refill.
func TestQueuePushBatchOrderAndSpill(t *testing.T) {
	q := NewQueue("q", QueueWords)
	batch := make([]Command, 13)
	for i := range batch {
		batch[i] = cmd(i)
	}
	q.PushBatch(batch)
	s := q.Stats()
	if s.Pushes != 13 || s.Spills != 5 {
		t.Fatalf("stats after 13-command batch into an 8-deep ring: %+v", s)
	}
	for i := 0; i < 13; i++ {
		c, ok := q.Pop()
		if !ok || c.Tag != int64(i) {
			t.Fatalf("pop %d = %+v, %v", i, c, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("queue should be empty")
	}
}

// TestQueuePushBatchAfterSpillStaysOrdered mixes a single push that
// already spilled with a following batch: the batch must queue behind
// the spilled command, never overtake it.
func TestQueuePushBatchAfterSpillStaysOrdered(t *testing.T) {
	q := NewQueue("q", QueueWords)
	for i := 0; i < 9; i++ { // 9th spills
		q.Push(cmd(i))
	}
	q.PushBatch([]Command{cmd(9), cmd(10)})
	for i := 0; i < 11; i++ {
		c, ok := q.Pop()
		if !ok || c.Tag != int64(i) {
			t.Fatalf("pop %d = %+v, %v", i, c, ok)
		}
	}
}

// TestMSCPushUserBatchSingleWakeup delivers a whole batch to a
// blocked consumer with one Signal, preserving order, and an empty
// batch is a no-op even on a closed MSC.
func TestMSCPushUserBatchSingleWakeup(t *testing.T) {
	m := New()
	done := make(chan []int64)
	go func() {
		var tags []int64
		for i := 0; i < 4; i++ {
			c, ok := m.Next()
			if !ok {
				break
			}
			tags = append(tags, c.Tag)
		}
		done <- tags
	}()
	m.PushUserBatch([]Command{cmd(0), cmd(1), cmd(2), cmd(3)})
	tags := <-done
	for i, tag := range tags {
		if tag != int64(i) {
			t.Fatalf("tags = %v", tags)
		}
	}
	if len(tags) != 4 {
		t.Fatalf("got %d commands, want 4", len(tags))
	}
	m.Close()
	m.PushUserBatch(nil) // must not panic: empty batches never touch the queue
}
