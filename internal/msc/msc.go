// Package msc models the AP1000+ message controller (MSC+): the five
// command queues in its RAM (three send queues — user PUT/GET, system
// PUT/GET, remote access — and two reply queues — GET reply and
// remote-load reply), the 64-word queue limit with automatic spill to
// a DRAM buffer and operating-system refill, and the command/packet
// vocabulary the send and receive controllers exchange (S4.1).
package msc

import (
	"fmt"
	"runtime"
	"sync"

	"ap1000plus/internal/mc"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/topology"
)

// Op is a command/packet operation code.
type Op uint8

const (
	// OpPut transfers data into remote memory.
	OpPut Op = iota
	// OpGet requests remote data; the remote MSC+ answers with
	// OpGetReply without processor involvement.
	OpGet
	// OpGetReply carries GET payload back to the requester.
	OpGetReply
	// OpRemoteStore is a hardware-issued store into distributed
	// shared memory (S4.2); it is acknowledged automatically.
	OpRemoteStore
	// OpRemoteStoreAck acknowledges an OpRemoteStore.
	OpRemoteStoreAck
	// OpRemoteLoad is a hardware-issued blocking load from
	// distributed shared memory.
	OpRemoteLoad
	// OpRemoteLoadReply carries remote-load data back.
	OpRemoteLoadReply
	// OpSend appends a message to the destination's ring buffer
	// (the SEND/RECEIVE model, S4.3).
	OpSend
	// OpDSMInval invalidates a shared-space page cached by the
	// destination cell: the page's owner sends it when a write-through
	// store lands on a page with registered sharers, before the store
	// is acknowledged (the DSM directory protocol). It carries no
	// payload; RAddr is the owner-local page address and Tag the
	// writing cell.
	OpDSMInval
	// OpAtomic asks the destination's MSC+ to execute a read-modify-
	// write (the remote atomic suite generalizing the MC's S4.1
	// fetch-and-increment) on one 8-byte word of cell memory. AOp names
	// the operation, RAddr the word, AVal the operand and ACmp the
	// compare value (CompareAndSwap only). Tag correlates the reply for
	// fetching operations; Tag 0 marks a non-fetching update whose
	// reply serves only as the fence acknowledgement.
	OpAtomic
	// OpAtomicReply carries the fetched old value back (AVal), or the
	// bare acknowledgement for a non-fetching atomic (Tag 0). ACmp is
	// nonzero when the owner faulted instead of executing.
	OpAtomicReply
	// OpDSMEvict notifies a page's owner that the sender silently
	// dropped its cached copy (LRU capacity eviction), so the owner can
	// deregister the sharer instead of sending spurious invalidations.
	// RAddr is the owner-local page address, Tag the fill epoch of the
	// evicted copy (stale notices lose to a newer registration).
	OpDSMEvict

	numOps
)

// NumOps is the number of operation codes — the size any per-op
// statistics array must have.
const NumOps = int(numOps)

var opNames = [numOps]string{
	"put", "get", "get-reply", "rstore", "rstore-ack", "rload", "rload-reply", "send",
	"dsm-inval", "atomic", "atomic-reply", "dsm-evict",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// OpNames returns the operation names indexed by Op — the canonical
// message-class vocabulary of the fault layer (the networks key their
// per-class fault streams by these names).
func OpNames() []string {
	return append([]string(nil), opNames[:]...)
}

// CommandWords is the parameter count of a PUT/GET command: "PUT/GET
// operations require 8-word parameters, the overhead of PUT/GET is
// the time for 8 store instructions" (S4.1).
const CommandWords = 8

// QueueWords is the capacity of each MSC+ queue in words: "the
// maximum queue size is 64 words" (S4.1).
const QueueWords = 64

// Command is one entry of an MSC+ queue. The same structure doubles
// as the network packet header.
type Command struct {
	Op  Op
	Src topology.CellID
	Dst topology.CellID
	// RAddr is the remote address (on Dst for PUT/SEND, on the data
	// holder for GET). Address 0 on a GET means "no data copy" — the
	// acknowledge round trip of S4.1.
	RAddr mem.Addr
	// LAddr is the local address (source of PUT, destination of GET).
	LAddr mem.Addr
	// RStride and LStride describe the transfer patterns at the
	// remote and local side.
	RStride mem.Stride
	LStride mem.Stride
	// SendFlag is incremented on the data-sending cell when its send
	// DMA completes; RecvFlag on the data-receiving cell when its
	// receive DMA completes.
	SendFlag mc.FlagID
	RecvFlag mc.FlagID
	// Ack requests an acknowledgement for a PUT.
	Ack bool
	// Port selects the destination ring buffer for OpSend.
	Port int32
	// Tag carries an opaque correlation token (remote load waiters;
	// the writing cell on a DSM invalidation).
	Tag int64
	// CacheFill marks a remote load issued to fill a DSM page cache:
	// the owning cell's MSC+ registers the requester in its sharer
	// directory before capturing the reply, so a later write-through
	// store invalidates the requester's copy. Port doubles as the
	// sharer's fill epoch on such loads (OpSend and cache fills never
	// mix on one command).
	CacheFill bool
	// AOp, AVal and ACmp are the atomic header (OpAtomic /
	// OpAtomicReply): the ALU operation, its operand (or the fetched
	// old value on the reply) and the CompareAndSwap compare value
	// (re-used as the fault marker on replies). Plain integers so the
	// command stays GC-transparent.
	AOp  mc.AtomicOp
	AVal int64
	ACmp int64
	// Seq and Sum are the reliable-delivery header (fault layer): Seq
	// is the packet's sequence number on its (Src, Dst) link, Sum the
	// end-to-end checksum over header and payload. Both stay zero when
	// the machine runs without a fault plan; plain integers so the
	// command remains GC-transparent and the queues allocation-free.
	Seq uint64
	Sum uint64
	// San identifies the issuing thread's released sanitizer clock
	// (an apsan handle) when the machine runs with Sanitize; 0
	// otherwise. The controller that pops the command acquires it,
	// modeling the store-buffer ordering between the CPU's
	// command-word stores and the MSC+ reading them. A plain integer
	// rather than a pointer so Command stays GC-transparent: the
	// queues copy and store these structs on the simulator's hottest
	// path.
	San int64
}

func (c Command) String() string {
	return fmt.Sprintf("%s %d->%d raddr=%#x laddr=%#x %db", c.Op, c.Src, c.Dst, c.RAddr, c.LAddr, c.LStride.Total())
}

// QueueStats counts queue activity.
type QueueStats struct {
	Pushes     int64
	Pops       int64
	Spills     int64 // commands that overflowed to the DRAM buffer
	Refills    int64 // commands moved back from DRAM into the queue
	Interrupts int64 // OS interrupts taken for refill management
	MaxDepth   int   // high-water mark of the hardware queue
}

// Queue is one MSC+ command queue: a fixed-capacity hardware FIFO
// that spills to a DRAM buffer when full. "All data written by the
// processor after the queue becomes full is written into the buffer
// in DRAM. When the queue empties, the MSC+ interrupts the operating
// system, which then loads data from the buffer in DRAM back into the
// queue" (S4.1). Queue is not safe for concurrent use on its own; the
// owning MSC serializes access.
type Queue struct {
	name     string
	capacity int // commands (QueueWords / CommandWords)
	// hw is the fixed hardware FIFO, a ring of capacity entries
	// (allocated on first use, never grown — this is the steady-state
	// hot path and must not allocate per command).
	hw     []Command
	hwHead int
	hwLen  int
	// spill is the DRAM overflow buffer: appended at the tail,
	// consumed from spillHead, storage reused once drained.
	spill     []Command
	spillHead int
	stats     QueueStats
	// onSpill/onRefill, when set, observe DRAM spills and OS refill
	// interrupts (observability layer). Called with the owner's lock
	// held; they must not call back into the queue. onSpill fires once
	// per Push/PushBatch with the number of commands that overflowed,
	// so a batch costs one observer event, not one per command.
	onSpill  func(queue string, n int)
	onRefill func(queue string, n int)
}

// NewQueue builds a queue holding capacityWords of commands.
func NewQueue(name string, capacityWords int) *Queue {
	if capacityWords < CommandWords {
		panic(fmt.Sprintf("msc: queue %q capacity %d below one command", name, capacityWords))
	}
	return &Queue{name: name, capacity: capacityWords / CommandWords}
}

// spillLen reports pending commands in the DRAM buffer.
func (q *Queue) spillLen() int { return len(q.spill) - q.spillHead }

// hwPush appends to the hardware ring; the caller checked capacity.
func (q *Queue) hwPush(c Command) {
	if q.hw == nil {
		q.hw = make([]Command, q.capacity)
	}
	q.hw[(q.hwHead+q.hwLen)%q.capacity] = c
	q.hwLen++
	if q.hwLen > q.stats.MaxDepth {
		q.stats.MaxDepth = q.hwLen
	}
}

// Push appends a command. It never rejects: overflow goes to the DRAM
// spill buffer exactly like the hardware.
func (q *Queue) Push(c Command) {
	q.stats.Pushes++
	if q.spillLen() > 0 || q.hwLen >= q.capacity {
		q.spill = append(q.spill, c)
		q.stats.Spills++
		if q.onSpill != nil {
			q.onSpill(q.name, 1)
		}
		return
	}
	q.hwPush(c)
}

// PushBatch appends a run of commands back-to-back: the capacity check
// and the spill observer fire per batch instead of per command. The
// overflow semantics are identical to len(cmds) Push calls — commands
// fill the hardware ring until it is full, the rest spill to DRAM in
// order.
func (q *Queue) PushBatch(cmds []Command) {
	q.stats.Pushes += int64(len(cmds))
	spilled := 0
	for _, c := range cmds {
		if q.spillLen() > 0 || q.hwLen >= q.capacity {
			q.spill = append(q.spill, c)
			spilled++
			continue
		}
		q.hwPush(c)
	}
	if spilled > 0 {
		q.stats.Spills += int64(spilled)
		if q.onSpill != nil {
			q.onSpill(q.name, spilled)
		}
	}
}

// Pop removes the oldest command. When the hardware queue drains and
// spilled commands exist, the MSC+ interrupts the OS, which refills
// the queue from DRAM.
func (q *Queue) Pop() (Command, bool) {
	if q.hwLen == 0 {
		if q.spillLen() == 0 {
			return Command{}, false
		}
		q.refill()
	}
	c := q.hw[q.hwHead]
	q.hwHead = (q.hwHead + 1) % q.capacity
	q.hwLen--
	q.stats.Pops++
	if q.hwLen == 0 && q.spillLen() > 0 {
		q.refill()
	}
	return c, true
}

func (q *Queue) refill() {
	q.stats.Interrupts++
	n := q.capacity - q.hwLen
	if l := q.spillLen(); n > l {
		n = l
	}
	for i := 0; i < n; i++ {
		q.hwPush(q.spill[q.spillHead+i])
	}
	q.spillHead += n
	if q.spillHead == len(q.spill) {
		// Fully drained: reuse the buffer's storage from the start.
		q.spill = q.spill[:0]
		q.spillHead = 0
	}
	q.stats.Refills += int64(n)
	if q.onRefill != nil {
		q.onRefill(q.name, n)
	}
}

// Len reports queued commands (hardware + spill).
func (q *Queue) Len() int { return q.hwLen + q.spillLen() }

// Stats returns a snapshot of activity counters.
func (q *Queue) Stats() QueueStats { return q.stats }

// Name reports the queue's label.
func (q *Queue) Name() string { return q.name }

// MSC is one cell's message controller front end: the five queues and
// the condition variable the send controller blocks on. The CPU
// pushes commands; the consumer — a per-cell controller goroutine on
// the mutex wire, a shared delivery worker on the ring wire — pops
// them in the hardware's priority order.
type MSC struct {
	mu   sync.Mutex
	cond *sync.Cond

	// Send side: "three sending queues for PUT and GET requests
	// issued by the user, PUT and GET requests from the system, and
	// remote access" (S4.1).
	userSend  *Queue
	sysSend   *Queue
	remoteAcc *Queue
	// Reply side: "two reply queues, one for GET replies, and one for
	// remote load replies. Remote load replies precede GET replies."
	getReply   *Queue
	rloadReply *Queue

	closed bool

	// ring, when non-nil, replaces the mutex+cond front end with the
	// lock-free build (NewRing): send queues become SPSC rings, the
	// two reply Queues above are shared with it under its own lock,
	// and every push rings a doorbell instead of signalling a cond.
	ring *ringFront
}

// New builds an MSC+ with the hardware's 64-word queues.
func New() *MSC { return NewWithQueueWords(QueueWords) }

// NewWithQueueWords builds an MSC+ with a custom queue capacity, used
// by the queue-depth ablation.
func NewWithQueueWords(words int) *MSC {
	m := &MSC{
		userSend:   NewQueue("user-send", words),
		sysSend:    NewQueue("sys-send", words),
		remoteAcc:  NewQueue("remote-access", words),
		getReply:   NewQueue("get-reply", words),
		rloadReply: NewQueue("rload-reply", words),
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// PushUser enqueues a user-level PUT/GET command. This is the paper's
// user interface: the program writes parameters "one-by-one to the
// special address" with plain stores — no system call. On the ring
// front, the caller must be the cell's single program goroutine (the
// SPMD discipline); the queue is an SPSC ring.
func (m *MSC) PushUser(c Command) {
	if f := m.ring; f != nil {
		f.checkOpen()
		f.user.push(c)
		f.notify()
		return
	}
	m.push(m.userSend, c)
}

// PushSystem enqueues a system-issued PUT/GET. A separate queue means
// "the MSC+ does not need to save and restore the entries for the
// user" when the OS communicates.
func (m *MSC) PushSystem(c Command) {
	if f := m.ring; f != nil {
		f.checkOpen()
		f.sys.push(c)
		f.notify()
		return
	}
	m.push(m.sysSend, c)
}

// PushRemoteAccess enqueues a hardware remote load/store. "Remote
// access uses another queue because the processor waits for a remote
// load, so remote access must be privileged."
func (m *MSC) PushRemoteAccess(c Command) {
	if f := m.ring; f != nil {
		f.checkOpen()
		f.remote.push(c)
		f.notify()
		return
	}
	m.push(m.remoteAcc, c)
}

// PushGetReply enqueues a reply to a GET request received from the
// network. Reply pushes come from delivery context, so on the ring
// front they go through the mutex-guarded reply queues.
func (m *MSC) PushGetReply(c Command) {
	if f := m.ring; f != nil {
		f.pushReply(f.getReply, c)
		return
	}
	m.push(m.getReply, c)
}

// PushRemoteLoadReply enqueues a reply to a remote load.
func (m *MSC) PushRemoteLoadReply(c Command) {
	if f := m.ring; f != nil {
		f.pushReply(f.rloadReply, c)
		return
	}
	m.push(m.rloadReply, c)
}

func (m *MSC) push(q *Queue, c Command) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		panic("msc: push after Close")
	}
	q.Push(c)
	m.mu.Unlock()
	m.cond.Signal()
}

// PushUserBatch enqueues a run of user commands under one lock
// acquisition and one doorbell (condition signal) — the descriptor-ring
// NIC pattern: the CPU builds the whole command list in memory, then
// rings the doorbell once. One signal suffices because each MSC has a
// single send controller; it re-scans every queue before sleeping.
func (m *MSC) PushUserBatch(cmds []Command) {
	if len(cmds) == 0 {
		return
	}
	if f := m.ring; f != nil {
		f.checkOpen()
		for _, c := range cmds {
			f.user.push(c)
		}
		f.notify()
		return
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		panic("msc: push after Close")
	}
	m.userSend.PushBatch(cmds)
	m.mu.Unlock()
	m.cond.Signal()
}

// Next pops the highest-priority pending command, blocking until one
// arrives or the MSC is closed. Priority: remote-load replies, then
// GET replies, then remote access, then system sends, then user
// sends.
func (m *MSC) Next() (Command, bool) {
	if f := m.ring; f != nil {
		var buf [1]Command
		for {
			if f.tryNextBatch(buf[:]) == 1 {
				return buf[0], true
			}
			if f.closed.Load() {
				return Command{}, false
			}
			runtime.Gosched()
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for _, q := range []*Queue{m.rloadReply, m.getReply, m.remoteAcc, m.sysSend, m.userSend} {
			if c, ok := q.Pop(); ok {
				return c, true
			}
		}
		if m.closed {
			return Command{}, false
		}
		m.cond.Wait()
	}
}

// NextBatch fills buf with up to len(buf) pending commands under a
// single lock acquisition, blocking until at least one arrives or the
// MSC is closed. Commands come out in the same priority order Next
// uses, evaluated once per activation: the controller drains a whole
// run per doorbell instead of paying the lock and the priority scan
// per command. A reply that arrives while the controller works through
// a batch waits at most one batch — the hardware's own queue-service
// granularity trade.
func (m *MSC) NextBatch(buf []Command) (int, bool) {
	if len(buf) == 0 {
		panic("msc: NextBatch with empty buffer")
	}
	if f := m.ring; f != nil {
		for {
			if n := f.tryNextBatch(buf); n > 0 {
				return n, true
			}
			if f.closed.Load() {
				return 0, false
			}
			runtime.Gosched()
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		n := 0
		for _, q := range []*Queue{m.rloadReply, m.getReply, m.remoteAcc, m.sysSend, m.userSend} {
			for n < len(buf) {
				c, ok := q.Pop()
				if !ok {
					break
				}
				buf[n] = c
				n++
			}
			if n == len(buf) {
				break
			}
		}
		if n > 0 {
			return n, true
		}
		if m.closed {
			return 0, false
		}
		m.cond.Wait()
	}
}

// TryNextBatch fills buf with up to len(buf) pending commands without
// blocking, in NextBatch's priority order. It is the ring-wire
// delivery worker's drain primitive: the worker owns the consumer
// side of the cell's SPSC rings, so only one goroutine may call it
// (or any other pop) at a time.
func (m *MSC) TryNextBatch(buf []Command) int {
	if f := m.ring; f != nil {
		return f.tryNextBatch(buf)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, q := range []*Queue{m.rloadReply, m.getReply, m.remoteAcc, m.sysSend, m.userSend} {
		for n < len(buf) {
			c, ok := q.Pop()
			if !ok {
				break
			}
			buf[n] = c
			n++
		}
	}
	return n
}

// TryNext pops without blocking.
func (m *MSC) TryNext() (Command, bool) {
	if f := m.ring; f != nil {
		var buf [1]Command
		if f.tryNextBatch(buf[:]) == 1 {
			return buf[0], true
		}
		return Command{}, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, q := range []*Queue{m.rloadReply, m.getReply, m.remoteAcc, m.sysSend, m.userSend} {
		if c, ok := q.Pop(); ok {
			return c, true
		}
	}
	return Command{}, false
}

// Pending reports the total commands across all queues.
func (m *MSC) Pending() int {
	if f := m.ring; f != nil {
		return f.pending()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.userSend.Len() + m.sysSend.Len() + m.remoteAcc.Len() + m.getReply.Len() + m.rloadReply.Len()
}

// Close marks the MSC as shutting down; Next returns false once the
// queues drain. Pushing after Close panics — it would lose commands.
func (m *MSC) Close() {
	if f := m.ring; f != nil {
		f.closed.Store(true)
		f.notify()
		return
	}
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

// Reopen reverses Close, making the MSC accept pushes again — the
// machine reuses cells across gang-scheduled jobs instead of
// rebuilding them. Only legal once the queues have fully drained and
// every consumer that observed the Close has exited.
func (m *MSC) Reopen() {
	if f := m.ring; f != nil {
		f.closed.Store(false)
		return
	}
	m.mu.Lock()
	m.closed = false
	m.mu.Unlock()
}

// SetObserver installs spill/refill observers on all five queues
// (observability layer). Install before traffic flows; the callbacks
// run with the MSC lock held and must not call back into the MSC.
// Both receive the command count of the triggering push or refill.
func (m *MSC) SetObserver(onSpill func(queue string, n int), onRefill func(queue string, n int)) {
	if f := m.ring; f != nil {
		for _, q := range []*ringQueue{&f.user, &f.sys, &f.remote} {
			q.onSpill = onSpill
			q.onRefill = onRefill
		}
		f.replyMu.Lock()
		for _, q := range []*Queue{f.getReply, f.rloadReply} {
			q.onSpill = onSpill
			q.onRefill = onRefill
		}
		f.replyMu.Unlock()
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, q := range []*Queue{m.userSend, m.sysSend, m.remoteAcc, m.getReply, m.rloadReply} {
		q.onSpill = onSpill
		q.onRefill = onRefill
	}
}

// MSCStats aggregates the five queues' statistics.
type MSCStats struct {
	UserSend, SysSend, RemoteAccess, GetReply, RemoteLoadReply QueueStats
}

// Stats snapshots all queue counters.
func (m *MSC) Stats() MSCStats {
	if f := m.ring; f != nil {
		f.replyMu.Lock()
		get, rload := f.getReply.Stats(), f.rloadReply.Stats()
		f.replyMu.Unlock()
		return MSCStats{
			UserSend:        f.user.snapshot(),
			SysSend:         f.sys.snapshot(),
			RemoteAccess:    f.remote.snapshot(),
			GetReply:        get,
			RemoteLoadReply: rload,
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return MSCStats{
		UserSend:        m.userSend.Stats(),
		SysSend:         m.sysSend.Stats(),
		RemoteAccess:    m.remoteAcc.Stats(),
		GetReply:        m.getReply.Stats(),
		RemoteLoadReply: m.rloadReply.Stats(),
	}
}
