package msc

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestRingFrontFIFOThroughSpill pushes far more commands than the
// hardware ring holds and checks the consumer sees them in issue
// order, with the overflow accounted as DRAM spills and OS refills —
// the same semantics the mutex front has.
func TestRingFrontFIFOThroughSpill(t *testing.T) {
	m := NewRing(QueueWords, nil) // 8 commands of hardware ring
	const total = 1000
	for i := 0; i < total; i++ {
		m.PushUser(Command{Tag: int64(i)})
	}
	var buf [16]Command
	seen := 0
	for seen < total {
		n := m.TryNextBatch(buf[:])
		if n == 0 {
			t.Fatalf("ring front ran dry after %d of %d commands", seen, total)
		}
		for i := 0; i < n; i++ {
			if buf[i].Tag != int64(seen) {
				t.Fatalf("command %d out of order: got tag %d", seen, buf[i].Tag)
			}
			seen++
		}
	}
	st := m.Stats().UserSend
	if st.Pushes != total || st.Pops != total {
		t.Errorf("stats pushes/pops = %d/%d, want %d/%d", st.Pushes, st.Pops, total, total)
	}
	if st.Spills == 0 || st.Refills != st.Spills || st.Interrupts == 0 {
		t.Errorf("spill accounting off: %+v", st)
	}
	if m.Pending() != 0 {
		t.Errorf("Pending = %d after drain", m.Pending())
	}
}

// TestRingFrontPriority checks replies overtake sends per activation,
// in the hardware's order: rload replies, GET replies, remote access,
// system, user.
func TestRingFrontPriority(t *testing.T) {
	m := NewRing(QueueWords, nil)
	m.PushUser(Command{Tag: 5})
	m.PushSystem(Command{Tag: 4})
	m.PushRemoteAccess(Command{Tag: 3})
	m.PushGetReply(Command{Tag: 2})
	m.PushRemoteLoadReply(Command{Tag: 1})
	var buf [8]Command
	n := m.TryNextBatch(buf[:])
	if n != 5 {
		t.Fatalf("TryNextBatch = %d, want 5", n)
	}
	for i := 0; i < 5; i++ {
		if buf[i].Tag != int64(i+1) {
			t.Errorf("position %d: tag %d, want %d", i, buf[i].Tag, i+1)
		}
	}
}

// TestRingFrontConcurrent runs a producer goroutine against a
// consumer with the doorbell wired, under -race in make verify: every
// command arrives exactly once in order, and the notify count is
// nonzero (the doorbell actually rings).
func TestRingFrontConcurrent(t *testing.T) {
	var rings atomic.Int64
	m := NewRing(QueueWords, func() { rings.Add(1) })
	const total = 20000
	go func() {
		for i := 0; i < total; i++ {
			m.PushUser(Command{Tag: int64(i)})
			if i%3 == 0 {
				runtime.Gosched()
			}
		}
	}()
	var buf [32]Command
	seen := 0
	for seen < total {
		n := m.TryNextBatch(buf[:])
		if n == 0 {
			runtime.Gosched()
			continue
		}
		for i := 0; i < n; i++ {
			if buf[i].Tag != int64(seen) {
				t.Fatalf("command %d: got tag %d (lost or reordered)", seen, buf[i].Tag)
			}
			seen++
		}
	}
	if rings.Load() == 0 {
		t.Error("doorbell never rang")
	}
}

// TestRingFrontCloseAndPanic pins Close semantics: pops report
// closed-and-empty, pushes panic.
func TestRingFrontCloseAndPanic(t *testing.T) {
	m := NewRing(QueueWords, nil)
	m.Close()
	if _, ok := m.Next(); ok {
		t.Error("Next returned a command from a closed empty MSC")
	}
	defer func() {
		if recover() == nil {
			t.Error("PushUser after Close did not panic")
		}
	}()
	m.PushUser(Command{})
}
