package vpp

import (
	"math"
	"testing"

	"ap1000plus/internal/machine"
	"ap1000plus/internal/trace"
)

func TestBlock2DOwnership(t *testing.T) {
	f := newFixture(t, 4, 2, "")
	a, err := NewBlock2D(f.m, "a", 10, 17, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Every global element owned by exactly one rank.
	covered := map[[2]int]int{}
	for r := 0; r < 8; r++ {
		rlo, rhi := a.OwnedRows(r)
		clo, chi := a.OwnedCols(r)
		for row := rlo; row < rhi; row++ {
			for col := clo; col < chi; col++ {
				key := [2]int{row, col}
				covered[key]++
			}
		}
	}
	if len(covered) != 10*17 {
		t.Fatalf("coverage %d of %d", len(covered), 10*17)
	}
	for key, n := range covered {
		if n != 1 {
			t.Fatalf("element %v owned %d times", key, n)
		}
	}
	if _, err := NewBlock2D(f.m, "bad", 0, 5, 1); err == nil {
		t.Error("bad shape accepted")
	}
}

// TestBlock2DJacobi runs a 2-D Jacobi smoother on a block-block
// partitioned array, exchanging all four borders with
// OverlapFixBlock2D, and compares every element against a serial
// reference — the full §5.4 "larger dimensional partitioning"
// scenario, group barriers included.
func TestBlock2DJacobi(t *testing.T) {
	const rows, cols, iters = 12, 20, 5
	f := newFixture(t, 4, 2, "block2d")
	cur, err := NewBlock2D(f.m, "cur", rows, cols, 1)
	if err != nil {
		t.Fatal(err)
	}
	nxt, err := NewBlock2D(f.m, "nxt", rows, cols, 1)
	if err != nil {
		t.Fatal(err)
	}

	initVal := func(row, col int) float64 {
		return math.Sin(float64(row)*0.9) + math.Cos(float64(col)*0.7)
	}
	// Serial reference.
	ref := make([]float64, rows*cols)
	tmp := make([]float64, rows*cols)
	for row := 0; row < rows; row++ {
		for col := 0; col < cols; col++ {
			ref[row*cols+col] = initVal(row, col)
		}
	}
	at := func(g []float64, row, col int) float64 {
		if row < 0 || row >= rows || col < 0 || col >= cols {
			return 0
		}
		return g[row*cols+col]
	}
	for it := 0; it < iters; it++ {
		for row := 0; row < rows; row++ {
			for col := 0; col < cols; col++ {
				tmp[row*cols+col] = 0.2 * (at(ref, row, col) + at(ref, row-1, col) +
					at(ref, row+1, col) + at(ref, row, col-1) + at(ref, row, col+1))
			}
		}
		ref, tmp = tmp, ref
	}

	err = f.m.Run(func(c *machine.Cell) error {
		rt := f.rts[c.ID()]
		r := rt.Rank()
		rlo, rhi := cur.OwnedRows(r)
		clo, chi := cur.OwnedCols(r)
		for row := rlo; row < rhi; row++ {
			for col := clo; col < chi; col++ {
				cur.Set(r, row, col, initVal(row, col))
			}
		}
		rt.Barrier()
		a, b := cur, nxt
		for it := 0; it < iters; it++ {
			if err := rt.OverlapFixBlock2D(a); err != nil {
				return err
			}
			get := func(row, col int) float64 {
				if row < 0 || row >= rows || col < 0 || col >= cols {
					return 0
				}
				return a.At(r, row, col)
			}
			for row := rlo; row < rhi; row++ {
				for col := clo; col < chi; col++ {
					b.Set(r, row, col, 0.2*(get(row, col)+get(row-1, col)+
						get(row+1, col)+get(row, col-1)+get(row, col+1)))
				}
			}
			a, b = b, a
			rt.Barrier()
		}
		// Compare the owned block against the serial reference.
		for row := rlo; row < rhi; row++ {
			for col := clo; col < chi; col++ {
				got := a.At(r, row, col)
				want := ref[row*cols+col]
				if math.Abs(got-want) > 1e-12 {
					t.Errorf("rank %d (%d,%d): got %v, want %v", r, row, col, got, want)
					return nil
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The exchange must contain both contiguous row PUTs and strided
	// column PUTs, and only GROUP barriers beyond the explicit
	// all-cell ones.
	row := trace.Stats(f.m.Trace())
	if row.Put == 0 || row.PutS == 0 {
		t.Errorf("expected both PUT and PUTS: %+v", row)
	}
	// iters * (2 group barriers) + 1 setup + iters loop barriers.
	wantSync := float64(2*iters + 1 + iters)
	if row.Sync != wantSync {
		t.Errorf("Sync = %v, want %v", row.Sync, wantSync)
	}
	// Hardware (all-cell) barriers: setup + per-iteration only — the
	// overlap exchange must use group barriers, not the S-net.
	if got := f.m.Barriers(); got != int64(1+iters) {
		t.Errorf("S-net barriers = %d, want %d (group barriers must not use the S-net)", got, 1+iters)
	}
}

func TestBlock2DGroupReductions(t *testing.T) {
	f := newFixture(t, 4, 2, "")
	a, err := NewBlock2D(f.m, "a", 8, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	err = f.m.Run(func(c *machine.Cell) error {
		rt := f.rts[c.ID()]
		r := rt.Rank()
		// Sum of ranks along my process-grid row, then along my column.
		rowSum := rt.Sync.Reduce(a.RowGroup(r), trace.ReduceSum, float64(r))
		colSum := rt.Sync.Reduce(a.ColGroup(r), trace.ReduceSum, float64(r))
		var wantRow, wantCol float64
		for _, m := range f.m.Group(a.RowGroup(r)).Members() {
			wantRow += float64(m)
		}
		for _, m := range f.m.Group(a.ColGroup(r)).Members() {
			wantCol += float64(m)
		}
		if rowSum != wantRow || colSum != wantCol {
			t.Errorf("rank %d: row %v/%v col %v/%v", r, rowSum, wantRow, colSum, wantCol)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
