package vpp

import (
	"fmt"

	"ap1000plus/internal/core"
	"ap1000plus/internal/machine"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/topology"
	"ap1000plus/internal/trace"
)

// Block2D is a global two-dimensional array decomposed in BOTH
// dimensions over the torus-shaped process grid — the "larger
// dimensional partitioning" §5.4 names as the case where group
// barriers and group reductions become necessary. The cell at torus
// coordinate (x, y) owns the row block y and the column block x, with
// an overlap border of w elements on every side. Boundary ROWS are
// contiguous in the row-major local layout (plain PUT); boundary
// COLUMNS are strided (stride PUT).
type Block2D struct {
	name       string
	rows, cols int
	w          int
	gw, gh     int // process grid = torus dimensions
	torus      *topology.Torus
	segs       []*mem.Segment
	locals     [][]float64
	width      int // local row length = colBlock + 2w
	height     int // local rows = rowBlock + 2w
	// rowGroups[y] and colGroups[x] are the machine group IDs for
	// group collectives along the two partition dimensions.
	rowGroups []trace.GroupID
	colGroups []trace.GroupID
}

// NewBlock2D allocates the array on every cell and registers the row
// and column groups of the process grid.
func NewBlock2D(m *machine.Machine, name string, rows, cols, overlap int) (*Block2D, error) {
	if rows <= 0 || cols <= 0 || overlap < 0 {
		return nil, fmt.Errorf("vpp: block2d %q: bad shape %dx%d overlap %d", name, rows, cols, overlap)
	}
	tor := m.Torus()
	a := &Block2D{
		name: name, rows: rows, cols: cols, w: overlap,
		gw: tor.Width(), gh: tor.Height(), torus: tor,
	}
	rowBlock := BlockSize(rows, a.gh)
	colBlock := BlockSize(cols, a.gw)
	a.height = rowBlock + 2*overlap
	a.width = colBlock + 2*overlap
	for r := 0; r < m.Cells(); r++ {
		seg, local, err := m.Cell(topology.CellID(r)).AllocFloat64(name, a.height*a.width)
		if err != nil {
			return nil, fmt.Errorf("vpp: block2d %q: %w", name, err)
		}
		a.segs = append(a.segs, seg)
		a.locals = append(a.locals, local)
	}
	for y := 0; y < a.gh; y++ {
		a.rowGroups = append(a.rowGroups, m.DefineGroup(topology.Row(tor, y)))
	}
	for x := 0; x < a.gw; x++ {
		a.colGroups = append(a.colGroups, m.DefineGroup(topology.Column(tor, x)))
	}
	return a, nil
}

// Shape reports the global dimensions.
func (a *Block2D) Shape() (rows, cols int) { return a.rows, a.cols }

// OwnedRows reports the global row range [lo, hi) of rank r.
func (a *Block2D) OwnedRows(r int) (lo, hi int) {
	_, y := a.torus.Coord(topology.CellID(r))
	return blockRange(a.rows, a.gh, y)
}

// OwnedCols reports the global column range [lo, hi) of rank r.
func (a *Block2D) OwnedCols(r int) (lo, hi int) {
	x, _ := a.torus.Coord(topology.CellID(r))
	return blockRange(a.cols, a.gw, x)
}

// RowGroup returns the group ID of rank r's process-grid row (cells
// sharing the same row blocks).
func (a *Block2D) RowGroup(r int) trace.GroupID {
	_, y := a.torus.Coord(topology.CellID(r))
	return a.rowGroups[y]
}

// ColGroup returns the group ID of rank r's process-grid column.
func (a *Block2D) ColGroup(r int) trace.GroupID {
	x, _ := a.torus.Coord(topology.CellID(r))
	return a.colGroups[x]
}

// localIndex maps global (row, col) to rank r's local slice index;
// valid for owned elements and in-range shadow cells.
func (a *Block2D) localIndex(r, row, col int) int {
	rlo, _ := a.OwnedRows(r)
	clo, _ := a.OwnedCols(r)
	return (a.w+row-rlo)*a.width + (a.w + col - clo)
}

// At reads global element (row, col) from rank r's local copy
// (owned or shadow).
func (a *Block2D) At(r, row, col int) float64 {
	return a.locals[r][a.localIndex(r, row, col)]
}

// Set writes global element (row, col) on its owner's copy via rank
// r's local storage.
func (a *Block2D) Set(r, row, col int, v float64) {
	a.locals[r][a.localIndex(r, row, col)] = v
}

// addr returns the address of rank r's local element for global
// (row, col).
func (a *Block2D) addr(r, row, col int) mem.Addr {
	return a.segs[r].Base() + mem.Addr(a.localIndex(r, row, col)*8)
}

// Local returns rank r's raw local storage (height x width,
// row-major, shadows included).
func (a *Block2D) Local(r int) []float64 { return a.locals[r] }

// LocalWidth reports the local row length including shadows.
func (a *Block2D) LocalWidth() int { return a.width }

// neighborRank returns the rank at the torus coordinate offset
// (dx, dy) from r WITHOUT wraparound: arrays are not periodic, so
// edges have no neighbour (ok=false).
func (a *Block2D) neighborRank(r, dx, dy int) (int, bool) {
	x, y := a.torus.Coord(topology.CellID(r))
	nx, ny := x+dx, y+dy
	if nx < 0 || nx >= a.gw || ny < 0 || ny >= a.gh {
		return 0, false
	}
	return int(a.torus.ID(nx, ny)), true
}

// OverlapFixBlock2D refreshes all four shadow borders of a
// two-dimensionally partitioned array, collectively. North/south
// boundary rows move as contiguous PUTs; east/west boundary columns
// as stride PUTs. Completion uses Ack & Barrier with GROUP barriers:
// the row exchange synchronizes each process-grid column group, the
// column exchange each row group — no all-cells barrier is needed,
// which is exactly why §2.3 demands group synchronization from the
// architecture.
func (rt *Runtime) OverlapFixBlock2D(a *Block2D) error {
	if a.w == 0 {
		return nil
	}
	r := rt.Rank()
	rlo, rhi := a.OwnedRows(r)
	clo, chi := a.OwnedCols(r)
	ownRows, ownCols := rhi-rlo, chi-clo
	if ownRows <= 0 || ownCols <= 0 {
		return fmt.Errorf("vpp: block2d %q: rank %d owns nothing", a.name, r)
	}
	w := a.w

	// North/south: our first/last w owned rows into the vertical
	// neighbours' facing shadows (contiguous PUT per row; batched, the
	// per-row PUTs to one neighbour coalesce into a single stride PUT
	// because consecutive rows sit width*8 apart on both ends).
	is := rt.issuer()
	nr := minInt(w, ownRows)
	for k := 0; k < nr; k++ {
		if up, ok := a.neighborRank(r, 0, -1); ok {
			// Our top row rlo+k lands in up's bottom shadow.
			if err := is.put(core.Transfer{
				To:     topology.CellID(up),
				Remote: a.addr(up, rlo+k, clo), Local: a.addr(r, rlo+k, clo),
				Size: int64(ownCols) * 8, Ack: true,
			}); err != nil {
				return err
			}
		}
		if down, ok := a.neighborRank(r, 0, +1); ok {
			// Ascending row order so successive rows extend one stride.
			row := rhi - nr + k
			if err := is.put(core.Transfer{
				To:     topology.CellID(down),
				Remote: a.addr(down, row, clo), Local: a.addr(r, row, clo),
				Size: int64(ownCols) * 8, Ack: true,
			}); err != nil {
				return err
			}
		}
	}
	if err := is.flush(); err != nil {
		return err
	}
	rt.Comm.AckWait()
	rt.Sync.Barrier(a.ColGroup(r)) // vertical exchange: column group

	// East/west: our first/last w owned columns (strided) into the
	// horizontal neighbours' facing shadows (batched; adjacent columns
	// to one neighbour interleave into a single wider stride PUT).
	colPat := mem.Stride{ItemSize: 8, Count: int64(ownRows), Skip: int64((a.width - 1) * 8)}
	is = rt.issuer()
	nc := minInt(w, ownCols)
	for k := 0; k < nc; k++ {
		if left, ok := a.neighborRank(r, -1, 0); ok {
			col := clo + k
			if err := is.putStride(core.Transfer{
				To:     topology.CellID(left),
				Remote: a.addr(left, rlo, col), Local: a.addr(r, rlo, col),
				Ack:    true,
			}, colPat, colPat); err != nil {
				return err
			}
		}
		if right, ok := a.neighborRank(r, +1, 0); ok {
			// Ascending column order so adjacent columns interleave.
			col := chi - nc + k
			if err := is.putStride(core.Transfer{
				To:     topology.CellID(right),
				Remote: a.addr(right, rlo, col), Local: a.addr(r, rlo, col),
				Ack:    true,
			}, colPat, colPat); err != nil {
				return err
			}
		}
	}
	if err := is.flush(); err != nil {
		return err
	}
	rt.Comm.AckWait()
	rt.Sync.Barrier(a.RowGroup(r)) // horizontal exchange: row group
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
