package vpp

import (
	"testing"

	"ap1000plus/internal/machine"
	"ap1000plus/internal/topology"
	"ap1000plus/internal/trace"
)

func TestCyclicOwnership(t *testing.T) {
	f := newFixture(t, 2, 2, "")
	a, err := NewCyclicArray1D(f.m, "c", 10)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for i := 0; i < 10; i++ {
		r := a.OwnerOf(i)
		counts[r]++
		if a.LocalIndex(i) != i/4 {
			t.Errorf("LocalIndex(%d) = %d", i, a.LocalIndex(i))
		}
	}
	for r := 0; r < 4; r++ {
		if counts[r] != a.OwnedCount(r) {
			t.Errorf("rank %d: counted %d, OwnedCount %d", r, counts[r], a.OwnedCount(r))
		}
	}
	if _, err := NewCyclicArray1D(f.m, "bad", 0); err == nil {
		t.Error("zero-length cyclic array accepted")
	}
}

func TestRedistributeBlockToCyclicAndBack(t *testing.T) {
	f := newFixture(t, 2, 2, "redist")
	const n = 37 // awkward length: uneven blocks and cycles
	blk, err := NewArray1D(f.m, "blk", n, 0)
	if err != nil {
		t.Fatal(err)
	}
	cyc, err := NewCyclicArray1D(f.m, "cyc", n)
	if err != nil {
		t.Fatal(err)
	}
	blk2, err := NewArray1D(f.m, "blk2", n, 0)
	if err != nil {
		t.Fatal(err)
	}
	err = f.m.Run(func(c *machine.Cell) error {
		rt := f.rts[c.ID()]
		r := rt.Rank()
		lo, _ := blk.OwnedRange(r)
		own := blk.Owned(r)
		for i := range own {
			own[i] = 1000 + float64(lo+i)
		}
		rt.Barrier()
		mv, err := rt.RedistributeBlockToCyclic(cyc, blk)
		if err != nil {
			return err
		}
		mv.Wait()
		// Check the cyclic view.
		local := cyc.Local(r)
		for k := 0; k < cyc.OwnedCount(r); k++ {
			want := 1000 + float64(k*4+r)
			if local[k] != want {
				t.Errorf("rank %d cyc[%d] = %v, want %v", r, k, local[k], want)
			}
		}
		// And back again.
		mv, err = rt.RedistributeCyclicToBlock(blk2, cyc)
		if err != nil {
			return err
		}
		mv.Wait()
		lo2, hi2 := blk2.OwnedRange(r)
		own2 := blk2.Owned(r)
		for i := lo2; i < hi2; i++ {
			if own2[i-lo2] != 1000+float64(i) {
				t.Errorf("rank %d blk2[%d] = %v, want %v", r, i, own2[i-lo2], 1000+float64(i))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Redistribution must be dominated by stride traffic (PUTS); a
	// handful of single-element transfers at block tails degenerate
	// to plain PUTs.
	row := trace.Stats(f.m.Trace())
	if row.PutS == 0 || row.PutS < 4*row.Put {
		t.Errorf("redistribution not stride-dominated: %+v", row)
	}
}

func TestRedistributeLengthMismatch(t *testing.T) {
	f := newFixture(t, 2, 2, "")
	blk, _ := NewArray1D(f.m, "blk", 10, 0)
	cyc, _ := NewCyclicArray1D(f.m, "cyc", 12)
	err := f.m.Run(func(c *machine.Cell) error {
		rt := f.rts[c.ID()]
		if _, err := rt.RedistributeBlockToCyclic(cyc, blk); err == nil {
			t.Error("length mismatch accepted")
		}
		if _, err := rt.RedistributeCyclicToBlock(blk, cyc); err == nil {
			t.Error("length mismatch accepted (inverse)")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGroupPartitionedCollectives exercises the §5.4 future-work
// scenario: two-dimensional partitioning where row groups and column
// groups of the process grid run group barriers and group reductions
// concurrently.
func TestGroupPartitionedCollectives(t *testing.T) {
	f := newFixture(t, 4, 2, "")
	tor := f.m.Torus()
	rowIDs := make([]trace.GroupID, tor.Height())
	colIDs := make([]trace.GroupID, tor.Width())
	for y := 0; y < tor.Height(); y++ {
		rowIDs[y] = f.m.DefineGroup(topology.Row(f.m.Torus(), y))
	}
	for x := 0; x < tor.Width(); x++ {
		colIDs[x] = f.m.DefineGroup(topology.Column(f.m.Torus(), x))
	}
	err := f.m.Run(func(c *machine.Cell) error {
		rt := f.rts[c.ID()]
		x, y := tor.Coord(c.ID())
		// Row-wise sum of ranks, then column-wise max of the row sums.
		rowSum := rt.Sync.Reduce(rowIDs[y], trace.ReduceSum, float64(c.ID()))
		var wantRow float64
		for _, m := range f.m.Group(rowIDs[y]).Members() {
			wantRow += float64(m)
		}
		if rowSum != wantRow {
			t.Errorf("cell %d row sum = %v, want %v", c.ID(), rowSum, wantRow)
		}
		rt.Sync.Barrier(rowIDs[y])
		colMax := rt.Sync.Reduce(colIDs[x], trace.ReduceMax, rowSum)
		if colMax < rowSum {
			t.Errorf("cell %d col max %v below own %v", c.ID(), colMax, rowSum)
		}
		rt.Sync.Barrier(colIDs[x])
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
