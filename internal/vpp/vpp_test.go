package vpp

import (
	"math"
	"testing"

	"ap1000plus/internal/machine"
	"ap1000plus/internal/topology"
	"ap1000plus/internal/trace"
)

type fixture struct {
	m   *machine.Machine
	rts []*Runtime
}

func newFixture(t testing.TB, w, h int, traceApp string) *fixture {
	t.Helper()
	m, err := machine.New(machine.Config{Width: w, Height: h, MemoryPerCell: 1 << 23, TraceApp: traceApp})
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{m: m}
	for id := 0; id < m.Cells(); id++ {
		rt, err := NewRuntime(m.Cell(topology.CellID(id)))
		if err != nil {
			t.Fatal(err)
		}
		f.rts = append(f.rts, rt)
	}
	return f
}

func TestBlockRange(t *testing.T) {
	cases := []struct {
		n, np, r, lo, hi int
	}{
		{100, 4, 0, 0, 25},
		{100, 4, 3, 75, 100},
		{10, 4, 0, 0, 3},
		{10, 4, 3, 9, 10},
		{3, 4, 3, 3, 3}, // empty tail block
		{257, 16, 0, 0, 17},
		{257, 16, 15, 255, 257},
	}
	for _, c := range cases {
		lo, hi := blockRange(c.n, c.np, c.r)
		if lo != c.lo || hi != c.hi {
			t.Errorf("blockRange(%d,%d,%d) = [%d,%d), want [%d,%d)", c.n, c.np, c.r, lo, hi, c.lo, c.hi)
		}
	}
}

func TestArray1DOwnership(t *testing.T) {
	f := newFixture(t, 2, 2, "")
	a, err := NewArray1D(f.m, "a", 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 100 || a.Overlap() != 1 {
		t.Fatalf("shape wrong")
	}
	covered := 0
	for r := 0; r < 4; r++ {
		lo, hi := a.OwnedRange(r)
		covered += hi - lo
		for i := lo; i < hi; i++ {
			if a.OwnerOf(i) != r {
				t.Fatalf("OwnerOf(%d) = %d, want %d", i, a.OwnerOf(i), r)
			}
		}
		if len(a.Owned(r)) != hi-lo {
			t.Fatalf("Owned(%d) len %d", r, len(a.Owned(r)))
		}
	}
	if covered != 100 {
		t.Fatalf("coverage = %d", covered)
	}
}

func TestOverlapFix1D(t *testing.T) {
	f := newFixture(t, 2, 2, "")
	a, err := NewArray1D(f.m, "a", 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	err = f.m.Run(func(c *machine.Cell) error {
		rt := f.rts[c.ID()]
		r := rt.Rank()
		lo, hi := a.OwnedRange(r)
		own := a.Owned(r)
		for i := range own {
			own[i] = float64(lo + i)
		}
		if err := rt.OverlapFix1D(a); err != nil {
			return err
		}
		local := a.Local(r)
		// Left shadow holds global [lo-2, lo); right shadow [hi, hi+2).
		if r > 0 {
			for k := 0; k < 2; k++ {
				want := float64(lo - 2 + k)
				if local[k] != want {
					t.Errorf("rank %d left shadow[%d] = %v, want %v", r, k, local[k], want)
				}
			}
		}
		if r < 3 {
			base := a.Overlap() + (hi - lo)
			for k := 0; k < 2; k++ {
				want := float64(hi + k)
				if local[base+k] != want {
					t.Errorf("rank %d right shadow[%d] = %v, want %v", r, k, local[base+k], want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSpreadMove1DRealign(t *testing.T) {
	// Shifted copy: dst[i] = src[i+10] for 50 elements.
	f := newFixture(t, 2, 2, "")
	src, _ := NewArray1D(f.m, "src", 100, 0)
	dst, _ := NewArray1D(f.m, "dst", 100, 0)
	err := f.m.Run(func(c *machine.Cell) error {
		rt := f.rts[c.ID()]
		r := rt.Rank()
		lo, _ := src.OwnedRange(r)
		own := src.Owned(r)
		for i := range own {
			own[i] = 1000 + float64(lo+i)
		}
		rt.Barrier()
		mv, err := rt.SpreadMove1D(dst, 0, src, 10, 50)
		if err != nil {
			return err
		}
		mv.Wait()
		dlo, dhi := dst.OwnedRange(r)
		down := dst.Owned(r)
		for i := dlo; i < dhi && i < 50; i++ {
			want := 1000 + float64(i+10)
			if down[i-dlo] != want {
				t.Errorf("rank %d dst[%d] = %v, want %v", r, i, down[i-dlo], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestArray2DShape(t *testing.T) {
	f := newFixture(t, 2, 2, "")
	a, err := NewArray2D(f.m, "c", 8, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows() != 8 || a.Cols() != 20 || a.LocalWidth() != 5+2 {
		t.Fatalf("shape: rows=%d cols=%d width=%d", a.Rows(), a.Cols(), a.LocalWidth())
	}
	for j := 0; j < 20; j++ {
		r := a.OwnerOfCol(j)
		lo, hi := a.OwnedCols(r)
		if j < lo || j >= hi {
			t.Fatalf("col %d owner %d range [%d,%d)", j, r, lo, hi)
		}
	}
}

func TestOverlapFix2DStrideAndNoStride(t *testing.T) {
	for _, useStride := range []bool{true, false} {
		f := newFixture(t, 2, 2, "")
		const rows, cols = 6, 12
		a, err := NewArray2D(f.m, "c", rows, cols, 1)
		if err != nil {
			t.Fatal(err)
		}
		err = f.m.Run(func(c *machine.Cell) error {
			rt := f.rts[c.ID()]
			r := rt.Rank()
			lo, hi := a.OwnedCols(r)
			for row := 0; row < rows; row++ {
				for j := lo; j < hi; j++ {
					a.Set(r, row, a.LocalCol(r, j), float64(row*100+j))
				}
			}
			if err := rt.OverlapFix2D(a, useStride); err != nil {
				return err
			}
			// Check shadows: local col 0 = global lo-1; local col
			// w+own = global hi.
			own := hi - lo
			for row := 0; row < rows; row++ {
				if r > 0 {
					want := float64(row*100 + lo - 1)
					if got := a.At(r, row, 0); got != want {
						t.Errorf("stride=%v rank %d row %d left shadow = %v, want %v", useStride, r, row, got, want)
					}
				}
				if r < 3 {
					want := float64(row*100 + hi)
					if got := a.At(r, row, 1+own); got != want {
						t.Errorf("stride=%v rank %d row %d right shadow = %v, want %v", useStride, r, row, got, want)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestStrideVsNoStrideMessageCounts verifies the S5.4 TOMCATV
// arithmetic: without stride hardware the PUT count multiplies by the
// row count and the message size divides by it.
func TestStrideVsNoStrideMessageCounts(t *testing.T) {
	const rows, cols = 16, 12
	rowsOf := func(useStride bool) trace.Table3Row {
		f := newFixture(t, 2, 2, "tc")
		a, err := NewArray2D(f.m, "c", rows, cols, 1)
		if err != nil {
			t.Fatal(err)
		}
		err = f.m.Run(func(c *machine.Cell) error {
			return f.rts[c.ID()].OverlapFix2D(a, useStride)
		})
		if err != nil {
			t.Fatal(err)
		}
		return trace.Stats(f.m.Trace())
	}
	st := rowsOf(true)
	nost := rowsOf(false)
	if st.PutS == 0 || st.Put != 0 {
		t.Errorf("stride mode: %+v", st)
	}
	if nost.Put == 0 || nost.PutS != 0 {
		t.Errorf("no-stride mode: %+v", nost)
	}
	if nost.Put != st.PutS*rows {
		t.Errorf("no-stride PUTs = %v, want %v x %d", nost.Put, st.PutS, rows)
	}
	if st.MsgSize != nost.MsgSize*rows {
		t.Errorf("stride msg %v vs no-stride %v", st.MsgSize, nost.MsgSize)
	}
}

func TestMoveColTo1D(t *testing.T) {
	for _, useStride := range []bool{true, false} {
		f := newFixture(t, 2, 2, "")
		const rows, cols, k = 20, 8, 5
		b, _ := NewArray2D(f.m, "b", rows, cols, 0)
		a, _ := NewArray1D(f.m, "a", rows, 0)
		err := f.m.Run(func(c *machine.Cell) error {
			rt := f.rts[c.ID()]
			r := rt.Rank()
			lo, hi := b.OwnedCols(r)
			for row := 0; row < rows; row++ {
				for j := lo; j < hi; j++ {
					b.Set(r, row, b.LocalCol(r, j), float64(row)*10+float64(j))
				}
			}
			rt.Barrier()
			mv, err := rt.MoveColTo1D(a, b, k, useStride)
			if err != nil {
				return err
			}
			mv.Wait()
			alo, ahi := a.OwnedRange(r)
			own := a.Owned(r)
			for i := alo; i < ahi; i++ {
				want := float64(i)*10 + k
				if own[i-alo] != want {
					t.Errorf("stride=%v rank %d a[%d] = %v, want %v", useStride, r, i, own[i-alo], want)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestMoveRowTo1D(t *testing.T) {
	f := newFixture(t, 2, 2, "")
	const rows, cols, k = 6, 40, 2
	b, _ := NewArray2D(f.m, "b", rows, cols, 0)
	a, _ := NewArray1D(f.m, "a", cols, 0)
	err := f.m.Run(func(c *machine.Cell) error {
		rt := f.rts[c.ID()]
		r := rt.Rank()
		lo, hi := b.OwnedCols(r)
		for row := 0; row < rows; row++ {
			for j := lo; j < hi; j++ {
				b.Set(r, row, b.LocalCol(r, j), float64(row)*1000+float64(j))
			}
		}
		rt.Barrier()
		mv, err := rt.MoveRowTo1D(a, b, k)
		if err != nil {
			return err
		}
		mv.Wait()
		alo, ahi := a.OwnedRange(r)
		own := a.Owned(r)
		for i := alo; i < ahi; i++ {
			want := float64(k)*1000 + float64(i)
			if own[i-alo] != want {
				t.Errorf("rank %d a[%d] = %v, want %v", r, i, own[i-alo], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRuntimeCollectives(t *testing.T) {
	f := newFixture(t, 2, 2, "")
	err := f.m.Run(func(c *machine.Cell) error {
		rt := f.rts[c.ID()]
		x := float64(rt.Rank() + 1)
		if got := rt.GlobalSum(x); got != 10 {
			t.Errorf("sum = %v", got)
		}
		if got := rt.GlobalMax(x); got != 4 {
			t.Errorf("max = %v", got)
		}
		if got := rt.GlobalMin(x); got != 1 {
			t.Errorf("min = %v", got)
		}
		v := []float64{x, 2 * x}
		if err := rt.GlobalSumVec(v); err != nil {
			return err
		}
		if v[0] != 10 || v[1] != 20 {
			t.Errorf("vec = %v", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSpreadMoveValidation(t *testing.T) {
	f := newFixture(t, 2, 2, "")
	src, _ := NewArray1D(f.m, "s", 10, 0)
	dst, _ := NewArray1D(f.m, "d", 10, 0)
	err := f.m.Run(func(c *machine.Cell) error {
		rt := f.rts[c.ID()]
		if _, err := rt.SpreadMove1D(dst, 5, src, 0, 6); err == nil {
			t.Error("dst overrun accepted")
		}
		if _, err := rt.SpreadMove1D(dst, 0, src, 8, 6); err == nil {
			t.Error("src overrun accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTomcatvShapedCounts drives the 257x257 Figure-2 configuration on
// 16 cells for one exchange and checks the Table 3 proportions: with
// stride, 2056-byte messages; without, 257x as many 8-byte ones.
func TestTomcatvShapedCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const n = 257
	run := func(useStride bool) trace.Table3Row {
		f := newFixture(t, 4, 4, "tomcatv")
		a, err := NewArray2D(f.m, "x", n, n, 1)
		if err != nil {
			t.Fatal(err)
		}
		err = f.m.Run(func(c *machine.Cell) error {
			return f.rts[c.ID()].OverlapFix2D(a, useStride)
		})
		if err != nil {
			t.Fatal(err)
		}
		return trace.Stats(f.m.Trace())
	}
	st := run(true)
	if st.MsgSize != 2056 {
		t.Errorf("stride msg size = %v, want 2056 (Table 3)", st.MsgSize)
	}
	nost := run(false)
	if nost.MsgSize != 8 {
		t.Errorf("no-stride msg size = %v, want 8 (Table 3)", nost.MsgSize)
	}
	if math.Abs(nost.Put-257*st.PutS) > 1e-9 {
		t.Errorf("no-stride PUT = %v, want 257 x %v", nost.Put, st.PutS)
	}
}

func TestBroadcastOverBnet(t *testing.T) {
	f := newFixture(t, 2, 2, "")
	err := f.m.Run(func(c *machine.Cell) error {
		rt := f.rts[c.ID()]
		vec := make([]float64, 10)
		if rt.Rank() == 2 {
			for i := range vec {
				vec[i] = float64(i) * 3
			}
		}
		if err := rt.Broadcast(2, vec, 77); err != nil {
			return err
		}
		for i := range vec {
			if vec[i] != float64(i)*3 {
				t.Errorf("rank %d vec[%d] = %v", rt.Rank(), i, vec[i])
				return nil
			}
		}
		// A second broadcast from a different root, different tag.
		vec2 := []float64{float64(rt.Rank())}
		if rt.Rank() != 0 {
			vec2[0] = -1
		}
		if err := rt.Broadcast(0, vec2, 78); err != nil {
			return err
		}
		if vec2[0] != 0 {
			t.Errorf("rank %d second broadcast = %v", rt.Rank(), vec2[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.m.BNetStats().Broadcasts != 2 {
		t.Errorf("bnet broadcasts = %d", f.m.BNetStats().Broadcasts)
	}
}
