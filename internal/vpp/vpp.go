// Package vpp is the run-time system of a VPP-Fortran-style
// parallelizing compiler (S2), the layer whose communication needs
// motivated the AP1000+ architecture. It provides:
//
//   - Global arrays in block decomposition over the cells, with
//     optional overlap (shadow) areas (Figure 2).
//   - OVERLAP FIX: collective refresh of the overlap areas, using
//     stride PUT when the boundary is non-contiguous.
//   - SPREAD MOVE / MOVEWAIT: asynchronous collective copies between
//     global arrays, built on put/put_stride with the Ack & Barrier
//     completion model.
//   - Group and global barriers, scalar and vector reductions.
//
// The translator "inserts an index calculation code which converts
// global addresses to local addresses" — here those are the addr
// methods — and "communication library calls for accessing remote
// data" — the PUT/GET calls these collectives issue, all attributed
// to the run-time system in traces (MLSim charges rts_op_time).
package vpp

import (
	"fmt"

	"ap1000plus/internal/barrier"
	"ap1000plus/internal/core"
	"ap1000plus/internal/machine"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/sendrecv"
	"ap1000plus/internal/topology"
	"ap1000plus/internal/trace"
)

// Runtime is the per-cell run-time system instance.
type Runtime struct {
	cell *machine.Cell
	// Comm is the RTS-attributed PUT/GET interface.
	Comm *core.Comm
	// Sync provides barriers and reductions.
	Sync *barrier.Sync
	// EP is the SEND/RECEIVE endpoint (vector reductions).
	EP *sendrecv.Endpoint

	// single disables batched issue: every collective falls back to
	// one MSC+ doorbell per transfer, the pre-CommandList behaviour.
	// The ablation knob for measuring what batching and coalescing buy.
	single bool

	bcastSeg  *mem.Segment
	bcastData []float64
}

// SetBatching selects between batched issue (the default: each
// collective stages its transfers in one coalescing CommandList and
// commits once) and single issue (one doorbell per transfer). The
// S5.4 no-stride ablation paths always issue singly regardless — they
// model the measured per-put system, and coalescing them away would
// erase the effect the ablation exists to show.
func (rt *Runtime) SetBatching(on bool) { rt.single = !on }

// issuer routes a collective's transfers either straight to the Comm
// (single issue) or into one coalescing CommandList per collective
// step (batched issue).
type issuer struct {
	rt *Runtime
	b  *core.CommandList // nil in single-issue mode
}

func (rt *Runtime) issuer() issuer {
	if rt.single {
		return issuer{rt: rt}
	}
	return issuer{rt: rt, b: rt.Comm.Batch().Coalesce()}
}

func (is issuer) put(t core.Transfer) error {
	if is.b == nil {
		return is.rt.Comm.Put(t)
	}
	is.b.Put(t)
	return is.b.Err()
}

func (is issuer) putStride(t core.Transfer, sendPat, recvPat mem.Stride) error {
	if is.b == nil {
		return is.rt.Comm.PutStride(t.To, t.Remote, t.Local, t.SendFlag, t.RecvFlag, t.Ack, sendPat, recvPat)
	}
	is.b.PutStride(t, sendPat, recvPat)
	return is.b.Err()
}

// flush commits the batch (one doorbell for everything staged); a
// no-op in single-issue mode.
func (is issuer) flush() error {
	if is.b == nil {
		return nil
	}
	return is.b.Commit()
}

// NewRuntime builds the run-time system for one cell.
func NewRuntime(cell *machine.Cell) (*Runtime, error) {
	ep := sendrecv.New(cell, 0)
	sync, err := barrier.New(cell, ep)
	if err != nil {
		return nil, err
	}
	return &Runtime{cell: cell, Comm: core.NewRTS(cell), Sync: sync, EP: ep}, nil
}

// Cell returns the underlying cell.
func (rt *Runtime) Cell() *machine.Cell { return rt.cell }

// Rank reports this cell's ID as an integer rank.
func (rt *Runtime) Rank() int { return int(rt.cell.ID()) }

// NP reports the number of cells.
func (rt *Runtime) NP() int { return rt.cell.N() }

// Barrier synchronizes all cells.
func (rt *Runtime) Barrier() { rt.Sync.Barrier(trace.AllGroup) }

// GlobalSum reduces a scalar sum over all cells.
func (rt *Runtime) GlobalSum(x float64) float64 {
	return rt.Sync.Reduce(trace.AllGroup, trace.ReduceSum, x)
}

// GlobalMax reduces a scalar max over all cells.
func (rt *Runtime) GlobalMax(x float64) float64 {
	return rt.Sync.Reduce(trace.AllGroup, trace.ReduceMax, x)
}

// GlobalMin reduces a scalar min over all cells.
func (rt *Runtime) GlobalMin(x float64) float64 {
	return rt.Sync.Reduce(trace.AllGroup, trace.ReduceMin, x)
}

// GlobalSumVec reduces a vector sum over all cells, in place.
func (rt *Runtime) GlobalSumVec(v []float64) error {
	return rt.Sync.ReduceVec(trace.AllGroup, trace.ReduceSum, v)
}

// Compute charges computation time to the trace.
func (rt *Runtime) Compute(us float64) { rt.cell.RecordCompute(us) }

// blockRange gives the block decomposition of n items over np cells:
// cell r owns [lo, hi).
func blockRange(n, np, r int) (lo, hi int) {
	block := (n + np - 1) / np
	lo = r * block
	hi = lo + block
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// BlockSize reports the per-cell block length used for n items.
func BlockSize(n, np int) int { return (n + np - 1) / np }

// Array1D is a global one-dimensional array in block decomposition
// with an overlap (shadow) area of w elements on each side. It is a
// machine-global object: construct it once (before Machine.Run), then
// every cell operates on its own partition.
type Array1D struct {
	name   string
	n, w   int
	np     int
	block  int
	segs   []*mem.Segment
	locals [][]float64
}

// NewArray1D allocates the array on every cell. Each cell's local
// storage holds w + block + w elements.
func NewArray1D(m *machine.Machine, name string, n, overlap int) (*Array1D, error) {
	if n <= 0 || overlap < 0 {
		return nil, fmt.Errorf("vpp: array %q: bad shape n=%d overlap=%d", name, n, overlap)
	}
	np := m.Cells()
	a := &Array1D{name: name, n: n, w: overlap, np: np, block: BlockSize(n, np)}
	for r := 0; r < np; r++ {
		seg, local, err := m.Cell(topology.CellID(r)).AllocFloat64(name, a.block+2*a.w)
		if err != nil {
			return nil, fmt.Errorf("vpp: array %q: %w", name, err)
		}
		a.segs = append(a.segs, seg)
		a.locals = append(a.locals, local)
	}
	return a, nil
}

// Len reports the global length.
func (a *Array1D) Len() int { return a.n }

// Overlap reports the shadow width.
func (a *Array1D) Overlap() int { return a.w }

// OwnedRange reports the global index range [lo, hi) owned by rank r.
func (a *Array1D) OwnedRange(r int) (lo, hi int) { return blockRange(a.n, a.np, r) }

// OwnerOf reports the rank owning global index i.
func (a *Array1D) OwnerOf(i int) int {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("vpp: array %q index %d out of range", a.name, i))
	}
	return i / a.block
}

// Local returns rank r's local storage: indices [0,w) are the left
// shadow, [w, w+owned) the owned elements, then the right shadow.
func (a *Array1D) Local(r int) []float64 { return a.locals[r] }

// Owned returns rank r's owned window (no shadows).
func (a *Array1D) Owned(r int) []float64 {
	lo, hi := a.OwnedRange(r)
	return a.locals[r][a.w : a.w+(hi-lo)]
}

// addr returns the memory address of local element li on rank r.
func (a *Array1D) addr(r, li int) mem.Addr {
	return a.segs[r].Base() + mem.Addr(li*8)
}

// AddrOfGlobal returns (owner, address) of global element i,
// the translator's global-to-local index calculation.
func (a *Array1D) AddrOfGlobal(i int) (int, mem.Addr) {
	r := a.OwnerOf(i)
	lo, _ := a.OwnedRange(r)
	return r, a.addr(r, a.w+(i-lo))
}

// OverlapFix refreshes this rank's neighbours' shadow copies of our
// boundary elements: the collective of Figure 2. Every cell must
// call it (it ends in AckWait + Barrier). Non-periodic: edge cells
// skip the missing neighbour.
func (rt *Runtime) OverlapFix1D(a *Array1D) error {
	r := rt.Rank()
	lo, hi := a.OwnedRange(r)
	own := hi - lo
	if a.w > 0 && own > 0 {
		w := a.w
		if w > own {
			w = own
		}
		is := rt.issuer()
		// Push our leftmost elements into the left neighbour's right
		// shadow, and our rightmost into the right neighbour's left
		// shadow.
		if r > 0 {
			left := r - 1
			llo, lhi := a.OwnedRange(left)
			if lhi > llo {
				dst := a.addr(left, a.w+(lhi-llo)) // start of right shadow
				src := a.addr(r, a.w)
				if err := is.put(core.Transfer{To: topology.CellID(left), Remote: dst, Local: src, Size: int64(w * 8), Ack: true}); err != nil {
					return err
				}
			}
		}
		if r < a.np-1 {
			right := r + 1
			rlo, rhi := a.OwnedRange(right)
			if rhi > rlo {
				dst := a.addr(right, a.w-w) // end of left shadow
				src := a.addr(r, a.w+own-w)
				if err := is.put(core.Transfer{To: topology.CellID(right), Remote: dst, Local: src, Size: int64(w * 8), Ack: true}); err != nil {
					return err
				}
			}
		}
		if err := is.flush(); err != nil {
			return err
		}
	}
	rt.Comm.AckWait()
	rt.Barrier()
	return nil
}

// SpreadMove1D copies count elements from src[srcLo...] into
// dst[dstLo...], both global arrays, asynchronously: each cell PUTs
// the pieces it owns toward the destination owners. The returned Move
// must be waited on (MOVEWAIT) before the data is used.
func (rt *Runtime) SpreadMove1D(dst *Array1D, dstLo int, src *Array1D, srcLo, count int) (*Move, error) {
	if count < 0 || srcLo < 0 || srcLo+count > src.n || dstLo < 0 || dstLo+count > dst.n {
		return nil, fmt.Errorf("vpp: spread move out of range")
	}
	r := rt.Rank()
	mylo, myhi := src.OwnedRange(r)
	// Intersect [srcLo, srcLo+count) with our ownership.
	lo := max(srcLo, mylo)
	hi := min(srcLo+count, myhi)
	is := rt.issuer()
	for lo < hi {
		di := dstLo + (lo - srcLo)
		owner := dst.OwnerOf(di)
		olo, ohi := dst.OwnedRange(owner)
		// Run length limited by the destination owner's block.
		run := min(hi-lo, (ohi-olo)-(di-olo))
		_, daddr := dst.AddrOfGlobal(di)
		saddr := src.addr(r, src.w+(lo-mylo))
		if err := is.put(core.Transfer{To: topology.CellID(owner), Remote: daddr, Local: saddr, Size: int64(run * 8), Ack: true}); err != nil {
			return nil, err
		}
		lo += run
	}
	if err := is.flush(); err != nil {
		return nil, err
	}
	return &Move{rt: rt}, nil
}

// Move is an in-flight SPREAD MOVE.
type Move struct{ rt *Runtime }

// Wait is MOVEWAIT: it blocks until every PUT of the move has been
// acknowledged on this cell, then synchronizes all cells, after which
// the moved data is globally visible.
func (m *Move) Wait() {
	m.rt.Comm.AckWait()
	m.rt.Barrier()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Broadcast distributes root's vec to every cell over the B-net (the
// "data distribution" role of the broadcast network, §4): root stages
// and broadcasts; everyone copies the payload into vec. tag must be
// unique among concurrently outstanding broadcasts.
func (rt *Runtime) Broadcast(root int, vec []float64, tag int64) error {
	if len(vec) == 0 {
		return nil
	}
	if err := rt.ensureBcast(len(vec)); err != nil {
		return err
	}
	if rt.Rank() == root {
		copy(rt.bcastData, vec)
		if err := rt.cell.Broadcast(rt.bcastSeg.Base(), int64(len(vec))*8, tag); err != nil {
			return err
		}
	}
	p := rt.cell.RecvBroadcast(tag)
	vals, ok := p.Float64s()
	if !ok || len(vals) != len(vec) {
		return fmt.Errorf("vpp: broadcast payload mismatch (%d elements, want %d)", len(vals), len(vec))
	}
	copy(vec, vals)
	return nil
}

func (rt *Runtime) ensureBcast(n int) error {
	if rt.bcastData != nil && len(rt.bcastData) >= n {
		return nil
	}
	seg, data, err := rt.cell.AllocFloat64(fmt.Sprintf("vpp.bcast%d", n), n)
	if err != nil {
		return err
	}
	rt.bcastSeg, rt.bcastData = seg, data
	return nil
}
