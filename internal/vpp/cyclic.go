package vpp

import (
	"fmt"

	"ap1000plus/internal/core"
	"ap1000plus/internal/machine"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/topology"
)

// CyclicArray1D is a global one-dimensional array in CYCLIC
// decomposition (§2.1: VPP Fortran and HPF both offer "block and
// cyclic decomposition"): element i lives on cell i mod P at local
// index i div P. Cyclic layouts balance triangular workloads; moving
// data between block and cyclic layouts is the "redistributing large
// matrices" task the paper names as a motivation for stride transfer.
type CyclicArray1D struct {
	name   string
	n      int
	np     int
	segs   []*mem.Segment
	locals [][]float64
}

// NewCyclicArray1D allocates the array on every cell.
func NewCyclicArray1D(m *machine.Machine, name string, n int) (*CyclicArray1D, error) {
	if n <= 0 {
		return nil, fmt.Errorf("vpp: cyclic array %q: bad length %d", name, n)
	}
	np := m.Cells()
	a := &CyclicArray1D{name: name, n: n, np: np}
	perCell := (n + np - 1) / np
	for r := 0; r < np; r++ {
		seg, local, err := m.Cell(topology.CellID(r)).AllocFloat64(name, perCell)
		if err != nil {
			return nil, fmt.Errorf("vpp: cyclic array %q: %w", name, err)
		}
		a.segs = append(a.segs, seg)
		a.locals = append(a.locals, local)
	}
	return a, nil
}

// Len reports the global length.
func (a *CyclicArray1D) Len() int { return a.n }

// OwnerOf reports the owning rank of global element i.
func (a *CyclicArray1D) OwnerOf(i int) int { return i % a.np }

// LocalIndex reports where global element i sits on its owner.
func (a *CyclicArray1D) LocalIndex(i int) int { return i / a.np }

// OwnedCount reports how many elements rank r owns.
func (a *CyclicArray1D) OwnedCount(r int) int {
	return (a.n - r + a.np - 1) / a.np
}

// Local returns rank r's local storage: element k holds global
// element k*P + r.
func (a *CyclicArray1D) Local(r int) []float64 { return a.locals[r] }

// addr returns the address of local element k on rank r.
func (a *CyclicArray1D) addr(r, k int) mem.Addr {
	return a.segs[r].Base() + mem.Addr(k*8)
}

// RedistributeBlockToCyclic copies a block-distributed array into a
// cyclic one (same global length), collectively. Each cell owns a
// contiguous block of src; the elements destined for cell s are every
// P-th element of that block — one stride PUT per destination, the
// exact redistribution pattern §1.1 motivates ("bulk and stride data
// transfers, which are used for tasks like transposing or
// redistributing large matrices"). Completion follows Ack & Barrier.
func (rt *Runtime) RedistributeBlockToCyclic(dst *CyclicArray1D, src *Array1D) (*Move, error) {
	if dst.Len() != src.Len() {
		return nil, fmt.Errorf("vpp: redistribute: length mismatch %d vs %d", dst.Len(), src.Len())
	}
	r := rt.Rank()
	np := rt.NP()
	lo, hi := src.OwnedRange(r)
	is := rt.issuer()
	for s := 0; s < np; s++ {
		// Global indices i in [lo,hi) with i % np == s.
		first := lo + ((s-lo)%np+np)%np
		if first >= hi {
			continue
		}
		count := (hi - first + np - 1) / np
		srcPat := mem.Stride{ItemSize: 8, Count: int64(count), Skip: int64((np - 1) * 8)}
		// Destination: consecutive local slots starting at first/np.
		dstAddr := dst.addr(s, first/np)
		srcAddr := src.addr(r, src.Overlap()+(first-lo))
		if err := is.putStride(core.Transfer{
			To: topology.CellID(s), Remote: dstAddr, Local: srcAddr, Ack: true,
		}, srcPat, mem.Contiguous(int64(count)*8)); err != nil {
			return nil, err
		}
	}
	if err := is.flush(); err != nil {
		return nil, err
	}
	return &Move{rt: rt}, nil
}

// RedistributeCyclicToBlock is the inverse redistribution: each cell
// scatters its cyclic elements back into the block owners, with a
// strided DESTINATION pattern this time.
func (rt *Runtime) RedistributeCyclicToBlock(dst *Array1D, src *CyclicArray1D) (*Move, error) {
	if dst.Len() != src.Len() {
		return nil, fmt.Errorf("vpp: redistribute: length mismatch %d vs %d", dst.Len(), src.Len())
	}
	r := rt.Rank()
	np := rt.NP()
	owned := src.OwnedCount(r)
	is := rt.issuer()
	k := 0
	for k < owned {
		i := k*np + r // global index of local element k
		owner := dst.OwnerOf(i)
		olo, ohi := dst.OwnedRange(owner)
		// How many of our consecutive local elements land in this
		// destination block? Their global indices step by np.
		count := (ohi - 1 - i) / np
		if count < 0 {
			count = 0
		}
		count++
		if k+count > owned {
			count = owned - k
		}
		_, first := dst.AddrOfGlobal(i)
		dstPat := mem.Stride{ItemSize: 8, Count: int64(count), Skip: int64((np - 1) * 8)}
		if err := is.putStride(core.Transfer{
			To: topology.CellID(owner), Remote: first, Local: src.addr(r, k), Ack: true,
		}, mem.Contiguous(int64(count)*8), dstPat); err != nil {
			return nil, err
		}
		k += count
		_ = olo
	}
	if err := is.flush(); err != nil {
		return nil, err
	}
	return &Move{rt: rt}, nil
}
