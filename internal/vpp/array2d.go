package vpp

import (
	"fmt"

	"ap1000plus/internal/core"
	"ap1000plus/internal/machine"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/topology"
)

// Array2D is a global two-dimensional array (rows x cols) decomposed
// in blocks along the SECOND dimension — Figure 2's layout, where
// each cell owns a slab of columns and replicates its neighbours'
// boundary columns in an overlap area. Local storage is row-major
// over (w + ownedCols + w) columns, so a boundary COLUMN is strided
// in memory: exchanging it exercises exactly the stride-transfer
// hardware the paper motivates with this figure.
type Array2D struct {
	name       string
	rows, cols int
	w          int
	np         int
	block      int // owned columns per cell (ceil)
	width      int // local row length = block + 2w
	segs       []*mem.Segment
	locals     [][]float64
}

// NewArray2D allocates the array on every cell of the machine.
func NewArray2D(m *machine.Machine, name string, rows, cols, overlap int) (*Array2D, error) {
	if rows <= 0 || cols <= 0 || overlap < 0 {
		return nil, fmt.Errorf("vpp: array %q: bad shape %dx%d overlap %d", name, rows, cols, overlap)
	}
	np := m.Cells()
	a := &Array2D{
		name: name, rows: rows, cols: cols, w: overlap, np: np,
		block: BlockSize(cols, np),
	}
	a.width = a.block + 2*a.w
	for r := 0; r < np; r++ {
		seg, local, err := m.Cell(topology.CellID(r)).AllocFloat64(name, rows*a.width)
		if err != nil {
			return nil, fmt.Errorf("vpp: array %q: %w", name, err)
		}
		a.segs = append(a.segs, seg)
		a.locals = append(a.locals, local)
	}
	return a, nil
}

// Rows and Cols report the global shape.
func (a *Array2D) Rows() int { return a.rows }

// Cols reports the global column count.
func (a *Array2D) Cols() int { return a.cols }

// LocalWidth reports the local row length including shadows.
func (a *Array2D) LocalWidth() int { return a.width }

// OwnedCols reports the global column range [lo, hi) owned by rank r.
func (a *Array2D) OwnedCols(r int) (lo, hi int) { return blockRange(a.cols, a.np, r) }

// OwnerOfCol reports the rank owning global column j.
func (a *Array2D) OwnerOfCol(j int) int {
	if j < 0 || j >= a.cols {
		panic(fmt.Sprintf("vpp: array %q column %d out of range", a.name, j))
	}
	return j / a.block
}

// Local returns rank r's local storage (row-major, width LocalWidth).
// Local column w+k holds global column lo+k; columns [0,w) and
// [w+owned, width) are the shadows.
func (a *Array2D) Local(r int) []float64 { return a.locals[r] }

// At reads local element (row, localCol) on rank r.
func (a *Array2D) At(r, row, localCol int) float64 {
	return a.locals[r][row*a.width+localCol]
}

// Set writes local element (row, localCol) on rank r.
func (a *Array2D) Set(r, row, localCol int, v float64) {
	a.locals[r][row*a.width+localCol] = v
}

// LocalCol translates global column j to rank r's local column index
// (valid for owned columns and in-range shadows).
func (a *Array2D) LocalCol(r, j int) int {
	lo, _ := a.OwnedCols(r)
	return a.w + (j - lo)
}

// addr returns the address of local element (row, localCol) on rank r.
func (a *Array2D) addr(r, row, localCol int) mem.Addr {
	return a.segs[r].Base() + mem.Addr((row*a.width+localCol)*8)
}

// colPattern is the stride pattern of one local column: rows items of
// 8 bytes, skipping the rest of each row.
func (a *Array2D) colPattern() mem.Stride {
	return mem.Stride{ItemSize: 8, Count: int64(a.rows), Skip: int64((a.width - 1) * 8)}
}

// OverlapFix2D refreshes the column shadows of a (Figure 2's overlap
// area), collectively. With useStride, each boundary column moves as
// ONE stride PUT; without it, the run-time system falls back to one
// 8-byte PUT per row — the software alternative whose cost Table 3's
// TOMCATV rows quantify (message count x257, size /257).
func (rt *Runtime) OverlapFix2D(a *Array2D, useStride bool) error {
	r := rt.Rank()
	lo, hi := a.OwnedCols(r)
	own := hi - lo
	if a.w > 0 && own > 0 {
		w := a.w
		if w > own {
			w = own
		}
		is := rt.issuer()
		for k := 0; k < w; k++ {
			// Our k-th owned column from the left goes to the left
			// neighbour's right shadow; symmetric on the right.
			if r > 0 {
				left := r - 1
				llo, lhi := a.OwnedCols(left)
				if lhi > llo {
					srcCol := a.w + k
					dstCol := a.w + (lhi - llo) + k
					if err := rt.putColumn(is, a, left, dstCol, r, srcCol, useStride); err != nil {
						return err
					}
				}
			}
			if r < a.np-1 {
				right := r + 1
				rlo, rhi := a.OwnedCols(right)
				if rhi > rlo {
					srcCol := a.w + own - w + k
					dstCol := k
					if err := rt.putColumn(is, a, right, dstCol, r, srcCol, useStride); err != nil {
						return err
					}
				}
			}
		}
		if err := is.flush(); err != nil {
			return err
		}
	}
	rt.Comm.AckWait()
	rt.Barrier()
	return nil
}

// putColumn transfers one full column of a from (srcRank, srcCol) to
// (dstRank, dstCol), either as a single stride PUT (batched through
// is) or as per-row 8-byte PUTs.
func (rt *Runtime) putColumn(is issuer, a *Array2D, dstRank, dstCol, srcRank, srcCol int, useStride bool) error {
	if useStride {
		return is.putStride(core.Transfer{
			To:     topology.CellID(dstRank),
			Remote: a.addr(dstRank, 0, dstCol),
			Local:  a.addr(srcRank, 0, srcCol),
			Ack:    true,
		}, a.colPattern(), a.colPattern())
	}
	for row := 0; row < a.rows; row++ {
		// S5.4: "Current implementation of the VPP Fortran run-time
		// system requires an acknowledgment for every put()" — the
		// improved last-put-only scheme was future work, so we model
		// the measured system. Always single issue, never coalesced:
		// batching this path away would erase the x257 message-count
		// effect the ablation quantifies.
		if err := rt.Comm.Put(core.Transfer{
			To:     topology.CellID(dstRank),
			Remote: a.addr(dstRank, row, dstCol),
			Local:  a.addr(srcRank, row, srcCol),
			Size:   8,
			Ack:    true,
		}); err != nil {
			return err
		}
	}
	return nil
}

// MoveColTo1D is the SPREAD MOVE of List 1 with the loop index in the
// 2nd dimension — A(J) = B(J,K): global column k of src scatters into
// dst. The column's owner pushes slices to each destination owner
// (stride source, contiguous destination).
func (rt *Runtime) MoveColTo1D(dst *Array1D, src *Array2D, k int, useStride bool) (*Move, error) {
	if dst.Len() != src.rows {
		return nil, fmt.Errorf("vpp: move column: %d rows into length-%d array", src.rows, dst.Len())
	}
	r := rt.Rank()
	if src.OwnerOfCol(k) == r {
		localCol := src.LocalCol(r, k)
		is := rt.issuer()
		for dr := 0; dr < dst.np; dr++ {
			lo, hi := dst.OwnedRange(dr)
			if hi <= lo {
				continue
			}
			n := hi - lo
			daddr := dst.addr(dr, dst.w)
			saddr := src.addr(r, lo, localCol)
			srcPat := mem.Stride{ItemSize: 8, Count: int64(n), Skip: int64((src.width - 1) * 8)}
			if useStride {
				if err := is.putStride(core.Transfer{
					To: topology.CellID(dr), Remote: daddr, Local: saddr, Ack: true,
				}, srcPat, mem.Contiguous(int64(n*8))); err != nil {
					return nil, err
				}
			} else {
				// The per-element ablation stays single issue (see
				// putColumn).
				for i := 0; i < n; i++ {
					if err := rt.Comm.Put(core.Transfer{
						To:     topology.CellID(dr),
						Remote: daddr + mem.Addr(i*8),
						Local:  src.addr(r, lo+i, localCol),
						Size:   8,
						Ack:    true,
					}); err != nil {
						return nil, err
					}
				}
			}
		}
		if err := is.flush(); err != nil {
			return nil, err
		}
	}
	return &Move{rt: rt}, nil
}

// MoveRowTo1D is SPREAD MOVE with the loop index in the 1st dimension
// — A(J) = B(K,J): global row k of src scatters into dst. Each cell
// owns a contiguous chunk of the row, pushed with plain PUTs.
func (rt *Runtime) MoveRowTo1D(dst *Array1D, src *Array2D, k int) (*Move, error) {
	if dst.Len() != src.cols {
		return nil, fmt.Errorf("vpp: move row: %d cols into length-%d array", src.cols, dst.Len())
	}
	r := rt.Rank()
	lo, hi := src.OwnedCols(r)
	is := rt.issuer()
	j := lo
	for j < hi {
		owner := dst.OwnerOf(j)
		_, ohi := dst.OwnedRange(owner)
		run := min(hi-j, ohi-j)
		_, daddr := dst.AddrOfGlobal(j)
		saddr := src.addr(r, k, src.LocalCol(r, j))
		if err := is.put(core.Transfer{
			To: topology.CellID(owner), Remote: daddr, Local: saddr,
			Size: int64(run * 8), Ack: true,
		}); err != nil {
			return nil, err
		}
		j += run
	}
	if err := is.flush(); err != nil {
		return nil, err
	}
	return &Move{rt: rt}, nil
}
