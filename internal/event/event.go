// Package event provides the discrete-event simulation kernel used by
// the message-level simulator (MLSim) and the timing models of the
// functional machine.
//
// Time is kept in integer nanoseconds so that the microsecond-scale
// parameters of the paper's Figure 6 (down to 0.04 us = 40 ns) are
// represented exactly. Events with equal timestamps fire in the order
// they were scheduled, which makes every simulation deterministic.
package event

import (
	"container/heap"
	"fmt"
)

// Time is a simulation timestamp in nanoseconds.
type Time int64

// Common time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Forever is a timestamp later than any reachable simulation time.
const Forever Time = 1<<63 - 1

// Microseconds converts a floating-point microsecond quantity (the
// unit of the paper's parameter files) to a Time, rounding to the
// nearest nanosecond.
func Microseconds(us float64) Time {
	if us < 0 {
		return -Microseconds(-us)
	}
	return Time(us*1000 + 0.5)
}

// Us reports t in microseconds as a float64, the unit used in all of
// the paper's tables.
func (t Time) Us() float64 { return float64(t) / 1000 }

// String formats the time in microseconds, e.g. "12.340us".
func (t Time) String() string { return fmt.Sprintf("%.3fus", t.Us()) }

// Handler is the callback attached to a scheduled event. It runs at
// the event's timestamp.
type Handler func(now Time)

// item is a scheduled event in the kernel's heap.
type item struct {
	at      Time
	seq     uint64 // tie-breaker: FIFO among equal timestamps
	handler Handler
	index   int // heap index; -1 once popped or cancelled
}

// Event is a cancellable handle to a scheduled event.
type Event struct{ it *item }

// Time reports when the event will fire (or was going to fire).
func (e Event) Time() Time { return e.it.at }

// queue implements heap.Interface ordered by (at, seq).
type queue []*item

func (q queue) Len() int { return len(q) }
func (q queue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q queue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *queue) Push(x any) {
	it := x.(*item)
	it.index = len(*q)
	*q = append(*q, it)
}
func (q *queue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	*q = old[:n-1]
	return it
}

// Kernel is a deterministic discrete-event scheduler. The zero value
// is ready to use. Kernel is not safe for concurrent use; MLSim runs
// single-threaded by design (the paper's MLSim is a sequential
// trace-driven simulator).
type Kernel struct {
	now    Time
	seq    uint64
	q      queue
	events int64 // total events executed, for statistics
	// observer, when set, runs after each executed event — the
	// observability layer's progress hook (timeline heartbeat,
	// event-rate metrics). It must not schedule or cancel events.
	observer func(now Time, executed int64, pending int)
}

// SetObserver installs a callback invoked after every executed event
// with the current time, the cumulative executed-event count, and the
// remaining queue length. Pass nil to remove it.
func (k *Kernel) SetObserver(fn func(now Time, executed int64, pending int)) {
	k.observer = fn
}

// Now reports the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Executed reports how many events have been executed so far.
func (k *Kernel) Executed() int64 { return k.events }

// Pending reports how many events are scheduled but not yet fired.
func (k *Kernel) Pending() int { return len(k.q) }

// At schedules h to run at absolute time at. Scheduling in the past
// (before Now) panics: it would silently corrupt causality.
func (k *Kernel) At(at Time, h Handler) Event {
	if at < k.now {
		panic(fmt.Sprintf("event: schedule at %v before now %v", at, k.now))
	}
	it := &item{at: at, seq: k.seq, handler: h}
	k.seq++
	heap.Push(&k.q, it)
	return Event{it}
}

// After schedules h to run d nanoseconds from now.
func (k *Kernel) After(d Time, h Handler) Event {
	if d < 0 {
		panic(fmt.Sprintf("event: negative delay %v", d))
	}
	return k.At(k.now+d, h)
}

// Cancel removes a scheduled event. Cancelling an event that already
// fired or was already cancelled is a no-op and reports false.
func (k *Kernel) Cancel(e Event) bool {
	if e.it == nil || e.it.index < 0 {
		return false
	}
	heap.Remove(&k.q, e.it.index)
	e.it.index = -1
	return true
}

// Step executes the single earliest event. It reports false when no
// events are pending.
func (k *Kernel) Step() bool {
	if len(k.q) == 0 {
		return false
	}
	it := heap.Pop(&k.q).(*item)
	k.now = it.at
	k.events++
	it.handler(k.now)
	if k.observer != nil {
		k.observer(k.now, k.events, len(k.q))
	}
	return true
}

// Run executes events until the queue drains and returns the final
// simulation time.
func (k *Kernel) Run() Time {
	for k.Step() {
	}
	return k.now
}

// RunUntil executes events with timestamps <= deadline. Events beyond
// the deadline remain queued; Now is advanced to the deadline if the
// simulation had not already passed it.
func (k *Kernel) RunUntil(deadline Time) {
	for len(k.q) > 0 && k.q[0].at <= deadline {
		k.Step()
	}
	if k.now < deadline {
		k.now = deadline
	}
}
