package event

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMicroseconds(t *testing.T) {
	cases := []struct {
		us   float64
		want Time
	}{
		{0, 0},
		{0.04, 40},
		{0.16, 160},
		{1.0, 1000},
		{20.0, 20000},
		{0.0004, 0}, // rounds down below 0.5ns
		{0.0006, 1},
		{-1.5, -1500},
	}
	for _, c := range cases {
		if got := Microseconds(c.us); got != c.want {
			t.Errorf("Microseconds(%v) = %v, want %v", c.us, got, c.want)
		}
	}
}

func TestTimeUs(t *testing.T) {
	if got := (1500 * Nanosecond).Us(); got != 1.5 {
		t.Errorf("Us() = %v, want 1.5", got)
	}
	if s := (12340 * Nanosecond).String(); s != "12.340us" {
		t.Errorf("String() = %q", s)
	}
}

func TestKernelOrdering(t *testing.T) {
	var k Kernel
	var got []int
	k.At(30, func(Time) { got = append(got, 3) })
	k.At(10, func(Time) { got = append(got, 1) })
	k.At(20, func(Time) { got = append(got, 2) })
	end := k.Run()
	if end != 30 {
		t.Fatalf("end = %v, want 30", end)
	}
	for i, v := range []int{1, 2, 3} {
		if got[i] != v {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestKernelFIFOTies(t *testing.T) {
	var k Kernel
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		k.At(42, func(Time) { got = append(got, i) })
	}
	k.Run()
	if !sort.IntsAreSorted(got) {
		t.Fatalf("equal-timestamp events not FIFO: %v", got[:10])
	}
}

func TestKernelAfterAndNow(t *testing.T) {
	var k Kernel
	var at1, at2 Time
	k.After(100, func(now Time) {
		at1 = now
		k.After(50, func(now Time) { at2 = now })
	})
	k.Run()
	if at1 != 100 || at2 != 150 {
		t.Fatalf("at1=%v at2=%v", at1, at2)
	}
	if k.Executed() != 2 {
		t.Fatalf("executed = %d", k.Executed())
	}
}

func TestKernelCancel(t *testing.T) {
	var k Kernel
	fired := false
	e := k.At(10, func(Time) { fired = true })
	if !k.Cancel(e) {
		t.Fatal("first cancel should succeed")
	}
	if k.Cancel(e) {
		t.Fatal("second cancel should fail")
	}
	k.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestKernelCancelMiddle(t *testing.T) {
	var k Kernel
	var got []int
	k.At(10, func(Time) { got = append(got, 1) })
	e := k.At(20, func(Time) { got = append(got, 2) })
	k.At(30, func(Time) { got = append(got, 3) })
	k.Cancel(e)
	k.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestKernelSchedulePastPanics(t *testing.T) {
	var k Kernel
	k.At(100, func(Time) {})
	k.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	k.At(50, func(Time) {})
}

func TestKernelNegativeDelayPanics(t *testing.T) {
	var k Kernel
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative delay")
		}
	}()
	k.After(-1, func(Time) {})
}

func TestRunUntil(t *testing.T) {
	var k Kernel
	var got []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		k.At(at, func(now Time) { got = append(got, now) })
	}
	k.RunUntil(25)
	if len(got) != 2 {
		t.Fatalf("got %v events, want 2", got)
	}
	if k.Now() != 25 {
		t.Fatalf("now = %v, want 25", k.Now())
	}
	if k.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", k.Pending())
	}
	k.Run()
	if len(got) != 4 || k.Now() != 40 {
		t.Fatalf("after Run: got=%v now=%v", got, k.Now())
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	var k Kernel
	k.RunUntil(1000)
	if k.Now() != 1000 {
		t.Fatalf("now = %v", k.Now())
	}
}

// Property: executing any set of scheduled times yields them in
// nondecreasing order, regardless of insertion order.
func TestKernelSortedProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		var k Kernel
		var fired []Time
		for _, d := range delays {
			k.At(Time(d), func(now Time) { fired = append(fired, now) })
		}
		k.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i-1] > fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset removes exactly that subset.
func TestKernelCancelProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var k Kernel
		n := 1 + rng.Intn(64)
		fired := make([]bool, n)
		events := make([]Event, n)
		for i := 0; i < n; i++ {
			i := i
			events[i] = k.At(Time(rng.Intn(100)), func(Time) { fired[i] = true })
		}
		cancelled := make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				cancelled[i] = true
				if !k.Cancel(events[i]) {
					t.Fatal("cancel of pending event failed")
				}
			}
		}
		k.Run()
		for i := 0; i < n; i++ {
			if fired[i] == cancelled[i] {
				t.Fatalf("trial %d event %d: fired=%v cancelled=%v", trial, i, fired[i], cancelled[i])
			}
		}
	}
}

func BenchmarkKernelScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var k Kernel
		for j := 0; j < 64; j++ {
			k.At(Time(j%7), func(Time) {})
		}
		k.Run()
	}
}

// The kernel observer fires once per executed event with monotonic
// time and an accurate executed count — the contract the timeline
// layer relies on.
func TestKernelObserver(t *testing.T) {
	var k Kernel
	var calls int64
	last := Time(-1)
	k.SetObserver(func(now Time, executed int64, pending int) {
		calls++
		if executed != calls {
			t.Fatalf("executed = %d after %d calls", executed, calls)
		}
		if now < last {
			t.Fatalf("observer time went backwards: %v < %v", now, last)
		}
		if pending != k.Pending() {
			t.Fatalf("pending = %d, kernel says %d", pending, k.Pending())
		}
		last = now
	})
	for i := 0; i < 10; i++ {
		k.At(Time(i%3), func(Time) {})
	}
	k.Run()
	if calls != 10 {
		t.Fatalf("observer called %d times, want 10", calls)
	}
	k.SetObserver(nil)
	k.At(k.Now(), func(Time) {})
	k.Run()
	if calls != 10 {
		t.Fatal("observer fired after removal")
	}
}
