package params

import (
	"bytes"
	"strings"
	"testing"
)

// TestFigure6Values pins the built-in models to the exact values
// printed in Figure 6 of the paper.
func TestFigure6Values(t *testing.T) {
	ap := AP1000()
	plus := AP1000Plus()

	check := func(name string, got, want float64) {
		t.Helper()
		if got != want {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
	// AP1000 column.
	check("AP1000 computation_factor", ap.ComputationFactor, 1.00)
	check("AP1000 network_prolog_time", ap.NetworkPrologTime, 0.16)
	check("AP1000 network_delay_time", ap.NetworkDelayTime, 0.16)
	check("AP1000 put_prolog_time", ap.PutPrologTime, 20.0)
	check("AP1000 put_epilog_time", ap.PutEpilogTime, 15.0)
	check("AP1000 put_msg_time", ap.PutMsgTime, 0.05)
	check("AP1000 put_dma_set_time", ap.PutDmaSetTime, 15.0)
	check("AP1000 put_msg_post_time", ap.PutMsgPostTime, 0.04)
	check("AP1000 intr_rtc_time", ap.IntrRtcTime, 20.0)
	check("AP1000 recv_msg_flush_time", ap.RecvMsgFlushTime, 0.04)
	check("AP1000 recv_dma_set_time", ap.RecvDmaSetTime, 15.0)
	// AP1000+ column.
	check("AP1000+ computation_factor", plus.ComputationFactor, 0.125)
	check("AP1000+ network_prolog_time", plus.NetworkPrologTime, 0.16)
	check("AP1000+ network_delay_time", plus.NetworkDelayTime, 0.16)
	check("AP1000+ put_prolog_time", plus.PutPrologTime, 1.00)
	check("AP1000+ put_epilog_time", plus.PutEpilogTime, 0.00)
	check("AP1000+ put_msg_time", plus.PutMsgTime, 0.05)
	check("AP1000+ put_dma_set_time", plus.PutDmaSetTime, 0.50)
	check("AP1000+ put_msg_post_time", plus.PutMsgPostTime, 0.00)
	check("AP1000+ intr_rtc_time", plus.IntrRtcTime, 0.00)
	check("AP1000+ recv_msg_flush_time", plus.RecvMsgFlushTime, 0.00)
	check("AP1000+ recv_dma_set_time", plus.RecvDmaSetTime, 0.50)
}

func TestPutIssueIs8StoresAt50MHz(t *testing.T) {
	// S4.1: "PUT/GET operations require 8-word parameters, the
	// overhead of PUT/GET is the time for 8 store instructions, in
	// other words, 8 clock cycles" = 8/50MHz = 0.16 us.
	if got := AP1000Plus().PutEnqueueTime; got != 0.16 {
		t.Errorf("AP1000+ put_enqueue_time = %g, want 0.16", got)
	}
}

func TestFeatures(t *testing.T) {
	if f := AP1000().Features; f.HardwareMessageHandling || f.HardwareStride || f.CommRegisters || f.CacheInvalidateOnReceive {
		t.Errorf("AP1000 features should all be off: %+v", f)
	}
	if f := AP1000Plus().Features; !f.HardwareMessageHandling || !f.HardwareStride || !f.CommRegisters || !f.CacheInvalidateOnReceive {
		t.Errorf("AP1000+ features should all be on: %+v", f)
	}
	// The x8 model is AP1000 hardware with a faster CPU.
	if f := AP1000x8().Features; f.HardwareMessageHandling {
		t.Errorf("AP1000x8 must keep software message handling: %+v", f)
	}
	if AP1000x8().ComputationFactor != 0.125 {
		t.Errorf("AP1000x8 computation_factor = %g", AP1000x8().ComputationFactor)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"ap1000", "AP1000+", "ap1000plus", "AP1000x8", "ap1000*"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("cm5"); err == nil {
		t.Error("ByName(cm5) should fail")
	}
}

func TestValidate(t *testing.T) {
	p := AP1000Plus()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.ComputationFactor = 0
	if err := p.Validate(); err == nil {
		t.Error("zero computation_factor should fail")
	}
	p = AP1000Plus()
	p.PutDmaSetTime = -1
	if err := p.Validate(); err == nil {
		t.Error("negative time should fail")
	}
}

func TestParseFigure6Style(t *testing.T) {
	// A file in exactly the Figure 6 style.
	src := `#
# AP1000 model
#
# computation SPARC
computation_factor	1.00
#
# ---- network ----
network_prolog_time	0.16
network_delay_time	0.16
#
# ---- PUT/GET ----
#
put_prolog_time		20.0
put_epilog_time		15.0
put_msg_time		0.05
put_dma_set_time	15.0
put_msg_post_time	0.04
#
intr_rtc_time		20.0
recv_msg_flush_time	0.04
recv_dma_set_time	15.0
`
	p, err := Parse(strings.NewReader(src), AP1000Plus())
	if err != nil {
		t.Fatal(err)
	}
	if p.PutPrologTime != 20.0 || p.IntrRtcTime != 20.0 || p.ComputationFactor != 1.0 {
		t.Errorf("parsed values wrong: %+v", p)
	}
	// Untouched base values survive.
	if p.BarrierHwTime != AP1000Plus().BarrierHwTime {
		t.Errorf("base value lost")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"bogus_param 1.0",
		"put_prolog_time",
		"put_prolog_time 1 2",
		"put_prolog_time abc",
		"hw_stride maybe",
		"computation_factor 0", // fails validation
		"put_prolog_time -3",
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src), AP1000()); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseFeaturesAndName(t *testing.T) {
	src := "name mymodel\nhw_stride false\ncomm_registers false\n"
	p, err := Parse(strings.NewReader(src), AP1000Plus())
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "mymodel" || p.Features.HardwareStride || p.Features.CommRegisters {
		t.Errorf("got %+v", p)
	}
	if !p.Features.HardwareMessageHandling {
		t.Error("unset feature should keep base value")
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	for _, mk := range []func() *Params{AP1000, AP1000Plus, AP1000x8} {
		orig := mk()
		var buf bytes.Buffer
		if err := orig.Format(&buf); err != nil {
			t.Fatal(err)
		}
		// Parse on top of a different base: every field must be
		// overwritten back to orig.
		base := AP1000Plus()
		if orig.Name == "AP1000+" {
			base = AP1000()
		}
		got, err := Parse(bytes.NewReader(buf.Bytes()), base)
		if err != nil {
			t.Fatalf("%s: %v\nfile:\n%s", orig.Name, err, buf.String())
		}
		if *got != *orig {
			t.Errorf("%s round trip mismatch:\n got %+v\nwant %+v", orig.Name, got, orig)
		}
	}
}

func TestDiff(t *testing.T) {
	d := Diff(AP1000(), AP1000Plus())
	if len(d) == 0 {
		t.Fatal("AP1000 vs AP1000+ should differ")
	}
	found := false
	for _, line := range d {
		if strings.HasPrefix(line, "put_prolog_time: 20 -> 1") {
			found = true
		}
	}
	if !found {
		t.Errorf("diff missing put_prolog_time change: %v", d)
	}
	if d := Diff(AP1000(), AP1000()); len(d) != 0 {
		t.Errorf("self-diff = %v", d)
	}
}

func TestAP1000x8SoftwareCostsRemainLarge(t *testing.T) {
	// The whole point of Table 2's third column: the x8 model keeps
	// most of the software messaging cost. Its PUT path must remain
	// at least an order of magnitude above the AP1000+'s.
	x8 := AP1000x8()
	plus := AP1000Plus()
	x8Send := x8.PutPrologTime + x8.PutEnqueueTime + x8.PutDmaSetTime + x8.PutEpilogTime
	plusSend := plus.PutPrologTime + plus.PutEnqueueTime
	if x8Send < 10*plusSend {
		t.Errorf("x8 send overhead %g not >> AP1000+ %g", x8Send, plusSend)
	}
}
