package params

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse: arbitrary parameter-file text must either error or yield
// a set that validates and round-trips through Format.
func FuzzParse(f *testing.F) {
	var seed bytes.Buffer
	if err := AP1000Plus().Format(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("put_prolog_time 3.5\n# comment\n")
	f.Add("bogus 1")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(strings.NewReader(src), AP1000())
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Parse accepted invalid params: %v", err)
		}
		var buf bytes.Buffer
		if err := p.Format(&buf); err != nil {
			t.Fatal(err)
		}
		q, err := Parse(&buf, AP1000Plus())
		if err != nil {
			t.Fatalf("formatted output failed to parse: %v\n%s", err, buf.String())
		}
		if *q != *p {
			t.Fatalf("format/parse round trip changed values")
		}
	})
}
