package mem

import "testing"

func TestCaptureDeliverContiguous(t *testing.T) {
	src, _ := NewSpace(1 << 16)
	dst, _ := NewSpace(1 << 16)
	sseg, _ := src.Alloc("s", Bytes, 64)
	dseg, _ := dst.Alloc("d", Bytes, 64)
	for i := range sseg.BytesData() {
		sseg.BytesData()[i] = byte(i)
	}
	p, err := CapturePayload(src, sseg.Base(), Contiguous(32))
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 32 {
		t.Fatalf("size = %d", p.Size())
	}
	// Mutate the source AFTER capture: delivery must see old data
	// (the zero-copy-with-send-flag semantics).
	sseg.BytesData()[0] = 0xFF
	if err := p.Deliver(dst, dseg.Base(), Contiguous(32)); err != nil {
		t.Fatal(err)
	}
	if dseg.BytesData()[0] != 0 {
		t.Fatal("delivered data reflects post-capture mutation")
	}
	for i := 1; i < 32; i++ {
		if dseg.BytesData()[i] != byte(i) {
			t.Fatalf("byte %d = %d", i, dseg.BytesData()[i])
		}
	}
}

func TestCaptureDeliverFloat64Stride(t *testing.T) {
	src, _ := NewSpace(1 << 16)
	dst, _ := NewSpace(1 << 16)
	sseg, sdata, _ := src.AllocFloat64("s", 20)
	dseg, ddata, _ := dst.AllocFloat64("d", 5)
	for i := range sdata {
		sdata[i] = float64(i)
	}
	// Gather every 4th element.
	pat := Stride{ItemSize: 8, Count: 5, Skip: 24}
	p, err := CapturePayload(src, sseg.Base(), pat)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Float64s(); !ok {
		t.Fatal("payload from float64 segment should expose Float64s")
	}
	if err := p.Deliver(dst, dseg.Base(), Contiguous(40)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if ddata[i] != float64(i*4) {
			t.Fatalf("d[%d] = %v", i, ddata[i])
		}
	}
}

func TestPayloadAccessors(t *testing.T) {
	src, _ := NewSpace(1 << 16)
	bseg, _ := src.Alloc("b", Bytes, 16)
	copy(bseg.BytesData(), "hello")
	p, err := CapturePayload(src, bseg.Base(), Contiguous(5))
	if err != nil {
		t.Fatal(err)
	}
	data, ok := p.Bytes()
	if !ok || string(data) != "hello" {
		t.Fatalf("Bytes = %q, %v", data, ok)
	}
	if _, ok := p.Float64s(); ok {
		t.Fatal("byte payload should not expose Float64s")
	}
	var nilP *Payload
	if nilP.Size() != 0 {
		t.Fatal("nil payload size")
	}
	if err := nilP.Deliver(src, bseg.Base(), Contiguous(0)); err != nil {
		t.Fatal("nil deliver should be a no-op")
	}
	if _, ok := nilP.Bytes(); ok {
		t.Fatal("nil payload Bytes should fail")
	}
}

func TestDeliverSizeMismatch(t *testing.T) {
	src, _ := NewSpace(1 << 16)
	seg, _ := src.Alloc("b", Bytes, 16)
	p, _ := CapturePayload(src, seg.Base(), Contiguous(8))
	if err := p.Deliver(src, seg.Base(), Contiguous(16)); err == nil {
		t.Fatal("size mismatch should fail")
	}
}

func TestCaptureErrors(t *testing.T) {
	src, _ := NewSpace(1 << 16)
	seg, _ := src.Alloc("b", Bytes, 16)
	if _, err := CapturePayload(src, Addr(0xbeef0000), Contiguous(8)); err == nil {
		t.Fatal("unmapped capture should fail")
	}
	if _, err := CapturePayload(src, seg.Base(), Contiguous(0)); err == nil {
		t.Fatal("zero-length pattern should fail validation")
	}
	if _, err := CapturePayload(src, seg.Base(), Contiguous(17)); err == nil {
		t.Fatal("overrun capture should fail")
	}
}
