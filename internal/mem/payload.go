package mem

import "fmt"

// Payload is data in flight: the send DMA captures the source pattern
// into a private buffer at send time (so the sender may reuse the
// source area as soon as its send flag rises, per S3.1), and the
// receive DMA delivers it into the destination pattern on arrival.
type Payload struct {
	space *Space
	base  Addr
	size  int64
	// san carries the producer's released sanitizer clock for
	// payloads that hop threads asynchronously (SEND ring buffers,
	// broadcasts, remote-load replies); nil when not sanitized.
	san any
}

// SetSan attaches a sanitizer release token to the payload.
func (p *Payload) SetSan(tok any) {
	if p != nil {
		p.san = tok
	}
}

// San returns the attached sanitizer token, if any.
func (p *Payload) San() any {
	if p == nil {
		return nil
	}
	return p.san
}

// Size reports the payload length in bytes.
func (p *Payload) Size() int64 {
	if p == nil {
		return 0
	}
	return p.size
}

// CapturePayload reads srcPat at (src, addr) into a fresh payload
// buffer, preserving the source segment's representation so numeric
// data never round-trips through bytes.
func CapturePayload(src *Space, addr Addr, srcPat Stride) (*Payload, error) {
	if err := srcPat.Validate(); err != nil {
		return nil, err
	}
	total := srcPat.Total()
	seg, err := src.Resolve(addr, srcPat.Extent())
	if err != nil {
		return nil, fmt.Errorf("mem: capture: %w", err)
	}
	staging, err := NewSpace(total + PageSize)
	if err != nil {
		return nil, err
	}
	kind := seg.Kind()
	size := total
	if kind == Float64 && size%8 != 0 {
		// A sub-element byte transfer from a float segment must fall
		// back to byte representation.
		kind = Bytes
	}
	pseg, err := staging.Alloc("payload", kind, size)
	if err != nil {
		return nil, err
	}
	if err := CopyStride(staging, pseg.Base(), Contiguous(total), src, addr, srcPat); err != nil {
		return nil, err
	}
	return &Payload{space: staging, base: pseg.Base(), size: total}, nil
}

// Deliver writes the payload into dstPat at (dst, addr) — the receive
// DMA. A nil payload (zero-length transfer) is a no-op.
func (p *Payload) Deliver(dst *Space, addr Addr, dstPat Stride) error {
	if p == nil {
		return nil
	}
	if dstPat.Total() != p.size {
		return fmt.Errorf("mem: deliver: pattern wants %d bytes, payload has %d", dstPat.Total(), p.size)
	}
	return CopyStride(dst, addr, dstPat, p.space, p.base, Contiguous(p.size))
}

// Float64s returns the payload as float64 values when it was captured
// from a Float64 segment; ok reports whether that representation is
// available. Used by reduction operators that combine in-flight data.
func (p *Payload) Float64s() (vals []float64, ok bool) {
	if p == nil {
		return nil, false
	}
	seg, err := p.space.Resolve(p.base, p.size)
	if err != nil || seg.Kind() != Float64 {
		return nil, false
	}
	off := int64(p.base-seg.Base()) / 8
	return seg.Float64Data()[off : off+p.size/8], true
}

// Bytes returns the payload as raw bytes when it was captured from a
// Bytes segment.
func (p *Payload) Bytes() (data []byte, ok bool) {
	if p == nil {
		return nil, false
	}
	seg, err := p.space.Resolve(p.base, p.size)
	if err != nil || seg.Kind() != Bytes {
		return nil, false
	}
	off := int64(p.base - seg.Base())
	return seg.BytesData()[off : off+p.size], true
}
