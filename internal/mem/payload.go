package mem

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Payload is data in flight: the send DMA captures the source pattern
// into a private buffer at send time (so the sender may reuse the
// source area as soon as its send flag rises, per S3.1), and the
// receive DMA delivers it into the destination pattern on arrival.
//
// The buffer is owned by the payload itself (no per-message address
// space), and payloads recycle through a pool so the PUT fast path
// does not allocate: capture reuses a pooled buffer, and the machine's
// synchronous delivery paths hand it back with Release.
type Payload struct {
	// seg is the private backing buffer, preserving the source
	// segment's representation so numeric data never round-trips
	// through bytes. Its base is always 0.
	seg  Segment
	size int64
	// san carries the producer's released sanitizer clock for
	// payloads that hop threads asynchronously (SEND ring buffers,
	// broadcasts, remote-load replies); nil when not sanitized.
	san any
	// pooled marks a payload checked out of the capture pool, so the
	// in-flight accounting survives a stray Release of a heap-fresh
	// payload (clones, views) without going negative.
	pooled bool
}

// payloadPool recycles payload buffers across captures.
var payloadPool = sync.Pool{New: func() any { return new(Payload) }}

// inFlight counts pool-backed payloads captured but not yet Released.
// Quiesce tests use it to assert delivery paths hand every capture
// back: after a drained run the count must be zero, or a payload
// leaked out of the pool's custody.
var inFlight atomic.Int64

// PayloadsInFlight reports the number of pooled payload buffers
// currently captured and not yet released.
func PayloadsInFlight() int64 { return inFlight.Load() }

// SetSan attaches a sanitizer release token to the payload.
func (p *Payload) SetSan(tok any) {
	if p != nil {
		p.san = tok
	}
}

// San returns the attached sanitizer token, if any.
func (p *Payload) San() any {
	if p == nil {
		return nil
	}
	return p.san
}

// Size reports the payload length in bytes.
func (p *Payload) Size() int64 {
	if p == nil {
		return 0
	}
	return p.size
}

// reset prepares the payload to hold size bytes of the given kind,
// reusing buffer capacity from a previous life when possible.
func (p *Payload) reset(kind Kind, size int64) {
	p.size = size
	p.san = nil
	p.seg.name = "payload"
	p.seg.base = 0
	p.seg.size = size
	p.seg.kind = kind
	// Grow only the active representation; the other keeps its
	// capacity for a future capture of that kind.
	switch kind {
	case Float64:
		n := int(size / 8)
		if cap(p.seg.f64) < n {
			p.seg.f64 = make([]float64, n)
		} else {
			p.seg.f64 = p.seg.f64[:n]
		}
	default:
		if cap(p.seg.bytes) < int(size) {
			p.seg.bytes = make([]byte, size)
		} else {
			p.seg.bytes = p.seg.bytes[:size]
		}
	}
}

// Release returns the payload's buffer to the capture pool. Only a
// caller that knows the payload is dead may release it: the machine's
// synchronous delivery paths (PUT, remote store, GET reply) qualify;
// payloads parked in ring buffers, broadcast inboxes or reply
// channels must be left to the garbage collector.
func (p *Payload) Release() {
	if p == nil {
		return
	}
	p.san = nil
	if p.pooled {
		p.pooled = false
		inFlight.Add(-1)
	}
	payloadPool.Put(p)
}

// Sum64 hashes the payload contents (FNV-1a over the in-flight
// bytes) for the reliable-delivery checksum. A nil or empty payload
// hashes to the FNV offset basis. Allocation-free.
func (p *Payload) Sum64() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	if p == nil {
		return h
	}
	if p.seg.kind == Float64 {
		for _, v := range p.seg.f64[:p.size/8] {
			b := math.Float64bits(v)
			for s := 0; s < 64; s += 8 {
				h = (h ^ (b >> s & 0xff)) * prime
			}
		}
		return h
	}
	for _, b := range p.seg.bytes[:p.size] {
		h = (h ^ uint64(b)) * prime
	}
	return h
}

// CorruptClone returns a fresh copy of the payload with one bit
// flipped, selected by bit modulo the payload length. The original is
// untouched (the fault layer delivers the corrupted clone and keeps
// the pristine payload for retransmission). The clone is heap-fresh,
// never pooled: its lifetime belongs to the delivery that rejects it.
func (p *Payload) CorruptClone(bit uint64) *Payload {
	if p == nil || p.size == 0 {
		return nil
	}
	q := new(Payload)
	q.reset(p.seg.kind, p.size)
	q.san = p.san
	if p.seg.kind == Float64 {
		copy(q.seg.f64, p.seg.f64[:p.size/8])
		i := bit % uint64(p.size*8)
		q.seg.f64[i/64] = math.Float64frombits(math.Float64bits(q.seg.f64[i/64]) ^ 1<<(i%64))
		return q
	}
	copy(q.seg.bytes, p.seg.bytes[:p.size])
	i := bit % uint64(p.size*8)
	q.seg.bytes[i/8] ^= 1 << (i % 8)
	return q
}

// CapturePayload reads srcPat at (src, addr) into a payload buffer,
// preserving the source segment's representation so numeric data
// never round-trips through bytes.
func CapturePayload(src *Space, addr Addr, srcPat Stride) (*Payload, error) {
	if err := srcPat.Validate(); err != nil {
		return nil, err
	}
	total := srcPat.Total()
	seg, err := src.Resolve(addr, srcPat.Extent())
	if err != nil {
		return nil, fmt.Errorf("mem: capture: %w", err)
	}
	kind := seg.Kind()
	if kind == Float64 && total%8 != 0 {
		// A sub-element byte transfer from a float segment must fall
		// back to byte representation.
		kind = Bytes
	}
	p := payloadPool.Get().(*Payload)
	if !p.pooled {
		p.pooled = true
		inFlight.Add(1)
	}
	p.reset(kind, total)
	if err := copyStrideSegs(&p.seg, 0, Contiguous(total), seg, int64(addr-seg.base), srcPat); err != nil {
		p.Release()
		return nil, err
	}
	return p, nil
}

// Deliver writes the payload into dstPat at (dst, addr) — the receive
// DMA. A nil payload (zero-length transfer) is a no-op.
func (p *Payload) Deliver(dst *Space, addr Addr, dstPat Stride) error {
	if p == nil {
		return nil
	}
	if err := dstPat.Validate(); err != nil {
		return err
	}
	if dstPat.Total() != p.size {
		return fmt.Errorf("mem: deliver: pattern wants %d bytes, payload has %d", dstPat.Total(), p.size)
	}
	dseg, err := dst.Resolve(addr, dstPat.Extent())
	if err != nil {
		return fmt.Errorf("mem: deliver: %w", err)
	}
	return copyStrideSegs(dseg, int64(addr-dseg.base), dstPat, &p.seg, 0, Contiguous(p.size))
}

// SetView repoints the payload at caller-owned bytes without copying —
// the DSM page cache's zero-allocation hit path. The payload must be a
// long-lived value the caller owns (never pooled, never Released): the
// view aliases b, so it is only valid until the caller mutates or
// replaces the backing bytes.
func (p *Payload) SetView(b []byte) {
	p.size = int64(len(b))
	p.san = nil
	p.seg.name = "view"
	p.seg.base = 0
	p.seg.size = int64(len(b))
	p.seg.kind = Bytes
	p.seg.bytes = b
	p.seg.f64 = nil
}

// Float64s returns the payload as float64 values when it was captured
// from a Float64 segment; ok reports whether that representation is
// available. Used by reduction operators that combine in-flight data.
func (p *Payload) Float64s() (vals []float64, ok bool) {
	if p == nil || p.seg.kind != Float64 {
		return nil, false
	}
	return p.seg.f64[:p.size/8], true
}

// Bytes returns the payload as raw bytes when it was captured from a
// Bytes segment.
func (p *Payload) Bytes() (data []byte, ok bool) {
	if p == nil || p.seg.kind != Bytes {
		return nil, false
	}
	return p.seg.bytes[:p.size], true
}
