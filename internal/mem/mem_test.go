package mem

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func newSpace(t testing.TB) *Space {
	t.Helper()
	sp, err := NewSpace(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestNewSpaceRejectsBadCapacity(t *testing.T) {
	for _, c := range []int64{0, -1} {
		if _, err := NewSpace(c); err == nil {
			t.Errorf("NewSpace(%d) should fail", c)
		}
	}
}

func TestAllocBasics(t *testing.T) {
	sp := newSpace(t)
	a, err := sp.Alloc("a", Bytes, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a.Base() != PageSize {
		t.Errorf("first segment base = %#x, want %#x (address 0 reserved)", a.Base(), PageSize)
	}
	if a.Size() != 100 || a.Kind() != Bytes || a.Name() != "a" {
		t.Errorf("segment = %+v", a)
	}
	b, err := sp.Alloc("b", Float64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if b.Base()%PageSize != 0 {
		t.Errorf("segment base %#x not page aligned", b.Base())
	}
	if b.Base() <= a.Base() {
		t.Errorf("segments overlap: %#x then %#x", a.Base(), b.Base())
	}
	if sp.Used() != 164 {
		t.Errorf("Used = %d", sp.Used())
	}
	if len(sp.Segments()) != 2 {
		t.Errorf("Segments = %d", len(sp.Segments()))
	}
}

func TestAllocErrors(t *testing.T) {
	sp := newSpace(t)
	if _, err := sp.Alloc("z", Bytes, 0); err == nil {
		t.Error("zero size should fail")
	}
	if _, err := sp.Alloc("z", Bytes, -8); err == nil {
		t.Error("negative size should fail")
	}
	if _, err := sp.Alloc("z", Float64, 12); err == nil {
		t.Error("non-multiple-of-8 float64 segment should fail")
	}
	if _, err := sp.Alloc("big", Bytes, 2<<20); err == nil {
		t.Error("over-capacity alloc should fail")
	}
}

func TestAllocFloat64(t *testing.T) {
	sp := newSpace(t)
	seg, data, err := sp.AllocFloat64("v", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 10 || seg.Size() != 80 {
		t.Fatalf("len=%d size=%d", len(data), seg.Size())
	}
	data[3] = 42
	if seg.Float64Data()[3] != 42 {
		t.Fatal("returned slice is not the backing store")
	}
}

func TestKindAccessorsPanic(t *testing.T) {
	sp := newSpace(t)
	seg, _ := sp.Alloc("b", Bytes, 16)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Float64Data on bytes segment should panic")
			}
		}()
		seg.Float64Data()
	}()
	fseg, _ := sp.Alloc("f", Float64, 16)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("BytesData on float64 segment should panic")
			}
		}()
		fseg.BytesData()
	}()
}

func TestResolve(t *testing.T) {
	sp := newSpace(t)
	a, _ := sp.Alloc("a", Bytes, 100)
	b, _ := sp.Alloc("b", Bytes, 100)
	got, err := sp.Resolve(a.Base()+50, 50)
	if err != nil || got != a {
		t.Fatalf("Resolve mid-a = %v, %v", got, err)
	}
	if _, err := sp.Resolve(a.Base()+50, 51); err == nil {
		t.Error("overrun past segment end should fail")
	}
	if _, err := sp.Resolve(0, 1); err == nil {
		t.Error("address 0 is unmapped")
	}
	if _, err := sp.Resolve(a.Base()+Addr(a.Size()), 1); err == nil {
		t.Error("gap between segments should be unmapped")
	}
	if got, _ := sp.Resolve(b.Base(), b.Size()); got != b {
		t.Error("whole-segment resolve failed")
	}
}

func TestCopyBytes(t *testing.T) {
	sp1 := newSpace(t)
	sp2 := newSpace(t)
	src, _ := sp1.Alloc("src", Bytes, 256)
	dst, _ := sp2.Alloc("dst", Bytes, 256)
	for i := range src.BytesData() {
		src.BytesData()[i] = byte(i)
	}
	if err := Copy(sp2, dst.Base()+16, sp1, src.Base()+32, 64); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if dst.BytesData()[16+i] != byte(32+i) {
			t.Fatalf("byte %d = %d", i, dst.BytesData()[16+i])
		}
	}
	// Outside the copied window untouched.
	if dst.BytesData()[15] != 0 || dst.BytesData()[80] != 0 {
		t.Fatal("copy wrote outside the window")
	}
}

func TestCopyFloat64(t *testing.T) {
	sp1 := newSpace(t)
	sp2 := newSpace(t)
	_, srcData, _ := sp1.AllocFloat64("src", 16)
	srcSeg := sp1.Segments()[0]
	dstSeg, dstData, _ := sp2.AllocFloat64("dst", 16)
	for i := range srcData {
		srcData[i] = float64(i) * 1.5
	}
	if err := Copy(sp2, dstSeg.Base()+8, sp1, srcSeg.Base()+16, 40); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if dstData[1+i] != float64(2+i)*1.5 {
			t.Fatalf("elem %d = %v", i, dstData[1+i])
		}
	}
}

func TestCopyCrossKind(t *testing.T) {
	sp := newSpace(t)
	fseg, fdata, _ := sp.AllocFloat64("f", 4)
	bseg, _ := sp.Alloc("b", Bytes, 32)
	fdata[0], fdata[1], fdata[2], fdata[3] = 1, 2, 3, 4
	if err := Copy(sp, bseg.Base(), sp, fseg.Base(), 32); err != nil {
		t.Fatal(err)
	}
	// Round-trip back into a fresh float segment.
	f2seg, f2, _ := sp.AllocFloat64("f2", 4)
	if err := Copy(sp, f2seg.Base(), sp, bseg.Base(), 32); err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1, 2, 3, 4} {
		if f2[i] != want {
			t.Fatalf("f2[%d] = %v", i, f2[i])
		}
	}
}

func TestCopyErrors(t *testing.T) {
	sp := newSpace(t)
	bseg, _ := sp.Alloc("b", Bytes, 64)
	fseg, _, _ := sp.AllocFloat64("f", 8)
	if err := Copy(sp, bseg.Base(), sp, bseg.Base(), -1); err == nil {
		t.Error("negative size should fail")
	}
	if err := Copy(sp, bseg.Base(), sp, Addr(0xdead0000), 8); err == nil {
		t.Error("unmapped source should fail")
	}
	if err := Copy(sp, Addr(0xdead0000), sp, bseg.Base(), 8); err == nil {
		t.Error("unmapped destination should fail")
	}
	if err := Copy(sp, fseg.Base()+4, sp, bseg.Base(), 8); err == nil {
		t.Error("misaligned float64 destination should fail")
	}
	if err := Copy(sp, fseg.Base(), sp, bseg.Base(), 4); err == nil {
		t.Error("partial-element cross-kind copy should fail")
	}
	if err := Copy(sp, bseg.Base(), sp, bseg.Base(), 0); err != nil {
		t.Errorf("zero-size copy should succeed: %v", err)
	}
}

func TestStrideValidate(t *testing.T) {
	ok := Stride{ItemSize: 8, Count: 3, Skip: 16}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	if ok.Total() != 24 {
		t.Errorf("Total = %d", ok.Total())
	}
	if ok.Extent() != 24+32 {
		t.Errorf("Extent = %d", ok.Extent())
	}
	for _, bad := range []Stride{
		{ItemSize: 0, Count: 1},
		{ItemSize: 8, Count: 0},
		{ItemSize: 8, Count: 1, Skip: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", bad)
		}
	}
	if c := Contiguous(100); c.ItemSize != 100 || c.Count != 1 || c.Skip != 0 {
		t.Errorf("Contiguous = %+v", c)
	}
}

// TestCopyStrideFigure3 reproduces the exact Figure 3 picture:
// send_item_size x send_cnt=3 feeding recv_item_size x recv_cnt=2
// with differing item sizes.
func TestCopyStrideFigure3(t *testing.T) {
	sp := newSpace(t)
	src, _ := sp.Alloc("src", Bytes, 256)
	dst, _ := sp.Alloc("dst", Bytes, 256)
	for i := range src.BytesData() {
		src.BytesData()[i] = byte(i + 1)
	}
	// 3 items of 2 bytes, skip 3 -> payload "1,2  6,7  11,12"
	srcPat := Stride{ItemSize: 2, Count: 3, Skip: 3}
	// 2 items of 3 bytes, skip 4.
	dstPat := Stride{ItemSize: 3, Count: 2, Skip: 4}
	if err := CopyStride(sp, dst.Base(), dstPat, sp, src.Base(), srcPat); err != nil {
		t.Fatal(err)
	}
	d := dst.BytesData()
	want := []byte{1, 2, 6, 0, 0, 0, 0, 7, 11, 12}
	for i, w := range want {
		if d[i] != w {
			t.Fatalf("dst[%d] = %d, want %d (dst=%v)", i, d[i], w, d[:12])
		}
	}
}

func TestCopyStrideFloat64Column(t *testing.T) {
	// The motivating case: copying a column of a row-major 2-D array
	// (stride = row length) into a contiguous vector, as SPREAD MOVE
	// needs when the loop index is the 2nd dimension (S2.2).
	sp := newSpace(t)
	const rows, cols = 8, 5
	mseg, m, _ := sp.AllocFloat64("m", rows*cols)
	vseg, v, _ := sp.AllocFloat64("v", rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m[r*cols+c] = float64(r*100 + c)
		}
	}
	// Column 2: items of 8 bytes, skip (cols-1)*8.
	srcPat := Stride{ItemSize: 8, Count: rows, Skip: (cols - 1) * 8}
	dstPat := Contiguous(rows * 8)
	if err := CopyStride(sp, vseg.Base(), dstPat, sp, mseg.Base()+2*8, srcPat); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rows; r++ {
		if v[r] != float64(r*100+2) {
			t.Fatalf("v[%d] = %v", r, v[r])
		}
	}
}

func TestCopyStrideScatter(t *testing.T) {
	// Contiguous source scattered into a strided destination (the
	// receive side of OVERLAP FIX along the 2nd dimension).
	sp := newSpace(t)
	sseg, s, _ := sp.AllocFloat64("s", 4)
	dseg, d, _ := sp.AllocFloat64("d", 16)
	for i := range s {
		s[i] = float64(i + 1)
	}
	dstPat := Stride{ItemSize: 8, Count: 4, Skip: 24}
	if err := CopyStride(sp, dseg.Base(), dstPat, sp, sseg.Base(), Contiguous(32)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if d[i*4] != float64(i+1) {
			t.Fatalf("d[%d] = %v (d=%v)", i*4, d[i*4], d)
		}
	}
}

func TestCopyStrideErrors(t *testing.T) {
	sp := newSpace(t)
	a, _ := sp.Alloc("a", Bytes, 64)
	b, _ := sp.Alloc("b", Bytes, 64)
	// Payload mismatch.
	err := CopyStride(sp, b.Base(), Stride{ItemSize: 3, Count: 3}, sp, a.Base(), Stride{ItemSize: 2, Count: 3})
	if err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Errorf("payload mismatch: %v", err)
	}
	// Extent overruns segment.
	err = CopyStride(sp, b.Base(), Contiguous(32), sp, a.Base(), Stride{ItemSize: 8, Count: 4, Skip: 100})
	if err == nil {
		t.Error("extent overrun should fail")
	}
	// Invalid pattern.
	err = CopyStride(sp, b.Base(), Contiguous(0), sp, a.Base(), Contiguous(0))
	if err == nil {
		t.Error("zero pattern should fail")
	}
}

// Property: CopyStride gather (strided->contiguous) then scatter
// (contiguous->strided) restores the original items.
func TestStrideGatherScatterRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sp, _ := NewSpace(1 << 20)
		itemSize := int64(1 + rng.Intn(16))
		count := int64(1 + rng.Intn(20))
		skip := int64(rng.Intn(16))
		pat := Stride{ItemSize: itemSize, Count: count, Skip: skip}
		src, _ := sp.Alloc("src", Bytes, pat.Extent())
		mid, _ := sp.Alloc("mid", Bytes, pat.Total())
		dst, _ := sp.Alloc("dst", Bytes, pat.Extent())
		rng.Read(src.BytesData())
		if err := CopyStride(sp, mid.Base(), Contiguous(pat.Total()), sp, src.Base(), pat); err != nil {
			return false
		}
		if err := CopyStride(sp, dst.Base(), pat, sp, mid.Base(), Contiguous(pat.Total())); err != nil {
			return false
		}
		// Compare item areas only (gaps are not copied).
		for i := int64(0); i < count; i++ {
			off := i * (itemSize + skip)
			for j := int64(0); j < itemSize; j++ {
				if dst.BytesData()[off+j] != src.BytesData()[off+j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCopyContiguous64K(b *testing.B) {
	sp1, _ := NewSpace(1 << 20)
	sp2, _ := NewSpace(1 << 20)
	src, _ := sp1.Alloc("src", Bytes, 64<<10)
	dst, _ := sp2.Alloc("dst", Bytes, 64<<10)
	b.SetBytes(64 << 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Copy(sp2, dst.Base(), sp1, src.Base(), 64<<10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCopyStrideColumn(b *testing.B) {
	sp, _ := NewSpace(1 << 22)
	mseg, _, _ := sp.AllocFloat64("m", 256*256)
	vseg, _, _ := sp.AllocFloat64("v", 256)
	pat := Stride{ItemSize: 8, Count: 256, Skip: 255 * 8}
	b.SetBytes(256 * 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := CopyStride(sp, vseg.Base(), Contiguous(256*8), sp, mseg.Base(), pat); err != nil {
			b.Fatal(err)
		}
	}
}
