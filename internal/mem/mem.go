// Package mem models a cell's local memory: the DRAM address space,
// the segments user programs allocate in it, and the DMA copy engine
// the MSC+ drives for PUT/GET transfers, including the
// one-dimensional stride mode of Figure 3.
//
// Memory is segment-based. A segment is a contiguous logical address
// range backed either by raw bytes or by a []float64 (the natural
// element type of the paper's Fortran workloads). The DMA engine
// copies between segments of any cell, converting representation when
// a transfer crosses segment kinds, so the byte-level semantics of
// the hardware are preserved while numeric kernels keep direct slice
// access to their data — the "user-level direct access" the paper's
// zero-copy PUT depends on.
package mem

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Addr is a logical byte address within one cell's address space.
type Addr uint64

// PageSize is the small page size of the MC's MMU (S4.1: "256 entries
// for every 4-kilobyte page").
const PageSize = 4096

// BigPageSize is the large page size ("64 entries for every
// 256-kilobyte page").
const BigPageSize = 256 * 1024

// Kind describes a segment's backing representation.
type Kind uint8

const (
	// Bytes segments are backed by []byte.
	Bytes Kind = iota
	// Float64 segments are backed by []float64; addresses within them
	// must stay 8-byte aligned and sizes must be multiples of 8.
	Float64
)

func (k Kind) String() string {
	switch k {
	case Bytes:
		return "bytes"
	case Float64:
		return "float64"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Segment is an allocated region of a cell's memory.
type Segment struct {
	name  string
	base  Addr
	size  int64
	kind  Kind
	bytes []byte
	f64   []float64
}

// Name reports the segment's allocation label.
func (s *Segment) Name() string { return s.name }

// Base reports the segment's starting logical address.
func (s *Segment) Base() Addr { return s.base }

// Size reports the segment length in bytes.
func (s *Segment) Size() int64 { return s.size }

// Kind reports the backing representation.
func (s *Segment) Kind() Kind { return s.kind }

// BytesData returns the raw backing slice of a Bytes segment.
// The hardware DMA may concurrently write other parts of the slice;
// callers must follow the flag discipline, exactly as on the machine.
func (s *Segment) BytesData() []byte {
	if s.kind != Bytes {
		panic(fmt.Sprintf("mem: BytesData on %s segment %q", s.kind, s.name))
	}
	return s.bytes
}

// Float64Data returns the backing slice of a Float64 segment.
func (s *Segment) Float64Data() []float64 {
	if s.kind != Float64 {
		panic(fmt.Sprintf("mem: Float64Data on %s segment %q", s.kind, s.name))
	}
	return s.f64
}

// Contains reports whether [addr, addr+n) lies within the segment.
func (s *Segment) Contains(addr Addr, n int64) bool {
	return addr >= s.base && n >= 0 && int64(addr-s.base)+n <= s.size
}

// Space is one cell's local memory. It is not safe for concurrent
// allocation; allocation happens during program setup (SPMD prologue)
// while data transfers into existing segments may run concurrently.
type Space struct {
	capacity int64
	used     int64
	next     Addr
	segs     []*Segment // sorted by base
}

// allocBase is the first allocatable address. Address 0 is reserved:
// a GET with destination address 0 "goes and comes back, and does not
// copy the data" — the acknowledge trick of S4.1.
const allocBase Addr = PageSize

// NewSpace creates a memory space with the given capacity in bytes.
// The AP1000+ shipped with 16 or 64 megabytes per cell; any positive
// capacity is accepted so tests can run small.
func NewSpace(capacity int64) (*Space, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("mem: non-positive capacity %d", capacity)
	}
	return &Space{capacity: capacity, next: allocBase}, nil
}

// Capacity reports the configured DRAM size.
func (sp *Space) Capacity() int64 { return sp.capacity }

// Used reports total allocated bytes.
func (sp *Space) Used() int64 { return sp.used }

// Alloc carves a new segment of size bytes. Segments are page-aligned
// so that MMU translation of a transfer never splits a segment
// boundary mid-page.
func (sp *Space) Alloc(name string, kind Kind, size int64) (*Segment, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mem: alloc %q: non-positive size %d", name, size)
	}
	if kind == Float64 && size%8 != 0 {
		return nil, fmt.Errorf("mem: alloc %q: float64 segment size %d not a multiple of 8", name, size)
	}
	if sp.used+size > sp.capacity {
		return nil, fmt.Errorf("mem: alloc %q: %d bytes exceeds capacity (%d used of %d)", name, size, sp.used, sp.capacity)
	}
	seg := &Segment{name: name, base: sp.next, size: size, kind: kind}
	switch kind {
	case Bytes:
		seg.bytes = make([]byte, size)
	case Float64:
		seg.f64 = make([]float64, size/8)
	default:
		return nil, fmt.Errorf("mem: alloc %q: unknown kind %d", name, kind)
	}
	sp.segs = append(sp.segs, seg)
	sp.used += size
	// Advance to the next page boundary past the segment.
	end := sp.next + Addr(size)
	sp.next = (end + PageSize - 1) &^ (PageSize - 1)
	return seg, nil
}

// AllocFloat64 allocates a Float64 segment holding n elements and
// returns both the segment and its backing slice.
func (sp *Space) AllocFloat64(name string, n int) (*Segment, []float64, error) {
	seg, err := sp.Alloc(name, Float64, int64(n)*8)
	if err != nil {
		return nil, nil, err
	}
	return seg, seg.Float64Data(), nil
}

// Resolve finds the segment containing [addr, addr+n).
func (sp *Space) Resolve(addr Addr, n int64) (*Segment, error) {
	i := sort.Search(len(sp.segs), func(i int) bool {
		return sp.segs[i].base+Addr(sp.segs[i].size) > addr
	})
	if i < len(sp.segs) && sp.segs[i].Contains(addr, n) {
		return sp.segs[i], nil
	}
	return nil, fmt.Errorf("mem: access [%#x,+%d) hits no segment", addr, n)
}

// Segments returns all segments in address order. Callers must not
// mutate the slice.
func (sp *Space) Segments() []*Segment { return sp.segs }

// LoadWord8 reads the 8-byte word at addr — the access width of the
// remote atomic suite. Float64 segments require 8-alignment; byte
// segments are read little-endian.
func (sp *Space) LoadWord8(addr Addr) (uint64, error) {
	seg, err := sp.Resolve(addr, 8)
	if err != nil {
		return 0, err
	}
	return readElem8(seg, int64(addr-seg.base))
}

// StoreWord8 writes the 8-byte word at addr (see LoadWord8).
func (sp *Space) StoreWord8(addr Addr, v uint64) error {
	seg, err := sp.Resolve(addr, 8)
	if err != nil {
		return err
	}
	return writeElem8(seg, int64(addr-seg.base), v)
}

// readElem8 reads the 8 bytes at byte offset off within seg, which
// must be 8-aligned for Float64 segments.
func readElem8(seg *Segment, off int64) (uint64, error) {
	switch seg.kind {
	case Float64:
		if off%8 != 0 {
			return 0, fmt.Errorf("mem: misaligned 8-byte read at offset %d of float64 segment %q", off, seg.name)
		}
		return math.Float64bits(seg.f64[off/8]), nil
	default:
		return binary.LittleEndian.Uint64(seg.bytes[off:]), nil
	}
}

func writeElem8(seg *Segment, off int64, v uint64) error {
	switch seg.kind {
	case Float64:
		if off%8 != 0 {
			return fmt.Errorf("mem: misaligned 8-byte write at offset %d of float64 segment %q", off, seg.name)
		}
		seg.f64[off/8] = math.Float64frombits(v)
		return nil
	default:
		binary.LittleEndian.PutUint64(seg.bytes[off:], v)
		return nil
	}
}

// copyRun copies n contiguous bytes between segments starting at the
// given intra-segment byte offsets.
func copyRun(dst *Segment, doff int64, src *Segment, soff int64, n int64) error {
	if n == 0 {
		return nil
	}
	switch {
	case dst.kind == Bytes && src.kind == Bytes:
		copy(dst.bytes[doff:doff+n], src.bytes[soff:soff+n])
		return nil
	case dst.kind == Float64 && src.kind == Float64:
		if doff%8 != 0 || soff%8 != 0 || n%8 != 0 {
			return fmt.Errorf("mem: float64<-float64 copy misaligned (doff=%d soff=%d n=%d)", doff, soff, n)
		}
		copy(dst.f64[doff/8:(doff+n)/8], src.f64[soff/8:(soff+n)/8])
		return nil
	default:
		// Cross-representation: move 8 bytes at a time; both sides
		// must be 8-aligned with n a multiple of 8, which the
		// float64 side requires anyway.
		if doff%8 != 0 || soff%8 != 0 || n%8 != 0 {
			return fmt.Errorf("mem: cross-kind copy misaligned (doff=%d soff=%d n=%d)", doff, soff, n)
		}
		for i := int64(0); i < n; i += 8 {
			v, err := readElem8(src, soff+i)
			if err != nil {
				return err
			}
			if err := writeElem8(dst, doff+i, v); err != nil {
				return err
			}
		}
		return nil
	}
}

// Copy performs a contiguous DMA transfer of size bytes from
// (srcSpace, srcAddr) to (dstSpace, dstAddr). Source and destination
// may belong to different cells; the MSC+ receive DMA is exactly this
// operation on the destination cell.
func Copy(dst *Space, dstAddr Addr, src *Space, srcAddr Addr, size int64) error {
	if size < 0 {
		return fmt.Errorf("mem: negative copy size %d", size)
	}
	if size == 0 {
		return nil
	}
	sseg, err := src.Resolve(srcAddr, size)
	if err != nil {
		return fmt.Errorf("mem: copy source: %w", err)
	}
	dseg, err := dst.Resolve(dstAddr, size)
	if err != nil {
		return fmt.Errorf("mem: copy destination: %w", err)
	}
	return copyRun(dseg, int64(dstAddr-dseg.base), sseg, int64(srcAddr-sseg.base), size)
}

// Stride describes one side of a one-dimensional stride transfer
// (Figure 3): Count items of ItemSize bytes, with Skip bytes of gap
// between the end of one item and the start of the next.
type Stride struct {
	ItemSize int64
	Count    int64
	Skip     int64
}

// Contiguous returns the Stride describing a plain transfer of size
// bytes (one item, no skip).
func Contiguous(size int64) Stride { return Stride{ItemSize: size, Count: 1} }

// Total reports the payload bytes the pattern moves.
func (s Stride) Total() int64 { return s.ItemSize * s.Count }

// Extent reports the bytes of address space the pattern touches,
// including gaps (but not a trailing gap).
func (s Stride) Extent() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Count*s.ItemSize + (s.Count-1)*s.Skip
}

// Validate rejects patterns the hardware cannot express.
func (s Stride) Validate() error {
	if s.ItemSize <= 0 || s.Count <= 0 || s.Skip < 0 {
		return fmt.Errorf("mem: invalid stride %+v", s)
	}
	return nil
}

// CopyStride performs a stride DMA transfer: the source pattern is
// read item by item and the stream of payload bytes is written into
// the destination pattern. As in Figure 3, the item sizes of the two
// sides may differ (send_item_size=2,cnt=3 feeding recv_item_size=3,
// cnt=2); only the payload totals must match.
func CopyStride(dst *Space, dstAddr Addr, dstPat Stride, src *Space, srcAddr Addr, srcPat Stride) error {
	if err := srcPat.Validate(); err != nil {
		return err
	}
	if err := dstPat.Validate(); err != nil {
		return err
	}
	if srcPat.Total() != dstPat.Total() {
		return fmt.Errorf("mem: stride payload mismatch: send %d bytes, recv %d bytes", srcPat.Total(), dstPat.Total())
	}
	sseg, err := src.Resolve(srcAddr, srcPat.Extent())
	if err != nil {
		return fmt.Errorf("mem: stride source: %w", err)
	}
	dseg, err := dst.Resolve(dstAddr, dstPat.Extent())
	if err != nil {
		return fmt.Errorf("mem: stride destination: %w", err)
	}
	return copyStrideSegs(dseg, int64(dstAddr-dseg.base), dstPat, sseg, int64(srcAddr-sseg.base), srcPat)
}

// copyStrideSegs is the stride-DMA inner loop over resolved segments:
// the source pattern at soff within sseg streams into the destination
// pattern at doff within dseg. Patterns must already be validated and
// total-matched.
func copyStrideSegs(dseg *Segment, doff int64, dstPat Stride, sseg *Segment, soff int64, srcPat Stride) error {
	var (
		si, di       int64 // item indices
		sfill, dfill int64 // bytes already consumed/produced in current item
	)
	remaining := srcPat.Total()
	for remaining > 0 {
		srun := srcPat.ItemSize - sfill
		drun := dstPat.ItemSize - dfill
		run := srun
		if drun < run {
			run = drun
		}
		sp := soff + si*(srcPat.ItemSize+srcPat.Skip) + sfill
		dp := doff + di*(dstPat.ItemSize+dstPat.Skip) + dfill
		if err := copyRun(dseg, dp, sseg, sp, run); err != nil {
			return err
		}
		sfill += run
		dfill += run
		remaining -= run
		if sfill == srcPat.ItemSize {
			sfill = 0
			si++
		}
		if dfill == dstPat.ItemSize {
			dfill = 0
			di++
		}
	}
	return nil
}
