package apsan

import (
	"strings"
	"testing"
)

// Two writes to the same granule from different threads with no edge
// between them must be reported; with a release/acquire edge they
// must not.
func TestUnorderedWritesReported(t *testing.T) {
	s := New(2)
	a, b := s.CPU(0), s.CPU(1)
	s.Access(a, 0, true, 0, 0x1000, 8, 1, 0, "write A")
	s.Access(b, 1, true, 0, 0x1000, 8, 1, 0, "write B")
	if err := s.Err(); err == nil {
		t.Fatal("unordered conflicting writes not reported")
	} else if !strings.Contains(err.Error(), "write A") {
		t.Errorf("report does not name the earlier site: %v", err)
	}
}

func TestReleaseAcquireOrders(t *testing.T) {
	s := New(2)
	a, b := s.CPU(0), s.CPU(1)
	s.Access(a, 0, true, 0, 0x1000, 8, 1, 0, "write A")
	tok := s.Release(a)
	s.Acquire(b, tok)
	s.Access(b, 1, true, 0, 0x1000, 8, 1, 0, "write B")
	if err := s.Err(); err != nil {
		t.Fatalf("ordered writes reported as race: %v", err)
	}
}

func TestReleaseDoesNotCoverLaterAccesses(t *testing.T) {
	s := New(2)
	a, b := s.CPU(0), s.CPU(1)
	tok := s.Release(a)
	s.Access(a, 0, true, 0, 0x1000, 8, 1, 0, "write after release")
	s.Acquire(b, tok)
	s.Access(b, 1, false, 0, 0x1000, 8, 1, 0, "read B")
	if s.Err() == nil {
		t.Fatal("write made after the release must not be ordered by it")
	}
}

func TestFlagEdge(t *testing.T) {
	s := New(2)
	ctl, cpu := s.Ctl(0), s.CPU(1)
	s.Access(ctl, 0, true, 1, 0x2000, 8, 4, 0, "PUT receive DMA write")
	s.FlagInc(ctl, 1, 7)
	s.FlagWaited(cpu, 1, 7)
	s.Access(cpu, 1, false, 1, 0x2000, 8, 4, 0, "read")
	if err := s.Err(); err != nil {
		t.Fatalf("flag-ordered read flagged: %v", err)
	}
	// NoFlag must be inert.
	s2 := New(2)
	s2.Access(s2.Ctl(0), 0, true, 1, 0x2000, 8, 1, 0, "w")
	s2.FlagInc(s2.Ctl(0), 1, 0)
	s2.FlagWaited(s2.CPU(1), 1, 0)
	s2.Access(s2.CPU(1), 1, false, 1, 0x2000, 8, 1, 0, "r")
	if s2.Err() == nil {
		t.Fatal("NoFlag created a happens-before edge")
	}
}

// A barrier orders CPU work against CPU work, but must NOT order a
// DMA write the issuing CPU never awaited — the Ack & Barrier rule.
func TestBarrierOrdersCPUsNotInflightDMA(t *testing.T) {
	s := New(2)
	cpu0, cpu1, ctl0 := s.CPU(0), s.CPU(1), s.Ctl(0)

	// CPU-side write, then barrier: ordered.
	s.Access(cpu0, 0, true, 0, 0x3000, 8, 1, 0, "cpu write")
	tok0 := s.BarrierArrive(cpu0)
	tok1 := s.BarrierArrive(cpu1)
	s.BarrierDone(cpu0, tok0)
	s.BarrierDone(cpu1, tok1)
	s.Access(cpu1, 1, false, 0, 0x3000, 8, 1, 0, "cpu read")
	if err := s.Err(); err != nil {
		t.Fatalf("barrier-ordered accesses flagged: %v", err)
	}

	// DMA write by the controller, unacknowledged, then barrier: the
	// controller's clock never reached the episode, so a read after
	// the barrier still races.
	s.Access(ctl0, 0, true, 1, 0x4000, 8, 1, 0, "PUT receive DMA write")
	tok0 = s.BarrierArrive(cpu0)
	tok1 = s.BarrierArrive(cpu1)
	s.BarrierDone(cpu0, tok0)
	s.BarrierDone(cpu1, tok1)
	s.Access(cpu1, 1, false, 1, 0x4000, 8, 1, 0, "read after barrier")
	if s.Err() == nil {
		t.Fatal("barrier must not order an in-flight DMA write (Ack & Barrier)")
	}
}

func TestStridePrecision(t *testing.T) {
	s := New(2)
	a, b := s.Ctl(0), s.Ctl(1)
	// Interleaved combs: a writes granules 0,2,4..., b writes 1,3,5...
	// (redistribute's block<->cyclic pattern). Disjoint, so clean.
	s.Access(a, 0, true, 0, 0x5000, 8, 4, 8, "stride A")
	s.Access(b, 1, true, 0, 0x5008, 8, 4, 8, "stride B")
	if err := s.Err(); err != nil {
		t.Fatalf("disjoint interleaved strides flagged: %v", err)
	}
	// Shift b onto a's granules: must be reported.
	s.Access(b, 1, true, 0, 0x5010, 8, 2, 8, "stride B overlap")
	if s.Err() == nil {
		t.Fatal("overlapping strides not reported")
	}
}

func TestCregHandshake(t *testing.T) {
	s := New(2)
	ctl0, cpu1 := s.Ctl(0), s.CPU(1)
	s.Access(ctl0, 0, true, 0, 0x6000, 8, 1, 0, "w")
	s.CregStore(ctl0, 1, 4, 2)
	s.CregLoaded(cpu1, 1, 4, 2)
	s.Access(cpu1, 1, false, 0, 0x6000, 8, 1, 0, "r")
	if err := s.Err(); err != nil {
		t.Fatalf("creg-ordered accesses flagged: %v", err)
	}
}

func TestReportsDedupAndSites(t *testing.T) {
	s := New(2)
	a, b := s.CPU(0), s.CPU(1)
	s.Access(a, 0, true, 0, 0x7000, 8, 4, 0, "writer")
	s.Access(b, 1, false, 0, 0x7000, 8, 4, 0, "reader")
	s.Access(b, 1, false, 0, 0x7000, 8, 4, 0, "reader")
	reports := s.Reports()
	if len(reports) != 1 {
		t.Fatalf("want 1 deduplicated report, got %d", len(reports))
	}
	r := reports[0]
	if r.Prior.Op != "writer" || r.Access.Op != "reader" {
		t.Errorf("sites mislabeled: %+v", r)
	}
	if r.Lo != 0x7000 || r.Hi != 0x7018 {
		t.Errorf("conflict range [%#x,%#x] wrong", r.Lo, r.Hi)
	}
	if r.Prior.MemCell != 0 {
		t.Errorf("memory cell %d, want 0", r.Prior.MemCell)
	}
}
