// Package apsan is a happens-before race detector for the simulated
// AP1000+ — a sanitizer for the machine's PUT/GET communication, not
// for the Go program running it (go test -race covers that).
//
// The paper's interface is deliberately unsafe: PUT and GET are
// non-blocking, remote writes land whenever the network delivers
// them, and the only ordering tools a program has are flag
// increments, the acknowledge chain, communication-register p-bits,
// barrier episodes, and message receipt. A program that reads a
// buffer an in-flight PUT is still overwriting is silently wrong on
// the real machine; apsan makes it loudly wrong on the simulator.
//
// Model. Every cell contributes two logical threads: its CPU (the
// SPMD program goroutine) and its MSC+ controller (the send/receive
// DMA engine). Each thread carries a vector clock. Synchronization
// operations move clocks between threads:
//
//   - command issue: the CPU's clock rides the queued command and is
//     acquired by the controller that pops it;
//   - flag increment -> flag wait: the incrementing controller
//     releases into the flag, the waiting CPU acquires (S4.1 "flag
//     update combined with data transfer");
//   - S-net barrier: an episode joins every arriving CPU's clock and
//     every departure acquires the join (S4.4);
//   - communication-register store -> p-bit load (S4.4);
//   - message payloads: SEND/broadcast/remote-load-reply payloads
//     carry the producer's clock to whoever consumes them (S4.3).
//
// DMA accesses are stamped with the *controller's* clock, never the
// issuing CPU's. That is the load-bearing choice: it encodes that a
// barrier alone does NOT order an in-flight PUT — only a flag
// increment, acknowledgement, or receipt publishes DMA completion,
// which is exactly the Ack & Barrier motivation of S2.2.
//
// Shadow state is kept per 8-byte granule of simulated DRAM (the
// machine's traffic is float64s and page-aligned buffers, so false
// sharing below 8 bytes does not occur in practice). Communication
// registers are treated as pure synchronization, not data locations.
// Direct Go-slice access to segment backing arrays is invisible to
// the sanitizer; only simulated accesses (DMA captures/deliveries
// and the hooks library code places on its CPU-side copies) are
// checked.
//
// The package is dependency-free (plain ints and uint64s) so that
// low-level packages (msc, mem, tnet) can carry its tokens as opaque
// `any` fields without import cycles.
package apsan

import (
	"fmt"
	"sort"
	"sync"
)

// granuleBytes is the shadow-memory resolution.
const granuleBytes = 8

// maxReports bounds stored reports; further races are counted only.
const maxReports = 64

// Site describes one side of a conflicting access pair.
type Site struct {
	// Cell is the cell whose memory engine performed the access.
	Cell int
	// Tid is the logical thread (see CPU/Ctl).
	Tid int
	// Op names the user-visible operation ("PUT receive DMA", "GET
	// reply read", "RECEIVE copy", "DSM load", ...).
	Op string
	// Addr/Size give the full simulated address range of the access
	// on the cell named by MemCell.
	Addr uint64
	Size int64
	// MemCell is the cell whose DRAM was accessed (for remote writes
	// this differs from Cell).
	MemCell int
}

func (s Site) String() string {
	kind := "cpu"
	if s.Tid%2 == 1 {
		kind = "msc"
	}
	return fmt.Sprintf("cell %d (%s) %s @ cell %d [%#x,+%d)",
		s.Cell, kind, s.Op, s.MemCell, s.Addr, s.Size)
}

// Report is one detected race: two accesses to an overlapping
// simulated address range, at least one a write, with no
// happens-before edge between them.
type Report struct {
	// Prior is the access recorded earlier in shadow memory; Access
	// is the one that detected the conflict.
	Prior, Access Site
	// Lo and Hi bound the conflicting granules ([Lo, Hi+8)).
	Lo, Hi uint64
}

func (r Report) String() string {
	return fmt.Sprintf("apsan: unsynchronized conflicting accesses to cell %d memory [%#x,%#x):\n  earlier: %s\n  current: %s",
		r.Prior.MemCell, r.Lo, r.Hi+granuleBytes, r.Prior, r.Access)
}

// epoch stamps one shadow entry: thread tid at clock, on behalf of
// site.
type epoch struct {
	tid   int
	clock uint64
	site  *Site
}

// granule is the shadow state of 8 bytes of one cell's DRAM.
type granule struct {
	w      epoch   // last write (site == nil when none yet)
	rd     []epoch // reads since the last write, at most one per tid
	rdView []epoch // scratch to avoid realloc (unused slots)
}

// token is a released clock snapshot carried by commands/payloads.
type token struct{ vc []uint64 }

// episode is one all-cells barrier generation.
type episode struct {
	vc     []uint64
	joined int
}

// Sanitizer is the machine-wide detector. All methods are safe for
// concurrent use; a single mutex serializes them (sanitized runs
// trade speed for checking).
type Sanitizer struct {
	mu     sync.Mutex
	cells  int
	clocks [][]uint64 // per tid

	flags map[uint64][]uint64 // (cell, flag)  -> released clock
	cregs map[uint64][]uint64 // (cell, index) -> released clock
	bar   *episode

	shadow map[uint64]*granule

	// parked holds tokens released through ReleaseHandle, so carriers
	// that must stay pointer-free (the MSC+ command words) can refer
	// to them by a compact id instead of an interface.
	parked     map[int64]*token
	nextHandle int64

	reports    []Report
	suppressed int
	seen       map[string]bool

	// OnReport, when non-nil, is invoked (under the sanitizer lock)
	// for every recorded report; the machine uses it to raise an OS
	// interrupt on the detecting cell.
	OnReport func(Report)
}

// New builds a sanitizer for a machine of the given cell count.
func New(cells int) *Sanitizer {
	n := 2 * cells
	s := &Sanitizer{
		cells:  cells,
		clocks: make([][]uint64, n),
		flags:  make(map[uint64][]uint64),
		cregs:  make(map[uint64][]uint64),
		shadow: make(map[uint64]*granule),
		parked: make(map[int64]*token),
		seen:   make(map[string]bool),
	}
	for t := range s.clocks {
		s.clocks[t] = make([]uint64, n)
		s.clocks[t][t] = 1
	}
	return s
}

// CPU returns the logical thread id of a cell's program goroutine.
func (s *Sanitizer) CPU(cell int) int { return 2 * cell }

// Ctl returns the logical thread id of a cell's MSC+ controller.
func (s *Sanitizer) Ctl(cell int) int { return 2*cell + 1 }

func join(dst, src []uint64) {
	for i, v := range src {
		if v > dst[i] {
			dst[i] = v
		}
	}
}

// Release snapshots tid's clock into an opaque token (for a command,
// payload, or packet to carry) and advances the thread so later
// events are not covered by the snapshot.
func (s *Sanitizer) Release(tid int) any {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.releaseLocked(tid)
}

func (s *Sanitizer) releaseLocked(tid int) *token {
	vc := make([]uint64, len(s.clocks[tid]))
	copy(vc, s.clocks[tid])
	s.clocks[tid][tid]++
	return &token{vc: vc}
}

// ReleaseHandle is Release for carriers that must stay pointer-free:
// the token is parked inside the sanitizer and identified by a
// non-zero id the carrier stores as a plain integer. Keeping pointers
// out of msc.Command matters even with the sanitizer off — the field
// type alone would make every queued command GC-scannable.
func (s *Sanitizer) ReleaseHandle(tid int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextHandle++
	s.parked[s.nextHandle] = s.releaseLocked(tid)
	return s.nextHandle
}

// AcquireHandle joins the token parked under h into tid's clock and
// frees it. Handle 0 (an unsanitized producer) is a no-op.
func (s *Sanitizer) AcquireHandle(tid int, h int64) {
	if h == 0 {
		return
	}
	s.mu.Lock()
	if t := s.parked[h]; t != nil {
		join(s.clocks[tid], t.vc)
		delete(s.parked, h)
	}
	s.mu.Unlock()
}

// Acquire joins a previously released token into tid's clock. A nil
// token (unsanitized producer) is a no-op.
func (s *Sanitizer) Acquire(tid int, h any) {
	if h == nil {
		return
	}
	t, ok := h.(*token)
	if !ok {
		return
	}
	s.mu.Lock()
	join(s.clocks[tid], t.vc)
	s.mu.Unlock()
}

func flagKey(cell int, flag int32) uint64 {
	return uint64(cell)<<32 | uint64(uint32(flag))
}

// FlagInc records that tid is about to increment (cell, flag): the
// thread's clock is released into the flag. Call BEFORE the actual
// mc.Flags.Inc so a waiter can never observe the increment first.
// Flag 0 (NoFlag) is a no-op, like the hardware.
func (s *Sanitizer) FlagInc(tid, cell int, flag int32) {
	if flag == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	k := flagKey(cell, flag)
	vc := s.flags[k]
	if vc == nil {
		vc = make([]uint64, len(s.clocks))
		s.flags[k] = vc
	}
	join(vc, s.clocks[tid])
	s.clocks[tid][tid]++
}

// FlagWaited records that tid's wait on (cell, flag) completed: the
// flag's accumulated releases are acquired. Call AFTER the wait
// returns.
func (s *Sanitizer) FlagWaited(tid, cell int, flag int32) {
	if flag == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if vc := s.flags[flagKey(cell, flag)]; vc != nil {
		join(s.clocks[tid], vc)
	}
}

// CregStore records a store (with p-bit set) to communication
// register idx of cell; widthWords is 1 or 2. Call BEFORE the store.
func (s *Sanitizer) CregStore(tid, cell, idx, widthWords int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for w := 0; w < widthWords; w++ {
		k := flagKey(cell, int32(idx+w))
		vc := s.cregs[k]
		if vc == nil {
			vc = make([]uint64, len(s.clocks))
			s.cregs[k] = vc
		}
		join(vc, s.clocks[tid])
	}
	s.clocks[tid][tid]++
}

// CregLoaded records a completed p-bit load of register idx on cell.
// Call AFTER the blocking load returns.
func (s *Sanitizer) CregLoaded(tid, cell, idx, widthWords int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for w := 0; w < widthWords; w++ {
		if vc := s.cregs[flagKey(cell, int32(idx+w))]; vc != nil {
			join(s.clocks[tid], vc)
		}
	}
}

// BarrierArrive joins tid into the current S-net episode and returns
// an opaque episode token. Call BEFORE snet.Arrive. Because Arrive
// blocks until every cell joined, the token's clock is complete by
// the time any BarrierDone runs.
func (s *Sanitizer) BarrierArrive(tid int) any {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bar == nil {
		s.bar = &episode{vc: make([]uint64, len(s.clocks))}
	}
	join(s.bar.vc, s.clocks[tid])
	s.clocks[tid][tid]++
	tok := s.bar
	s.bar.joined++
	if s.bar.joined == s.cells {
		s.bar = nil // next episode starts fresh
	}
	return tok
}

// BarrierDone acquires the episode joined by BarrierArrive. Call
// AFTER snet.Arrive returns.
func (s *Sanitizer) BarrierDone(tid int, tok any) {
	ep, ok := tok.(*episode)
	if !ok {
		return
	}
	s.mu.Lock()
	join(s.clocks[tid], ep.vc)
	s.mu.Unlock()
}

func shadowKey(cell int, gaddr uint64) uint64 {
	return uint64(cell)<<40 | gaddr/granuleBytes
}

// Access checks and records one simulated memory access by tid: a
// stride pattern of count items of itemSize bytes starting at addr in
// memCell's DRAM, with skip bytes between items. op labels the
// user-visible operation for reports. write distinguishes receive-DMA
// stores from capture reads.
func (s *Sanitizer) Access(tid, cell int, write bool, memCell int, addr uint64, itemSize, count, skip int64, op string) {
	if count <= 0 || itemSize <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	vc := s.clocks[tid]
	site := &Site{Cell: cell, Tid: tid, Op: op, Addr: addr, Size: itemSize * count, MemCell: memCell}
	now := epoch{tid: tid, clock: vc[tid], site: site}

	type rng struct{ lo, hi uint64 }
	conflicts := map[*Site]*rng{}
	note := func(prior *Site, g uint64) {
		r := conflicts[prior]
		if r == nil {
			conflicts[prior] = &rng{lo: g, hi: g}
			return
		}
		if g < r.lo {
			r.lo = g
		}
		if g > r.hi {
			r.hi = g
		}
	}
	ordered := func(e epoch) bool { return vc[e.tid] >= e.clock }

	for i := int64(0); i < count; i++ {
		base := addr + uint64(i)*uint64(itemSize+skip)
		for g := base &^ (granuleBytes - 1); g < base+uint64(itemSize); g += granuleBytes {
			k := shadowKey(memCell, g)
			gr := s.shadow[k]
			if gr == nil {
				gr = &granule{}
				s.shadow[k] = gr
			}
			if write {
				if gr.w.site != nil && gr.w.tid != tid && !ordered(gr.w) {
					note(gr.w.site, g)
				}
				for _, r := range gr.rd {
					if r.tid != tid && !ordered(r) {
						note(r.site, g)
					}
				}
				gr.w = now
				gr.rd = gr.rd[:0]
			} else {
				if gr.w.site != nil && gr.w.tid != tid && !ordered(gr.w) {
					note(gr.w.site, g)
				}
				found := false
				for j := range gr.rd {
					if gr.rd[j].tid == tid {
						gr.rd[j] = now
						found = true
						break
					}
				}
				if !found {
					gr.rd = append(gr.rd, now)
				}
			}
		}
	}

	// Deterministic report order within one access.
	var priors []*Site
	for p := range conflicts {
		priors = append(priors, p)
	}
	sort.Slice(priors, func(i, j int) bool {
		a, b := conflicts[priors[i]], conflicts[priors[j]]
		return a.lo < b.lo
	})
	for _, prior := range priors {
		r := conflicts[prior]
		s.report(Report{Prior: *prior, Access: *site, Lo: r.lo, Hi: r.hi})
	}
}

// CoherenceViolation files a report for a DSM cache hit on a page that
// a remote write-through store invalidated while invalidation handling
// was disabled on the reading cell: the load observably returned stale
// bytes. This is not a happens-before race in the vector-clock sense —
// the directory protocol delivered the invalidation, the cache chose
// to ignore it — so it is reported directly rather than through the
// shadow-memory check. cell is the reader, owner the cell whose shared
// block holds the page, writer the cell whose store invalidated it.
func (s *Sanitizer) CoherenceViolation(cell, owner, writer int, addr uint64, size int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	prior := Site{
		Cell: writer, Tid: s.CPU(writer),
		Op:   "DSM write-through store (page invalidated)",
		Addr: addr, Size: size, MemCell: owner,
	}
	acc := Site{
		Cell: cell, Tid: s.CPU(cell),
		Op:   "DSM cached load of a stale page (invalidation disabled)",
		Addr: addr, Size: size, MemCell: owner,
	}
	s.report(Report{
		Prior: prior, Access: acc,
		Lo: addr &^ (granuleBytes - 1),
		Hi: (addr + uint64(size) - 1) &^ (granuleBytes - 1),
	})
}

// report dedups by access-pair identity and stores/bounds reports.
// Called with s.mu held.
func (s *Sanitizer) report(r Report) {
	key := fmt.Sprintf("%d/%s/%d|%d/%s/%d", r.Prior.Tid, r.Prior.Op, r.Prior.Addr, r.Access.Tid, r.Access.Op, r.Access.Addr)
	if s.seen[key] {
		return
	}
	s.seen[key] = true
	if len(s.reports) >= maxReports {
		s.suppressed++
		return
	}
	s.reports = append(s.reports, r)
	if s.OnReport != nil {
		s.OnReport(r)
	}
}

// Reports returns the recorded races.
func (s *Sanitizer) Reports() []Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Report, len(s.reports))
	copy(out, s.reports)
	return out
}

// Err returns nil when the run was race-free, or an error detailing
// the first report and the total count.
func (s *Sanitizer) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.reports) == 0 {
		return nil
	}
	total := len(s.reports) + s.suppressed
	return fmt.Errorf("%s\n(%d race report(s) total)", s.reports[0], total)
}
