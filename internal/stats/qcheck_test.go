package stats

import (
	"testing"

	"ap1000plus/internal/apps"
	"ap1000plus/internal/mlsim"
	"ap1000plus/internal/params"
)

func catalogPaper() []struct {
	Name  string
	Build apps.Builder
} {
	var out []struct {
		Name  string
		Build apps.Builder
	}
	for _, row := range apps.Catalog() {
		out = append(out, struct {
			Name  string
			Build apps.Builder
		}{row.Name, row.Build})
	}
	return out
}

func TestQueueModelImpactSmall(t *testing.T) {
	var e *Experiment
	if testing.Short() {
		t.Skip("paper-scale in short mode")
	}
	for _, row := range catalogPaper() {
		if row.Name == "TC no st" {
			var err error
			e, err = RunExperiment(row.Name, row.Build)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	p := params.AP1000Plus()
	p.Features.ModelQueueOverflow = true
	on, err := mlsim.Run(e.Trace, p)
	if err != nil {
		t.Fatal(err)
	}
	off := e.Plus
	ratio := float64(on.Elapsed) / float64(off.Elapsed)
	t.Logf("TC no st: spills=%d interrupts=%d maxdepth=%d elapsed ratio=%.4f",
		on.Queue.Spills, on.Queue.Interrupts, on.Queue.MaxDepth, ratio)
	if ratio > 1.01 {
		t.Errorf("queue model changed elapsed by %.2f%%", 100*(ratio-1))
	}
}
