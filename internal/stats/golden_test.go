package stats

import (
	"strings"
	"testing"

	"ap1000plus/internal/event"
	"ap1000plus/internal/mlsim"
	"ap1000plus/internal/trace"
)

// fakeExperiment builds a synthetic experiment with known elapsed
// times so the speedup columns are exact.
func fakeExperiment(app string, baseUs, plusUs, x8Us float64) *Experiment {
	mk := func(us float64) *mlsim.Result {
		t := event.Microseconds(us)
		return &mlsim.Result{
			App: app, PEs: 1,
			PE:      []mlsim.PEStats{{Exec: t, End: t}},
			Elapsed: t,
		}
	}
	return &Experiment{
		App:   app,
		Trace: trace.New(app, 1, 1),
		Base:  mk(baseUs), Plus: mk(plusUs), X8: mk(x8Us),
	}
}

// TestTablesDeterministicOrder feeds the writers experiments in a
// scrambled order and checks the rows come out in the paper's fixed
// app order, byte-identical across repeated renders.
func TestTablesDeterministicOrder(t *testing.T) {
	// Deliberately NOT the paper order, plus one unknown app.
	scrambled := []*Experiment{
		fakeExperiment("SCG", 800, 100, 160),
		fakeExperiment("EP", 800, 100, 100),
		fakeExperiment("ZZZ-custom", 500, 250, 250),
		fakeExperiment("CG", 956, 200, 280),
	}
	var t2 strings.Builder
	if err := WriteTable2(&t2, scrambled); err != nil {
		t.Fatal(err)
	}
	const wantTable2 = `Table 2: Performance simulation: compared to AP1000
App           AP1000+   AP1000x8    paper AP1000+ paper AP1000x8
EP               8.00       8.00             8.00           8.00
CG               4.78       3.41             4.78           3.42
SCG              8.00       5.00             7.96           5.17
ZZZ-custom       2.00       2.00                -              -
`
	if t2.String() != wantTable2 {
		t.Errorf("WriteTable2 mismatch:\ngot:\n%s\nwant:\n%s", t2.String(), wantTable2)
	}

	// Repeat renders must be byte-identical (no map-order leakage).
	for i := 0; i < 3; i++ {
		var again strings.Builder
		if err := WriteTable2(&again, scrambled); err != nil {
			t.Fatal(err)
		}
		if again.String() != t2.String() {
			t.Fatalf("render %d differs from first render", i)
		}
	}

	var t3 strings.Builder
	if err := WriteTable3(&t3, scrambled); err != nil {
		t.Fatal(err)
	}
	rows := appRowsIn(t3.String())
	want := []string{"EP", "CG", "SCG", "ZZZ-custom"}
	if strings.Join(rows, ",") != strings.Join(want, ",") {
		t.Errorf("WriteTable3 row order = %v, want %v", rows, want)
	}

	var f8 strings.Builder
	if err := WriteFig8(&f8, scrambled); err != nil {
		t.Fatal(err)
	}
	rows = appRowsIn(f8.String())
	want = []string{"EP", "EP", "CG", "CG", "SCG", "SCG", "ZZZ-custom", "ZZZ-custom"}
	if strings.Join(rows, ",") != strings.Join(want, ",") {
		t.Errorf("WriteFig8 row order = %v, want %v", rows, want)
	}

	// The writers must not reorder the caller's slice.
	if scrambled[0].App != "SCG" || scrambled[3].App != "CG" {
		t.Error("writer mutated the caller's experiment slice")
	}
}

// appRowsIn extracts the app name from each table row that starts
// with a known or synthetic app name.
func appRowsIn(out string) []string {
	var rows []string
	names := append(append([]string{}, AppOrder...), "ZZZ-custom")
	for _, line := range strings.Split(out, "\n") {
		for _, n := range names {
			if strings.HasPrefix(line, n+" ") || strings.HasPrefix(line, n+"\t") {
				rows = append(rows, n)
				break
			}
		}
	}
	return rows
}

func TestAppRank(t *testing.T) {
	for i, n := range AppOrder {
		if got := appRank(n); got != i {
			t.Errorf("appRank(%q) = %d, want %d", n, got, i)
		}
	}
	if got := appRank("nope"); got != len(AppOrder) {
		t.Errorf("appRank(unknown) = %d, want %d", got, len(AppOrder))
	}
}
