package stats

import (
	"bytes"
	"strings"
	"testing"
)

// TestQuickExperiments runs the reduced-size versions of every
// application end to end (functional machine -> trace -> MLSim under
// three models) and checks the qualitative Table 2 shape.
func TestQuickExperiments(t *testing.T) {
	var exps []*Experiment
	for _, row := range TestCatalog() {
		e, err := RunExperiment(row.Name, row.Build)
		if err != nil {
			t.Fatalf("%s: %v", row.Name, err)
		}
		exps = append(exps, e)
		t.Logf("%-9s AP1000+=%5.2fx AP1000x8=%5.2fx  (paper %v)",
			row.Name, e.SpeedupPlus(), e.SpeedupX8(), PaperTable2[row.Name])
	}

	byName := map[string]*Experiment{}
	for _, e := range exps {
		byName[e.App] = e
	}

	// EP: no communication -> both models exactly the CPU ratio.
	if s := byName["EP"].SpeedupPlus(); s != 8.0 {
		t.Errorf("EP AP1000+ speedup = %v, want exactly 8", s)
	}
	if s := byName["EP"].SpeedupX8(); s != 8.0 {
		t.Errorf("EP AP1000x8 speedup = %v, want exactly 8", s)
	}
	for _, e := range exps {
		// The paper's headline: the AP1000+ always beats the
		// software-messaging model with the same processor.
		if e.SpeedupPlus() < e.SpeedupX8() {
			t.Errorf("%s: AP1000+ (%v) slower than AP1000x8 (%v)", e.App, e.SpeedupPlus(), e.SpeedupX8())
		}
		// And both beat the original AP1000.
		if e.SpeedupPlus() < 1 || e.SpeedupX8() < 0.5 {
			t.Errorf("%s: implausible speedups %v / %v", e.App, e.SpeedupPlus(), e.SpeedupX8())
		}
	}
	// TC no st: the largest gap between the two models (S5.4).
	gapOf := func(name string) float64 { return byName[name].SpeedupPlus() / byName[name].SpeedupX8() }
	if gapOf("TC no st") <= gapOf("TC st") {
		t.Errorf("TC no st gap (%v) should exceed TC st gap (%v)", gapOf("TC no st"), gapOf("TC st"))
	}

	var buf bytes.Buffer
	if err := WriteTable2(&buf, exps); err != nil {
		t.Fatal(err)
	}
	if err := WriteTable3(&buf, exps); err != nil {
		t.Fatal(err)
	}
	if err := WriteFig8(&buf, exps); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 2", "Table 3", "Figure 8", "EP", "TC no st", "paper"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// TestStrideAblation reproduces the S5.4 claim on the reduced
// TOMCATV: with stride transfers the AP1000+ run is substantially
// faster than without.
func TestStrideAblation(t *testing.T) {
	cat := TestCatalog()
	var st, nost *Experiment
	for _, row := range cat {
		switch row.Name {
		case "TC st":
			e, err := RunExperiment(row.Name, row.Build)
			if err != nil {
				t.Fatal(err)
			}
			st = e
		case "TC no st":
			e, err := RunExperiment(row.Name, row.Build)
			if err != nil {
				t.Fatal(err)
			}
			nost = e
		}
	}
	if st.Plus.Elapsed >= nost.Plus.Elapsed {
		t.Errorf("stride (%v) should beat no-stride (%v) on the AP1000+",
			st.Plus.Elapsed, nost.Plus.Elapsed)
	}
}

func TestFig8Normalization(t *testing.T) {
	row := TestCatalog()[0] // EP
	e, err := RunExperiment(row.Name, row.Build)
	if err != nil {
		t.Fatal(err)
	}
	f := Fig8(e)
	if f.Plus.Total < 99.9 || f.Plus.Total > 100.1 {
		t.Errorf("AP1000+ bar total = %v%%, want 100%%", f.Plus.Total)
	}
	// EP has no communication: x8 bar equals the + bar.
	if f.X8.Total < 99.9 || f.X8.Total > 100.1 {
		t.Errorf("EP x8 bar = %v%%, want 100%%", f.X8.Total)
	}
}

func TestPaperReferencesComplete(t *testing.T) {
	for _, row := range TestCatalog() {
		if _, ok := PaperTable2[row.Name]; !ok {
			t.Errorf("missing paper Table 2 row for %s", row.Name)
		}
		if _, ok := PaperTable3[row.Name]; !ok {
			t.Errorf("missing paper Table 3 row for %s", row.Name)
		}
	}
}
