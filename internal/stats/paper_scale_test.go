package stats

import (
	"testing"

	"ap1000plus/internal/apps"
	"ap1000plus/internal/trace"
)

// TestPaperScale runs every application at the paper's problem sizes
// and checks the Table 2 relationships that define the paper's
// result. FT (128 cells, 256x256x128) takes ~15s, so the whole test
// is skipped in -short mode.
func TestPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale runs are slow; run without -short")
	}
	results := map[string]*Experiment{}
	for _, row := range apps.Catalog() {
		row := row
		t.Run(row.Name, func(t *testing.T) {
			e, err := RunExperiment(row.Name, row.Build)
			if err != nil {
				t.Fatal(err)
			}
			results[row.Name] = e
			paper := PaperTable2[row.Name]
			t.Logf("%-9s AP1000+=%5.2fx AP1000x8=%5.2fx (paper %.2f / %.2f)",
				row.Name, e.SpeedupPlus(), e.SpeedupX8(), paper[0], paper[1])
			// Hard qualitative checks per app.
			if e.SpeedupPlus() < e.SpeedupX8() {
				t.Errorf("AP1000+ must beat software messaging: %v < %v", e.SpeedupPlus(), e.SpeedupX8())
			}
			if row.Name == "EP" && (e.SpeedupPlus() != 8 || e.SpeedupX8() != 8) {
				t.Errorf("EP must hit the processor ratio exactly: %v / %v", e.SpeedupPlus(), e.SpeedupX8())
			}
		})
	}
	if t.Failed() || len(results) < 8 {
		return
	}
	// Cross-application shape of Table 2.
	if cg := results["CG"]; cg != nil {
		for name, e := range results {
			if name != "CG" && e.SpeedupPlus() < cg.SpeedupPlus() {
				t.Errorf("CG should be the worst AP1000+ case, but %s (%v) is below it (%v)",
					name, e.SpeedupPlus(), cg.SpeedupPlus())
			}
		}
	}
	if results["TC no st"].SpeedupPlus() <= results["TC st"].SpeedupPlus() {
		t.Error("no-stride TOMCATV must show a larger AP1000+ gain than stride")
	}
	if results["TC no st"].SpeedupX8() >= results["TC st"].SpeedupX8() {
		t.Error("no-stride TOMCATV must be the worst case for software messaging")
	}
	// S5.4: stride TOMCATV substantially faster on the AP1000+.
	st, nost := results["TC st"], results["TC no st"]
	gain := float64(nost.Plus.Elapsed)/float64(st.Plus.Elapsed) - 1
	t.Logf("stride ablation: stride is %.0f%% faster on the AP1000+ (paper ~50%%)", 100*gain)
	if gain < 0.2 {
		t.Errorf("stride gain = %.0f%%, want substantial (paper ~50%%)", 100*gain)
	}

	// Table 3 pinning: rows the reproduction matches (near-)exactly.
	within := func(got, want, tol float64) bool {
		if want == 0 {
			return got == 0
		}
		d := got/want - 1
		return d >= -tol && d <= tol
	}
	checkRow := func(name string, tol float64, fields ...string) {
		t.Helper()
		got := trace.Stats(results[name].Trace)
		want := PaperTable3[name]
		pairs := map[string][2]float64{
			"send": {got.Send, want.Send}, "gop": {got.Gop, want.Gop},
			"vgop": {got.VGop, want.VGop}, "sync": {got.Sync, want.Sync},
			"put": {got.Put, want.Put}, "puts": {got.PutS, want.PutS},
			"get": {got.Get, want.Get}, "gets": {got.GetS, want.GetS},
			"msg": {got.MsgSize, want.MsgSize},
		}
		for _, f := range fields {
			p := pairs[f]
			if !within(p[0], p[1], tol) {
				t.Errorf("%s Table 3 %s: measured %v vs paper %v (tol %v)", name, f, p[0], p[1], tol)
			}
		}
	}
	checkRow("EP", 0, "send", "gop", "vgop", "sync", "put", "puts", "get", "gets", "msg")
	checkRow("CG", 0.01, "send", "gop", "vgop", "sync", "put", "msg")
	checkRow("TC st", 0.001, "gop", "sync", "puts", "get", "msg")
	checkRow("TC no st", 0.001, "gop", "sync", "put", "get", "msg")
	checkRow("MatMul", 0.06, "sync", "put", "msg")
	checkRow("SCG", 0.01, "send", "gop", "sync", "put", "msg")
}
