// Package stats orchestrates the paper's experiments: it runs the
// applications on the functional machine, replays the traces through
// MLSim under the three machine models, and formats Table 2, Table 3
// and Figure 8 alongside the paper's published numbers.
package stats

import (
	"fmt"
	"io"
	"sort"

	"ap1000plus/internal/apps"
	"ap1000plus/internal/machine"
	"ap1000plus/internal/mlsim"
	"ap1000plus/internal/params"
	"ap1000plus/internal/trace"
)

// AppOrder is the paper's fixed application ordering, the row order
// of Table 2 and Table 3. All table writers sort by it so output is
// byte-identical run to run regardless of the order experiments
// completed in.
var AppOrder = []string{"EP", "CG", "FT", "SP", "TC st", "TC no st", "MatMul", "SCG"}

// appRank places an app in AppOrder; unknown apps sort after all
// known ones.
func appRank(name string) int {
	for i, n := range AppOrder {
		if n == name {
			return i
		}
	}
	return len(AppOrder)
}

// sortExperiments returns a copy of exps in the paper's app order
// (unknown apps after, alphabetically).
func sortExperiments(exps []*Experiment) []*Experiment {
	out := make([]*Experiment, len(exps))
	copy(out, exps)
	sort.SliceStable(out, func(i, j int) bool {
		ri, rj := appRank(out[i].App), appRank(out[j].App)
		if ri != rj {
			return ri < rj
		}
		return out[i].App < out[j].App
	})
	return out
}

// PaperTable2 holds the published Table 2 speedups (vs the AP1000).
var PaperTable2 = map[string][2]float64{
	"EP":       {8.00, 8.00},
	"CG":       {4.78, 3.42},
	"FT":       {7.12, 4.14},
	"SP":       {7.62, 6.05},
	"TC st":    {7.83, 6.42},
	"TC no st": {11.55, 2.20},
	"MatMul":   {8.27, 6.22},
	"SCG":      {7.96, 5.17},
}

// PaperTable3 holds the published per-PE statistics of Table 3:
// PE, SEND, Gop, VGop, Sync, PUT, PUTS, GET, GETS, MsgSize.
var PaperTable3 = map[string]trace.Table3Row{
	"EP":       {App: "EP", PEs: 64},
	"CG":       {App: "CG", PEs: 16, Send: 365.6, Gop: 810, VGop: 390, Sync: 3135, Put: 390, MsgSize: 700},
	"FT":       {App: "FT", PEs: 128, Gop: 24, Sync: 51, Put: 2048, PutS: 7680, Get: 9652, GetS: 512, MsgSize: 1638.4},
	"SP":       {App: "SP", PEs: 64, Send: 1, VGop: 1, Sync: 42, Put: 10880, Get: 10710, MsgSize: 1355.3},
	"TC st":    {App: "TC st", PEs: 16, Gop: 20, Sync: 80, PutS: 37.5, Get: 37.5, MsgSize: 2056},
	"TC no st": {App: "TC no st", PEs: 16, Gop: 20, Sync: 80, Put: 9637.5, Get: 9637.5, MsgSize: 8},
	"MatMul":   {App: "MatMul", PEs: 64, Sync: 64, Put: 64, MsgSize: 76800},
	"SCG":      {App: "SCG", PEs: 64, Send: 878.1, Gop: 893, Sync: 1, Put: 878.1, MsgSize: 1600},
}

// Experiment is one application's full simulation outcome.
type Experiment struct {
	App   string
	Trace *trace.TraceSet
	// Base, Plus, X8 are the three machine-model replays: AP1000,
	// AP1000+, and AP1000-with-SuperSPARC.
	Base, Plus, X8 *mlsim.Result
	// Metrics is the functional machine's counter snapshot, captured
	// when the run was observed (apps.Observe); nil otherwise.
	Metrics *machine.Metrics
}

// RunExperiment executes one application and replays its trace under
// all three models.
func RunExperiment(name string, build apps.Builder) (*Experiment, error) {
	in, err := build()
	if err != nil {
		return nil, err
	}
	ts, err := in.Run()
	if err != nil {
		return nil, err
	}
	e := &Experiment{App: name, Trace: ts}
	if in.Machine.Observer() != nil {
		m := in.Machine.Metrics()
		e.Metrics = &m
	}
	if e.Base, err = mlsim.Run(ts, params.AP1000()); err != nil {
		return nil, fmt.Errorf("%s on AP1000: %w", name, err)
	}
	if e.Plus, err = mlsim.Run(ts, params.AP1000Plus()); err != nil {
		return nil, fmt.Errorf("%s on AP1000+: %w", name, err)
	}
	if e.X8, err = mlsim.Run(ts, params.AP1000x8()); err != nil {
		return nil, fmt.Errorf("%s on AP1000x8: %w", name, err)
	}
	return e, nil
}

// SpeedupPlus is the Table 2 AP1000+ column: AP1000 elapsed over
// AP1000+ elapsed.
func (e *Experiment) SpeedupPlus() float64 { return e.Plus.SpeedupVs(e.Base) }

// SpeedupX8 is the Table 2 third column (8x CPU, software messages).
func (e *Experiment) SpeedupX8() float64 { return e.X8.SpeedupVs(e.Base) }

// WriteTable2 renders Table 2 for a set of experiments, with the
// paper's published values alongside.
func WriteTable2(w io.Writer, exps []*Experiment) error {
	if _, err := fmt.Fprintln(w, "Table 2: Performance simulation: compared to AP1000"); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %10s %10s   %14s %14s\n", "App", "AP1000+", "AP1000x8", "paper AP1000+", "paper AP1000x8")
	for _, e := range sortExperiments(exps) {
		paper, ok := PaperTable2[e.App]
		paperS := [2]string{"-", "-"}
		if ok {
			paperS[0] = fmt.Sprintf("%.2f", paper[0])
			paperS[1] = fmt.Sprintf("%.2f", paper[1])
		}
		if _, err := fmt.Fprintf(w, "%-10s %10.2f %10.2f   %14s %14s\n",
			e.App, e.SpeedupPlus(), e.SpeedupX8(), paperS[0], paperS[1]); err != nil {
			return err
		}
	}
	return nil
}

// WriteTable3 renders measured and published Table 3 rows.
func WriteTable3(w io.Writer, exps []*Experiment) error {
	fmt.Fprintln(w, "Table 3: Application statistics (measured, then paper)")
	fmt.Fprintln(w, trace.Table3Header)
	for _, e := range sortExperiments(exps) {
		row := trace.Stats(e.Trace)
		row.App = e.App
		fmt.Fprintln(w, row.Format())
		if paper, ok := PaperTable3[e.App]; ok {
			paper.App = "  (paper)"
			fmt.Fprintln(w, paper.Format())
		}
	}
	return nil
}

// Fig8Row is one application's Figure 8 pair of bars: per-component
// times normalized to the AP1000+ total (percent).
type Fig8Row struct {
	App string
	// Plus and X8 are the two bars, components in percent of the
	// AP1000+ total.
	Plus, X8 struct {
		Exec, RTS, Overhead, Idle, Total float64
	}
}

// Fig8 computes the normalized breakdown for one experiment.
func Fig8(e *Experiment) Fig8Row {
	row := Fig8Row{App: e.App}
	plus := e.Plus.Breakdown()
	x8 := e.X8.Breakdown()
	norm := plus.Total / 100 // percent of AP1000+ total
	if norm == 0 {
		return row
	}
	row.Plus.Exec = plus.Exec / norm
	row.Plus.RTS = plus.RTS / norm
	row.Plus.Overhead = plus.Overhead / norm
	row.Plus.Idle = plus.Idle / norm
	row.Plus.Total = plus.Total / norm
	row.X8.Exec = x8.Exec / norm
	row.X8.RTS = x8.RTS / norm
	row.X8.Overhead = x8.Overhead / norm
	row.X8.Idle = x8.Idle / norm
	row.X8.Total = x8.Total / norm
	return row
}

// WriteFig8 renders the Figure 8 comparison: a numeric table plus the
// stacked bars of the original figure (E=execution, R=run-time
// system, O=overhead, I=idle; 20 characters = 100% of the AP1000+
// total).
func WriteFig8(w io.Writer, exps []*Experiment) error {
	fmt.Fprintln(w, "Figure 8: Effect of PUT/GET hardware support")
	fmt.Fprintln(w, "(normalized to AP1000+ execution time; left bar AP1000+, right bar AP1000 with SuperSPARC)")
	fmt.Fprintf(w, "%-10s %8s %8s %8s %8s %8s\n", "App/model", "exec%", "rts%", "ovhd%", "idle%", "total%")
	type comps struct{ Exec, RTS, Overhead, Idle, Total float64 }
	bar := func(c comps) string {
		const scale = 20.0 / 100.0
		out := ""
		for _, seg := range []struct {
			ch  byte
			pct float64
		}{{'E', c.Exec}, {'R', c.RTS}, {'O', c.Overhead}, {'I', c.Idle}} {
			n := int(seg.pct*scale + 0.5)
			for i := 0; i < n && len(out) < 240; i++ {
				out += string(seg.ch)
			}
		}
		return out
	}
	for _, e := range sortExperiments(exps) {
		row := Fig8(e)
		fmt.Fprintf(w, "%-10s %8.1f %8.1f %8.1f %8.1f %8.1f |%s\n",
			e.App+" +", row.Plus.Exec, row.Plus.RTS, row.Plus.Overhead, row.Plus.Idle, row.Plus.Total,
			bar(comps(row.Plus)))
		fmt.Fprintf(w, "%-10s %8.1f %8.1f %8.1f %8.1f %8.1f |%s\n",
			e.App+" x8", row.X8.Exec, row.X8.RTS, row.X8.Overhead, row.X8.Idle, row.X8.Total,
			bar(comps(row.X8)))
	}
	return nil
}

// WriteMetrics renders the functional machine counter reports of
// observed experiments, in the paper's app order. Experiments that
// ran unobserved (Metrics == nil) are skipped.
func WriteMetrics(w io.Writer, exps []*Experiment) error {
	for _, e := range sortExperiments(exps) {
		if e.Metrics == nil {
			continue
		}
		if _, err := fmt.Fprintf(w, "%s: ", e.App); err != nil {
			return err
		}
		if err := e.Metrics.Format(w); err != nil {
			return err
		}
	}
	return nil
}

// TestCatalog returns small-scale builders for every application row,
// used by tests and quick runs; the shapes (who communicates how)
// match the paper configurations at reduced size.
func TestCatalog() []struct {
	Name  string
	Build apps.Builder
} {
	return []struct {
		Name  string
		Build apps.Builder
	}{
		{"EP", func() (*apps.Instance, error) { return apps.NewEP(apps.TestEP()) }},
		{"CG", func() (*apps.Instance, error) { return apps.NewCG(apps.TestCG()) }},
		{"FT", func() (*apps.Instance, error) { return apps.NewFT(apps.TestFT()) }},
		{"SP", func() (*apps.Instance, error) { return apps.NewSP(apps.TestSP()) }},
		{"TC st", func() (*apps.Instance, error) { return apps.NewTomcatv(apps.TestTomcatv(true)) }},
		{"TC no st", func() (*apps.Instance, error) { return apps.NewTomcatv(apps.TestTomcatv(false)) }},
		{"MatMul", func() (*apps.Instance, error) { return apps.NewMatMul(apps.TestMatMul()) }},
		{"SCG", func() (*apps.Instance, error) { return apps.NewSCG(apps.TestSCG()) }},
	}
}
