package stats

import (
	"testing"

	"ap1000plus/internal/mlsim"
	"ap1000plus/internal/params"
	"ap1000plus/internal/trace"
)

// scaleCompute returns a copy of ts with every compute duration
// multiplied by f — equivalent to regenerating the trace with a work
// model that assumes a f-times-slower base processor.
func scaleCompute(ts *trace.TraceSet, f float64) *trace.TraceSet {
	out := &trace.TraceSet{Meta: ts.Meta, PE: make([][]trace.Event, len(ts.PE))}
	for pe, evs := range ts.PE {
		cp := append([]trace.Event(nil), evs...)
		for i := range cp {
			if cp[i].Kind == trace.KindCompute {
				cp[i].Dur *= f
			}
		}
		out.PE[pe] = cp
	}
	return out
}

// TestWorkModelSensitivity checks DESIGN.md's calibration claim: the
// Table 2 orderings survive halving or doubling the assumed sustained
// MFLOPS, because the speedups are ratios between replays of the same
// trace.
func TestWorkModelSensitivity(t *testing.T) {
	catalog := TestCatalog()
	type speeds struct{ plus, x8 float64 }
	run := func(ts *trace.TraceSet) speeds {
		t.Helper()
		base, err := mlsim.Run(ts, params.AP1000())
		if err != nil {
			t.Fatal(err)
		}
		plus, err := mlsim.Run(ts, params.AP1000Plus())
		if err != nil {
			t.Fatal(err)
		}
		x8, err := mlsim.Run(ts, params.AP1000x8())
		if err != nil {
			t.Fatal(err)
		}
		return speeds{plus.SpeedupVs(base), x8.SpeedupVs(base)}
	}
	for _, row := range catalog {
		if row.Name == "EP" || row.Name == "FT" {
			// EP is trivially invariant; FT is the slowest to build.
			continue
		}
		in, err := row.Build()
		if err != nil {
			t.Fatal(err)
		}
		ts, err := in.Run()
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range []float64{0.5, 2.0} {
			orig := run(ts)
			scaled := run(scaleCompute(ts, f))
			// Invariants, not values: the hardware model always wins,
			// and both speedups move WITH the compute share (more
			// compute -> both models closer to the CPU ratio).
			if scaled.plus < scaled.x8 {
				t.Errorf("%s x%v: AP1000+ (%v) below x8 (%v)", row.Name, f, scaled.plus, scaled.x8)
			}
			if f > 1 {
				if scaled.plus < orig.plus-1e-9 && orig.plus < 8 {
					t.Errorf("%s x%v: more compute should not reduce the AP1000+ speedup toward 8 (%v -> %v)",
						row.Name, f, orig.plus, scaled.plus)
				}
				if scaled.x8 < orig.x8-1e-9 {
					t.Errorf("%s x%v: more compute reduced the x8 speedup (%v -> %v)",
						row.Name, f, orig.x8, scaled.x8)
				}
			}
		}
	}
}
