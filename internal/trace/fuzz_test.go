package trace

import (
	"bytes"
	"testing"

	"ap1000plus/internal/topology"
)

// FuzzRead feeds arbitrary bytes to the binary trace reader: it must
// either return an error or a trace that validates — never panic and
// never accept garbage silently.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	ts := New("seed", 2, 2)
	r := NewRecorder()
	r.Compute(1)
	r.Put(1, 64, 1, 1, 2, true, false)
	r.Barrier(AllGroup)
	ts.PE[0] = r.Events()
	if err := Write(&seed, ts); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	// A legacy v1 encoding of the same trace exercises the
	// backward-compat decoder path.
	f.Add(encodeV1(ts))
	f.Add([]byte("APTR"))
	f.Add([]byte{})
	// A corrupted-wire seed: the valid encoding with bits flipped
	// through the events region, the shape of damage the fault
	// injector's corrupt mode produces. The codec has no checksum, so
	// the reader may accept or reject it — but it must never panic and
	// never return a trace that fails Validate.
	for _, bit := range []int{0, 3, 7} {
		corrupted := append([]byte(nil), seed.Bytes()...)
		for i := len(corrupted) / 2; i < len(corrupted); i += 5 {
			corrupted[i] ^= 1 << ((bit + i) % 8)
		}
		f.Add(corrupted)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("Read accepted a trace that fails Validate: %v", err)
		}
	})
}

// FuzzRoundTrip: any trace the recorder can produce must survive the
// codec bit-exactly.
func FuzzRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(3))
	f.Add(int64(42), uint8(9))
	f.Fuzz(func(t *testing.T, seed int64, nEvents uint8) {
		ts := New("fuzz", 2, 2)
		x := uint64(seed)
		next := func(n int) int {
			x = x*6364136223846793005 + 1442695040888963407
			return int(x>>33) % n
		}
		for pe := 0; pe < 4; pe++ {
			r := NewRecorder()
			for i := 0; i < int(nEvents)%32; i++ {
				switch next(6) {
				case 0:
					r.Compute(float64(next(1000)) / 8)
				case 1:
					// Item counts straddle 2^31: the v2 format must
					// carry 64-bit counts without truncation.
					r.Put(topology.CellID(next(4)), int64(next(1<<16)), int64(1)<<31+int64(next(50))-25, FlagID(next(8)), FlagID(next(8)), next(2) == 0, next(2) == 0)
				case 2:
					r.Get(topology.CellID(next(4)), int64(next(1<<16)), 1+int64(next(50))*int64(1)<<28, FlagID(next(8))<<33, FlagID(next(8)), next(2) == 0)
				case 3:
					r.Send(topology.CellID(next(4)), int64(1+next(4096)), false)
				case 4:
					r.Barrier(AllGroup)
				case 5:
					r.FlagWait(FlagID(next(8)), int64(next(100)))
				}
			}
			ts.PE[pe] = r.Events()
		}
		var buf bytes.Buffer
		if err := Write(&buf, ts); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for pe := range ts.PE {
			if len(got.PE[pe]) != len(ts.PE[pe]) {
				t.Fatalf("pe %d: %d events, want %d", pe, len(got.PE[pe]), len(ts.PE[pe]))
			}
			for i := range ts.PE[pe] {
				if got.PE[pe][i] != ts.PE[pe][i] {
					t.Fatalf("pe %d event %d: %+v != %+v", pe, i, got.PE[pe][i], ts.PE[pe][i])
				}
			}
		}
	})
}
