package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"ap1000plus/internal/topology"
)

// Binary trace format:
//
//	magic "APTR" | version u16 | app string | PEs, W, H u32
//	groups u32 | per group: len u32, members []u32
//	per PE: count u32, events (fixed-size records)
//
// All integers little-endian. Strings are u16 length + bytes.
//
// Version history:
//
//	v1: 40-byte event records; Items, SendFlag, RecvFlag, and the
//	    Flag/Group word were truncated to 32 bits on the wire.
//	v2: 56-byte event records; Items, SendFlag, RecvFlag, and
//	    Flag/Group are full 64-bit fields. Write always emits v2;
//	    Read accepts both.

var magic = [4]byte{'A', 'P', 'T', 'R'}

const (
	version1 = 1
	version  = 2
)

const (
	eventSizeV1 = 1 + 1 + 1 + 1 + 4 + 8 + 8 + 4 + 4 + 4 + 4 // = 40 bytes
	eventSize   = 1 + 1 + 1 + 1 + 4 + 8 + 8 + 8 + 8 + 8 + 8 // = 56 bytes
)

func putEvent(b []byte, e *Event) {
	b[0] = byte(e.Kind)
	b[1] = byte(e.Op)
	var fl byte
	if e.Ack {
		fl |= 1
	}
	if e.RTS {
		fl |= 2
	}
	b[2] = fl
	b[3] = 0 // reserved
	binary.LittleEndian.PutUint32(b[4:], uint32(int32(e.Peer)))
	binary.LittleEndian.PutUint64(b[8:], math.Float64bits(e.Dur))
	binary.LittleEndian.PutUint64(b[16:], uint64(e.Size))
	binary.LittleEndian.PutUint64(b[24:], uint64(e.Items))
	binary.LittleEndian.PutUint64(b[32:], uint64(e.SendFlag))
	binary.LittleEndian.PutUint64(b[40:], uint64(e.RecvFlag))
	// Flag/Target/Group share the tail: FlagWait uses Flag+Target,
	// group ops use Group. Pack Flag and Group in one word and Target
	// in Size (FlagWait carries no size).
	switch e.Kind {
	case KindFlagWait:
		binary.LittleEndian.PutUint64(b[48:], uint64(e.Flag))
		binary.LittleEndian.PutUint64(b[16:], uint64(e.Target))
	default:
		binary.LittleEndian.PutUint64(b[48:], uint64(int64(e.Group)))
	}
}

func getEvent(b []byte) (Event, error) {
	var e Event
	e.Kind = Kind(b[0])
	if e.Kind >= numKinds {
		return e, fmt.Errorf("trace: bad event kind %d", b[0])
	}
	e.Op = ReduceOp(b[1])
	e.Ack = b[2]&1 != 0
	e.RTS = b[2]&2 != 0
	e.Peer = topology.CellID(int32(binary.LittleEndian.Uint32(b[4:])))
	e.Dur = math.Float64frombits(binary.LittleEndian.Uint64(b[8:]))
	e.Items = int64(binary.LittleEndian.Uint64(b[24:]))
	e.SendFlag = FlagID(binary.LittleEndian.Uint64(b[32:]))
	e.RecvFlag = FlagID(binary.LittleEndian.Uint64(b[40:]))
	switch e.Kind {
	case KindFlagWait:
		e.Flag = FlagID(binary.LittleEndian.Uint64(b[48:]))
		e.Target = int64(binary.LittleEndian.Uint64(b[16:]))
	default:
		e.Size = int64(binary.LittleEndian.Uint64(b[16:]))
		g := int64(binary.LittleEndian.Uint64(b[48:]))
		if g < math.MinInt32 || g > math.MaxInt32 {
			return e, fmt.Errorf("trace: group id %d out of range", g)
		}
		e.Group = GroupID(g)
	}
	return e, nil
}

// getEventV1 decodes the legacy 40-byte v1 record. Items and the flag
// words were written as 32-bit values; sign-extend them back.
func getEventV1(b []byte) (Event, error) {
	var e Event
	e.Kind = Kind(b[0])
	if e.Kind >= numKinds {
		return e, fmt.Errorf("trace: bad event kind %d", b[0])
	}
	e.Op = ReduceOp(b[1])
	e.Ack = b[2]&1 != 0
	e.RTS = b[2]&2 != 0
	e.Peer = topology.CellID(int32(binary.LittleEndian.Uint32(b[4:])))
	e.Dur = math.Float64frombits(binary.LittleEndian.Uint64(b[8:]))
	e.Items = int64(int32(binary.LittleEndian.Uint32(b[24:])))
	e.SendFlag = FlagID(int32(binary.LittleEndian.Uint32(b[28:])))
	e.RecvFlag = FlagID(int32(binary.LittleEndian.Uint32(b[32:])))
	switch e.Kind {
	case KindFlagWait:
		e.Flag = FlagID(int32(binary.LittleEndian.Uint32(b[36:])))
		e.Target = int64(binary.LittleEndian.Uint64(b[16:]))
	default:
		e.Size = int64(binary.LittleEndian.Uint64(b[16:]))
		e.Group = GroupID(int32(binary.LittleEndian.Uint32(b[36:])))
	}
	return e, nil
}

// Write encodes the trace set to w in the binary format.
func Write(w io.Writer, ts *TraceSet) error {
	if err := ts.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	writeU16 := func(v uint16) { binary.Write(bw, binary.LittleEndian, v) }
	writeU32 := func(v uint32) { binary.Write(bw, binary.LittleEndian, v) }
	writeU16(version)
	if len(ts.Meta.App) > math.MaxUint16 {
		return fmt.Errorf("trace: app name too long")
	}
	writeU16(uint16(len(ts.Meta.App)))
	bw.WriteString(ts.Meta.App)
	writeU32(uint32(ts.Meta.PEs))
	writeU32(uint32(ts.Meta.Width))
	writeU32(uint32(ts.Meta.Height))
	writeU32(uint32(len(ts.Meta.Groups)))
	for _, g := range ts.Meta.Groups {
		writeU32(uint32(len(g)))
		for _, m := range g {
			writeU32(uint32(int32(m)))
		}
	}
	var buf [eventSize]byte
	for _, evs := range ts.PE {
		writeU32(uint32(len(evs)))
		for i := range evs {
			putEvent(buf[:], &evs[i])
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read decodes a trace set written by Write.
func Read(r io.Reader) (*TraceSet, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m[:])
	}
	readU16 := func() (uint16, error) {
		var v uint16
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	ver, err := readU16()
	if err != nil {
		return nil, err
	}
	evSize, decode := eventSize, getEvent
	switch ver {
	case version:
	case version1:
		evSize, decode = eventSizeV1, getEventV1
	default:
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	nameLen, err := readU16()
	if err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	pes, err := readU32()
	if err != nil {
		return nil, err
	}
	w, err := readU32()
	if err != nil {
		return nil, err
	}
	h, err := readU32()
	if err != nil {
		return nil, err
	}
	const maxPEs = 1024
	if pes == 0 || pes > maxPEs || uint64(w)*uint64(h) != uint64(pes) {
		return nil, fmt.Errorf("trace: implausible geometry %dx%d=%d", w, h, pes)
	}
	ngroups, err := readU32()
	if err != nil {
		return nil, err
	}
	if ngroups == 0 || ngroups > 1<<20 {
		return nil, fmt.Errorf("trace: implausible group count %d", ngroups)
	}
	ts := &TraceSet{
		Meta: Meta{App: string(name), PEs: int(pes), Width: int(w), Height: int(h)},
		PE:   make([][]Event, pes),
	}
	for gi := uint32(0); gi < ngroups; gi++ {
		glen, err := readU32()
		if err != nil {
			return nil, err
		}
		if glen > pes {
			return nil, fmt.Errorf("trace: group %d size %d > PEs", gi, glen)
		}
		g := make([]topology.CellID, glen)
		for i := range g {
			v, err := readU32()
			if err != nil {
				return nil, err
			}
			g[i] = topology.CellID(int32(v))
		}
		ts.Meta.Groups = append(ts.Meta.Groups, g)
	}
	var buf [eventSize]byte
	for pe := uint32(0); pe < pes; pe++ {
		count, err := readU32()
		if err != nil {
			return nil, err
		}
		// Cap the preallocation: a hostile header may claim billions
		// of events; actual reads fail at EOF long before.
		prealloc := count
		if prealloc > 1<<16 {
			prealloc = 1 << 16
		}
		evs := make([]Event, 0, prealloc)
		for i := uint32(0); i < count; i++ {
			if _, err := io.ReadFull(br, buf[:evSize]); err != nil {
				return nil, fmt.Errorf("trace: pe %d event %d: %w", pe, i, err)
			}
			e, err := decode(buf[:evSize])
			if err != nil {
				return nil, fmt.Errorf("trace: pe %d event %d: %w", pe, i, err)
			}
			evs = append(evs, e)
		}
		ts.PE[pe] = evs
	}
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	return ts, nil
}

// Dump writes a human-readable text rendering of the trace, one event
// per line, prefixed by the PE number. Intended for debugging; the
// binary format is the interchange format.
func Dump(w io.Writer, ts *TraceSet, maxPerPE int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# app=%s pes=%d torus=%dx%d groups=%d events=%d\n",
		ts.Meta.App, ts.Meta.PEs, ts.Meta.Width, ts.Meta.Height, len(ts.Meta.Groups), ts.Events())
	for pe, evs := range ts.PE {
		for i, e := range evs {
			if maxPerPE > 0 && i >= maxPerPE {
				fmt.Fprintf(bw, "pe%d: ... %d more\n", pe, len(evs)-maxPerPE)
				break
			}
			fmt.Fprintf(bw, "pe%d: %s\n", pe, e)
		}
	}
	return bw.Flush()
}
