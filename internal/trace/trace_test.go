package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"ap1000plus/internal/topology"
)

func sampleTrace() *TraceSet {
	ts := New("sample", 2, 2)
	g := ts.AddGroup([]topology.CellID{0, 1})
	r := NewRecorder()
	r.Compute(10.5)
	r.Put(1, 700, 1, 1, 2, true, true)
	r.Put(2, 2048, 8, 1, 2, false, true) // stride PUT
	r.Get(3, 1600, 1, 0, 3, false)
	r.Get(1, 512, 4, 0, 3, true) // stride GET
	r.Send(1, 128, false)
	r.FlagWait(AckFlag, 2)
	r.Barrier(AllGroup)
	r.GopScalar(g, ReduceSum)
	r.GopVector(AllGroup, ReduceMax, 11200)
	ts.PE[0] = r.Events()
	r1 := NewRecorder()
	r1.Recv(0, 128, false)
	r1.Barrier(AllGroup)
	r1.GopScalar(g, ReduceSum)
	r1.GopVector(AllGroup, ReduceMax, 11200)
	ts.PE[1] = r1.Events()
	for pe := 2; pe < 4; pe++ {
		r := NewRecorder()
		r.Barrier(AllGroup)
		r.GopVector(AllGroup, ReduceMax, 11200)
		ts.PE[pe] = r.Events()
	}
	return ts
}

func TestValidateOK(t *testing.T) {
	if err := sampleTrace().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	mutations := []struct {
		name string
		f    func(*TraceSet)
	}{
		{"bad peer", func(ts *TraceSet) { ts.PE[0][1].Peer = 99 }},
		{"bad group", func(ts *TraceSet) { ts.PE[0][7].Group = 42 }},
		{"negative size", func(ts *TraceSet) { ts.PE[0][1].Size = -1 }},
		{"zero items", func(ts *TraceSet) { ts.PE[0][1].Items = 0 }},
		{"stream count", func(ts *TraceSet) { ts.PE = ts.PE[:2] }},
		{"group0 not all", func(ts *TraceSet) { ts.Meta.Groups[0] = ts.Meta.Groups[0][:1] }},
		{"empty group", func(ts *TraceSet) { ts.Meta.Groups[1] = nil }},
	}
	for _, m := range mutations {
		ts := sampleTrace()
		m.f(ts)
		if err := ts.Validate(); err == nil {
			t.Errorf("%s: Validate should fail", m.name)
		}
	}
}

func TestRecorderComputeMerges(t *testing.T) {
	r := NewRecorder()
	r.Compute(1)
	r.Compute(2)
	r.Compute(0)  // dropped
	r.Compute(-5) // dropped
	r.Put(0, 8, 1, 0, 0, false, false)
	r.Compute(4)
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %v", evs)
	}
	if evs[0].Dur != 3 || evs[2].Dur != 4 {
		t.Fatalf("merge wrong: %v", evs)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	ts := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, ts); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Meta, ts.Meta) {
		t.Fatalf("meta mismatch:\n got %+v\nwant %+v", got.Meta, ts.Meta)
	}
	for pe := range ts.PE {
		if !reflect.DeepEqual(got.PE[pe], ts.PE[pe]) {
			t.Fatalf("pe %d mismatch:\n got %+v\nwant %+v", pe, got.PE[pe], ts.PE[pe])
		}
	}
}

// Property-based round trip over randomized events.
func TestCodecRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randEvent := func() Event {
		switch rng.Intn(9) {
		case 0:
			return Event{Kind: KindCompute, Dur: float64(rng.Intn(1000)) / 4}
		case 1:
			return Event{Kind: KindPut, Peer: topology.CellID(rng.Intn(4)), Size: int64(rng.Intn(1 << 20)), Items: int32(1 + rng.Intn(100)), SendFlag: FlagID(rng.Intn(10)), RecvFlag: FlagID(rng.Intn(10)), Ack: rng.Intn(2) == 0, RTS: rng.Intn(2) == 0}
		case 2:
			return Event{Kind: KindGet, Peer: topology.CellID(rng.Intn(4)), Size: int64(rng.Intn(1 << 20)), Items: int32(1 + rng.Intn(100)), RecvFlag: FlagID(rng.Intn(10))}
		case 3:
			return Event{Kind: KindSend, Peer: topology.CellID(rng.Intn(4)), Size: int64(rng.Intn(65536))}
		case 4:
			return Event{Kind: KindRecv, Peer: topology.CellID(rng.Intn(4)), Size: int64(rng.Intn(65536))}
		case 5:
			return Event{Kind: KindBarrier}
		case 6:
			return Event{Kind: KindGopScalar, Op: ReduceOp(rng.Intn(3)), Size: 8}
		case 7:
			return Event{Kind: KindGopVector, Op: ReduceOp(rng.Intn(3)), Size: int64(rng.Intn(100000))}
		default:
			return Event{Kind: KindFlagWait, Flag: FlagID(rng.Int31n(100) - 1), Target: int64(rng.Intn(10000))}
		}
	}
	for trial := 0; trial < 25; trial++ {
		ts := New("prop", 2, 2)
		for pe := 0; pe < 4; pe++ {
			n := rng.Intn(50)
			for i := 0; i < n; i++ {
				ts.PE[pe] = append(ts.PE[pe], randEvent())
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, ts); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for pe := range ts.PE {
			if len(got.PE[pe]) != len(ts.PE[pe]) {
				t.Fatalf("trial %d pe %d: %d events, want %d", trial, pe, len(got.PE[pe]), len(ts.PE[pe]))
			}
			for i := range ts.PE[pe] {
				if got.PE[pe][i] != ts.PE[pe][i] {
					t.Fatalf("trial %d pe %d event %d:\n got %+v\nwant %+v", trial, pe, i, got.PE[pe][i], ts.PE[pe][i])
				}
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("APTR"),
		append([]byte("APTR"), 0xFF, 0xFF), // bad version
	}
	for i, c := range cases {
		if _, err := Read(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: Read should fail", i)
		}
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, 10, len(full) / 2, len(full) - 1} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncated at %d: Read should fail", cut)
		}
	}
}

func TestStatsTable3(t *testing.T) {
	ts := sampleTrace()
	row := Stats(ts)
	// 4 PEs. PE0: 1 put, 1 puts, 1 get, 1 gets, 1 send. All: 1 sync each.
	if row.Put != 0.25 || row.PutS != 0.25 || row.Get != 0.25 || row.GetS != 0.25 {
		t.Errorf("put/get stats: %+v", row)
	}
	if row.Send != 0.25 {
		t.Errorf("send = %v", row.Send)
	}
	if row.Sync != 1.0 {
		t.Errorf("sync = %v", row.Sync)
	}
	if row.Gop != 0.5 { // 2 gops over 4 PEs
		t.Errorf("gop = %v", row.Gop)
	}
	if row.VGop != 1.0 {
		t.Errorf("vgop = %v", row.VGop)
	}
	wantSize := float64(700+2048+1600+512) / 4
	if row.MsgSize != wantSize {
		t.Errorf("msg size = %v, want %v", row.MsgSize, wantSize)
	}
	if row.ComputeUs != 10.5/4 {
		t.Errorf("compute = %v", row.ComputeUs)
	}
}

func TestSizeHistogram(t *testing.T) {
	ts := sampleTrace()
	sizes, counts := SizeHistogram(ts)
	if len(sizes) != 4 {
		t.Fatalf("sizes = %v", sizes)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i-1] >= sizes[i] {
			t.Fatalf("sizes not sorted: %v", sizes)
		}
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != 4 {
		t.Fatalf("total count = %d", total)
	}
}

func TestCommBytes(t *testing.T) {
	got := CommBytes(sampleTrace())
	want := float64(700+2048+1600+512) / 4
	if got != want {
		t.Fatalf("CommBytes = %v, want %v", got, want)
	}
}

func TestEventString(t *testing.T) {
	cases := []struct {
		e    Event
		want string
	}{
		{Event{Kind: KindCompute, Dur: 1.5}, "compute 1.500us"},
		{Event{Kind: KindBarrier, Group: 2}, "barrier group=2"},
		{Event{Kind: KindGopScalar, Op: ReduceMax}, "gop group=0 op=max"},
		{Event{Kind: KindFlagWait, Flag: -1, Target: 3}, "flagwait flag=-1 target=3"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	if s := (Event{Kind: KindPut, Peer: 3, Size: 8, Items: 1, Ack: true}).String(); !strings.Contains(s, "ack") {
		t.Errorf("put string missing ack: %q", s)
	}
}

func TestDump(t *testing.T) {
	var buf bytes.Buffer
	if err := Dump(&buf, sampleTrace(), 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "app=sample") || !strings.Contains(out, "pe0:") {
		t.Errorf("dump = %q", out)
	}
	if !strings.Contains(out, "more") {
		t.Errorf("dump should truncate at 3 events per PE:\n%s", out)
	}
}

func TestWriteTable3(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTable3(&buf, []Table3Row{Stats(sampleTrace())}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sample") {
		t.Errorf("table = %q", buf.String())
	}
}

func TestKindString(t *testing.T) {
	if KindPut.String() != "put" || KindGopVector.String() != "vgop" {
		t.Error("kind names wrong")
	}
	if !strings.Contains(Kind(200).String(), "200") {
		t.Error("unknown kind should show number")
	}
}

// quick.Check: Stats never returns negative values for valid traces.
func TestStatsNonNegative(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ts := New("q", 2, 2)
		for pe := 0; pe < 4; pe++ {
			r := NewRecorder()
			for i := 0; i < rng.Intn(20); i++ {
				r.Put(topology.CellID(rng.Intn(4)), int64(rng.Intn(1000)), 1, 0, 0, false, false)
				r.Compute(rng.Float64() * 10)
			}
			ts.PE[pe] = r.Events()
		}
		row := Stats(ts)
		return row.Put >= 0 && row.MsgSize >= 0 && row.ComputeUs >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCodecWrite(b *testing.B) {
	ts := sampleTrace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, ts); err != nil {
			b.Fatal(err)
		}
	}
}
