package trace

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"ap1000plus/internal/topology"
)

func sampleTrace() *TraceSet {
	ts := New("sample", 2, 2)
	g := ts.AddGroup([]topology.CellID{0, 1})
	r := NewRecorder()
	r.Compute(10.5)
	r.Put(1, 700, 1, 1, 2, true, true)
	r.Put(2, 2048, 8, 1, 2, false, true) // stride PUT
	r.Get(3, 1600, 1, 0, 3, false)
	r.Get(1, 512, 4, 0, 3, true) // stride GET
	r.Send(1, 128, false)
	r.FlagWait(AckFlag, 2)
	r.Barrier(AllGroup)
	r.GopScalar(g, ReduceSum)
	r.GopVector(AllGroup, ReduceMax, 11200)
	ts.PE[0] = r.Events()
	r1 := NewRecorder()
	r1.Recv(0, 128, false)
	r1.Barrier(AllGroup)
	r1.GopScalar(g, ReduceSum)
	r1.GopVector(AllGroup, ReduceMax, 11200)
	ts.PE[1] = r1.Events()
	for pe := 2; pe < 4; pe++ {
		r := NewRecorder()
		r.Barrier(AllGroup)
		r.GopVector(AllGroup, ReduceMax, 11200)
		ts.PE[pe] = r.Events()
	}
	return ts
}

func TestValidateOK(t *testing.T) {
	if err := sampleTrace().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	mutations := []struct {
		name string
		f    func(*TraceSet)
	}{
		{"bad peer", func(ts *TraceSet) { ts.PE[0][1].Peer = 99 }},
		{"bad group", func(ts *TraceSet) { ts.PE[0][7].Group = 42 }},
		{"negative size", func(ts *TraceSet) { ts.PE[0][1].Size = -1 }},
		{"zero items", func(ts *TraceSet) { ts.PE[0][1].Items = 0 }},
		{"stream count", func(ts *TraceSet) { ts.PE = ts.PE[:2] }},
		{"group0 not all", func(ts *TraceSet) { ts.Meta.Groups[0] = ts.Meta.Groups[0][:1] }},
		{"empty group", func(ts *TraceSet) { ts.Meta.Groups[1] = nil }},
	}
	for _, m := range mutations {
		ts := sampleTrace()
		m.f(ts)
		if err := ts.Validate(); err == nil {
			t.Errorf("%s: Validate should fail", m.name)
		}
	}
}

func TestRecorderComputeMerges(t *testing.T) {
	r := NewRecorder()
	r.Compute(1)
	r.Compute(2)
	r.Compute(0)  // dropped
	r.Compute(-5) // dropped
	r.Put(0, 8, 1, 0, 0, false, false)
	r.Compute(4)
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %v", evs)
	}
	if evs[0].Dur != 3 || evs[2].Dur != 4 {
		t.Fatalf("merge wrong: %v", evs)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	ts := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, ts); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Meta, ts.Meta) {
		t.Fatalf("meta mismatch:\n got %+v\nwant %+v", got.Meta, ts.Meta)
	}
	for pe := range ts.PE {
		if !reflect.DeepEqual(got.PE[pe], ts.PE[pe]) {
			t.Fatalf("pe %d mismatch:\n got %+v\nwant %+v", pe, got.PE[pe], ts.PE[pe])
		}
	}
}

// Property-based round trip over randomized events.
func TestCodecRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randEvent := func() Event {
		switch rng.Intn(9) {
		case 0:
			return Event{Kind: KindCompute, Dur: float64(rng.Intn(1000)) / 4}
		case 1:
			return Event{Kind: KindPut, Peer: topology.CellID(rng.Intn(4)), Size: int64(rng.Intn(1 << 20)), Items: 1 + rng.Int63n(1<<33), SendFlag: FlagID(rng.Intn(10)), RecvFlag: FlagID(rng.Intn(10)), Ack: rng.Intn(2) == 0, RTS: rng.Intn(2) == 0}
		case 2:
			return Event{Kind: KindGet, Peer: topology.CellID(rng.Intn(4)), Size: int64(rng.Intn(1 << 20)), Items: 1 + rng.Int63n(1<<33), RecvFlag: FlagID(rng.Intn(10))}
		case 3:
			return Event{Kind: KindSend, Peer: topology.CellID(rng.Intn(4)), Size: int64(rng.Intn(65536))}
		case 4:
			return Event{Kind: KindRecv, Peer: topology.CellID(rng.Intn(4)), Size: int64(rng.Intn(65536))}
		case 5:
			return Event{Kind: KindBarrier}
		case 6:
			return Event{Kind: KindGopScalar, Op: ReduceOp(rng.Intn(3)), Size: 8}
		case 7:
			return Event{Kind: KindGopVector, Op: ReduceOp(rng.Intn(3)), Size: int64(rng.Intn(100000))}
		default:
			return Event{Kind: KindFlagWait, Flag: FlagID(rng.Int31n(100) - 1), Target: int64(rng.Intn(10000))}
		}
	}
	for trial := 0; trial < 25; trial++ {
		ts := New("prop", 2, 2)
		for pe := 0; pe < 4; pe++ {
			n := rng.Intn(50)
			for i := 0; i < n; i++ {
				ts.PE[pe] = append(ts.PE[pe], randEvent())
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, ts); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for pe := range ts.PE {
			if len(got.PE[pe]) != len(ts.PE[pe]) {
				t.Fatalf("trial %d pe %d: %d events, want %d", trial, pe, len(got.PE[pe]), len(ts.PE[pe]))
			}
			for i := range ts.PE[pe] {
				if got.PE[pe][i] != ts.PE[pe][i] {
					t.Fatalf("trial %d pe %d event %d:\n got %+v\nwant %+v", trial, pe, i, got.PE[pe][i], ts.PE[pe][i])
				}
			}
		}
	}
}

// TestCodecWideFields covers the v1→v2 wire-format fix: item counts
// and flag identifiers beyond 2^31 must round-trip bit-exactly
// (paper-size FT/MatMul redistributions exceed 32-bit item counts).
func TestCodecWideFields(t *testing.T) {
	ts := New("wide", 2, 2)
	wide := []Event{
		{Kind: KindPut, Peer: 1, Size: 1 << 40, Items: int64(1)<<31 + 7, SendFlag: FlagID(1)<<40 + 3, RecvFlag: FlagID(1)<<33 + 1},
		{Kind: KindGet, Peer: 2, Size: 4, Items: int64(1)<<62 + 11, SendFlag: -FlagID(1) << 35, RecvFlag: 2},
		{Kind: KindFlagWait, Flag: FlagID(1)<<34 + 5, Target: int64(1)<<33 + 9},
	}
	ts.PE[0] = wide
	var buf bytes.Buffer
	if err := Write(&buf, ts); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.PE[0], wide) {
		t.Fatalf("wide fields truncated:\n got %+v\nwant %+v", got.PE[0], wide)
	}
}

// encodeV1 writes a trace in the legacy 40-byte v1 record format, for
// backward-compatibility testing of the reader.
func encodeV1(ts *TraceSet) []byte {
	var buf bytes.Buffer
	buf.WriteString("APTR")
	w32 := func(v uint32) { binary.Write(&buf, binary.LittleEndian, v) }
	binary.Write(&buf, binary.LittleEndian, uint16(1)) // version
	binary.Write(&buf, binary.LittleEndian, uint16(len(ts.Meta.App)))
	buf.WriteString(ts.Meta.App)
	w32(uint32(ts.Meta.PEs))
	w32(uint32(ts.Meta.Width))
	w32(uint32(ts.Meta.Height))
	w32(uint32(len(ts.Meta.Groups)))
	for _, g := range ts.Meta.Groups {
		w32(uint32(len(g)))
		for _, m := range g {
			w32(uint32(int32(m)))
		}
	}
	var b [40]byte
	for _, evs := range ts.PE {
		w32(uint32(len(evs)))
		for i := range evs {
			e := &evs[i]
			for j := range b {
				b[j] = 0
			}
			b[0] = byte(e.Kind)
			b[1] = byte(e.Op)
			if e.Ack {
				b[2] |= 1
			}
			if e.RTS {
				b[2] |= 2
			}
			binary.LittleEndian.PutUint32(b[4:], uint32(int32(e.Peer)))
			binary.LittleEndian.PutUint64(b[8:], math.Float64bits(e.Dur))
			binary.LittleEndian.PutUint64(b[16:], uint64(e.Size))
			binary.LittleEndian.PutUint32(b[24:], uint32(e.Items))
			binary.LittleEndian.PutUint32(b[28:], uint32(e.SendFlag))
			binary.LittleEndian.PutUint32(b[32:], uint32(e.RecvFlag))
			switch e.Kind {
			case KindFlagWait:
				binary.LittleEndian.PutUint32(b[36:], uint32(e.Flag))
				binary.LittleEndian.PutUint64(b[16:], uint64(e.Target))
			default:
				binary.LittleEndian.PutUint32(b[36:], uint32(e.Group))
			}
			buf.Write(b[:])
		}
	}
	return buf.Bytes()
}

// TestReadLegacyV1 keeps the v1 reader honest: traces captured before
// the format widening must still decode exactly.
func TestReadLegacyV1(t *testing.T) {
	ts := sampleTrace()
	got, err := Read(bytes.NewReader(encodeV1(ts)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Meta, ts.Meta) {
		t.Fatalf("v1 meta mismatch:\n got %+v\nwant %+v", got.Meta, ts.Meta)
	}
	for pe := range ts.PE {
		if !reflect.DeepEqual(got.PE[pe], ts.PE[pe]) {
			t.Fatalf("v1 pe %d mismatch:\n got %+v\nwant %+v", pe, got.PE[pe], ts.PE[pe])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("APTR"),
		append([]byte("APTR"), 0xFF, 0xFF), // bad version
	}
	for i, c := range cases {
		if _, err := Read(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: Read should fail", i)
		}
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, 10, len(full) / 2, len(full) - 1} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncated at %d: Read should fail", cut)
		}
	}
}

func TestStatsTable3(t *testing.T) {
	ts := sampleTrace()
	row := Stats(ts)
	// 4 PEs. PE0: 1 put, 1 puts, 1 get, 1 gets, 1 send. All: 1 sync each.
	if row.Put != 0.25 || row.PutS != 0.25 || row.Get != 0.25 || row.GetS != 0.25 {
		t.Errorf("put/get stats: %+v", row)
	}
	if row.Send != 0.25 {
		t.Errorf("send = %v", row.Send)
	}
	if row.Sync != 1.0 {
		t.Errorf("sync = %v", row.Sync)
	}
	if row.Gop != 0.5 { // 2 gops over 4 PEs
		t.Errorf("gop = %v", row.Gop)
	}
	if row.VGop != 1.0 {
		t.Errorf("vgop = %v", row.VGop)
	}
	wantSize := float64(700+2048+1600+512) / 4
	if row.MsgSize != wantSize {
		t.Errorf("msg size = %v, want %v", row.MsgSize, wantSize)
	}
	if row.ComputeUs != 10.5/4 {
		t.Errorf("compute = %v", row.ComputeUs)
	}
}

func TestSizeHistogram(t *testing.T) {
	ts := sampleTrace()
	sizes, counts := SizeHistogram(ts)
	if len(sizes) != 4 {
		t.Fatalf("sizes = %v", sizes)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i-1] >= sizes[i] {
			t.Fatalf("sizes not sorted: %v", sizes)
		}
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != 4 {
		t.Fatalf("total count = %d", total)
	}
}

func TestCommBytes(t *testing.T) {
	got := CommBytes(sampleTrace())
	want := float64(700+2048+1600+512) / 4
	if got != want {
		t.Fatalf("CommBytes = %v, want %v", got, want)
	}
}

func TestEventString(t *testing.T) {
	cases := []struct {
		e    Event
		want string
	}{
		{Event{Kind: KindCompute, Dur: 1.5}, "compute 1.500us"},
		{Event{Kind: KindBarrier, Group: 2}, "barrier group=2"},
		{Event{Kind: KindGopScalar, Op: ReduceMax}, "gop group=0 op=max"},
		{Event{Kind: KindFlagWait, Flag: -1, Target: 3}, "flagwait flag=-1 target=3"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	if s := (Event{Kind: KindPut, Peer: 3, Size: 8, Items: 1, Ack: true}).String(); !strings.Contains(s, "ack") {
		t.Errorf("put string missing ack: %q", s)
	}
}

func TestDump(t *testing.T) {
	var buf bytes.Buffer
	if err := Dump(&buf, sampleTrace(), 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "app=sample") || !strings.Contains(out, "pe0:") {
		t.Errorf("dump = %q", out)
	}
	if !strings.Contains(out, "more") {
		t.Errorf("dump should truncate at 3 events per PE:\n%s", out)
	}
}

func TestWriteTable3(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTable3(&buf, []Table3Row{Stats(sampleTrace())}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sample") {
		t.Errorf("table = %q", buf.String())
	}
}

func TestKindString(t *testing.T) {
	if KindPut.String() != "put" || KindGopVector.String() != "vgop" {
		t.Error("kind names wrong")
	}
	if !strings.Contains(Kind(200).String(), "200") {
		t.Error("unknown kind should show number")
	}
}

// quick.Check: Stats never returns negative values for valid traces.
func TestStatsNonNegative(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ts := New("q", 2, 2)
		for pe := 0; pe < 4; pe++ {
			r := NewRecorder()
			for i := 0; i < rng.Intn(20); i++ {
				r.Put(topology.CellID(rng.Intn(4)), int64(rng.Intn(1000)), 1, 0, 0, false, false)
				r.Compute(rng.Float64() * 10)
			}
			ts.PE[pe] = r.Events()
		}
		row := Stats(ts)
		return row.Put >= 0 && row.MsgSize >= 0 && row.ComputeUs >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCodecWrite(b *testing.B) {
	ts := sampleTrace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, ts); err != nil {
			b.Fatal(err)
		}
	}
}
