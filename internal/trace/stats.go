package trace

import (
	"fmt"
	"io"
	"sort"
)

// Table3Row holds the per-PE average operation counts the paper
// reports in Table 3, plus the average PUT/GET message size in bytes
// ("without GET for acknowledge": acknowledge GETs are synthesized by
// MLSim from the Ack bit and never appear as events, so they are
// naturally excluded here, matching the paper's accounting).
type Table3Row struct {
	App  string
	PEs  int
	Send float64 // point-to-point SEND per PE
	Gop  float64 // scalar global operations per PE
	VGop float64 // vector global operations per PE
	Sync float64 // barrier synchronizations per PE
	Put  float64 // contiguous PUTs per PE
	PutS float64 // stride PUTs per PE
	Get  float64 // contiguous GETs per PE
	GetS float64 // stride GETs per PE
	// MsgSize is the average PUT/GET payload in bytes.
	MsgSize float64
	// ComputeUs is total compute per PE in base-SPARC microseconds
	// (not a Table 3 column, but needed to sanity-check balance).
	ComputeUs float64
}

// Stats computes the Table 3 row for a trace.
func Stats(ts *TraceSet) Table3Row {
	row := Table3Row{App: ts.Meta.App, PEs: ts.Meta.PEs}
	var totalPG float64 // put/get count for message-size averaging
	var totalBytes float64
	for _, evs := range ts.PE {
		for i := range evs {
			e := &evs[i]
			switch e.Kind {
			case KindCompute:
				row.ComputeUs += e.Dur
			case KindSend:
				row.Send++
			case KindRecv:
				// receives pair with sends; Table 3 counts sends only
			case KindBarrier:
				row.Sync++
			case KindGopScalar:
				row.Gop++
			case KindGopVector:
				row.VGop++
			case KindPut:
				if e.Items > 1 {
					row.PutS++
				} else {
					row.Put++
				}
				totalPG++
				totalBytes += float64(e.Size)
			case KindGet:
				if e.Items > 1 {
					row.GetS++
				} else {
					row.Get++
				}
				totalPG++
				totalBytes += float64(e.Size)
			}
		}
	}
	n := float64(ts.Meta.PEs)
	row.Send /= n
	row.Gop /= n
	row.VGop /= n
	row.Sync /= n
	row.Put /= n
	row.PutS /= n
	row.Get /= n
	row.GetS /= n
	row.ComputeUs /= n
	if totalPG > 0 {
		row.MsgSize = totalBytes / totalPG
	}
	return row
}

// Table3Header is the column header matching the paper's Table 3.
const Table3Header = "Application      PE   SEND     Gop    V Gop   Sync     PUT     PUTS    GET     GETS   Size of Msg."

// Format renders the row in the paper's Table 3 layout.
func (r Table3Row) Format() string {
	return fmt.Sprintf("%-14s %4d %8.1f %7.1f %7.1f %7.1f %8.1f %7.1f %8.1f %7.1f %10.1f",
		r.App, r.PEs, r.Send, r.Gop, r.VGop, r.Sync, r.Put, r.PutS, r.Get, r.GetS, r.MsgSize)
}

// WriteTable3 renders a set of rows as the full table.
func WriteTable3(w io.Writer, rows []Table3Row) error {
	if _, err := fmt.Fprintln(w, Table3Header); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintln(w, r.Format()); err != nil {
			return err
		}
	}
	return nil
}

// SizeHistogram returns the distribution of PUT/GET payload sizes:
// sorted unique sizes with their counts. MLSim reports "transferred
// message size" statistics; this gives the detailed shape.
func SizeHistogram(ts *TraceSet) (sizes []int64, counts []int64) {
	hist := make(map[int64]int64)
	for _, evs := range ts.PE {
		for i := range evs {
			switch evs[i].Kind {
			case KindPut, KindGet:
				hist[evs[i].Size]++
			}
		}
	}
	for s := range hist {
		sizes = append(sizes, s)
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	counts = make([]int64, len(sizes))
	for i, s := range sizes {
		counts[i] = hist[s]
	}
	return sizes, counts
}

// CommBytes reports the total PUT/GET payload bytes per PE on average.
func CommBytes(ts *TraceSet) float64 {
	var total float64
	for _, evs := range ts.PE {
		for i := range evs {
			switch evs[i].Kind {
			case KindPut, KindGet:
				total += float64(evs[i].Size)
			}
		}
	}
	return total / float64(ts.Meta.PEs)
}
