// Package trace defines the execution-trace format consumed by MLSim.
//
// The paper's methodology (S5): applications run on the real AP1000
// with probes "at entries and exits of the communication and
// synchronization library", producing per-PE event streams that MLSim
// replays under different machine parameter sets. This package is the
// Go equivalent: the functional machine's communication library calls
// a Recorder at the same points, and MLSim replays the resulting
// TraceSet.
//
// Compute durations are expressed in microseconds of AP1000 (25 MHz
// SPARC) time; MLSim scales them by each model's computation_factor.
package trace

import (
	"fmt"

	"ap1000plus/internal/topology"
)

// Kind enumerates trace event types. The names mirror Table 3's
// statistics columns (SEND, Gop, V Gop, Sync, PUT, PUTS, GET, GETS).
type Kind uint8

const (
	// KindCompute is user computation for Dur microseconds of SPARC time.
	KindCompute Kind = iota
	// KindPut is a point-to-point PUT (Items==1) or a stride PUT,
	// "PUTS" (Items>1). Size is the total payload in bytes.
	KindPut
	// KindGet is a point-to-point GET or stride GET ("GETS").
	KindGet
	// KindSend is a blocking SEND of the SEND/RECEIVE model.
	KindSend
	// KindRecv is a blocking RECEIVE matching a SEND from Peer.
	KindRecv
	// KindBarrier is a barrier synchronization over Group.
	KindBarrier
	// KindGopScalar is a global reduction of a scalar over Group.
	KindGopScalar
	// KindGopVector is a global reduction of a Size-byte vector over Group.
	KindGopVector
	// KindFlagWait blocks until local flag Flag reaches count Target.
	KindFlagWait

	numKinds
)

var kindNames = [numKinds]string{
	"compute", "put", "get", "send", "recv", "barrier", "gop", "vgop", "flagwait",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// FlagID names a synchronization flag local to one PE. Flags are the
// "normal variables specified in the user programs" (S4.1) that the
// MC increments when a transfer completes. Flag identifiers are
// memory addresses in the paper's model, so the trace format carries
// them at full 64-bit width.
type FlagID int64

const (
	// NoFlag means "do not update a flag" — the paper's address-0
	// convention.
	NoFlag FlagID = 0
	// AckFlag is the implicit acknowledge flag each PE owns (S2.2),
	// incremented by PUT acknowledgements; the Ack & Barrier model
	// waits on it before entering a barrier.
	AckFlag FlagID = -1
)

// GroupID names a cell group defined in the trace metadata. Group 0
// is always "all cells".
type GroupID int32

// AllGroup is the implicit group of every cell.
const AllGroup GroupID = 0

// ReduceOp enumerates reduction operators for global operations.
type ReduceOp uint8

const (
	ReduceSum ReduceOp = iota
	ReduceMax
	ReduceMin
)

func (op ReduceOp) String() string {
	switch op {
	case ReduceSum:
		return "sum"
	case ReduceMax:
		return "max"
	case ReduceMin:
		return "min"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Event is one trace record. Which fields are meaningful depends on
// Kind; unused fields are zero.
type Event struct {
	Kind Kind
	// Dur is compute time in microseconds of base-SPARC time (KindCompute).
	Dur float64
	// Peer is the remote PE for put/get/send/recv.
	Peer topology.CellID
	// Size is the payload size in bytes (put/get/send/recv/vgop).
	Size int64
	// Items is the stride item count; 1 for contiguous transfers.
	// Items > 1 classifies a put/get as PUTS/GETS in Table 3 terms.
	// Paper-size redistributions can exceed 2^31 elements, so the
	// count is 64-bit end to end (wire format v2).
	Items int64
	// SendFlag and RecvFlag identify the flags a put/get increments on
	// the sending and receiving side (S3.1).
	SendFlag FlagID
	RecvFlag FlagID
	// Flag and Target parameterize KindFlagWait.
	Flag   FlagID
	Target int64
	// Group selects the cell group for barrier/gop/vgop.
	Group GroupID
	// Op is the reduction operator for gop/vgop.
	Op ReduceOp
	// Ack marks a PUT that requires acknowledgement. Per S4.1 the
	// run-time system realizes this with a zero-length GET issued
	// after the PUT; MLSim models that GET, and Table 3 statistics
	// exclude it ("without GET for acknowledge").
	Ack bool
	// RTS marks operations issued by the VPP Fortran run-time system
	// (rather than directly by user C code); MLSim charges the
	// rts_op_time/rts_stride_time address-calculation costs for them.
	RTS bool
}

// String renders an event compactly for debugging and text dumps.
func (e Event) String() string {
	switch e.Kind {
	case KindCompute:
		return fmt.Sprintf("compute %.3fus", e.Dur)
	case KindPut, KindGet:
		s := fmt.Sprintf("%s peer=%d size=%d items=%d sf=%d rf=%d", e.Kind, e.Peer, e.Size, e.Items, e.SendFlag, e.RecvFlag)
		if e.Ack {
			s += " ack"
		}
		if e.RTS {
			s += " rts"
		}
		return s
	case KindSend, KindRecv:
		return fmt.Sprintf("%s peer=%d size=%d", e.Kind, e.Peer, e.Size)
	case KindBarrier:
		return fmt.Sprintf("barrier group=%d", e.Group)
	case KindGopScalar:
		return fmt.Sprintf("gop group=%d op=%s", e.Group, e.Op)
	case KindGopVector:
		return fmt.Sprintf("vgop group=%d op=%s size=%d", e.Group, e.Op, e.Size)
	case KindFlagWait:
		return fmt.Sprintf("flagwait flag=%d target=%d", e.Flag, e.Target)
	}
	return fmt.Sprintf("event(kind=%d)", e.Kind)
}

// Meta describes the machine configuration a trace was captured on.
type Meta struct {
	App    string
	PEs    int
	Width  int // torus X dimension
	Height int // torus Y dimension
	// Groups lists cell groups referenced by barrier/gop events.
	// Groups[0] must be all cells. Indexed by GroupID.
	Groups [][]topology.CellID
}

// TraceSet is a complete capture: one event stream per PE.
type TraceSet struct {
	Meta Meta
	PE   [][]Event
}

// New creates an empty TraceSet for an app on a W x H machine, with
// group 0 pre-defined as all cells.
func New(app string, w, h int) *TraceSet {
	n := w * h
	all := make([]topology.CellID, n)
	for i := range all {
		all[i] = topology.CellID(i)
	}
	return &TraceSet{
		Meta: Meta{App: app, PEs: n, Width: w, Height: h, Groups: [][]topology.CellID{all}},
		PE:   make([][]Event, n),
	}
}

// AddGroup registers a cell group and returns its GroupID.
func (ts *TraceSet) AddGroup(members []topology.CellID) GroupID {
	ts.Meta.Groups = append(ts.Meta.Groups, append([]topology.CellID(nil), members...))
	return GroupID(len(ts.Meta.Groups) - 1)
}

// Group returns the members of a group.
func (ts *TraceSet) Group(id GroupID) []topology.CellID {
	return ts.Meta.Groups[id]
}

// Events reports the total number of events across all PEs.
func (ts *TraceSet) Events() int {
	n := 0
	for _, pe := range ts.PE {
		n += len(pe)
	}
	return n
}

// Validate checks structural invariants: PE count matches metadata,
// peers and groups are in range, sizes non-negative, and group 0 is
// all cells.
func (ts *TraceSet) Validate() error {
	if ts.Meta.PEs != ts.Meta.Width*ts.Meta.Height {
		return fmt.Errorf("trace: PEs %d != %dx%d", ts.Meta.PEs, ts.Meta.Width, ts.Meta.Height)
	}
	if len(ts.PE) != ts.Meta.PEs {
		return fmt.Errorf("trace: %d streams for %d PEs", len(ts.PE), ts.Meta.PEs)
	}
	if len(ts.Meta.Groups) == 0 || len(ts.Meta.Groups[0]) != ts.Meta.PEs {
		return fmt.Errorf("trace: group 0 must contain all %d cells", ts.Meta.PEs)
	}
	for gi, g := range ts.Meta.Groups {
		if len(g) == 0 {
			return fmt.Errorf("trace: group %d empty", gi)
		}
		for _, m := range g {
			if int(m) < 0 || int(m) >= ts.Meta.PEs {
				return fmt.Errorf("trace: group %d member %d out of range", gi, m)
			}
		}
	}
	for pe, evs := range ts.PE {
		for i, e := range evs {
			if e.Kind >= numKinds {
				return fmt.Errorf("trace: pe %d event %d: bad kind %d", pe, i, e.Kind)
			}
			if e.Size < 0 || e.Dur < 0 {
				return fmt.Errorf("trace: pe %d event %d: negative size/dur", pe, i)
			}
			switch e.Kind {
			case KindPut, KindGet, KindSend, KindRecv:
				if int(e.Peer) < 0 || int(e.Peer) >= ts.Meta.PEs {
					return fmt.Errorf("trace: pe %d event %d: peer %d out of range", pe, i, e.Peer)
				}
				if (e.Kind == KindPut || e.Kind == KindGet) && e.Items < 1 {
					return fmt.Errorf("trace: pe %d event %d: items %d < 1", pe, i, e.Items)
				}
			case KindBarrier, KindGopScalar, KindGopVector:
				if int(e.Group) < 0 || int(e.Group) >= len(ts.Meta.Groups) {
					return fmt.Errorf("trace: pe %d event %d: group %d undefined", pe, i, e.Group)
				}
			}
		}
	}
	return nil
}

// Recorder appends events for one PE. Each PE goroutine owns its own
// Recorder, so no locking is needed — streams are merged by index.
type Recorder struct {
	events []Event
}

// NewRecorder returns an empty per-PE recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Events returns the recorded stream.
func (r *Recorder) Events() []Event { return r.events }

// Compute records user computation of dur microseconds (base SPARC).
// Zero and negative durations are dropped. Consecutive compute events
// are merged, which keeps traces compact when numeric kernels call
// the work model in a loop.
func (r *Recorder) Compute(dur float64) {
	if dur <= 0 {
		return
	}
	if n := len(r.events); n > 0 && r.events[n-1].Kind == KindCompute {
		r.events[n-1].Dur += dur
		return
	}
	r.events = append(r.events, Event{Kind: KindCompute, Dur: dur})
}

// Put records a PUT of size bytes to peer; items > 1 makes it a
// stride PUT.
func (r *Recorder) Put(peer topology.CellID, size, items int64, sendFlag, recvFlag FlagID, ack, rts bool) {
	r.events = append(r.events, Event{
		Kind: KindPut, Peer: peer, Size: size, Items: items,
		SendFlag: sendFlag, RecvFlag: recvFlag, Ack: ack, RTS: rts,
	})
}

// Get records a GET of size bytes from peer; items > 1 makes it a
// stride GET.
func (r *Recorder) Get(peer topology.CellID, size, items int64, sendFlag, recvFlag FlagID, rts bool) {
	r.events = append(r.events, Event{
		Kind: KindGet, Peer: peer, Size: size, Items: items,
		SendFlag: sendFlag, RecvFlag: recvFlag, RTS: rts,
	})
}

// Send records a blocking SEND.
func (r *Recorder) Send(peer topology.CellID, size int64, rts bool) {
	r.events = append(r.events, Event{Kind: KindSend, Peer: peer, Size: size, RTS: rts})
}

// Recv records a blocking RECEIVE of a message from peer.
func (r *Recorder) Recv(peer topology.CellID, size int64, rts bool) {
	r.events = append(r.events, Event{Kind: KindRecv, Peer: peer, Size: size, RTS: rts})
}

// Barrier records a barrier over group.
func (r *Recorder) Barrier(group GroupID) {
	r.events = append(r.events, Event{Kind: KindBarrier, Group: group})
}

// GopScalar records a scalar global reduction over group.
func (r *Recorder) GopScalar(group GroupID, op ReduceOp) {
	r.events = append(r.events, Event{Kind: KindGopScalar, Group: group, Op: op, Size: 8})
}

// GopVector records a size-byte vector global reduction over group.
func (r *Recorder) GopVector(group GroupID, op ReduceOp, size int64) {
	r.events = append(r.events, Event{Kind: KindGopVector, Group: group, Op: op, Size: size})
}

// FlagWait records blocking until flag reaches target.
func (r *Recorder) FlagWait(flag FlagID, target int64) {
	r.events = append(r.events, Event{Kind: KindFlagWait, Flag: flag, Target: target})
}
