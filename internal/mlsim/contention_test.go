package mlsim

import (
	"bytes"
	"strings"
	"testing"

	"ap1000plus/internal/event"
	"ap1000plus/internal/params"
	"ap1000plus/internal/trace"
)

func TestRunWithLogCollectsMessages(t *testing.T) {
	ts := synthetic("log", func(pe int, r *trace.Recorder) {
		if pe == 0 {
			r.Put(1, 512, 1, 0, 0, false, false)
			r.Put(2, 256, 1, 0, 0, true, false) // + ack round trip
			r.Get(3, 128, 1, 0, 0, false)       // request + reply
			r.Send(1, 64, false)
		}
	})
	res, log, err := RunWithLog(ts, params.AP1000Plus())
	if err != nil {
		t.Fatal(err)
	}
	// Logged: 2 data puts, ack req+reply, get req+reply, 1 send = 7.
	if len(log) != 7 {
		t.Fatalf("log entries = %d, want 7: %+v", len(log), log)
	}
	if res.Messages != 7 {
		t.Fatalf("messages = %d", res.Messages)
	}
	for _, m := range log {
		if m.Src == m.Dst {
			t.Errorf("self-message logged: %+v", m)
		}
		if m.Depart < 0 || m.Size < 0 {
			t.Errorf("bad log entry %+v", m)
		}
	}
}

func TestContentionSingleMessageNoDelay(t *testing.T) {
	ts := trace.New("one", 2, 2)
	log := []Message{{Src: 0, Dst: 3, Depart: 0, Size: 1000}}
	rep, err := AnalyzeContention(ts, params.AP1000Plus(), log)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxDelay != 0 || rep.MeanDelay != 0 {
		t.Errorf("lone message delayed: %+v", rep)
	}
	if rep.Slowdown() != 1.0 {
		t.Errorf("slowdown = %v", rep.Slowdown())
	}
	if rep.Makespan == 0 {
		t.Error("zero makespan")
	}
}

func TestContentionSerializesSharedLink(t *testing.T) {
	// Two same-time messages over the same link must serialize: the
	// second is delayed by one transmission time.
	ts := trace.New("two", 2, 2)
	log := []Message{
		{Src: 0, Dst: 1, Depart: 0, Size: 4096},
		{Src: 0, Dst: 1, Depart: 0, Size: 4096},
	}
	p := params.AP1000Plus()
	rep, err := AnalyzeContention(ts, p, log)
	if err != nil {
		t.Fatal(err)
	}
	occupy := event.Microseconds(p.NetworkPrologTime + p.NetworkDelayTime + p.PutMsgTime*4096)
	if rep.MaxDelay != occupy {
		t.Errorf("max delay = %v, want one transmission (%v)", rep.MaxDelay, occupy)
	}
	if rep.Slowdown() <= 1.0 {
		t.Errorf("slowdown = %v, want > 1", rep.Slowdown())
	}
	if len(rep.Hottest) != 1 {
		t.Fatalf("links = %d, want 1", len(rep.Hottest))
	}
	hot := rep.Hottest[0]
	if hot.Messages != 2 || hot.Bytes != 8192 || hot.Busy != 2*occupy {
		t.Errorf("hot link = %+v", hot)
	}
}

func TestContentionDisjointLinksNoDelay(t *testing.T) {
	ts := trace.New("disjoint", 2, 2)
	log := []Message{
		{Src: 0, Dst: 1, Depart: 0, Size: 4096},
		{Src: 2, Dst: 3, Depart: 0, Size: 4096},
	}
	rep, err := AnalyzeContention(ts, params.AP1000Plus(), log)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxDelay != 0 {
		t.Errorf("disjoint routes delayed: %+v", rep)
	}
}

func TestContentionDeterministic(t *testing.T) {
	ts := randomTrace(3, 4)
	_, log, err := RunWithLog(ts, params.AP1000Plus())
	if err != nil {
		t.Fatal(err)
	}
	a, err := AnalyzeContention(ts, params.AP1000Plus(), log)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AnalyzeContention(ts, params.AP1000Plus(), log)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.MeanDelay != b.MeanDelay || len(a.Hottest) != len(b.Hottest) {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

// Contention can only make things later, never earlier.
func TestContentionNeverEarly(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		ts := randomTrace(seed, 4)
		_, log, err := RunWithLog(ts, params.AP1000Plus())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := AnalyzeContention(ts, params.AP1000Plus(), log)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Makespan < rep.FreeMakespan {
			t.Fatalf("seed %d: makespan %v below contention-free %v", seed, rep.Makespan, rep.FreeMakespan)
		}
		if rep.Slowdown() < 1 {
			t.Fatalf("seed %d: slowdown %v < 1", seed, rep.Slowdown())
		}
	}
}

func TestWriteContention(t *testing.T) {
	ts := trace.New("w", 2, 2)
	log := []Message{
		{Src: 0, Dst: 1, Depart: 0, Size: 100},
		{Src: 0, Dst: 1, Depart: 0, Size: 100},
	}
	rep, err := AnalyzeContention(ts, params.AP1000Plus(), log)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteContention(&buf, rep, 5); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "slowdown") || !strings.Contains(out, "link") {
		t.Errorf("output = %q", out)
	}
}
