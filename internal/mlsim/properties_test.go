package mlsim

import (
	"math/rand"
	"testing"

	"ap1000plus/internal/params"
	"ap1000plus/internal/topology"
	"ap1000plus/internal/trace"
)

// randomTrace builds a structurally valid random trace that cannot
// deadlock: flag waits always target flags that puts increment, and
// collectives appear in identical order on every PE.
func randomTrace(seed int64, pes int) *trace.TraceSet {
	rng := rand.New(rand.NewSource(seed))
	w := 2
	h := pes / 2
	ts := trace.New("random", w, h)
	// A common collective schedule.
	collectives := rng.Intn(4)
	recorders := make([]*trace.Recorder, pes)
	counts := make([]int64, pes) // incoming flagged puts per PE
	for pe := 0; pe < pes; pe++ {
		recorders[pe] = trace.NewRecorder()
	}
	for pe := 0; pe < pes; pe++ {
		r := recorders[pe]
		for i := 0; i < rng.Intn(20); i++ {
			switch rng.Intn(4) {
			case 0:
				r.Compute(rng.Float64() * 100)
			case 1:
				dst := topology.CellID(rng.Intn(pes))
				r.Put(dst, int64(1+rng.Intn(4096)), 1, trace.NoFlag, 5, rng.Intn(2) == 0, false)
				counts[dst]++
			case 2:
				dst := topology.CellID(rng.Intn(pes))
				r.Put(dst, int64(8+rng.Intn(1024)), int64(2+rng.Intn(64)), trace.NoFlag, 5, false, true)
				counts[dst]++
			case 3:
				r.Get(topology.CellID(rng.Intn(pes)), int64(1+rng.Intn(2048)), 1, trace.NoFlag, trace.NoFlag, false)
			}
		}
	}
	for pe := 0; pe < pes; pe++ {
		// Wait for everything that was sent to us, then synchronize.
		if counts[pe] > 0 {
			recorders[pe].FlagWait(5, counts[pe])
		}
		for c := 0; c < collectives; c++ {
			recorders[pe].Barrier(trace.AllGroup)
			recorders[pe].GopScalar(trace.AllGroup, trace.ReduceSum)
		}
		ts.PE[pe] = recorders[pe].Events()
	}
	return ts
}

// TestDeterminism: replaying the same trace twice yields bit-identical
// results.
func TestDeterminism(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		ts := randomTrace(seed, 4)
		a, err := Run(ts, params.AP1000Plus())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := Run(ts, params.AP1000Plus())
		if err != nil {
			t.Fatal(err)
		}
		if a.Elapsed != b.Elapsed || a.Messages != b.Messages || a.Bytes != b.Bytes {
			t.Fatalf("seed %d: nondeterministic: %+v vs %+v", seed, a, b)
		}
		for i := range a.PE {
			if a.PE[i] != b.PE[i] {
				t.Fatalf("seed %d PE %d: %+v vs %+v", seed, i, a.PE[i], b.PE[i])
			}
		}
	}
}

// TestAccountingInvariants: for every random trace and model,
// components are non-negative, sum to the end time, and the elapsed
// time is the max end.
func TestAccountingInvariants(t *testing.T) {
	models := []*params.Params{params.AP1000(), params.AP1000Plus(), params.AP1000x8()}
	for seed := int64(0); seed < 15; seed++ {
		ts := randomTrace(seed, 4)
		for _, p := range models {
			res, err := Run(ts, p)
			if err != nil {
				t.Fatalf("seed %d model %s: %v", seed, p.Name, err)
			}
			var maxEnd int64
			for i, pe := range res.PE {
				if pe.Exec < 0 || pe.RTS < 0 || pe.Overhead < 0 || pe.Idle < 0 {
					t.Fatalf("seed %d %s PE %d: negative component %+v", seed, p.Name, i, pe)
				}
				if pe.Total() != pe.End {
					t.Fatalf("seed %d %s PE %d: total %v != end %v", seed, p.Name, i, pe.Total(), pe.End)
				}
				if int64(pe.End) > maxEnd {
					maxEnd = int64(pe.End)
				}
			}
			if int64(res.Elapsed) != maxEnd {
				t.Fatalf("seed %d %s: elapsed %v != max end %v", seed, p.Name, res.Elapsed, maxEnd)
			}
		}
	}
}

// TestSlowerModelNeverFaster: the AP1000 replay of any trace is never
// faster than the AP1000+ replay (all its parameters dominate).
func TestSlowerModelNeverFaster(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		ts := randomTrace(seed, 4)
		base, err := Run(ts, params.AP1000())
		if err != nil {
			t.Fatal(err)
		}
		plus, err := Run(ts, params.AP1000Plus())
		if err != nil {
			t.Fatal(err)
		}
		if plus.Elapsed > base.Elapsed {
			t.Fatalf("seed %d: AP1000+ (%v) slower than AP1000 (%v)", seed, plus.Elapsed, base.Elapsed)
		}
	}
}

// TestComputeLowerBound: elapsed time is at least the scaled compute
// of the busiest PE.
func TestComputeLowerBound(t *testing.T) {
	for seed := int64(20); seed < 30; seed++ {
		ts := randomTrace(seed, 4)
		for _, p := range []*params.Params{params.AP1000(), params.AP1000Plus()} {
			res, err := Run(ts, p)
			if err != nil {
				t.Fatal(err)
			}
			for pe, evs := range ts.PE {
				var compute float64
				for _, e := range evs {
					if e.Kind == trace.KindCompute {
						compute += e.Dur
					}
				}
				want := us(compute * p.ComputationFactor)
				if res.PE[pe].End < want {
					t.Fatalf("seed %d %s PE %d: end %v below compute bound %v", seed, p.Name, pe, res.PE[pe].End, want)
				}
			}
		}
	}
}

// TestMessageAccounting: every put is one message (plus two for an
// ack), every get two.
func TestMessageAccounting(t *testing.T) {
	ts := synthetic("acct", func(pe int, r *trace.Recorder) {
		if pe != 0 {
			return
		}
		r.Put(1, 100, 1, 0, 0, false, false) // 1
		r.Put(2, 100, 1, 0, 0, true, false)  // 1 + 2 (ack get + reply)
		r.Get(3, 100, 1, 0, 0, false)        // 2
	})
	res := mustRun(t, ts, params.AP1000Plus())
	if res.Messages != 6 {
		t.Fatalf("messages = %d, want 6", res.Messages)
	}
	if res.Bytes != 300 {
		t.Fatalf("bytes = %d, want 300 (acks and requests are empty)", res.Bytes)
	}
}

// TestDirectAckFeature: direct acknowledging halves the ack traffic
// and arrives no later.
func TestDirectAckFeature(t *testing.T) {
	ts := synthetic("dack", func(pe int, r *trace.Recorder) {
		if pe == 0 {
			for i := 0; i < 10; i++ {
				r.Put(1, 512, 1, 0, 0, true, false)
			}
			r.FlagWait(trace.AckFlag, 10)
		}
	})
	getAck := mustRun(t, ts, params.AP1000Plus())
	dp := params.AP1000Plus()
	dp.Features.DirectAck = true
	direct := mustRun(t, ts, dp)
	if direct.Messages >= getAck.Messages {
		t.Errorf("direct ack should reduce messages: %d vs %d", direct.Messages, getAck.Messages)
	}
	if direct.PE[0].End > getAck.PE[0].End {
		t.Errorf("direct ack should not be slower: %v vs %v", direct.PE[0].End, getAck.PE[0].End)
	}
}
