// Package mlsim is the message level simulator of S5: a trace-driven
// timing simulator that replays per-PE event streams under a machine
// parameter model (package params), "preserving the order of message
// communications and barrier synchronization between processors".
//
// Like the paper's MLSim it computes, per PE, the four components of
// Figure 8 — execution time, run-time system time, communication
// overhead (processor time spent in communication code), and idle
// time (waiting for messages, flags and barriers) — plus the traffic
// statistics of S5 (message counts, sizes, distances).
//
// The same trace replayed under params.AP1000Plus() and
// params.AP1000x8() yields Table 2's two comparison columns against
// params.AP1000().
package mlsim

import (
	"fmt"
	"math"
	"sort"

	"ap1000plus/internal/event"
	"ap1000plus/internal/fault"
	"ap1000plus/internal/msc"
	"ap1000plus/internal/obs"
	"ap1000plus/internal/params"
	"ap1000plus/internal/topology"
	"ap1000plus/internal/trace"
)

// PEStats is one processor's time breakdown.
type PEStats struct {
	// Exec is user computation (trace compute x computation_factor).
	Exec event.Time
	// RTS is VPP-Fortran run-time-system time (address calculation).
	RTS event.Time
	// Overhead is processor time spent executing communication
	// library code and interrupt handlers.
	Overhead event.Time
	// Idle is time blocked on flags, receives and barriers.
	Idle event.Time
	// End is the PE's completion timestamp.
	End event.Time
}

// Total reports Exec+RTS+Overhead+Idle (== End when the trace starts
// at zero).
func (s PEStats) Total() event.Time { return s.Exec + s.RTS + s.Overhead + s.Idle }

// Result is one simulation outcome.
type Result struct {
	App   string
	Model string
	PEs   int
	PE    []PEStats
	// Elapsed is the completion time of the slowest PE.
	Elapsed event.Time
	// Messages and Bytes count T-net traffic (including GET requests,
	// replies and acknowledge round trips).
	Messages int64
	Bytes    int64
	// MeanDistance is the average routing distance in hops.
	MeanDistance float64
	// Queue reports the queue-occupancy extension's counters
	// (all-zero unless Features.ModelQueueOverflow is set).
	Queue QueueStats
	// Fault reports the fault layer's counters and recovery time; nil
	// when the replay ran without a fault plan.
	Fault *FaultResult
}

// Breakdown reports the mean per-PE components in microseconds.
type Breakdown struct {
	Exec, RTS, Overhead, Idle, Total float64
}

// Breakdown averages the components over PEs.
func (r *Result) Breakdown() Breakdown {
	var b Breakdown
	for _, pe := range r.PE {
		b.Exec += pe.Exec.Us()
		b.RTS += pe.RTS.Us()
		b.Overhead += pe.Overhead.Us()
		b.Idle += pe.Idle.Us()
	}
	n := float64(len(r.PE))
	b.Exec /= n
	b.RTS /= n
	b.Overhead /= n
	b.Idle /= n
	b.Total = b.Exec + b.RTS + b.Overhead + b.Idle
	return b
}

// us converts a microsecond parameter to simulator time.
func us(v float64) event.Time { return event.Microseconds(v) }

// flagLog records the increment history of one flag so a waiter can
// find when the target count was reached.
type flagLog struct {
	times []event.Time // kept sorted
}

func (f *flagLog) add(at event.Time) {
	f.times = append(f.times, at)
	// Increment times arrive mostly in order; restore order lazily.
	for i := len(f.times) - 1; i > 0 && f.times[i] < f.times[i-1]; i-- {
		f.times[i], f.times[i-1] = f.times[i-1], f.times[i]
	}
}

// reachedAt reports when the count reached target, if it has.
func (f *flagLog) reachedAt(target int64) (event.Time, bool) {
	if int64(len(f.times)) < target {
		return 0, false
	}
	return f.times[target-1], true
}

// arrival is a timed message in a (src,dst) SEND channel.
type arrival struct {
	at   event.Time
	size int64
}

// collective tracks one episode of a barrier/reduction on a group.
type collective struct {
	arrivals map[int]event.Time // rank -> arrival time
}

// pe is the per-processor replay state.
type pe struct {
	id     int
	events []trace.Event
	pc     int
	now    event.Time
	stats  PEStats
	// pending interrupt-handler time to fold into the clock at the
	// next step (software message handling steals the CPU).
	pendingIntr event.Time
	// episode counters for collectives, per group.
	episode map[trace.GroupID]int
	// inBurst marks that the previous event was also a PUT/GET, so
	// the library-entry costs amortize (the run-time system issues
	// element bursts inside one call).
	inBurst bool
	done    bool
}

// Sim is a configured simulation.
type Sim struct {
	ts    *trace.TraceSet
	p     *params.Params
	torus *topology.Torus
	pes   []*pe
	// flags[pe][flag] increment history.
	flags []map[trace.FlagID]*flagLog
	// sends[src][dst] FIFO of arrivals.
	sends map[[2]int][]arrival
	// collectives[group][kind][episode].
	colls map[collKey]*collective

	messages int64
	bytes    int64
	hops     int64

	// logMessages enables collection of the per-message log used by
	// the contention analyzer.
	logMessages bool
	msgLog      []Message
	// queues carries the per-PE queue-occupancy extension state.
	queues []*queueModel
	// tl, when non-nil, collects a Perfetto timeline of the replay in
	// simulated time: one slice per executed trace event on each PE's
	// CPU track, async spans for wire/DMA activity on the MSC track.
	tl *obs.Timeline
	// finj/fres carry the fault layer (SetFault); nil without a plan.
	finj *fault.Injector
	fres *FaultResult
}

// Message is one logged network message: who sent what where, and
// when it departed the source MSC+.
type Message struct {
	Src, Dst int
	Depart   event.Time
	Size     int64
}

type collKey struct {
	group   trace.GroupID
	kind    trace.Kind
	episode int
}

// New prepares a simulation of ts under model p.
func New(ts *trace.TraceSet, p *params.Params) (*Sim, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	torus, err := topology.NewTorus(ts.Meta.Width, ts.Meta.Height)
	if err != nil {
		return nil, err
	}
	s := &Sim{
		ts: ts, p: p, torus: torus,
		sends: make(map[[2]int][]arrival),
		colls: make(map[collKey]*collective),
	}
	for id := 0; id < ts.Meta.PEs; id++ {
		s.pes = append(s.pes, &pe{
			id: id, events: ts.PE[id],
			episode: make(map[trace.GroupID]int),
		})
		s.flags = append(s.flags, make(map[trace.FlagID]*flagLog))
		s.queues = append(s.queues, &queueModel{})
	}
	return s, nil
}

// AttachTimeline directs the replay to emit Perfetto trace events
// (in simulated time) into tl. Call before run.
func (s *Sim) AttachTimeline(tl *obs.Timeline) {
	s.tl = tl
	if tl == nil {
		return
	}
	for id := 0; id < s.ts.Meta.PEs; id++ {
		tl.Process(id, fmt.Sprintf("PE %d", id))
		tl.Thread(id, obs.TidCPU, "cpu")
		tl.Thread(id, obs.TidMSC, "wire/dma")
	}
}

// Run replays the whole trace and returns the result. The replay is
// deterministic: PEs advance round-robin, each as far as its
// dependencies allow.
func Run(ts *trace.TraceSet, p *params.Params) (*Result, error) {
	s, err := New(ts, p)
	if err != nil {
		return nil, err
	}
	return s.run()
}

// RunWithTimeline replays the trace while collecting a simulated-time
// Perfetto timeline into tl.
func RunWithTimeline(ts *trace.TraceSet, p *params.Params, tl *obs.Timeline) (*Result, error) {
	s, err := New(ts, p)
	if err != nil {
		return nil, err
	}
	s.AttachTimeline(tl)
	return s.run()
}

// Run replays the configured simulation (after optional AttachTimeline
// / SetFault) and returns the result. Call once.
func (s *Sim) Run() (*Result, error) { return s.run() }

func (s *Sim) run() (*Result, error) {
	for {
		progressed := false
		for _, pe := range s.pes {
			if s.advance(pe) {
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	res := &Result{
		App: s.ts.Meta.App, Model: s.p.Name, PEs: s.ts.Meta.PEs,
		Messages: s.messages, Bytes: s.bytes,
	}
	if s.messages > 0 {
		res.MeanDistance = float64(s.hops) / float64(s.messages)
	}
	for i, pe := range s.pes {
		if !pe.done {
			return nil, fmt.Errorf("mlsim: PE %d deadlocked at event %d/%d (%v)",
				pe.id, pe.pc, len(pe.events), pe.events[pe.pc])
		}
		pe.stats.End = pe.now
		res.PE = append(res.PE, pe.stats)
		if pe.now > res.Elapsed {
			res.Elapsed = pe.now
		}
		qs := s.queues[i].stats()
		res.Queue.Spills += qs.Spills
		res.Queue.Interrupts += qs.Interrupts
		if qs.MaxDepth > res.Queue.MaxDepth {
			res.Queue.MaxDepth = qs.MaxDepth
		}
	}
	if s.fres != nil {
		s.fres.Stats = s.finj.Stats()
		res.Fault = s.fres
	}
	return res, nil
}

// advance executes events for one PE until it blocks or finishes,
// reporting whether any event was consumed.
func (s *Sim) advance(pe *pe) bool {
	progressed := false
	for pe.pc < len(pe.events) {
		if !s.step(pe, &pe.events[pe.pc]) {
			break
		}
		pe.pc++
		progressed = true
	}
	if pe.pc == len(pe.events) && !pe.done {
		pe.done = true
		progressed = true
	}
	return progressed
}

// applyIntr folds accumulated interrupt-handler time into the clock.
func (pe *pe) applyIntr() {
	if pe.pendingIntr > 0 {
		pe.now += pe.pendingIntr
		pe.stats.Overhead += pe.pendingIntr
		pe.pendingIntr = 0
	}
}

// charge advances the PE clock by a cost in the given bucket.
func (pe *pe) charge(bucket *event.Time, d event.Time) {
	pe.now += d
	*bucket += d
}

// block parks the PE until at (idle time).
func (pe *pe) idleUntil(at event.Time) {
	if at > pe.now {
		pe.stats.Idle += at - pe.now
		pe.now = at
	}
}

// step tries to execute one event; false means blocked. With a
// timeline attached it wraps the execution in a CPU-track slice.
func (s *Sim) step(pe *pe, e *trace.Event) bool {
	if s.tl == nil {
		return s.stepExec(pe, e)
	}
	t0 := pe.now
	intr := pe.pendingIntr
	ok := s.stepExec(pe, e)
	if ok && pe.now > t0 {
		// pe.now only moves forward, and only this step call moves it,
		// so the per-PE CPU slices are sequential and nest trivially.
		cat, name := sliceKind(e)
		s.tl.Slice(pe.id, obs.TidCPU, cat, name, t0.Us(), (pe.now - t0).Us())
		if intr > 0 && pe.pendingIntr < intr {
			// applyIntr folded the pending handler time at the start of
			// this event's span; show it as a nested sub-slice.
			s.tl.Slice(pe.id, obs.TidCPU, "intr", "intr-handler", t0.Us(), intr.Us())
		}
	}
	return ok
}

// sliceKind maps a trace event to its timeline category and label.
func sliceKind(e *trace.Event) (cat, name string) {
	switch e.Kind {
	case trace.KindCompute:
		return "compute", "compute"
	case trace.KindPut:
		if e.Items > 1 {
			return "issue", "puts"
		}
		return "issue", "put"
	case trace.KindGet:
		if e.Items > 1 {
			return "issue", "gets"
		}
		return "issue", "get"
	case trace.KindSend:
		return "issue", "send"
	case trace.KindRecv:
		return "stall", "recv"
	case trace.KindFlagWait:
		return "stall", "flag-wait"
	case trace.KindBarrier:
		return "stall", "barrier"
	case trace.KindGopScalar:
		return "stall", "gop"
	case trace.KindGopVector:
		return "stall", "vgop"
	}
	return "event", e.Kind.String()
}

// stepExec executes one event; false means blocked.
func (s *Sim) stepExec(pe *pe, e *trace.Event) bool {
	switch e.Kind {
	case trace.KindCompute:
		pe.applyIntr()
		pe.inBurst = false
		pe.charge(&pe.stats.Exec, us(e.Dur*s.p.ComputationFactor))
		return true
	case trace.KindPut:
		pe.applyIntr()
		s.doPut(pe, e)
		pe.inBurst = true
		return true
	case trace.KindGet:
		pe.applyIntr()
		s.doGet(pe, e)
		pe.inBurst = true
		return true
	case trace.KindSend:
		pe.applyIntr()
		pe.inBurst = false
		s.doSend(pe, e)
		return true
	case trace.KindRecv:
		if ok := s.doRecv(pe, e); !ok {
			return false
		}
		pe.inBurst = false
		return true
	case trace.KindFlagWait:
		if ok := s.doFlagWait(pe, e); !ok {
			return false
		}
		pe.inBurst = false
		return true
	case trace.KindBarrier, trace.KindGopScalar, trace.KindGopVector:
		if ok := s.doCollective(pe, e); !ok {
			return false
		}
		pe.inBurst = false
		return true
	}
	// Unknown events are ignored (forward compatibility).
	return true
}

// rtsCharge applies the run-time system's address-calculation cost
// for RTS-attributed operations.
func (s *Sim) rtsCharge(pe *pe, e *trace.Event) {
	if !e.RTS {
		return
	}
	cost := s.p.RtsOpTime
	if e.Items > 1 {
		cost += s.p.RtsStrideTime
	}
	pe.charge(&pe.stats.RTS, us(cost))
}

// sendOverhead is the CPU time to issue one data transfer of size
// bytes (the S5.1 send-overhead formula for software handling; only
// prolog+enqueue for the MSC+). In a burst — consecutive PUT/GETs
// issued by one library call, as the run-time system's element loops
// do — the call entry/exit costs amortize onto the first operation.
func (s *Sim) sendOverhead(size int64, amortized bool) event.Time {
	p := s.p
	if p.Features.HardwareMessageHandling {
		if amortized {
			return us(p.PutEnqueueTime)
		}
		return us(p.PutPrologTime + p.PutEnqueueTime)
	}
	perOp := p.PutEnqueueTime + p.PutMsgPostTime*float64(size) + p.PutDmaSetTime
	if amortized {
		return us(perOp)
	}
	return us(p.PutPrologTime + perOp + p.PutEpilogTime +
		p.SendCompleteTime + p.SendCompleteFlagTime)
}

// recvHandling returns (latency, cpu): the arrival-to-flag latency at
// the receiver and the CPU time the receiver loses. For the MSC+ the
// CPU loss is zero.
func (s *Sim) recvHandling(size int64) (latency, cpu event.Time) {
	p := s.p
	if p.Features.HardwareMessageHandling {
		return us(p.RecvDmaSetTime + p.RecvCompleteFlagTime), 0
	}
	c := us(p.IntrRtcTime + p.RecvMsgFlushTime*float64(size) + p.RecvDmaSetTime +
		p.RecvCompleteTime + p.RecvCompleteFlagTime)
	return c, c
}

// wireTime is the network traversal time for size bytes over dist
// hops (Figure 7 items 15-18).
func (s *Sim) wireTime(size int64, dist int) event.Time {
	p := s.p
	return us(p.NetworkPrologTime + p.NetworkDelayTime*float64(dist) +
		p.PutMsgTime*float64(size) + p.NetworkEpilogTime)
}

// dmaLaunch is the hardware-pipeline delay between command issue and
// the first byte on the wire.
func (s *Sim) dmaLaunch() event.Time { return us(s.p.PutDmaSetTime) }

// chargeQueue runs the queue-occupancy extension for one outgoing
// command of size bytes issued now by pe.
func (s *Sim) chargeQueue(pe *pe, size int64) {
	if !s.p.Features.ModelQueueOverflow {
		return
	}
	occupy := s.dmaLaunch() + us(s.p.PutMsgTime*float64(size))
	intr := us(s.p.IntrRtcTime + s.p.RecvDmaSetTime)
	if charge := s.queues[pe.id].push(pe.now, occupy, intr); charge > 0 {
		if s.tl != nil {
			s.tl.Instant(pe.id, obs.TidMSC, "interrupt", "queue-refill", pe.now.Us())
		}
		pe.charge(&pe.stats.Overhead, charge)
	}
}

// account records one network message.
func (s *Sim) account(src, dst int, size int64) int {
	dist := s.torus.Distance(topology.CellID(src), topology.CellID(dst))
	s.messages++
	s.bytes += size
	s.hops += int64(dist)
	return dist
}

// logMessage appends to the message log when enabled. depart is the
// time the message enters the network.
func (s *Sim) logMessage(src, dst int, depart event.Time, size int64) {
	if s.logMessages && src != dst {
		s.msgLog = append(s.msgLog, Message{Src: src, Dst: dst, Depart: depart, Size: size})
	}
}

// RunWithLog replays the trace and additionally returns the network
// message log, for contention analysis.
func RunWithLog(ts *trace.TraceSet, p *params.Params) (*Result, []Message, error) {
	s, err := New(ts, p)
	if err != nil {
		return nil, nil, err
	}
	s.logMessages = true
	res, err := s.run()
	if err != nil {
		return nil, nil, err
	}
	return res, s.msgLog, nil
}

// incFlag records a flag increment at the given time.
func (s *Sim) incFlag(peID int, flag trace.FlagID, at event.Time) {
	if flag == trace.NoFlag {
		return
	}
	fl := s.flags[peID][flag]
	if fl == nil {
		fl = &flagLog{}
		s.flags[peID][flag] = fl
	}
	fl.add(at)
}

// stridePackCost is the software gather/scatter cost of a strided
// transfer on a machine without stride DMA: the library packs the
// items into a contiguous buffer before sending (and unpacks after
// receiving), so one message still crosses the wire but the CPU pays
// a per-byte copy (S3.1: stride "can be done efficiently by repeating
// one-dimensional stride data transfer, as long as the overhead ...
// is very small" — on the AP1000 it is not).
func (s *Sim) stridePackCost(e *trace.Event) event.Time {
	if e.Items <= 1 || s.p.Features.HardwareStride {
		return 0
	}
	return us(s.p.StridePackTime * float64(e.Size))
}

// doPut issues a PUT (possibly strided, possibly acknowledged).
func (s *Sim) doPut(pe *pe, e *trace.Event) {
	s.rtsCharge(pe, e)
	dst := int(e.Peer)
	// Software stride: pack before sending, unpack at the receiver.
	pack := s.stridePackCost(e)
	pe.charge(&pe.stats.Overhead, pack)
	pe.charge(&pe.stats.Overhead, s.sendOverhead(e.Size, pe.inBurst))
	s.chargeQueue(pe, e.Size)
	dist := s.account(pe.id, dst, e.Size)
	depart := pe.now + s.dmaLaunch()
	s.logMessage(pe.id, dst, depart, e.Size)
	arrive := depart + s.wireTime(e.Size, dist) + s.wireFault(pe.id, dst, int(msc.OpPut))
	if s.tl != nil {
		s.tl.Async(pe.id, obs.TidMSC, "wire", "put-wire", depart.Us(), arrive.Us())
	}
	lat, cpu := s.recvHandling(e.Size)
	s.pes[dst].pendingIntr += cpu + pack
	ready := arrive + lat + pack
	// Send flag: the source area is reusable once the send DMA has
	// read it.
	s.incFlag(pe.id, e.SendFlag, depart+us(s.p.PutMsgTime*float64(e.Size)))
	s.incFlag(dst, e.RecvFlag, ready)
	lastArrive := ready
	if e.Ack {
		dist := s.torus.Distance(topology.CellID(pe.id), topology.CellID(dst))
		if s.p.Features.DirectAck {
			// Ablation: the rejected direct-acknowledge design. The
			// receiving MSC+ replies when the receive DMA completes;
			// no GET request leg and no issue cost at the sender,
			// but extra hardware everywhere (S4.1).
			s.account(dst, pe.id, 0)
			s.logMessage(dst, pe.id, lastArrive+us(s.p.PutDmaSetTime), 0)
			ackArrive := lastArrive + us(s.p.PutDmaSetTime) + s.wireTime(0, dist)
			if s.tl != nil {
				s.tl.Async(pe.id, obs.TidMSC, "wire", "direct-ack", lastArrive.Us(), ackArrive.Us())
			}
			s.incFlag(pe.id, trace.AckFlag, ackArrive+us(s.p.RecvCompleteFlagTime))
			return
		}
		// The S4.1 acknowledgement: a zero-length GET rides behind
		// the PUT in the same library call; its reply bumps the
		// requester's AckFlag. Zero-length acknowledge traffic is
		// turned around by the message controller on both machine
		// generations (the AP1000's MSC also generated acknowledge
		// packets without processor help), so only the issue cost
		// hits the CPU.
		pe.charge(&pe.stats.Overhead, s.sendOverhead(0, true))
		s.account(pe.id, dst, 0)
		reqArrive := pe.now + s.dmaLaunch() + s.wireTime(0, dist)
		if reqArrive < lastArrive {
			reqArrive = lastArrive // in-order channel: ack follows data
		}
		s.logMessage(pe.id, dst, pe.now+s.dmaLaunch(), 0)
		s.account(dst, pe.id, 0)
		s.logMessage(dst, pe.id, reqArrive, 0)
		turn := us(s.p.RecvDmaSetTime + s.p.PutDmaSetTime)
		ackArrive := reqArrive + turn + s.wireTime(0, dist)
		if s.tl != nil {
			s.tl.Async(pe.id, obs.TidMSC, "wire", "ack-get", (pe.now + s.dmaLaunch()).Us(), ackArrive.Us())
		}
		s.incFlag(pe.id, trace.AckFlag, ackArrive+us(s.p.RecvCompleteFlagTime))
	}
}

// getServeCost returns (latency, remoteCPU) for turning a GET request
// into a reply at the data holder: hardware queues it on the MSC+;
// software takes an interrupt and re-sends.
func (s *Sim) getServeCost(size int64) (latency, remoteCPU event.Time) {
	p := s.p
	if p.Features.HardwareMessageHandling {
		return us(p.RecvDmaSetTime + p.PutDmaSetTime + p.PutMsgTime*float64(size)), 0
	}
	c := us(p.IntrRtcTime+p.RecvDmaSetTime) +
		s.sendOverhead(size, true)
	return c, c
}

// doGet issues a GET (request + remote reply + local delivery).
func (s *Sim) doGet(pe *pe, e *trace.Event) {
	s.rtsCharge(pe, e)
	dst := int(e.Peer)
	pack := s.stridePackCost(e)
	// Request: a small command packet.
	pe.charge(&pe.stats.Overhead, s.sendOverhead(0, pe.inBurst))
	s.chargeQueue(pe, 0)
	dist := s.account(pe.id, dst, 0)
	reqArrive := pe.now + s.dmaLaunch() + s.wireTime(0, dist) + s.wireFault(pe.id, dst, int(msc.OpGet))
	s.logMessage(pe.id, dst, pe.now+s.dmaLaunch(), 0)
	replyDelay, remoteCPU := s.getServeCost(e.Size)
	s.pes[dst].pendingIntr += remoteCPU + pack
	s.account(dst, pe.id, e.Size)
	s.logMessage(dst, pe.id, reqArrive+replyDelay+pack, e.Size)
	replyArrive := reqArrive + replyDelay + pack + s.wireTime(e.Size, dist) + s.wireFault(dst, pe.id, int(msc.OpGetReply))
	if s.tl != nil {
		s.tl.Async(pe.id, obs.TidMSC, "wire", "get-req", (pe.now + s.dmaLaunch()).Us(), reqArrive.Us())
		s.tl.Async(pe.id, obs.TidMSC, "wire", "get-reply", (reqArrive + replyDelay + pack).Us(), replyArrive.Us())
	}
	lat, cpu := s.recvHandling(e.Size)
	pe.pendingIntr += cpu + pack
	s.incFlag(dst, e.SendFlag, reqArrive+replyDelay+pack)
	s.incFlag(pe.id, e.RecvFlag, replyArrive+lat+pack)
}

// doSend transmits a SEND-model message (blocking in the library).
func (s *Sim) doSend(pe *pe, e *trace.Event) {
	s.rtsCharge(pe, e)
	pe.charge(&pe.stats.Overhead, s.sendOverhead(e.Size, false))
	s.chargeQueue(pe, e.Size)
	dist := s.account(pe.id, int(e.Peer), e.Size)
	depart := pe.now + s.dmaLaunch()
	s.logMessage(pe.id, int(e.Peer), depart, e.Size)
	// SEND blocks until the data has left the source buffer.
	wire := s.wireTime(e.Size, dist) + s.wireFault(pe.id, int(e.Peer), int(msc.OpSend))
	pe.idleUntil(depart + us(s.p.PutMsgTime*float64(e.Size)))
	arrive := depart + wire
	if s.tl != nil {
		s.tl.Async(pe.id, obs.TidMSC, "wire", "send-wire", depart.Us(), arrive.Us())
	}
	lat, cpu := s.recvHandling(e.Size)
	s.pes[int(e.Peer)].pendingIntr += cpu
	key := [2]int{pe.id, int(e.Peer)}
	s.sends[key] = append(s.sends[key], arrival{at: arrive + lat, size: e.Size})
}

// doRecv matches the oldest SEND from the peer; blocked until one
// exists.
func (s *Sim) doRecv(pe *pe, e *trace.Event) bool {
	key := [2]int{int(e.Peer), pe.id}
	q := s.sends[key]
	if len(q) == 0 {
		return false
	}
	msg := q[0]
	s.sends[key] = q[1:]
	pe.applyIntr()
	pe.charge(&pe.stats.Overhead, us(s.p.RecvSearchTime))
	pe.idleUntil(msg.at)
	pe.charge(&pe.stats.Overhead, us(s.p.RecvCopyTime*float64(msg.size)))
	return true
}

// doFlagWait blocks until the local flag reached the target.
func (s *Sim) doFlagWait(pe *pe, e *trace.Event) bool {
	fl := s.flags[pe.id][e.Flag]
	if fl == nil {
		return false
	}
	at, ok := fl.reachedAt(e.Target)
	if !ok {
		return false
	}
	pe.applyIntr()
	pe.charge(&pe.stats.Overhead, us(s.p.FlagCheckPrologTime))
	pe.idleUntil(at)
	pe.charge(&pe.stats.Overhead, us(s.p.FlagCheckEpilogTime))
	return true
}

// collectiveCost is the per-PE processor cost of a collective, and
// its release lag after the last arrival.
func (s *Sim) collectiveCost(e *trace.Event, groupSize int) (cpu, lag event.Time) {
	p := s.p
	stages := int(math.Ceil(math.Log2(float64(groupSize))))
	if stages < 1 {
		stages = 1
	}
	switch e.Kind {
	case trace.KindBarrier:
		if e.Group == trace.AllGroup {
			return us(p.FlagCheckPrologTime), us(p.BarrierHwTime)
		}
		return us(2 * p.BarrierStageTime), us(float64(stages) * p.BarrierStageTime)
	case trace.KindGopScalar:
		if p.Features.CommRegisters {
			per := p.CregStoreTime + p.CregLoadTime
			return us(2 * per), us(float64(2*stages) * per)
		}
		// Message-based tree: up and down passes of small sends.
		per := p.BarrierStageTime
		return us(2 * per), us(float64(2*stages) * per)
	case trace.KindGopVector:
		size := float64(e.Size)
		// Ring accumulate, pipelined at chunk granularity: the vector
		// streams around the ring while each member combines in
		// place, so the critical path is ~2 traversals of the data
		// plus a fixed per-hop term, ending with the B-net broadcast
		// of the result (S4.5).
		perByte := p.PutMsgTime + p.RingCopyTime
		hopFixed := p.NetworkPrologTime + p.NetworkEpilogTime
		lag = us(2*size*perByte + float64(groupSize-1)*hopFixed + p.BnetMsgTime*size)
		// Each member's processor combines its share and runs the
		// SEND/RECEIVE library once per pass.
		cpu = us(p.RingCopyTime*size) + s.sendOverhead(e.Size, false)
		if !p.Features.HardwareMessageHandling {
			_, hcpu := s.recvHandling(e.Size)
			cpu += hcpu
		}
		return cpu, lag
	}
	return 0, 0
}

// doCollective synchronizes a group operation: all members must
// arrive; everyone resumes at max(arrival)+lag.
func (s *Sim) doCollective(pe *pe, e *trace.Event) bool {
	group := s.ts.Group(e.Group)
	ep := pe.episode[e.Group]*8 + int(e.Kind) // separate episodes per kind via mixed key
	key := collKey{group: e.Group, kind: e.Kind, episode: ep}
	coll := s.colls[key]
	if coll == nil {
		coll = &collective{arrivals: make(map[int]event.Time)}
		s.colls[key] = coll
	}
	if _, mine := coll.arrivals[pe.id]; !mine {
		coll.arrivals[pe.id] = pe.now
	}
	if len(coll.arrivals) < len(group) {
		return false
	}
	// All arrived: release.
	var maxAt event.Time
	for _, at := range coll.arrivals {
		if at > maxAt {
			maxAt = at
		}
	}
	cpu, lag := s.collectiveCost(e, len(group))
	pe.applyIntr()
	pe.charge(&pe.stats.Overhead, cpu)
	pe.idleUntil(maxAt + lag)
	pe.episode[e.Group]++
	return true
}

// SpeedupVs computes Table 2's metric: how much faster this result is
// than the baseline (elapsed-time ratio).
func (r *Result) SpeedupVs(baseline *Result) float64 {
	return float64(baseline.Elapsed) / float64(r.Elapsed)
}

// SortedEnds returns the per-PE end times in ascending order (load
// balance inspection).
func (r *Result) SortedEnds() []event.Time {
	ends := make([]event.Time, len(r.PE))
	for i, pe := range r.PE {
		ends[i] = pe.End
	}
	sort.Slice(ends, func(i, j int) bool { return ends[i] < ends[j] })
	return ends
}

// LoadImbalance reports max/mean of the per-PE end times — 1.0 is a
// perfectly balanced run. The paper's analysis leans on "load balance
// is good" for its small idle times; this makes that checkable.
func (r *Result) LoadImbalance() float64 {
	if len(r.PE) == 0 {
		return 1
	}
	var sum, max float64
	for _, pe := range r.PE {
		v := float64(pe.End)
		sum += v
		if v > max {
			max = v
		}
	}
	mean := sum / float64(len(r.PE))
	if mean == 0 {
		return 1
	}
	return max / mean
}
