package mlsim

import (
	"ap1000plus/internal/event"
	"ap1000plus/internal/fault"
	"ap1000plus/internal/msc"
	"ap1000plus/internal/params"
	"ap1000plus/internal/trace"
)

// FaultResult summarizes the fault layer's effect on a timed replay:
// how often the reliable-delivery model retransmitted, deduplicated,
// rejected a damaged packet or exhausted its budget, and how much
// simulated time the recovery added to wire legs.
type FaultResult struct {
	fault.Stats
	Retransmits     int64
	Dedups          int64
	CorruptDetected int64
	CellFaults      int64
	// ExtraNanos is the total simulated recovery time added across all
	// wire legs (backoff on retransmits, lateness on delayed or
	// reordered packets).
	ExtraNanos int64
}

// SetFault arms the timing model's fault layer: every wire leg asks
// the injector for a fate, and dropped or corrupted legs pay the
// reliable-delivery recovery cost (exponential backoff per retransmit)
// while delayed or reordered legs arrive late. The same deterministic
// per-stream fate sequences drive the functional machine, so a plan's
// seed means the same faults in both simulators. Call before run.
func (s *Sim) SetFault(plan *fault.Plan) error {
	if plan == nil {
		return nil
	}
	inj, err := plan.Build(s.ts.Meta.PEs, append(msc.OpNames(), "bcast"))
	if err != nil {
		return err
	}
	s.finj = inj
	s.fres = &FaultResult{}
	return nil
}

// wireFault models the reliable-delivery recovery of one wire leg from
// src to dst and returns the extra latency the leg suffers. A leg that
// exhausts the retry budget is delivered anyway — the timing replay
// must preserve the trace's dependencies — but counted as a cell
// fault, mirroring the functional machine's graceful degradation.
func (s *Sim) wireFault(src, dst, class int) event.Time {
	if s.finj == nil {
		return 0
	}
	max := s.finj.MaxAttempts()
	var extra event.Time
	for attempt := 1; ; attempt++ {
		f := s.finj.Decide(src, dst, class)
		switch f.Kind {
		case fault.KindDrop, fault.KindCorrupt:
			if f.Kind == fault.KindCorrupt {
				s.fres.CorruptDetected++
			}
			if attempt >= max {
				s.fres.CellFaults++
				s.fres.ExtraNanos += int64(extra)
				return extra
			}
			s.fres.Retransmits++
			extra += event.Time(s.finj.Backoff(attempt))
		case fault.KindDup:
			// The duplicate is absorbed by receive-side dedup; no extra
			// latency, one discarded copy.
			s.fres.Dedups++
			s.fres.ExtraNanos += int64(extra)
			return extra
		case fault.KindDelay, fault.KindReorder:
			// The packet (or its in-order successor) arrives late.
			extra += event.Time(f.DelayNanos)
			if f.DelayNanos == 0 {
				extra += event.Time(s.finj.DelayNanos())
			}
			s.fres.ExtraNanos += int64(extra)
			return extra
		default:
			s.fres.ExtraNanos += int64(extra)
			return extra
		}
	}
}

// RunFault replays the trace under a fault plan and returns the result
// with its FaultResult attached.
func RunFault(ts *trace.TraceSet, p *params.Params, plan *fault.Plan) (*Result, error) {
	s, err := New(ts, p)
	if err != nil {
		return nil, err
	}
	if err := s.SetFault(plan); err != nil {
		return nil, err
	}
	return s.run()
}
