package mlsim

import (
	"fmt"
	"io"
	"sort"

	"ap1000plus/internal/event"
	"ap1000plus/internal/params"
	"ap1000plus/internal/topology"
	"ap1000plus/internal/trace"
)

// The contention analyzer is an extension beyond the paper's MLSim
// (which, like ours, charges per-hop delay but assumes contention-free
// links). It takes the message log of a replay and re-simulates the
// T-net at link granularity with a discrete-event kernel: messages
// follow their dimension-order routes and serialize on each 25 MB/s
// link, exposing queueing delay and hot links. This quantifies how
// far the contention-free assumption is from a store-and-forward
// worst case for each workload.

// link identifies a directed channel between torus neighbours.
type link struct {
	from, to topology.CellID
}

// LinkStats reports one link's utilization.
type LinkStats struct {
	From, To topology.CellID
	Messages int64
	Bytes    int64
	// Busy is the total transmission time on this link.
	Busy event.Time
}

// ContentionReport summarizes the link-level re-simulation.
type ContentionReport struct {
	Messages int64
	// Makespan is the time the last message finishes under link
	// serialization; FreeMakespan the same without contention.
	Makespan     event.Time
	FreeMakespan event.Time
	// MaxDelay and MeanDelay are per-message queueing delays relative
	// to the contention-free schedule.
	MaxDelay  event.Time
	MeanDelay event.Time
	// Hottest lists the busiest links, descending.
	Hottest []LinkStats
}

// Slowdown reports makespan inflation due to contention.
func (r *ContentionReport) Slowdown() float64 {
	if r.FreeMakespan == 0 {
		return 1
	}
	return float64(r.Makespan) / float64(r.FreeMakespan)
}

// AnalyzeContention re-simulates a message log on the torus with
// serialized links. Each message occupies each link of its route for
// its full transmission time (store-and-forward, a conservative
// bound; the real T-net's wormhole pipelining sits between this and
// the contention-free model).
func AnalyzeContention(ts *trace.TraceSet, p *params.Params, log []Message) (*ContentionReport, error) {
	torus, err := topology.NewTorus(ts.Meta.Width, ts.Meta.Height)
	if err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// Sort by departure for deterministic arbitration.
	msgs := append([]Message(nil), log...)
	sort.SliceStable(msgs, func(i, j int) bool { return msgs[i].Depart < msgs[j].Depart })

	perHopWire := func(size int64) event.Time {
		// Per-link occupancy: header + payload at link speed.
		return us(p.NetworkPrologTime + p.NetworkDelayTime + p.PutMsgTime*float64(size))
	}

	var k event.Kernel
	free := make(map[link]event.Time) // link free-at time
	stats := make(map[link]*LinkStats)
	report := &ContentionReport{Messages: int64(len(msgs))}
	var totalDelay event.Time

	type inflight struct {
		m     Message
		route []topology.CellID
		hop   int
	}
	var advance func(now event.Time, f *inflight)
	advance = func(now event.Time, f *inflight) {
		if f.hop >= len(f.route) {
			// Delivered.
			freeArrive := f.m.Depart
			for range f.route {
				freeArrive += perHopWire(f.m.Size)
			}
			delay := now - freeArrive
			if delay < 0 {
				delay = 0
			}
			totalDelay += delay
			if delay > report.MaxDelay {
				report.MaxDelay = delay
			}
			if now > report.Makespan {
				report.Makespan = now
			}
			if freeArrive > report.FreeMakespan {
				report.FreeMakespan = freeArrive
			}
			return
		}
		from := f.m.Src
		if f.hop > 0 {
			from = int(f.route[f.hop-1])
		}
		l := link{from: topology.CellID(from), to: f.route[f.hop]}
		start := now
		if free[l] > start {
			start = free[l]
		}
		occupy := perHopWire(f.m.Size)
		end := start + occupy
		free[l] = end
		st := stats[l]
		if st == nil {
			st = &LinkStats{From: l.from, To: l.to}
			stats[l] = st
		}
		st.Messages++
		st.Bytes += f.m.Size
		st.Busy += occupy
		f.hop++
		k.At(end, func(t event.Time) { advance(t, f) })
	}

	for i := range msgs {
		f := &inflight{m: msgs[i], route: torus.Route(topology.CellID(msgs[i].Src), topology.CellID(msgs[i].Dst))}
		k.At(msgs[i].Depart, func(t event.Time) { advance(t, f) })
	}
	k.Run()

	if len(msgs) > 0 {
		report.MeanDelay = totalDelay / event.Time(len(msgs))
	}
	for _, st := range stats {
		report.Hottest = append(report.Hottest, *st)
	}
	sort.Slice(report.Hottest, func(i, j int) bool {
		if report.Hottest[i].Busy != report.Hottest[j].Busy {
			return report.Hottest[i].Busy > report.Hottest[j].Busy
		}
		if report.Hottest[i].From != report.Hottest[j].From {
			return report.Hottest[i].From < report.Hottest[j].From
		}
		return report.Hottest[i].To < report.Hottest[j].To
	})
	return report, nil
}

// WriteContention renders the report.
func WriteContention(w io.Writer, r *ContentionReport, topLinks int) error {
	fmt.Fprintf(w, "contention analysis: %d messages\n", r.Messages)
	fmt.Fprintf(w, "  makespan %s (contention-free %s, slowdown %.2fx)\n",
		r.Makespan, r.FreeMakespan, r.Slowdown())
	fmt.Fprintf(w, "  queueing delay: mean %s, max %s\n", r.MeanDelay, r.MaxDelay)
	for i, l := range r.Hottest {
		if i >= topLinks {
			break
		}
		if _, err := fmt.Fprintf(w, "  link %3d -> %-3d  %6d msgs %10d bytes  busy %s\n",
			l.From, l.To, l.Messages, l.Bytes, l.Busy); err != nil {
			return err
		}
	}
	return nil
}
