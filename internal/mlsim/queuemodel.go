package mlsim

import (
	"ap1000plus/internal/event"
	"ap1000plus/internal/msc"
)

// The queue-occupancy model closes a gap the paper itself notes
// (§5.4): "The current implementation of MLSim, however, does not
// include a queue overflow model. Hence, MLSim cannot detect whether
// overflow occurs, and if so, how this affects performance."
//
// Here each PE's MSC+ send side is modeled as a single server: a
// command occupies the send DMA for its launch time plus its wire
// time (the 25 MB/s link drains the queue). Commands that arrive
// while more than QueueCommands predecessors are still waiting spill
// to the DRAM buffer; when the hardware queue later drains, the OS
// takes a refill interrupt (charged to the PE when enabled).

// QueueCommands is the hardware queue capacity in commands (64 words
// / 8 words per command).
const QueueCommands = msc.QueueWords / msc.CommandWords

// queueModel tracks one PE's send-queue occupancy.
type queueModel struct {
	// busyUntil is when the send DMA finishes the current backlog.
	busyUntil event.Time
	// pending holds the completion times of queued commands.
	pending []event.Time
	// stats
	spills     int64
	interrupts int64
	maxDepth   int
	inSpill    bool
}

// QueueStats summarizes the queue-occupancy model for a replay.
type QueueStats struct {
	// Spills counts commands that overflowed to the DRAM buffer.
	Spills int64
	// Interrupts counts OS refill interrupts taken.
	Interrupts int64
	// MaxDepth is the deepest backlog observed (commands).
	MaxDepth int
}

// push records a command issued at time now whose transmission
// occupies the DMA for occupy; it returns the OS interrupt time to
// charge (zero unless a spill episode ends).
func (q *queueModel) push(now event.Time, occupy event.Time, intrCost event.Time) event.Time {
	// Drain completed commands.
	keep := q.pending[:0]
	for _, done := range q.pending {
		if done > now {
			keep = append(keep, done)
		}
	}
	q.pending = keep
	if q.busyUntil < now {
		q.busyUntil = now
	}
	q.busyUntil += occupy
	q.pending = append(q.pending, q.busyUntil)
	depth := len(q.pending)
	if depth > q.maxDepth {
		q.maxDepth = depth
	}
	var charge event.Time
	if depth > QueueCommands {
		q.spills++
		if !q.inSpill {
			q.inSpill = true
		}
	} else if q.inSpill {
		// Queue drained below capacity: the OS reloads the spilled
		// commands from DRAM — one interrupt per episode.
		q.inSpill = false
		q.interrupts++
		charge = intrCost
	}
	return charge
}

// stats exports the counters. A spill episode still open when the
// trace ends is closed here: the OS refill happens as the queue
// drains whether or not the program issues more commands.
func (q *queueModel) stats() QueueStats {
	intr := q.interrupts
	if q.inSpill {
		intr++
	}
	return QueueStats{Spills: q.spills, Interrupts: intr, MaxDepth: q.maxDepth}
}
