package mlsim

import (
	"testing"

	"ap1000plus/internal/obs"
	"ap1000plus/internal/params"
	"ap1000plus/internal/trace"
)

// timelineExchange is a small deterministic program: PE0 computes and
// PUTs to PE1, which waits on the flag; everyone barriers.
func timelineExchange() *trace.TraceSet {
	return synthetic("tl", func(pe int, r *trace.Recorder) {
		switch pe {
		case 0:
			r.Compute(50)
			r.Put(1, 1024, 1, 0, 7, false, false)
		case 1:
			r.FlagWait(7, 1)
		}
		r.Barrier(trace.AllGroup)
	})
}

// TestRunWithTimelineMatchesRun: collecting a timeline must not
// change the simulation result — same elapsed time, same per-PE
// breakdown.
func TestRunWithTimelineMatchesRun(t *testing.T) {
	ts := timelineExchange()
	plain := mustRun(t, ts, params.AP1000Plus())
	tl := obs.NewTimeline()
	timed, err := RunWithTimeline(ts, params.AP1000Plus(), tl)
	if err != nil {
		t.Fatal(err)
	}
	if timed.Elapsed != plain.Elapsed {
		t.Errorf("elapsed with timeline %v, without %v", timed.Elapsed, plain.Elapsed)
	}
	for pe := range plain.PE {
		if timed.PE[pe] != plain.PE[pe] {
			t.Errorf("PE %d stats diverge: %+v vs %+v", pe, timed.PE[pe], plain.PE[pe])
		}
	}
	if tl.Len() == 0 {
		t.Fatal("timeline empty")
	}
}

// TestMLSimTimelineShape validates the emitted events: simulated-time
// CPU slices that nest per track, named processes for every PE, and
// balanced async wire spans on the MSC track.
func TestMLSimTimelineShape(t *testing.T) {
	ts := timelineExchange()
	tl := obs.NewTimeline()
	if _, err := RunWithTimeline(ts, params.AP1000Plus(), tl); err != nil {
		t.Fatal(err)
	}
	ev := tl.Events()
	if err := obs.CheckSliceNesting(ev); err != nil {
		t.Errorf("slice nesting: %v", err)
	}
	procs := map[int]bool{}
	cats := map[string]int{}
	begins, ends := 0, 0
	var computeSlice *obs.TraceEvent
	for i := range ev {
		e := &ev[i]
		switch e.Ph {
		case "M":
			if e.Name == "process_name" {
				procs[e.Pid] = true
			}
			continue
		case "b":
			begins++
		case "e":
			ends++
		case "X":
			if e.Tid != obs.TidCPU {
				t.Errorf("X slice off the CPU track: %+v", *e)
			}
			if e.Cat == "compute" && e.Pid == 0 {
				computeSlice = e
			}
		}
		cats[e.Cat]++
	}
	for pe := 0; pe < 4; pe++ {
		if !procs[pe] {
			t.Errorf("PE %d has no process metadata", pe)
		}
	}
	if begins == 0 || begins != ends {
		t.Errorf("async spans unbalanced: %d begins, %d ends", begins, ends)
	}
	for _, cat := range []string{"compute", "issue", "stall", "wire"} {
		if cats[cat] == 0 {
			t.Errorf("no %q events emitted", cat)
		}
	}
	// Simulated time: Compute(50) is recorded in base-SPARC µs and the
	// AP1000+ model's 8x compute factor scales it to 50/8 µs, starting
	// at t=0.
	if computeSlice == nil {
		t.Fatal("PE0 compute slice missing")
	}
	if computeSlice.TS != 0 || computeSlice.Dur != 50.0/8 {
		t.Errorf("compute slice at %v for %v µs, want 0 for %v", computeSlice.TS, computeSlice.Dur, 50.0/8)
	}
}
