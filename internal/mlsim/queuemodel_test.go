package mlsim

import (
	"testing"

	"ap1000plus/internal/params"
	"ap1000plus/internal/trace"
)

func TestQueueModelOffByDefault(t *testing.T) {
	ts := synthetic("qoff", func(pe int, r *trace.Recorder) {
		if pe == 0 {
			for i := 0; i < 100; i++ {
				r.Put(1, 65536, 1, 0, 0, false, false)
			}
		}
	})
	res := mustRun(t, ts, params.AP1000Plus())
	if res.Queue.Spills != 0 || res.Queue.MaxDepth != 0 {
		t.Errorf("queue model active without the feature flag: %+v", res.Queue)
	}
}

func TestQueueModelDetectsOverflow(t *testing.T) {
	// 100 large puts issued back-to-back: the 1.16us issue cost is far
	// below the ~3.3ms wire time per message, so the backlog blows
	// through the 8-command queue.
	ts := synthetic("qburst", func(pe int, r *trace.Recorder) {
		if pe == 0 {
			for i := 0; i < 100; i++ {
				r.Put(1, 65536, 1, 0, 0, false, false)
			}
		}
	})
	p := params.AP1000Plus()
	p.Features.ModelQueueOverflow = true
	res := mustRun(t, ts, p)
	if res.Queue.Spills == 0 {
		t.Errorf("burst of 100 large puts did not spill: %+v", res.Queue)
	}
	if res.Queue.MaxDepth <= QueueCommands {
		t.Errorf("max depth %d should exceed the %d-command queue", res.Queue.MaxDepth, QueueCommands)
	}
	if res.Queue.Interrupts == 0 {
		t.Error("spill episodes must end in OS refill interrupts")
	}
}

func TestQueueModelNoSpillWhenPaced(t *testing.T) {
	// Compute between puts paces the issue rate below the drain rate:
	// no overflow.
	ts := synthetic("qpaced", func(pe int, r *trace.Recorder) {
		if pe == 0 {
			for i := 0; i < 50; i++ {
				r.Put(1, 64, 1, 0, 0, false, false)
				r.Compute(1000) // 125us on the AP1000+, >> 3.7us wire
			}
		}
	})
	p := params.AP1000Plus()
	p.Features.ModelQueueOverflow = true
	res := mustRun(t, ts, p)
	if res.Queue.Spills != 0 {
		t.Errorf("paced puts spilled: %+v", res.Queue)
	}
	if res.Queue.MaxDepth > 2 {
		t.Errorf("paced max depth = %d", res.Queue.MaxDepth)
	}
}

func TestQueueModelChargesInterrupts(t *testing.T) {
	ts := synthetic("qcost", func(pe int, r *trace.Recorder) {
		if pe == 0 {
			for i := 0; i < 100; i++ {
				r.Put(1, 65536, 1, 0, 0, false, false)
			}
			r.Compute(10) // episode end is charged at the next issue/step
		}
	})
	off := mustRun(t, ts, params.AP1000Plus())
	p := params.AP1000Plus()
	p.Features.ModelQueueOverflow = true
	p.IntrRtcTime = 20 // make refill interrupts visible
	on := mustRun(t, ts, p)
	if on.PE[0].Overhead < off.PE[0].Overhead {
		t.Errorf("queue model reduced overhead: %v vs %v", on.PE[0].Overhead, off.PE[0].Overhead)
	}
}
