package mlsim

import (
	"bytes"
	"strings"
	"testing"

	"ap1000plus/internal/params"
	"ap1000plus/internal/topology"
	"ap1000plus/internal/trace"
)

// synthetic builds a 2x2 trace from per-PE recorder programs.
func synthetic(app string, program func(pe int, r *trace.Recorder)) *trace.TraceSet {
	ts := trace.New(app, 2, 2)
	for pe := 0; pe < 4; pe++ {
		r := trace.NewRecorder()
		program(pe, r)
		ts.PE[pe] = r.Events()
	}
	return ts
}

func mustRun(t *testing.T, ts *trace.TraceSet, p *params.Params) *Result {
	t.Helper()
	res, err := Run(ts, p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestComputeOnlyScalesWithFactor(t *testing.T) {
	ts := synthetic("compute", func(pe int, r *trace.Recorder) {
		r.Compute(1000)
	})
	base := mustRun(t, ts, params.AP1000())
	plus := mustRun(t, ts, params.AP1000Plus())
	if base.Elapsed.Us() != 1000 {
		t.Errorf("AP1000 elapsed = %v", base.Elapsed.Us())
	}
	if plus.Elapsed.Us() != 125 {
		t.Errorf("AP1000+ elapsed = %v", plus.Elapsed.Us())
	}
	if got := plus.SpeedupVs(base); got != 8.0 {
		t.Errorf("compute-only speedup = %v, want exactly 8 (the EP row)", got)
	}
}

func TestPutFlagWaitOrdering(t *testing.T) {
	// PE0 puts to PE1; PE1 waits on the flag. The wait must resolve
	// and PE1's idle must cover the transfer latency.
	ts := synthetic("put", func(pe int, r *trace.Recorder) {
		switch pe {
		case 0:
			r.Compute(50)
			r.Put(1, 1024, 1, 0, 7, false, false)
		case 1:
			r.FlagWait(7, 1)
		}
	})
	for _, p := range []*params.Params{params.AP1000(), params.AP1000Plus()} {
		res := mustRun(t, ts, p)
		pe1 := res.PE[1]
		if pe1.Idle == 0 {
			t.Errorf("%s: PE1 idle = 0, expected waiting", p.Name)
		}
		if res.Messages != 1 || res.Bytes != 1024 {
			t.Errorf("%s: traffic = %d msgs %d bytes", p.Name, res.Messages, res.Bytes)
		}
	}
	// The AP1000+ must deliver far sooner.
	base := mustRun(t, ts, params.AP1000())
	plus := mustRun(t, ts, params.AP1000Plus())
	if plus.PE[1].End >= base.PE[1].End {
		t.Errorf("AP1000+ delivery (%v) not faster than AP1000 (%v)", plus.PE[1].End, base.PE[1].End)
	}
}

func TestAckAndBarrierResolves(t *testing.T) {
	ts := synthetic("ack", func(pe int, r *trace.Recorder) {
		r.Put(topology.CellID((pe+1)%4), 100, 1, 0, 0, true, false)
		r.FlagWait(trace.AckFlag, 1)
		r.Barrier(trace.AllGroup)
	})
	res := mustRun(t, ts, params.AP1000Plus())
	// PUT + ack GET + ack reply per PE.
	if res.Messages != 4*3 {
		t.Errorf("messages = %d, want 12", res.Messages)
	}
	if res.Elapsed == 0 {
		t.Error("zero elapsed")
	}
}

func TestSendRecvBlocking(t *testing.T) {
	ts := synthetic("sr", func(pe int, r *trace.Recorder) {
		switch pe {
		case 0:
			r.Compute(100)
			r.Send(1, 4096, false)
		case 1:
			r.Recv(0, 4096, false)
			r.Compute(10)
		}
	})
	res := mustRun(t, ts, params.AP1000())
	if res.PE[1].Idle == 0 {
		t.Error("receiver should idle waiting for the send")
	}
	// The receiver finishes after the sender's compute phase.
	if res.PE[1].End <= us(100) {
		t.Errorf("PE1 end %v too early", res.PE[1].End)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	ts := synthetic("bar", func(pe int, r *trace.Recorder) {
		r.Compute(float64(100 * (pe + 1))) // imbalanced
		r.Barrier(trace.AllGroup)
		r.Compute(10)
	})
	res := mustRun(t, ts, params.AP1000Plus())
	// All PEs end together (same post-barrier work).
	ends := res.SortedEnds()
	if ends[0] != ends[3] {
		t.Errorf("ends diverge: %v", ends)
	}
	// The fastest PE idles roughly the imbalance: (400-100)us of
	// trace compute scaled by the 0.125 computation factor = 37.5us.
	if res.PE[0].Idle < us(37) {
		t.Errorf("PE0 idle = %v, want >= 37.5us (waiting for PE3)", res.PE[0].Idle)
	}
	if res.PE[3].Idle > us(50) {
		t.Errorf("PE3 idle = %v, want small (it is the last arrival)", res.PE[3].Idle)
	}
}

func TestGroupBarrierOnlyMembers(t *testing.T) {
	ts := trace.New("group", 2, 2)
	ts.AddGroup([]topology.CellID{0, 1})
	for pe := 0; pe < 4; pe++ {
		r := trace.NewRecorder()
		if pe < 2 {
			r.Barrier(1)
		}
		r.Compute(5)
		ts.PE[pe] = r.Events()
	}
	res := mustRun(t, ts, params.AP1000Plus())
	if res.PEs != 4 {
		t.Fatal("wrong PE count")
	}
}

func TestGopScalarAndVector(t *testing.T) {
	ts := synthetic("gop", func(pe int, r *trace.Recorder) {
		r.Compute(50)
		r.GopScalar(trace.AllGroup, trace.ReduceSum)
		r.GopVector(trace.AllGroup, trace.ReduceSum, 11200)
	})
	base := mustRun(t, ts, params.AP1000())
	plus := mustRun(t, ts, params.AP1000Plus())
	if plus.Elapsed >= base.Elapsed {
		t.Errorf("AP1000+ gops (%v) not faster than AP1000 (%v)", plus.Elapsed, base.Elapsed)
	}
	// The vector reduction is expensive on both (ring pass of 11200B).
	if plus.PE[0].Idle == 0 {
		t.Error("vector gop should introduce idle time")
	}
}

func TestDeadlockDetected(t *testing.T) {
	ts := synthetic("dead", func(pe int, r *trace.Recorder) {
		if pe == 0 {
			r.FlagWait(9, 1) // nobody increments flag 9
		}
	})
	if _, err := Run(ts, params.AP1000Plus()); err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestStridePackingOnSoftwareModel(t *testing.T) {
	// One stride PUT of 256 items: the AP1000 (no stride hardware)
	// packs in software (per-byte cost) but still sends one message;
	// the AP1000+ stride DMA pays nothing extra.
	stride := synthetic("stride", func(pe int, r *trace.Recorder) {
		if pe == 0 {
			r.Put(1, 2048, 256, 0, 0, false, false)
		}
	})
	plain := synthetic("plain", func(pe int, r *trace.Recorder) {
		if pe == 0 {
			r.Put(1, 2048, 1, 0, 0, false, false)
		}
	})
	base := mustRun(t, stride, params.AP1000())
	basePlain := mustRun(t, plain, params.AP1000())
	plus := mustRun(t, stride, params.AP1000Plus())
	plusPlain := mustRun(t, plain, params.AP1000Plus())
	if base.Messages != 1 || plus.Messages != 1 {
		t.Errorf("messages = %d / %d, want 1 each", base.Messages, plus.Messages)
	}
	wantPack := us(params.AP1000().StridePackTime * 2048)
	if got := base.PE[0].Overhead - basePlain.PE[0].Overhead; got != wantPack {
		t.Errorf("software pack cost = %v, want %v", got, wantPack)
	}
	if plus.PE[0].Overhead != plusPlain.PE[0].Overhead {
		t.Errorf("hardware stride must cost the same as a plain put: %v vs %v",
			plus.PE[0].Overhead, plusPlain.PE[0].Overhead)
	}
}

func TestRTSAttribution(t *testing.T) {
	ts := synthetic("rts", func(pe int, r *trace.Recorder) {
		if pe == 0 {
			r.Put(1, 64, 1, 0, 0, false, true)  // RTS-issued
			r.Put(1, 64, 1, 0, 0, false, false) // user-issued
		}
	})
	res := mustRun(t, ts, params.AP1000Plus())
	if res.PE[0].RTS == 0 {
		t.Error("RTS time not charged")
	}
	if res.PE[0].RTS != us(params.AP1000Plus().RtsOpTime) {
		t.Errorf("RTS = %v, want exactly one rts_op_time", res.PE[0].RTS)
	}
}

func TestInterruptsStealReceiverCPU(t *testing.T) {
	// On the AP1000, receiving 100 puts costs the receiver CPU time
	// even though it never waits on them; on the AP1000+ it costs
	// nothing.
	ts := synthetic("intr", func(pe int, r *trace.Recorder) {
		switch pe {
		case 0:
			for i := 0; i < 100; i++ {
				r.Put(1, 1024, 1, 0, 0, false, false)
			}
		case 1:
			r.Compute(10)
			r.Barrier(trace.AllGroup)
		}
		if pe != 1 {
			r.Barrier(trace.AllGroup)
		}
	})
	base := mustRun(t, ts, params.AP1000())
	plus := mustRun(t, ts, params.AP1000Plus())
	if base.PE[1].Overhead == 0 {
		t.Error("AP1000 receiver must pay interrupt overhead")
	}
	if plus.PE[1].Overhead > us(5) {
		t.Errorf("AP1000+ receiver overhead = %v, want ~0 (hardware handling)", plus.PE[1].Overhead)
	}
}

func TestFigure7Timeline(t *testing.T) {
	for _, p := range []*params.Params{params.AP1000(), params.AP1000Plus()} {
		comps := PutTimeline(p, 1024, 3)
		if len(comps) != 18 {
			t.Fatalf("%s: %d components, want 18", p.Name, len(comps))
		}
		seen := map[int]bool{}
		for _, c := range comps {
			if c.End < c.Start {
				t.Errorf("%s item %d: end %v < start %v", p.Name, c.Index, c.End, c.Start)
			}
			seen[c.Index] = true
		}
		for i := 1; i <= 18; i++ {
			if !seen[i] {
				t.Errorf("%s: missing Figure 7 item %d", p.Name, i)
			}
		}
	}
	// The AP1000+ latency and CPU must both be far below the AP1000's.
	lat0, cpu0 := PutLatency(params.AP1000(), 1024, 3)
	lat1, cpu1 := PutLatency(params.AP1000Plus(), 1024, 3)
	if lat1 >= lat0 || cpu1 >= cpu0 {
		t.Errorf("AP1000+ put (lat %v cpu %v) not better than AP1000 (lat %v cpu %v)", lat1, cpu1, lat0, cpu0)
	}
	// S4.1: AP1000+ issue cost is ~the 8 stores plus library entry.
	wantCPU := us(params.AP1000Plus().PutPrologTime + params.AP1000Plus().PutEnqueueTime)
	if cpu1 != wantCPU {
		t.Errorf("AP1000+ sender CPU = %v, want %v", cpu1, wantCPU)
	}
}

func TestWriteTimeline(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, params.AP1000Plus(), 256, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "put_dma_set_time") || !strings.Contains(out, "latency") {
		t.Errorf("timeline output missing pieces:\n%s", out)
	}
}

func TestBreakdownSumsToTotal(t *testing.T) {
	ts := synthetic("sum", func(pe int, r *trace.Recorder) {
		r.Compute(100)
		r.Barrier(trace.AllGroup)
		r.GopScalar(trace.AllGroup, trace.ReduceSum)
	})
	res := mustRun(t, ts, params.AP1000x8())
	b := res.Breakdown()
	if b.Total <= 0 {
		t.Fatal("empty breakdown")
	}
	sum := b.Exec + b.RTS + b.Overhead + b.Idle
	if sum != b.Total {
		t.Errorf("breakdown sum %v != total %v", sum, b.Total)
	}
	for _, pe := range res.PE {
		if pe.Total() != pe.End {
			t.Errorf("PE accounting: total %v != end %v", pe.Total(), pe.End)
		}
	}
}

func TestLoadImbalance(t *testing.T) {
	balanced := synthetic("bal", func(pe int, r *trace.Recorder) {
		r.Compute(100)
	})
	res := mustRun(t, balanced, params.AP1000Plus())
	if got := res.LoadImbalance(); got != 1.0 {
		t.Errorf("balanced imbalance = %v", got)
	}
	skewed := synthetic("skew", func(pe int, r *trace.Recorder) {
		r.Compute(float64(100 * (pe + 1)))
	})
	res = mustRun(t, skewed, params.AP1000Plus())
	// ends: 100,200,300,400 (x0.125) -> max/mean = 400/250 = 1.6
	if got := res.LoadImbalance(); got < 1.59 || got > 1.61 {
		t.Errorf("skewed imbalance = %v, want 1.6", got)
	}
}
