package mlsim

import (
	"fmt"
	"io"
	"strings"

	"ap1000plus/internal/event"
	"ap1000plus/internal/params"
)

// Component is one numbered cost component of Figure 7's PUT
// communication model.
type Component struct {
	Index int    // Figure 7 item number (1-18)
	Name  string // parameter name
	Lane  string // "user-a", "system-a", "network", "system-b", "user-b"
	Start event.Time
	End   event.Time
}

// PutTimeline reconstructs Figure 7: the full component timeline of
// one PUT of msgSize bytes over distance hops, under model p, from
// the sender's library entry to the receiver's flag check returning.
// Components with zero cost in the model still appear (with
// Start==End), so the AP1000 and AP1000+ timelines align item by
// item.
func PutTimeline(p *params.Params, msgSize int64, distance int) []Component {
	var out []Component
	t := event.Time(0)
	sz := float64(msgSize)
	add := func(idx int, name, lane string, dur float64) event.Time {
		start := t
		t += us(dur)
		out = append(out, Component{Index: idx, Name: name, Lane: lane, Start: start, End: t})
		return t
	}
	// Sender: user/system boundary per Figure 7.
	add(1, "put_prolog_time", "user-a", p.PutPrologTime)
	add(2, "put_enqueue_time", "system-a", p.PutEnqueueTime)
	if !p.Features.HardwareMessageHandling {
		add(3, "put_msg_post_time x msg_size", "system-a", p.PutMsgPostTime*sz)
	} else {
		add(3, "put_msg_post_time x msg_size", "system-a", 0)
	}
	dmaSet := add(4, "put_dma_set_time", "system-a", p.PutDmaSetTime)
	add(5, "put_epilog_time", "user-a", p.PutEpilogTime)
	cpuDone := t

	// Send completion (asynchronous to the CPU on the MSC+).
	t = dmaSet
	add(6, "send_complete_time", "system-a", p.SendCompleteTime)
	add(7, "send_complete_flag_time", "system-a", p.SendCompleteFlagTime)

	// Network, departing after DMA setup.
	t = dmaSet
	add(15, "network_prolog_time", "network", p.NetworkPrologTime)
	add(16, "network_delay_time x distance", "network", p.NetworkDelayTime*float64(distance))
	add(17, "network_msg_time x msg_size", "network", p.PutMsgTime*sz)
	arrive := add(18, "network_epilog_time", "network", p.NetworkEpilogTime)

	// Receiver.
	t = arrive
	add(8, "intr_rtc_time", "system-b", p.IntrRtcTime)
	add(9, "recv_msg_invalid_time x msg_size", "system-b", p.RecvMsgFlushTime*sz)
	add(10, "recv_dma_set_time", "system-b", p.RecvDmaSetTime)
	add(11, "recv_complete_time", "system-b", p.RecvCompleteTime)
	flagAt := add(12, "recv_complete_flag_time", "system-b", p.RecvCompleteFlagTime)

	// Receiver's flag check returning right as the flag rises.
	t = flagAt - us(p.FlagCheckPrologTime)
	if t < 0 {
		t = 0
	}
	add(13, "flag_check_prolog_time", "user-b", p.FlagCheckPrologTime)
	add(14, "flag_check_epilog_time", "user-b", p.FlagCheckEpilogTime)
	_ = cpuDone
	return out
}

// PutLatency reports the end-to-end PUT latency (sender library entry
// to receiver flag update) and the sender CPU busy time, summarizing
// the timeline.
func PutLatency(p *params.Params, msgSize int64, distance int) (latency, senderCPU event.Time) {
	comps := PutTimeline(p, msgSize, distance)
	for _, c := range comps {
		if c.Index == 12 {
			latency = c.End
		}
	}
	if p.Features.HardwareMessageHandling {
		senderCPU = us(p.PutPrologTime + p.PutEnqueueTime)
	} else {
		senderCPU = us(p.PutPrologTime + p.PutEnqueueTime + p.PutMsgPostTime*float64(msgSize) +
			p.PutDmaSetTime + p.PutEpilogTime)
	}
	return latency, senderCPU
}

// WriteTimeline renders the Figure 7 reconstruction as text.
func WriteTimeline(w io.Writer, p *params.Params, msgSize int64, distance int) error {
	comps := PutTimeline(p, msgSize, distance)
	fmt.Fprintf(w, "PUT communication model (%s), %d bytes, %d hops\n", p.Name, msgSize, distance)
	var total event.Time
	for _, c := range comps {
		if c.End > total {
			total = c.End
		}
	}
	for _, c := range comps {
		bar := ""
		if total > 0 {
			const width = 40
			s := int(int64(c.Start) * width / int64(total))
			e := int(int64(c.End) * width / int64(total))
			if e == s && c.End > c.Start {
				e = s + 1
			}
			bar = strings.Repeat(" ", s) + strings.Repeat("#", e-s)
		}
		if _, err := fmt.Fprintf(w, "(%2d) %-34s %-8s %9s ..%9s |%-40s|\n",
			c.Index, c.Name, c.Lane, c.Start, c.End, bar); err != nil {
			return err
		}
	}
	lat, cpu := PutLatency(p, msgSize, distance)
	_, err := fmt.Fprintf(w, "latency %s, sender CPU %s\n", lat, cpu)
	return err
}
