package ring

import (
	"runtime"
	"testing"
)

// FuzzInterleavings drives a producer and a concurrent consumer whose
// pacing (batch sizes and yield points) is taken from the fuzz input,
// so the fuzzer explores producer/consumer interleavings the fixed
// property test does not. The invariant is the SPSC contract itself:
// the consumer sees the exact sequence 0..total-1 — FIFO order, no
// loss, no duplication.
func FuzzInterleavings(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, uint8(4))
	f.Add([]byte{255, 0, 255, 0, 7}, uint8(1))
	f.Add([]byte{16, 16, 16}, uint8(6))
	f.Fuzz(func(t *testing.T, pacing []byte, capLog uint8) {
		if len(pacing) == 0 {
			pacing = []byte{1}
		}
		capacity := 1 << (capLog % 8) // 1..128, New rounds 1 up to 2
		r := New[uint32](capacity)
		const total = 4096
		errc := make(chan string, 1)
		go func() {
			var want uint32
			pi := 0
			for want < total {
				// pop a pacing-determined batch, then yield
				batch := int(pacing[pi%len(pacing)])%7 + 1
				pi++
				for b := 0; b < batch && want < total; {
					v, ok := r.Pop()
					if !ok {
						runtime.Gosched()
						continue
					}
					if v != want {
						errc <- "FIFO violated: popped wrong value"
						return
					}
					want++
					b++
				}
				runtime.Gosched()
			}
			if _, ok := r.Pop(); ok {
				errc <- "ring not empty after consuming every pushed value"
				return
			}
			errc <- ""
		}()
		pi := 0
		for i := uint32(0); i < total; {
			batch := int(pacing[pi%len(pacing)])%11 + 1
			pi++
			for b := 0; b < batch && i < total; {
				if r.Push(i) {
					i++
					b++
				} else {
					runtime.Gosched()
				}
			}
			runtime.Gosched()
		}
		if msg := <-errc; msg != "" {
			t.Fatal(msg)
		}
	})
}
