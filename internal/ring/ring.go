// Package ring provides the bounded single-producer single-consumer
// lock-free ring buffer under the AP1000+ wire rebuild. It models the
// one hardware structure the paper leans on everywhere: a fixed-size
// FIFO between exactly two agents (CPU→MSC+ command queues, the
// T-net's per-link packet buffers), where the producer never blocks
// the consumer and vice versa. Capacity is a power of two so slot
// indexing is a mask, and the hot fields live on separate cache lines
// so a producer spinning on Push does not false-share with a consumer
// spinning on Pop.
//
// Concurrency contract: at most ONE goroutine calls Push and at most
// ONE goroutine calls Pop at any time (they may be the same
// goroutine). The head/tail stores are the only synchronization: a
// consumer that observes tail=t via Pop also observes every buffer
// write the producer made before storing t (Go's sync/atomic
// operations are sequentially consistent, which subsumes the
// release/acquire pairing needed here). Violating the SPSC contract
// corrupts the FIFO; multi-producer feeds must serialize externally
// (see the spill queues in internal/msc and internal/tnet).
package ring

import "sync/atomic"

// cacheLine separates producer-owned and consumer-owned fields so the
// two sides never ping-pong a line between cores.
const cacheLine = 64

// SPSC is a bounded lock-free FIFO for one producer and one consumer.
// The zero value is not usable; construct with New.
type SPSC[T any] struct {
	buf  []T
	mask uint64

	_ [cacheLine]byte
	// head is the next slot to pop. Written only by the consumer.
	// cachedTail is the consumer's last observed tail, avoiding an
	// atomic load of the producer's line on every Pop.
	head       atomic.Uint64
	cachedTail uint64

	_ [cacheLine]byte
	// tail is the next slot to fill. Written only by the producer.
	// cachedHead mirrors cachedTail for the producer side.
	tail       atomic.Uint64
	cachedHead uint64

	_ [cacheLine]byte
}

// New creates an SPSC ring holding at least capacity items. Capacity
// is rounded up to the next power of two, minimum 2.
func New[T any](capacity int) *SPSC[T] {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &SPSC[T]{buf: make([]T, n), mask: uint64(n - 1)}
}

// Push appends v and reports success; false means the ring is full
// (the caller decides whether to spin, spill, or drop — the AP1000+
// hardware would raise the send-queue-full interrupt here).
func (r *SPSC[T]) Push(v T) bool {
	t := r.tail.Load()
	if t-r.cachedHead >= uint64(len(r.buf)) {
		r.cachedHead = r.head.Load()
		if t-r.cachedHead >= uint64(len(r.buf)) {
			return false
		}
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1)
	return true
}

// Pop removes and returns the oldest item; ok is false when the ring
// is empty. The vacated slot is zeroed so pooled payloads referenced
// from a popped packet are not pinned by the ring.
func (r *SPSC[T]) Pop() (v T, ok bool) {
	h := r.head.Load()
	if h == r.cachedTail {
		r.cachedTail = r.tail.Load()
		if h == r.cachedTail {
			return v, false
		}
	}
	i := h & r.mask
	v = r.buf[i]
	var zero T
	r.buf[i] = zero
	r.head.Store(h + 1)
	return v, true
}

// Len reports the number of buffered items. It is exact when called
// by either the producer or the consumer, and a point-in-time
// approximation for anyone else.
func (r *SPSC[T]) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// Cap reports the ring's capacity in items.
func (r *SPSC[T]) Cap() int { return len(r.buf) }
