package ring

import (
	"runtime"
	"testing"
)

// TestOverflowFIFOThroughSpill floods a tiny ring far past capacity
// and checks items come out in push order with spills accounted.
func TestOverflowFIFOThroughSpill(t *testing.T) {
	o := NewOverflow[int](2)
	const total = 500
	for i := 0; i < total; i++ {
		o.Push(i)
	}
	if o.Spills() == 0 {
		t.Fatal("flooding a 2-slot ring produced no spills")
	}
	if o.Len() != total {
		t.Fatalf("Len = %d, want %d", o.Len(), total)
	}
	for i := 0; i < total; i++ {
		v, ok := o.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d: got %d ok=%v", i, v, ok)
		}
	}
	if _, ok := o.Pop(); ok {
		t.Fatal("phantom item after drain")
	}
}

// TestOverflowConcurrentFIFO is the concurrent property: a producer
// racing a consumer through ring-full/spill transitions must preserve
// order exactly (run under -race in make verify).
func TestOverflowConcurrentFIFO(t *testing.T) {
	o := NewOverflow[uint64](4)
	const total = 100000
	done := make(chan bool, 1)
	go func() {
		var want uint64
		for want < total {
			v, ok := o.Pop()
			if !ok {
				runtime.Gosched()
				continue
			}
			if v != want {
				done <- false
				return
			}
			want++
		}
		_, extra := o.Pop()
		done <- !extra
	}()
	for i := uint64(0); i < total; i++ {
		o.Push(i)
		if i%1024 == 0 {
			runtime.Gosched()
		}
	}
	if !<-done {
		t.Fatal("overflow queue lost, duplicated or reordered an item")
	}
}
