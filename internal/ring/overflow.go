package ring

import (
	"sync"
	"sync/atomic"
)

// Overflow composes an SPSC ring with a mutex-guarded spill buffer so
// Push never fails: when the ring is full the producer spills, just
// as the MSC+ writes to its DRAM buffer when a hardware queue fills.
// The concurrency contract is the SPSC one — one pusher, one popper —
// and FIFO order is preserved across the spill by a monotonic rule:
// once anything has spilled, the producer keeps spilling until the
// consumer has taken every spilled item, so ring entries are always
// older than spill entries. The consumer never refills the ring (that
// would make it a second producer); it stages spilled items into a
// consumer-local buffer served before the ring.
type Overflow[T any] struct {
	hw *SPSC[T]

	mu           sync.Mutex
	spill        []T
	spillHead    int
	spillPending atomic.Int64
	spills       atomic.Int64

	// Consumer-local staging of spilled items; stagedPending mirrors
	// its length so Len works from any goroutine.
	staged        []T
	stagedHead    int
	stagedPending atomic.Int64
}

// NewOverflow builds an Overflow whose fast-path ring holds at least
// capacity items (rounded up to a power of two).
func NewOverflow[T any](capacity int) *Overflow[T] {
	return &Overflow[T]{hw: New[T](capacity)}
}

// Push appends v; it never fails. Single producer.
func (o *Overflow[T]) Push(v T) {
	if o.spillPending.Load() == 0 && o.hw.Push(v) {
		return
	}
	o.mu.Lock()
	o.spill = append(o.spill, v)
	o.spillPending.Add(1)
	o.spills.Add(1)
	o.mu.Unlock()
}

// Pop removes the oldest item. Single consumer. Service order —
// staged spill, then ring, then a fresh staging pass — is exactly age
// order under the monotonic spill rule.
func (o *Overflow[T]) Pop() (v T, ok bool) {
	if o.stagedHead < len(o.staged) {
		v = o.staged[o.stagedHead]
		var zero T
		o.staged[o.stagedHead] = zero
		o.stagedHead++
		o.stagedPending.Add(-1)
		if o.stagedHead == len(o.staged) {
			o.staged = o.staged[:0]
			o.stagedHead = 0
		}
		return v, true
	}
	if v, ok = o.hw.Pop(); ok {
		return v, true
	}
	if o.spillPending.Load() == 0 {
		return v, false
	}
	o.mu.Lock()
	n := len(o.spill) - o.spillHead
	if max := o.hw.Cap(); n > max {
		n = max
	}
	o.staged = append(o.staged[:0], o.spill[o.spillHead:o.spillHead+n]...)
	o.stagedHead = 0
	o.spillHead += n
	if o.spillHead == len(o.spill) {
		// Zero the drained prefix so spilled pointers are not pinned,
		// then reuse the storage.
		var zero T
		for i := range o.spill {
			o.spill[i] = zero
		}
		o.spill = o.spill[:0]
		o.spillHead = 0
	}
	o.spillPending.Add(int64(-n))
	o.stagedPending.Add(int64(n))
	o.mu.Unlock()
	return o.Pop()
}

// Len reports buffered items; exact for producer or consumer, a
// point-in-time approximation for anyone else.
func (o *Overflow[T]) Len() int {
	return o.hw.Len() + int(o.spillPending.Load()) + int(o.stagedPending.Load())
}

// Spills reports how many pushes overflowed to the spill buffer.
func (o *Overflow[T]) Spills() int64 { return o.spills.Load() }

// Cap reports the fast-path ring capacity.
func (o *Overflow[T]) Cap() int { return o.hw.Cap() }
