package ring

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {64, 64}, {65, 128},
	} {
		if got := New[int](tc.ask).Cap(); got != tc.want {
			t.Errorf("New(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

// TestFIFOSequential drives a small ring through many wrap-arounds on
// one goroutine, checking FIFO order and full/empty edges against a
// slice-backed reference queue.
func TestFIFOSequential(t *testing.T) {
	r := New[int](4)
	rng := rand.New(rand.NewSource(1))
	var ref []int
	next := 0
	for step := 0; step < 10000; step++ {
		if rng.Intn(2) == 0 {
			ok := r.Push(next)
			wantOK := len(ref) < r.Cap()
			if ok != wantOK {
				t.Fatalf("step %d: Push ok=%v, want %v (len %d)", step, ok, wantOK, len(ref))
			}
			if ok {
				ref = append(ref, next)
				next++
			}
		} else {
			v, ok := r.Pop()
			wantOK := len(ref) > 0
			if ok != wantOK {
				t.Fatalf("step %d: Pop ok=%v, want %v (len %d)", step, ok, wantOK, len(ref))
			}
			if ok {
				if v != ref[0] {
					t.Fatalf("step %d: Pop = %d, want %d", step, v, ref[0])
				}
				ref = ref[1:]
			}
		}
		if r.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, want %d", step, r.Len(), len(ref))
		}
	}
}

// TestConcurrentFIFOProperty is the SPSC property test: a producer
// pushing a strictly increasing sequence and a concurrent consumer
// must see every value exactly once, in order, for any interleaving.
// Random stalls on both sides vary the interleaving; `-race` (wired
// into make verify) checks the happens-before edges of the
// head/tail protocol.
func TestConcurrentFIFOProperty(t *testing.T) {
	const total = 50000
	for _, capacity := range []int{2, 8, 64, 1024} {
		r := New[uint64](capacity)
		done := make(chan error, 1)
		go func() {
			rng := rand.New(rand.NewSource(int64(capacity)))
			var want uint64
			for want < total {
				v, ok := r.Pop()
				if !ok {
					runtime.Gosched()
					continue
				}
				if v != want {
					done <- fmt.Errorf("cap %d: popped %d, want %d (lost or reordered)", capacity, v, want)
					return
				}
				want++
				if rng.Intn(64) == 0 {
					runtime.Gosched()
				}
			}
			if v, ok := r.Pop(); ok {
				done <- fmt.Errorf("cap %d: duplicate or phantom value %d after draining", capacity, v)
				return
			}
			done <- nil
		}()
		rng := rand.New(rand.NewSource(int64(capacity) * 7))
		for i := uint64(0); i < total; {
			if r.Push(i) {
				i++
			} else {
				runtime.Gosched()
			}
			if rng.Intn(64) == 0 {
				runtime.Gosched()
			}
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestPopReleasesSlot pins that Pop zeroes the vacated slot, so the
// ring never pins a popped pointer (pooled payloads must be
// collectable/reusable the moment the consumer takes them).
func TestPopReleasesSlot(t *testing.T) {
	r := New[*int](2)
	v := new(int)
	r.Push(v)
	r.Pop()
	if r.buf[0] != nil {
		t.Fatal("Pop left the slot's pointer live")
	}
}
