// Package snet models the AP1000+ synchronization network: a
// dedicated hardware tree that implements barrier synchronization
// over all cells. Group barriers are done in software over the
// communication registers (S4.5); the S-net serves only the all-cells
// case, which is why it can be this simple — and this fast.
package snet

import (
	"fmt"
	"sync"
)

// Barrier is a reusable all-cells hardware barrier. It is a
// sense-reversing barrier: generations prevent a fast cell from
// lapping a slow one.
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	arrived int
	gen     uint64
	// count is the number of completed barrier episodes.
	count int64
}

// New builds a barrier for the given number of cells.
func New(parties int) *Barrier {
	if parties <= 0 {
		panic(fmt.Sprintf("snet: non-positive parties %d", parties))
	}
	b := &Barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Parties reports the number of participants.
func (b *Barrier) Parties() int { return b.parties }

// Arrive blocks until all cells have arrived at the barrier, then
// releases them together — the S-net's wired-AND going high.
func (b *Barrier) Arrive() {
	b.mu.Lock()
	gen := b.gen
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.gen++
		b.count++
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// Count reports how many barrier episodes have completed.
func (b *Barrier) Count() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.count
}
