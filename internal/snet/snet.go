// Package snet models the AP1000+ synchronization network: a
// dedicated hardware tree that implements barrier synchronization
// over all cells of a partition. Group barriers are done in software
// over the communication registers (S4.5); the S-net serves only the
// whole-partition case, which is why it can be this simple — and this
// fast. Under partitioned multi-user operation the tree is split into
// independent Domains, one per partition, so one tenant's barrier
// never waits on another tenant's cells.
package snet

import (
	"fmt"
	"sync"
)

// Barrier is a reusable all-cells hardware barrier. It is a
// sense-reversing barrier: generations prevent a fast cell from
// lapping a slow one.
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	arrived int
	gen     uint64
	// count is the number of completed barrier episodes.
	count int64
}

// New builds a barrier for the given number of cells.
func New(parties int) *Barrier {
	if parties <= 0 {
		panic(fmt.Sprintf("snet: non-positive parties %d", parties))
	}
	b := &Barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Parties reports the number of participants.
func (b *Barrier) Parties() int { return b.parties }

// Arrive blocks until all cells have arrived at the barrier, then
// releases them together — the S-net's wired-AND going high.
func (b *Barrier) Arrive() {
	b.mu.Lock()
	gen := b.gen
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.gen++
		b.count++
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// Count reports how many barrier episodes have completed.
func (b *Barrier) Count() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.count
}

// Domains splits the S-net into independent barrier domains, one per
// machine partition. Cells are routed to their domain's barrier by a
// static cell→domain map fixed at construction — the wired-AND tree is
// physically segmented, so a partition's barrier completes on its own
// cells only.
type Domains struct {
	of   []int32
	doms []*Barrier
}

// NewDomains builds one barrier per domain. of maps every cell to its
// domain index; sizes gives each domain's party count. The sizes must
// cover exactly the cells in the map.
func NewDomains(of []int32, sizes []int) *Domains {
	d := &Domains{of: append([]int32(nil), of...), doms: make([]*Barrier, len(sizes))}
	counted := make([]int, len(sizes))
	for cell, dom := range of {
		if dom < 0 || int(dom) >= len(sizes) {
			panic(fmt.Sprintf("snet: cell %d mapped to domain %d of %d", cell, dom, len(sizes)))
		}
		counted[dom]++
	}
	for i, n := range sizes {
		if counted[i] != n {
			panic(fmt.Sprintf("snet: domain %d sized %d but maps %d cells", i, n, counted[i]))
		}
		d.doms[i] = New(n)
	}
	return d
}

// Arrive blocks the cell until every cell of its domain has arrived.
func (d *Domains) Arrive(cell int) { d.doms[d.of[cell]].Arrive() }

// Domain returns domain i's barrier.
func (d *Domains) Domain(i int) *Barrier { return d.doms[i] }

// Len reports the number of barrier domains.
func (d *Domains) Len() int { return len(d.doms) }

// Count sums completed barrier episodes across all domains.
func (d *Domains) Count() int64 {
	var n int64
	for _, b := range d.doms {
		n += b.Count()
	}
	return n
}
