package snet

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBarrierReleasesTogether(t *testing.T) {
	const n = 8
	b := New(n)
	var before, after atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			before.Add(1)
			b.Arrive()
			if before.Load() != n {
				t.Error("released before all arrived")
			}
			after.Add(1)
		}()
	}
	wg.Wait()
	if after.Load() != n {
		t.Fatalf("after = %d", after.Load())
	}
	if b.Count() != 1 {
		t.Fatalf("count = %d", b.Count())
	}
}

func TestBarrierReusable(t *testing.T) {
	const n, rounds = 4, 50
	b := New(n)
	// Per-round counters prove no generation lapping.
	var counters [rounds]atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				counters[r].Add(1)
				b.Arrive()
				if got := counters[r].Load(); got != n {
					t.Errorf("round %d released with %d arrivals", r, got)
					return
				}
			}
		}()
	}
	wg.Wait()
	if b.Count() != rounds {
		t.Fatalf("count = %d", b.Count())
	}
}

func TestBarrierBlocksUntilLast(t *testing.T) {
	b := New(2)
	released := make(chan struct{})
	go func() {
		b.Arrive()
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("single arrival released a 2-party barrier")
	case <-time.After(10 * time.Millisecond):
	}
	b.Arrive()
	<-released
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}

// TestDomainsIndependent pins the partition-isolation property: a
// domain's barrier completes on its own cells only, even while the
// neighbor domain never arrives at all.
func TestDomainsIndependent(t *testing.T) {
	// Cells 0-3 in domain 0, cells 4-5 in domain 1.
	d := NewDomains([]int32{0, 0, 0, 0, 1, 1}, []int{4, 2})
	var wg sync.WaitGroup
	for cell := 0; cell < 4; cell++ {
		wg.Add(1)
		go func(cell int) {
			defer wg.Done()
			for r := 0; r < 20; r++ {
				d.Arrive(cell)
			}
		}(cell)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("domain 0 barrier waited on idle domain 1")
	}
	if got := d.Domain(0).Count(); got != 20 {
		t.Errorf("domain 0 count = %d, want 20", got)
	}
	if got := d.Domain(1).Count(); got != 0 {
		t.Errorf("domain 1 count = %d, want 0", got)
	}
	if got := d.Count(); got != 20 {
		t.Errorf("aggregate count = %d, want 20", got)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
}

func TestDomainsSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDomains([]int32{0, 0, 1}, []int{1, 2})
}

func TestSingleParty(t *testing.T) {
	b := New(1)
	for i := 0; i < 10; i++ {
		b.Arrive() // must never block
	}
	if b.Count() != 10 {
		t.Fatalf("count = %d", b.Count())
	}
}
