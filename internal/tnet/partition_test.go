package tnet

import (
	"testing"

	"ap1000plus/internal/msc"
	"ap1000plus/internal/topology"
)

// TestPartitionedSend pins the routing-isolation contract: with a
// partition map installed, intra-partition sends deliver normally and
// a cross-partition send panics — partitions own physically disjoint
// slices of the torus.
func TestPartitionedSend(t *testing.T) {
	tor := topology.MustTorus(2, 2)
	n := New(tor)
	got := make([]int, tor.Cells())
	for id := 0; id < tor.Cells(); id++ {
		id := topology.CellID(id)
		n.Attach(id, func(Packet) bool { got[id]++; return true })
	}
	// Cells 0,1 in partition 0; cells 2,3 in partition 1.
	n.SetPartitions([]int32{0, 0, 1, 1})

	if !n.Send(Packet{Head: msc.Command{Op: msc.OpPut, Src: 0, Dst: 1}}) {
		t.Fatal("intra-partition send rejected")
	}
	if !n.Send(Packet{Head: msc.Command{Op: msc.OpPut, Src: 3, Dst: 2}}) {
		t.Fatal("intra-partition send rejected")
	}
	if got[1] != 1 || got[2] != 1 {
		t.Fatalf("deliveries = %v", got)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("cross-partition send did not panic")
		}
	}()
	n.Send(Packet{Head: msc.Command{Op: msc.OpPut, Src: 0, Dst: 2}})
}

func TestPartitionMapSizeMismatchPanics(t *testing.T) {
	n := New(topology.MustTorus(2, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.SetPartitions([]int32{0, 0})
}
