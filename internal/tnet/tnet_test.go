package tnet

import (
	"sync"
	"testing"

	"ap1000plus/internal/mem"
	"ap1000plus/internal/msc"
	"ap1000plus/internal/topology"
)

func newNet(t *testing.T) (*Network, *topology.Torus) {
	t.Helper()
	tor := topology.MustTorus(2, 2)
	return New(tor), tor
}

func payload(t *testing.T, n int) *mem.Payload {
	t.Helper()
	sp, _ := mem.NewSpace(1 << 16)
	seg, _ := sp.Alloc("p", mem.Bytes, int64(n))
	for i := range seg.BytesData() {
		seg.BytesData()[i] = byte(i)
	}
	//apvet:ignore rawmem unit test of the network layer itself; no machine exists to issue a PUT
	p, err := mem.CapturePayload(sp, seg.Base(), mem.Contiguous(int64(n)))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSendDelivers(t *testing.T) {
	n, _ := newNet(t)
	var got []Packet
	for id := 0; id < 4; id++ {
		id := topology.CellID(id)
		n.Attach(id, func(p Packet) bool {
			if id == 2 {
				got = append(got, p)
			}
			return true
		})
	}
	n.Send(Packet{Head: msc.Command{Op: msc.OpPut, Src: 0, Dst: 2}, Payload: payload(t, 16)})
	if len(got) != 1 || got[0].Head.Src != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestSendOrderingSameSender(t *testing.T) {
	n, _ := newNet(t)
	var seen []int64
	for id := 0; id < 4; id++ {
		id := topology.CellID(id)
		n.Attach(id, func(p Packet) bool { seen = append(seen, p.Head.Tag); return true })
	}
	for i := 0; i < 10; i++ {
		n.Send(Packet{Head: msc.Command{Op: msc.OpPut, Src: 0, Dst: 1, Tag: int64(i)}})
	}
	for i, tag := range seen {
		if tag != int64(i) {
			t.Fatalf("order broken: %v", seen)
		}
	}
}

func TestStats(t *testing.T) {
	n, tor := newNet(t)
	var mu sync.Mutex
	for id := 0; id < 4; id++ {
		n.Attach(topology.CellID(id), func(Packet) bool { mu.Lock(); mu.Unlock(); return true })
	}
	n.Send(Packet{Head: msc.Command{Op: msc.OpPut, Src: 0, Dst: 3}, Payload: payload(t, 100)})
	n.Send(Packet{Head: msc.Command{Op: msc.OpGet, Src: 1, Dst: 2}})
	s := n.Stats()
	if s.Messages != 2 || s.Bytes != 100 {
		t.Fatalf("stats = %+v", s)
	}
	wantHops := int64(tor.Distance(0, 3) + tor.Distance(1, 2))
	if s.HopsTotal != wantHops {
		t.Fatalf("hops = %d, want %d", s.HopsTotal, wantHops)
	}
	if s.PerOp[msc.OpPut] != 1 || s.PerOp[msc.OpGet] != 1 {
		t.Fatalf("per-op = %v", s.PerOp)
	}
	if s.MeanDistance() != float64(wantHops)/2 {
		t.Fatalf("mean distance = %v", s.MeanDistance())
	}
}

func TestAttachErrors(t *testing.T) {
	n, _ := newNet(t)
	n.Attach(0, func(Packet) bool { return true })
	for _, f := range []func(){
		func() { n.Attach(0, func(Packet) bool { return true }) },  // duplicate
		func() { n.Attach(99, func(Packet) bool { return true }) }, // invalid cell
		func() { n.Attach(1, nil) },                                // nil handler
		func() { n.Send(Packet{Head: msc.Command{Dst: 99}}) },
		func() { n.Send(Packet{Head: msc.Command{Dst: 1}}) }, // unattached
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestConcurrentSenders(t *testing.T) {
	n, _ := newNet(t)
	var mu sync.Mutex
	count := 0
	for id := 0; id < 4; id++ {
		n.Attach(topology.CellID(id), func(Packet) bool {
			mu.Lock()
			count++
			mu.Unlock()
			return true
		})
	}
	var wg sync.WaitGroup
	for src := 0; src < 4; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				n.Send(Packet{Head: msc.Command{Src: topology.CellID(src), Dst: topology.CellID(i % 4)}})
			}
		}(src)
	}
	wg.Wait()
	if count != 400 {
		t.Fatalf("delivered %d", count)
	}
	if n.Stats().Messages != 400 {
		t.Fatalf("stats = %+v", n.Stats())
	}
}
