package tnet

import (
	"math/rand"
	"runtime"
	"testing"

	"ap1000plus/internal/msc"
	"ap1000plus/internal/topology"
)

// TestLinkImplsEquivalent runs the same seeded enqueue/drain schedule
// through both Link implementations and requires identical delivery
// sequences and matching counters — the link-level differential that
// keeps the lock-free RingLink pinned to the obviously-correct
// MutexLink.
func TestLinkImplsEquivalent(t *testing.T) {
	run := func(l Link) ([]int64, LinkStats) {
		rng := rand.New(rand.NewSource(99))
		var got []int64
		next := int64(0)
		for step := 0; step < 2000; step++ {
			burst := rng.Intn(7)
			for i := 0; i < burst; i++ {
				l.Enqueue(Packet{Head: msc.Command{Tag: next}})
				next++
			}
			l.Drain(rng.Intn(5), func(p Packet) { got = append(got, p.Head.Tag) })
		}
		l.Drain(0, func(p Packet) { got = append(got, p.Head.Tag) })
		if l.Pending() != 0 {
			t.Fatalf("%T: %d packets pending after full drain", l, l.Pending())
		}
		return got, l.Stats()
	}
	ringSeq, ringStats := run(NewRingLink(8))
	mtxSeq, mtxStats := run(NewMutexLink(8))
	if len(ringSeq) != len(mtxSeq) {
		t.Fatalf("delivery counts differ: ring %d, mutex %d", len(ringSeq), len(mtxSeq))
	}
	for i := range ringSeq {
		if ringSeq[i] != mtxSeq[i] {
			t.Fatalf("delivery %d differs: ring %d, mutex %d", i, ringSeq[i], mtxSeq[i])
		}
		if ringSeq[i] != int64(i) {
			t.Fatalf("delivery %d out of FIFO order: %d", i, ringSeq[i])
		}
	}
	if ringStats.Enqueued != mtxStats.Enqueued || ringStats.Drained != mtxStats.Drained {
		t.Errorf("stats differ: ring %+v, mutex %+v", ringStats, mtxStats)
	}
}

// TestRingWireOrderAndDrain drives the ring wire directly: cross- and
// same-shard sends preserve per-(src,dst) order, the wake callback
// fires for cross-shard traffic, and DrainInbox empties the links.
func TestRingWireOrderAndDrain(t *testing.T) {
	tor := topology.MustTorus(2, 2)
	n := New(tor)
	const shards = 2
	var woken [shards]int
	recvd := make(map[topology.CellID][]int64)
	for id := 0; id < tor.Cells(); id++ {
		id := topology.CellID(id)
		n.Attach(id, func(p Packet) bool {
			recvd[id] = append(recvd[id], p.Head.Tag)
			return true
		})
	}
	n.SetRingWire(shards, 4, func(s int) { woken[s]++ }, false, nil)

	// Cell 0 (shard 0) sends interleaved streams to cell 2 (shard 0,
	// inline) and cell 1 (shard 1, cross-shard).
	for i := int64(0); i < 100; i++ {
		n.Send(Packet{Head: msc.Command{Op: msc.OpPut, Src: 0, Dst: 2, Tag: i}})
		n.Send(Packet{Head: msc.Command{Op: msc.OpPut, Src: 0, Dst: 1, Tag: i}})
	}
	if got := len(recvd[2]); got != 100 {
		t.Fatalf("inline same-shard deliveries = %d, want 100", got)
	}
	if n.PendingPackets() != 100 {
		t.Fatalf("PendingPackets = %d, want 100", n.PendingPackets())
	}
	if woken[1] == 0 {
		t.Fatal("cross-shard sends never woke the consuming shard")
	}
	for n.PendingPackets() > 0 {
		if n.DrainInbox(1, 16) == 0 {
			runtime.Gosched()
		}
	}
	for _, dst := range []topology.CellID{1, 2} {
		for i, tag := range recvd[dst] {
			if tag != int64(i) {
				t.Fatalf("cell %d delivery %d out of order: tag %d", dst, i, tag)
			}
		}
	}
	st := n.Stats()
	if st.Messages != 200 || st.PerOp[msc.OpPut] != 200 {
		t.Errorf("stats: %d messages, %d puts, want 200/200", st.Messages, st.PerOp[msc.OpPut])
	}
	if ls := n.LinkStatsTotal(); ls.Enqueued != 100 || ls.Drained != 100 {
		t.Errorf("link stats: %+v, want 100 enqueued and drained", ls)
	}
}
