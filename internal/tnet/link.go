package tnet

import (
	"sync"
	"sync/atomic"

	"ap1000plus/internal/ring"
)

// Link is one direction of a T-net conduit between a producing and a
// consuming delivery shard. Enqueue never blocks and never fails (a
// full fast path spills, as the hardware spills to DRAM); the owning
// consumer Drains in FIFO order. The SPSC contract applies per link:
// one producing shard calls Enqueue, one consuming shard calls Drain.
// Two implementations exist — the lock-free RingLink the ring wire
// runs on, and the mutex-guarded MutexLink kept as the
// obviously-correct reference for differential testing
// (TestLinkImplsEquivalent here; the machine-level wire differential
// compares whole wire builds).
type Link interface {
	// Enqueue appends a packet (producer side).
	Enqueue(Packet)
	// Drain delivers up to max pending packets to deliver in FIFO
	// order and reports how many (consumer side). max <= 0 drains
	// everything pending.
	Drain(max int, deliver func(Packet)) int
	// Pending reports buffered packets (approximate off-shard).
	Pending() int
	// Stats snapshots the link's counters.
	Stats() LinkStats
}

// LinkStats counts one link's traffic.
type LinkStats struct {
	Enqueued int64
	Drained  int64
	Spills   int64 // enqueues that overflowed the fast path
}

// RingLink is the lock-free Link: an SPSC ring with mutex-guarded
// spill overflow (ring.Overflow), so the producer never blocks the
// consumer and vice versa.
type RingLink struct {
	q        *ring.Overflow[Packet]
	enqueued atomic.Int64
	drained  atomic.Int64
}

// NewRingLink builds a RingLink whose fast path holds at least
// capacity packets.
func NewRingLink(capacity int) *RingLink {
	return &RingLink{q: ring.NewOverflow[Packet](capacity)}
}

func (l *RingLink) Enqueue(p Packet) {
	l.q.Push(p)
	l.enqueued.Add(1)
}

func (l *RingLink) Drain(max int, deliver func(Packet)) int {
	n := 0
	for max <= 0 || n < max {
		p, ok := l.q.Pop()
		if !ok {
			break
		}
		deliver(p)
		n++
	}
	if n > 0 {
		l.drained.Add(int64(n))
	}
	return n
}

func (l *RingLink) Pending() int { return l.q.Len() }

func (l *RingLink) Stats() LinkStats {
	return LinkStats{
		Enqueued: l.enqueued.Load(),
		Drained:  l.drained.Load(),
		Spills:   l.q.Spills(),
	}
}

// MutexLink is the reference Link: one mutex around a slice FIFO.
// Semantically identical to RingLink, structurally too simple to be
// wrong — the differential partner that keeps the lock-free build
// honest.
type MutexLink struct {
	mu    sync.Mutex
	buf   []Packet
	head  int
	stats LinkStats
}

// NewMutexLink builds a MutexLink; capacity is advisory only.
func NewMutexLink(capacity int) *MutexLink {
	return &MutexLink{buf: make([]Packet, 0, capacity)}
}

func (l *MutexLink) Enqueue(p Packet) {
	l.mu.Lock()
	l.buf = append(l.buf, p)
	l.stats.Enqueued++
	l.mu.Unlock()
}

func (l *MutexLink) Drain(max int, deliver func(Packet)) int {
	n := 0
	for max <= 0 || n < max {
		l.mu.Lock()
		if l.head >= len(l.buf) {
			l.buf = l.buf[:0]
			l.head = 0
			l.mu.Unlock()
			break
		}
		p := l.buf[l.head]
		l.buf[l.head] = Packet{}
		l.head++
		l.stats.Drained++
		l.mu.Unlock()
		deliver(p)
		n++
	}
	return n
}

func (l *MutexLink) Pending() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf) - l.head
}

func (l *MutexLink) Stats() LinkStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}
