package tnet

// In-network combining of remote atomics (the Ultracomputer
// fetch-and-add design, carried to exascale by modern in-network
// computing): on their way toward the owning cell, same-address
// combinable operations meet at combining stations — one per T-net
// switch level of the route's fan-in tree — and merge into a single
// request. One wire message updates memory once with the folded
// operand; the reply de-combines on the way down, handing every
// participant the fetch result it would have seen had the requests
// executed back-to-back in join order. A hot counter hammered by all
// n cells costs O(log n)-ish messages instead of O(n).
//
// The combiner holds only the tree bookkeeping; the machine layer
// drives it (Submit) and resolves replies (walking the returned
// AtomNode). Joining never blocks: a controller either appends to an
// open station and returns immediately, or becomes the station's
// master, holds it open for one scheduling quantum so siblings can
// join, and carries the merged batch up the next level.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"ap1000plus/internal/mc"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/topology"
)

// AtomNode is one node of a combining tree. A leaf is one cell's
// original request (Cell, Tag, its own operand in Delta); an interior
// node is a closed station batch whose Delta folds the whole
// subtree's operands in join order (Kids[0] is the master that opened
// the station).
type AtomNode struct {
	Cell  topology.CellID
	Tag   int64
	Delta int64
	Kids  []*AtomNode
}

// stationKey addresses one combining station: requests meet when they
// share the switch level, the level's cell group on the way to the
// owner, the owner, the word address and the operation.
type stationKey struct {
	level int
	group int
	dst   topology.CellID
	addr  mem.Addr
	op    mc.AtomicOp
}

// Combiner is the network's combining-station state.
type Combiner struct {
	levels   int
	mu       sync.Mutex
	open     map[stationKey]*AtomNode
	combined atomic.Int64
}

// NewCombiner sizes the tree for the machine: ceil(log2(cells))
// switch levels, so the fan-in halves the contender groups per level.
func NewCombiner(cells int) *Combiner {
	levels := 0
	for n := 1; n < cells; n <<= 1 {
		levels++
	}
	return &Combiner{levels: levels, open: make(map[stationKey]*AtomNode)}
}

// Submit carries one combinable request up the tree on behalf of cell
// from. If the request joins an open station it is absorbed — no wire
// message — and Submit returns (nil, false); the station's master
// will de-combine this request's result out of its own reply.
// Otherwise the caller masters a station at every level and Submit
// returns the root batch the caller must transmit as one combined
// request (root.Delta is the folded operand).
func (cb *Combiner) Submit(from, dst topology.CellID, addr mem.Addr, op mc.AtomicOp, tag, delta int64) (*AtomNode, bool) {
	node := &AtomNode{Cell: from, Tag: tag, Delta: delta}
	for level := 0; level < cb.levels; level++ {
		key := stationKey{level, int(from) >> (level + 1), dst, addr, op}
		cb.mu.Lock()
		if open := cb.open[key]; open != nil {
			open.Kids = append(open.Kids, node)
			open.Delta = mc.CombineAtomic(op, open.Delta, node.Delta)
			cb.mu.Unlock()
			cb.combined.Add(1)
			return nil, false
		}
		parent := &AtomNode{Delta: node.Delta, Kids: []*AtomNode{node}}
		cb.open[key] = parent
		cb.mu.Unlock()
		// Hold the station open for one scheduling quantum so sibling
		// controllers in flight can join; correctness does not depend
		// on who makes it in.
		runtime.Gosched()
		cb.mu.Lock()
		delete(cb.open, key)
		cb.mu.Unlock()
		node = parent
	}
	return node, true
}

// Combined reports how many requests were absorbed into stations
// (each saved one wire round trip).
func (cb *Combiner) Combined() int64 { return cb.combined.Load() }
