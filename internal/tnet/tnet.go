// Package tnet models the AP1000+'s point-to-point torus network.
//
// The T-net routes statically (dimension order) and therefore
// delivers messages between a given pair of cells in order — the
// property S4.1's GET-as-acknowledge trick depends on. The functional
// simulator preserves that property structurally, in one of two wire
// builds:
//
//   - The sync (mutex) wire: each cell's single send controller
//     processes its commands FIFO and delivers each packet
//     synchronously on the calling goroutine, so two messages from A
//     to B can never overtake each other. This is also the only build
//     that can report a per-attempt verdict to the reliable layer, so
//     fault plans always run on it.
//
//   - The ring wire (SetRingWire): cells are partitioned over a small
//     number of delivery shards, and each ordered pair of shards gets
//     one Link — an SPSC ring with spill (RingLink). A packet from A
//     to B goes over the (shard(A), shard(B)) link and is delivered
//     by B's owning shard; A's commands are processed FIFO by A's own
//     shard (every packet with Src=A is transmitted from that shard),
//     and the link preserves FIFO, so the A→B stream stays in order.
//     Same-shard traffic is delivered inline, which is trivially in
//     order.
//
// Link bandwidth (25 MB/s x 4 links per cell) and hop latency matter
// only to the timing model (MLSim); here the network accounts traffic
// statistics and hands packets to the destination's receive
// controller.
package tnet

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ap1000plus/internal/fault"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/msc"
	"ap1000plus/internal/topology"
)

// LinkBandwidth is the physical per-link bandwidth in bytes/second
// (Table 1 and Figure 5: "25MB/s x 4").
const LinkBandwidth = 25 << 20

// Packet is a routed message: an MSC+ command header plus captured
// payload.
type Packet struct {
	Head    msc.Command
	Payload *mem.Payload
	// SanTid identifies the sanitizer thread executing this packet's
	// delivery (the sending controller — delivery is synchronous on
	// its goroutine). -1 when the machine is not sanitized.
	SanTid int
	// FreeOnDeliver transfers payload ownership to the wire: the ring
	// wire releases the payload to its pool after the destination's
	// handler returns. Senders set it where the sync wire would have
	// released after Send; it is never set on the sync wire (the
	// sender still owns the payload there) or under a fault plan
	// (retransmission needs the payload alive).
	FreeOnDeliver bool
}

// Handler consumes a packet at its destination cell — the receive
// controller of the destination's MSC+. It reports whether the packet
// was accepted (checksum verified, fresh or duplicate, DMA succeeded);
// the reliable layer retransmits on false. Without a fault plan the
// return value is unused.
type Handler func(Packet) bool

// Stats aggregates network traffic.
type Stats struct {
	Messages  int64
	Bytes     int64 // payload bytes
	HopsTotal int64 // sum of routing distances, for mean distance
	// PerOp counts messages by operation.
	PerOp [msc.NumOps]int64
}

// MeanDistance reports the average routing distance in hops.
func (s Stats) MeanDistance() float64 {
	if s.Messages == 0 {
		return 0
	}
	return float64(s.HopsTotal) / float64(s.Messages)
}

// Network is the T-net fabric connecting every cell's MSC+.
type Network struct {
	torus    *topology.Torus
	mu       sync.Mutex
	handlers []Handler
	stats    Stats
	// inj, when non-nil, decides a wire fate for every transmission
	// attempt (fault layer). limbo holds reordered packets per
	// (src, dst, class) stream; a held packet is released — late, hence
	// the reorder — right after the next delivered packet of its own
	// stream, which keeps every release on the stream's single sending
	// goroutine (or in FlushHeld's quiescent drain).
	inj   *fault.Injector
	limbo map[streamKey][]Packet
	// ring, when non-nil, replaces synchronous delivery with the
	// lock-free ring wire (SetRingWire). Mutually exclusive with inj.
	ring *ringWire
	// partOf, when non-nil, maps each cell to its machine partition;
	// a cross-partition Send panics — partitions have physically
	// disjoint T-net routing. Written once before traffic flows.
	partOf []int32
}

// ringWire is the lock-free wire: one Link per ordered shard pair,
// stats sharded so the hot path takes no lock.
type ringWire struct {
	shards int
	// links[consumer][producer]: the conduit from producing shard to
	// consuming shard.
	links [][]Link
	// wake nudges a consuming shard's delivery worker after a
	// cross-shard enqueue.
	wake func(shard int)
	// pending counts enqueued-but-undelivered cross-shard packets; a
	// packet is uncounted only after its handler has returned, so the
	// machine's drain barrier (inflight + pending both zero) cannot
	// fire while a delivery is still executing.
	pending atomic.Int64
	// track, when non-nil, mirrors pending per destination: +1 before
	// a cross-shard enqueue, -1 after the handler returns. The machine
	// points it at the destination partition's quiesce counter so each
	// partition drains independently.
	track func(dst topology.CellID, delta int64)
	stats []wireShardStats
}

// wireShardStats is one shard's traffic counters, padded so shards do
// not false-share cache lines.
type wireShardStats struct {
	messages atomic.Int64
	bytes    atomic.Int64
	hops     atomic.Int64
	perOp    [msc.NumOps]atomic.Int64
	_        [64]byte
}

// streamKey identifies one (src, dst, class) wire stream.
type streamKey struct {
	src, dst topology.CellID
	op       msc.Op
}

// New builds a T-net over the torus.
func New(t *topology.Torus) *Network {
	return &Network{torus: t, handlers: make([]Handler, t.Cells())}
}

// Torus exposes the network geometry.
func (n *Network) Torus() *topology.Torus { return n.torus }

// Attach registers the receive controller for a cell. Must be called
// for every cell before traffic flows.
func (n *Network) Attach(id topology.CellID, h Handler) {
	if !n.torus.Valid(id) {
		panic(fmt.Sprintf("tnet: attach to invalid cell %d", id))
	}
	if h == nil {
		panic("tnet: nil handler")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.handlers[id] != nil {
		panic(fmt.Sprintf("tnet: cell %d already attached", id))
	}
	n.handlers[id] = h
}

// SetPartitions installs the cell→partition map. A Send whose source
// and destination lie in different partitions panics: partitioned
// multi-user operation gives each partition a physically disjoint
// slice of the torus, so no route crosses the boundary. Install
// before traffic flows; nil restores the single-partition machine.
func (n *Network) SetPartitions(of []int32) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if of != nil && len(of) != n.torus.Cells() {
		panic(fmt.Sprintf("tnet: partition map covers %d cells of %d", len(of), n.torus.Cells()))
	}
	n.partOf = of
}

// SetFault installs the fault injector; every subsequent Send asks it
// for a wire fate. Install before traffic flows.
func (n *Network) SetFault(inj *fault.Injector) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if inj != nil && n.ring != nil {
		panic("tnet: fault injection requires the sync wire (per-attempt verdicts)")
	}
	n.inj = inj
	if inj != nil && n.limbo == nil {
		n.limbo = make(map[streamKey][]Packet)
	}
}

// SetRingWire switches the network onto the lock-free ring wire:
// cells are partitioned over shards delivery shards (cell id mod
// shards), each ordered shard pair gets one Link with a linkCap-deep
// fast path, and wake is called with the consuming shard after every
// cross-shard enqueue. track, when non-nil, mirrors the pending
// counter per destination cell (+1 before enqueue, -1 after the
// handler returns) — the machine's per-partition drain doorbell.
// mutexLinks selects the reference MutexLink build instead of
// RingLink (differential testing). Install before traffic flows;
// incompatible with a fault injector — the reliable layer needs the
// sync wire's per-attempt verdict.
func (n *Network) SetRingWire(shards, linkCap int, wake func(shard int), mutexLinks bool, track func(dst topology.CellID, delta int64)) {
	if shards <= 0 {
		panic(fmt.Sprintf("tnet: %d delivery shards", shards))
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.inj != nil {
		panic("tnet: ring wire requires no fault injector")
	}
	if wake == nil {
		wake = func(int) {}
	}
	rw := &ringWire{
		shards: shards,
		links:  make([][]Link, shards),
		wake:   wake,
		track:  track,
		stats:  make([]wireShardStats, shards),
	}
	for cons := range rw.links {
		rw.links[cons] = make([]Link, shards)
		for prod := range rw.links[cons] {
			if mutexLinks {
				rw.links[cons][prod] = NewMutexLink(linkCap)
			} else {
				rw.links[cons][prod] = NewRingLink(linkCap)
			}
		}
	}
	n.ring = rw
}

// Send routes a packet to its destination and runs the destination's
// receive controller on the calling goroutine. Ordering guarantee:
// calls from the same goroutine to the same destination are processed
// in call order (static routing, in-order links). It reports whether
// the destination accepted the packet; with a fault plan installed the
// packet may instead be dropped, corrupted, duplicated or held back,
// and the reliable layer reads false as "retransmit". Every call
// counts as one wire message (attempts, not unique packets).
func (n *Network) Send(p Packet) bool {
	dst := p.Head.Dst
	if !n.torus.Valid(dst) {
		panic(fmt.Sprintf("tnet: send to invalid cell %d", dst))
	}
	if of := n.partOf; of != nil && of[p.Head.Src] != of[dst] {
		panic(fmt.Sprintf("tnet: cross-partition send %d->%d (partition %d -> %d): partitions have disjoint T-net routing",
			p.Head.Src, dst, of[p.Head.Src], of[dst]))
	}
	if rw := n.ring; rw != nil {
		return n.sendRing(rw, p)
	}
	n.mu.Lock()
	h := n.handlers[dst]
	inj := n.inj
	n.stats.Messages++
	n.stats.Bytes += p.Payload.Size()
	n.stats.HopsTotal += int64(n.torus.Distance(p.Head.Src, dst))
	if op := int(p.Head.Op); op < len(n.stats.PerOp) {
		n.stats.PerOp[op]++
	}
	n.mu.Unlock()
	if h == nil {
		panic(fmt.Sprintf("tnet: cell %d has no receive controller", dst))
	}
	if inj == nil {
		return h(p)
	}
	return n.faultySend(inj, h, p)
}

// sendRing is Send on the lock-free wire. Stats go to the sending
// shard's padded counters; same-shard packets are delivered inline on
// the calling worker (trivially in order), cross-shard packets ride
// the (producer, consumer) link and the consuming shard is woken.
// There is no fault injector on this wire, so the verdict is always
// the handler's own.
func (n *Network) sendRing(rw *ringWire, p Packet) bool {
	prod := int(p.Head.Src) % rw.shards
	cons := int(p.Head.Dst) % rw.shards
	s := &rw.stats[prod]
	s.messages.Add(1)
	s.bytes.Add(p.Payload.Size())
	s.hops.Add(int64(n.torus.Distance(p.Head.Src, p.Head.Dst)))
	if op := int(p.Head.Op); op < len(s.perOp) {
		s.perOp[op].Add(1)
	}
	if prod == cons {
		return n.deliverRing(p)
	}
	// Count before the enqueue: once the packet is in the link the
	// consumer may deliver and decrement at any moment, and the
	// counters must never dip to zero with a delivery outstanding.
	rw.pending.Add(1)
	if rw.track != nil {
		rw.track(p.Head.Dst, 1)
	}
	rw.links[cons][prod].Enqueue(p)
	rw.wake(cons)
	return true
}

// deliverRing hands a packet to its destination's receive controller
// and, when the sender transferred ownership, returns the payload to
// its pool. The handlers slice is written only during Attach, before
// any worker starts, so the read needs no lock.
func (n *Network) deliverRing(p Packet) bool {
	h := n.handlers[p.Head.Dst]
	if h == nil {
		panic(fmt.Sprintf("tnet: cell %d has no receive controller", p.Head.Dst))
	}
	ok := h(p)
	if p.FreeOnDeliver && p.Payload != nil {
		p.Payload.Release()
	}
	return ok
}

// DrainInbox delivers up to max pending packets destined for the
// given consuming shard (across all producing shards' links) and
// reports how many. Only the shard's owning worker may call it — it
// is the consumer side of the shard's SPSC links. The pending counter
// is decremented after each handler returns, so a quiesce barrier on
// PendingPackets cannot pass mid-delivery.
func (n *Network) DrainInbox(shard, max int) int {
	rw := n.ring
	if rw == nil {
		return 0
	}
	total := 0
	for prod := 0; prod < rw.shards; prod++ {
		total += rw.links[shard][prod].Drain(max, func(p Packet) {
			n.deliverRing(p)
			rw.pending.Add(-1)
			if rw.track != nil {
				rw.track(p.Head.Dst, -1)
			}
		})
	}
	return total
}

// PendingPackets reports cross-shard packets enqueued on the ring
// wire whose delivery has not yet completed; 0 on the sync wire.
func (n *Network) PendingPackets() int64 {
	if rw := n.ring; rw != nil {
		return rw.pending.Load()
	}
	return 0
}

// LinkStatsTotal aggregates every ring-wire link's counters; zero on
// the sync wire.
func (n *Network) LinkStatsTotal() LinkStats {
	var t LinkStats
	if rw := n.ring; rw != nil {
		for _, row := range rw.links {
			for _, l := range row {
				s := l.Stats()
				t.Enqueued += s.Enqueued
				t.Drained += s.Drained
				t.Spills += s.Spills
			}
		}
	}
	return t
}

// faultySend applies the injected wire fate to one transmission
// attempt. Held (reordered) packets of the same stream are released
// after any delivered attempt of that stream, so a held packet always
// arrives later than a successor from its own stream — an observable
// reorder that the receive-side dedup then collapses.
func (n *Network) faultySend(inj *fault.Injector, h Handler, p Packet) bool {
	key := streamKey{p.Head.Src, p.Head.Dst, p.Head.Op}
	fate := inj.Decide(int(p.Head.Src), int(p.Head.Dst), int(p.Head.Op))
	switch fate.Kind {
	case fault.KindDrop:
		return false
	case fault.KindReorder:
		n.mu.Lock()
		n.limbo[key] = append(n.limbo[key], p)
		n.mu.Unlock()
		// The sender sees a timeout and retransmits; the held copy
		// arrives later as a duplicate.
		return false
	case fault.KindCorrupt:
		ok := h(corruptPacket(p, fate.CorruptBit))
		n.releaseHeld(key, h)
		return ok
	case fault.KindDup:
		ok := h(p)
		h(p)
		n.releaseHeld(key, h)
		return ok
	default: // KindNone, KindDelay (the functional net is untimed)
		ok := h(p)
		n.releaseHeld(key, h)
		return ok
	}
}

// corruptPacket damages the delivered copy of a packet: one payload
// bit flips, or — for a payloadless packet — the checksum itself is
// poisoned. The caller's packet (and payload) stay pristine for
// retransmission.
func corruptPacket(p Packet, bit uint64) Packet {
	if clone := p.Payload.CorruptClone(bit); clone != nil {
		p.Payload = clone
	} else {
		p.Head.Sum ^= 1 << (bit % 64)
	}
	return p
}

// releaseHeld delivers every packet held on the stream, after the
// in-flight delivery that triggered the release. The caller is the
// stream's single sending goroutine, so a held packet can never race
// its own retransmission.
func (n *Network) releaseHeld(key streamKey, h Handler) {
	n.mu.Lock()
	held := n.limbo[key]
	if held == nil {
		n.mu.Unlock()
		return
	}
	delete(n.limbo, key)
	n.mu.Unlock()
	for _, q := range held {
		h(q)
	}
}

// FlushHeld delivers every packet still held in limbo and reports how
// many it released. The machine calls it at drain time, when all
// controllers are quiescent; a flushed packet that was retransmitted
// successfully dedups away, one whose retransmissions all failed
// finally lands.
func (n *Network) FlushHeld() int { return n.FlushHeldWhere(nil) }

// FlushHeldWhere is FlushHeld restricted to streams whose (src, dst)
// the match function accepts; nil accepts everything. A partition
// drains only its own streams, leaving a neighbor's held packets for
// that neighbor's own drain.
func (n *Network) FlushHeldWhere(match func(src, dst topology.CellID) bool) int {
	n.mu.Lock()
	var all []Packet
	for key, held := range n.limbo {
		if match != nil && !match(key.src, key.dst) {
			continue
		}
		all = append(all, held...)
		delete(n.limbo, key)
	}
	n.mu.Unlock()
	for _, p := range all {
		n.mu.Lock()
		h := n.handlers[p.Head.Dst]
		n.mu.Unlock()
		h(p)
	}
	return len(all)
}

// Stats snapshots traffic counters, aggregating the ring wire's
// per-shard counters when it is active.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	s := n.stats
	rw := n.ring
	n.mu.Unlock()
	if rw != nil {
		for i := range rw.stats {
			sh := &rw.stats[i]
			s.Messages += sh.messages.Load()
			s.Bytes += sh.bytes.Load()
			s.HopsTotal += sh.hops.Load()
			for op := range sh.perOp {
				s.PerOp[op] += sh.perOp[op].Load()
			}
		}
	}
	return s
}
