// Package tnet models the AP1000+'s point-to-point torus network.
//
// The T-net routes statically (dimension order) and therefore
// delivers messages between a given pair of cells in order — the
// property S4.1's GET-as-acknowledge trick depends on. The functional
// simulator preserves that property structurally: each cell's single
// send controller processes its commands FIFO and delivers each
// packet synchronously, so two messages from A to B can never
// overtake each other. Link bandwidth (25 MB/s x 4 links per cell)
// and hop latency matter only to the timing model (MLSim); here the
// network accounts traffic statistics and hands packets to the
// destination's receive controller.
package tnet

import (
	"fmt"
	"sync"

	"ap1000plus/internal/fault"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/msc"
	"ap1000plus/internal/topology"
)

// LinkBandwidth is the physical per-link bandwidth in bytes/second
// (Table 1 and Figure 5: "25MB/s x 4").
const LinkBandwidth = 25 << 20

// Packet is a routed message: an MSC+ command header plus captured
// payload.
type Packet struct {
	Head    msc.Command
	Payload *mem.Payload
	// SanTid identifies the sanitizer thread executing this packet's
	// delivery (the sending controller — delivery is synchronous on
	// its goroutine). -1 when the machine is not sanitized.
	SanTid int
}

// Handler consumes a packet at its destination cell — the receive
// controller of the destination's MSC+. It reports whether the packet
// was accepted (checksum verified, fresh or duplicate, DMA succeeded);
// the reliable layer retransmits on false. Without a fault plan the
// return value is unused.
type Handler func(Packet) bool

// Stats aggregates network traffic.
type Stats struct {
	Messages  int64
	Bytes     int64 // payload bytes
	HopsTotal int64 // sum of routing distances, for mean distance
	// PerOp counts messages by operation.
	PerOp [msc.NumOps]int64
}

// MeanDistance reports the average routing distance in hops.
func (s Stats) MeanDistance() float64 {
	if s.Messages == 0 {
		return 0
	}
	return float64(s.HopsTotal) / float64(s.Messages)
}

// Network is the T-net fabric connecting every cell's MSC+.
type Network struct {
	torus    *topology.Torus
	mu       sync.Mutex
	handlers []Handler
	stats    Stats
	// inj, when non-nil, decides a wire fate for every transmission
	// attempt (fault layer). limbo holds reordered packets per
	// (src, dst, class) stream; a held packet is released — late, hence
	// the reorder — right after the next delivered packet of its own
	// stream, which keeps every release on the stream's single sending
	// goroutine (or in FlushHeld's quiescent drain).
	inj   *fault.Injector
	limbo map[streamKey][]Packet
}

// streamKey identifies one (src, dst, class) wire stream.
type streamKey struct {
	src, dst topology.CellID
	op       msc.Op
}

// New builds a T-net over the torus.
func New(t *topology.Torus) *Network {
	return &Network{torus: t, handlers: make([]Handler, t.Cells())}
}

// Torus exposes the network geometry.
func (n *Network) Torus() *topology.Torus { return n.torus }

// Attach registers the receive controller for a cell. Must be called
// for every cell before traffic flows.
func (n *Network) Attach(id topology.CellID, h Handler) {
	if !n.torus.Valid(id) {
		panic(fmt.Sprintf("tnet: attach to invalid cell %d", id))
	}
	if h == nil {
		panic("tnet: nil handler")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.handlers[id] != nil {
		panic(fmt.Sprintf("tnet: cell %d already attached", id))
	}
	n.handlers[id] = h
}

// SetFault installs the fault injector; every subsequent Send asks it
// for a wire fate. Install before traffic flows.
func (n *Network) SetFault(inj *fault.Injector) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.inj = inj
	if inj != nil && n.limbo == nil {
		n.limbo = make(map[streamKey][]Packet)
	}
}

// Send routes a packet to its destination and runs the destination's
// receive controller on the calling goroutine. Ordering guarantee:
// calls from the same goroutine to the same destination are processed
// in call order (static routing, in-order links). It reports whether
// the destination accepted the packet; with a fault plan installed the
// packet may instead be dropped, corrupted, duplicated or held back,
// and the reliable layer reads false as "retransmit". Every call
// counts as one wire message (attempts, not unique packets).
func (n *Network) Send(p Packet) bool {
	dst := p.Head.Dst
	if !n.torus.Valid(dst) {
		panic(fmt.Sprintf("tnet: send to invalid cell %d", dst))
	}
	n.mu.Lock()
	h := n.handlers[dst]
	inj := n.inj
	n.stats.Messages++
	n.stats.Bytes += p.Payload.Size()
	n.stats.HopsTotal += int64(n.torus.Distance(p.Head.Src, dst))
	if op := int(p.Head.Op); op < len(n.stats.PerOp) {
		n.stats.PerOp[op]++
	}
	n.mu.Unlock()
	if h == nil {
		panic(fmt.Sprintf("tnet: cell %d has no receive controller", dst))
	}
	if inj == nil {
		return h(p)
	}
	return n.faultySend(inj, h, p)
}

// faultySend applies the injected wire fate to one transmission
// attempt. Held (reordered) packets of the same stream are released
// after any delivered attempt of that stream, so a held packet always
// arrives later than a successor from its own stream — an observable
// reorder that the receive-side dedup then collapses.
func (n *Network) faultySend(inj *fault.Injector, h Handler, p Packet) bool {
	key := streamKey{p.Head.Src, p.Head.Dst, p.Head.Op}
	fate := inj.Decide(int(p.Head.Src), int(p.Head.Dst), int(p.Head.Op))
	switch fate.Kind {
	case fault.KindDrop:
		return false
	case fault.KindReorder:
		n.mu.Lock()
		n.limbo[key] = append(n.limbo[key], p)
		n.mu.Unlock()
		// The sender sees a timeout and retransmits; the held copy
		// arrives later as a duplicate.
		return false
	case fault.KindCorrupt:
		ok := h(corruptPacket(p, fate.CorruptBit))
		n.releaseHeld(key, h)
		return ok
	case fault.KindDup:
		ok := h(p)
		h(p)
		n.releaseHeld(key, h)
		return ok
	default: // KindNone, KindDelay (the functional net is untimed)
		ok := h(p)
		n.releaseHeld(key, h)
		return ok
	}
}

// corruptPacket damages the delivered copy of a packet: one payload
// bit flips, or — for a payloadless packet — the checksum itself is
// poisoned. The caller's packet (and payload) stay pristine for
// retransmission.
func corruptPacket(p Packet, bit uint64) Packet {
	if clone := p.Payload.CorruptClone(bit); clone != nil {
		p.Payload = clone
	} else {
		p.Head.Sum ^= 1 << (bit % 64)
	}
	return p
}

// releaseHeld delivers every packet held on the stream, after the
// in-flight delivery that triggered the release. The caller is the
// stream's single sending goroutine, so a held packet can never race
// its own retransmission.
func (n *Network) releaseHeld(key streamKey, h Handler) {
	n.mu.Lock()
	held := n.limbo[key]
	if held == nil {
		n.mu.Unlock()
		return
	}
	delete(n.limbo, key)
	n.mu.Unlock()
	for _, q := range held {
		h(q)
	}
}

// FlushHeld delivers every packet still held in limbo and reports how
// many it released. The machine calls it at drain time, when all
// controllers are quiescent; a flushed packet that was retransmitted
// successfully dedups away, one whose retransmissions all failed
// finally lands.
func (n *Network) FlushHeld() int {
	n.mu.Lock()
	var all []Packet
	for key, held := range n.limbo {
		all = append(all, held...)
		delete(n.limbo, key)
	}
	n.mu.Unlock()
	for _, p := range all {
		n.mu.Lock()
		h := n.handlers[p.Head.Dst]
		n.mu.Unlock()
		h(p)
	}
	return len(all)
}

// Stats snapshots traffic counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}
