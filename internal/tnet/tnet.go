// Package tnet models the AP1000+'s point-to-point torus network.
//
// The T-net routes statically (dimension order) and therefore
// delivers messages between a given pair of cells in order — the
// property S4.1's GET-as-acknowledge trick depends on. The functional
// simulator preserves that property structurally: each cell's single
// send controller processes its commands FIFO and delivers each
// packet synchronously, so two messages from A to B can never
// overtake each other. Link bandwidth (25 MB/s x 4 links per cell)
// and hop latency matter only to the timing model (MLSim); here the
// network accounts traffic statistics and hands packets to the
// destination's receive controller.
package tnet

import (
	"fmt"
	"sync"

	"ap1000plus/internal/mem"
	"ap1000plus/internal/msc"
	"ap1000plus/internal/topology"
)

// LinkBandwidth is the physical per-link bandwidth in bytes/second
// (Table 1 and Figure 5: "25MB/s x 4").
const LinkBandwidth = 25 << 20

// Packet is a routed message: an MSC+ command header plus captured
// payload.
type Packet struct {
	Head    msc.Command
	Payload *mem.Payload
	// SanTid identifies the sanitizer thread executing this packet's
	// delivery (the sending controller — delivery is synchronous on
	// its goroutine). -1 when the machine is not sanitized.
	SanTid int
}

// Handler consumes a packet at its destination cell — the receive
// controller of the destination's MSC+.
type Handler func(Packet)

// Stats aggregates network traffic.
type Stats struct {
	Messages  int64
	Bytes     int64 // payload bytes
	HopsTotal int64 // sum of routing distances, for mean distance
	// PerOp counts messages by operation.
	PerOp [8]int64
}

// MeanDistance reports the average routing distance in hops.
func (s Stats) MeanDistance() float64 {
	if s.Messages == 0 {
		return 0
	}
	return float64(s.HopsTotal) / float64(s.Messages)
}

// Network is the T-net fabric connecting every cell's MSC+.
type Network struct {
	torus    *topology.Torus
	mu       sync.Mutex
	handlers []Handler
	stats    Stats
}

// New builds a T-net over the torus.
func New(t *topology.Torus) *Network {
	return &Network{torus: t, handlers: make([]Handler, t.Cells())}
}

// Torus exposes the network geometry.
func (n *Network) Torus() *topology.Torus { return n.torus }

// Attach registers the receive controller for a cell. Must be called
// for every cell before traffic flows.
func (n *Network) Attach(id topology.CellID, h Handler) {
	if !n.torus.Valid(id) {
		panic(fmt.Sprintf("tnet: attach to invalid cell %d", id))
	}
	if h == nil {
		panic("tnet: nil handler")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.handlers[id] != nil {
		panic(fmt.Sprintf("tnet: cell %d already attached", id))
	}
	n.handlers[id] = h
}

// Send routes a packet to its destination and runs the destination's
// receive controller on the calling goroutine. Ordering guarantee:
// calls from the same goroutine to the same destination are processed
// in call order (static routing, in-order links).
func (n *Network) Send(p Packet) {
	dst := p.Head.Dst
	if !n.torus.Valid(dst) {
		panic(fmt.Sprintf("tnet: send to invalid cell %d", dst))
	}
	n.mu.Lock()
	h := n.handlers[dst]
	n.stats.Messages++
	n.stats.Bytes += p.Payload.Size()
	n.stats.HopsTotal += int64(n.torus.Distance(p.Head.Src, dst))
	if op := int(p.Head.Op); op < len(n.stats.PerOp) {
		n.stats.PerOp[op]++
	}
	n.mu.Unlock()
	if h == nil {
		panic(fmt.Sprintf("tnet: cell %d has no receive controller", dst))
	}
	h(p)
}

// Stats snapshots traffic counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}
