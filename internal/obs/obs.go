// Package obs is the observability layer for the functional machine
// and MLSim: per-cell atomic counters plus an optional Chrome
// trace-event timeline.
//
// The design constraint is the same one PR 1's sanitizer solved for
// correctness checking: when observation is off, the PUT issue path
// must stay allocation-free and branch-cheap. Holders therefore keep
// a nil *Observer and guard every hook with a nil check; when
// observation is on, the hot path touches only atomic.Int64 fields in
// a preallocated per-cell block — no locks, no allocation, no maps.
package obs

import (
	"sync/atomic"
	"time"
)

// CellCounters is one cell's hot-path counter block. All fields are
// atomics: the issue counters are bumped by the cell's CPU (program
// goroutine) while delivery counters are bumped by remote controller
// goroutines.
type CellCounters struct {
	// Issue counts, by operation. Put/Get are contiguous transfers;
	// PutS/GetS are stride ("PUTS"/"GETS" in Table 3 terms). AckGets
	// are the zero-address GETs the runtime issues behind acknowledged
	// PUTs (S4.1) — counted apart so Put/Get totals line up with
	// trace.Stats, which excludes acks the same way the paper does.
	Put, PutS, Get, GetS, AckGet atomic.Int64
	Send                         atomic.Int64
	RemoteStore, RemoteLoad      atomic.Int64

	// Payload bytes by direction of issue.
	PutBytes, GetBytes, SendBytes atomic.Int64

	// Receive-side DMA activity on this cell.
	RecvDMAs, DeliveredBytes atomic.Int64

	// Queue events observed live from the MSC+ (spills to DRAM and
	// the OS refill interrupts that drain the spill area).
	Spills, Refills atomic.Int64

	// OS interrupts taken by this cell, any cause (per-cause counts
	// live in machine.Metrics via the OS).
	Interrupts atomic.Int64

	// Synchronization stalls: blocking flag waits and barrier
	// arrivals, with the wall-clock nanoseconds spent blocked.
	FlagWaits, FlagWaitNanos    atomic.Int64
	Barriers, BarrierStallNanos atomic.Int64

	// Reliable-delivery activity under a fault plan (all zero
	// otherwise). Retransmits counts extra wire attempts this cell's
	// controller made; BackoffNanos the simulated backoff it charged.
	// Dedups counts duplicate packets this cell's receive side
	// discarded, CorruptDetected checksum rejections, CellFaults
	// deliveries abandoned after the retry budget.
	Retransmits, BackoffNanos atomic.Int64
	Dedups, CorruptDetected   atomic.Int64
	CellFaults                atomic.Int64

	// DSM page-cache activity on this cell (all zero unless the cell's
	// DSM enables write-through paging). Hits/Misses/Evictions are
	// local cache events; DSMInvalsSent counts invalidations this
	// cell's MSC+ issued as a page owner, DSMInvalsRecv invalidations
	// applied to this cell's cache as a sharer.
	DSMHits, DSMMisses, DSMEvictions atomic.Int64
	DSMInvalsSent, DSMInvalsRecv     atomic.Int64

	// Remote-atomic activity. Atomics counts requests this cell's CPU
	// issued; AtomicsExecuted RMWs this cell's controller performed as
	// the word's owner; AtomicsCombined requests absorbed into T-net
	// combining stations instead of reaching the wire (Config.Combining);
	// AtomicReplays duplicate requests served from the reliable path's
	// result-replay cache instead of re-executing.
	Atomics, AtomicsExecuted       atomic.Int64
	AtomicsCombined, AtomicReplays atomic.Int64

	// PGAS aggregation activity (all zero unless the pgas layer runs
	// in aggregated mode). AggPushes counts fine-grained operations
	// buffered instead of issued; AggPacketsSent packets shipped in
	// exchange rounds; AggAdvances exchange rounds this cell ran;
	// AggApplied packets applied to this cell's memory as the owner.
	AggPushes, AggPacketsSent atomic.Int64
	AggAdvances, AggApplied   atomic.Int64
}

// CellSnapshot is the plain-integer copy of a CellCounters block,
// suitable for JSON encoding and table rendering.
type CellSnapshot struct {
	Put, PutS, Get, GetS, AckGet  int64
	Send                          int64
	RemoteStore, RemoteLoad       int64
	PutBytes, GetBytes, SendBytes int64
	RecvDMAs, DeliveredBytes      int64
	Spills, Refills               int64
	Interrupts                    int64
	FlagWaits, FlagWaitNanos      int64
	Barriers, BarrierStallNanos   int64
	Retransmits, BackoffNanos        int64
	Dedups, CorruptDetected          int64
	CellFaults                       int64
	DSMHits, DSMMisses, DSMEvictions int64
	DSMInvalsSent, DSMInvalsRecv     int64
	Atomics, AtomicsExecuted         int64
	AtomicsCombined, AtomicReplays   int64
	AggPushes, AggPacketsSent        int64
	AggAdvances, AggApplied          int64
}

// Snapshot copies the counters at a point in time.
func (c *CellCounters) Snapshot() CellSnapshot {
	return CellSnapshot{
		Put: c.Put.Load(), PutS: c.PutS.Load(),
		Get: c.Get.Load(), GetS: c.GetS.Load(), AckGet: c.AckGet.Load(),
		Send:        c.Send.Load(),
		RemoteStore: c.RemoteStore.Load(), RemoteLoad: c.RemoteLoad.Load(),
		PutBytes: c.PutBytes.Load(), GetBytes: c.GetBytes.Load(), SendBytes: c.SendBytes.Load(),
		RecvDMAs: c.RecvDMAs.Load(), DeliveredBytes: c.DeliveredBytes.Load(),
		Spills: c.Spills.Load(), Refills: c.Refills.Load(),
		Interrupts: c.Interrupts.Load(),
		FlagWaits:  c.FlagWaits.Load(), FlagWaitNanos: c.FlagWaitNanos.Load(),
		Barriers: c.Barriers.Load(), BarrierStallNanos: c.BarrierStallNanos.Load(),
		Retransmits: c.Retransmits.Load(), BackoffNanos: c.BackoffNanos.Load(),
		Dedups: c.Dedups.Load(), CorruptDetected: c.CorruptDetected.Load(),
		CellFaults: c.CellFaults.Load(),
		DSMHits:    c.DSMHits.Load(), DSMMisses: c.DSMMisses.Load(),
		DSMEvictions:  c.DSMEvictions.Load(),
		DSMInvalsSent: c.DSMInvalsSent.Load(), DSMInvalsRecv: c.DSMInvalsRecv.Load(),
		Atomics: c.Atomics.Load(), AtomicsExecuted: c.AtomicsExecuted.Load(),
		AtomicsCombined: c.AtomicsCombined.Load(), AtomicReplays: c.AtomicReplays.Load(),
		AggPushes: c.AggPushes.Load(), AggPacketsSent: c.AggPacketsSent.Load(),
		AggAdvances: c.AggAdvances.Load(), AggApplied: c.AggApplied.Load(),
	}
}

// Add accumulates another snapshot into this one (for machine totals).
func (s *CellSnapshot) Add(o CellSnapshot) {
	s.Put += o.Put
	s.PutS += o.PutS
	s.Get += o.Get
	s.GetS += o.GetS
	s.AckGet += o.AckGet
	s.Send += o.Send
	s.RemoteStore += o.RemoteStore
	s.RemoteLoad += o.RemoteLoad
	s.PutBytes += o.PutBytes
	s.GetBytes += o.GetBytes
	s.SendBytes += o.SendBytes
	s.RecvDMAs += o.RecvDMAs
	s.DeliveredBytes += o.DeliveredBytes
	s.Spills += o.Spills
	s.Refills += o.Refills
	s.Interrupts += o.Interrupts
	s.FlagWaits += o.FlagWaits
	s.FlagWaitNanos += o.FlagWaitNanos
	s.Barriers += o.Barriers
	s.BarrierStallNanos += o.BarrierStallNanos
	s.Retransmits += o.Retransmits
	s.BackoffNanos += o.BackoffNanos
	s.Dedups += o.Dedups
	s.CorruptDetected += o.CorruptDetected
	s.CellFaults += o.CellFaults
	s.DSMHits += o.DSMHits
	s.DSMMisses += o.DSMMisses
	s.DSMEvictions += o.DSMEvictions
	s.DSMInvalsSent += o.DSMInvalsSent
	s.DSMInvalsRecv += o.DSMInvalsRecv
	s.Atomics += o.Atomics
	s.AtomicsExecuted += o.AtomicsExecuted
	s.AtomicsCombined += o.AtomicsCombined
	s.AtomicReplays += o.AtomicReplays
	s.AggPushes += o.AggPushes
	s.AggPacketsSent += o.AggPacketsSent
	s.AggAdvances += o.AggAdvances
	s.AggApplied += o.AggApplied
}

// Observer is a machine-wide observation context: one counter block
// per cell and, optionally, a shared timeline. A nil *Observer means
// observation is disabled; all hook sites nil-check before touching
// it, which is the entire cost of the feature when off.
type Observer struct {
	start time.Time
	cells []CellCounters
	tl    *Timeline
}

// NewObserver allocates counter blocks for n cells. tl may be nil
// (counters only).
func NewObserver(n int, tl *Timeline) *Observer {
	return &Observer{start: time.Now(), cells: make([]CellCounters, n), tl: tl}
}

// Cell returns cell id's counter block.
func (o *Observer) Cell(id int) *CellCounters { return &o.cells[id] }

// Timeline returns the attached timeline, or nil.
func (o *Observer) Timeline() *Timeline { return o.tl }

// Start returns the observation epoch (machine construction time).
func (o *Observer) Start() time.Time { return o.start }

// NowUs returns wall-clock microseconds since the epoch — the
// timestamp base for functional-machine timelines. (The functional
// machine is untimed; wall time is the only clock it has.)
func (o *Observer) NowUs() float64 {
	return float64(time.Since(o.start).Nanoseconds()) / 1e3
}

// Snapshot copies every cell's counters.
func (o *Observer) Snapshot() []CellSnapshot {
	out := make([]CellSnapshot, len(o.cells))
	for i := range o.cells {
		out[i] = o.cells[i].Snapshot()
	}
	return out
}
