package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Track thread ids within a cell's process. Each cell is one Perfetto
// process; its CPU (program goroutine) and its MSC+ controller are
// the two threads of that process, mirroring Figure 1's cell diagram.
const (
	TidCPU = 0
	TidMSC = 1
)

// TraceEvent is one Chrome trace-event record. The subset emitted
// here ("X" complete slices, "i" instants, "b"/"e" async pairs, "M"
// metadata) loads in Perfetto and chrome://tracing.
type TraceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat,omitempty"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur,omitempty"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	// ID correlates async begin/end pairs ("b"/"e").
	ID int64 `json:"id,omitempty"`
	// Scope is required alongside ID for async events in Perfetto.
	Scope string         `json:"scope,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// Timeline collects trace events from many goroutines. It is only
// ever non-nil when the user asked for a timeline (-timeline), so a
// mutex per event is acceptable; the unobserved path never reaches
// this code.
type Timeline struct {
	mu      sync.Mutex
	events  []TraceEvent
	asyncID int64
}

// NewTimeline returns an empty collector.
func NewTimeline() *Timeline { return &Timeline{} }

func (t *Timeline) add(e TraceEvent) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Process names a Perfetto process (one per cell / PE).
func (t *Timeline) Process(pid int, name string) {
	t.add(TraceEvent{Name: "process_name", Ph: "M", Pid: pid, Args: map[string]any{"name": name}})
}

// Thread names a track within a process (CPU vs MSC+ controller).
func (t *Timeline) Thread(pid, tid int, name string) {
	t.add(TraceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{"name": name}})
}

// Slice records a complete ("X") duration slice. Timestamps and
// durations are microseconds.
func (t *Timeline) Slice(pid, tid int, cat, name string, startUs, durUs float64) {
	if durUs < 0 {
		durUs = 0
	}
	t.add(TraceEvent{Name: name, Cat: cat, Ph: "X", TS: startUs, Dur: durUs, Pid: pid, Tid: tid})
}

// SliceArgs is Slice with an args payload (e.g. payload size).
func (t *Timeline) SliceArgs(pid, tid int, cat, name string, startUs, durUs float64, args map[string]any) {
	if durUs < 0 {
		durUs = 0
	}
	t.add(TraceEvent{Name: name, Cat: cat, Ph: "X", TS: startUs, Dur: durUs, Pid: pid, Tid: tid, Args: args})
}

// Instant records a zero-duration marker ("i") on a track.
func (t *Timeline) Instant(pid, tid int, cat, name string, tsUs float64) {
	t.add(TraceEvent{Name: name, Cat: cat, Ph: "i", TS: tsUs, Pid: pid, Tid: tid, Scope: "t"})
}

// Async records a begin/end pair ("b"/"e") for spans that may overlap
// on the same track — in-flight DMA and wire transfers do, so they
// cannot be X slices without breaking nesting.
func (t *Timeline) Async(pid, tid int, cat, name string, startUs, endUs float64) {
	if endUs < startUs {
		endUs = startUs
	}
	t.mu.Lock()
	t.asyncID++
	id := t.asyncID
	t.events = append(t.events,
		TraceEvent{Name: name, Cat: cat, Ph: "b", TS: startUs, Pid: pid, Tid: tid, ID: id, Scope: cat},
		TraceEvent{Name: name, Cat: cat, Ph: "e", TS: endUs, Pid: pid, Tid: tid, ID: id, Scope: cat})
	t.mu.Unlock()
}

// Events returns a copy of the collected events, metadata first, then
// by ascending timestamp (a stable order for tests and diffs).
func (t *Timeline) Events() []TraceEvent {
	t.mu.Lock()
	out := make([]TraceEvent, len(t.events))
	copy(out, t.events)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		mi, mj := out[i].Ph == "M", out[j].Ph == "M"
		if mi != mj {
			return mi
		}
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		return false
	})
	return out
}

// Len reports how many events have been collected.
func (t *Timeline) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// CheckSliceNesting validates that the complete ("X") slices on each
// (pid, tid) track are properly nested: any two slices are either
// disjoint or one contains the other. Perfetto renders partially
// overlapping X slices misleadingly, so the emitters keep overlap on
// async ("b"/"e") tracks; this is the test-time guard for that rule.
func CheckSliceNesting(events []TraceEvent) error {
	type key struct{ pid, tid int }
	type span struct{ start, end float64 }
	tracks := map[key][]span{}
	for _, e := range events {
		if e.Ph != "X" {
			continue
		}
		k := key{e.Pid, e.Tid}
		tracks[k] = append(tracks[k], span{e.TS, e.TS + e.Dur})
	}
	for k, spans := range tracks {
		sort.Slice(spans, func(i, j int) bool {
			if spans[i].start != spans[j].start {
				return spans[i].start < spans[j].start
			}
			return spans[i].end > spans[j].end // containers before contents
		})
		var stack []span
		for _, s := range spans {
			for len(stack) > 0 && stack[len(stack)-1].end <= s.start {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 && s.end > stack[len(stack)-1].end {
				return fmt.Errorf("obs: track pid=%d tid=%d: slice [%g,%g) partially overlaps [%g,%g)",
					k.pid, k.tid, s.start, s.end, stack[len(stack)-1].start, stack[len(stack)-1].end)
			}
			stack = append(stack, s)
		}
	}
	return nil
}

// WriteJSON emits the Chrome trace-event JSON object form, loadable
// in Perfetto (ui.perfetto.dev) and chrome://tracing.
func (t *Timeline) WriteJSON(w io.Writer) error {
	return writeJSON(w, t.Events())
}

// Part labels one timeline inside a merged file.
type Part struct {
	Label string
	TL    *Timeline
}

// PidStride separates the pid spaces of merged timeline parts; 4096
// leaves room for a 64x64 torus per part.
const PidStride = 4096

// WriteMergedJSON merges several timelines (e.g. one per benchmark
// app) into a single trace file, offsetting pids per part and
// prefixing process names with the part label.
func WriteMergedJSON(w io.Writer, parts []Part) error {
	var all []TraceEvent
	for i, p := range parts {
		for _, e := range p.TL.Events() {
			e.Pid += i * PidStride
			if e.Ph == "M" && e.Name == "process_name" {
				if n, ok := e.Args["name"].(string); ok {
					e.Args = map[string]any{"name": p.Label + "/" + n}
				}
			}
			all = append(all, e)
		}
	}
	return writeJSON(w, all)
}

func writeJSON(w io.Writer, events []TraceEvent) error {
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	for i, e := range events {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if err := encodeEvent(w, enc, e); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}

func encodeEvent(w io.Writer, enc *json.Encoder, e TraceEvent) error {
	// json.Encoder appends a newline after each value, which keeps the
	// file diffable: one event per line.
	if err := enc.Encode(e); err != nil {
		return fmt.Errorf("obs: encoding trace event: %w", err)
	}
	return nil
}
