package obs

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts the standard pprof profiles requested by a
// CLI's -cpuprofile/-memprofile flags (either may be empty). The
// returned stop function finishes the CPU profile and writes the
// heap profile; call it exactly once, before exiting.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			runtime.GC() // get up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		return nil
	}, nil
}
