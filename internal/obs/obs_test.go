package obs

import (
	"reflect"
	"testing"
)

// TestSnapshotCopiesEveryField bumps each counter a distinct amount
// and checks the snapshot via reflection, so a field added to
// CellCounters without a matching Snapshot line fails here.
func TestSnapshotCopiesEveryField(t *testing.T) {
	var c CellCounters
	cv := reflect.ValueOf(&c).Elem()
	bump := map[string]int64{}
	n := int64(1)
	for i := 0; i < cv.NumField(); i++ {
		name := cv.Type().Field(i).Name
		a := cv.Field(i).Addr().Interface().(interface{ Add(int64) int64 })
		a.Add(n)
		bump[name] = n
		n++
	}
	s := c.Snapshot()
	sv := reflect.ValueOf(s)
	if sv.NumField() != cv.NumField() {
		t.Fatalf("CellSnapshot has %d fields, CellCounters has %d", sv.NumField(), cv.NumField())
	}
	for i := 0; i < sv.NumField(); i++ {
		name := sv.Type().Field(i).Name
		want, ok := bump[name]
		if !ok {
			t.Errorf("snapshot field %s has no counter", name)
			continue
		}
		if got := sv.Field(i).Int(); got != want {
			t.Errorf("snapshot.%s = %d, want %d", name, got, want)
		}
	}
}

// TestSnapshotAddSumsEveryField relies on the same reflection trick:
// Add must accumulate every field, none skipped.
func TestSnapshotAddSumsEveryField(t *testing.T) {
	var a, b CellSnapshot
	av := reflect.ValueOf(&a).Elem()
	bv := reflect.ValueOf(&b).Elem()
	for i := 0; i < av.NumField(); i++ {
		av.Field(i).SetInt(int64(i + 1))
		bv.Field(i).SetInt(int64(100 * (i + 1)))
	}
	a.Add(b)
	for i := 0; i < av.NumField(); i++ {
		want := int64(i+1) + int64(100*(i+1))
		if got := av.Field(i).Int(); got != want {
			t.Errorf("Add: field %s = %d, want %d", av.Type().Field(i).Name, got, want)
		}
	}
}

func TestObserverCells(t *testing.T) {
	o := NewObserver(4, nil)
	if o.Timeline() != nil {
		t.Fatal("nil timeline expected")
	}
	o.Cell(2).Put.Add(7)
	snaps := o.Snapshot()
	if len(snaps) != 4 {
		t.Fatalf("snapshot has %d cells, want 4", len(snaps))
	}
	if snaps[2].Put != 7 || snaps[0].Put != 0 {
		t.Fatalf("per-cell isolation broken: %+v", snaps)
	}
	if us := o.NowUs(); us < 0 {
		t.Fatalf("NowUs went backwards: %f", us)
	}
}
