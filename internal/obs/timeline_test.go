package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// traceFile mirrors the Chrome trace-event object form for decoding
// in tests.
type traceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []TraceEvent `json:"traceEvents"`
}

func buildSample() *Timeline {
	tl := NewTimeline()
	tl.Process(0, "PE 0")
	tl.Thread(0, TidCPU, "cpu")
	tl.Thread(0, TidMSC, "wire/dma")
	tl.Slice(0, TidCPU, "compute", "compute", 10, 5)
	tl.Slice(0, TidCPU, "issue", "put", 15, 2)
	tl.Instant(0, TidMSC, "interrupt", "queue-refill", 16)
	tl.Async(0, TidMSC, "wire", "put-wire", 15.5, 18)
	tl.Async(0, TidMSC, "wire", "put-wire", 16, 17) // overlapping span
	return tl
}

func TestWriteJSONIsValidTraceFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := buildSample().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var f traceFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", f.DisplayTimeUnit)
	}
	if len(f.TraceEvents) != 10 { // 3 M + 2 X + 1 i + 2x(b+e)
		t.Fatalf("got %d events, want 10", len(f.TraceEvents))
	}
	for _, e := range f.TraceEvents {
		switch e.Ph {
		case "M", "X", "i", "b", "e":
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
		if e.Ph == "i" && e.Scope != "t" {
			t.Errorf("instant without thread scope: %+v", e)
		}
		if (e.Ph == "b" || e.Ph == "e") && (e.ID == 0 || e.Scope == "") {
			t.Errorf("async event missing id/scope: %+v", e)
		}
	}
}

func TestEventsMetadataFirstThenByTime(t *testing.T) {
	tl := NewTimeline()
	tl.Slice(0, TidCPU, "c", "late", 100, 1)
	tl.Process(0, "PE 0") // metadata added after events must still sort first
	tl.Slice(0, TidCPU, "c", "early", 1, 1)
	ev := tl.Events()
	if ev[0].Ph != "M" {
		t.Fatalf("first event %+v, want metadata", ev[0])
	}
	for i := 2; i < len(ev); i++ {
		if ev[i-1].Ph != "M" && ev[i].TS < ev[i-1].TS {
			t.Fatalf("events out of time order at %d: %v after %v", i, ev[i].TS, ev[i-1].TS)
		}
	}
	if tl.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tl.Len())
	}
}

func TestSliceClampsNegativeDuration(t *testing.T) {
	tl := NewTimeline()
	tl.Slice(0, 0, "c", "s", 5, -1)
	tl.Async(0, 1, "w", "a", 10, 8) // end before start clamps to start
	ev := tl.Events()
	if ev[0].Dur != 0 {
		t.Errorf("negative duration not clamped: %+v", ev[0])
	}
	if ev[2].TS < ev[1].TS {
		t.Errorf("async end precedes begin: %+v %+v", ev[1], ev[2])
	}
}

func TestAsyncPairsShareUniqueIDs(t *testing.T) {
	tl := NewTimeline()
	for i := 0; i < 5; i++ {
		tl.Async(0, TidMSC, "wire", "span", float64(i), float64(i)+1)
	}
	begins := map[int64]int{}
	ends := map[int64]int{}
	for _, e := range tl.Events() {
		switch e.Ph {
		case "b":
			begins[e.ID]++
		case "e":
			ends[e.ID]++
		}
	}
	if len(begins) != 5 || len(ends) != 5 {
		t.Fatalf("want 5 distinct async ids, got %d begins / %d ends", len(begins), len(ends))
	}
	for id, n := range begins {
		if n != 1 || ends[id] != 1 {
			t.Fatalf("async id %d not paired exactly once (b=%d e=%d)", id, n, ends[id])
		}
	}
}

func TestWriteMergedJSONOffsetsPidsAndLabels(t *testing.T) {
	a, b := NewTimeline(), NewTimeline()
	a.Process(0, "PE 0")
	a.Slice(0, TidCPU, "c", "s", 1, 1)
	b.Process(0, "PE 0")
	b.Slice(0, TidCPU, "c", "s", 1, 1)
	var buf bytes.Buffer
	err := WriteMergedJSON(&buf, []Part{{Label: "EP", TL: a}, {Label: "CG", TL: b}})
	if err != nil {
		t.Fatal(err)
	}
	var f traceFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	pids := map[int]bool{}
	var names []string
	for _, e := range f.TraceEvents {
		pids[e.Pid] = true
		if e.Ph == "M" && e.Name == "process_name" {
			names = append(names, e.Args["name"].(string))
		}
	}
	if !pids[0] || !pids[PidStride] {
		t.Fatalf("merged pids %v, want 0 and %d", pids, PidStride)
	}
	want := []string{"EP/PE 0", "CG/PE 0"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("process names %v, want %v", names, want)
	}
}

// TestSlicesNestWithinTrack is the schema guard the MLSim emitter
// relies on: X slices on one (pid,tid) track must either nest or not
// overlap at all — Perfetto renders anything else misleadingly.
func TestSlicesNestWithinTrack(t *testing.T) {
	tl := NewTimeline()
	tl.Slice(0, TidCPU, "c", "outer", 0, 10)
	tl.Slice(0, TidCPU, "c", "inner", 2, 3)
	tl.Slice(0, TidCPU, "c", "next", 10, 5)
	if err := CheckSliceNesting(tl.Events()); err != nil {
		t.Fatalf("well-nested timeline rejected: %v", err)
	}
	bad := NewTimeline()
	bad.Slice(0, TidCPU, "c", "a", 0, 10)
	bad.Slice(0, TidCPU, "c", "b", 5, 10) // partial overlap
	if err := CheckSliceNesting(bad.Events()); err == nil {
		t.Fatal("partially overlapping slices accepted")
	}
}
