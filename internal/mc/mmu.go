package mc

import (
	"fmt"
	"sync"

	"ap1000plus/internal/mem"
)

// PageFaultError reports an access to an unmapped logical page. When
// the faulting access comes from a PUT/GET set up at user level, the
// operating system cannot pre-check it, so "the hardware must check
// for illegal addresses" (S3.2) — this error is that check firing.
type PageFaultError struct {
	Addr mem.Addr
	Size int64
}

func (e *PageFaultError) Error() string {
	return fmt.Sprintf("mc: page fault at %#x (+%d bytes)", e.Addr, e.Size)
}

// TLBConfig fixes the AP1000+ MC's TLB geometry (S4.1): direct-mapped,
// 256 entries for 4-kilobyte pages and 64 entries for 256-kilobyte
// pages.
type TLBConfig struct {
	SmallEntries int
	BigEntries   int
}

// DefaultTLB is the hardware's configuration.
var DefaultTLB = TLBConfig{SmallEntries: 256, BigEntries: 64}

type tlbEntry struct {
	valid bool
	page  uint64
	frame uint64
}

// TLBStats counts translation outcomes.
type TLBStats struct {
	Hits   int64
	Misses int64
	Walks  int64 // page-table walks performed by the walker
	Faults int64
}

// MMU translates logical to physical addresses for the MC, as the
// MSC+ requires before activating DMA ("Using the MMU in the MC, the
// MSC+ converts the logical address to a physical address"). Pages
// above BigPageThreshold are translated through the 256 KB TLB.
//
// The MMU is safe for concurrent translation: the receive controller
// translates inbound DMA targets while the CPU issues new commands.
type MMU struct {
	mu    sync.Mutex
	table map[uint64]uint64 // small-page number -> frame
	small []tlbEntry
	big   []tlbEntry
	next  uint64 // next free physical frame
	stats TLBStats
}

// NewMMU builds an MMU with the given TLB geometry.
func NewMMU(cfg TLBConfig) *MMU {
	if cfg.SmallEntries <= 0 || cfg.BigEntries <= 0 {
		panic("mc: non-positive TLB size")
	}
	return &MMU{
		table: make(map[uint64]uint64),
		small: make([]tlbEntry, cfg.SmallEntries),
		big:   make([]tlbEntry, cfg.BigEntries),
	}
}

// Map establishes logical->physical mappings for every small page in
// [addr, addr+size). The machine calls this when a segment is
// allocated; remapping an already-mapped page is a no-op.
func (m *MMU) Map(addr mem.Addr, size int64) {
	if size <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	first := uint64(addr) / mem.PageSize
	last := (uint64(addr) + uint64(size) - 1) / mem.PageSize
	for p := first; p <= last; p++ {
		if _, ok := m.table[p]; !ok {
			m.table[p] = m.next
			m.next++
		}
	}
}

// Unmap removes the mapping of every page fully inside [addr,
// addr+size) and invalidates matching TLB entries.
func (m *MMU) Unmap(addr mem.Addr, size int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	first := uint64(addr) / mem.PageSize
	last := (uint64(addr) + uint64(size) - 1) / mem.PageSize
	for p := first; p <= last; p++ {
		delete(m.table, p)
		e := &m.small[p%uint64(len(m.small))]
		if e.valid && e.page == p {
			e.valid = false
		}
		bp := p * mem.PageSize / mem.BigPageSize
		be := &m.big[bp%uint64(len(m.big))]
		if be.valid && be.page == bp {
			be.valid = false
		}
	}
}

// Translate converts the logical range [addr, addr+size) to a
// physical address, checking that every page it touches is mapped.
// Contiguity of logical pages maps to contiguity of the returned
// physical range only for the first page's frame; callers use the
// fault check and the TLB statistics, not physical layout.
func (m *MMU) Translate(addr mem.Addr, size int64) (phys uint64, err error) {
	if size <= 0 {
		size = 1
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	first := uint64(addr) / mem.PageSize
	last := (uint64(addr) + uint64(size) - 1) / mem.PageSize
	var frame0 uint64
	for p := first; p <= last; p++ {
		frame, ok := m.lookup(p)
		if !ok {
			m.stats.Faults++
			return 0, &PageFaultError{Addr: mem.Addr(p * mem.PageSize), Size: size}
		}
		if p == first {
			frame0 = frame
		}
	}
	return frame0*mem.PageSize + uint64(addr)%mem.PageSize, nil
}

// lookup consults the TLBs and falls back to the walker. Caller holds mu.
func (m *MMU) lookup(page uint64) (uint64, bool) {
	// Big-page TLB first: one entry covers 64 small pages.
	bigPage := page * mem.PageSize / mem.BigPageSize
	be := &m.big[bigPage%uint64(len(m.big))]
	if be.valid && be.page == bigPage {
		// Frame stored per big page is the frame of its first small
		// page; small pages inside are frame-contiguous by
		// construction only if mapped consecutively. We re-derive via
		// the table but still count it a hit (no walk latency).
		if frame, ok := m.table[page]; ok {
			m.stats.Hits++
			return frame, true
		}
		be.valid = false // stale big mapping
	}
	se := &m.small[page%uint64(len(m.small))]
	if se.valid && se.page == page {
		m.stats.Hits++
		return se.frame, true
	}
	// Miss: the MC's hardware walker reads the page table.
	m.stats.Misses++
	m.stats.Walks++
	frame, ok := m.table[page]
	if !ok {
		return 0, false
	}
	*se = tlbEntry{valid: true, page: page, frame: frame}
	// Promote fully-mapped big pages so dense segments hit the big TLB.
	firstSmall := bigPage * (mem.BigPageSize / mem.PageSize)
	full := true
	for p := firstSmall; p < firstSmall+mem.BigPageSize/mem.PageSize; p++ {
		if _, ok := m.table[p]; !ok {
			full = false
			break
		}
	}
	if full {
		*(&m.big[bigPage%uint64(len(m.big))]) = tlbEntry{valid: true, page: bigPage, frame: m.table[firstSmall]}
	}
	return frame, true
}

// Stats returns a snapshot of the TLB statistics.
func (m *MMU) Stats() TLBStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Mapped reports whether the whole range [addr, addr+size) is mapped.
func (m *MMU) Mapped(addr mem.Addr, size int64) bool {
	_, err := m.Translate(addr, size)
	return err == nil
}
