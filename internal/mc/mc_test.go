package mc

import (
	"math"
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"ap1000plus/internal/mem"
)

func TestFlagsBasics(t *testing.T) {
	f := NewFlags()
	a := f.Alloc()
	b := f.Alloc()
	if a == b {
		t.Fatal("Alloc returned duplicate IDs")
	}
	f.Inc(a)
	f.Inc(a)
	f.Add(b, 5)
	if f.Load(a) != 2 || f.Load(b) != 5 {
		t.Fatalf("a=%d b=%d", f.Load(a), f.Load(b))
	}
	if f.Increments() != 7 {
		t.Fatalf("Increments = %d", f.Increments())
	}
	f.Reset(a)
	if f.Load(a) != 0 {
		t.Fatal("Reset failed")
	}
}

func TestFlagsNoFlagIgnored(t *testing.T) {
	f := NewFlags()
	f.Inc(NoFlag)
	f.Add(NoFlag, 10)
	f.Wait(NoFlag, 100) // must not block
	if f.Load(NoFlag) != 0 || f.Increments() != 0 {
		t.Fatal("NoFlag should be inert")
	}
}

func TestFlagsWaitBlocksUntilTarget(t *testing.T) {
	f := NewFlags()
	id := f.Alloc()
	done := make(chan struct{})
	go func() {
		f.Wait(id, 3)
		close(done)
	}()
	f.Inc(id)
	f.Inc(id)
	select {
	case <-done:
		t.Fatal("Wait returned before target")
	default:
	}
	f.Inc(id)
	<-done // must complete now
}

func TestFlagsConcurrentIncrements(t *testing.T) {
	f := NewFlags()
	id := f.Alloc()
	const goroutines, each = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				f.Inc(id)
			}
		}()
	}
	f.Wait(id, goroutines*each)
	wg.Wait()
	if f.Load(id) != goroutines*each {
		t.Fatalf("final = %d", f.Load(id))
	}
}

func TestFlagsNegativeAddPanics(t *testing.T) {
	f := NewFlags()
	id := f.Alloc()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.Add(id, -1)
}

func TestMMUMapTranslate(t *testing.T) {
	m := NewMMU(DefaultTLB)
	m.Map(0x1000, 8192)
	if _, err := m.Translate(0x1000, 100); err != nil {
		t.Fatalf("mapped translate failed: %v", err)
	}
	if _, err := m.Translate(0x1000, 8192); err != nil {
		t.Fatalf("spanning translate failed: %v", err)
	}
	if _, err := m.Translate(0x1000, 8193); err == nil {
		t.Fatal("translate past mapping should fault")
	}
	if _, err := m.Translate(0x100000, 1); err == nil {
		t.Fatal("unmapped translate should fault")
	}
	var pf *PageFaultError
	_, err := m.Translate(0x100000, 4)
	if pf, _ = err.(*PageFaultError); pf == nil {
		t.Fatalf("error type = %T", err)
	}
	if pf.Addr != 0x100000 {
		t.Fatalf("fault addr = %#x", pf.Addr)
	}
}

func TestMMUOffsetsPreserved(t *testing.T) {
	m := NewMMU(DefaultTLB)
	m.Map(0x4000, 4096)
	p1, err := m.Translate(0x4000, 1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m.Translate(0x4123, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p2-p1 != 0x123 {
		t.Fatalf("page offset not preserved: %#x vs %#x", p1, p2)
	}
}

func TestMMUTLBHitsAndMisses(t *testing.T) {
	m := NewMMU(DefaultTLB)
	m.Map(0x1000, mem.PageSize)
	if _, err := m.Translate(0x1000, 4); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("after first access: %+v", s)
	}
	for i := 0; i < 10; i++ {
		if _, err := m.Translate(0x1800, 4); err != nil {
			t.Fatal(err)
		}
	}
	s = m.Stats()
	if s.Hits != 10 || s.Misses != 1 {
		t.Fatalf("after re-access: %+v", s)
	}
}

func TestMMUDirectMappedConflict(t *testing.T) {
	// Two pages that collide in a direct-mapped TLB of 256 entries:
	// page N and page N+256.
	m := NewMMU(DefaultTLB)
	a := mem.Addr(5 * mem.PageSize)
	b := mem.Addr((5 + 256) * mem.PageSize)
	m.Map(a, mem.PageSize)
	m.Map(b, mem.PageSize)
	m.Translate(a, 4)
	m.Translate(b, 4) // evicts a
	m.Translate(a, 4) // must miss again
	s := m.Stats()
	if s.Misses != 3 {
		t.Fatalf("conflict misses = %d, want 3 (stats %+v)", s.Misses, s)
	}
}

func TestMMUUnmap(t *testing.T) {
	m := NewMMU(DefaultTLB)
	m.Map(0x1000, 4096)
	m.Translate(0x1000, 4)
	m.Unmap(0x1000, 4096)
	if _, err := m.Translate(0x1000, 4); err == nil {
		t.Fatal("translate after unmap should fault (TLB must be invalidated)")
	}
	if !m.Mapped(0x1000, 4) == false {
		t.Fatal("Mapped should be false")
	}
	faults := m.Stats().Faults
	if faults < 1 {
		t.Fatalf("faults = %d", faults)
	}
}

func TestMMUBigPagePromotion(t *testing.T) {
	m := NewMMU(DefaultTLB)
	// Map a full 256KB-aligned big page worth of small pages.
	m.Map(0, mem.BigPageSize)
	// Touch every small page once (misses), then re-touch: big TLB
	// should serve them as hits.
	for p := uint64(0); p < mem.BigPageSize/mem.PageSize; p++ {
		if _, err := m.Translate(mem.Addr(p*mem.PageSize), 4); err != nil {
			t.Fatal(err)
		}
	}
	before := m.Stats()
	for p := uint64(0); p < mem.BigPageSize/mem.PageSize; p++ {
		if _, err := m.Translate(mem.Addr(p*mem.PageSize), 4); err != nil {
			t.Fatal(err)
		}
	}
	after := m.Stats()
	if after.Misses != before.Misses {
		t.Fatalf("second sweep missed: %+v -> %+v", before, after)
	}
}

// Property: translation faults exactly outside the mapped range.
func TestMMUFaultBoundaryProperty(t *testing.T) {
	prop := func(pages uint8) bool {
		n := int64(pages%8) + 1
		m := NewMMU(DefaultTLB)
		base := mem.Addr(16 * mem.PageSize)
		m.Map(base, n*mem.PageSize)
		if _, err := m.Translate(base+mem.Addr(n*mem.PageSize)-1, 1); err != nil {
			return false
		}
		if _, err := m.Translate(base+mem.Addr(n*mem.PageSize), 1); err == nil {
			return false
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCommRegsStoreLoad32(t *testing.T) {
	c := NewCommRegs()
	if c.Present(3) {
		t.Fatal("p-bit should start clear")
	}
	c.Store32(3, 0xdeadbeef)
	if !c.Present(3) {
		t.Fatal("p-bit should be set after store")
	}
	if v := c.Load32(3); v != 0xdeadbeef {
		t.Fatalf("Load32 = %#x", v)
	}
	if c.Present(3) {
		t.Fatal("load must clear the p-bit")
	}
}

func TestCommRegsStoreLoad64(t *testing.T) {
	c := NewCommRegs()
	pi := math.Float64bits(3.14159)
	c.Store64(10, pi)
	if got := c.Load64(10); got != pi {
		t.Fatalf("Load64 = %#x want %#x", got, pi)
	}
}

func TestCommRegsLoadBlocksUntilStore(t *testing.T) {
	c := NewCommRegs()
	got := make(chan uint32, 1)
	go func() { got <- c.Load32(7) }()
	select {
	case v := <-got:
		t.Fatalf("load returned %d before any store", v)
	default:
	}
	c.Store32(7, 99)
	if v := <-got; v != 99 {
		t.Fatalf("got %d", v)
	}
}

func TestCommRegsOverwriteCounted(t *testing.T) {
	c := NewCommRegs()
	c.Store32(0, 1)
	c.Store32(0, 2)
	if s := c.Stats(); s.Overwrites != 1 {
		t.Fatalf("overwrites = %d", s.Overwrites)
	}
	if v := c.Load32(0); v != 2 {
		t.Fatalf("v = %d", v)
	}
}

func TestCommRegsTryLoad(t *testing.T) {
	c := NewCommRegs()
	if _, ok := c.TryLoad32(1); ok {
		t.Fatal("TryLoad on empty register should fail")
	}
	c.Store32(1, 42)
	v, ok := c.TryLoad32(1)
	if !ok || v != 42 {
		t.Fatalf("TryLoad = %d,%v", v, ok)
	}
	if _, ok := c.TryLoad32(1); ok {
		t.Fatal("second TryLoad should fail (p-bit cleared)")
	}
}

func TestCommRegsBoundsPanic(t *testing.T) {
	c := NewCommRegs()
	for _, f := range []func(){
		func() { c.Store32(-1, 0) },
		func() { c.Store32(NumCommRegs, 0) },
		func() { c.Store64(NumCommRegs-1, 0) },
		func() { c.Store64(3, 0) }, // unaligned pair
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCommRegsProducerConsumer(t *testing.T) {
	// A pipeline through one register: the p-bit handshake makes
	// every value observed exactly once, in order.
	c := NewCommRegs()
	const n = 200
	var got []uint32
	done := make(chan struct{})
	go func() {
		for i := 0; i < n; i++ {
			got = append(got, c.Load32(5))
		}
		close(done)
	}()
	for i := 0; i < n; i++ {
		// Wait until consumed before next store (correct protocol).
		for c.Present(5) {
			runtime.Gosched()
		}
		c.Store32(5, uint32(i))
	}
	<-done
	for i := 0; i < n; i++ {
		if got[i] != uint32(i) {
			t.Fatalf("got[%d] = %d", i, got[i])
		}
	}
	if s := c.Stats(); s.Overwrites != 0 {
		t.Fatalf("overwrites = %d, want 0 for a correct protocol", s.Overwrites)
	}
}

func BenchmarkFlagIncWait(b *testing.B) {
	f := NewFlags()
	id := f.Alloc()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Inc(id)
		f.Wait(id, int64(i+1))
	}
}

func BenchmarkCommRegHandshake(b *testing.B) {
	c := NewCommRegs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Store32(0, uint32(i))
		c.Load32(0)
	}
}
