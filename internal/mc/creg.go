package mc

import (
	"fmt"
	"sync"
)

// NumCommRegs is the number of communication registers per MC:
// "128 4-byte communication registers for each MC are allocated in
// shared memory space" (S4.4).
const NumCommRegs = 128

// CommRegs models a cell's communication registers. Each register
// carries a present bit (p-bit): a store sets it, a load blocks until
// it is set and then clears it. Because the registers live in the
// distributed shared memory space, a remote cell's store is "a simple
// store instruction to the appropriate address" — here, a Store call
// on the destination cell's CommRegs.
//
// Registers can be accessed in 4- or 8-byte blocks; an 8-byte access
// uses registers idx and idx+1 and a single logical p-bit handshake.
type CommRegs struct {
	mu   sync.Mutex
	cond *sync.Cond
	val  [NumCommRegs]uint32
	pbit [NumCommRegs]bool
	// Overwrites counts stores that found the p-bit already set —
	// data the consumer never observed. Correct reduction protocols
	// keep this at zero; tests assert on it.
	overwrites int64
	stores     int64
	loads      int64
}

// NewCommRegs returns a register file with all p-bits clear.
func NewCommRegs() *CommRegs {
	c := &CommRegs{}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *CommRegs) check(idx, width int) {
	if width != 1 && width != 2 {
		panic(fmt.Sprintf("mc: comm register access width %d (want 1 or 2 words)", width))
	}
	if idx < 0 || idx+width > NumCommRegs {
		panic(fmt.Sprintf("mc: comm register %d..%d out of range", idx, idx+width-1))
	}
	if width == 2 && idx%2 != 0 {
		panic(fmt.Sprintf("mc: unaligned 8-byte comm register access at %d", idx))
	}
}

// Store32 writes a 4-byte value to register idx and sets its p-bit.
func (c *CommRegs) Store32(idx int, v uint32) {
	c.check(idx, 1)
	c.mu.Lock()
	if c.pbit[idx] {
		c.overwrites++
	}
	c.val[idx] = v
	c.pbit[idx] = true
	c.stores++
	c.mu.Unlock()
	c.cond.Broadcast()
}

// Store64 writes an 8-byte value to the aligned register pair
// starting at idx and sets both p-bits.
func (c *CommRegs) Store64(idx int, v uint64) {
	c.check(idx, 2)
	c.mu.Lock()
	if c.pbit[idx] || c.pbit[idx+1] {
		c.overwrites++
	}
	c.val[idx] = uint32(v)
	c.val[idx+1] = uint32(v >> 32)
	c.pbit[idx] = true
	c.pbit[idx+1] = true
	c.stores++
	c.mu.Unlock()
	c.cond.Broadcast()
}

// Load32 blocks until register idx's p-bit is set, clears it, and
// returns the value — the hardware's automatic retry-until-present
// (S4.4), without software polling.
func (c *CommRegs) Load32(idx int) uint32 {
	c.check(idx, 1)
	c.mu.Lock()
	defer c.mu.Unlock()
	for !c.pbit[idx] {
		c.cond.Wait()
	}
	c.pbit[idx] = false
	c.loads++
	return c.val[idx]
}

// Load64 blocks until both p-bits of the pair at idx are set, clears
// them, and returns the combined value.
func (c *CommRegs) Load64(idx int) uint64 {
	c.check(idx, 2)
	c.mu.Lock()
	defer c.mu.Unlock()
	for !c.pbit[idx] || !c.pbit[idx+1] {
		c.cond.Wait()
	}
	c.pbit[idx] = false
	c.pbit[idx+1] = false
	c.loads++
	return uint64(c.val[idx]) | uint64(c.val[idx+1])<<32
}

// TryLoad32 is a non-blocking probe used by tests: it returns the
// value and clears the p-bit only if present.
func (c *CommRegs) TryLoad32(idx int) (uint32, bool) {
	c.check(idx, 1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.pbit[idx] {
		return 0, false
	}
	c.pbit[idx] = false
	c.loads++
	return c.val[idx], true
}

// Present reports whether register idx's p-bit is set.
func (c *CommRegs) Present(idx int) bool {
	c.check(idx, 1)
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pbit[idx]
}

// Clear resets every register, p-bit, and usage counter to the
// fresh-machine state — the OS scrubbing the register file between
// gang-scheduled jobs. Only legal while the cell is idle.
func (c *CommRegs) Clear() {
	c.mu.Lock()
	c.val = [NumCommRegs]uint32{}
	c.pbit = [NumCommRegs]bool{}
	c.overwrites, c.stores, c.loads = 0, 0, 0
	c.mu.Unlock()
	c.cond.Broadcast()
}

// CommRegStats is a snapshot of register activity.
type CommRegStats struct {
	Stores, Loads, Overwrites int64
}

// Stats returns usage counters.
func (c *CommRegs) Stats() CommRegStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CommRegStats{Stores: c.stores, Loads: c.loads, Overwrites: c.overwrites}
}
