// Package mc models the AP1000+ memory controller (MC): the MMU with
// its direct-mapped TLB, the fetch-and-increment flag updater that
// realizes the paper's "flag update combined with data transfer", and
// the 128 communication registers with present bits used for barrier
// synchronization and scalar global reduction (S4, S4.4).
package mc

import (
	"fmt"
	"sync"
)

// FlagID names a synchronization flag within one cell. Flag 0 plays
// the paper's "address 0" role: PUT/GET with flag 0 updates nothing.
type FlagID int32

// NoFlag is the "do not update" flag (the paper passes address 0).
const NoFlag FlagID = 0

// AckFlagID identifies the implicit acknowledge flag every cell owns
// (S2.2, the Ack & Barrier model); PUT acknowledgements raise it.
const AckFlagID FlagID = -1

// RemoteAckFlagID is the implicit flag raised by the automatic
// acknowledgements of distributed-shared-memory remote stores (S4.2).
// It is distinct from AckFlagID so DSM traffic cannot satisfy a
// PUT-level AckWait.
const RemoteAckFlagID FlagID = -2

// AtomicAckFlagID is the implicit flag raised by the acknowledgement
// of a non-fetching remote atomic (Add/Min/Max). Distinct from the
// other implicit flags so FenceAtomics counts only atomic traffic.
const AtomicAckFlagID FlagID = -3

// Flags is a cell's flag file. Flags are "normal variables specified
// in the user programs" (S4.1); the MC increments them atomically
// when the MSC+ signals DMA completion ("the MC has an incrementer,
// which can fetch and increment"). Increments may arrive from remote
// cells' delivery goroutines concurrently with the owner waiting, so
// the implementation is a monitor: an increment establishes a
// happens-before edge to the waiter exactly like the hardware's
// memory-system ordering does.
type Flags struct {
	mu   sync.Mutex
	cond *sync.Cond
	vals map[FlagID]int64
	next FlagID
	// incs counts total increments, for statistics.
	incs int64
	// waitObs, when set, runs after every satisfied Wait, outside the
	// monitor lock — the sanitizer's flag-acquire hook.
	waitObs func(FlagID)
	// waitSpan, when set, runs at the start of every Wait that
	// actually blocks; the returned func runs after the wait is
	// satisfied, outside the monitor lock — the observability layer's
	// stall-timing hook. The callback is invoked under the monitor
	// lock and must not call back into Flags.
	waitSpan func(FlagID) func()
}

// SetWaitObserver installs a callback invoked after each Wait call is
// satisfied. Install before traffic flows (machine construction).
func (f *Flags) SetWaitObserver(fn func(FlagID)) {
	f.mu.Lock()
	f.waitObs = fn
	f.mu.Unlock()
}

// SetWaitSpan installs a callback invoked when a Wait blocks; the
// func it returns is invoked once the wait is satisfied. Install
// before traffic flows (machine construction).
func (f *Flags) SetWaitSpan(fn func(FlagID) func()) {
	f.mu.Lock()
	f.waitSpan = fn
	f.mu.Unlock()
}

// NewFlags returns an empty flag file.
func NewFlags() *Flags {
	f := &Flags{vals: make(map[FlagID]int64), next: 1}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// Alloc reserves a fresh flag. Flags are ordinary memory words on
// the real machine, so an increment that arrives from a fast remote
// cell before the owner "allocates" the flag is legitimate and must
// not be lost: Alloc never clears an existing count.
func (f *Flags) Alloc() FlagID {
	f.mu.Lock()
	defer f.mu.Unlock()
	id := f.next
	f.next++
	if _, ok := f.vals[id]; !ok {
		f.vals[id] = 0
	}
	return id
}

// Inc increments flag id by one — the MC's fetch-and-increment. Inc
// of NoFlag is a no-op, matching the paper: "if flag addresses are
// specified as 0, MSC+ does not update the flag."
func (f *Flags) Inc(id FlagID) {
	if id == NoFlag {
		return
	}
	f.mu.Lock()
	f.vals[id]++
	f.incs++
	f.mu.Unlock()
	f.cond.Broadcast()
}

// Add increments flag id by n (> 0). Used by collective operations
// that complete several transfers at once.
func (f *Flags) Add(id FlagID, n int64) {
	if id == NoFlag || n == 0 {
		return
	}
	if n < 0 {
		panic("mc: negative flag add")
	}
	f.mu.Lock()
	f.vals[id] += n
	f.incs += n
	f.mu.Unlock()
	f.cond.Broadcast()
}

// Load returns the current value of flag id.
func (f *Flags) Load(id FlagID) int64 {
	if id == NoFlag {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.vals[id]
}

// Reset sets flag id back to zero, the program's way of reusing a
// flag between communication phases.
func (f *Flags) Reset(id FlagID) {
	if id == NoFlag {
		return
	}
	f.mu.Lock()
	f.vals[id] = 0
	f.mu.Unlock()
	f.cond.Broadcast()
}

// ResetAll clears every flag and the allocation cursor — the OS
// wiping a cell's flag file between gang-scheduled jobs. The wait
// observers survive (they belong to the machine, not the job), and
// the increment total restarts so a reused cell's per-job counts
// compare bit-for-bit against a fresh machine's. Only legal while the
// cell is idle: no transfers in flight, no waiter blocked.
func (f *Flags) ResetAll() {
	f.mu.Lock()
	f.vals = make(map[FlagID]int64)
	f.next = 1
	f.incs = 0
	f.mu.Unlock()
	f.cond.Broadcast()
}

// Wait blocks until flag id reaches at least target. This is the
// "program checks the value of these flags to detect the completion
// of communications" loop (S3.1), minus the busy-wait.
func (f *Flags) Wait(id FlagID, target int64) {
	if id == NoFlag {
		return
	}
	f.mu.Lock()
	var end func()
	if f.waitSpan != nil && f.vals[id] < target {
		end = f.waitSpan(id)
	}
	for f.vals[id] < target {
		f.cond.Wait()
	}
	obs := f.waitObs
	f.mu.Unlock()
	if end != nil {
		end()
	}
	if obs != nil {
		obs(id)
	}
}

// Increments reports the total number of increments performed, a
// proxy for how many completion notifications the MC handled.
func (f *Flags) Increments() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.incs
}

func (f *Flags) String() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return fmt.Sprintf("flags{n=%d incs=%d}", len(f.vals), f.incs)
}
