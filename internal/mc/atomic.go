package mc

import "fmt"

// AtomicOp names a remote read-modify-write operation on one 8-byte
// cell-memory word — the generalization of the MC's fetch-and-
// increment flag updater (S4.1) into the remote atomic suite. The
// operation executes at the owning cell's controller; fetching
// operations return the old word to the issuer.
type AtomicOp uint8

const (
	// AtomicFetchAdd adds the operand and returns the old value.
	AtomicFetchAdd AtomicOp = iota
	// AtomicAdd adds the operand without returning a value.
	AtomicAdd
	// AtomicCAS stores the operand iff the word equals the compare
	// value, returning the old value either way.
	AtomicCAS
	// AtomicSwap stores the operand and returns the old value.
	AtomicSwap
	// AtomicMin lowers the word to the operand if smaller (signed).
	AtomicMin
	// AtomicMax raises the word to the operand if larger (signed).
	AtomicMax

	numAtomicOps
)

// NumAtomicOps is the number of atomic operation codes.
const NumAtomicOps = int(numAtomicOps)

var atomicNames = [numAtomicOps]string{
	"fetch-add", "add", "cas", "swap", "min", "max",
}

func (o AtomicOp) String() string {
	if int(o) < len(atomicNames) {
		return atomicNames[o]
	}
	return fmt.Sprintf("atomic-op(%d)", uint8(o))
}

// Fetching reports whether the operation returns the old word to the
// issuer (the issuer blocks for the reply; non-fetching updates are
// fire-and-forget and fenced through AtomicAckFlagID).
func (o AtomicOp) Fetching() bool {
	switch o {
	case AtomicFetchAdd, AtomicCAS, AtomicSwap:
		return true
	}
	return false
}

// Combinable reports whether two same-address operations of this kind
// can merge into one inside the network (the Ultracomputer combining
// rule): adds combine by summing operands, min/max by folding them.
// CompareAndSwap and Swap depend on interleaving order and never
// combine.
func (o AtomicOp) Combinable() bool {
	switch o {
	case AtomicFetchAdd, AtomicAdd, AtomicMin, AtomicMax:
		return true
	}
	return false
}

// ApplyAtomic is the MC's atomic ALU: given the old word, the operand
// and the compare value it returns the word to store back and the
// value a fetching operation reports. Addition wraps like the
// hardware's 64-bit adder, so combining stays exact.
func ApplyAtomic(op AtomicOp, old, operand, cmp int64) (stored, fetched int64) {
	switch op {
	case AtomicFetchAdd, AtomicAdd:
		return old + operand, old
	case AtomicCAS:
		if old == cmp {
			return operand, old
		}
		return old, old
	case AtomicSwap:
		return operand, old
	case AtomicMin:
		if operand < old {
			return operand, old
		}
		return old, old
	case AtomicMax:
		if operand > old {
			return operand, old
		}
		return old, old
	}
	panic(fmt.Sprintf("mc: unknown atomic op %d", uint8(op)))
}

// CombineAtomic folds two operands of one combinable operation into
// the single operand the combined request carries upward.
func CombineAtomic(op AtomicOp, a, b int64) int64 {
	switch op {
	case AtomicFetchAdd, AtomicAdd:
		return a + b
	case AtomicMin:
		if b < a {
			return b
		}
		return a
	case AtomicMax:
		if b > a {
			return b
		}
		return a
	}
	panic(fmt.Sprintf("mc: combine of non-combinable atomic op %s", op))
}
