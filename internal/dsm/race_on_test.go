//go:build race

package dsm

// raceDetectorEnabled reports whether this test binary was built with
// the Go race detector. The zero-alloc guard skips under -race
// (instrumentation changes allocation behaviour), and the seeded
// staleness demonstration runs a genuine data race that the Go race
// detector would correctly flag.
const raceDetectorEnabled = true
