package dsm

import (
	"math"
	"strings"
	"testing"

	"ap1000plus/internal/fault"
	"ap1000plus/internal/machine"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/topology"
)

// TestCachePartialPageFill is the regression test for the seed code's
// partial-page bug: a fill installed a zeroed full page with only the
// loaded bytes copied in, so a later load at a DIFFERENT offset of
// the same page "hit" and returned zeros. Valid-range tracking must
// treat the unfetched offset as a miss and fetch it.
func TestCachePartialPageFill(t *testing.T) {
	f := newFixture(t)
	f.data[2][0] = 7.0
	f.data[2][9] = 9.0
	err := f.m.Run(func(c *machine.Cell) error {
		if c.ID() != 0 {
			return nil
		}
		d := f.ds[0]
		d.EnableWriteThroughPages()
		v0, err := d.LoadF64(f.ga(t, d, 2, 0))
		if err != nil {
			return err
		}
		if v0 != 7.0 {
			t.Errorf("first offset = %v, want 7", v0)
		}
		// Element 9 lives in the same page but was never fetched: the
		// seed code returned 0 here.
		v9, err := d.LoadF64(f.ga(t, d, 2, 9))
		if err != nil {
			return err
		}
		if v9 != 9.0 {
			t.Errorf("disjoint offset in cached page = %v, want 9 (stale zero-fill bug)", v9)
		}
		cs := d.CacheStats()
		if cs.Hits != 0 || cs.Misses != 2 {
			t.Errorf("cache stats = %+v, want 2 misses (unfetched bytes must not hit)", cs)
		}
		// Now both spans are valid; each re-load is a true hit.
		for i, want := range map[int]float64{0: 7.0, 9: 9.0} {
			v, err := d.LoadF64(f.ga(t, d, 2, i))
			if err != nil {
				return err
			}
			if v != want {
				t.Errorf("re-load [%d] = %v, want %v", i, v, want)
			}
		}
		if cs := d.CacheStats(); cs.Hits != 2 {
			t.Errorf("after re-loads: %+v, want 2 hits", cs)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCacheCrossCellStaleness is the regression test for the seed
// code's missing coherence: cell 0 caches a page of cell 2's block,
// cell 1 writes through to it, and without directory invalidation
// cell 0's next load returned the stale cached value.
func TestCacheCrossCellStaleness(t *testing.T) {
	f := newFixture(t)
	f.data[2][5] = 1.0
	err := f.m.Run(func(c *machine.Cell) error {
		d := f.ds[c.ID()]
		if c.ID() == 0 {
			d.EnableWriteThroughPages()
			v, err := d.LoadF64(f.ga(t, d, 2, 5))
			if err != nil {
				return err
			}
			if v != 1.0 {
				t.Errorf("initial load = %v, want 1", v)
			}
		}
		c.HWBarrier()
		if c.ID() == 1 {
			if err := d.StoreF64(f.ga(t, d, 2, 5), 2.0); err != nil {
				return err
			}
			// The owner invalidates sharers before acknowledging, so
			// the fence implies cell 0's copy is gone.
			d.Fence()
		}
		c.HWBarrier()
		if c.ID() == 0 {
			v, err := d.LoadF64(f.ga(t, d, 2, 5))
			if err != nil {
				return err
			}
			if v != 2.0 {
				t.Errorf("load after remote write-through = %v, want 2 (stale cache)", v)
			}
			cs := d.CacheStats()
			if cs.InvalsReceived == 0 {
				t.Errorf("no invalidation received: %+v", cs)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if cs := f.ds[2].CacheStats(); cs.InvalsSent == 0 {
		t.Errorf("owner sent no invalidation: %+v", cs)
	}
}

// TestCacheStalenessFlaggedWhenInvalidationDisabled reproduces the
// seed behaviour on demand: with invalidation handling disabled the
// reader keeps its stale copy — and a sanitized run must flag the
// stale hit as a coherence violation.
func TestCacheStalenessFlaggedWhenInvalidationDisabled(t *testing.T) {
	m, err := machine.New(machine.Config{Width: 2, Height: 2, MemoryPerCell: 1 << 22, Sanitize: true})
	if err != nil {
		t.Fatal(err)
	}
	ds := make([]*DSM, 4)
	segs := make([]*mem.Segment, 4)
	for id := 0; id < 4; id++ {
		cell := m.Cell(topology.CellID(id))
		if ds[id], err = New(cell); err != nil {
			t.Fatal(err)
		}
		seg, data, err := cell.AllocFloat64("shared", 64)
		if err != nil {
			t.Fatal(err)
		}
		segs[id] = seg
		if id == 2 {
			data[5] = 1.0
		}
	}
	addr := func(d *DSM) GAddr {
		a, err := d.Space().Global(2, segs[2].Base()+5*8)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	err = m.Run(func(c *machine.Cell) error {
		d := ds[c.ID()]
		if c.ID() == 0 {
			d.EnableWriteThroughPages()
			d.DisableInvalidation()
			if _, err := d.LoadF64(addr(d)); err != nil {
				return err
			}
		}
		c.HWBarrier()
		if c.ID() == 1 {
			if err := d.StoreF64(addr(d), 2.0); err != nil {
				return err
			}
			d.Fence()
		}
		c.HWBarrier()
		if c.ID() == 0 {
			v, err := d.LoadF64(addr(d))
			if err != nil {
				return err
			}
			// Invalidation was ignored, so the stale value survives —
			// that is the demonstrated bug, and the sanitizer sees it.
			if v != 1.0 {
				t.Errorf("expected the stale value 1 with invalidation disabled, got %v", v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	serr := m.SanitizeErr()
	if serr == nil {
		t.Fatal("sanitizer missed the stale cached load")
	}
	if !strings.Contains(serr.Error(), "stale page") {
		t.Errorf("unexpected sanitizer report: %v", serr)
	}
}

// TestCacheLRUEviction bounds the cache at one page and walks two
// owners' pages: every alternation evicts, and the obs counters agree
// with the cache's own statistics.
func TestCacheLRUEviction(t *testing.T) {
	m, err := machine.New(machine.Config{Width: 2, Height: 2, MemoryPerCell: 1 << 22, Observe: true})
	if err != nil {
		t.Fatal(err)
	}
	ds := make([]*DSM, 4)
	segs := make([]*mem.Segment, 4)
	for id := 0; id < 4; id++ {
		cell := m.Cell(topology.CellID(id))
		if ds[id], err = New(cell); err != nil {
			t.Fatal(err)
		}
		seg, data, err := cell.AllocFloat64("shared", 64)
		if err != nil {
			t.Fatal(err)
		}
		segs[id] = seg
		data[0] = float64(10 + id)
	}
	err = m.Run(func(c *machine.Cell) error {
		if c.ID() != 0 {
			return nil
		}
		d := ds[0]
		d.EnableWriteThroughPages()
		d.SetCacheCapacity(1)
		load := func(owner topology.CellID) error {
			a, err := d.Space().Global(owner, segs[owner].Base())
			if err != nil {
				return err
			}
			v, err := d.LoadF64(a)
			if err != nil {
				return err
			}
			if v != float64(10+int(owner)) {
				t.Errorf("owner %d = %v", owner, v)
			}
			return nil
		}
		// A miss, A hit, B miss (evicts A), A miss (evicts B).
		for _, owner := range []topology.CellID{2, 2, 3, 2} {
			if err := load(owner); err != nil {
				return err
			}
		}
		cs := d.CacheStats()
		if cs.Hits != 1 || cs.Misses != 3 || cs.Evictions != 2 {
			t.Errorf("cache stats = %+v, want 1 hit / 3 misses / 2 evictions", cs)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := func() (s struct{ h, m, e int64 }) {
		mt := m.Metrics()
		t := mt.Totals()
		s.h, s.m, s.e = t.DSMHits, t.DSMMisses, t.DSMEvictions
		return
	}()
	if tot.h != 1 || tot.m != 3 || tot.e != 2 {
		t.Errorf("obs counters = %+v, want 1/3/2", tot)
	}
}

// lcg is a tiny deterministic generator so both runs of the property
// workload see identical address/value sequences.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r)
}

// coherenceRun executes the multi-cell store/load/fence workload once
// and returns each cell's load log, the final shared memory, and the
// cache statistics.
func coherenceRun(t *testing.T, cached, sanitize bool, spec string) (logs [][]float64, memOut [][]float64, stats []CacheStats) {
	t.Helper()
	var plan *fault.Plan
	if spec != "" {
		p, err := fault.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		plan = p
	}
	m, err := machine.New(machine.Config{
		Width: 2, Height: 2, MemoryPerCell: 1 << 22,
		Sanitize: sanitize, Fault: plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := make([]*DSM, 4)
	segs := make([]*mem.Segment, 4)
	data := make([][]float64, 4)
	for id := 0; id < 4; id++ {
		cell := m.Cell(topology.CellID(id))
		if ds[id], err = New(cell); err != nil {
			t.Fatal(err)
		}
		if segs[id], data[id], err = cell.AllocFloat64("shared", 64); err != nil {
			t.Fatal(err)
		}
	}
	logs = make([][]float64, 4)
	const rounds = 6
	err = m.Run(func(c *machine.Cell) error {
		me := int(c.ID())
		d := ds[me]
		if cached {
			d.EnableWriteThroughPages()
			d.SetCacheCapacity(8)
		}
		for r := 0; r < rounds; r++ {
			writer := (r*3 + 1) % 4
			if me == writer {
				// One writer per round stores into every cell's block
				// (including its own — the local-store invalidation
				// path), then fences.
				seq := lcg(r + 1)
				for owner := 0; owner < 4; owner++ {
					for k := 0; k < 3; k++ {
						idx := int(seq.next() % 64)
						ga, err := d.Space().Global(topology.CellID(owner), segs[owner].Base()+mem.Addr(idx*8))
						if err != nil {
							return err
						}
						if err := d.StoreF64(ga, float64(r*1000+owner*100+idx)+0.5); err != nil {
							return err
						}
					}
				}
				d.Fence()
			}
			c.HWBarrier()
			// Every cell reads a deterministic mix of written and
			// unwritten slots from every block, twice — the second
			// sweep is where a cached run hits.
			for rep := 0; rep < 2; rep++ {
				seq := lcg(r + 101)
				for owner := 0; owner < 4; owner++ {
					for k := 0; k < 5; k++ {
						idx := int(seq.next() % 64)
						ga, err := d.Space().Global(topology.CellID(owner), segs[owner].Base()+mem.Addr(idx*8))
						if err != nil {
							return err
						}
						v, err := d.LoadF64(ga)
						if err != nil {
							return err
						}
						logs[me] = append(logs[me], v)
					}
				}
			}
			c.HWBarrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SanitizeErr(); err != nil {
		t.Fatalf("sanitizer: %v", err)
	}
	if err := m.FaultErr(); err != nil {
		t.Fatalf("fault: %v", err)
	}
	memOut = make([][]float64, 4)
	for id := 0; id < 4; id++ {
		memOut[id] = append([]float64(nil), data[id]...)
	}
	for id := 0; id < 4; id++ {
		stats = append(stats, ds[id].CacheStats())
	}
	return logs, memOut, stats
}

// TestDSMCacheCoherenceProperty runs the seeded store/load/fence
// workload cached and uncached — plain, sanitized, and under a
// drop+dup fault plan — and requires bit-identical loads and memory,
// with invalidations delivered exactly once.
func TestDSMCacheCoherenceProperty(t *testing.T) {
	for _, variant := range []struct {
		name     string
		sanitize bool
		spec     string
	}{
		{"plain", false, ""},
		{"sanitize", true, ""},
		{"drop+dup", false, "drop=0.05,dup=0.05,seed=42"},
	} {
		t.Run(variant.name, func(t *testing.T) {
			baseLogs, baseMem, _ := coherenceRun(t, false, variant.sanitize, variant.spec)
			logs, memOut, stats := coherenceRun(t, true, variant.sanitize, variant.spec)
			for id := 0; id < 4; id++ {
				if len(logs[id]) != len(baseLogs[id]) {
					t.Fatalf("cell %d: %d loads cached vs %d uncached", id, len(logs[id]), len(baseLogs[id]))
				}
				for i := range logs[id] {
					if math.Float64bits(logs[id][i]) != math.Float64bits(baseLogs[id][i]) {
						t.Errorf("cell %d load %d: cached %v, uncached %v", id, i, logs[id][i], baseLogs[id][i])
					}
				}
				for i := range memOut[id] {
					if math.Float64bits(memOut[id][i]) != math.Float64bits(baseMem[id][i]) {
						t.Errorf("cell %d mem[%d]: cached %v, uncached %v", id, i, memOut[id][i], baseMem[id][i])
					}
				}
			}
			var hits, sent, recv int64
			for _, cs := range stats {
				hits += cs.Hits
				sent += cs.InvalsSent
				recv += cs.InvalsReceived
			}
			if hits == 0 {
				t.Error("workload never hit the cache")
			}
			if sent == 0 {
				t.Error("workload never exercised invalidation")
			}
			if sent != recv {
				t.Errorf("invalidations sent %d != received %d (exactly-once violated)", sent, recv)
			}
		})
	}
}

// TestDSMCacheHitZeroAlloc guards the zero-allocation hit path: a
// cache hit returns a payload view over the cached page and must not
// allocate. Wired into make verify next to the PUT-issue guard.
func TestDSMCacheHitZeroAlloc(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race instrumentation changes allocation behaviour")
	}
	f := newFixture(t)
	f.data[2][3] = 6.25
	var allocs float64
	err := f.m.Run(func(c *machine.Cell) error {
		if c.ID() != 0 {
			return nil
		}
		d := f.ds[0]
		d.EnableWriteThroughPages()
		addr, err := d.Space().Global(2, f.segs[2].Base()+3*8)
		if err != nil {
			return err
		}
		if _, err := d.LoadF64(addr); err != nil {
			return err
		}
		allocs = testing.AllocsPerRun(200, func() {
			v, err := d.LoadF64(addr)
			if err != nil || v != 6.25 {
				t.Errorf("hit: v=%v err=%v", v, err)
			}
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("cache hit allocates %v per op, want 0", allocs)
	}
}

// TestEvictionNoticeCleansDirectory: when the LRU bound silently drops
// a page, the sharer's eviction notice must unregister it at the owner
// — a later store to the evicted page sends ZERO invalidations, while
// a page still resident draws exactly one. The regression this pins is
// the owner's directory going stale on silent eviction and spraying
// spurious invalidations forever after.
func TestEvictionNoticeCleansDirectory(t *testing.T) {
	m, err := machine.New(machine.Config{Width: 2, Height: 2, MemoryPerCell: 1 << 22, Observe: true})
	if err != nil {
		t.Fatal(err)
	}
	ds := make([]*DSM, 4)
	segs := make([]*mem.Segment, 4)
	for id := 0; id < 4; id++ {
		cell := m.Cell(topology.CellID(id))
		if ds[id], err = New(cell); err != nil {
			t.Fatal(err)
		}
		seg, data, err := cell.AllocFloat64("shared", 64)
		if err != nil {
			t.Fatal(err)
		}
		segs[id] = seg
		data[0] = float64(10 + id)
	}
	ga := func(d *DSM, owner topology.CellID) GAddr {
		a, err := d.Space().Global(owner, segs[owner].Base())
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	err = m.Run(func(c *machine.Cell) error {
		d := ds[c.ID()]
		if c.ID() == 0 {
			d.EnableWriteThroughPages()
			d.SetCacheCapacity(1)
			// Fill owner 2's page, then owner 3's: the second fill
			// evicts the first and the eviction notice unregisters
			// cell 0 at owner 2.
			for _, owner := range []topology.CellID{2, 3} {
				v, err := d.LoadF64(ga(d, owner))
				if err != nil {
					return err
				}
				if v != float64(10+int(owner)) {
					t.Errorf("owner %d = %v", owner, v)
				}
			}
			if cs := d.CacheStats(); cs.Evictions != 1 {
				t.Errorf("sharer stats = %+v, want 1 eviction", cs)
			}
		}
		c.HWBarrier()
		// Owner 2's page was evicted: its store must invalidate nobody.
		if c.ID() == 2 {
			if err := d.StoreF64(ga(d, 2), 20.5); err != nil {
				return err
			}
		}
		// Owner 3's page is still cached: its store invalidates exactly
		// cell 0's copy.
		if c.ID() == 3 {
			if err := d.StoreF64(ga(d, 3), 30.5); err != nil {
				return err
			}
		}
		c.HWBarrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if cs := ds[2].CacheStats(); cs.InvalsSent != 0 {
		t.Errorf("evicted page's owner sent %d invalidations, want 0 (stale directory entry)", cs.InvalsSent)
	}
	if cs := ds[3].CacheStats(); cs.InvalsSent != 1 {
		t.Errorf("resident page's owner sent %d invalidations, want 1", cs.InvalsSent)
	}
	if cs := ds[0].CacheStats(); cs.InvalsReceived != 1 {
		t.Errorf("sharer received %d invalidations, want 1", cs.InvalsReceived)
	}
	mt := m.Metrics()
	if tot := mt.Totals(); tot.DSMInvalsSent != 1 || tot.DSMInvalsRecv != 1 {
		t.Errorf("obs invals sent/recv = %d/%d, want 1/1", tot.DSMInvalsSent, tot.DSMInvalsRecv)
	}
}

// TestStaleEvictNoticeOutranked: an eviction notice that lost a race
// against a newer caching fill carries an older epoch; the owner must
// keep the fresher registration, so the sharer still gets its
// invalidation. (The synchronous test network cannot reorder the
// notice for real, so the stale notice is issued by hand.)
func TestStaleEvictNoticeOutranked(t *testing.T) {
	f := newFixture(t)
	f.data[2][0] = 1.0
	page := f.segs[2].Base() &^ mem.Addr(mem.PageSize-1)
	err := f.m.Run(func(c *machine.Cell) error {
		d := f.ds[c.ID()]
		if c.ID() == 0 {
			d.EnableWriteThroughPages()
			// Fill registers cell 0 under epoch 1; the hand-built
			// notice claims an eviction of an older (epoch-0) copy and
			// must be outranked.
			if _, err := d.LoadF64(f.ga(t, d, 2, 0)); err != nil {
				return err
			}
			c.SendDSMEvict(2, page, 0)
		}
		c.HWBarrier()
		if c.ID() == 2 {
			if err := d.StoreF64(f.ga(t, d, 2, 0), 2.0); err != nil {
				return err
			}
		}
		c.HWBarrier()
		if c.ID() == 0 {
			v, err := d.LoadF64(f.ga(t, d, 2, 0))
			if err != nil {
				return err
			}
			if v != 2.0 {
				t.Errorf("load after store = %v, want 2 (stale notice unregistered a live sharer)", v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if cs := f.ds[2].CacheStats(); cs.InvalsSent != 1 {
		t.Errorf("owner sent %d invalidations, want 1 (registration lost to stale notice)", cs.InvalsSent)
	}
	if cs := f.ds[0].CacheStats(); cs.InvalsReceived != 1 {
		t.Errorf("sharer received %d invalidations, want 1", cs.InvalsReceived)
	}
}

// BenchmarkDSMCacheHit measures the cached load fast path.
func BenchmarkDSMCacheHit(b *testing.B) {
	f := newFixture(b)
	f.data[2][3] = 6.25
	err := f.m.Run(func(c *machine.Cell) error {
		if c.ID() != 0 {
			return nil
		}
		d := f.ds[0]
		d.EnableWriteThroughPages()
		addr, err := d.Space().Global(2, f.segs[2].Base()+3*8)
		if err != nil {
			return err
		}
		if _, err := d.LoadF64(addr); err != nil {
			return err
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := d.LoadF64(addr); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
