// Package dsm implements the AP1000+'s distributed shared memory
// (S4.2). The SuperSPARC's 64-gigabyte physical space is split in
// half: the lower half is cell-local, the upper half is shared space
// divided into equal blocks, one per cell. A normal LOAD/STORE whose
// physical address falls in shared space is turned by the MSC+ into a
// remote access: "the MSC+ generates commands to translate the upper
// 10 bits of physical addresses ... to destination cell IDs and the
// other bits to local addresses at the destination cell."
//
// Remote loads block; remote stores are non-blocking and
// acknowledged automatically by the destination MSC+ — Fence waits
// for those acknowledgements.
//
// The package also provides the "write through page" mechanism: part
// of local memory acts as a cache for shared space, replacing remote
// loads of cached pages with local accesses; stores write through to
// the owning cell (S4.2 sketches this; the paper defers details, so
// the cache here is single-writer per page by convention).
package dsm

import (
	"fmt"
	"math"
	"sync"

	"ap1000plus/internal/machine"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/topology"
)

// SharedBase is the physical address where shared space begins: bit
// 35 of the 36-bit address (32 GB local / 32 GB shared).
const SharedBase uint64 = 1 << 35

// SharedSize is the total shared space (32 GB).
const SharedSize uint64 = 1 << 35

// GAddr is a global (shared-space) address.
type GAddr uint64

// Space maps global addresses for one machine size.
type Space struct {
	cells     int
	blockSize uint64
}

// NewSpace builds the shared-space geometry for n cells. Blocks are
// the largest power of two such that n blocks fit in shared space,
// matching the hardware's "divided into blocks equally" rule (for
// 1024 cells the block is 32 MB).
func NewSpace(cells int) (*Space, error) {
	if cells < 1 || cells > 1024 {
		return nil, fmt.Errorf("dsm: %d cells out of range", cells)
	}
	block := SharedSize
	for uint64(cells)*block > SharedSize {
		block >>= 1
	}
	// Round cells up to a power of two so the cell ID occupies a
	// fixed bit field, as the upper-10-bit decode requires.
	for block*pow2ceil(uint64(cells)) > SharedSize {
		block >>= 1
	}
	return &Space{cells: cells, blockSize: block}, nil
}

func pow2ceil(v uint64) uint64 {
	p := uint64(1)
	for p < v {
		p <<= 1
	}
	return p
}

// BlockSize reports bytes of shared space per cell.
func (s *Space) BlockSize() uint64 { return s.blockSize }

// Global forms the shared-space address of offset within cell's block.
func (s *Space) Global(cell topology.CellID, offset mem.Addr) (GAddr, error) {
	if int(cell) < 0 || int(cell) >= s.cells {
		return 0, fmt.Errorf("dsm: invalid cell %d", cell)
	}
	if uint64(offset) >= s.blockSize {
		return 0, fmt.Errorf("dsm: offset %#x outside the %d-byte block", offset, s.blockSize)
	}
	return GAddr(SharedBase + uint64(cell)*s.blockSize + uint64(offset)), nil
}

// Split decodes a shared-space address into its owning cell and the
// local address at that cell. Shared offsets map identically onto the
// owner's local addresses ("half of the local memory is mapped for
// shared space").
func (s *Space) Split(ga GAddr) (topology.CellID, mem.Addr, error) {
	if uint64(ga) < SharedBase {
		return 0, 0, fmt.Errorf("dsm: %#x is not a shared address", uint64(ga))
	}
	off := uint64(ga) - SharedBase
	cell := off / s.blockSize
	if cell >= uint64(s.cells) {
		return 0, 0, fmt.Errorf("dsm: %#x decodes to nonexistent cell %d", uint64(ga), cell)
	}
	return topology.CellID(cell), mem.Addr(off % s.blockSize), nil
}

// DSM is one cell's shared-memory interface.
type DSM struct {
	cell  *machine.Cell
	space *Space

	scratchSeg *mem.Segment
	scratch    []float64

	mu    sync.Mutex
	cache map[mem.Addr][]byte // write-through page cache, keyed by page-aligned GAddr offset
	on    bool
	stats CacheStats
}

// CacheStats counts write-through-page activity.
type CacheStats struct {
	Hits, Misses, WriteThroughs int64
}

// New builds the DSM interface for a cell.
func New(cell *machine.Cell) (*DSM, error) {
	space, err := NewSpace(cell.N())
	if err != nil {
		return nil, err
	}
	seg, scratch, err := cell.AllocFloat64("dsm.scratch", 1)
	if err != nil {
		return nil, err
	}
	return &DSM{cell: cell, space: space, scratchSeg: seg, scratch: scratch, cache: make(map[mem.Addr][]byte)}, nil
}

// Space exposes the address geometry.
func (d *DSM) Space() *Space { return d.space }

// EnableWriteThroughPages turns on the local page cache for remote
// reads.
func (d *DSM) EnableWriteThroughPages() {
	d.mu.Lock()
	d.on = true
	d.mu.Unlock()
}

// CacheStats snapshots cache counters.
func (d *DSM) CacheStats() CacheStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Load reads size bytes at the shared address. Local blocks are read
// directly; remote blocks go through the blocking remote-load path
// (or the write-through page cache when enabled).
func (d *DSM) Load(ga GAddr, size int64) (*mem.Payload, error) {
	cell, laddr, err := d.space.Split(ga)
	if err != nil {
		return nil, err
	}
	if cell == d.cell.ID() {
		d.cell.SanRead(laddr, mem.Contiguous(size), "DSM local load")
		return mem.CapturePayload(d.cell.Mem, laddr, mem.Contiguous(size))
	}
	if p, ok := d.cacheRead(ga, size); ok {
		return p, nil
	}
	p, err := d.cell.RemoteLoad(cell, laddr, size)
	if err != nil {
		return nil, err
	}
	d.cacheFill(ga, p)
	return p, nil
}

// LoadF64 loads one float64 from shared space.
func (d *DSM) LoadF64(ga GAddr) (float64, error) {
	p, err := d.Load(ga, 8)
	if err != nil {
		return 0, err
	}
	if vals, ok := p.Float64s(); ok {
		return vals[0], nil
	}
	if b, ok := p.Bytes(); ok && len(b) == 8 {
		var bits uint64
		for i := 7; i >= 0; i-- {
			bits = bits<<8 | uint64(b[i])
		}
		return math.Float64frombits(bits), nil
	}
	return 0, fmt.Errorf("dsm: 8-byte load returned unusable payload")
}

// Store writes the local range [laddr, laddr+size) to the shared
// address. Remote stores are non-blocking; use Fence to await their
// acknowledgements.
func (d *DSM) Store(ga GAddr, laddr mem.Addr, size int64) error {
	cell, raddr, err := d.space.Split(ga)
	if err != nil {
		return err
	}
	d.cacheInvalidate(ga, size)
	if cell == d.cell.ID() {
		d.cell.SanRead(laddr, mem.Contiguous(size), "DSM local store source")
		d.cell.SanWrite(raddr, mem.Contiguous(size), "DSM local store")
		return mem.Copy(d.cell.Mem, raddr, d.cell.Mem, laddr, size)
	}
	d.cell.RemoteStore(cell, raddr, laddr, size)
	d.mu.Lock()
	d.stats.WriteThroughs++
	d.mu.Unlock()
	return nil
}

// StoreF64 writes one float64 to shared space via the scratch slot.
// It fences before rewriting the scratch, so repeated stores are safe
// — and the sanitizer write hook below proves it: remove the fence
// and the CPU's scratch rewrite conflicts with the previous store's
// in-flight send-DMA capture read.
func (d *DSM) StoreF64(ga GAddr, v float64) error {
	d.cell.FenceRemoteStores()
	d.scratch[0] = v
	d.cell.SanWrite(d.scratchSeg.Base(), mem.Contiguous(8), "DSM StoreF64 scratch write")
	return d.Store(ga, d.scratchSeg.Base(), 8)
}

// Fence blocks until every remote store issued by this cell has been
// acknowledged — the completion detection of S4.2.
func (d *DSM) Fence() { d.cell.FenceRemoteStores() }

// pageOf returns the page-aligned offset key for caching.
func pageOf(ga GAddr) mem.Addr { return mem.Addr(uint64(ga) &^ (mem.PageSize - 1)) }

func (d *DSM) cacheRead(ga GAddr, size int64) (*mem.Payload, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.on {
		return nil, false
	}
	pg := pageOf(ga)
	if pageOf(ga+GAddr(size)-1) != pg {
		return nil, false // spans pages; fall back to remote
	}
	data, ok := d.cache[pg]
	if !ok {
		d.stats.Misses++
		return nil, false
	}
	d.stats.Hits++
	off := uint64(ga) - uint64(pg)
	// Wrap the cached bytes into a payload via a staging space.
	staging, err := mem.NewSpace(size + mem.PageSize)
	if err != nil {
		return nil, false
	}
	seg, err := staging.Alloc("wtp", mem.Bytes, size)
	if err != nil {
		return nil, false
	}
	copy(seg.BytesData(), data[off:off+uint64(size)])
	p, err := mem.CapturePayload(staging, seg.Base(), mem.Contiguous(size))
	if err != nil {
		return nil, false
	}
	return p, true
}

func (d *DSM) cacheFill(ga GAddr, p *mem.Payload) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.on {
		return
	}
	pg := pageOf(ga)
	if pageOf(ga+GAddr(p.Size())-1) != pg {
		return
	}
	data, ok := d.cache[pg]
	if !ok {
		data = make([]byte, mem.PageSize)
		d.cache[pg] = data
	}
	off := uint64(ga) - uint64(pg)
	if b, ok := p.Bytes(); ok {
		copy(data[off:], b)
		return
	}
	if vals, ok := p.Float64s(); ok {
		for i, v := range vals {
			bits := math.Float64bits(v)
			for j := 0; j < 8; j++ {
				data[int(off)+i*8+j] = byte(bits >> (8 * j))
			}
		}
	}
}

func (d *DSM) cacheInvalidate(ga GAddr, size int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.on {
		return
	}
	first := pageOf(ga)
	last := pageOf(ga + GAddr(size) - 1)
	for pg := first; pg <= last; pg += mem.PageSize {
		delete(d.cache, pg)
	}
}
