// Package dsm implements the AP1000+'s distributed shared memory
// (S4.2). The SuperSPARC's 64-gigabyte physical space is split in
// half: the lower half is cell-local, the upper half is shared space
// divided into equal blocks, one per cell. A normal LOAD/STORE whose
// physical address falls in shared space is turned by the MSC+ into a
// remote access: "the MSC+ generates commands to translate the upper
// 10 bits of physical addresses ... to destination cell IDs and the
// other bits to local addresses at the destination cell."
//
// Remote loads block; remote stores are non-blocking and
// acknowledged automatically by the destination MSC+ — Fence waits
// for those acknowledgements.
//
// The package also provides the "write through page" mechanism: part
// of local memory acts as a cache for shared space, replacing remote
// loads of cached pages with local accesses; stores write through to
// the owning cell (S4.2 sketches this; the paper defers the
// coherence details, which this implementation fills in with a
// directory protocol).
//
// # Cache coherence
//
// Each cache fill rides a remote load with the cache-fill bit set,
// which makes the owning cell's MSC+ register the requester in a
// per-page sharer directory BEFORE capturing the reply — so a fill is
// either fresh or its page is guaranteed to receive an invalidation.
// When a write-through store is delivered at the owner, the directory
// invalidates every registered sharer of the written pages before the
// store is acknowledged; invalidations ride the reliable T-net path,
// so they survive fault plans and apply exactly once. A writer's
// Fence therefore implies that every copy its stores invalidated is
// gone, and a fenced store followed by a barrier gives every cell a
// fresh view — the same discipline uncached DSM programs already
// needed for plain remote loads.
//
// Cache hits track validity per byte range (a fill records exactly
// the bytes it fetched), evict least-recently-used pages beyond a
// configurable capacity, and return a payload view over the cached
// bytes without allocating.
package dsm

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"ap1000plus/internal/machine"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/obs"
	"ap1000plus/internal/topology"
)

// SharedBase is the physical address where shared space begins: bit
// 35 of the 36-bit address (32 GB local / 32 GB shared).
const SharedBase uint64 = 1 << 35

// SharedSize is the total shared space (32 GB).
const SharedSize uint64 = 1 << 35

// GAddr is a global (shared-space) address.
type GAddr uint64

// Space maps global addresses for one machine size.
type Space struct {
	cells     int
	blockSize uint64
}

// NewSpace builds the shared-space geometry for n cells. Blocks are
// the largest power of two such that n blocks fit in shared space,
// matching the hardware's "divided into blocks equally" rule (for
// 1024 cells the block is 32 MB).
func NewSpace(cells int) (*Space, error) {
	if cells < 1 || cells > 1024 {
		return nil, fmt.Errorf("dsm: %d cells out of range", cells)
	}
	block := SharedSize
	for uint64(cells)*block > SharedSize {
		block >>= 1
	}
	// Round cells up to a power of two so the cell ID occupies a
	// fixed bit field, as the upper-10-bit decode requires.
	for block*pow2ceil(uint64(cells)) > SharedSize {
		block >>= 1
	}
	return &Space{cells: cells, blockSize: block}, nil
}

func pow2ceil(v uint64) uint64 {
	p := uint64(1)
	for p < v {
		p <<= 1
	}
	return p
}

// BlockSize reports bytes of shared space per cell.
func (s *Space) BlockSize() uint64 { return s.blockSize }

// Global forms the shared-space address of offset within cell's block.
func (s *Space) Global(cell topology.CellID, offset mem.Addr) (GAddr, error) {
	if int(cell) < 0 || int(cell) >= s.cells {
		return 0, fmt.Errorf("dsm: invalid cell %d", cell)
	}
	if uint64(offset) >= s.blockSize {
		return 0, fmt.Errorf("dsm: offset %#x outside the %d-byte block", offset, s.blockSize)
	}
	return GAddr(SharedBase + uint64(cell)*s.blockSize + uint64(offset)), nil
}

// Split decodes a shared-space address into its owning cell and the
// local address at that cell. Shared offsets map identically onto the
// owner's local addresses ("half of the local memory is mapped for
// shared space").
func (s *Space) Split(ga GAddr) (topology.CellID, mem.Addr, error) {
	if uint64(ga) < SharedBase {
		return 0, 0, fmt.Errorf("dsm: %#x is not a shared address", uint64(ga))
	}
	off := uint64(ga) - SharedBase
	cell := off / s.blockSize
	if cell >= uint64(s.cells) {
		return 0, 0, fmt.Errorf("dsm: %#x decodes to nonexistent cell %d", uint64(ga), cell)
	}
	return topology.CellID(cell), mem.Addr(off % s.blockSize), nil
}

// DefaultCachePages is the page-cache capacity used when
// EnableWriteThroughPages is called without SetCacheCapacity.
const DefaultCachePages = 64

// span is one valid byte range [lo, hi) within a cached page.
type span struct{ lo, hi int64 }

// cachePage is one cached shared-space page, an intrusive LRU node.
type cachePage struct {
	key   GAddr // page-aligned global address
	owner topology.CellID
	data  []byte // PageSize bytes; only spans are valid
	spans []span // sorted, disjoint valid ranges
	// stale marks a page an invalidation hit while invalidation
	// handling was disabled (DisableInvalidation): the bytes are known
	// to predate writer's store. Coherent caches never hold stale
	// pages — they drop them instead.
	stale  bool
	writer topology.CellID
	// epoch is the fill generation this copy was registered under at
	// the owner; an eviction notice echoes it so the owner can rank the
	// notice against later re-registrations.
	epoch int32

	prev, next *cachePage
}

// DSM is one cell's shared-memory interface.
type DSM struct {
	cell  *machine.Cell
	space *Space

	scratchSeg *mem.Segment
	scratch    []float64

	// cc / tl are the cell's obs hooks, nil when unobserved.
	cc *obs.CellCounters
	tl *obs.Timeline

	// mu guards the sharer-side cache state below.
	mu       sync.Mutex
	on       bool
	coherent bool
	capacity int
	pages    map[GAddr]*cachePage
	lruHead  *cachePage // most recent
	lruTail  *cachePage
	// gens counts invalidations per page and outlives eviction: a
	// miss snapshots the generation before issuing its remote load,
	// and the fill installs only if no invalidation arrived in
	// between — an in-flight fill can never resurrect invalidated
	// bytes.
	gens map[GAddr]uint64
	// fillEpoch counts caching fills per page; each fill registers the
	// sharer at the owner under its epoch so silent-eviction notices
	// can be ranked against re-fills.
	fillEpoch map[GAddr]int32
	stats     CacheStats
	// view is the reusable payload the hit path returns: a view over
	// the cached page's bytes, valid until the next operation on this
	// DSM. Reusing one payload value is what makes hits
	// allocation-free.
	view mem.Payload

	// dirMu guards the owner-side sharer directory: for each page of
	// THIS cell's shared block (keyed by owner-local page address),
	// the cells holding a cached copy with the newest fill epoch each
	// registered. Lock order is dirMu before mu when both are needed;
	// nothing sends packets while holding either.
	dirMu sync.Mutex
	dir   map[mem.Addr]map[topology.CellID]int32
}

// CacheStats counts write-through-page activity.
type CacheStats struct {
	Hits, Misses, WriteThroughs int64
	// Evictions counts pages dropped by the LRU capacity bound.
	Evictions int64
	// InvalsSent counts invalidation messages this cell issued as a
	// page owner; InvalsReceived counts invalidations applied to this
	// cell's cache as a sharer.
	InvalsSent, InvalsReceived int64
}

// New builds the DSM interface for a cell.
func New(cell *machine.Cell) (*DSM, error) {
	space, err := NewSpace(cell.N())
	if err != nil {
		return nil, err
	}
	seg, scratch, err := cell.AllocFloat64("dsm.scratch", 1)
	if err != nil {
		return nil, err
	}
	d := &DSM{
		cell: cell, space: space, scratchSeg: seg, scratch: scratch,
		coherent: true,
		capacity: DefaultCachePages,
		pages:     make(map[GAddr]*cachePage),
		gens:      make(map[GAddr]uint64),
		fillEpoch: make(map[GAddr]int32),
		dir:       make(map[mem.Addr]map[topology.CellID]int32),
	}
	if o := cell.Machine().Observer(); o != nil {
		d.cc = o.Cell(int(cell.ID()))
		d.tl = o.Timeline()
	}
	cell.SetDSMHooks(&machine.DSMHooks{
		Shared: d.shared,
		Stored: func(writer topology.CellID, addr mem.Addr, size int64) {
			d.stored(writer, addr, size)
		},
		Inval:   d.inval,
		Evicted: d.evicted,
	})
	return d, nil
}

// Space exposes the address geometry.
func (d *DSM) Space() *Space { return d.space }

// EnableWriteThroughPages turns on the local page cache for remote
// reads.
func (d *DSM) EnableWriteThroughPages() {
	d.mu.Lock()
	d.on = true
	d.mu.Unlock()
}

// SetCacheCapacity bounds the cache to n pages (LRU eviction beyond
// it). n < 1 is clamped to 1. Affects future fills only.
func (d *DSM) SetCacheCapacity(n int) {
	if n < 1 {
		n = 1
	}
	d.mu.Lock()
	d.capacity = n
	d.mu.Unlock()
}

// DisableInvalidation makes this cell's cache IGNORE arriving
// invalidations: pages are kept and marked stale instead of dropped,
// reproducing the seed code's unchecked single-writer-by-convention
// cache. A later hit on a stale page returns the pre-store bytes —
// and files an apsan coherence-violation report when the machine is
// sanitized. Test/demonstration knob only.
func (d *DSM) DisableInvalidation() {
	d.mu.Lock()
	d.coherent = false
	d.mu.Unlock()
}

// CacheStats snapshots cache counters.
func (d *DSM) CacheStats() CacheStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Load reads size bytes at the shared address. Local blocks are read
// directly; remote blocks go through the blocking remote-load path
// (or the write-through page cache when enabled).
//
// When the returned payload is served from the page cache it is a
// view over the cached bytes, valid until the next Load or cache
// operation on this DSM — copy out (or use LoadF64) before the next
// call if the data must persist.
func (d *DSM) Load(ga GAddr, size int64) (*mem.Payload, error) {
	cell, laddr, err := d.space.Split(ga)
	if err != nil {
		return nil, err
	}
	if cell == d.cell.ID() {
		d.cell.SanRead(laddr, mem.Contiguous(size), "DSM local load")
		return mem.CapturePayload(d.cell.Mem, laddr, mem.Contiguous(size))
	}
	if p, ok := d.cacheRead(ga, size, cell); ok {
		return p, nil
	}
	caching, gen, epoch := d.fillPrep(ga, size)
	if !caching {
		return d.cell.RemoteLoad(cell, laddr, size)
	}
	p, err := d.cell.RemoteLoadCaching(cell, laddr, size, epoch)
	if err != nil {
		return nil, err
	}
	d.cacheFill(ga, cell, p, gen, epoch)
	return p, nil
}

// LoadF64 loads one float64 from shared space.
func (d *DSM) LoadF64(ga GAddr) (float64, error) {
	p, err := d.Load(ga, 8)
	if err != nil {
		return 0, err
	}
	if vals, ok := p.Float64s(); ok {
		return vals[0], nil
	}
	if b, ok := p.Bytes(); ok && len(b) == 8 {
		return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
	}
	return 0, fmt.Errorf("dsm: 8-byte load returned unusable payload")
}

// Store writes the local range [laddr, laddr+size) to the shared
// address. Remote stores are non-blocking; use Fence to await their
// acknowledgements.
func (d *DSM) Store(ga GAddr, laddr mem.Addr, size int64) error {
	cell, raddr, err := d.space.Split(ga)
	if err != nil {
		return err
	}
	d.cacheInvalidate(ga, size)
	if cell == d.cell.ID() {
		d.cell.SanRead(laddr, mem.Contiguous(size), "DSM local store source")
		d.cell.SanWrite(raddr, mem.Contiguous(size), "DSM local store")
		if err := mem.Copy(d.cell.Mem, raddr, d.cell.Mem, laddr, size); err != nil {
			return err
		}
		// A local store to an owned shared page invalidates remote
		// cached copies the same way a delivered write-through store
		// does; there is no ack to order against, so it happens before
		// Store returns.
		d.stored(d.cell.ID(), raddr, size)
		return nil
	}
	d.cell.RemoteStore(cell, raddr, laddr, size)
	d.mu.Lock()
	d.stats.WriteThroughs++
	d.mu.Unlock()
	return nil
}

// StoreF64 writes one float64 to shared space via the scratch slot.
// It fences before rewriting the scratch, so repeated stores are safe
// — and the sanitizer write hook below proves it: remove the fence
// and the CPU's scratch rewrite conflicts with the previous store's
// in-flight send-DMA capture read.
func (d *DSM) StoreF64(ga GAddr, v float64) error {
	d.cell.FenceRemoteStores()
	d.scratch[0] = v
	d.cell.SanWrite(d.scratchSeg.Base(), mem.Contiguous(8), "DSM StoreF64 scratch write")
	return d.Store(ga, d.scratchSeg.Base(), 8)
}

// Fence blocks until every remote store issued by this cell has been
// acknowledged — the completion detection of S4.2. Because the owner
// invalidates sharers before acknowledging a write-through store, the
// fence also implies every invalidation those stores triggered has
// been applied.
func (d *DSM) Fence() { d.cell.FenceRemoteStores() }

// pageOf returns the page-aligned global address key for caching.
func pageOf(ga GAddr) GAddr { return ga &^ GAddr(mem.PageSize-1) }

// localPageOf returns the page-aligned owner-local address key for
// the sharer directory.
func localPageOf(a mem.Addr) mem.Addr { return a &^ mem.Addr(mem.PageSize-1) }

// cacheRead serves a load from the page cache. The returned payload
// is d.view — no allocation on a hit.
func (d *DSM) cacheRead(ga GAddr, size int64, owner topology.CellID) (*mem.Payload, bool) {
	d.mu.Lock()
	if !d.on {
		d.mu.Unlock()
		return nil, false
	}
	pg := pageOf(ga)
	if pageOf(ga+GAddr(size)-1) != pg {
		d.mu.Unlock()
		return nil, false // spans pages; fall back to remote
	}
	cp := d.pages[pg]
	if cp == nil {
		d.stats.Misses++
		d.mu.Unlock()
		if d.cc != nil {
			d.cc.DSMMisses.Add(1)
		}
		return nil, false
	}
	lo := int64(ga - pg)
	if !covered(cp.spans, lo, lo+size) {
		// The page is resident but these bytes were never fetched:
		// the seed code returned zeros here.
		d.stats.Misses++
		d.mu.Unlock()
		if d.cc != nil {
			d.cc.DSMMisses.Add(1)
		}
		return nil, false
	}
	d.stats.Hits++
	d.lruFront(cp)
	stale, writer := cp.stale, cp.writer
	d.view.SetView(cp.data[lo : lo+size])
	d.mu.Unlock()
	if d.cc != nil {
		d.cc.DSMHits.Add(1)
	}
	// Sanitizer-wise a cache hit is still a CPU read of the OWNER's
	// memory: a racing remote write to the same range must conflict
	// with it exactly as it would with an uncached remote load.
	d.cell.SanReadAt(int(owner), mem.Addr(uint64(ga)-SharedBase-uint64(owner)*d.space.blockSize),
		mem.Contiguous(size), "DSM cached load")
	if stale {
		if s := d.cell.Machine().Sanitizer(); s != nil {
			s.CoherenceViolation(int(d.cell.ID()), int(owner), int(writer), uint64(ga), size)
		}
	}
	return &d.view, true
}

// covered reports whether [lo, hi) lies within one valid span.
func covered(spans []span, lo, hi int64) bool {
	for _, s := range spans {
		if lo >= s.lo && hi <= s.hi {
			return true
		}
	}
	return false
}

// fillPrep snapshots the page's invalidation generation ahead of a
// caching remote load and advances the page's fill epoch (the load
// registers this cell at the owner under that epoch); caching is false
// when the cache is off or the range spans pages (plain remote load,
// no directory registration).
func (d *DSM) fillPrep(ga GAddr, size int64) (caching bool, gen uint64, epoch int32) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.on || pageOf(ga+GAddr(size)-1) != pageOf(ga) {
		return false, 0, 0
	}
	pg := pageOf(ga)
	d.fillEpoch[pg]++
	return true, d.gens[pg], d.fillEpoch[pg]
}

// cacheFill installs a loaded payload's bytes into the page cache,
// unless an invalidation for the page arrived after fillPrep. Any
// pages the capacity bound evicts have their silent-eviction notices
// sent after the cache lock is released (nothing sends while holding
// d.mu).
func (d *DSM) cacheFill(ga GAddr, owner topology.CellID, p *mem.Payload, gen uint64, epoch int32) {
	pg := pageOf(ga)
	var evicted []evictNotice
	d.mu.Lock()
	if !d.on || d.gens[pg] != gen {
		d.mu.Unlock()
		return // invalidated while the fill was in flight
	}
	cp := d.pages[pg]
	if cp == nil {
		cp = &cachePage{key: pg, owner: owner, data: make([]byte, mem.PageSize)}
		d.pages[pg] = cp
		d.lruFront(cp)
		evicted = d.evictOver()
	} else {
		d.lruFront(cp)
	}
	cp.epoch = epoch
	lo := int64(ga - pg)
	installed := false
	if b, ok := p.Bytes(); ok {
		copy(cp.data[lo:], b)
		installed = true
	} else if vals, ok := p.Float64s(); ok {
		for i, v := range vals {
			binary.LittleEndian.PutUint64(cp.data[lo+int64(i)*8:], math.Float64bits(v))
		}
		installed = true
	}
	if installed {
		cp.spans = addSpan(cp.spans, lo, lo+p.Size())
	}
	d.mu.Unlock()
	d.sendEvictNotices(evicted)
}

// addSpan merges [lo, hi) into a sorted disjoint span set.
func addSpan(spans []span, lo, hi int64) []span {
	out := spans[:0]
	for _, s := range spans {
		if s.hi < lo || s.lo > hi { // disjoint (touching ranges merge)
			out = append(out, s)
			continue
		}
		if s.lo < lo {
			lo = s.lo
		}
		if s.hi > hi {
			hi = s.hi
		}
	}
	// Insert keeping order.
	i := 0
	for i < len(out) && out[i].lo < lo {
		i++
	}
	out = append(out, span{})
	copy(out[i+1:], out[i:])
	out[i] = span{lo, hi}
	return out
}

// lruFront moves (or inserts) cp at the LRU head. Caller holds d.mu.
func (d *DSM) lruFront(cp *cachePage) {
	if d.lruHead == cp {
		return
	}
	// Unlink if resident.
	if cp.prev != nil {
		cp.prev.next = cp.next
	}
	if cp.next != nil {
		cp.next.prev = cp.prev
	}
	if d.lruTail == cp {
		d.lruTail = cp.prev
	}
	cp.prev = nil
	cp.next = d.lruHead
	if d.lruHead != nil {
		d.lruHead.prev = cp
	}
	d.lruHead = cp
	if d.lruTail == nil {
		d.lruTail = cp
	}
}

// lruRemove unlinks cp and drops it from the page map. Caller holds
// d.mu.
func (d *DSM) lruRemove(cp *cachePage) {
	if cp.prev != nil {
		cp.prev.next = cp.next
	} else if d.lruHead == cp {
		d.lruHead = cp.next
	}
	if cp.next != nil {
		cp.next.prev = cp.prev
	} else if d.lruTail == cp {
		d.lruTail = cp.prev
	}
	cp.prev, cp.next = nil, nil
	delete(d.pages, cp.key)
}

// evictNotice is one pending silent-eviction notification to a page
// owner, collected under d.mu and sent after it is released.
type evictNotice struct {
	owner topology.CellID
	page  mem.Addr // owner-local page address
	epoch int32
}

// evictOver drops LRU-tail pages until the capacity bound holds and
// returns the eviction notices the caller must send once d.mu is
// released. Caller holds d.mu. The notice keeps the owner's directory
// honest: without it every victim's entry would go stale and draw a
// spurious invalidation on the owner's next store to the page.
func (d *DSM) evictOver() []evictNotice {
	var out []evictNotice
	for len(d.pages) > d.capacity && d.lruTail != nil {
		victim := d.lruTail
		d.lruRemove(victim)
		d.stats.Evictions++
		out = append(out, evictNotice{
			owner: victim.owner,
			page:  mem.Addr(uint64(victim.key) - SharedBase - uint64(victim.owner)*d.space.blockSize),
			epoch: victim.epoch,
		})
		if d.cc != nil {
			d.cc.DSMEvictions.Add(1)
		}
		if d.tl != nil {
			// The observer exists whenever tl does.
			o := d.cell.Machine().Observer()
			d.tl.Instant(int(d.cell.ID()), obs.TidCPU, "dsm", "evict", o.NowUs())
		}
	}
	return out
}

// sendEvictNotices flushes pending eviction notices. Must be called
// without d.mu held.
func (d *DSM) sendEvictNotices(notices []evictNotice) {
	for _, n := range notices {
		d.cell.SendDSMEvict(n.owner, n.page, n.epoch)
	}
}

// cacheInvalidate drops this cell's own cached copy of a range it is
// about to store to (write-through never leaves the writer reading
// its own stale copy out of cache).
func (d *DSM) cacheInvalidate(ga GAddr, size int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.on {
		return
	}
	first := pageOf(ga)
	last := pageOf(ga + GAddr(size) - 1)
	for pg := first; pg <= last; pg += GAddr(mem.PageSize) {
		if cp := d.pages[pg]; cp != nil {
			d.lruRemove(cp)
		}
	}
}

// shared is the owner-side directory registration (the machine's
// Shared hook): sharer is about to hold a cached copy of pages of
// this cell's block, filled under the given epoch. Registrations keep
// the newest epoch seen, so a late-arriving eviction notice for an
// older copy cannot unregister a fresher one. Runs on a controller
// goroutine.
func (d *DSM) shared(sharer topology.CellID, addr mem.Addr, size int64, epoch int32) {
	if size <= 0 {
		return
	}
	first := localPageOf(addr)
	last := localPageOf(addr + mem.Addr(size) - 1)
	d.dirMu.Lock()
	for pg := first; pg <= last; pg += mem.Addr(mem.PageSize) {
		set := d.dir[pg]
		if set == nil {
			set = make(map[topology.CellID]int32)
			d.dir[pg] = set
		}
		if have, ok := set[sharer]; !ok || have < epoch {
			set[sharer] = epoch
		}
	}
	d.dirMu.Unlock()
}

// evicted is the owner-side response to a sharer's silent-eviction
// notice (the machine's Evicted hook): drop the sharer from the page's
// set unless a newer fill has re-registered it — the notice raced a
// re-fill and lost. Runs on a controller goroutine.
func (d *DSM) evicted(sharer topology.CellID, page mem.Addr, epoch int64) {
	pg := localPageOf(page)
	d.dirMu.Lock()
	if set := d.dir[pg]; set != nil {
		if have, ok := set[sharer]; ok && int64(have) <= epoch {
			delete(set, sharer)
			if len(set) == 0 {
				delete(d.dir, pg)
			}
		}
	}
	d.dirMu.Unlock()
}

// stored is the owner-side invalidation fan-out (the machine's Stored
// hook, and the local-store path above): a store into [addr,
// addr+size) of this cell's block has been applied; every registered
// sharer of the written pages is invalidated. The sharer sets are
// snapshotted under dirMu and the sends happen lock-free, so an
// invalidation's synchronous delivery (which takes the sharer's cache
// lock) can never deadlock against a concurrent registration.
func (d *DSM) stored(writer topology.CellID, addr mem.Addr, size int64) {
	if size <= 0 {
		return
	}
	first := localPageOf(addr)
	last := localPageOf(addr + mem.Addr(size) - 1)
	type outInval struct {
		dst  topology.CellID
		page mem.Addr
	}
	var out []outInval
	d.dirMu.Lock()
	for pg := first; pg <= last; pg += mem.Addr(mem.PageSize) {
		for sharer := range d.dir[pg] {
			out = append(out, outInval{sharer, pg})
		}
		delete(d.dir, pg)
	}
	d.dirMu.Unlock()
	if len(out) == 0 {
		return
	}
	d.mu.Lock()
	d.stats.InvalsSent += int64(len(out))
	d.mu.Unlock()
	for _, iv := range out {
		d.cell.SendDSMInval(iv.dst, iv.page, writer)
	}
}

// inval is the sharer-side invalidation (the machine's Inval hook):
// the page at owner-local address page of owner's block was written
// by writer. Coherent caches drop the page; with invalidation
// disabled the page is kept and marked stale. Either way the page's
// generation advances, so an in-flight fill that predates the
// invalidation is discarded. Runs on a controller goroutine.
func (d *DSM) inval(owner topology.CellID, page mem.Addr, writer topology.CellID) {
	pg := pageOf(GAddr(SharedBase + uint64(owner)*d.space.blockSize + uint64(page)))
	d.mu.Lock()
	d.gens[pg]++
	d.stats.InvalsReceived++
	if cp := d.pages[pg]; cp != nil {
		if d.coherent {
			d.lruRemove(cp)
		} else {
			cp.stale = true
			cp.writer = writer
		}
	}
	d.mu.Unlock()
}
