//go:build !race

package dsm

// raceDetectorEnabled: see race_on_test.go.
const raceDetectorEnabled = false
