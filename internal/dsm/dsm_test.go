package dsm

import (
	"testing"

	"ap1000plus/internal/machine"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/topology"
)

func TestSpaceGeometry(t *testing.T) {
	s, err := NewSpace(1024)
	if err != nil {
		t.Fatal(err)
	}
	if s.BlockSize() != 32<<20 {
		t.Errorf("1024-cell block = %d, want 32MB", s.BlockSize())
	}
	s4, _ := NewSpace(4)
	if s4.BlockSize() != 8<<30 {
		t.Errorf("4-cell block = %d, want 8GB", s4.BlockSize())
	}
	if _, err := NewSpace(0); err == nil {
		t.Error("0 cells should fail")
	}
	if _, err := NewSpace(2048); err == nil {
		t.Error("2048 cells should fail")
	}
}

func TestGlobalSplitRoundTrip(t *testing.T) {
	s, _ := NewSpace(64)
	for _, cell := range []topology.CellID{0, 1, 31, 63} {
		for _, off := range []mem.Addr{0, 4096, 123456} {
			ga, err := s.Global(cell, off)
			if err != nil {
				t.Fatal(err)
			}
			gotCell, gotOff, err := s.Split(ga)
			if err != nil {
				t.Fatal(err)
			}
			if gotCell != cell || gotOff != off {
				t.Fatalf("round trip (%d,%#x) -> (%d,%#x)", cell, off, gotCell, gotOff)
			}
		}
	}
}

func TestGlobalSplitErrors(t *testing.T) {
	s, _ := NewSpace(4)
	if _, err := s.Global(9, 0); err == nil {
		t.Error("bad cell accepted")
	}
	if _, err := s.Global(0, mem.Addr(s.BlockSize())); err == nil {
		t.Error("offset past block accepted")
	}
	if _, _, err := s.Split(GAddr(100)); err == nil {
		t.Error("local address accepted as shared")
	}
}

type fixture struct {
	m    *machine.Machine
	segs []*mem.Segment
	data [][]float64
	ds   []*DSM
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	m, err := machine.New(machine.Config{Width: 2, Height: 2, MemoryPerCell: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{m: m}
	for id := 0; id < 4; id++ {
		cell := m.Cell(topology.CellID(id))
		d, err := New(cell)
		if err != nil {
			t.Fatal(err)
		}
		seg, data, err := cell.AllocFloat64("shared", 64)
		if err != nil {
			t.Fatal(err)
		}
		f.ds = append(f.ds, d)
		f.segs = append(f.segs, seg)
		f.data = append(f.data, data)
	}
	return f
}

// ga returns the shared-space address of element i of cell id's
// "shared" segment. Shared offsets equal local addresses by the
// identity mapping.
func (f *fixture) ga(t *testing.T, d *DSM, id topology.CellID, i int) GAddr {
	t.Helper()
	a, err := d.Space().Global(id, f.segs[id].Base()+mem.Addr(i*8))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestRemoteStoreLoadF64(t *testing.T) {
	f := newFixture(t)
	err := f.m.Run(func(c *machine.Cell) error {
		d := f.ds[c.ID()]
		if c.ID() == 0 {
			// Store into every other cell's block.
			for dst := 1; dst < 4; dst++ {
				if err := d.StoreF64(f.ga(t, d, topology.CellID(dst), 3), 10.0+float64(dst)); err != nil {
					return err
				}
			}
			d.Fence()
			// Read them back.
			for dst := 1; dst < 4; dst++ {
				v, err := d.LoadF64(f.ga(t, d, topology.CellID(dst), 3))
				if err != nil {
					return err
				}
				if v != 10.0+float64(dst) {
					t.Errorf("cell %d slot = %v", dst, v)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for dst := 1; dst < 4; dst++ {
		if f.data[dst][3] != 10.0+float64(dst) {
			t.Errorf("cell %d memory = %v", dst, f.data[dst][3])
		}
	}
}

func TestLocalFastPath(t *testing.T) {
	f := newFixture(t)
	err := f.m.Run(func(c *machine.Cell) error {
		d := f.ds[c.ID()]
		me := c.ID()
		if err := d.StoreF64(f.ga(t, d, me, 0), 5.5); err != nil {
			return err
		}
		v, err := d.LoadF64(f.ga(t, d, me, 0))
		if err != nil {
			return err
		}
		if v != 5.5 {
			t.Errorf("cell %d local = %v", me, v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Local accesses never touch the network.
	if n := f.m.TNetStats().Messages; n != 0 {
		t.Errorf("local DSM access generated %d network messages", n)
	}
}

func TestBulkStoreLoad(t *testing.T) {
	f := newFixture(t)
	err := f.m.Run(func(c *machine.Cell) error {
		d := f.ds[c.ID()]
		if c.ID() != 1 {
			return nil
		}
		for i := 0; i < 8; i++ {
			f.data[1][i] = float64(i) * 1.5
		}
		if err := d.Store(f.ga(t, d, 3, 0), f.segs[1].Base(), 64); err != nil {
			return err
		}
		d.Fence()
		p, err := d.Load(f.ga(t, d, 3, 0), 64)
		if err != nil {
			return err
		}
		vals, ok := p.Float64s()
		if !ok {
			t.Error("payload not float64")
			return nil
		}
		for i := 0; i < 8; i++ {
			if vals[i] != float64(i)*1.5 {
				t.Errorf("vals[%d] = %v", i, vals[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWriteThroughPageCache(t *testing.T) {
	f := newFixture(t)
	err := f.m.Run(func(c *machine.Cell) error {
		d := f.ds[c.ID()]
		switch c.ID() {
		case 2:
			f.data[2][7] = 42.0
		case 0:
			d.EnableWriteThroughPages()
		}
		c.HWBarrier()
		if c.ID() == 0 {
			addr := f.ga(t, d, 2, 7)
			// First load misses and fills.
			v, err := d.LoadF64(addr)
			if err != nil {
				return err
			}
			before := f.m.TNetStats().Messages
			// Second load must be served from the cache.
			v2, err := d.LoadF64(addr)
			if err != nil {
				return err
			}
			if v != 42 || v2 != 42 {
				t.Errorf("v=%v v2=%v", v, v2)
			}
			if after := f.m.TNetStats().Messages; after != before {
				t.Error("cached load touched the network")
			}
			cs := d.CacheStats()
			if cs.Hits != 1 || cs.Misses != 1 {
				t.Errorf("cache stats = %+v", cs)
			}
			// A store through this cell invalidates its own copy.
			if err := d.StoreF64(addr, 43); err != nil {
				return err
			}
			d.Fence()
			v3, err := d.LoadF64(addr)
			if err != nil {
				return err
			}
			if v3 != 43 {
				t.Errorf("after invalidate: %v", v3)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLoadUnmappedFaults(t *testing.T) {
	f := newFixture(t)
	err := f.m.Run(func(c *machine.Cell) error {
		if c.ID() != 0 {
			return nil
		}
		d := f.ds[0]
		ga, _ := d.Space().Global(1, 0x500000) // unmapped offset at cell 1
		if _, err := d.LoadF64(ga); err == nil {
			t.Error("load of unmapped remote memory should error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.m.Cell(1).OS.Interrupts(machine.IntrPageFault) == 0 {
		t.Error("remote cell should log the page fault")
	}
}
