package barrier

import (
	"math"
	"math/rand"
	"testing"

	"ap1000plus/internal/machine"
	"ap1000plus/internal/topology"
	"ap1000plus/internal/trace"
)

// TestCollectiveStress runs a long random (but SPMD-identical)
// sequence of mixed collectives — all-cell barriers, group barriers,
// scalar reductions with varying operators, vector reductions of
// varying lengths — and checks every result against locally computed
// expectations. This shakes out register-reuse and ring-ordering bugs
// that single-collective tests cannot reach.
func TestCollectiveStress(t *testing.T) {
	f := newFixture(t, 4, 2, "")
	rowA := f.m.DefineGroup(topology.Row(f.m.Torus(), 0))
	rowB := f.m.DefineGroup(topology.Row(f.m.Torus(), 1))

	// The schedule is generated identically on every cell.
	type step struct {
		kind  int
		op    trace.ReduceOp
		group trace.GroupID
		vlen  int
	}
	const steps = 120
	schedule := make([]step, steps)
	rng := rand.New(rand.NewSource(99))
	for i := range schedule {
		schedule[i] = step{
			kind:  rng.Intn(4),
			op:    trace.ReduceOp(rng.Intn(3)),
			group: trace.AllGroup,
			vlen:  1 + rng.Intn(64),
		}
		if rng.Intn(3) == 0 {
			if rng.Intn(2) == 0 {
				schedule[i].group = rowA
			} else {
				schedule[i].group = rowB
			}
		}
	}

	expect := func(g *topology.Group, op trace.ReduceOp, val func(r int) float64) float64 {
		var acc float64
		for i, m := range g.Members() {
			v := val(int(m))
			if i == 0 {
				acc = v
				continue
			}
			switch op {
			case trace.ReduceSum:
				acc += v
			case trace.ReduceMax:
				acc = math.Max(acc, v)
			case trace.ReduceMin:
				acc = math.Min(acc, v)
			}
		}
		return acc
	}

	err := f.m.Run(func(c *machine.Cell) error {
		s := f.syncs[c.ID()]
		me := int(c.ID())
		for i, st := range schedule {
			g := f.m.Group(st.group)
			if !g.Contains(c.ID()) {
				// Non-members skip group steps; re-sync at all-group
				// steps only. To keep lockstep, members and
				// non-members alike hit the all-cells barrier placed
				// after every group step.
				if st.group != trace.AllGroup {
					s.Barrier(trace.AllGroup)
					continue
				}
			}
			val := func(r int) float64 { return float64((r+1)*(i+1)) * 0.5 }
			switch st.kind {
			case 0:
				s.Barrier(st.group)
			case 1:
				got := s.Reduce(st.group, st.op, val(me))
				want := expect(g, st.op, val)
				if got != want {
					t.Errorf("step %d (%s group %d): got %v, want %v", i, st.op, st.group, got, want)
					return nil
				}
			case 2:
				vec := make([]float64, st.vlen)
				for k := range vec {
					vec[k] = val(me) + float64(k)
				}
				if err := s.ReduceVec(st.group, trace.ReduceSum, vec); err != nil {
					return err
				}
				for k := range vec {
					want := expect(g, trace.ReduceSum, func(r int) float64 { return val(r) + float64(k) })
					if math.Abs(vec[k]-want) > 1e-9 {
						t.Errorf("step %d vec[%d]: got %v, want %v", i, k, vec[k], want)
						return nil
					}
				}
			case 3:
				// Mixed: barrier then reduce on the same group
				// back-to-back (register reuse pressure).
				s.Barrier(st.group)
				got := s.Reduce(st.group, trace.ReduceMin, val(me))
				want := expect(g, trace.ReduceMin, val)
				if got != want {
					t.Errorf("step %d mixed: got %v, want %v", i, got, want)
					return nil
				}
			}
			if st.group != trace.AllGroup {
				s.Barrier(trace.AllGroup)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Register protocol integrity across the whole run.
	for id := 0; id < f.m.Cells(); id++ {
		if s := f.m.Cell(topology.CellID(id)).Cregs.Stats(); s.Overwrites != 0 {
			t.Errorf("cell %d register overwrites = %d", id, s.Overwrites)
		}
	}
}
