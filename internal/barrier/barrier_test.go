package barrier

import (
	"math"
	"sync/atomic"
	"testing"

	"ap1000plus/internal/machine"
	"ap1000plus/internal/sendrecv"
	"ap1000plus/internal/topology"
	"ap1000plus/internal/trace"
)

type fixture struct {
	m     *machine.Machine
	syncs []*Sync
}

func newFixture(t testing.TB, w, h int, traceApp string) *fixture {
	t.Helper()
	m, err := machine.New(machine.Config{Width: w, Height: h, MemoryPerCell: 1 << 22, TraceApp: traceApp})
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{m: m}
	for id := 0; id < m.Cells(); id++ {
		cell := m.Cell(topology.CellID(id))
		ep := sendrecv.New(cell, 0)
		s, err := New(cell, ep)
		if err != nil {
			t.Fatal(err)
		}
		f.syncs = append(f.syncs, s)
	}
	return f
}

func TestAllCellsBarrier(t *testing.T) {
	f := newFixture(t, 2, 2, "")
	var arrived atomic.Int64
	err := f.m.Run(func(c *machine.Cell) error {
		arrived.Add(1)
		f.syncs[c.ID()].Barrier(trace.AllGroup)
		if arrived.Load() != 4 {
			t.Error("released early")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.m.Barriers() != 1 {
		t.Errorf("hardware barriers = %d (all-cells barrier must use the S-net)", f.m.Barriers())
	}
}

func TestGroupBarrierSoftware(t *testing.T) {
	f := newFixture(t, 4, 2, "")
	row0 := f.m.DefineGroup(topology.Row(f.m.Torus(), 0))
	var inRow atomic.Int64
	err := f.m.Run(func(c *machine.Cell) error {
		if !f.m.Group(row0).Contains(c.ID()) {
			return nil
		}
		for round := 0; round < 5; round++ {
			inRow.Add(1)
			f.syncs[c.ID()].Barrier(row0)
			if got := inRow.Load(); got < int64((round+1)*4) {
				t.Errorf("round %d released with %d arrivals", round, got)
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.m.Barriers() != 0 {
		t.Error("group barrier must not use the S-net")
	}
}

func TestScalarReduceSum(t *testing.T) {
	f := newFixture(t, 4, 4, "")
	err := f.m.Run(func(c *machine.Cell) error {
		got := f.syncs[c.ID()].Reduce(trace.AllGroup, trace.ReduceSum, float64(c.ID())+1)
		want := float64(16 * 17 / 2) // 1+2+...+16
		if got != want {
			t.Errorf("cell %d: sum = %v, want %v", c.ID(), got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScalarReduceMaxMin(t *testing.T) {
	f := newFixture(t, 2, 2, "")
	err := f.m.Run(func(c *machine.Cell) error {
		s := f.syncs[c.ID()]
		x := float64(c.ID()*10) - 15 // -15, -5, 5, 15
		if got := s.Reduce(trace.AllGroup, trace.ReduceMax, x); got != 15 {
			t.Errorf("cell %d max = %v", c.ID(), got)
		}
		if got := s.Reduce(trace.AllGroup, trace.ReduceMin, x); got != -15 {
			t.Errorf("cell %d min = %v", c.ID(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGroupScalarReduce(t *testing.T) {
	f := newFixture(t, 4, 2, "")
	col1 := f.m.DefineGroup(topology.Column(f.m.Torus(), 1))
	err := f.m.Run(func(c *machine.Cell) error {
		g := f.m.Group(col1)
		if !g.Contains(c.ID()) {
			return nil
		}
		got := f.syncs[c.ID()].Reduce(col1, trace.ReduceSum, 1)
		if got != float64(g.Size()) {
			t.Errorf("cell %d: group sum = %v, want %d", c.ID(), got, g.Size())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedReductions(t *testing.T) {
	// Back-to-back reductions must not corrupt each other via
	// register reuse (p-bit protocol).
	f := newFixture(t, 2, 2, "")
	err := f.m.Run(func(c *machine.Cell) error {
		s := f.syncs[c.ID()]
		for round := 1; round <= 50; round++ {
			got := s.Reduce(trace.AllGroup, trace.ReduceSum, float64(round))
			if got != float64(4*round) {
				t.Errorf("cell %d round %d: %v", c.ID(), round, got)
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Correct protocols never overwrite a full register.
	for id := 0; id < 4; id++ {
		if s := f.m.Cell(topology.CellID(id)).Cregs.Stats(); s.Overwrites != 0 {
			t.Errorf("cell %d register overwrites = %d", id, s.Overwrites)
		}
	}
}

func TestVectorReduceAll(t *testing.T) {
	f := newFixture(t, 2, 2, "")
	err := f.m.Run(func(c *machine.Cell) error {
		vec := make([]float64, 100)
		for i := range vec {
			vec[i] = float64(int(c.ID())+1) * float64(i)
		}
		if err := f.syncs[c.ID()].ReduceVec(trace.AllGroup, trace.ReduceSum, vec); err != nil {
			return err
		}
		for i := range vec {
			want := 10 * float64(i) // (1+2+3+4)*i
			if math.Abs(vec[i]-want) > 1e-12 {
				t.Errorf("cell %d vec[%d] = %v, want %v", c.ID(), i, vec[i], want)
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVectorReduceSubgroup(t *testing.T) {
	f := newFixture(t, 4, 2, "")
	row1 := f.m.DefineGroup(topology.Row(f.m.Torus(), 1))
	err := f.m.Run(func(c *machine.Cell) error {
		g := f.m.Group(row1)
		if !g.Contains(c.ID()) {
			return nil
		}
		vec := []float64{float64(c.ID()), 1}
		if err := f.syncs[c.ID()].ReduceVec(row1, trace.ReduceSum, vec); err != nil {
			return err
		}
		var wantSum float64
		for _, m := range g.Members() {
			wantSum += float64(m)
		}
		if vec[0] != wantSum || vec[1] != float64(g.Size()) {
			t.Errorf("cell %d vec = %v (want [%v %d])", c.ID(), vec, wantSum, g.Size())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVectorReduceRepeated(t *testing.T) {
	f := newFixture(t, 2, 2, "")
	err := f.m.Run(func(c *machine.Cell) error {
		for round := 1; round <= 10; round++ {
			vec := []float64{float64(round), float64(c.ID())}
			if err := f.syncs[c.ID()].ReduceVec(trace.AllGroup, trace.ReduceSum, vec); err != nil {
				return err
			}
			if vec[0] != float64(4*round) || vec[1] != 6 {
				t.Errorf("cell %d round %d: %v", c.ID(), round, vec)
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTable3SendAccounting checks the paper's Table 3 arithmetic: a
// vector reduction over P cells generates P-1 SENDs in total (the
// accumulating ring pass; distribution rides the B-net).
func TestTable3SendAccounting(t *testing.T) {
	f := newFixture(t, 4, 4, "vgop")
	const rounds = 8
	err := f.m.Run(func(c *machine.Cell) error {
		vec := make([]float64, 50)
		for round := 0; round < rounds; round++ {
			if err := f.syncs[c.ID()].ReduceVec(trace.AllGroup, trace.ReduceSum, vec); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	row := trace.Stats(f.m.Trace())
	if row.VGop != rounds {
		t.Errorf("VGop/PE = %v", row.VGop)
	}
	wantSend := float64(rounds) * float64(16-1) / 16 // 15/16 per vgop per PE
	if math.Abs(row.Send-wantSend) > 1e-9 {
		t.Errorf("Send/PE = %v, want %v (the CG 365.6/390 ratio)", row.Send, wantSend)
	}
}

func TestTraceEventsRecorded(t *testing.T) {
	f := newFixture(t, 2, 2, "sync")
	g2 := f.m.DefineGroup(topology.Row(f.m.Torus(), 0))
	err := f.m.Run(func(c *machine.Cell) error {
		s := f.syncs[c.ID()]
		s.Barrier(trace.AllGroup)
		s.Reduce(trace.AllGroup, trace.ReduceSum, 1)
		if f.m.Group(g2).Contains(c.ID()) {
			s.Barrier(g2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	row := trace.Stats(f.m.Trace())
	if row.Gop != 1 {
		t.Errorf("Gop = %v", row.Gop)
	}
	if row.Sync != 1.5 { // all cells + half the cells
		t.Errorf("Sync = %v", row.Sync)
	}
}

func TestNonMemberPanics(t *testing.T) {
	f := newFixture(t, 4, 2, "")
	row0 := f.m.DefineGroup(topology.Row(f.m.Torus(), 0))
	err := f.m.Run(func(c *machine.Cell) error {
		if c.ID() != 7 {
			return nil
		}
		defer func() {
			if recover() == nil {
				t.Error("expected panic for non-member collective")
			}
		}()
		f.syncs[7].Barrier(row0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScalarReduce16(b *testing.B) {
	f := newFixture(b, 4, 4, "")
	err := f.m.Run(func(c *machine.Cell) error {
		s := f.syncs[c.ID()]
		for i := 0; i < b.N; i++ {
			s.Reduce(trace.AllGroup, trace.ReduceSum, 1)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkVectorReduce16x1400(b *testing.B) {
	// The CG configuration: 11200-byte vectors (S5.4).
	f := newFixture(b, 4, 4, "")
	err := f.m.Run(func(c *machine.Cell) error {
		vec := make([]float64, 1400)
		for i := 0; i < b.N; i++ {
			if err := f.syncs[c.ID()].ReduceVec(trace.AllGroup, trace.ReduceSum, vec); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
