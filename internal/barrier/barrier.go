// Package barrier implements the AP1000+'s synchronization and
// reduction library (S4.5):
//
//   - All-cells barriers use the S-net hardware.
//   - Group barriers run in software over the communication
//     registers, as a store/load tree ("Software synchronization can
//     be used for barrier synchronization for specific groups of
//     cells").
//   - Scalar global reductions use the communication registers with a
//     binary tree: children remote-store partial values into their
//     parent's registers (p-bit handshake), the parent combines with
//     plain loads, and results flow back down.
//   - Vector global reductions circulate through ring buffers with
//     SEND/RECEIVE: an accumulating pass around the group ring (P-1
//     sends) whose final cell owns the result, followed by a B-net
//     broadcast — matching the paper's Table 3 accounting where a
//     16-cell CG shows 15/16 SENDs per vector reduction per PE.
package barrier

import (
	"fmt"
	"math"

	"ap1000plus/internal/machine"
	"ap1000plus/internal/mc"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/sendrecv"
	"ap1000plus/internal/topology"
	"ap1000plus/internal/trace"
)

// regsPerGroup is the communication-register region reserved per
// group: two 8-byte up pairs, one 8-byte down pair, two 4-byte
// barrier-up slots, one 4-byte barrier-down slot, padded to 16.
// With 128 registers, at most 8 groups can synchronize concurrently;
// more groups alias regions, which is safe only if they never run
// collectives at the same time.
const regsPerGroup = 16

// Sync provides barriers and reductions for one cell.
type Sync struct {
	cell *machine.Cell
	ep   *sendrecv.Endpoint

	f64Scratch []float64
	f64Seg     *mem.Segment
	tokSeg     *mem.Segment
	vecSeg     *mem.Segment
	vecData    []float64
}

// New builds the synchronization library for a cell. ep may be nil if
// vector reductions are never used.
func New(cell *machine.Cell, ep *sendrecv.Endpoint) (*Sync, error) {
	f64Seg, f64, err := cell.AllocFloat64("sync.f64", 1)
	if err != nil {
		return nil, err
	}
	tokSeg, _, err := cell.AllocBytes("sync.tok", 4)
	if err != nil {
		return nil, err
	}
	return &Sync{cell: cell, ep: ep, f64Seg: f64Seg, f64Scratch: f64, tokSeg: tokSeg}, nil
}

func regBase(gid trace.GroupID) int {
	return (int(gid) * regsPerGroup) % mc.NumCommRegs
}

// fence waits for all this cell's outstanding remote-store
// acknowledgements, guaranteeing every prior store was captured (and
// so the scratch areas may be rewritten).
func (s *Sync) fence() { s.cell.FenceRemoteStores() }

// storeRemoteF64 remote-stores an 8-byte value into register pair
// reg of cell dst, via the scratch slot.
func (s *Sync) storeRemoteF64(dst topology.CellID, reg int, v float64) {
	s.f64Scratch[0] = v
	s.cell.SanWrite(s.f64Seg.Base(), mem.Contiguous(8), "reduction scratch write")
	s.cell.RemoteStore(dst, machine.CregAddr(reg), s.f64Seg.Base(), 8)
	s.fence() // scratch has one slot; serialize captures
}

// storeRemoteToken remote-stores a 4-byte token into register reg of
// cell dst.
func (s *Sync) storeRemoteToken(dst topology.CellID, reg int) {
	s.cell.RemoteStore(dst, machine.CregAddr(reg), s.tokSeg.Base(), 4)
	s.fence()
}

// group returns this cell's group view, panicking if the cell is not
// a member — calling a collective from outside the group is a program
// bug the hardware cannot save.
func (s *Sync) group(gid trace.GroupID) (*topology.Group, int) {
	g := s.cell.Machine().Group(gid)
	rank, ok := g.Rank(s.cell.ID())
	if !ok {
		panic(fmt.Sprintf("barrier: cell %d is not in group %q", s.cell.ID(), g.Name()))
	}
	return g, rank
}

// Barrier synchronizes the group. The all-cells group uses the S-net;
// other groups use the communication-register tree.
func (s *Sync) Barrier(gid trace.GroupID) {
	if rec := s.cell.Recorder(); rec != nil {
		rec.Barrier(gid)
	}
	if gid == trace.AllGroup {
		s.cell.HWBarrier()
		return
	}
	g, rank := s.group(gid)
	if g.Size() == 1 {
		return
	}
	base := regBase(gid)
	me := s.cell.ID()
	// Up phase: wait for children's tokens, then notify parent. The
	// p-bit loads go through the cell so the sanitizer sees the
	// handshake edges.
	for i := range g.BinaryTreeChildren(me) {
		s.cell.LoadCreg32(base + 6 + i)
	}
	if rank != 0 {
		slot := (rank - 1) % 2 // which child of the parent am I
		s.storeRemoteToken(g.BinaryTreeParent(me), base+6+slot)
		// Down phase: wait for release token.
		s.cell.LoadCreg32(base + 8)
	}
	// Release children.
	for _, child := range g.BinaryTreeChildren(me) {
		s.storeRemoteToken(child, base+8)
	}
}

func combine(op trace.ReduceOp, a, b float64) float64 {
	switch op {
	case trace.ReduceSum:
		return a + b
	case trace.ReduceMax:
		if b > a {
			return b
		}
		return a
	case trace.ReduceMin:
		if b < a {
			return b
		}
		return a
	}
	panic(fmt.Sprintf("barrier: unknown reduce op %d", op))
}

// Reduce performs a scalar global reduction over the group and
// returns the combined value on every member. It runs over the
// communication registers: "global reduction can be achieved only by
// repeating store, execute, and load instructions" (S4.5).
func (s *Sync) Reduce(gid trace.GroupID, op trace.ReduceOp, x float64) float64 {
	if rec := s.cell.Recorder(); rec != nil {
		rec.GopScalar(gid, op)
	}
	g, rank := s.group(gid)
	if g.Size() == 1 {
		return x
	}
	base := regBase(gid)
	me := s.cell.ID()
	acc := x
	// Up phase: combine children's partials (blocking p-bit loads on
	// our own registers).
	for i := range g.BinaryTreeChildren(me) {
		bits := s.cell.LoadCreg64(base + 2*i)
		acc = combine(op, acc, f64FromBits(bits))
	}
	if rank != 0 {
		slot := (rank - 1) % 2
		s.storeRemoteF64(g.BinaryTreeParent(me), base+2*slot, acc)
		// Down phase: the final value arrives in the down pair.
		acc = f64FromBits(s.cell.LoadCreg64(base + 4))
	}
	for _, child := range g.BinaryTreeChildren(me) {
		s.storeRemoteF64(child, base+4, acc)
	}
	return acc
}

// ReduceVec performs an element-wise global reduction of vec over the
// group, in place, returning the combined vector on every member.
// Implementation (S4.5): an accumulating pass around the group ring
// through the ring buffers — each cell consumes its predecessor's
// partial vector in place, combines, and SENDs onward — then the last
// cell broadcasts the result. For the all-cells group the broadcast
// uses the B-net; for proper subgroups it rides the ring back (a
// second P-1 sends), since B-net broadcasts reach every cell.
func (s *Sync) ReduceVec(gid trace.GroupID, op trace.ReduceOp, vec []float64) error {
	if s.ep == nil {
		return fmt.Errorf("barrier: vector reduction needs a SEND/RECEIVE endpoint")
	}
	if rec := s.cell.Recorder(); rec != nil {
		rec.GopVector(gid, op, int64(len(vec))*8)
	}
	g, rank := s.group(gid)
	if g.Size() == 1 || len(vec) == 0 {
		return nil
	}
	if err := s.ensureVec(len(vec)); err != nil {
		return err
	}
	me := s.cell.ID()
	members := g.Members()
	prev := members[(rank-1+g.Size())%g.Size()]
	next := g.RingNext(me)
	size := int64(len(vec)) * 8
	tag := int64(gid)<<32 | int64(len(vec))

	if rank > 0 {
		// Consume the predecessor's partial in place (zero copy).
		p := s.ep.Consume(prev)
		vals, ok := p.Float64s()
		if !ok || len(vals) != len(vec) {
			return fmt.Errorf("barrier: ring payload mismatch (%d vs %d elements)", len(vals), len(vec))
		}
		for i := range vec {
			vec[i] = combine(op, vec[i], vals[i])
		}
	}
	if rank < g.Size()-1 {
		s.stageVec(vec)
		if err := s.ep.Send(next, s.vecSeg.Base(), size, false); err != nil {
			return err
		}
		if gid == trace.AllGroup {
			// Await the broadcast result.
			p := s.cell.RecvBroadcast(tag)
			vals, _ := p.Float64s()
			copy(vec, vals)
			return nil
		}
		// Subgroup: result comes back around the ring.
		p := s.ep.Consume(prev)
		vals, ok := p.Float64s()
		if !ok {
			return fmt.Errorf("barrier: ring broadcast payload not float64")
		}
		copy(vec, vals)
		if next != g.Members()[g.Size()-1] { // don't return it to the owner
			s.stageVec(vec)
			if err := s.ep.Send(next, s.vecSeg.Base(), size, false); err != nil {
				return err
			}
		}
		return nil
	}
	// Last member owns the result; distribute it.
	if gid == trace.AllGroup {
		s.stageVec(vec)
		if err := s.cell.Broadcast(s.vecSeg.Base(), size, tag); err != nil {
			return err
		}
		// Drain our own copy of the broadcast.
		s.cell.RecvBroadcast(tag)
		return nil
	}
	copy(s.vecData, vec)
	return s.ep.Send(next, s.vecSeg.Base(), size, false)
}

// stageVec copies the working vector into the send staging segment.
// The sanitizer write hook makes scratch reuse checkable: staging is
// only safe because Send waits for the capture's send flag.
func (s *Sync) stageVec(vec []float64) {
	copy(s.vecData, vec)
	s.cell.SanWrite(s.vecSeg.Base(), mem.Contiguous(int64(len(vec))*8), "reduction vector stage write")
}

func (s *Sync) ensureVec(n int) error {
	if s.vecData != nil && len(s.vecData) >= n {
		return nil
	}
	seg, data, err := s.cell.AllocFloat64(fmt.Sprintf("sync.vec%d", n), n)
	if err != nil {
		return err
	}
	s.vecSeg, s.vecData = seg, data
	return nil
}

func f64FromBits(bits uint64) float64 {
	return math.Float64frombits(bits)
}
