package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"ap1000plus/internal/msc"
)

// The text form of a Plan is a list of key=value entries separated by
// commas, semicolons, or whitespace (so the same spec works as a CLI
// flag and as a file):
//
//	seed=42,drop=0.05,dup=0.02,budget=8
//	class:get-reply:corrupt=0.01
//	link:0:1:drop=1
//	inject:0:1:put:3=drop
//
// Global keys: seed, drop, dup, reorder, delay, corrupt, budget,
// backoff (ns), delayns. Class and link overrides replace the whole
// rate set for matching traffic; fields they leave unset are zero.
// String renders the canonical form: sorted, minimal, and stable —
// Parse(p.String()).String() == p.String().

// rateOrder fixes the canonical rate-key order.
var rateOrder = []string{"drop", "dup", "reorder", "delay", "corrupt"}

// wireClasses is the canonical message-class vocabulary a spec may
// name: the msc op names plus "bcast" for the broadcast net — the same
// list the machine passes to Build. Checking at Parse time makes a
// typo'd class a loud CLI error instead of a late Build failure (or,
// worse, a plan that silently never fires).
var wireClasses = func() map[string]bool {
	m := map[string]bool{"bcast": true}
	for _, name := range msc.OpNames() {
		m[name] = true
	}
	return m
}()

func checkClass(name, key string) error {
	if wireClasses[name] {
		return nil
	}
	return fmt.Errorf("fault: unknown message class %q in %q (classes: %s, bcast)",
		name, key, strings.Join(msc.OpNames(), ", "))
}

// rateField returns a pointer to the named rate within r, or nil.
func rateField(r *Rates, key string) *float64 {
	switch key {
	case "drop":
		return &r.Drop
	case "dup":
		return &r.Dup
	case "reorder":
		return &r.Reorder
	case "delay":
		return &r.Delay
	case "corrupt":
		return &r.Corrupt
	}
	return nil
}

// Parse builds a Plan from its text form. An empty spec is the empty
// plan (reliable delivery exercised, nothing injected).
func Parse(spec string) (*Plan, error) {
	p := &Plan{}
	entries := strings.FieldsFunc(spec, func(r rune) bool {
		return r == ',' || r == ';' || r == ' ' || r == '\t' || r == '\n' || r == '\r'
	})
	for _, e := range entries {
		key, val, ok := strings.Cut(e, "=")
		if !ok {
			return nil, fmt.Errorf("fault: entry %q is not key=value", e)
		}
		if err := p.apply(key, val); err != nil {
			return nil, err
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// apply sets one parsed entry on the plan.
func (p *Plan) apply(key, val string) error {
	parts := strings.Split(key, ":")
	switch parts[0] {
	case "seed":
		return parseInto(key, val, &p.Seed)
	case "budget":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("fault: %s=%q: %v", key, val, err)
		}
		p.MaxAttempts = n
		return nil
	case "backoff":
		return parseInto(key, val, &p.BackoffNanos)
	case "delayns":
		return parseInto(key, val, &p.DelayNanos)
	case "class":
		if len(parts) != 3 {
			return fmt.Errorf("fault: class key %q wants class:<name>:<rate>", key)
		}
		if err := checkClass(parts[1], key); err != nil {
			return err
		}
		f, err := parseRate(key, val)
		if err != nil {
			return err
		}
		if p.PerClass == nil {
			p.PerClass = map[string]Rates{}
		}
		r := p.PerClass[parts[1]]
		fp := rateField(&r, parts[2])
		if fp == nil {
			return fmt.Errorf("fault: unknown rate %q in %q", parts[2], key)
		}
		*fp = f
		p.PerClass[parts[1]] = r
		return nil
	case "link":
		if len(parts) != 4 {
			return fmt.Errorf("fault: link key %q wants link:<src>:<dst>:<rate>", key)
		}
		src, err1 := strconv.Atoi(parts[1])
		dst, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || src < 0 || dst < 0 {
			return fmt.Errorf("fault: bad link cells in %q", key)
		}
		f, err := parseRate(key, val)
		if err != nil {
			return err
		}
		if p.PerLink == nil {
			p.PerLink = map[Link]Rates{}
		}
		l := Link{src, dst}
		r := p.PerLink[l]
		fp := rateField(&r, parts[3])
		if fp == nil {
			return fmt.Errorf("fault: unknown rate %q in %q", parts[3], key)
		}
		*fp = f
		p.PerLink[l] = r
		return nil
	case "inject":
		if len(parts) != 5 {
			return fmt.Errorf("fault: inject key %q wants inject:<src>:<dst>:<class>:<index>", key)
		}
		src, err1 := strconv.Atoi(parts[1])
		dst, err2 := strconv.Atoi(parts[2])
		idx, err3 := strconv.ParseUint(parts[4], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil || src < 0 || dst < 0 {
			return fmt.Errorf("fault: bad injection key %q", key)
		}
		if err := checkClass(parts[3], key); err != nil {
			return err
		}
		k, err := parseKind(val)
		if err != nil {
			return err
		}
		p.Injections = append(p.Injections, Injection{Src: src, Dst: dst, Class: parts[3], Index: idx, Kind: k})
		return nil
	default:
		if len(parts) == 1 {
			if fp := rateField(&p.Rates, key); fp != nil {
				f, err := parseRate(key, val)
				if err != nil {
					return err
				}
				*fp = f
				return nil
			}
		}
		return fmt.Errorf("fault: unknown key %q", key)
	}
}

func parseRate(key, val string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, fmt.Errorf("fault: %s=%q: %v", key, val, err)
	}
	return f, nil
}

func parseInto(key, val string, dst *int64) error {
	n, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		return fmt.Errorf("fault: %s=%q: %v", key, val, err)
	}
	*dst = n
	return nil
}

// String renders the canonical text form: minimal (zero/default fields
// omitted, except that an all-zero class or link override keeps one
// explicit zero entry to preserve its existence) and deterministically
// ordered.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var out []string
	add := func(format string, args ...any) {
		out = append(out, fmt.Sprintf(format, args...))
	}
	if p.Seed != 0 {
		add("seed=%d", p.Seed)
	}
	appendRates := func(prefix string, r Rates) {
		emitted := false
		for _, key := range rateOrder {
			if v := *rateField(&r, key); v != 0 {
				add("%s%s=%s", prefix, key, strconv.FormatFloat(v, 'g', -1, 64))
				emitted = true
			}
		}
		if !emitted && prefix != "" {
			add("%sdrop=0", prefix)
		}
	}
	appendRates("", p.Rates)
	if p.MaxAttempts != 0 {
		add("budget=%d", p.MaxAttempts)
	}
	if p.BackoffNanos != 0 {
		add("backoff=%d", p.BackoffNanos)
	}
	if p.DelayNanos != 0 {
		add("delayns=%d", p.DelayNanos)
	}
	classes := make([]string, 0, len(p.PerClass))
	for class := range p.PerClass {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		appendRates("class:"+class+":", p.PerClass[class])
	}
	links := make([]Link, 0, len(p.PerLink))
	for l := range p.PerLink {
		links = append(links, l)
	}
	sort.Slice(links, func(a, b int) bool {
		if links[a].Src != links[b].Src {
			return links[a].Src < links[b].Src
		}
		return links[a].Dst < links[b].Dst
	})
	for _, l := range links {
		appendRates(fmt.Sprintf("link:%d:%d:", l.Src, l.Dst), p.PerLink[l])
	}
	for _, inj := range p.sortedInjections() {
		add("inject:%d:%d:%s:%d=%s", inj.Src, inj.Dst, inj.Class, inj.Index, inj.Kind)
	}
	return strings.Join(out, ",")
}
