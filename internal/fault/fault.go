// Package fault is a deterministic, seedable fault injector for the
// simulator's wire and delivery layers. A Plan expresses drop,
// duplicate, reorder, delay and corrupt probabilities — or exact
// scheduled injections for reproducible tests — per link and per
// message class; Build compiles it into an Injector the networks
// consult on every transmission attempt.
//
// Determinism is the whole point: the fate of a transmission is a pure
// hash of (seed, src, dst, class, stream index), where the stream
// index counts transmission attempts on that (src, dst, class) stream.
// Every stream is driven by a single goroutine in the functional
// machine (each cell's send controller processes its commands FIFO,
// and reply/ack streams mirror the requesting controller's FIFO), so
// the per-stream index sequence — and therefore every fate — is
// reproducible run to run even though the global goroutine
// interleaving is not. Identical plans yield identical fault
// schedules, retransmit counts and dedup counts.
//
// Like the obs.Observer pattern, a nil *Plan (and nil *Injector) means
// the feature is off and costs one nil check at each hook site.
package fault

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Kind classifies one injected fault.
type Kind uint8

const (
	// KindNone delivers cleanly (useful in Injections to pin a
	// transmission that a probability would otherwise disturb).
	KindNone Kind = iota
	// KindDrop loses the packet on the wire.
	KindDrop
	// KindDup delivers the packet twice.
	KindDup
	// KindReorder holds the packet and delivers it after later traffic
	// on its stream.
	KindReorder
	// KindDelay delivers the packet late. The functional machine is
	// untimed, so there it is a clean delivery that only the counters
	// see; MLSim charges DelayNanos of simulated time.
	KindDelay
	// KindCorrupt flips one payload bit (or poisons the checksum of a
	// payloadless packet) on the delivered copy.
	KindCorrupt

	numKinds
)

var kindNames = [numKinds]string{"none", "drop", "dup", "reorder", "delay", "corrupt"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// parseKind resolves a fault kind name.
func parseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if s == name {
			return Kind(k), nil
		}
	}
	return KindNone, fmt.Errorf("fault: unknown kind %q", s)
}

// Rates are per-transmission fault probabilities, each in [0, 1]. The
// rolls are independent and checked in severity order (drop, corrupt,
// dup, reorder, delay): a transmission suffers at most one fault.
type Rates struct {
	Drop    float64
	Dup     float64
	Reorder float64
	Delay   float64
	Corrupt float64
}

// zero reports whether no fault can fire under these rates.
func (r Rates) zero() bool { return r == Rates{} }

func (r Rates) validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{{"drop", r.Drop}, {"dup", r.Dup}, {"reorder", r.Reorder}, {"delay", r.Delay}, {"corrupt", r.Corrupt}} {
		if f.v < 0 || f.v > 1 || f.v != f.v {
			return fmt.Errorf("fault: rate %s=%v outside [0,1]", f.name, f.v)
		}
	}
	return nil
}

// Link identifies a directed (src, dst) cell pair.
type Link struct {
	Src, Dst int
}

// Injection schedules one exact fault: the Index'th transmission
// attempt on the (Src, Dst, Class) stream suffers Kind, regardless of
// the probabilistic rates.
type Injection struct {
	Src, Dst int
	Class    string
	Index    uint64
	Kind     Kind
}

// Default protocol parameters, used when the Plan leaves them zero.
const (
	// DefaultMaxAttempts bounds the reliable layer's retry budget
	// (first transmission included).
	DefaultMaxAttempts = 8
	// DefaultBackoffNanos is the base of the exponential retransmit
	// backoff, in simulated nanoseconds.
	DefaultBackoffNanos = 2000
	// DefaultDelayNanos is the simulated lateness of a KindDelay (and
	// the modeled lateness of a reordered packet in MLSim).
	DefaultDelayNanos = 5000
)

// Plan is a complete fault-injection configuration. The zero value
// (with all rates zero and no injections) is a valid plan that injects
// nothing — useful for exercising the reliable-delivery machinery
// without loss.
type Plan struct {
	// Seed drives every probabilistic decision. Two runs with the same
	// plan (seed included) make identical decisions.
	Seed int64
	// Rates apply machine-wide unless overridden.
	Rates Rates
	// PerClass overrides the rates for one message class (msc op
	// names: "put", "get", "get-reply", "rstore", "rstore-ack",
	// "rload", "rload-reply", "send", plus "bcast" for the B-net). An
	// override replaces the whole rate set for matching traffic.
	PerClass map[string]Rates
	// PerLink overrides the rates for one directed link; it takes
	// precedence over PerClass. Links outside the built machine are
	// ignored, so a plan can be reused across machine sizes.
	PerLink map[Link]Rates
	// Injections schedule exact faults; they take precedence over all
	// rates.
	Injections []Injection
	// MaxAttempts is the retry budget per packet, first transmission
	// included; 0 means DefaultMaxAttempts.
	MaxAttempts int
	// BackoffNanos is the base simulated retransmit backoff (doubled
	// per retry); 0 means DefaultBackoffNanos.
	BackoffNanos int64
	// DelayNanos is the simulated lateness of delayed/reordered
	// deliveries; 0 means DefaultDelayNanos.
	DelayNanos int64
}

// Clone deep-copies the plan.
func (p *Plan) Clone() *Plan {
	if p == nil {
		return nil
	}
	q := *p
	if p.PerClass != nil {
		q.PerClass = make(map[string]Rates, len(p.PerClass))
		for k, v := range p.PerClass {
			q.PerClass[k] = v
		}
	}
	if p.PerLink != nil {
		q.PerLink = make(map[Link]Rates, len(p.PerLink))
		for k, v := range p.PerLink {
			q.PerLink[k] = v
		}
	}
	q.Injections = append([]Injection(nil), p.Injections...)
	return &q
}

// Validate checks every rate and parameter.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	if err := p.Rates.validate(); err != nil {
		return err
	}
	for class, r := range p.PerClass {
		if class == "" {
			return fmt.Errorf("fault: empty class name in PerClass")
		}
		if err := r.validate(); err != nil {
			return fmt.Errorf("class %s: %w", class, err)
		}
	}
	for l, r := range p.PerLink {
		if l.Src < 0 || l.Dst < 0 {
			return fmt.Errorf("fault: negative cell in link %d:%d", l.Src, l.Dst)
		}
		if err := r.validate(); err != nil {
			return fmt.Errorf("link %d:%d: %w", l.Src, l.Dst, err)
		}
	}
	for _, inj := range p.Injections {
		if inj.Src < 0 || inj.Dst < 0 {
			return fmt.Errorf("fault: negative cell in injection %+v", inj)
		}
		if inj.Class == "" {
			return fmt.Errorf("fault: injection without class: %+v", inj)
		}
		if int(inj.Kind) >= int(numKinds) {
			return fmt.Errorf("fault: injection with invalid kind %d", inj.Kind)
		}
	}
	if p.MaxAttempts < 0 {
		return fmt.Errorf("fault: negative retry budget %d", p.MaxAttempts)
	}
	if p.BackoffNanos < 0 || p.DelayNanos < 0 {
		return fmt.Errorf("fault: negative backoff/delay")
	}
	return nil
}

// maxAttempts resolves the retry budget.
func (p *Plan) maxAttempts() int {
	if p == nil || p.MaxAttempts == 0 {
		return DefaultMaxAttempts
	}
	return p.MaxAttempts
}

// backoffNanos resolves the base backoff.
func (p *Plan) backoffNanos() int64 {
	if p == nil || p.BackoffNanos == 0 {
		return DefaultBackoffNanos
	}
	return p.BackoffNanos
}

// delayNanos resolves the delay lateness.
func (p *Plan) delayNanos() int64 {
	if p == nil || p.DelayNanos == 0 {
		return DefaultDelayNanos
	}
	return p.DelayNanos
}

// Fate is the decided outcome of one transmission attempt.
type Fate struct {
	Kind Kind
	// Index is the attempt's position on its (src, dst, class) stream.
	Index uint64
	// DelayNanos is the simulated lateness for KindDelay/KindReorder.
	DelayNanos int64
	// CorruptBit selects the payload bit to flip for KindCorrupt.
	CorruptBit uint64
}

// Stats is a snapshot of the injector's decision counters.
type Stats struct {
	// Decisions counts transmission attempts consulted.
	Decisions int64
	// One counter per fault kind actually injected.
	Drops, Dups, Reorders, Delays, Corrupts int64
	// Injected counts fates forced by exact Injections (also counted
	// under their kind).
	Injected int64
}

// injKey addresses one exact injection.
type injKey struct {
	src, dst, class int
	index           uint64
}

// Injector is a compiled Plan bound to a machine size and class
// vocabulary. Decide is safe for concurrent use; decisions on distinct
// streams are independent.
type Injector struct {
	seed       uint64
	cells, nc  int
	global     Rates
	classRates []*Rates        // per-class override or nil
	linkRates  map[Link]Rates  // nil when no link overrides
	inject     map[injKey]Kind // nil when no exact injections
	budget     int
	backoffNs  int64
	delayNs    int64
	classes    map[string]int
	classNames []string

	// idx holds the next transmission index of every (src, dst, class)
	// stream: cells*cells*nc counters. ~8 B per stream; a 64-cell,
	// 9-class machine uses ~300 KB.
	idx []atomic.Uint64

	decisions                               atomic.Int64
	drops, dups, reorders, delays, corrupts atomic.Int64
	injected                                atomic.Int64
}

// Build compiles the plan for a machine of `cells` cells whose message
// classes are named by `classes` (the msc op vocabulary, plus "bcast"
// for the broadcast net). A nil plan builds a nil injector.
func (p *Plan) Build(cells int, classes []string) (*Injector, error) {
	if p == nil {
		return nil, nil
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cells <= 0 {
		return nil, fmt.Errorf("fault: build for %d cells", cells)
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("fault: build with no message classes")
	}
	in := &Injector{
		seed:       uint64(p.Seed),
		cells:      cells,
		nc:         len(classes),
		global:     p.Rates,
		classRates: make([]*Rates, len(classes)),
		budget:     p.maxAttempts(),
		backoffNs:  p.backoffNanos(),
		delayNs:    p.delayNanos(),
		classes:    make(map[string]int, len(classes)),
		classNames: append([]string(nil), classes...),
		idx:        make([]atomic.Uint64, cells*cells*len(classes)),
	}
	for i, name := range classes {
		if _, dup := in.classes[name]; dup {
			return nil, fmt.Errorf("fault: duplicate class %q", name)
		}
		in.classes[name] = i
	}
	for class, r := range p.PerClass {
		id, ok := in.classes[class]
		if !ok {
			return nil, fmt.Errorf("fault: plan names unknown class %q (have %v)", class, classes)
		}
		rr := r
		in.classRates[id] = &rr
	}
	for l, r := range p.PerLink {
		if l.Src >= cells || l.Dst >= cells {
			continue // plan reused on a smaller machine
		}
		if in.linkRates == nil {
			in.linkRates = make(map[Link]Rates, len(p.PerLink))
		}
		in.linkRates[l] = r
	}
	for _, inj := range p.Injections {
		id, ok := in.classes[inj.Class]
		if !ok {
			return nil, fmt.Errorf("fault: injection names unknown class %q", inj.Class)
		}
		if inj.Src >= cells || inj.Dst >= cells {
			continue
		}
		if in.inject == nil {
			in.inject = make(map[injKey]Kind, len(p.Injections))
		}
		in.inject[injKey{inj.Src, inj.Dst, id, inj.Index}] = inj.Kind
	}
	return in, nil
}

// ClassID resolves a class name; -1 when unknown.
func (in *Injector) ClassID(name string) int {
	if id, ok := in.classes[name]; ok {
		return id
	}
	return -1
}

// Classes returns the class vocabulary the injector was built with.
func (in *Injector) Classes() []string { return append([]string(nil), in.classNames...) }

// MaxAttempts is the resolved retry budget (first transmission
// included).
func (in *Injector) MaxAttempts() int { return in.budget }

// BackoffNanos is the resolved base retransmit backoff.
func (in *Injector) BackoffNanos() int64 { return in.backoffNs }

// DelayNanos is the resolved delivery lateness for delayed/reordered
// packets.
func (in *Injector) DelayNanos() int64 { return in.delayNs }

// Backoff returns the simulated backoff before retry `attempt` (the
// attempt that failed, 1-based), with the exponential shift capped so
// it cannot overflow.
func (in *Injector) Backoff(attempt int) int64 {
	shift := attempt - 1
	if shift > 20 {
		shift = 20
	}
	if shift < 0 {
		shift = 0
	}
	return in.backoffNs << uint(shift)
}

// splitmix is the splitmix64 finalizer: a high-quality 64-bit mix.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Decide rolls the fate of the next transmission attempt on the
// (src, dst, class) stream and advances the stream index. A nil
// injector always answers "deliver cleanly".
func (in *Injector) Decide(src, dst, class int) Fate {
	if in == nil {
		return Fate{}
	}
	slot := (src*in.cells+dst)*in.nc + class
	i := in.idx[slot].Add(1) - 1
	in.decisions.Add(1)
	if in.inject != nil {
		if k, ok := in.inject[injKey{src, dst, class, i}]; ok {
			in.injected.Add(1)
			return in.fate(k, slot, i)
		}
	}
	r := in.global
	if cr := in.classRates[class]; cr != nil {
		r = *cr
	}
	if in.linkRates != nil {
		if lr, ok := in.linkRates[Link{src, dst}]; ok {
			r = lr
		}
	}
	if r.zero() {
		return Fate{Index: i}
	}
	h := splitmix(in.seed ^ uint64(slot)*0x9e3779b97f4a7c15)
	h = splitmix(h ^ i)
	roll := func() float64 {
		h = splitmix(h)
		return float64(h>>11) / (1 << 53)
	}
	// Independent rolls, consumed unconditionally so a stream's random
	// sequence depends only on (seed, slot, index).
	d, c, u, o, l := roll(), roll(), roll(), roll(), roll()
	switch {
	case d < r.Drop:
		return in.fate(KindDrop, slot, i)
	case c < r.Corrupt:
		return in.fate(KindCorrupt, slot, i)
	case u < r.Dup:
		return in.fate(KindDup, slot, i)
	case o < r.Reorder:
		return in.fate(KindReorder, slot, i)
	case l < r.Delay:
		return in.fate(KindDelay, slot, i)
	}
	return Fate{Index: i}
}

// fate assembles the Fate for an injected kind and counts it.
func (in *Injector) fate(k Kind, slot int, i uint64) Fate {
	f := Fate{Kind: k, Index: i}
	switch k {
	case KindDrop:
		in.drops.Add(1)
	case KindDup:
		in.dups.Add(1)
	case KindReorder:
		in.reorders.Add(1)
		f.DelayNanos = in.delayNs
	case KindDelay:
		in.delays.Add(1)
		f.DelayNanos = in.delayNs
	case KindCorrupt:
		in.corrupts.Add(1)
		f.CorruptBit = splitmix(in.seed ^ uint64(slot)<<32 ^ i ^ 0xc0ffee)
	}
	return f
}

// Stats snapshots the decision counters. Safe on a nil injector.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return Stats{
		Decisions: in.decisions.Load(),
		Drops:     in.drops.Load(),
		Dups:      in.dups.Load(),
		Reorders:  in.reorders.Load(),
		Delays:    in.delays.Load(),
		Corrupts:  in.corrupts.Load(),
		Injected:  in.injected.Load(),
	}
}

// sortedInjections returns the plan's injections in canonical order
// (src, dst, class, index, kind) for formatting.
func (p *Plan) sortedInjections() []Injection {
	out := append([]Injection(nil), p.Injections...)
	sort.Slice(out, func(a, b int) bool {
		x, y := out[a], out[b]
		if x.Src != y.Src {
			return x.Src < y.Src
		}
		if x.Dst != y.Dst {
			return x.Dst < y.Dst
		}
		if x.Class != y.Class {
			return x.Class < y.Class
		}
		if x.Index != y.Index {
			return x.Index < y.Index
		}
		return x.Kind < y.Kind
	})
	return out
}
