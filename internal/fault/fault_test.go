package fault

import (
	"reflect"
	"strings"
	"testing"
)

var testClasses = []string{"put", "get", "get-reply", "rstore", "rstore-ack", "rload", "rload-reply", "send", "bcast"}

// TestDecideDeterministic is the core contract: two injectors built
// from the same plan make identical decisions on every stream, in any
// interleaving of streams.
func TestDecideDeterministic(t *testing.T) {
	plan := &Plan{
		Seed:  42,
		Rates: Rates{Drop: 0.2, Dup: 0.1, Reorder: 0.05, Delay: 0.05, Corrupt: 0.1},
	}
	a, err := plan.Build(4, testClasses)
	if err != nil {
		t.Fatal(err)
	}
	b, err := plan.Build(4, testClasses)
	if err != nil {
		t.Fatal(err)
	}
	// Drive b's streams in a different global order than a's: fates
	// must match per stream regardless.
	type key struct{ src, dst, class int }
	fatesA := map[key][]Fate{}
	for i := 0; i < 50; i++ {
		for src := 0; src < 4; src++ {
			for dst := 0; dst < 4; dst++ {
				for class := 0; class < len(testClasses); class++ {
					k := key{src, dst, class}
					fatesA[k] = append(fatesA[k], a.Decide(src, dst, class))
				}
			}
		}
	}
	for class := len(testClasses) - 1; class >= 0; class-- {
		for dst := 3; dst >= 0; dst-- {
			for src := 3; src >= 0; src-- {
				k := key{src, dst, class}
				for i := 0; i < 50; i++ {
					got := b.Decide(src, dst, class)
					if want := fatesA[k][i]; got != want {
						t.Fatalf("stream %v index %d: %+v != %+v", k, i, got, want)
					}
				}
			}
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if a.Stats().Decisions != 50*4*4*int64(len(testClasses)) {
		t.Fatalf("decisions = %d", a.Stats().Decisions)
	}
}

// TestDecidePrecedence checks the override chain: exact injection >
// link rates > class rates > global rates.
func TestDecidePrecedence(t *testing.T) {
	plan := &Plan{
		Seed:  7,
		Rates: Rates{Drop: 1},
		PerClass: map[string]Rates{
			"get": {}, // GETs fault-free despite the global drop
		},
		PerLink: map[Link]Rates{
			{Src: 1, Dst: 2}: {Dup: 1}, // link 1->2 duplicates instead
		},
		Injections: []Injection{
			{Src: 0, Dst: 1, Class: "put", Index: 2, Kind: KindCorrupt},
			{Src: 1, Dst: 2, Class: "put", Index: 0, Kind: KindNone},
		},
	}
	in, err := plan.Build(4, testClasses)
	if err != nil {
		t.Fatal(err)
	}
	put, get := in.ClassID("put"), in.ClassID("get")
	if f := in.Decide(0, 1, put); f.Kind != KindDrop {
		t.Errorf("global drop: got %v", f.Kind)
	}
	if f := in.Decide(0, 1, put); f.Kind != KindDrop {
		t.Errorf("global drop: got %v", f.Kind)
	}
	if f := in.Decide(0, 1, put); f.Kind != KindCorrupt || f.Index != 2 {
		t.Errorf("injection at index 2: got %+v", f)
	}
	if f := in.Decide(0, 1, get); f.Kind != KindNone {
		t.Errorf("class override: got %v", f.Kind)
	}
	if f := in.Decide(1, 2, put); f.Kind != KindNone {
		t.Errorf("KindNone injection overrides link rates: got %v", f.Kind)
	}
	if f := in.Decide(1, 2, put); f.Kind != KindDup {
		t.Errorf("link override: got %v", f.Kind)
	}
	st := in.Stats()
	if st.Injected != 2 || st.Drops != 2 || st.Dups != 1 || st.Corrupts != 1 {
		t.Errorf("stats %+v", st)
	}
}

// TestDecideRates sanity-checks that a 30% drop plan drops roughly 30%
// over many streams (the hash must not be pathologically biased).
func TestDecideRates(t *testing.T) {
	plan := &Plan{Seed: 3, Rates: Rates{Drop: 0.3}}
	in, err := plan.Build(8, testClasses)
	if err != nil {
		t.Fatal(err)
	}
	drops, total := 0, 0
	for src := 0; src < 8; src++ {
		for dst := 0; dst < 8; dst++ {
			for i := 0; i < 100; i++ {
				total++
				if in.Decide(src, dst, 0).Kind == KindDrop {
					drops++
				}
			}
		}
	}
	frac := float64(drops) / float64(total)
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("drop fraction %.3f, want ~0.30", frac)
	}
}

// TestNilInjector: the off state delivers everything cleanly.
func TestNilInjector(t *testing.T) {
	var in *Injector
	if f := in.Decide(0, 1, 0); f != (Fate{}) {
		t.Errorf("nil injector decided %+v", f)
	}
	if in.Stats() != (Stats{}) {
		t.Errorf("nil injector has stats")
	}
	var p *Plan
	built, err := p.Build(4, testClasses)
	if err != nil || built != nil {
		t.Errorf("nil plan built %v, %v", built, err)
	}
}

// TestBackoff: exponential growth from the base with a capped shift.
func TestBackoff(t *testing.T) {
	in, err := (&Plan{BackoffNanos: 100}).Build(2, testClasses)
	if err != nil {
		t.Fatal(err)
	}
	for attempt, want := range map[int]int64{1: 100, 2: 200, 3: 400, 8: 12800} {
		if got := in.Backoff(attempt); got != want {
			t.Errorf("Backoff(%d) = %d, want %d", attempt, got, want)
		}
	}
	if a, b := in.Backoff(21), in.Backoff(100); a != b {
		t.Errorf("backoff shift not capped: %d vs %d", a, b)
	}
	if in.MaxAttempts() != DefaultMaxAttempts {
		t.Errorf("default budget = %d", in.MaxAttempts())
	}
	if in.DelayNanos() != DefaultDelayNanos {
		t.Errorf("default delay = %d", in.DelayNanos())
	}
}

// TestSpecRoundTrip: Parse -> String -> Parse is the identity on the
// canonical form, and the parsed plans are semantically equal.
func TestSpecRoundTrip(t *testing.T) {
	specs := []string{
		"",
		"drop=0.05,dup=0.02,seed=42",
		"seed=-9,reorder=0.125,delay=0.25,corrupt=0.5,budget=3,backoff=1500,delayns=7000",
		"class:put:drop=0.1,class:put:dup=0.2,class:get-reply:corrupt=1",
		"link:0:1:drop=1 link:3:2:dup=0.5",
		"class:send:drop=0", // all-zero override must survive
		"class:atomic:drop=0.2,class:atomic-reply:dup=0.1,class:dsm-evict:drop=0.3",
		"inject:0:1:put:3=drop,inject:1:0:get:0=none,inject:2:2:bcast:7=corrupt",
		"inject:0:1:atomic:2=dup",
		"drop=0.05;dup=0.02\nseed=11\tlink:1:1:reorder=1",
	}
	for _, spec := range specs {
		p1, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		canon := p1.String()
		p2, err := Parse(canon)
		if err != nil {
			t.Fatalf("Parse(%q) [canonical of %q]: %v", canon, spec, err)
		}
		if got := p2.String(); got != canon {
			t.Errorf("round trip of %q: %q -> %q", spec, canon, got)
		}
		n1, n2 := normalize(p1), normalize(p2)
		if !reflect.DeepEqual(n1, n2) {
			t.Errorf("semantic drift for %q: %+v vs %+v", spec, n1, n2)
		}
	}
}

// normalize nils out empty maps/slices so DeepEqual compares meaning.
func normalize(p *Plan) *Plan {
	q := p.Clone()
	if len(q.PerClass) == 0 {
		q.PerClass = nil
	}
	if len(q.PerLink) == 0 {
		q.PerLink = nil
	}
	if len(q.Injections) == 0 {
		q.Injections = nil
	}
	return q
}

// TestParseErrors: malformed specs are rejected with the offending
// entry named.
func TestParseErrors(t *testing.T) {
	bad := []string{
		"drop",                     // not key=value
		"drop=x",                   // not a number
		"drop=1.5",                 // out of range
		"drop=-0.1",                // negative
		"frobnicate=1",             // unknown key
		"class:put=0.1",            // missing rate
		"class:put:zap=0.1",        // unknown rate
		"link:0:1=1",               // missing rate
		"link:a:b:drop=1",          // non-numeric cells
		"link:-1:0:drop=1",         // negative cell
		"inject:0:1:put=drop",      // missing index
		"inject:0:1:put:x=drop",    // bad index
		"inject:0:1:put:0=explode", // unknown kind
		"inject:0:1::0=drop",       // empty class
		"class:warp:drop=0.1",      // unknown message class
		"class:puts:drop=0.1",      // near-miss class name
		"inject:0:1:warp:0=drop",   // unknown injection class
		"budget=-2",                // negative budget
		"backoff=-1",               // negative backoff
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

// TestBuildErrors: unknown classes are caught at Build; out-of-range
// links are tolerated so one plan serves several machine sizes.
func TestBuildErrors(t *testing.T) {
	if _, err := (&Plan{PerClass: map[string]Rates{"warp": {Drop: 1}}}).Build(4, testClasses); err == nil || !strings.Contains(err.Error(), "warp") {
		t.Errorf("unknown class: err = %v", err)
	}
	if _, err := (&Plan{Injections: []Injection{{Src: 0, Dst: 1, Class: "warp"}}}).Build(4, testClasses); err == nil {
		t.Errorf("unknown injection class accepted")
	}
	p := &Plan{
		Rates:      Rates{Drop: 1},
		PerLink:    map[Link]Rates{{Src: 99, Dst: 0}: {}},
		Injections: []Injection{{Src: 99, Dst: 0, Class: "put", Index: 0, Kind: KindDrop}},
	}
	in, err := p.Build(4, testClasses)
	if err != nil {
		t.Fatalf("out-of-range link/injection should be ignored: %v", err)
	}
	if f := in.Decide(0, 1, 0); f.Kind != KindDrop {
		t.Errorf("global rates lost: %v", f.Kind)
	}
}

// TestClone: mutating a clone leaves the original untouched.
func TestClone(t *testing.T) {
	p, err := Parse("drop=0.1,class:put:dup=0.5,link:0:1:drop=1,inject:0:1:put:0=drop")
	if err != nil {
		t.Fatal(err)
	}
	q := p.Clone()
	q.Rates.Drop = 0.9
	q.PerClass["put"] = Rates{Corrupt: 1}
	q.PerLink[Link{0, 1}] = Rates{}
	q.Injections[0].Kind = KindDup
	if p.Rates.Drop != 0.1 || p.PerClass["put"].Dup != 0.5 || p.PerLink[Link{0, 1}].Drop != 1 || p.Injections[0].Kind != KindDrop {
		t.Errorf("clone aliases original: %+v", p)
	}
}
