package fault

import "testing"

// FuzzPlan fuzzes the plan parser: any accepted spec must canonicalize
// to a stable fixed point (Parse -> String -> Parse -> String is the
// identity), survive Validate, and build cleanly for a small machine
// whenever its vocabulary is the standard one.
func FuzzPlan(f *testing.F) {
	f.Add("")
	f.Add("drop=0.05,dup=0.02,seed=42")
	f.Add("seed=-1,reorder=1,budget=3,backoff=100,delayns=200")
	f.Add("class:put:drop=0.5,class:get-reply:corrupt=0.25")
	f.Add("link:0:1:drop=1,link:1:0:dup=1")
	f.Add("inject:0:1:put:3=drop,inject:1:0:get:0=none")
	f.Add("class:send:drop=0")
	f.Add("drop=1e-10;dup=0.9999999999999999\nseed=9223372036854775807")
	f.Fuzz(func(t *testing.T, spec string) {
		p1, err := Parse(spec)
		if err != nil {
			return // rejected inputs are fine; they must just not panic
		}
		if err := p1.Validate(); err != nil {
			t.Fatalf("Parse(%q) accepted an invalid plan: %v", spec, err)
		}
		canon := p1.String()
		p2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, spec, err)
		}
		if got := p2.String(); got != canon {
			t.Fatalf("canonical form unstable: %q -> %q", canon, got)
		}
		// Plans whose classes are all standard must build; plans naming
		// other classes must fail Build without panicking.
		if _, err := p2.Build(4, testClasses); err != nil {
			known := map[string]bool{}
			for _, c := range testClasses {
				known[c] = true
			}
			legit := false
			for c := range p2.PerClass {
				if !known[c] {
					legit = true
				}
			}
			for _, inj := range p2.Injections {
				if !known[inj.Class] {
					legit = true
				}
			}
			if !legit {
				t.Fatalf("Build failed on a standard-vocabulary plan %q: %v", canon, err)
			}
		}
	})
}
